// bench/bench_util.h
//
// Shared reporting helpers for the reproduction benchmarks. Every bench
// binary regenerates one paper artifact (a table or figure), printing the
// paper's value next to the measured one, and then runs any registered
// google-benchmark micro-timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace qsyn::bench {

namespace detail {
/// Sticky flag set by any compare_row/compare_row_near mismatch; folded into
/// run_benchmarks's exit code so a DIFFERS row fails the binary itself.
inline bool& mismatch_seen() {
  static bool seen = false;
  return seen;
}
}  // namespace detail

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Prints one paper-vs-measured comparison row and returns whether it agrees.
inline bool compare_row(const std::string& label, long long paper,
                        long long measured,
                        const std::string& remark = "") {
  const bool match = paper == measured;
  if (!match) detail::mismatch_seen() = true;
  std::printf("  %-34s paper=%-8lld measured=%-8lld %s%s%s\n", label.c_str(),
              paper, measured, match ? "OK" : "DIFFERS",
              remark.empty() ? "" : "  -- ", remark.c_str());
  return match;
}

/// Records the outcome of a custom paper-vs-measured check and returns the
/// status word, for printf-style rows built outside compare_row. Like the
/// compare_row helpers, a failed check makes run_benchmarks return nonzero.
inline const char* status_word(bool ok) {
  if (!ok) detail::mismatch_seen() = true;
  return ok ? "OK" : "DIFFERS";
}

/// Floating-point variant of compare_row for the figure benches that check
/// probabilities/fidelities: agreement means |paper - measured| <= tol.
inline bool compare_row_near(const std::string& label, double paper,
                             double measured, double tol,
                             const std::string& remark = "") {
  const bool match = std::fabs(paper - measured) <= tol;
  if (!match) detail::mismatch_seen() = true;
  std::printf("  %-34s paper=%-8.4f measured=%-8.4f %s (tol %.1e)%s%s\n",
              label.c_str(), paper, measured, match ? "OK" : "DIFFERS", tol,
              remark.empty() ? "" : "  -- ", remark.c_str());
  return match;
}

/// Prints a free-form measured-only row.
inline void value_row(const std::string& label, const std::string& value) {
  std::printf("  %-34s %s\n", label.c_str(), value.c_str());
}

/// Runs registered google-benchmark timings (no-op when none registered).
///
/// The paper-vs-measured rows above go to stdout, so capturing timings by
/// redirecting stdout yields corrupt JSON. Timings are instead routed through
/// --benchmark_out: pass the flag explicitly, or set QSYN_BENCH_OUT=<path>
/// (used by scripts/run_benches.sh) and the JSON lands in that file.
inline int run_benchmarks(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out_flag = false;
  for (int i = 1; i < argc; ++i) {
    // google-benchmark only accepts the --benchmark_out=<path> form.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out_flag = true;
  }
  std::string out_flag, format_flag;
  const char* out_path = std::getenv("QSYN_BENCH_OUT");
  if (out_path != nullptr && !has_out_flag) {
    out_flag = std::string("--benchmark_out=") + out_path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return detail::mismatch_seen() ? 1 : 0;
}

}  // namespace qsyn::bench
