// bench/bench_util.h
//
// Shared reporting helpers for the reproduction benchmarks. Every bench
// binary regenerates one paper artifact (a table or figure), printing the
// paper's value next to the measured one, and then runs any registered
// google-benchmark micro-timings.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace qsyn::bench {

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// Prints one paper-vs-measured comparison row and returns whether it agrees.
inline bool compare_row(const std::string& label, long long paper,
                        long long measured,
                        const std::string& remark = "") {
  const bool match = paper == measured;
  std::printf("  %-34s paper=%-8lld measured=%-8lld %s%s%s\n", label.c_str(),
              paper, measured, match ? "OK" : "DIFFERS",
              remark.empty() ? "" : "  -- ", remark.c_str());
  return match;
}

/// Prints a free-form measured-only row.
inline void value_row(const std::string& label, const std::string& value) {
  std::printf("  %-34s %s\n", label.c_str(), value.c_str());
}

/// Runs registered google-benchmark timings (no-op when none registered).
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace qsyn::bench
