// bench_backends: time-to-first-cascade across the three synthesis backends.
//
// The SynthesisBackend seam makes "answer one target" a like-for-like race:
//   * closure  — fresh ClosureBackend; pays the breadth-first sweep up to
//     the target's cost before the first answer, then serves instantly;
//   * catalog  — CatalogServer over a saved closure; pays only the mmap
//     open, serving stored answers with zero enumeration;
//   * search   — TopologySearchBackend; pays an iterative-deepening DFS per
//     query but stores (almost) nothing.
// The crossover is the point of the seam: the catalog wins on stored
// answers, the closure wins on repeated queries it can amortize, and the
// DFS is the only engine that answers past the closure's memory wall — the
// 5-wire cost-4 row below is the regime where the in-memory closure would
// need a ~2.5 GiB spill (PR 7 measurements) and the search answers from a
// memo a couple of orders of magnitude smaller.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "perm/permutation.h"
#include "synth/backend.h"
#include "synth/catalog_server.h"
#include "synth/fmcf.h"
#include "synth/search/topology_search.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

const gates::GateLibrary& library3() {
  static const gates::GateLibrary lib = gates::GateLibrary::standard(3);
  return lib;
}

const gates::GateLibrary& library5() {
  static const gates::GateLibrary lib = gates::GateLibrary::standard(5);
  return lib;
}

/// A saved cb = 5 catalog for the stored-answer lane.
const std::string& catalog_path() {
  static const std::string path = [] {
    const std::string p = (std::filesystem::temp_directory_path() /
                           "qsyn_bench_backends_cb5.qscat")
                              .string();
    synth::FmcfEnumerator enumerator(library3());
    enumerator.run_to(5);
    enumerator.save_catalog(p);
    return p;
  }();
  return path;
}

/// Peres on wires {A, B, C} of a 5-wire domain, identity on {D, E}: the
/// acceptance target provably at cost 4, past the in-memory closure's reach.
perm::Permutation peres_on_5() {
  const auto peres = synth::peres_perm();
  std::vector<std::uint32_t> images(32);
  for (std::uint32_t l = 0; l < 32; ++l) {
    images[l] = ((peres.apply((l >> 2) + 1) - 1) << 2 | (l & 3u)) + 1;
  }
  return perm::Permutation::from_images(std::move(images));
}

void regenerate() {
  bench::section("Synthesis backends: time to first cascade (Peres, n = 3)");
  (void)catalog_path();  // save the catalog outside every stopwatch

  Stopwatch closure_watch;
  synth::ClosureBackend closure(library3(), 5);
  const auto via_closure = closure.synthesize(synth::peres_perm());
  const double closure_seconds = closure_watch.seconds();

  Stopwatch catalog_watch;
  synth::CatalogServer server =
      synth::CatalogServer::open(catalog_path(), library3());
  const auto via_catalog = server.synthesize(synth::peres_perm());
  const double catalog_seconds = catalog_watch.seconds();

  Stopwatch search_watch;
  synth::SearchConfig config;
  config.max_cost = 5;
  synth::TopologySearchBackend search(library3(), config);
  const auto via_search = search.synthesize(synth::peres_perm());
  const double search_seconds = search_watch.seconds();

  bench::compare_row("closure answer cost", 4,
                     via_closure.has_value() ? via_closure->cost : -1);
  bench::compare_row("catalog answer cost", 4,
                     via_catalog.has_value() ? via_catalog->cost : -1);
  bench::compare_row("search answer cost", 4,
                     via_search.has_value() ? via_search->cost : -1);
  bench::value_row("closure (sweep + first answer)",
                   std::to_string(closure_seconds * 1e3) + " ms");
  bench::value_row("catalog (open + first answer)",
                   std::to_string(catalog_seconds * 1e3) + " ms");
  bench::value_row("search (DFS first answer)",
                   std::to_string(search_seconds * 1e3) + " ms");

  bench::section("Beyond the in-memory closure: 5-wire cost-4 target");
  Stopwatch wide_watch;
  synth::SearchConfig wide;
  wide.max_cost = 4;
  synth::TopologySearchBackend wide_search(library5(), wide);
  const auto wide_answer = wide_search.synthesize(peres_on_5());
  const double wide_seconds = wide_watch.seconds();
  bench::compare_row("5-wire Peres-embedded cost", 4,
                     wide_answer.has_value() ? wide_answer->cost : -1);
  bench::value_row("search time", std::to_string(wide_seconds) + " s");
  const std::size_t memo_bytes =
      wide_search.stats().peak_memo_rows * 2 * 32;  // 2-byte labels, 32 rows
  bench::value_row("peak memo",
                   std::to_string(memo_bytes >> 20) + " MiB (" +
                       std::to_string(wide_search.stats().peak_memo_rows) +
                       " states)");
  // PR 7's measured level-4 spill for the 5-wire closure was ~2.5 GiB.
  std::printf("  %-34s %s (closure needs ~2.5 GiB spilled)\n",
              "answered without a closure spill",
              bench::status_word(wide_answer.has_value() &&
                                 memo_bytes < (std::size_t(1) << 28)));
}

// One fresh closure per iteration: the sweep is the dominant cost, which is
// exactly what a cold single-target caller pays.
void bm_first_cascade_closure(benchmark::State& state) {
  for (auto _ : state) {
    synth::ClosureBackend backend(library3(), 5);
    benchmark::DoNotOptimize(backend.synthesize(synth::peres_perm()));
  }
}
BENCHMARK(bm_first_cascade_closure)->Unit(benchmark::kMillisecond);

// Catalog lane: open the saved file and answer (the PR 6 cold-start path,
// now through the serving layer the seam adapts).
void bm_first_cascade_catalog(benchmark::State& state) {
  for (auto _ : state) {
    synth::CatalogServer server =
        synth::CatalogServer::open(catalog_path(), library3());
    benchmark::DoNotOptimize(server.synthesize(synth::peres_perm()));
  }
}
BENCHMARK(bm_first_cascade_catalog)->Unit(benchmark::kMillisecond);

// DFS lane: a fresh engine per iteration (table build + deepening search).
void bm_first_cascade_search(benchmark::State& state) {
  for (auto _ : state) {
    synth::SearchConfig config;
    config.max_cost = 5;
    synth::TopologySearchBackend backend(library3(), config);
    benchmark::DoNotOptimize(backend.synthesize(synth::peres_perm()));
  }
}
BENCHMARK(bm_first_cascade_search)->Unit(benchmark::kMillisecond);

// The beyond-closure regime: 5-wire cost-4 target, in-memory answer.
void bm_search_5wire_cost4(benchmark::State& state) {
  const auto target = peres_on_5();
  for (auto _ : state) {
    synth::SearchConfig config;
    config.max_cost = 4;
    synth::TopologySearchBackend backend(library5(), config);
    benchmark::DoNotOptimize(backend.synthesize(target));
  }
}
BENCHMARK(bm_search_5wire_cost4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Stopwatch total;
  regenerate();
  std::printf("  total wall time: %.2f s\n", total.seconds());
  const int rc = qsyn::bench::run_benchmarks(argc, argv);
  std::filesystem::remove(catalog_path());
  return rc;
}
