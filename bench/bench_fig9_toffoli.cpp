// bench_fig9_toffoli: regenerates Figure 9 — MCE synthesis of the Toffoli
// gate (7,8). The paper reports quantum cost 5, four implementations
// (Figure 9 a-d, two Hermitian-adjoint pairs differing in the XOR qubit),
// and a 98-second runtime on an 850 MHz Pentium III.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/mce.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

void regenerate_fig9() {
  bench::section("Figure 9: Toffoli gate synthesis (MCE)");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  Stopwatch timer;
  synth::McExpressor mce(library, 7);
  const auto impls = mce.implementations(synth::toffoli_perm());
  const double seconds = timer.seconds();

  bench::compare_row("minimal quantum cost", 5,
                     impls.empty() ? -1 : impls.front().cost);
  bench::compare_row("implementations found", 4,
                     static_cast<long long>(impls.size()),
                     "two Hermitian-adjoint pairs");
  for (const auto& impl : impls) {
    const bool exact =
        sim::realizes_permutation(impl.circuit, synth::toffoli_perm());
    std::printf("  implementation %s  (unitary %s)\n",
                impl.circuit.to_string().c_str(), bench::status_word(exact));
  }
  std::printf("  runtime: %.3f s (paper: 98 s on an 850 MHz P-III)\n",
              seconds);

  std::printf("\n  paper's printed circuits (a)-(d):\n");
  for (const auto& c : synth::toffoli_cascades_fig9()) {
    std::printf("    %-24s verifies: %s\n", c.to_string().c_str(),
                bench::status_word(
                    sim::realizes_permutation(c, synth::toffoli_perm())));
  }

  // All length-5 reasonable gate sequences realizing Toffoli (the closure
  // elements group commuting reorderings together).
  const std::size_t sequences = mce.count_sequences(synth::toffoli_perm(), 5);
  bench::value_row("distinct length-5 sequences",
                   std::to_string(sequences) +
                       " (collapse onto the 4 closure elements)");
}

void bm_synthesize_toffoli(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  for (auto _ : state) {
    synth::McExpressor mce(library, 7);  // cold closure each iteration
    benchmark::DoNotOptimize(mce.synthesize(synth::toffoli_perm()));
  }
}
BENCHMARK(bm_synthesize_toffoli)->Unit(benchmark::kMillisecond);

void bm_verify_toffoli_unitary(benchmark::State& state) {
  const auto cascades = synth::toffoli_cascades_fig9();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::realizes_permutation(cascades[0], synth::toffoli_perm()));
  }
}
BENCHMARK(bm_verify_toffoli_unitary);

}  // namespace

int main(int argc, char** argv) {
  regenerate_fig9();
  return qsyn::bench::run_benchmarks(argc, argv);
}
