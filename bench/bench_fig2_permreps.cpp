// bench_fig2_permreps: regenerates Figure 2 / Section 3 — the 3-qubit gate
// arrangements and their permutation representations on the 38-label reduced
// domain, plus the banned sets N_A..N_BC exactly as printed in the paper.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "bench_util.h"
#include "gates/library.h"
#include "mvl/domain.h"

namespace {

using namespace qsyn;

void check_cycles(const gates::GateLibrary& library, const char* gate,
                  const char* paper) {
  const std::string measured =
      library.permutation(library.index_of(gate)).to_cycle_string();
  std::printf("  %-5s paper    %s\n        measured %s  %s\n", gate, paper,
              measured.c_str(), bench::status_word(measured == paper));
}

void check_banned(const mvl::PatternDomain& domain, mvl::BannedClass c,
                  const std::string& paper) {
  std::ostringstream os;
  bool first = true;
  for (const auto label : domain.banned_set(c)) {
    if (!first) os << ",";
    os << label;
    first = false;
  }
  std::printf("  %-5s paper    {%s}\n        measured {%s}  %s\n",
              domain.class_name(c).c_str(), paper.c_str(), os.str().c_str(),
              bench::status_word(os.str() == paper));
}

void regenerate_fig2() {
  bench::section("Figure 2 / Section 3: permutation representations");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  std::printf("  domain: %zu permutable patterns (64 - 27 + 1)\n",
              domain.size());
  check_cycles(library, "VBA",
               "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)");
  check_cycles(library, "V+AB",
               "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)");
  check_cycles(library, "FCA", "(5,6)(7,8)(17,18)(21,22)");

  bench::section("Section 3: banned sets");
  check_banned(domain, domain.control_class(0),
               "25,26,27,28,29,30,31,32,33,34,35,36,37,38");
  check_banned(domain, domain.control_class(1),
               "11,12,17,18,19,20,21,22,23,24,30,31,37,38");
  check_banned(domain, domain.control_class(2),
               "9,10,13,14,15,16,19,20,23,24,28,29,35,36");
  check_banned(domain, domain.feynman_class(0, 1),
               "11,12,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31,32,33,34,"
               "35,36,37,38");
  check_banned(domain, domain.feynman_class(0, 2),
               "9,10,13,14,15,16,19,20,23,24,25,26,27,28,29,30,31,32,33,34,"
               "35,36,37,38");
  check_banned(domain, domain.feynman_class(1, 2),
               "9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24,28,29,30,31,"
               "35,36,37,38");
}

void bm_gate_to_permutation(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::Gate g = gates::Gate::ctrl_v(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.to_permutation(domain));
  }
}
BENCHMARK(bm_gate_to_permutation);

void bm_library_construction(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gates::GateLibrary(domain));
  }
}
BENCHMARK(bm_library_construction);

}  // namespace

int main(int argc, char** argv) {
  regenerate_fig2();
  return qsyn::bench::run_benchmarks(argc, argv);
}
