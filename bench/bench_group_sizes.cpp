// bench_group_sizes: regenerates the Section-3/5 group-order computations
// the paper delegated to GAP:
//   |G| = |<FAB, FBA, FBC, FCB, Peres>| = 5040,
//   |S8| = 40320,
//   |N| = 2^n = 8 and Theorem 2's coset partition H = ∪ a*G.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/cosets.h"
#include "perm/perm_group.h"
#include "synth/fmcf.h"
#include "synth/specs.h"
#include "synth/universality.h"

namespace {

using namespace qsyn;

void regenerate() {
  bench::section("Section 3/5: group orders (in-repo Schreier-Sims vs GAP)");
  Stopwatch timer;

  const perm::PermGroup feynman_only = synth::group_with_feynman({});
  bench::compare_row("|<Feynman gates>| (= |GL(3,2)|)", 168,
                     static_cast<long long>(feynman_only.order()));

  const perm::PermGroup g = synth::group_with_feynman({synth::peres_perm()});
  bench::compare_row("|G| = |<Feynman, Peres>|", 5040,
                     static_cast<long long>(g.order()));

  const perm::PermGroup m =
      synth::group_with_not_and_feynman(synth::peres_perm());
  bench::compare_row("|M| = |<Peres, NOT, Feynman>|", 40320,
                     static_cast<long long>(m.order()));
  bench::compare_row("|S8|", 40320,
                     static_cast<long long>(perm::PermGroup::symmetric(8).order()));

  std::vector<perm::Permutation> not_layers;
  for (const auto& layer : synth::not_layer_cascades(3)) {
    not_layers.push_back(layer.to_binary_permutation());
  }
  bench::compare_row("|N| (NOT-gate group)", 8,
                     static_cast<long long>(not_layers.size()));
  const bool partition = perm::cosets_partition_group(
      not_layers, g, perm::PermGroup::symmetric(8));
  std::printf("  Theorem 2: S8 = disjoint union of the 8 cosets a*G: %s\n",
              bench::status_word(partition));
  std::printf("  total: %.3f s\n", timer.seconds());
}

void bm_schreier_sims_s8(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::PermGroup::symmetric(8).order());
  }
}
BENCHMARK(bm_schreier_sims_s8)->Unit(benchmark::kMicrosecond);

void bm_schreier_sims_feynman_peres(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synth::group_with_feynman({synth::peres_perm()}).order());
  }
}
BENCHMARK(bm_schreier_sims_feynman_peres)->Unit(benchmark::kMicrosecond);

void bm_fmcf_group_coverage_cost6(benchmark::State& state) {
  // How fast the FMCF closure accumulates |G[0..6]| (697 of the 5040
  // elements of G) — the group-size computation done by enumeration rather
  // than Schreier-Sims, across the sweep's thread axis.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  for (auto _ : state) {
    synth::ClosureConfig options;
    options.track_witnesses = false;
    options.threads = static_cast<std::size_t>(state.range(0));
    synth::FmcfEnumerator enumerator(library, options);
    enumerator.run_to(6);
    std::size_t cumulative = 1;  // G[0]
    for (const auto& level : enumerator.stats()) cumulative += level.g_new;
    benchmark::DoNotOptimize(cumulative);
  }
}
BENCHMARK(bm_fmcf_group_coverage_cost6)
    ->Unit(benchmark::kMillisecond)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

void bm_membership_test(benchmark::State& state) {
  const perm::PermGroup g = synth::group_with_feynman({synth::peres_perm()});
  const auto probe = synth::fredkin_perm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.contains(probe));
  }
}
BENCHMARK(bm_membership_test)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  regenerate();
  return qsyn::bench::run_benchmarks(argc, argv);
}
