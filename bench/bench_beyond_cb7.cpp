// bench_beyond_cb7: extension experiment — push the FMCF closure past the
// paper's memory-bound cb = 7.
//
// The paper: "The constant cb is the upper-bound cost that we can apply in a
// particular computer (due to finite memory size). In our computer, cb = 7."
// On a modern machine the flat-store enumerator reaches cost 9 in well under
// a minute, yielding |G[8]| and |G[9]| — counts the paper could not compute —
// and the cumulative coverage of the full group |G| = 5040.
//
// Set QSYN_BEYOND_MAX=10 (or higher) to push further; memory grows ~4.5x per
// level.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "synth/fmcf.h"

namespace {

using namespace qsyn;

void regenerate() {
  unsigned max_cost = 9;
  if (const auto cap = parse_env_size_t("QSYN_BEYOND_MAX", 1, 12)) {
    max_cost = static_cast<unsigned>(*cap);
  }
  bench::section("Extension: FMCF closure beyond the paper's cb = 7");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  synth::ClosureConfig options;
  options.track_witnesses = false;
  synth::FmcfEnumerator enumerator(library, options);

  std::printf("  k | |G[k]|  | cumulative G | coverage of 5040 | |B[k]|    | "
              "secs    | approx MiB\n");
  std::printf("  %s\n", std::string(88, '-').c_str());
  std::size_t cumulative = 1;  // G[0]
  for (unsigned k = 1; k <= max_cost; ++k) {
    const auto& s = enumerator.advance();
    cumulative += s.g_new;
    std::printf("  %u | %-7zu | %-12zu | %14.1f %% | %-9zu | %-7.2f | %zu\n",
                k, s.g_new, cumulative,
                100.0 * static_cast<double>(cumulative) / 5040.0, s.frontier,
                s.seconds, enumerator.memory_bytes() >> 20);
  }
  std::printf(
      "  paper values end at k = 7; k >= 8 rows are new results enabled by "
      "the flat-store enumerator.\n");
}

}  // namespace

int main(int argc, char** argv) {
  Stopwatch total;
  regenerate();
  std::printf("  total wall time: %.2f s\n", total.seconds());
  return qsyn::bench::run_benchmarks(argc, argv);
}
