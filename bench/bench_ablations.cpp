// bench_ablations: design-choice ablations called out in DESIGN.md.
//
//  A1. Banned-set pruning: search-space growth with the "reasonable product"
//      constraint disabled (the closure then walks unphysical cascades).
//  A2. Cost model: unit costs (the paper's model) vs a non-uniform NMR-style
//      model — the minimal-cost circuit changes, demonstrating the paper's
//      "easily modified" claim via the weighted Dijkstra synthesizer.
//  A3. The binary-control constraint itself: an unrestricted Hilbert-space
//      search over 5-gate cascades shows the Smolin-DiVincenzo 5-gate
//      Fredkin exists but violates the constraint, while the constrained
//      exact minimum is cost 7.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "la/matrix.h"
#include "mvl/domain.h"
#include "sim/unitary.h"
#include "synth/fmcf.h"
#include "synth/mce.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace {

using namespace qsyn;

void ablation_pruning() {
  bench::section("A1: banned-set pruning (reasonable product) ablation");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::ClosureConfig pruned_options;
  pruned_options.track_witnesses = false;
  synth::FmcfEnumerator pruned(library, pruned_options);
  synth::ClosureConfig free_options;
  free_options.track_witnesses = false;
  free_options.use_banned_sets = false;
  synth::FmcfEnumerator unpruned(library, free_options);
  std::printf("  k | |B[k]| pruned | |B[k]| unpruned | blowup\n");
  for (unsigned k = 1; k <= 5; ++k) {
    const auto& a = pruned.advance();
    const auto& b = unpruned.advance();
    std::printf("  %u | %-13zu | %-15zu | %.2fx\n", k, a.frontier, b.frontier,
                static_cast<double>(b.frontier) /
                    static_cast<double>(a.frontier));
  }
  std::printf(
      "  (unpruned cascades are not quantum-valid: don't-care semantics stop "
      "matching Hilbert space)\n");
}

void ablation_cost_model() {
  bench::section("A2: unit vs NMR-style cost model (weighted synthesis)");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  std::printf(
      "  model: ctrl-V/V+ = %u, CNOT = %u, NOT = %u (unit model: 1/1/0)\n",
      nmr.ctrl_v, nmr.feynman, nmr.not_gate);

  const synth::WeightedSynthesizer unit_synth(library,
                                              gates::CostModel::unit());
  const synth::WeightedSynthesizer nmr_synth(library, nmr);
  struct Row {
    const char* name;
    perm::Permutation target;
  };
  const Row rows[] = {
      {"Peres", synth::peres_perm()},
      {"Toffoli", synth::toffoli_perm()},
      {"swap(B,C)", synth::swap_bc_perm()},
  };
  for (const Row& row : rows) {
    Stopwatch timer;
    const auto unit_result = unit_synth.synthesize(row.target);
    const auto nmr_result = nmr_synth.synthesize(row.target);
    if (!unit_result || !nmr_result) {
      std::printf("  %-10s search exceeded state bound\n", row.name);
      continue;
    }
    // Price the unit-optimal circuit under NMR weights for comparison.
    const unsigned unit_circuit_nmr_cost = nmr_result ? [&] {
      unsigned total = 0;
      for (const auto& g : unit_result->circuit.sequence()) {
        total += g.cost(nmr);
      }
      return total;
    }() : 0;
    std::printf(
        "  %-10s unit-optimal: %-28s (unit %u, NMR %u)\n", row.name,
        unit_result->circuit.to_string().c_str(), unit_result->cost,
        unit_circuit_nmr_cost);
    std::printf(
        "  %-10s NMR-optimal:  %-28s (NMR %u)%s\n", "",
        nmr_result->circuit.to_string().c_str(), nmr_result->cost,
        nmr_result->cost < unit_circuit_nmr_cost
            ? "  <- cheaper than the unit-optimal circuit"
            : "");
    std::printf("  %-10s search time %.3f s\n", "", timer.seconds());
  }
}

/// Quantized hash key for an 8x8 unitary whose entries are Gaussian dyadic
/// rationals (every product of <= ~16 library gates is). Rounding to 1/1024
/// is exact for depths up to 10.
std::string unitary_key(const la::Matrix& u) {
  std::string key;
  key.reserve(64 * 8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const long long re = std::llround(u(r, c).real() * 1024.0);
      const long long im = std::llround(u(r, c).imag() * 1024.0);
      key.append(reinterpret_cast<const char*>(&re), sizeof(re));
      key.append(reinterpret_cast<const char*>(&im), sizeof(im));
    }
  }
  return key;
}

struct MitmEntry {
  la::Matrix unitary;
  unsigned depth = 0;
  std::vector<std::size_t> gate_sequence;
};

/// All distinct unitaries realizable by cascades of <= max_depth library
/// gates, with a minimal-depth witness each (no banned-set constraint).
std::unordered_map<std::string, MitmEntry> unitary_ball(
    const std::vector<la::Matrix>& gate_u, unsigned max_depth) {
  std::unordered_map<std::string, MitmEntry> ball;
  MitmEntry identity{la::Matrix::identity(8), 0, {}};
  ball.emplace(unitary_key(identity.unitary), identity);
  std::vector<const MitmEntry*> frontier;
  frontier.push_back(&ball.begin()->second);
  for (unsigned depth = 1; depth <= max_depth; ++depth) {
    // Collect current frontier snapshots (stable storage across inserts).
    std::vector<MitmEntry> snapshot;
    for (const auto& [key, entry] : ball) {
      if (entry.depth == depth - 1) snapshot.push_back(entry);
    }
    for (const MitmEntry& entry : snapshot) {
      for (std::size_t g = 0; g < gate_u.size(); ++g) {
        MitmEntry next;
        next.unitary = gate_u[g] * entry.unitary;  // append gate g
        next.depth = depth;
        const std::string key = unitary_key(next.unitary);
        if (ball.find(key) != ball.end()) continue;
        next.gate_sequence = entry.gate_sequence;
        next.gate_sequence.push_back(g);
        ball.emplace(key, std::move(next));
      }
    }
  }
  return ball;
}

void ablation_binary_control() {
  bench::section(
      "A3: the binary-control constraint vs unrestricted quantum search "
      "(Fredkin)");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::McExpressor mce(library, 7);
  const auto constrained = mce.minimal_cost(synth::fredkin_perm());
  std::printf("  constrained exact minimum (this paper's model): cost %s\n",
              constrained ? std::to_string(*constrained).c_str() : ">7");

  // Meet-in-the-middle over exact unitaries: prefixes of <= 3 gates meet
  // suffixes of <= 4 gates, covering every unrestricted cascade of <= 7
  // gates — including cascades whose intermediate states are entangled,
  // which the multi-valued model cannot represent.
  Stopwatch timer;
  std::vector<la::Matrix> gate_u;
  for (std::size_t g = 0; g < library.size(); ++g) {
    gate_u.push_back(sim::gate_unitary(library.gate(g), 3));
  }
  const la::Matrix target = sim::permutation_unitary(synth::fredkin_perm(), 3);
  const auto prefixes = unitary_ball(gate_u, 3);
  const auto suffixes = unitary_ball(gate_u, 4);
  unsigned best = 99;
  std::vector<std::size_t> best_sequence;
  for (const auto& [key, prefix] : prefixes) {
    // Need suffix with U_s * U_p = F  =>  U_s = F * U_p^dagger.
    const la::Matrix need = target * prefix.unitary.adjoint();
    const auto it = suffixes.find(unitary_key(need));
    if (it == suffixes.end()) continue;
    const unsigned total = prefix.depth + it->second.depth;
    if (total < best) {
      best = total;
      best_sequence = prefix.gate_sequence;
      best_sequence.insert(best_sequence.end(),
                           it->second.gate_sequence.begin(),
                           it->second.gate_sequence.end());
    }
  }
  std::printf(
      "  unrestricted exact minimum over the same 18-gate library: cost %u "
      "(meet-in-the-middle over %zu + %zu distinct unitaries, %.1f s)\n",
      best, prefixes.size(), suffixes.size(), timer.seconds());
  if (best < 99) {
    gates::Cascade witness(3);
    for (const std::size_t g : best_sequence) witness.append(library.gate(g));
    std::printf("  witness: %s  (reasonable in the paper's model? %s)\n",
                witness.to_string().c_str(),
                witness.is_reasonable(domain) ? "yes" : "no");
  }
  std::printf(
      "  conclusion: Smolin-DiVincenzo's 5-gate Fredkin [15] uses 2-qubit\n"
      "  gates outside this paper's {CV, CV+, CNOT} library; over the "
      "paper's own library the\n  minimum is %u %s the binary-control "
      "constraint (constrained exact minimum: %s).\n",
      best, best == (constrained ? *constrained : 0) ? "even without" : "without",
      constrained ? std::to_string(*constrained).c_str() : ">7");
}

}  // namespace

int main(int argc, char** argv) {
  ablation_pruning();
  ablation_cost_model();
  ablation_binary_control();
  return qsyn::bench::run_benchmarks(argc, argv);
}
