// bench_catalog: the persistent-catalog cold-start and serving numbers.
//
// The paper's workflow recomputes the FMCF closure on every run — at the
// paper's own bound cb = 7 that is a multi-hundred-millisecond sweep before
// the first query can be answered. The persistent catalog amortizes it: one
// process pays the sweep and save_catalog(), every later process reopens the
// file read-only (the frontier tables stay mmap'd, faulted in on demand) and
// serves locate()/witness() immediately. This bench measures the sweep, the
// cold start (open + first query), the batched serving throughput of
// CatalogServer, and the witness-cache hit rate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "synth/catalog_server.h"
#include "synth/fmcf.h"
#include "synth/mce.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

const gates::GateLibrary& library3() {
  static const gates::GateLibrary lib = gates::GateLibrary::standard(3);
  return lib;
}

struct CatalogState {
  std::string path;
  double sweep_seconds = 0.0;
  std::size_t file_bytes = 0;
  unsigned levels = 0;
  std::size_t g7 = 0;  // |G[7]| from the fresh sweep
};

/// Builds the cb = 7 closure once and saves it; everything below queries the
/// saved file.
const CatalogState& catalog_state() {
  static const CatalogState state = [] {
    CatalogState s;
    s.path = (std::filesystem::temp_directory_path() /
              "qsyn_bench_catalog_cb7.qscat")
                 .string();
    Stopwatch sweep;
    synth::FmcfEnumerator enumerator(library3());
    enumerator.run_to(7);
    s.sweep_seconds = sweep.seconds();
    s.levels = enumerator.levels_done();
    s.g7 = enumerator.stats().back().g_new;
    enumerator.save_catalog(s.path);
    s.file_bytes = std::filesystem::file_size(s.path);
    return s;
  }();
  return state;
}

std::vector<perm::Permutation> query_targets() {
  return {synth::peres_perm(),  synth::toffoli_perm(), synth::g2_perm(),
          synth::g3_perm(),     synth::g4_perm(),      synth::swap_bc_perm(),
          synth::fredkin_perm()};
}

void regenerate() {
  const CatalogState& state = catalog_state();
  bench::section("Persistent catalog: cold start vs recomputing the closure");
  bench::value_row("cb = 7 closure sweep",
                   std::to_string(state.sweep_seconds * 1e3) + " ms");
  bench::value_row("catalog size on disk",
                   std::to_string(state.file_bytes >> 20) + " MiB (" +
                       std::to_string(state.file_bytes) + " bytes)");

  Stopwatch cold;
  const synth::FmcfEnumerator reopened =
      synth::FmcfEnumerator::open_catalog(state.path, library3());
  const auto first = reopened.find(synth::peres_perm());
  const double cold_seconds = cold.seconds();
  bench::value_row("cold start (open + first locate)",
                   std::to_string(cold_seconds * 1e3) + " ms");
  std::printf("  %-34s %s (bound 50 ms, sweep %.0f ms)\n",
              "cold start under 50 ms",
              bench::status_word(cold_seconds < 0.050),
              state.sweep_seconds * 1e3);
  bench::value_row(
      "cold-start speedup vs sweep",
      std::to_string(state.sweep_seconds / cold_seconds) + "x");

  bench::compare_row("reopened levels (cb)", 7, reopened.levels_done());
  bench::compare_row("peres located at cost", 4,
                     first.has_value() ? first->cost : -1);
  // |G[7]| — served straight from the reopened index, identical to the
  // fresh sweep's count.
  bench::compare_row("|G[7]| from the catalog",
                     static_cast<long long>(state.g7),
                     static_cast<long long>(reopened.stats()[6].g_new));

  // Serving layer: batched queries + witness cache.
  const synth::CatalogServer server =
      synth::CatalogServer::open(state.path, library3());
  const std::vector<perm::Permutation> targets = query_targets();
  std::size_t answered = 0;
  for (int round = 0; round < 16; ++round) {
    for (const auto& result : server.synthesize_batch(targets)) {
      answered += result.has_value() ? 1 : 0;
    }
  }
  const auto cache = server.cache_stats();
  bench::value_row("batched synthesize answers",
                   std::to_string(answered) + " / " +
                       std::to_string(16 * targets.size()));
  const double hit_rate =
      cache.hits + cache.misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses);
  bench::value_row("witness cache",
                   std::to_string(cache.hits) + " hits / " +
                       std::to_string(cache.misses) + " misses (" +
                       std::to_string(hit_rate) + " % hit rate)");
  std::printf("  %-34s %s\n", "cache converges to repeat hits",
              bench::status_word(cache.misses <= targets.size() &&
                                 cache.hits >= cache.misses));
}

// Cold start: open the catalog and answer one locate. This is the number the
// catalog exists to shrink — compare against the sweep row above.
void bm_catalog_cold_start(benchmark::State& bench_state) {
  const CatalogState& state = catalog_state();
  for (auto _ : bench_state) {
    const synth::FmcfEnumerator reopened =
        synth::FmcfEnumerator::open_catalog(state.path, library3());
    benchmark::DoNotOptimize(reopened.find(synth::peres_perm()));
  }
}
BENCHMARK(bm_catalog_cold_start)->Unit(benchmark::kMillisecond);

// Steady-state single queries against a warm server (locate only: the pure
// mmap'd-index path, no witness reconstruction).
void bm_catalog_locate(benchmark::State& bench_state) {
  const synth::CatalogServer server =
      synth::CatalogServer::open(catalog_state().path, library3());
  const std::vector<perm::Permutation> targets = query_targets();
  std::size_t i = 0;
  for (auto _ : bench_state) {
    benchmark::DoNotOptimize(server.locate(targets[i % targets.size()]));
    ++i;
  }
  bench_state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(bm_catalog_locate);

// Batched synthesize throughput over the server's worker pool, witness cache
// warm after the first iteration (the steady serving regime).
void bm_catalog_server_batch(benchmark::State& bench_state) {
  const synth::CatalogServer server =
      synth::CatalogServer::open(catalog_state().path, library3());
  std::vector<perm::Permutation> batch;
  for (int i = 0; i < 16; ++i) {
    const auto targets = query_targets();
    batch.insert(batch.end(), targets.begin(), targets.end());
  }
  std::size_t answers = 0;
  for (auto _ : bench_state) {
    for (const auto& result : server.synthesize_batch(batch)) {
      answers += result.has_value() ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(answers);
  bench_state.SetItemsProcessed(
      static_cast<std::int64_t>(bench_state.iterations() * batch.size()));
  const auto cache = server.cache_stats();
  bench_state.counters["cache_hit_rate"] =
      cache.hits + cache.misses == 0
          ? 0.0
          : static_cast<double>(cache.hits) /
                static_cast<double>(cache.hits + cache.misses);
}
BENCHMARK(bm_catalog_server_batch)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  Stopwatch total;
  regenerate();
  std::printf("  total wall time: %.2f s\n", total.seconds());
  const int rc = qsyn::bench::run_benchmarks(argc, argv);
  std::filesystem::remove(catalog_state().path);
  return rc;
}
