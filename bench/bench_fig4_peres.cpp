// bench_fig4_peres: regenerates Figures 4 and 8 — MCE synthesis of the Peres
// gate (5,7,6,8). The paper reports quantum cost 4, exactly two
// implementations (Figure 4 and its Hermitian adjoint, Figure 8), and a
// 9-second runtime on an 850 MHz Pentium III.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/mce.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

void regenerate_fig4() {
  bench::section("Figures 4+8: Peres gate synthesis (MCE)");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  Stopwatch timer;
  synth::McExpressor mce(library, 7);
  const auto impls = mce.implementations(synth::peres_perm());
  const double seconds = timer.seconds();

  bench::compare_row("minimal quantum cost", 4,
                     impls.empty() ? -1 : impls.front().cost);
  bench::compare_row("implementations found", 2,
                     static_cast<long long>(impls.size()),
                     "Fig 4 and its Hermitian adjoint (Fig 8)");
  for (const auto& impl : impls) {
    const bool exact =
        sim::realizes_permutation(impl.circuit, synth::peres_perm());
    std::printf("  %-34s %s  (unitary %s)\n", "implementation",
                impl.circuit.to_string().c_str(), bench::status_word(exact));
    std::printf("%s\n", impl.circuit.to_diagram().c_str());
  }
  std::printf("  runtime: %.3f s (paper: 9 s on an 850 MHz P-III)\n",
              seconds);
  // The paper's printed circuits are among the valid realizations.
  const auto fig4 = synth::peres_cascade_fig4();
  const auto fig8 = synth::peres_cascade_fig8();
  std::printf("  paper Fig 4 cascade %s verifies: %s\n",
              fig4.to_string().c_str(),
              bench::status_word(
                  sim::realizes_permutation(fig4, synth::peres_perm())));
  std::printf("  paper Fig 8 cascade %s verifies: %s\n",
              fig8.to_string().c_str(),
              bench::status_word(
                  sim::realizes_permutation(fig8, synth::peres_perm())));
}

void bm_synthesize_peres(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  for (auto _ : state) {
    synth::McExpressor mce(library, 7);  // cold closure each iteration
    benchmark::DoNotOptimize(mce.synthesize(synth::peres_perm()));
  }
}
BENCHMARK(bm_synthesize_peres)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  regenerate_fig4();
  return qsyn::bench::run_benchmarks(argc, argv);
}
