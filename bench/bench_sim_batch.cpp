// bench_sim_batch: the batched & fused simulation engine (sim/fused.h,
// sim/batch.h) on the soundness-sweep serving workload — cross-checking a
// catalog of circuits against the multi-valued model, many circuits per
// call. The artifact section proves the fast path agrees with the
// gate-at-a-time reference on every catalog member; the micro-timings
// measure the cross-check sweep at fuse_block 0 (reference) vs fused block
// sizes and thread counts, plus raw batch-evaluation throughput. Run via
// scripts/run_benches.sh to land the timings in BENCH_pr<N>.json and diff
// the fused rows against the unfused baseline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/simd/kernels.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/batch.h"
#include "sim/cross_check.h"
#include "sim/fused.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

/// A random cascade over the library that stays reasonable gate by gate, so
/// the sweep exercises the full 2^n-input check on every member.
gates::Cascade random_reasonable_cascade(Rng& rng,
                                         const gates::GateLibrary& library,
                                         std::size_t length) {
  gates::Cascade c(library.domain().wires());
  for (std::size_t i = 0; i < length; ++i) {
    for (int tries = 0; tries < 64; ++tries) {
      gates::Cascade extended = c;
      extended.append(library.gate(rng.below(library.size())));
      if (extended.is_reasonable(library.domain())) {
        c = std::move(extended);
        break;
      }
    }
  }
  return c;
}

/// The serving catalog: the paper's printed circuits plus seeded random
/// reasonable cascades (lengths 4..15 — long enough that fusion has blocks
/// to fold).
const std::vector<gates::Cascade>& catalog() {
  static const std::vector<gates::Cascade> circuits = [] {
    const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
    const gates::GateLibrary library(domain);
    std::vector<gates::Cascade> out;
    out.push_back(synth::peres_cascade_fig4());
    out.push_back(synth::peres_cascade_fig8());
    out.push_back(synth::g2_cascade_fig5());
    out.push_back(synth::g3_cascade_fig6());
    out.push_back(synth::g4_cascade_fig7());
    for (const gates::Cascade& c : synth::toffoli_cascades_fig9()) {
      out.push_back(c);
    }
    Rng rng(42);
    while (out.size() < 160) {
      out.push_back(
          random_reasonable_cascade(rng, library, 4 + rng.below(12)));
    }
    return out;
  }();
  return circuits;
}

std::vector<const gates::Cascade*> catalog_pointers() {
  std::vector<const gates::Cascade*> out;
  for (const gates::Cascade& c : catalog()) out.push_back(&c);
  return out;
}

void regenerate_artifact() {
  bench::section("Batched & fused cross-check sweep (soundness serving)");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const auto pointers = catalog_pointers();

  sim::SimOptions reference_options;
  reference_options.fuse_block = 0;
  reference_options.threads = 1;
  sim::BatchSimulator reference(reference_options);
  const std::vector<char> expected =
      sim::mv_model_matches_hilbert_batch(pointers, domain, 1e-9, reference);
  long long reference_pass = 0;
  for (const char ok : expected) reference_pass += ok;

  bench::compare_row("catalog circuits pass (reference)",
                     static_cast<long long>(pointers.size()), reference_pass,
                     "every reasonable cascade must pass");

  for (const std::size_t fuse : {1u, 4u, 16u}) {
    sim::SimOptions options;
    options.fuse_block = fuse;
    options.threads = 1;
    sim::BatchSimulator fused(options);
    const std::vector<char> got =
        sim::mv_model_matches_hilbert_batch(pointers, domain, 1e-9, fused);
    long long agree = 0;
    for (std::size_t i = 0; i < got.size(); ++i) agree += got[i] == expected[i];
    bench::compare_row(
        "fused verdicts agree (fuse=" + std::to_string(fuse) + ")",
        static_cast<long long>(pointers.size()), agree);
    if (fuse == 16) {
      bench::value_row("block cache (fuse=16)",
                       std::to_string(fused.cache().size()) + " blocks, " +
                           std::to_string(fused.cache().hits()) + " hits / " +
                           std::to_string(fused.cache().misses()) +
                           " misses");
    }
  }

  // GEMM-batched vs per-column application must be bit-identical (dyadic
  // amplitudes), not just tolerance-close.
  bench::value_row("simd engine", simd::active_engine_name());
  std::vector<sim::SimJob> jobs;
  for (const gates::Cascade& c : catalog()) {
    for (std::uint32_t bits = 0; bits < (1u << c.wires()); ++bits) {
      jobs.push_back(sim::SimJob{&c, bits});
    }
  }
  sim::SimOptions gemm_options;
  gemm_options.fuse_block = 16;
  gemm_options.threads = 1;
  gemm_options.gemm_batch = true;
  sim::SimOptions column_options = gemm_options;
  column_options.gemm_batch = false;
  sim::BatchSimulator gemm_sim(gemm_options);
  sim::BatchSimulator column_sim(column_options);
  const std::vector<la::Vector> gemm_states = gemm_sim.run(jobs);
  const std::vector<la::Vector> column_states = column_sim.run(jobs);
  long long identical = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    identical += gemm_states[i].data() == column_states[i].data();
  }
  bench::compare_row("gemm == per-column (bitwise)",
                     static_cast<long long>(jobs.size()), identical,
                     "exact dyadic arithmetic");
}

/// One full soundness sweep over the catalog. fuse_block = 0 is the
/// gate-at-a-time unfused baseline the other rows are diffed against.
void bm_cross_check_sweep(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const auto pointers = catalog_pointers();
  sim::SimOptions options;
  options.fuse_block = static_cast<std::size_t>(state.range(0));
  options.threads = 1;
  sim::BatchSimulator sim(options);
  // Warm the block cache: steady-state serving re-checks a known catalog.
  benchmark::DoNotOptimize(
      sim::mv_model_matches_hilbert_batch(pointers, domain, 1e-9, sim));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::mv_model_matches_hilbert_batch(pointers, domain, 1e-9, sim));
  }
  state.counters["circuits"] = static_cast<double>(pointers.size());
}
BENCHMARK(bm_cross_check_sweep)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// The same sweep fanned out across worker threads (fuse_block = 4).
void bm_cross_check_sweep_threads(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const auto pointers = catalog_pointers();
  sim::SimOptions options;
  options.fuse_block = 4;
  options.threads = static_cast<std::size_t>(state.range(0));
  sim::BatchSimulator sim(options);
  benchmark::DoNotOptimize(
      sim::mv_model_matches_hilbert_batch(pointers, domain, 1e-9, sim));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::mv_model_matches_hilbert_batch(pointers, domain, 1e-9, sim));
  }
}
BENCHMARK(bm_cross_check_sweep_threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Raw batch throughput: every (circuit, input) pair of the catalog as one
/// jobs vector — the many-circuits-per-call serving shape.
void bm_batch_throughput(benchmark::State& state) {
  std::vector<sim::SimJob> jobs;
  for (const gates::Cascade& c : catalog()) {
    for (std::uint32_t bits = 0; bits < (1u << c.wires()); ++bits) {
      jobs.push_back(sim::SimJob{&c, bits});
    }
  }
  sim::SimOptions options;
  options.fuse_block = static_cast<std::size_t>(state.range(0));
  options.threads = 1;
  sim::BatchSimulator sim(options);
  benchmark::DoNotOptimize(sim.run(jobs));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
}
BENCHMARK(bm_batch_throughput)
    ->Arg(0)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// GEMM-batched (1) vs per-column (0) block application on the same jobs
/// vector — the fused-path delta the vectorized kernels PR records.
/// fuse_block = 4 so the length-4..15 catalog cascades fold to 1..4 blocks:
/// the batched path only engages past block 0 (block 0 is a column gather
/// either way), so whole-cascade fusion would leave it nothing to multiply.
void bm_batch_gemm_toggle(benchmark::State& state) {
  std::vector<sim::SimJob> jobs;
  for (const gates::Cascade& c : catalog()) {
    for (std::uint32_t bits = 0; bits < (1u << c.wires()); ++bits) {
      jobs.push_back(sim::SimJob{&c, bits});
    }
  }
  sim::SimOptions options;
  options.fuse_block = 4;
  options.threads = 1;
  options.gemm_batch = state.range(0) != 0;
  sim::BatchSimulator sim(options);
  benchmark::DoNotOptimize(sim.run(jobs));  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(jobs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(jobs.size()));
  state.SetLabel(state.range(0) != 0 ? "gemm" : "per-column");
}
BENCHMARK(bm_batch_gemm_toggle)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  regenerate_artifact();
  return qsyn::bench::run_benchmarks(argc, argv);
}
