// bench_fig1_gates: regenerates Figure 1 / Section 2 — the elementary gate
// matrices V and V+ exactly as printed in the paper, and the defining
// algebraic identities V*V = V+*V+ = NOT, V*V+ = V+*V = I, plus the
// four signal states V0, V1 and the six-to-four value reduction
// (V0 = V+1, V1 = V+0).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "la/gate_constants.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace {

using namespace qsyn;

void check(const char* label, bool ok) {
  std::printf("  %-46s %s\n", label, bench::status_word(ok));
}

void regenerate_fig1() {
  bench::section("Figure 1 / Section 2: elementary quantum gates");
  std::printf("V  =\n%s\n", la::mat_v().to_string(2).c_str());
  std::printf("V+ =\n%s\n", la::mat_v_dagger().to_string(2).c_str());
  check("V x V  == NOT", (la::mat_v() * la::mat_v()).approx_equal(la::mat_x()));
  check("V+ x V+ == NOT",
        (la::mat_v_dagger() * la::mat_v_dagger()).approx_equal(la::mat_x()));
  check("V x V+ == I", (la::mat_v() * la::mat_v_dagger()).is_identity());
  check("V+ x V == I", (la::mat_v_dagger() * la::mat_v()).is_identity());
  check("V, V+ unitary",
        la::mat_v().is_unitary() && la::mat_v_dagger().is_unitary());

  std::printf("\nsignal values (Section 2):\n");
  std::printf("  V0 = V|0>  = %s\n", la::state_v0().to_string(2).c_str());
  std::printf("  V1 = V|1>  = %s\n", la::state_v1().to_string(2).c_str());
  check("V0 == V+|1> (six values reduce to four)",
        (la::mat_v_dagger() * la::state_1()).approx_equal(la::state_v0()));
  check("V1 == V+|0>",
        (la::mat_v_dagger() * la::state_0()).approx_equal(la::state_v1()));
  check("V(V0) == |1> exactly",
        (la::mat_v() * la::state_v0()).approx_equal(la::state_1()));
  check("NOT swaps V0 <-> V1 exactly",
        (la::mat_x() * la::state_v0()).approx_equal(la::state_v1()));
}

void bm_matrix_mul_2x2(benchmark::State& state) {
  const la::Matrix v = la::mat_v();
  for (auto _ : state) {
    benchmark::DoNotOptimize(v * v);
  }
}
BENCHMARK(bm_matrix_mul_2x2);

void bm_unitarity_check_8x8(benchmark::State& state) {
  const la::Matrix big = la::mat_v().kron(la::mat_v()).kron(la::mat_x());
  for (auto _ : state) {
    benchmark::DoNotOptimize(big.is_unitary());
  }
}
BENCHMARK(bm_unitarity_check_8x8);

}  // namespace

int main(int argc, char** argv) {
  regenerate_fig1();
  return qsyn::bench::run_benchmarks(argc, argv);
}
