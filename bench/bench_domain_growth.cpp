// bench_domain_growth: the growth curve of the paper's construction
// generalized to n qubits behind the NQubitDomain / GateLibrary::standard
// API.
//
// For n = 2..5 the reduced domain has 4^n - 3^n + 1 labels and the library
// L(n) has 3n(n-1) gates (n control classes of 2(n-1) controlled-V/V+ each,
// C(n,2) Feynman classes of 2 CNOTs each) — 6/18/36/60 gates over
// 8/38/176/782 labels. The FMCF closure then runs a few levels per width to
// record frontier sizes, |G[k]|, expansion throughput (frontier rows per
// second) and memory. The 5-wire rows exercise the two-byte label stores
// and the 256-bit G-set keys end to end.
//
// Depth per width is sized for a laptop-class container; QSYN_GROWTH_DEPTH
// caps every width at once (1..8) for quick smoke runs or deeper pushes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/nqubit.h"
#include "synth/fmcf.h"

namespace {

using namespace qsyn;

unsigned depth_for(std::size_t wires) {
  // 2 wires run to saturation (GL(2,2) is tiny); 5-wire levels grow ~60x
  // per step, so the default depth shrinks with the width.
  unsigned depth = 2;
  if (wires == 2) depth = 8;
  if (wires == 3) depth = 4;
  if (wires == 4) depth = 3;
  if (const char* env = std::getenv("QSYN_GROWTH_DEPTH")) {
    const unsigned cap =
        static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (cap >= 1 && cap <= 8) depth = cap;
  }
  return depth;
}

void regenerate() {
  bench::section("Extension: n-qubit domain & library growth (n = 2..5)");
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    const gates::GateLibrary library = gates::GateLibrary::standard(nq);
    const std::string tag = "n=" + std::to_string(n);
    bench::compare_row(
        tag + " domain labels",
        static_cast<long long>(mvl::NQubitDomain::reduced_size(n)),
        static_cast<long long>(nq.size()), "4^n - 3^n + 1");
    bench::compare_row(tag + " library gates",
                       static_cast<long long>(nq.library_size()),
                       static_cast<long long>(library.size()),
                       "3n(n-1); 18 at n=3");
    bench::value_row(tag + " banned classes",
                     std::to_string(nq.num_classes()) + " (" +
                         std::to_string(nq.control_class_count()) +
                         " control + " +
                         std::to_string(nq.feynman_class_count()) +
                         " Feynman)");

    synth::FmcfOptions options;
    options.track_witnesses = false;
    synth::FmcfEnumerator enumerator(library, options);
    std::printf(
        "  k | |B[k]|    | |G[k]|  | secs    | perms/s    | approx MiB\n");
    std::printf("  %s\n", std::string(62, '-').c_str());
    for (unsigned k = 1; k <= depth_for(n) && !enumerator.saturated(); ++k) {
      const auto& s = enumerator.advance();
      const double rate = s.seconds > 0 ? s.frontier / s.seconds : 0.0;
      std::printf("  %u | %-9zu | %-7zu | %-7.3f | %-10.0f | %zu\n", s.cost,
                  s.frontier, s.g_new, s.seconds, rate,
                  enumerator.memory_bytes() >> 20);
    }
    // |G[1]| is always the n(n-1) Feynman gates: controlled-V gates leave
    // binary patterns mixed, so cost-1 reversible circuits are exactly the
    // CNOTs.
    bench::compare_row(tag + " |G[1]|",
                       static_cast<long long>(n * (n - 1)),
                       static_cast<long long>(enumerator.stats()[0].g_new),
                       "the n(n-1) CNOTs");
  }
}

void bm_standard_library(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const gates::GateLibrary library = gates::GateLibrary::standard(n);
    benchmark::DoNotOptimize(library.size());
  }
}
BENCHMARK(bm_standard_library)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void bm_closure_level2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const mvl::NQubitDomain nq(n);
  const gates::GateLibrary library = gates::GateLibrary::standard(nq);
  for (auto _ : state) {
    synth::FmcfOptions options;
    options.track_witnesses = false;
    synth::FmcfEnumerator enumerator(library, options);
    enumerator.run_to(2);
    benchmark::DoNotOptimize(enumerator.seen_count());
  }
}
BENCHMARK(bm_closure_level2)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Stopwatch total;
  regenerate();
  std::printf("  total wall time: %.2f s\n", total.seconds());
  return qsyn::bench::run_benchmarks(argc, argv);
}
