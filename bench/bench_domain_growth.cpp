// bench_domain_growth: the growth curve of the paper's construction
// generalized to n qubits behind the NQubitDomain / GateLibrary::standard
// API.
//
// For n = 2..5 the reduced domain has 4^n - 3^n + 1 labels and the library
// L(n) has 3n(n-1) gates (n control classes of 2(n-1) controlled-V/V+ each,
// C(n,2) Feynman classes of 2 CNOTs each) — 6/18/36/60 gates over
// 8/38/176/782 labels. The FMCF closure then runs a few levels per width to
// record frontier sizes, |G[k]|, expansion throughput (frontier rows per
// second) and memory. The 5-wire rows exercise the two-byte label stores
// and the 256-bit G-set keys end to end.
//
// Depth per width is sized for a laptop-class container; QSYN_GROWTH_DEPTH
// caps every width at once (1..8) for quick smoke runs or deeper pushes.
//
// The out-of-core section pushes the 5-wire closure one level past what the
// in-memory sweep records (k = 3: |B[3]| = 44350 rows of 1564 B, ~70 MiB of
// seen-set) under a spill budget far below the working set, so the seen-set
// and frontier stores seal to prefix-compressed run files and the level's set
// algebra runs as streaming merges. Its table adds heap-vs-disk columns, and
// bm_closure_outofcore/5 exports the same run (levels, frontier rows,
// heap/disk MiB counters) into the bench JSON.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/simd/kernels.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/nqubit.h"
#include "synth/fmcf.h"

namespace {

using namespace qsyn;

// The one QSYN_GROWTH_DEPTH read (strict parse, warn-once on garbage),
// clamped per caller — the in-memory and out-of-core sections accept
// different ranges.
unsigned growth_depth_env(unsigned fallback, unsigned max_depth) {
  if (const auto cap = parse_env_size_t("QSYN_GROWTH_DEPTH", 1, max_depth)) {
    return static_cast<unsigned>(*cap);
  }
  return fallback;
}

unsigned depth_for(std::size_t wires) {
  // 2 wires run to saturation (GL(2,2) is tiny); 5-wire levels grow ~60x
  // per step, so the default depth shrinks with the width.
  unsigned depth = 2;
  if (wires == 2) depth = 8;
  if (wires == 3) depth = 4;
  if (wires == 4) depth = 3;
  return growth_depth_env(depth, 8);
}

void regenerate() {
  bench::section("Extension: n-qubit domain & library growth (n = 2..5)");
  // The engine behind the store sweeps below (QSYN_SIMD=off pins scalar;
  // per-level stats are engine-invariant, only the wall time moves).
  bench::value_row("simd engine", simd::active_engine_name());
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    const gates::GateLibrary library = gates::GateLibrary::standard(nq);
    const std::string tag = "n=" + std::to_string(n);
    bench::compare_row(
        tag + " domain labels",
        static_cast<long long>(mvl::NQubitDomain::reduced_size(n)),
        static_cast<long long>(nq.size()), "4^n - 3^n + 1");
    bench::compare_row(tag + " library gates",
                       static_cast<long long>(nq.library_size()),
                       static_cast<long long>(library.size()),
                       "3n(n-1); 18 at n=3");
    bench::value_row(tag + " banned classes",
                     std::to_string(nq.num_classes()) + " (" +
                         std::to_string(nq.control_class_count()) +
                         " control + " +
                         std::to_string(nq.feynman_class_count()) +
                         " Feynman)");

    synth::ClosureConfig options;
    options.track_witnesses = false;
    synth::FmcfEnumerator enumerator(library, options);
    std::printf(
        "  k | |B[k]|    | |G[k]|  | secs    | perms/s    | approx MiB\n");
    std::printf("  %s\n", std::string(62, '-').c_str());
    for (unsigned k = 1; k <= depth_for(n) && !enumerator.saturated(); ++k) {
      const auto& s = enumerator.advance();
      const double rate = s.seconds > 0 ? s.frontier / s.seconds : 0.0;
      std::printf("  %u | %-9zu | %-7zu | %-7.3f | %-10.0f | %zu\n", s.cost,
                  s.frontier, s.g_new, s.seconds, rate,
                  enumerator.memory_bytes() >> 20);
    }
    // |G[1]| is always the n(n-1) Feynman gates: controlled-V gates leave
    // binary patterns mixed, so cost-1 reversible circuits are exactly the
    // CNOTs.
    bench::compare_row(tag + " |G[1]|",
                       static_cast<long long>(n * (n - 1)),
                       static_cast<long long>(enumerator.stats()[0].g_new),
                       "the n(n-1) CNOTs");
  }
}

// Spill budget for the out-of-core rows: well under the ~70 MiB the 5-wire
// seen-set reaches by k = 3, so it seals several runs per shard, yet large
// enough that run files stay chunky and the merge fan-in low.
constexpr std::size_t kOutOfCoreBudgetBytes = std::size_t(32) << 20;

unsigned outofcore_depth() {
  // One level past the in-memory default for n = 5. QSYN_GROWTH_DEPTH moves
  // it within 1..4: smoke runs set 1, and 4 opts into the ~1.6 GiB-of-rows
  // level that only fits because the stores spill.
  return growth_depth_env(3, 4);
}

void regenerate_outofcore() {
  bench::section(
      "Extension: out-of-core 5-wire closure (spill budget 32 MiB)");
  const gates::GateLibrary library = gates::GateLibrary::standard(5);
  synth::ClosureConfig options;
  options.track_witnesses = false;
  options.spill_budget_bytes = kOutOfCoreBudgetBytes;
  synth::FmcfEnumerator enumerator(library, options);
  std::printf(
      "  k | |B[k]|    | |G[k]|  | secs    | heap MiB | disk MiB\n");
  std::printf("  %s\n", std::string(58, '-').c_str());
  const unsigned depth = outofcore_depth();
  for (unsigned k = 1; k <= depth && !enumerator.saturated(); ++k) {
    const auto& s = enumerator.advance();
    std::printf("  %u | %-9zu | %-7zu | %-7.3f | %-8zu | %zu\n", s.cost,
                s.frontier, s.g_new, s.seconds,
                enumerator.memory_bytes() >> 20,
                enumerator.disk_bytes() >> 20);
  }
  if (depth >= 3) {
    // The point of the exercise: the k = 3 level ran with sealed runs on
    // disk, and the stats it produced are the same ones the all-in-RAM
    // sweep computes (test_spill pins that identity at n = 3).
    bench::value_row("n=5 spill engaged",
                     enumerator.disk_bytes() > 0 ? "yes" : "NO (DIFFERS)");
    bench::value_row(
        "n=5 heap vs disk",
        std::to_string(enumerator.memory_bytes() >> 20) + " MiB heap, " +
            std::to_string(enumerator.disk_bytes() >> 20) + " MiB spilled");
  }
}

void bm_closure_outofcore(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const gates::GateLibrary library = gates::GateLibrary::standard(n);
  const unsigned depth = outofcore_depth();
  for (auto _ : state) {
    synth::ClosureConfig options;
    options.track_witnesses = false;
    options.spill_budget_bytes = kOutOfCoreBudgetBytes;
    synth::FmcfEnumerator enumerator(library, options);
    enumerator.run_to(depth);
    benchmark::DoNotOptimize(enumerator.seen_count());
    state.counters["levels"] =
        static_cast<double>(enumerator.levels_done());
    state.counters["frontier_rows"] = static_cast<double>(
        enumerator.stats().empty() ? 0 : enumerator.stats().back().frontier);
    state.counters["heap_MiB"] =
        static_cast<double>(enumerator.memory_bytes() >> 20);
    state.counters["disk_MiB"] =
        static_cast<double>(enumerator.disk_bytes() >> 20);
  }
}
BENCHMARK(bm_closure_outofcore)
    ->Arg(5)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

// --- kernel micro-benches ---------------------------------------------------
//
// The set-algebra kernels in isolation, on the row shapes the closure
// actually sweeps (38 B = n=3 one-byte labels, 1564 B = n=5 two-byte
// labels). Arg 1 selects the engine: 0 = dispatched (radix + vector
// compare), 1 = forced scalar (the historical indirect std::sort) — the
// pair is the kernel-level speedup BENCH_pr9.json records.

std::vector<std::uint8_t> random_rows(std::size_t count, std::size_t stride,
                                      std::uint32_t seed) {
  std::mt19937 rng(seed);
  std::vector<std::uint8_t> rows(count * stride);
  for (auto& byte : rows) byte = static_cast<std::uint8_t>(rng() & 0xFF);
  return rows;
}

void bm_kernel_sort_unique(benchmark::State& state) {
  const auto stride = static_cast<std::size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const std::size_t count = (std::size_t(8) << 20) / stride;
  const std::vector<std::uint8_t> rows = random_rows(count, stride, 42);
  simd::force_scalar(scalar);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    simd::sort_unique_rows(rows.data(), count, stride, out);
    benchmark::DoNotOptimize(out.data());
  }
  simd::force_scalar(false);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows.size()));
  state.counters["rows"] = static_cast<double>(count);
  state.SetLabel(scalar ? "scalar" : simd::active_engine_name());
}
BENCHMARK(bm_kernel_sort_unique)
    ->Args({38, 0})
    ->Args({38, 1})
    ->Args({1564, 0})
    ->Args({1564, 1})
    ->Unit(benchmark::kMillisecond);

void bm_kernel_subtract(benchmark::State& state) {
  const auto stride = static_cast<std::size_t>(state.range(0));
  const bool scalar = state.range(1) != 0;
  const std::size_t count = (std::size_t(8) << 20) / stride;
  std::vector<std::uint8_t> a = random_rows(count, stride, 7);
  std::vector<std::uint8_t> b = random_rows(count, stride, 11);
  std::vector<std::uint8_t> sorted;
  simd::sort_unique_rows_scalar(a.data(), count, stride, sorted);
  a.swap(sorted);
  simd::sort_unique_rows_scalar(b.data(), count, stride, sorted);
  b.swap(sorted);
  simd::force_scalar(scalar);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    simd::subtract_sorted_rows(a.data(), a.size() / stride, b.data(),
                               b.size() / stride, stride, out);
    benchmark::DoNotOptimize(out.data());
  }
  simd::force_scalar(false);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.size() + b.size()));
  state.SetLabel(scalar ? "scalar" : simd::active_engine_name());
}
BENCHMARK(bm_kernel_subtract)
    ->Args({38, 0})
    ->Args({38, 1})
    ->Args({1564, 0})
    ->Args({1564, 1})
    ->Unit(benchmark::kMillisecond);

void bm_standard_library(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const gates::GateLibrary library = gates::GateLibrary::standard(n);
    benchmark::DoNotOptimize(library.size());
  }
}
BENCHMARK(bm_standard_library)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

void bm_closure_level2(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const mvl::NQubitDomain nq(n);
  const gates::GateLibrary library = gates::GateLibrary::standard(nq);
  for (auto _ : state) {
    synth::ClosureConfig options;
    options.track_witnesses = false;
    synth::FmcfEnumerator enumerator(library, options);
    enumerator.run_to(2);
    benchmark::DoNotOptimize(enumerator.seen_count());
  }
}
BENCHMARK(bm_closure_level2)->DenseRange(2, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Stopwatch total;
  regenerate();
  regenerate_outofcore();
  std::printf("  total wall time: %.2f s\n", total.seconds());
  return qsyn::bench::run_benchmarks(argc, argv);
}
