// bench_table1: regenerates Table 1 of the paper — the 16-row multi-valued
// truth table of the 2-qubit controlled-V gate — and times truth-table
// generation over the full quaternary domain.
//
// Expected: the printed table matches the paper row for row, and the label
// column forms the permutation (3,7,4,8).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "gates/gate.h"
#include "gates/truth_table.h"
#include "mvl/domain.h"

namespace {

using namespace qsyn;

void regenerate_table1() {
  bench::section("Table 1: truth table of the 2-qubit controlled-V gate");
  const mvl::PatternDomain full2 = mvl::PatternDomain::full(2);
  const gates::Gate ctrl_v = gates::Gate::ctrl_v(1, 0);
  const gates::TruthTable table = gates::make_truth_table(ctrl_v, full2);
  std::printf("%s", table.to_text().c_str());
  const std::string measured = table.to_permutation().to_cycle_string();
  std::printf("  permutation representation: paper=(3,7,4,8) measured=%s %s\n",
              measured.c_str(), bench::status_word(measured == "(3,7,4,8)"));
}

void bm_truth_table_full2(benchmark::State& state) {
  const mvl::PatternDomain full2 = mvl::PatternDomain::full(2);
  const gates::Gate ctrl_v = gates::Gate::ctrl_v(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gates::make_truth_table(ctrl_v, full2));
  }
}
BENCHMARK(bm_truth_table_full2);

void bm_truth_table_reduced3(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::Gate ctrl_v = gates::Gate::ctrl_v(1, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gates::make_truth_table(ctrl_v, domain));
  }
}
BENCHMARK(bm_truth_table_reduced3);

}  // namespace

int main(int argc, char** argv) {
  regenerate_table1();
  return qsyn::bench::run_benchmarks(argc, argv);
}
