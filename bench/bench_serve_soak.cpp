// bench_serve_soak: soak test of the multi-tenant serving front end
// (serve/automata_service.h). A fleet of automaton and QRNG tenants over
// mixed cascade sizes n = 2..4 serves a sustained stream of step / sample /
// distribution traffic with measurement-backend flips mid-stream and tenant
// churn (departing tenants replaced by circuits synthesized through a
// CatalogServer, so the witness cache sees serving traffic too). Reports
// requests/s, p50/p99 serving latency, and the block-unitary / witness
// cache hit rates — the steady-state numbers the serving layer exists for.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "automata/automaton.h"
#include "automata/qrng.h"
#include "bench_util.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "perm/permutation.h"
#include "serve/automata_service.h"
#include "synth/catalog_server.h"
#include "synth/fmcf.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

/// Requests the soak must sustain (the serving acceptance floor).
constexpr std::uint64_t kSoakFloor = 100000;

/// A random cascade over the library that stays reasonable gate by gate —
/// reasonable circuits keep the MV and Hilbert backends bit-identical, so
/// backend flips mid-traffic never change tenant streams.
gates::Cascade random_reasonable_cascade(Rng& rng,
                                         const gates::GateLibrary& library,
                                         std::size_t length) {
  gates::Cascade c(library.domain().wires());
  for (std::size_t i = 0; i < length; ++i) {
    for (int tries = 0; tries < 64; ++tries) {
      gates::Cascade extended = c;
      extended.append(library.gate(rng.below(library.size())));
      if (extended.is_reasonable(library.domain())) {
        c = std::move(extended);
        break;
      }
    }
  }
  return c;
}

const gates::GateLibrary& library_for(std::size_t wires) {
  static const gates::GateLibrary lib2 = gates::GateLibrary::standard(2);
  static const gates::GateLibrary lib3 = gates::GateLibrary::standard(3);
  static const gates::GateLibrary lib4 = gates::GateLibrary::standard(4);
  switch (wires) {
    case 2:
      return lib2;
    case 3:
      return lib3;
    default:
      return lib4;
  }
}

struct TenantInfo {
  std::uint64_t id = 0;
  bool is_qrng = false;
  bool churnable = false;
  std::uint32_t input_words = 1;  // valid inputs are [0, input_words)
  automata::MeasurementBackend backend =
      automata::MeasurementBackend::kMultiValued;
};

struct SoakResult {
  serve::ServiceStats stats;
  sim::UnitaryCache::Stats engine_cache;
  synth::CatalogServer::CacheStats witness_cache;
  double seconds = 0.0;
  std::uint64_t backend_flips = 0;
  std::uint64_t churns = 0;
  std::size_t peak_tenants = 0;
};

TenantInfo add_automaton_tenant(serve::AutomataService& service,
                                gates::Cascade circuit, bool churnable) {
  TenantInfo info;
  info.input_words =
      std::uint32_t(1) << (circuit.wires() - 1);  // 1 state wire
  info.id =
      service.add_automaton(automata::QuantumAutomaton(std::move(circuit), 1));
  info.churnable = churnable;
  return info;
}

SoakResult run_soak() {
  SoakResult result;

  // The churn supply chain: a served FMCF closure over the paper's 3-wire
  // library. Departing tenants are replaced with circuits synthesized
  // through this server, cycling a fixed target set so the witness cache
  // sees the skewed repeat-heavy mix serving is built for.
  synth::FmcfEnumerator closure(library_for(3));
  closure.run_to(4);
  const synth::CatalogServer catalog{std::move(closure)};
  const std::vector<perm::Permutation> churn_targets = {
      synth::peres_perm(), synth::g2_perm(), synth::g3_perm(),
      synth::g4_perm()};

  serve::AutomataService::Options options;
  options.seed = 20260808;
  serve::AutomataService service(options);

  // The resident fleet: automatons on random reasonable cascades at n = 2,
  // 3 and 4 wires, plus controlled-coin QRNGs at 2 and 3 wires.
  Rng build_rng(17);
  std::vector<TenantInfo> tenants;
  for (const std::size_t wires : {std::size_t(2), std::size_t(3),
                                  std::size_t(3), std::size_t(4)}) {
    tenants.push_back(add_automaton_tenant(
        service,
        random_reasonable_cascade(build_rng, library_for(wires),
                                  4 + build_rng.below(5)),
        /*churnable=*/false));
  }
  for (const std::size_t wires : {std::size_t(2), std::size_t(3)}) {
    TenantInfo info;
    info.is_qrng = true;
    const auto qrng = automata::ControlledQrng::synthesize(
        library_for(wires), automata::controlled_coin_spec(wires));
    QSYN_CHECK(qrng.has_value(), "coin spec must synthesize");
    info.input_words = std::uint32_t(1) << wires;
    info.id = service.add_qrng(*qrng);
    tenants.push_back(info);
  }
  // Two churn slots, initially filled from the catalog.
  std::size_t next_target = 0;
  const auto churn_circuit = [&]() -> gates::Cascade {
    const auto synthesized =
        catalog.synthesize(churn_targets[next_target % churn_targets.size()]);
    ++next_target;
    QSYN_CHECK(synthesized.has_value(), "churn target must be in the catalog");
    return synthesized->circuit;
  };
  for (int i = 0; i < 2; ++i) {
    tenants.push_back(
        add_automaton_tenant(service, churn_circuit(), /*churnable=*/true));
  }
  result.peak_tenants = tenants.size();

  // Phase 1: chunked mixed traffic from one driver. Random tenant per
  // request; ~2% of requests flip the tenant's measurement backend; every
  // few chunks one churnable tenant departs and a catalog-synthesized
  // replacement joins.
  Rng traffic(99);
  Stopwatch clock;
  constexpr std::size_t kChunk = 128;
  std::uint64_t submitted = 0;
  std::uint64_t chunk_index = 0;
  const std::uint64_t threaded_budget = 4 * 3000;
  while (submitted + threaded_budget < kSoakFloor + 8000) {
    std::vector<serve::Request> chunk;
    chunk.reserve(kChunk);
    for (std::size_t i = 0; i < kChunk; ++i) {
      TenantInfo& tenant = tenants[traffic.below(tenants.size())];
      serve::Request request;
      request.tenant = tenant.id;
      const std::uint64_t roll = traffic.below(100);
      if (roll < 2) {
        request.kind = serve::RequestKind::kSetBackend;
        tenant.backend =
            tenant.backend == automata::MeasurementBackend::kMultiValued
                ? automata::MeasurementBackend::kHilbert
                : automata::MeasurementBackend::kMultiValued;
        request.backend = tenant.backend;
        ++result.backend_flips;
      } else if (roll < 22) {
        request.kind = serve::RequestKind::kDistribution;
        request.input_bits = traffic.below(tenant.input_words);
      } else {
        request.kind = tenant.is_qrng ? serve::RequestKind::kSample
                                      : serve::RequestKind::kStep;
        request.input_bits = traffic.below(tenant.input_words);
      }
      chunk.push_back(request);
    }
    for (const serve::Response& response : service.submit_batch(chunk)) {
      QSYN_CHECK(response.status == serve::ResponseStatus::kOk,
                 "soak traffic must be accepted");
    }
    submitted += chunk.size();
    ++chunk_index;
    if (chunk_index % 64 == 0) {
      // Tenant churn: retire one churnable tenant, admit a fresh catalog
      // synthesis under a brand-new id (ids are never reused).
      for (std::size_t t = 0; t < tenants.size(); ++t) {
        if (!tenants[t].churnable) continue;
        QSYN_CHECK(service.remove_tenant(tenants[t].id),
                   "churn tenant must exist");
        tenants[t] =
            add_automaton_tenant(service, churn_circuit(), /*churnable=*/true);
        ++result.churns;
        break;
      }
    }
  }

  // Phase 2: concurrent submitters — four threads, each hammering its own
  // tenant through single-request submits, coalescing via the combining
  // queue (and on a 1-CPU box, mostly through combiner handoff).
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < 4; ++t) {
    const TenantInfo tenant = tenants[t % tenants.size()];
    submitters.emplace_back([&service, tenant, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < 3000; ++i) {
        serve::Request request;
        request.tenant = tenant.id;
        request.kind = tenant.is_qrng ? serve::RequestKind::kSample
                                      : serve::RequestKind::kStep;
        request.input_bits =
            static_cast<std::uint32_t>(rng.below(tenant.input_words));
        const serve::Response response = service.submit(request);
        QSYN_CHECK(response.status == serve::ResponseStatus::kOk,
                   "threaded soak traffic must be accepted");
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();

  result.seconds = clock.seconds();
  result.stats = service.stats();
  result.engine_cache = service.engine_cache_stats();
  result.witness_cache = catalog.cache_stats();
  return result;
}

double hit_rate(std::size_t hits, std::size_t misses) {
  const std::size_t total = hits + misses;
  return total == 0 ? 0.0 : static_cast<double>(hits) / total;
}

void report(const SoakResult& result) {
  const serve::ServiceStats& stats = result.stats;
  bench::section("Serving soak: multi-tenant automata/QRNG front end");
  bench::note("fleet: " + std::to_string(result.peak_tenants) +
              " tenants over n=2..4 cascades, " +
              std::to_string(result.churns) + " churns, " +
              std::to_string(result.backend_flips) + " backend flips");
  std::printf("  %-34s %llu in %.2f s (%s)\n", "requests served",
              static_cast<unsigned long long>(stats.requests), result.seconds,
              bench::status_word(stats.requests >= kSoakFloor &&
                                 stats.rejected == 0));
  const double rps =
      result.seconds > 0.0 ? stats.requests / result.seconds : 0.0;
  bench::value_row("throughput",
                   std::to_string(static_cast<long long>(rps)) + " req/s");
  bench::value_row("latency p50/p99/max",
                   std::to_string(stats.all.p50_ns / 1000) + " us / " +
                       std::to_string(stats.all.p99_ns / 1000) + " us / " +
                       std::to_string(stats.all.max_ns / 1000) + " us");
  bench::value_row("engine batches",
                   std::to_string(stats.engine_batches) + " (" +
                       std::to_string(stats.engine_jobs) + " jobs, " +
                       std::to_string(stats.waves) + " waves, " +
                       std::to_string(stats.combine_rounds) +
                       " combine rounds)");
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "%.3f (%zu hits, %zu misses, %zu dup)",
                hit_rate(result.engine_cache.hits, result.engine_cache.misses),
                result.engine_cache.hits, result.engine_cache.misses,
                result.engine_cache.duplicate_folds);
  bench::value_row("unitary-cache hit rate", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.3f (%zu hits, %zu misses)",
                hit_rate(result.witness_cache.hits,
                         result.witness_cache.misses),
                result.witness_cache.hits, result.witness_cache.misses);
  bench::value_row("witness-cache hit rate", buffer);
}

/// One full soak per iteration; counters carry the serving numbers into the
/// aggregated baseline JSON (BENCH_pr*.json via scripts/run_benches.sh).
void bm_serve_soak(benchmark::State& bench_state) {
  SoakResult result;
  for (auto _ : bench_state) {
    result = run_soak();
  }
  report(result);
  const serve::ServiceStats& stats = result.stats;
  bench_state.SetItemsProcessed(static_cast<std::int64_t>(stats.requests));
  bench_state.counters["requests"] = static_cast<double>(stats.requests);
  bench_state.counters["rps"] =
      result.seconds > 0.0 ? stats.requests / result.seconds : 0.0;
  bench_state.counters["p50_us"] = static_cast<double>(stats.all.p50_ns) / 1e3;
  bench_state.counters["p99_us"] = static_cast<double>(stats.all.p99_ns) / 1e3;
  bench_state.counters["unitary_cache_hit_rate"] =
      hit_rate(result.engine_cache.hits, result.engine_cache.misses);
  bench_state.counters["witness_cache_hit_rate"] =
      hit_rate(result.witness_cache.hits, result.witness_cache.misses);
}
BENCHMARK(bm_serve_soak)->Iterations(1)->Unit(benchmark::kSecond);

}  // namespace

int main(int argc, char** argv) {
  return qsyn::bench::run_benchmarks(argc, argv);
}
