// bench_substrates: micro-benchmarks of the from-scratch substrates the
// reproduction rests on — the complex matrix library, the permutation layer,
// the flat permutation store, and the state-vector simulator.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "la/lu.h"
#include "la/matrix.h"
#include "mvl/domain.h"
#include "perm/perm_group.h"
#include "perm/permutation.h"
#include "sim/state_vector.h"
#include "synth/flat_perm_store.h"
#include "synth/specs.h"

namespace {

using namespace qsyn;

la::Matrix random_matrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = la::Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
    }
  }
  return m;
}

void bm_la_matmul(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_matrix(n, 1);
  const la::Matrix b = random_matrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(bm_la_matmul)->Arg(8)->Arg(16)->Arg(64);

void bm_la_kron(benchmark::State& state) {
  const la::Matrix a = random_matrix(8, 3);
  const la::Matrix b = random_matrix(8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.kron(b));
  }
}
BENCHMARK(bm_la_kron);

void bm_la_lu_solve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const la::Matrix a = random_matrix(n, 5);
  la::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = la::Complex(1.0, -1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(la::solve(a, b));
  }
}
BENCHMARK(bm_la_lu_solve)->Arg(8)->Arg(32);

void bm_perm_compose_deg38(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  const perm::Permutation a = library.permutation(0);
  const perm::Permutation b = library.permutation(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(bm_perm_compose_deg38);

void bm_perm_group_s8(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm::PermGroup::symmetric(8).order());
  }
}
BENCHMARK(bm_perm_group_s8)->Unit(benchmark::kMicrosecond);

void bm_flat_store_sort_unique(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  for (auto _ : state) {
    state.PauseTiming();
    synth::FlatPermStore store(38);
    std::vector<std::uint8_t> row(38);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t s = 0; s < 38; ++s) row[s] = static_cast<std::uint8_t>(s);
      // Random transpositions produce distinct-ish permutations.
      for (int t = 0; t < 4; ++t) {
        std::swap(row[rng.below(38)], row[rng.below(38)]);
      }
      store.push_back(row.data());
    }
    state.ResumeTiming();
    store.sort_unique();
    benchmark::DoNotOptimize(store.size());
  }
}
BENCHMARK(bm_flat_store_sort_unique)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void bm_sim_cascade_3q(benchmark::State& state) {
  const gates::Cascade toffoli = synth::toffoli_cascades_fig9().front();
  for (auto _ : state) {
    sim::StateVector s = sim::StateVector::basis(3, 6);
    s.apply_cascade(toffoli);
    benchmark::DoNotOptimize(s.amplitudes());
  }
}
BENCHMARK(bm_sim_cascade_3q);

void bm_sim_cascade_8q(benchmark::State& state) {
  // Stress the simulator on 8 qubits (256 amplitudes).
  gates::Cascade c(8);
  for (std::size_t w = 0; w + 1 < 8; ++w) {
    c.append(gates::Gate::ctrl_v(w + 1, w));
    c.append(gates::Gate::feynman(w, w + 1));
  }
  for (auto _ : state) {
    sim::StateVector s(8);
    s.apply_gate(gates::Gate::not_gate(0));
    s.apply_cascade(c);
    benchmark::DoNotOptimize(s.amplitudes());
  }
}
BENCHMARK(bm_sim_cascade_8q);

}  // namespace

int main(int argc, char** argv) {
  return qsyn::bench::run_benchmarks(argc, argv);
}
