// bench_g4_universality: regenerates the Section-5 structural claims about
// G[4] and Figures 5-7:
//   * |G[4]| = 84 = 60 four-CNOT circuits + 24 Peres-like circuits,
//   * each of the 24 is universal: <g, NOT, Feynman> = S8 (|M| = 40320),
//   * the 24 fall into 4 families under wire permutation (g1..g4),
//   * the paper's g2, g3, g4 cascades realize their printed permutations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/fmcf.h"
#include "synth/specs.h"
#include "synth/universality.h"

namespace {

using namespace qsyn;

std::vector<perm::Permutation> wire_shuffles() {
  std::vector<perm::Permutation> out;
  const int orders[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                            {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& order : orders) {
    std::vector<std::uint32_t> images(8);
    for (std::uint32_t bits = 0; bits < 8; ++bits) {
      std::uint32_t shuffled = 0;
      for (int w = 0; w < 3; ++w) {
        shuffled |= ((bits >> (2 - order[w])) & 1u) << (2 - w);
      }
      images[bits] = shuffled + 1;
    }
    out.push_back(perm::Permutation::from_images(images));
  }
  return out;
}

void regenerate() {
  bench::section("Section 5 / Figures 5-7: the 24 universal cost-4 gates");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::FmcfEnumerator enumerator(library);
  enumerator.run_to(4);

  const auto g4 = enumerator.g_set(4);
  bench::compare_row("|G[4]|", 84, static_cast<long long>(g4.size()));

  std::size_t universal = 0;
  std::vector<perm::Permutation> nonlinear;
  Stopwatch timer;
  for (const auto& g : g4) {
    if (synth::is_universal_with_not_and_feynman(g)) {
      ++universal;
      nonlinear.push_back(g);
    }
  }
  bench::compare_row("universal (Peres-like) members", 24,
                     static_cast<long long>(universal),
                     "each has |<g,NOT,Feynman>| = 40320");
  bench::compare_row("four-CNOT (linear) members", 60,
                     static_cast<long long>(g4.size() - universal));
  std::printf("  24 universality checks (Schreier-Sims): %.3f s\n",
              timer.seconds());

  // Families under wire permutation.
  const auto shuffles = wire_shuffles();
  std::set<perm::Permutation> remaining(nonlinear.begin(), nonlinear.end());
  std::vector<perm::Permutation> reps;
  while (!remaining.empty()) {
    const perm::Permutation rep = *remaining.begin();
    reps.push_back(rep);
    for (const auto& w : shuffles) remaining.erase(w.inverse() * rep * w);
  }
  bench::compare_row("families under wire permutation", 4,
                     static_cast<long long>(reps.size()),
                     "g1 (Peres), g2, g3, g4");
  for (const auto& rep : reps) {
    bench::value_row("family representative", rep.to_cycle_string());
  }

  bench::section("Figures 5-7: printed cascades");
  struct Row {
    const char* name;
    gates::Cascade cascade;
    perm::Permutation target;
  };
  const Row rows[] = {
      {"g2 = V+BC*FCA*VBA*VBC", synth::g2_cascade_fig5(), synth::g2_perm()},
      {"g3 = VCB*FBA*V+CA*VCB", synth::g3_cascade_fig6(), synth::g3_perm()},
      {"g4 = VCB*FBA*VCA*VCB", synth::g4_cascade_fig7(), synth::g4_perm()},
  };
  for (const Row& row : rows) {
    std::printf("  %-26s perm %s  unitary %s\n", row.name,
                bench::status_word(row.cascade.to_binary_permutation() ==
                                   row.target),
                bench::status_word(
                    sim::realizes_permutation(row.cascade, row.target)));
  }
}

void bm_universality_check(benchmark::State& state) {
  const auto peres = synth::peres_perm();
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::is_universal_with_not_and_feynman(peres));
  }
}
BENCHMARK(bm_universality_check)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  regenerate();
  return qsyn::bench::run_benchmarks(argc, argv);
}
