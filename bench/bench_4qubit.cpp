// bench_4qubit: extension experiment — the paper's construction generalized
// to 4 qubits, built through GateLibrary::standard(4) (the NQubitDomain
// API; bench_domain_growth sweeps the full n = 2..5 curve).
//
// The reduced pattern domain has 4^4 - 3^4 + 1 = 176 labels, the library L
// grows to 3*4*3 = 36 gates (24 controlled-V/V+, 12 CNOTs), and S = the 16
// binary patterns. The FMCF closure then counts minimal-cost 4-qubit
// reversible circuits |G4[k]| — numbers outside the paper's 3-qubit scope.
//
// Default depth 4 (about a minute of headroom); set QSYN_4Q_MAX to push.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/env.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/nqubit.h"
#include "synth/fmcf.h"

namespace {

using namespace qsyn;

void regenerate() {
  unsigned max_cost = 4;
  if (const auto cap = parse_env_size_t("QSYN_4Q_MAX", 1, 6)) {
    max_cost = static_cast<unsigned>(*cap);
  }
  bench::section("Extension: 4-qubit FMCF closure (beyond the paper)");
  const gates::GateLibrary library = gates::GateLibrary::standard(4);
  bench::value_row("domain size", std::to_string(library.domain().size()) +
                                      " labels (4^4 - 3^4 + 1)");
  bench::value_row("library size", std::to_string(library.size()) + " gates");

  synth::ClosureConfig options;
  options.track_witnesses = false;
  synth::FmcfEnumerator enumerator(library, options);
  std::printf(
      "  k | |G4[k]| | pre_G4[k] | |B[k]|    | secs    | approx MiB\n");
  std::printf("  %s\n", std::string(64, '-').c_str());
  for (unsigned k = 1; k <= max_cost; ++k) {
    const auto& s = enumerator.advance();
    std::printf("  %u | %-7zu | %-9zu | %-9zu | %-7.2f | %zu\n", k, s.g_new,
                s.pre_g, s.frontier, s.seconds,
                enumerator.memory_bytes() >> 20);
  }
  std::printf(
      "  sanity: |G4[1]| must equal the 12 four-wire CNOTs; all counts for "
      "k >= 2 are new results.\n");
}

void bm_expand_4q_level2(benchmark::State& state) {
  const gates::GateLibrary library = gates::GateLibrary::standard(4);
  for (auto _ : state) {
    synth::ClosureConfig options;
    options.track_witnesses = false;
    synth::FmcfEnumerator enumerator(library, options);
    enumerator.run_to(2);
    benchmark::DoNotOptimize(enumerator.seen_count());
  }
}
BENCHMARK(bm_expand_4q_level2)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Stopwatch total;
  regenerate();
  std::printf("  total wall time: %.2f s\n", total.seconds());
  return qsyn::bench::run_benchmarks(argc, argv);
}
