// bench_fig3_automata: regenerates Figure 3 / Section 4 — quantum-realized
// probabilistic machines. Synthesizes a controlled quantum random number
// generator, closes it into the Figure-3 automaton loop, and compares the
// exact Markov-chain stationary distribution (linear solve) with Monte-Carlo
// measurement runs.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "automata/automaton.h"
#include "automata/hmm.h"
#include "automata/qrng.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/domain.h"

namespace {

using namespace qsyn;

bool regenerate() {
  bench::section("Figure 3 / Section 4: quantum probabilistic machines");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  // 1. Controlled QRNG: wire C becomes a fair coin whenever wire A is 1.
  Stopwatch timer;
  const auto qrng =
      automata::ControlledQrng::synthesize(library,
                                           automata::controlled_coin_spec(3));
  if (!qrng.has_value()) {
    std::printf("  QRNG synthesis FAILED\n");
    return false;
  }
  std::printf("  QRNG circuit: %s (cost %zu, synthesized in %.4f s)\n",
              qrng->circuit().to_string().c_str(), qrng->circuit().size(),
              timer.seconds());
  const auto dist = qrng->distribution(0b100);
  bench::compare_row_near("P[C=0] given A=1,B=0,C=0", 0.5, dist[0b100], 1e-9,
                          "fair coin");
  bench::compare_row_near("P[C=1] given A=1,B=0,C=0", 0.5, dist[0b101], 1e-9,
                          "fair coin");
  Rng rng(1234);
  const auto hist = qrng->histogram(0b100, 100000, rng);
  std::printf("  100k samples: %zu / %zu (coin flips)\n", hist[0b100],
              hist[0b101]);

  // 2. Figure-3 loop: state register + combinational quantum block.
  //    Wire A is the state; input C=1 re-randomizes the state each cycle.
  automata::QuantumAutomaton machine(gates::Cascade::parse("VAC", 3), 1);
  const auto exact = machine.stationary_distribution(0b01);
  const auto empirical = machine.empirical_distribution(0b01, 200000, rng);
  std::printf("\n  probabilistic FSM (state = wire A, input C = 1):\n");
  for (std::size_t s = 0; s < exact.size(); ++s) {
    bench::compare_row_near("stationary P[state=" + std::to_string(s) + "]",
                            exact[s], empirical[s], 5e-3,
                            "exact solve vs 200k Monte-Carlo steps");
  }

  // 3. HMM view: emissions carry the measured non-state wires.
  const automata::QuantumHmm hmm(std::move(machine), 0b01);
  const auto traj = hmm.sample(0, 16, rng);
  std::printf("  HMM sample trajectory (16 steps): states ");
  for (const auto s : traj.states) std::printf("%u", s);
  std::printf("\n  log-likelihood of that emission sequence: %.4f\n",
              hmm.log_likelihood(0, traj.emissions));
  return true;
}

void bm_qrng_generate(benchmark::State& state) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  const auto qrng = automata::ControlledQrng::synthesize(
      library, automata::controlled_coin_spec(3));
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qrng->generate(0b100, rng));
  }
}
BENCHMARK(bm_qrng_generate);

void bm_automaton_step(benchmark::State& state) {
  automata::QuantumAutomaton machine(gates::Cascade::parse("VAC", 3), 1);
  Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.step(0b01, rng));
  }
}
BENCHMARK(bm_automaton_step);

void bm_stationary_solve(benchmark::State& state) {
  automata::QuantumAutomaton machine(gates::Cascade::parse("VAC*VBC", 3), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.stationary_distribution(0b1));
  }
}
BENCHMARK(bm_stationary_solve)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // regenerate() is false only on the synthesis-failure early exit;
  // comparison-row mismatches reach the exit code via run_benchmarks.
  const bool synthesized = regenerate();
  const int bench_rc = qsyn::bench::run_benchmarks(argc, argv);
  return synthesized ? bench_rc : 1;
}
