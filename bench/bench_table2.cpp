// bench_table2: regenerates Table 2 of the paper — the number of reversible
// circuits with quantum cost k for k = 0..7 (|G[k]|) and the corresponding
// counts with free NOT gates (|S8[k]| = 8 |G[k]|, Theorem 2).
//
// The paper (GAP on an 850 MHz Pentium III, cb = 7 bounded by memory)
// reports: |G[k]| = 1, 6, 30, 52, 84, 156, 398, 540.
//
// Exhaustive enumeration reproduces every entry except k = 2 and k = 3,
// where the correct counts are 24 and 51; the paper's 30 equals |pre_G[2]|
// before the G[1] subtraction (the six V*V = CNOT duplicates). Both values
// are printed below. See EXPERIMENTS.md for the hand proof.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "synth/fmcf.h"

namespace {

using namespace qsyn;

void regenerate_table2() {
  bench::section("Table 2: number of circuits with cost k (cb = 7)");
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  Stopwatch total;
  synth::ClosureConfig options;
  options.track_witnesses = false;  // pure counting
  synth::FmcfEnumerator enumerator(library, options);
  std::printf("  sweep threads: %zu (QSYN_THREADS overrides)\n",
              enumerator.threads());
  enumerator.run_to(7);

  const long long paper_g[8] = {1, 6, 30, 52, 84, 156, 398, 540};
  std::printf(
      "  k | paper |G[k]| | measured |G[k]| | pre_G[k] | paper |S8[k]| | "
      "measured |S8[k]| | |B[k]|   | level secs\n");
  std::printf("  %s\n", std::string(104, '-').c_str());
  std::printf("  0 | %13lld | %15d | %8s | %14lld | %17d | %-8s | %s\n",
              paper_g[0], 1, "-", 8LL * paper_g[0], 8, "1", "-");
  for (unsigned k = 1; k <= 7; ++k) {
    const auto& s = enumerator.stats()[k - 1];
    std::printf(
        "  %u | %13lld | %15zu | %8zu | %14lld | %17zu | %-8zu | %.3f\n", k,
        paper_g[k], s.g_new, s.pre_g, 8 * paper_g[k], 8 * s.g_new, s.frontier,
        s.seconds);
  }
  std::printf(
      "  total wall time: %.3f s on one modern core "
      "(paper: minutes-scale GAP runs on a P-III)\n",
      total.seconds());
  std::printf(
      "  note: k=2,3 differ from the paper; 30 = pre_G[2] (paper skipped the "
      "G[1] subtraction), and 24/51 are the exhaustive counts.\n");
  std::printf("  reachable cascade permutations |A[7]| = %zu\n",
              enumerator.seen_count());
}

void run_closure_sweep(benchmark::State& state, unsigned max_cost,
                       std::size_t threads) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  for (auto _ : state) {
    synth::ClosureConfig options;
    options.track_witnesses = false;
    options.threads = threads;
    synth::FmcfEnumerator enumerator(library, options);
    enumerator.run_to(max_cost);
    benchmark::DoNotOptimize(enumerator.seen_count());
  }
}

// The unsuffixed single-threaded sweeps keep the seed baseline's benchmark
// names, so name-based deltas against BENCH_seed.json keep working; the
// threads axis lives in the *_threads variants.
void bm_fmcf_to_cost5(benchmark::State& state) {
  run_closure_sweep(state, 5, 1);
}
BENCHMARK(bm_fmcf_to_cost5)->Unit(benchmark::kMillisecond);

void bm_fmcf_to_cost5_threads(benchmark::State& state) {
  run_closure_sweep(state, 5, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(bm_fmcf_to_cost5_threads)
    ->Unit(benchmark::kMillisecond)
    ->ArgName("threads")
    ->Arg(4);

void bm_fmcf_to_cost7(benchmark::State& state) {
  run_closure_sweep(state, 7, 1);
}
BENCHMARK(bm_fmcf_to_cost7)->Unit(benchmark::kMillisecond);

void bm_fmcf_to_cost7_threads(benchmark::State& state) {
  run_closure_sweep(state, 7, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(bm_fmcf_to_cost7_threads)
    ->Unit(benchmark::kMillisecond)
    ->ArgName("threads")
    ->Arg(2)
    ->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  regenerate_table2();
  return qsyn::bench::run_benchmarks(argc, argv);
}
