# Script-mode check (ctest: deprecated_names_absent) that deleted
# transitional names never reappear in the tree. A namespace-scope alias
# like `FmcfOptions` cannot be probed with SFINAE the way a member can, so
# this textual scan backs up the static_asserts in tests/test_deprecation.cpp
# — which is the one file allowed to spell the old names (it documents them).
#
# Usage: cmake -DQSYN_SOURCE_DIR=<repo root> -P CheckDeprecatedNames.cmake
if(NOT DEFINED QSYN_SOURCE_DIR)
  message(FATAL_ERROR "pass -DQSYN_SOURCE_DIR=<repo root>")
endif()

set(deprecated_names "FmcfOptions" "take_flatten")

file(GLOB_RECURSE sources RELATIVE "${QSYN_SOURCE_DIR}"
  "${QSYN_SOURCE_DIR}/src/*.h"
  "${QSYN_SOURCE_DIR}/src/*.cpp"
  "${QSYN_SOURCE_DIR}/tests/*.cpp"
  "${QSYN_SOURCE_DIR}/bench/*.h"
  "${QSYN_SOURCE_DIR}/bench/*.cpp"
  "${QSYN_SOURCE_DIR}/examples/*.cpp")

set(violations "")
foreach(source IN LISTS sources)
  if(source STREQUAL "tests/test_deprecation.cpp")
    continue()
  endif()
  file(READ "${QSYN_SOURCE_DIR}/${source}" content)
  foreach(name IN LISTS deprecated_names)
    string(FIND "${content}" "${name}" position)
    if(NOT position EQUAL -1)
      list(APPEND violations "${source}: ${name}")
    endif()
  endforeach()
endforeach()

if(violations)
  list(JOIN violations "\n  " pretty)
  message(FATAL_ERROR
    "deleted transitional names resurfaced (use ClosureConfig / "
    "drain_sorted instead):\n  ${pretty}")
endif()
message(STATUS "no deprecated names in the tree")
