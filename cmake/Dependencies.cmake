# Third-party test/bench dependencies: prefer the system packages, fall back
# to FetchContent so the tier-1 verify works on a bare machine with network.
include(FetchContent)

if(QSYN_BUILD_TESTS)
  find_package(GTest QUIET)
  if(NOT GTest_FOUND)
    message(STATUS "qsyn: system GoogleTest not found, fetching v1.14.0")
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
  endif()
  include(GoogleTest)
endif()

if(QSYN_BUILD_BENCHES)
  find_package(benchmark QUIET)
  if(NOT benchmark_FOUND)
    message(STATUS "qsyn: system google-benchmark not found, fetching v1.8.3")
    FetchContent_Declare(googlebenchmark
      URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
      URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
    set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
    set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
    set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googlebenchmark)
  endif()
endif()
