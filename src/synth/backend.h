// qsyn/synth/backend.h
//
// SynthesisBackend — the one polymorphic seam over every synthesis engine.
//
// The paper's MCE construction was historically served by exactly one engine
// (the FMCF breadth-first closure), and every consumer was hard-wired to it.
// This interface cuts that coupling: a backend answers "what is the minimal
// quantum cost of this reversible circuit, and give me one minimal cascade",
// and callers pick the engine by construction, not by type:
//
//   * ClosureBackend (below) — the exhaustive breadth-first FMCF closure via
//     McExpressor. Fastest per query once the levels are computed (and
//     instant over a persistent catalog), but memory-bound in the level
//     width: the 5-wire closure needs gigabytes past k = 3.
//   * TopologySearchBackend (synth/search/topology_search.h) — a DFS with
//     pruning over gate cascades in the spirit of percy's fence enumeration.
//     Stores almost nothing, so it reaches costs/widths the closure cannot
//     hold, at the price of searching per query.
//   * CatalogServer::as_backend() (synth/catalog_server.h) — stored-answer
//     serving over a reopened catalog, optionally falling back to a search
//     backend on a miss.
//
// Both engines answer through Theorem 2's coset trick: the target is split
// into a cost-0 NOT prefix and a core permutation fixing the all-zero
// pattern, and only the core is searched/located.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gates/library.h"
#include "perm/permutation.h"
#include "synth/closure_config.h"
#include "synth/mce.h"

namespace qsyn::synth {

/// Capability / provenance introspection of one backend. Callers use it to
/// route queries (e.g. prefer a non-deepening backend on a serving path) and
/// to check that two backends being compared answer for the same library.
struct BackendInfo {
  /// Engine name: "closure" or "topology-search".
  std::string name;
  /// Answers are guaranteed minimal for every target located within
  /// max_cost (both in-tree engines are exact; a future heuristic/SAT
  /// backend may clear this).
  bool exact = true;
  /// locate()/synthesize() may do new enumeration work on a miss (the
  /// closure deepens level by level; the DFS re-searches every query).
  bool deepens_on_miss = false;
  /// The backend can enumerate *all* minimal implementations of a target,
  /// not just one witness (closure-specific today).
  bool enumerates_implementations = false;
  /// The engine's cost ceiling (the paper's cb).
  unsigned max_cost = 0;
  /// Fingerprints of the gate library / pattern domain the backend answers
  /// for (gates::GateLibrary::fingerprint, mvl::PatternDomain::fingerprint).
  /// Two backends are comparable iff these match.
  std::uint64_t library_fingerprint = 0;
  std::uint64_t domain_fingerprint = 0;
};

/// A locate() answer: the minimal library-gate count of the target's core
/// plus Theorem 2's cost-0 NOT layer. Engine-specific locators (closure
/// frontier rows, search paths) stay behind the concrete backends.
struct BackendAnswer {
  unsigned cost = 0;
  std::vector<gates::Gate> not_prefix;
};

/// Polymorphic synthesis engine: minimal-quantum-cost realization of
/// reversible circuits (permutations of {1..2^n} in binary-value order) over
/// one gate library.
class SynthesisBackend {
 public:
  virtual ~SynthesisBackend();

  SynthesisBackend() = default;
  SynthesisBackend(const SynthesisBackend&) = delete;
  SynthesisBackend& operator=(const SynthesisBackend&) = delete;

  /// The library the backend synthesizes over.
  [[nodiscard]] virtual const gates::GateLibrary& library() const = 0;

  /// Cost ceiling: targets whose minimal cost exceeds this return nullopt.
  [[nodiscard]] virtual unsigned max_cost() const = 0;

  /// Capability and fingerprint introspection.
  [[nodiscard]] virtual BackendInfo info() const = 0;

  /// Minimal cost + NOT prefix of `target`, or nullopt beyond max_cost.
  [[nodiscard]] virtual std::optional<BackendAnswer> locate(
      const perm::Permutation& target) = 0;

  /// One minimal realization, or nullopt beyond max_cost.
  [[nodiscard]] virtual std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target) = 0;

  /// Batched synthesize: one answer per target, in order. The default loops
  /// over synthesize(); engines override when a batch can share work (the
  /// DFS backend answers a whole batch from one deepening sweep).
  [[nodiscard]] virtual std::vector<std::optional<SynthesisResult>>
  synthesize_batch(const std::vector<perm::Permutation>& targets);
};

/// The FMCF breadth-first closure behind the seam: a thin adapter over
/// McExpressor whose answers are byte-identical to calling the expressor
/// directly (it *is* the expressor — the adapter adds no logic).
class ClosureBackend final : public SynthesisBackend {
 public:
  /// Fresh closure over `library`, deepened on demand up to `max_cost`.
  explicit ClosureBackend(const gates::GateLibrary& library,
                          unsigned max_cost = 7, ClosureConfig config = {});

  /// Over an existing enumerator (typically reopened from a persistent
  /// catalog); see McExpressor's enumerator constructor for the `max_cost`
  /// and read-only semantics.
  explicit ClosureBackend(FmcfEnumerator enumerator, unsigned max_cost = 0);

  /// Adopts an already-built expressor.
  explicit ClosureBackend(McExpressor expressor);

  [[nodiscard]] const gates::GateLibrary& library() const override;
  [[nodiscard]] unsigned max_cost() const override;
  [[nodiscard]] BackendInfo info() const override;
  [[nodiscard]] std::optional<BackendAnswer> locate(
      const perm::Permutation& target) override;
  [[nodiscard]] std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target) override;

  /// The wrapped expressor, for closure-specific extras the seam does not
  /// carry (implementations(), count_sequences(), the enumerator stats).
  [[nodiscard]] McExpressor& expressor() { return mce_; }
  [[nodiscard]] const McExpressor& expressor() const { return mce_; }

 private:
  McExpressor mce_;
};

}  // namespace qsyn::synth
