#include "synth/sharded_perm_store.h"

#include <utility>

#include "common/error.h"

namespace qsyn::synth {

ShardedPermStore::ShardedPermStore(std::size_t width, std::size_t shard_count)
    : width_(width), label_bytes_(width <= 256 ? 1 : 2) {
  QSYN_CHECK(shard_count >= 1 && shard_count <= 65536,
             "shard count must be in [1, 65536]");
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards_.emplace_back(width);
}

std::size_t ShardedPermStore::size() const {
  std::size_t total = 0;
  for (const FlatPermStore& s : shards_) total += s.size();
  return total;
}

void ShardedPermStore::push_back(const std::uint8_t* row_bytes) {
  shards_[shard_of(row_bytes)].push_back(row_bytes);
}

void ShardedPermStore::push_back(const perm::Permutation& p) {
  QSYN_CHECK(p.degree() == width_, "permutation degree mismatch");
  push_back(shards_[0].encode_row(p).data());
}

void ShardedPermStore::sort_unique() {
  for (FlatPermStore& s : shards_) s.sort_unique();
}

void ShardedPermStore::subtract_sorted(const ShardedPermStore& other) {
  QSYN_CHECK(width_ == other.width_ && shard_count() == other.shard_count(),
             "sharded store layout mismatch");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].subtract_sorted(other.shards_[s]);
  }
}

void ShardedPermStore::merge_sorted(const ShardedPermStore& other) {
  QSYN_CHECK(width_ == other.width_ && shard_count() == other.shard_count(),
             "sharded store layout mismatch");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].merge_sorted(other.shards_[s]);
  }
}

bool ShardedPermStore::contains_sorted(const std::uint8_t* row_bytes) const {
  return shards_[shard_of(row_bytes)].contains_sorted(row_bytes);
}

FlatPermStore ShardedPermStore::flatten() const {
  FlatPermStore out(width_);
  out.reserve_rows(size());
  for (const FlatPermStore& s : shards_) out.append(s);
  return out;
}

FlatPermStore ShardedPermStore::take_flatten() {
  if (shards_.size() == 1) {
    FlatPermStore out = std::move(shards_[0]);
    shards_[0].clear();
    return out;
  }
  FlatPermStore out(width_);
  out.reserve_rows(size());
  for (FlatPermStore& s : shards_) {
    out.append(s);
    s.clear();
  }
  return out;
}

void ShardedPermStore::clear() {
  for (FlatPermStore& s : shards_) s.clear();
}

std::size_t ShardedPermStore::memory_bytes() const {
  std::size_t total = 0;
  for (const FlatPermStore& s : shards_) total += s.memory_bytes();
  return total;
}

}  // namespace qsyn::synth
