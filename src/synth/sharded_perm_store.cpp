#include "synth/sharded_perm_store.h"

#include <atomic>
#include <utility>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

#include "common/error.h"
#include "common/simd/kernels.h"
#include "synth/closure_config.h"
#include "synth/row_storage.h"

namespace qsyn::synth {

namespace {

// Spill files are per-process temporaries: pid plus a process-wide counter
// keeps concurrent closures (and concurrent shards within one closure) from
// colliding without any coordination.
std::string next_spill_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
#ifdef _WIN32
  const long pid = static_cast<long>(_getpid());
#else
  const long pid = static_cast<long>(::getpid());
#endif
  return dir + "/qsyn-spill-" + std::to_string(pid) + "-" +
         std::to_string(id) + ".run";
}

// drain_sorted() streams merged rows to its spill file in slabs of this many
// bytes, so the k-way merge's heap cost is one slab regardless of row count.
constexpr std::size_t kDrainFlushBytes = std::size_t(4) << 20;

}  // namespace

ShardedPermStore::ShardedPermStore(std::size_t width, std::size_t shard_count)
    : ShardedPermStore(width, shard_count, SpillOptions{}) {}

ShardedPermStore::ShardedPermStore(std::size_t width, std::size_t shard_count,
                                   SpillOptions spill)
    : width_(width),
      label_bytes_(width <= 256 ? 1 : 2),
      spill_(std::move(spill)) {
  QSYN_CHECK(shard_count >= 1 && shard_count <= 65536,
             "shard count must be in [1, 65536]");
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards_.emplace_back(width);
  runs_.resize(shard_count);
  if (spill_.budget_bytes > 0) {
    if (spill_.dir.empty()) spill_.dir = resolve_spill_dir(spill_.dir);
    shard_budget_ = std::max<std::size_t>(1, spill_.budget_bytes / shard_count);
  }
}

std::size_t ShardedPermStore::size() const {
  std::size_t total = 0;
  for (const FlatPermStore& s : shards_) total += s.size();
  for (const auto& shard_runs : runs_) {
    for (const auto& run : shard_runs) total += run->rows();
  }
  return total;
}

bool ShardedPermStore::spilled() const {
  for (const auto& shard_runs : runs_) {
    if (!shard_runs.empty()) return true;
  }
  return false;
}

std::size_t ShardedPermStore::run_count() const {
  std::size_t total = 0;
  for (const auto& shard_runs : runs_) total += shard_runs.size();
  return total;
}

void ShardedPermStore::push_back(const std::uint8_t* row_bytes) {
  shards_[shard_of(row_bytes)].push_back(row_bytes);
}

void ShardedPermStore::push_back(const perm::Permutation& p) {
  QSYN_CHECK(p.degree() == width_, "permutation degree mismatch");
  push_back(shards_[0].encode_row(p).data());
}

void ShardedPermStore::sort_unique() {
  QSYN_CHECK(!spilled(),
             "sort_unique on a spilled ShardedPermStore: sealed runs are "
             "already sorted and immutable");
  for (FlatPermStore& s : shards_) s.sort_unique();
}

void ShardedPermStore::subtract_sorted(const ShardedPermStore& other) {
  QSYN_CHECK(width_ == other.width_ && shard_count() == other.shard_count(),
             "sharded store layout mismatch");
  QSYN_CHECK(!spilled() && !other.spilled(),
             "whole-store subtract_sorted requires spill-free stores; use "
             "subtract_shard_from per shard");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].subtract_sorted(other.shards_[s]);
  }
}

void ShardedPermStore::merge_sorted(const ShardedPermStore& other) {
  QSYN_CHECK(width_ == other.width_ && shard_count() == other.shard_count(),
             "sharded store layout mismatch");
  QSYN_CHECK(!spilled() && !other.spilled(),
             "whole-store merge_sorted requires spill-free stores; use "
             "absorb_shard per shard");
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].merge_sorted(other.shards_[s]);
  }
}

void ShardedPermStore::subtract_shard_from(std::size_t s,
                                           FlatPermStore& rows) const {
  rows.subtract_sorted(shards_[s]);
  for (const auto& run : runs_[s]) {
    if (rows.empty()) break;
    run->subtract_from(rows);
  }
}

void ShardedPermStore::merge_into_shard(std::size_t s,
                                        const FlatPermStore& rows) {
  shards_[s].merge_sorted(rows);
  maybe_seal(s);
}

void ShardedPermStore::absorb_shard(std::size_t s,
                                    const ShardedPermStore& other) {
  QSYN_CHECK(width_ == other.width_ && shard_count() == other.shard_count(),
             "sharded store layout mismatch");
  shards_[s].merge_sorted(other.shards_[s]);
  for (const auto& run : other.runs_[s]) runs_[s].push_back(run);
  maybe_seal(s);
}

void ShardedPermStore::maybe_seal(std::size_t s) {
  if (shard_budget_ == 0 || shards_[s].empty()) return;
  if (shards_[s].memory_bytes() <= shard_budget_) return;
  runs_[s].push_back(SealedRun::write(next_spill_path(spill_.dir), shards_[s],
                                      /*keep_file=*/false));
  shards_[s].clear();
}

bool ShardedPermStore::contains_sorted(const std::uint8_t* row_bytes) const {
  const std::size_t s = shard_of(row_bytes);
  if (shards_[s].contains_sorted(row_bytes)) return true;
  for (const auto& run : runs_[s]) {
    if (run->contains_sorted(row_bytes)) return true;
  }
  return false;
}

namespace {

// Linear min-scan k-way merge over one shard: the active store plus its
// sealed runs, all sorted and mutually disjoint. Run fan-in per shard is
// small (budget trips are rare within a level), so a heap would be overkill.
template <typename Emit>
void merge_shard_rows(const FlatPermStore& active,
                      const std::vector<std::shared_ptr<const SealedRun>>& runs,
                      std::size_t stride, Emit&& emit) {
  struct RunCursor {
    const SealedRun* run;
    std::size_t i;
    std::vector<std::uint8_t> head;  // materialized run row i
  };
  std::vector<RunCursor> cursors;
  cursors.reserve(runs.size());
  for (const auto& run : runs) {
    if (run->rows() == 0) continue;
    RunCursor c{run.get(), 0, std::vector<std::uint8_t>(stride)};
    c.run->materialize(0, c.head.data());
    cursors.push_back(std::move(c));
  }

  std::size_t ai = 0;
  const std::size_t an = active.size();
  while (true) {
    const std::uint8_t* best = ai < an ? active.row(ai) : nullptr;
    std::size_t best_cursor = cursors.size();  // sentinel: active wins
    for (std::size_t c = 0; c < cursors.size(); ++c) {
      const std::uint8_t* head = cursors[c].head.data();
      if (best == nullptr || simd::compare_rows(head, best, stride) < 0) {
        best = head;
        best_cursor = c;
      }
    }
    if (best == nullptr) break;
    emit(best);
    if (best_cursor == cursors.size()) {
      ++ai;
    } else {
      RunCursor& c = cursors[best_cursor];
      if (++c.i == c.run->rows()) {
        cursors.erase(cursors.begin() +
                      static_cast<std::ptrdiff_t>(best_cursor));
      } else {
        c.run->materialize(c.i, c.head.data());
      }
    }
  }
}

}  // namespace

void ShardedPermStore::merge_shard_append(std::size_t s,
                                          FlatPermStore& out) const {
  if (runs_[s].empty()) {
    out.append(shards_[s]);
    return;
  }
  merge_shard_rows(shards_[s], runs_[s], shards_[s].row_stride(),
                   [&out](const std::uint8_t* row) { out.push_back(row); });
}

FlatPermStore ShardedPermStore::flatten() const {
  FlatPermStore out(width_);
  out.reserve_rows(size());
  for (std::size_t s = 0; s < shards_.size(); ++s) merge_shard_append(s, out);
  return out;
}

FlatPermStore ShardedPermStore::drain_sorted() {
  if (!spilled()) {
    if (shards_.size() == 1) {
      FlatPermStore out = std::move(shards_[0]);
      shards_[0].clear();
      return out;
    }
    FlatPermStore out(width_);
    out.reserve_rows(size());
    for (FlatPermStore& s : shards_) {
      out.append(s);
      s.clear();
    }
    return out;
  }

  // Spilled: stream the per-shard merges into one sealed spill file and hand
  // it back mmap'd read-only — the frontier never materializes on the heap.
  auto file = std::make_shared<FileRowStorage>(
      next_spill_path(spill_.dir) + ".drain", /*keep_file=*/false);
  const std::size_t stride = shards_.empty() ? 0 : shards_[0].row_stride();
  std::vector<std::uint8_t> slab;
  slab.reserve(kDrainFlushBytes + stride);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    merge_shard_rows(shards_[s], runs_[s], stride,
                     [&](const std::uint8_t* row) {
                       slab.insert(slab.end(), row, row + stride);
                       if (slab.size() >= kDrainFlushBytes) {
                         file->append_bytes(slab.data(), slab.size());
                         slab.clear();
                       }
                     });
    shards_[s].clear();
    runs_[s].clear();
  }
  if (!slab.empty()) file->append_bytes(slab.data(), slab.size());
  file->seal();
  return FlatPermStore(width_, std::move(file));
}

void ShardedPermStore::clear() {
  for (FlatPermStore& s : shards_) s.clear();
  for (auto& shard_runs : runs_) shard_runs.clear();
}

std::size_t ShardedPermStore::memory_bytes() const {
  std::size_t total = 0;
  for (const FlatPermStore& s : shards_) total += s.memory_bytes();
  return total;
}

std::size_t ShardedPermStore::disk_bytes() const {
  std::size_t total = 0;
  for (const auto& shard_runs : runs_) {
    for (const auto& run : shard_runs) total += run->disk_bytes();
  }
  return total;
}

}  // namespace qsyn::synth
