#include "synth/mce.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"

namespace qsyn::synth {

namespace {

ClosureConfig with_witnesses(ClosureConfig config) {
  config.track_witnesses = true;  // MCE reconstructs cascades
  return config;
}

}  // namespace

NotStripped strip_not_prefix(std::size_t wires,
                             const perm::Permutation& target) {
  const std::uint32_t binary_count = 1u << wires;
  QSYN_CHECK(target.degree() <= binary_count,
             "target permutation degree exceeds 2^wires");
  const perm::Permutation g = target.extended_to(binary_count);

  // Theorem 2/3: choose d[0] in N with (d[0]^{-1} * g)(1) = 1. Writing a for
  // d[0] (an involution), h(1) = g(a(1)) = 1 forces a(1) = g^{-1}(1), i.e.
  // the NOT mask is the bit pattern of label g^{-1}(1).
  const std::uint32_t mask = g.inverse().apply(1) - 1;
  NotStripped out;
  for (std::size_t w = 0; w < wires; ++w) {
    if ((mask >> (wires - 1 - w) & 1u) != 0) {
      out.not_prefix.push_back(gates::Gate::not_gate(w));
    }
  }
  // a as a permutation of binary labels: XOR by mask.
  std::vector<std::uint32_t> images(binary_count);
  for (std::uint32_t l = 0; l < binary_count; ++l) {
    images[l] = (l ^ mask) + 1;
  }
  const perm::Permutation a = perm::Permutation::from_images(std::move(images));
  out.core = a * g;  // a^{-1} * g with a an involution
  QSYN_CHECK(out.core.apply(1) == 1,
             "NOT-coset stripping must fix the all-zero pattern");
  return out;
}

SynthesisResult assemble_result(std::size_t wires, const NotStripped& stripped,
                                gates::Cascade core) {
  SynthesisResult result;
  result.not_prefix = stripped.not_prefix;
  result.cost = static_cast<unsigned>(core.size());
  std::vector<gates::Gate> all = stripped.not_prefix;
  all.insert(all.end(), core.sequence().begin(), core.sequence().end());
  result.core = std::move(core);
  result.circuit = gates::Cascade(wires, std::move(all));
  return result;
}

McExpressor::McExpressor(const gates::GateLibrary& library, unsigned max_cost,
                         ClosureConfig config)
    : library_(&library),
      max_cost_(max_cost),
      fmcf_(library, with_witnesses(config)) {}

McExpressor::McExpressor(FmcfEnumerator enumerator, unsigned max_cost)
    : library_(&enumerator.library()),
      max_cost_(max_cost != 0 ? max_cost : enumerator.levels_done()),
      fmcf_(std::move(enumerator)) {}

NotStripped McExpressor::strip_not_coset(
    const perm::Permutation& target) const {
  return strip_not_prefix(library_->domain().wires(), target);
}

std::optional<GEntry> McExpressor::locate(const perm::Permutation& core) {
  auto entry = fmcf_.find(core);
  // Stop at saturation: once the closure exhausts the reachable group below
  // max_cost, the target is simply not realizable over this library
  // (advance() would otherwise no-op forever). Catalog-backed closures are
  // frozen at their saved depth: a miss there is a miss, never a deepening.
  while (!entry.has_value() && fmcf_.levels_done() < max_cost_ &&
         !fmcf_.saturated() && !fmcf_.read_only()) {
    fmcf_.advance();
    entry = fmcf_.find(core);
  }
  return entry;
}

SynthesisResult McExpressor::assemble(const NotStripped& stripped,
                                      const gates::Cascade& core) const {
  return assemble_result(core.wires(), stripped, core);
}

std::optional<SynthesisResult> McExpressor::synthesize(
    const perm::Permutation& target) {
  const NotStripped stripped = strip_not_coset(target);
  if (stripped.core.is_identity()) {
    return assemble(stripped,
                    gates::Cascade(library_->domain().wires()));
  }
  const auto entry = locate(stripped.core);
  if (!entry.has_value()) return std::nullopt;
  return assemble(stripped, fmcf_.witness(*entry));
}

std::vector<SynthesisResult> McExpressor::implementations(
    const perm::Permutation& target) {
  const NotStripped stripped = strip_not_coset(target);
  std::vector<SynthesisResult> out;
  if (stripped.core.is_identity()) {
    out.push_back(
        assemble(stripped, gates::Cascade(library_->domain().wires())));
    return out;
  }
  const auto entry = locate(stripped.core);
  if (!entry.has_value()) return out;
  for (const std::size_t row :
       fmcf_.implementations(stripped.core, entry->cost)) {
    out.push_back(assemble(stripped, fmcf_.witness_for_row(entry->cost, row)));
  }
  return out;
}

std::optional<unsigned> McExpressor::minimal_cost(
    const perm::Permutation& target) {
  const NotStripped stripped = strip_not_coset(target);
  if (stripped.core.is_identity()) return 0;
  const auto entry = locate(stripped.core);
  if (!entry.has_value()) return std::nullopt;
  return entry->cost;
}

std::size_t McExpressor::count_sequences(const perm::Permutation& target,
                                         unsigned cost) {
  QSYN_CHECK(cost >= 1 && cost <= max_cost_,
             "count_sequences supports cost 1..max_cost()");
  const NotStripped stripped = strip_not_coset(target);
  const mvl::PatternDomain& domain = library_->domain();
  const std::size_t width = domain.size();
  const std::size_t binary_count = domain.binary_count();

  // Label tables mirroring the enumerator's hot path (16-bit labels cover
  // every supported domain width, including the 782-label 5-wire domain).
  std::vector<const perm::Permutation*> perms;
  std::vector<std::uint32_t> class_bits;
  for (std::size_t g = 0; g < library_->size(); ++g) {
    perms.push_back(&library_->permutation(g));
    class_bits.push_back(1u << library_->banned_class_of(g));
  }

  std::vector<std::uint16_t> state(width);
  for (std::size_t s = 0; s < width; ++s) {
    state[s] = static_cast<std::uint16_t>(s);
  }

  auto matches_target = [&](const std::uint16_t* row) {
    for (std::size_t s = 0; s < binary_count; ++s) {
      if (static_cast<std::uint32_t>(row[s]) + 1 !=
          stripped.core.apply(static_cast<std::uint32_t>(s + 1))) {
        return false;
      }
    }
    return true;
  };

  const auto banned_of = [&](const std::uint16_t* row) {
    std::uint32_t banned = 0;
    for (std::size_t s = 0; s < binary_count; ++s) {
      banned |= domain.banned_mask(row[s] + 1);
    }
    return banned;
  };

  // Depth-first walk over reasonable gate sequences of exactly `remaining`
  // more gates starting from `start` (a width-byte label image table).
  // Allocates its own scratch, so concurrent invocations are independent;
  // everything captured is read-only.
  const auto dfs_count = [&](const std::uint16_t* start,
                             unsigned remaining) -> std::size_t {
    std::size_t count = 0;
    std::vector<std::uint16_t> scratch((remaining + 1) * width);
    std::copy(start, start + width, scratch.begin());
    // Recursive walk via explicit stack of gate choices.
    struct Frame {
      std::size_t next_gate = 0;
    };
    std::vector<Frame> stack(1);
    while (!stack.empty()) {
      const std::size_t depth = stack.size() - 1;
      const std::uint16_t* current = scratch.data() + depth * width;
      if (depth == remaining) {
        if (matches_target(current)) ++count;
        stack.pop_back();
        continue;
      }
      const std::uint32_t banned = banned_of(current);
      bool descended = false;
      for (std::size_t g = stack.back().next_gate; g < perms.size(); ++g) {
        if ((banned & class_bits[g]) != 0) continue;
        stack.back().next_gate = g + 1;
        std::uint16_t* next = scratch.data() + (depth + 1) * width;
        const perm::Permutation& p = *perms[g];
        for (std::size_t s = 0; s < width; ++s) {
          next[s] = static_cast<std::uint16_t>(p.apply(current[s] + 1) - 1);
        }
        stack.emplace_back();
        descended = true;
        break;
      }
      if (!descended) stack.pop_back();
    }
    return count;
  };

  // Shallow searches (or a single worker) run the plain serial walk.
  const std::size_t threads = fmcf_.threads();
  constexpr unsigned kPrefixDepth = 2;
  if (threads <= 1 || cost <= kPrefixDepth) {
    return dfs_count(state.data(), cost);
  }

  // Parallel fan-out: enumerate every reasonable prefix of exactly
  // kPrefixDepth gates, then count each prefix's subtree as one pool task.
  // The tasks partition the serial DFS tree, so the summed count is
  // thread-count invariant by construction.
  std::vector<std::vector<std::uint16_t>> prefixes;
  std::vector<std::uint16_t> state1(width);
  std::vector<std::uint16_t> state2(width);
  const std::uint32_t banned0 = banned_of(state.data());
  for (std::size_t g1 = 0; g1 < perms.size(); ++g1) {
    if ((banned0 & class_bits[g1]) != 0) continue;
    for (std::size_t s = 0; s < width; ++s) {
      state1[s] =
          static_cast<std::uint16_t>(perms[g1]->apply(state[s] + 1) - 1);
    }
    const std::uint32_t banned1 = banned_of(state1.data());
    for (std::size_t g2 = 0; g2 < perms.size(); ++g2) {
      if ((banned1 & class_bits[g2]) != 0) continue;
      for (std::size_t s = 0; s < width; ++s) {
        state2[s] =
            static_cast<std::uint16_t>(perms[g2]->apply(state1[s] + 1) - 1);
      }
      prefixes.push_back(state2);
    }
  }
  std::vector<std::size_t> counts(prefixes.size(), 0);
  fmcf_.worker_pool().run(prefixes.size(), [&](std::size_t task, std::size_t) {
    counts[task] = dfs_count(prefixes[task].data(), cost - kPrefixDepth);
  });
  return std::accumulate(counts.begin(), counts.end(), std::size_t{0});
}

}  // namespace qsyn::synth
