#include "synth/mce.h"

#include <algorithm>

#include "common/error.h"

namespace qsyn::synth {

namespace {

FmcfOptions with_witnesses(FmcfOptions options) {
  options.track_witnesses = true;  // MCE reconstructs cascades
  return options;
}

}  // namespace

McExpressor::McExpressor(const gates::GateLibrary& library, unsigned max_cost,
                         FmcfOptions fmcf_options)
    : library_(&library),
      max_cost_(max_cost),
      fmcf_(library, with_witnesses(fmcf_options)) {}

McExpressor::Stripped McExpressor::strip_not_coset(
    const perm::Permutation& target) const {
  const std::size_t wires = library_->domain().wires();
  const std::uint32_t binary_count = 1u << wires;
  QSYN_CHECK(target.degree() <= binary_count,
             "target permutation degree exceeds 2^wires");
  const perm::Permutation g = target.extended_to(binary_count);

  // Theorem 2/3: choose d[0] in N with (d[0]^{-1} * g)(1) = 1. Writing a for
  // d[0] (an involution), h(1) = g(a(1)) = 1 forces a(1) = g^{-1}(1), i.e.
  // the NOT mask is the bit pattern of label g^{-1}(1).
  const std::uint32_t mask = g.inverse().apply(1) - 1;
  Stripped out;
  for (std::size_t w = 0; w < wires; ++w) {
    if ((mask >> (wires - 1 - w) & 1u) != 0) {
      out.not_prefix.push_back(gates::Gate::not_gate(w));
    }
  }
  // a as a permutation of binary labels: XOR by mask.
  std::vector<std::uint32_t> images(binary_count);
  for (std::uint32_t l = 0; l < binary_count; ++l) {
    images[l] = (l ^ mask) + 1;
  }
  const perm::Permutation a = perm::Permutation::from_images(std::move(images));
  out.core_target = a * g;  // a^{-1} * g with a an involution
  QSYN_CHECK(out.core_target.apply(1) == 1,
             "NOT-coset stripping must fix the all-zero pattern");
  return out;
}

std::optional<GEntry> McExpressor::locate(const perm::Permutation& core) {
  auto entry = fmcf_.find(core);
  // Stop at saturation: once the closure exhausts the reachable group below
  // max_cost, the target is simply not realizable over this library
  // (advance() would otherwise no-op forever).
  while (!entry.has_value() && fmcf_.levels_done() < max_cost_ &&
         !fmcf_.saturated()) {
    fmcf_.advance();
    entry = fmcf_.find(core);
  }
  return entry;
}

SynthesisResult McExpressor::assemble(const Stripped& stripped,
                                      const gates::Cascade& core) const {
  SynthesisResult result;
  result.not_prefix = stripped.not_prefix;
  result.core = core;
  result.cost = static_cast<unsigned>(core.size());
  std::vector<gates::Gate> all = stripped.not_prefix;
  all.insert(all.end(), core.sequence().begin(), core.sequence().end());
  result.circuit = gates::Cascade(core.wires(), std::move(all));
  return result;
}

std::optional<SynthesisResult> McExpressor::synthesize(
    const perm::Permutation& target) {
  const Stripped stripped = strip_not_coset(target);
  if (stripped.core_target.is_identity()) {
    return assemble(stripped,
                    gates::Cascade(library_->domain().wires()));
  }
  const auto entry = locate(stripped.core_target);
  if (!entry.has_value()) return std::nullopt;
  return assemble(stripped, fmcf_.witness(*entry));
}

std::vector<SynthesisResult> McExpressor::implementations(
    const perm::Permutation& target) {
  const Stripped stripped = strip_not_coset(target);
  std::vector<SynthesisResult> out;
  if (stripped.core_target.is_identity()) {
    out.push_back(assemble(stripped, gates::Cascade(library_->domain().wires())));
    return out;
  }
  const auto entry = locate(stripped.core_target);
  if (!entry.has_value()) return out;
  for (const std::size_t row :
       fmcf_.implementations(stripped.core_target, entry->cost)) {
    out.push_back(assemble(stripped, fmcf_.witness_for_row(entry->cost, row)));
  }
  return out;
}

std::optional<unsigned> McExpressor::minimal_cost(
    const perm::Permutation& target) {
  const Stripped stripped = strip_not_coset(target);
  if (stripped.core_target.is_identity()) return 0;
  const auto entry = locate(stripped.core_target);
  if (!entry.has_value()) return std::nullopt;
  return entry->cost;
}

std::size_t McExpressor::count_sequences(const perm::Permutation& target,
                                         unsigned cost) {
  QSYN_CHECK(cost >= 1 && cost <= max_cost_,
             "count_sequences supports cost 1..max_cost()");
  const Stripped stripped = strip_not_coset(target);
  const mvl::PatternDomain& domain = library_->domain();
  const std::size_t width = domain.size();
  const std::size_t binary_count = domain.binary_count();

  // Byte tables mirroring the enumerator's hot path.
  std::vector<const perm::Permutation*> perms;
  std::vector<std::uint32_t> class_bits;
  for (std::size_t g = 0; g < library_->size(); ++g) {
    perms.push_back(&library_->permutation(g));
    class_bits.push_back(1u << library_->banned_class_of(g));
  }

  std::vector<std::uint8_t> state(width);
  for (std::size_t s = 0; s < width; ++s) {
    state[s] = static_cast<std::uint8_t>(s);
  }

  std::size_t count = 0;
  // Depth-first over reasonable gate sequences of exactly `cost` gates.
  std::vector<std::uint8_t> scratch((cost + 1) * width);
  std::copy(state.begin(), state.end(), scratch.begin());

  auto matches_target = [&](const std::uint8_t* row) {
    for (std::size_t s = 0; s < binary_count; ++s) {
      if (static_cast<std::uint32_t>(row[s]) + 1 !=
          stripped.core_target.apply(static_cast<std::uint32_t>(s + 1))) {
        return false;
      }
    }
    return true;
  };

  // Recursive lambda via explicit stack of gate choices.
  struct Frame {
    std::size_t next_gate = 0;
  };
  std::vector<Frame> stack(1);
  while (!stack.empty()) {
    const std::size_t depth = stack.size() - 1;
    const std::uint8_t* current = scratch.data() + depth * width;
    if (depth == cost) {
      if (matches_target(current)) ++count;
      stack.pop_back();
      continue;
    }
    std::uint32_t banned = 0;
    for (std::size_t s = 0; s < binary_count; ++s) {
      banned |= domain.banned_mask(current[s] + 1);
    }
    bool descended = false;
    for (std::size_t g = stack.back().next_gate; g < perms.size(); ++g) {
      if ((banned & class_bits[g]) != 0) continue;
      stack.back().next_gate = g + 1;
      std::uint8_t* next = scratch.data() + (depth + 1) * width;
      const perm::Permutation& p = *perms[g];
      for (std::size_t s = 0; s < width; ++s) {
        next[s] = static_cast<std::uint8_t>(p.apply(current[s] + 1) - 1);
      }
      stack.emplace_back();
      descended = true;
      break;
    }
    if (!descended) stack.pop_back();
  }
  return count;
}

}  // namespace qsyn::synth
