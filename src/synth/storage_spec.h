// qsyn/synth/storage_spec.h
//
// StorageSpec — the one public way to say where row storage lives.
//
// PR 6 grew three RowStorage backends (in-memory vector, read-only mmap
// window, writable spill file), and construction knowledge was starting to
// scatter across call sites. A StorageSpec is a small value describing a
// backend choice:
//
//   StorageSpec::in_memory()                  — writable heap vector (the
//                                               default everywhere)
//   StorageSpec::mmap_read_only(path)         — the whole file, mapped
//                                               read-only, zero-copy
//   StorageSpec::file_backed(path[, keep])    — writable growable mmap'd
//                                               file; seal via the concrete
//                                               FileRowStorage handle
//
// make_storage() materializes the backend; make_store(width) wraps it in a
// FlatPermStore directly. Specs are cheap to copy and compare, so configs
// and test fixtures can pass them around by value.
//
// The persistent catalog keeps carving its frontier windows out of one
// shared mapping internally — a path-shaped spec cannot express "bytes
// [a, b) of an already-open file", and that construction never leaves
// synth/catalog.cpp.
//
// Error taxonomy: a missing or unmappable file behind mmap_read_only and an
// uncreatable file behind file_backed throw qsyn::IoError; wrapping a
// backend whose byte count is not a whole number of rows throws
// qsyn::LogicError (from the FlatPermStore constructor).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "synth/flat_perm_store.h"
#include "synth/row_storage.h"

namespace qsyn::synth {

/// A value describing which RowStorage backend to build.
class StorageSpec {
 public:
  enum class Backend {
    kInMemory,      // writable VectorRowStorage
    kMmapReadOnly,  // read-only MmapRowStorage over a whole file
    kFileWritable,  // writable FileRowStorage (growable mmap'd file)
  };

  /// Writable heap-backed storage (the default).
  [[nodiscard]] static StorageSpec in_memory();

  /// The whole of `path`, mapped read-only.
  [[nodiscard]] static StorageSpec mmap_read_only(std::string path);

  /// A writable growable mmap'd file at `path`. With `keep_file` false the
  /// file is deleted when the backend dies (spill-temporary policy).
  [[nodiscard]] static StorageSpec file_backed(std::string path,
                                               bool keep_file = true);

  [[nodiscard]] Backend backend() const { return backend_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool keep_file() const { return keep_file_; }

  /// Materializes the backend this spec describes.
  [[nodiscard]] std::shared_ptr<RowStorage> make_storage() const;

  /// Materializes the backend and wraps it in a FlatPermStore of `width`.
  [[nodiscard]] FlatPermStore make_store(std::size_t width) const;

  friend bool operator==(const StorageSpec& a, const StorageSpec& b) {
    return a.backend_ == b.backend_ && a.path_ == b.path_ &&
           a.keep_file_ == b.keep_file_;
  }
  friend bool operator!=(const StorageSpec& a, const StorageSpec& b) {
    return !(a == b);
  }

 private:
  StorageSpec(Backend backend, std::string path, bool keep_file)
      : backend_(backend), path_(std::move(path)), keep_file_(keep_file) {}

  Backend backend_;
  std::string path_;
  bool keep_file_;
};

}  // namespace qsyn::synth
