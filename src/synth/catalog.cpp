// Persistent catalog save/reopen for FmcfEnumerator (format in
// synth/catalog.h). Writing streams the closure out through big-endian
// helpers; reopening validates every field before trusting it and then wraps
// the mapped frontier sections in read-only FlatPermStore backends, so a
// reopened enumerator answers find()/witness() without re-running a single
// advance() level.
#include "synth/catalog.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.h"
#include "common/io/mmap_file.h"
#include "synth/fmcf.h"
#include "synth/row_storage.h"

namespace qsyn::synth {

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& detail) {
  throw qsyn::CatalogError("invalid catalog '" + path + "': " + detail);
}

double bits_to_double(std::uint64_t bits) {
  double out;
  static_assert(sizeof(out) == sizeof(bits));
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

std::uint64_t double_to_bits(double value) {
  std::uint64_t out;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

}  // namespace

void FmcfEnumerator::save_catalog(const std::string& path) const {
  namespace cat = catalog;
  const unsigned levels = levels_done();

  std::vector<std::uint8_t> head;
  head.reserve(cat::kHeaderBytes + stats_.size() * cat::kStatsEntryBytes +
               g_seen_keys_.size() * cat::kGEntryBytes);
  head.insert(head.end(), cat::kMagic, cat::kMagic + sizeof(cat::kMagic));
  cat::put_u32(head, cat::kVersion);
  cat::put_u32(head, cat::kEndianTag);
  cat::put_u32(head, static_cast<std::uint32_t>(library_->domain().wires()));
  cat::put_u32(head, static_cast<std::uint32_t>(width_));
  cat::put_u32(head, static_cast<std::uint32_t>(binary_count_));
  cat::put_u32(head, static_cast<std::uint32_t>(label_bytes_));
  cat::put_u32(head, static_cast<std::uint32_t>(library_->size()));
  cat::put_u32(head, levels);
  std::uint32_t flags = 0;
  if (options_.track_witnesses) flags |= cat::kFlagTrackWitnesses;
  if (options_.use_banned_sets) flags |= cat::kFlagUseBannedSets;
  cat::put_u32(head, flags);
  cat::put_u64(head, library_->domain().fingerprint());
  cat::put_u64(head, library_->fingerprint());
  cat::put_u64(head, g_seen_keys_.size());
  QSYN_CHECK(head.size() == cat::kHeaderBytes,
             "catalog header layout drifted from kHeaderBytes");

  for (const FmcfLevelStats& s : stats_) {
    cat::put_u32(head, s.cost);
    cat::put_u64(head, s.frontier);
    cat::put_u64(head, s.g_new);
    cat::put_u64(head, s.pre_g);
    cat::put_u64(head, s.seen);
    cat::put_u64(head, double_to_bits(s.seconds));
  }

  // g_seen_keys_ is kept sorted by the closure, so the serialized index is
  // binary-searchable and its order is deterministic.
  for (const GKey& key : g_seen_keys_) {
    const auto it = g_index_.find(key);
    QSYN_CHECK(it != g_index_.end(), "G key missing its index entry");
    for (const std::uint64_t word : key) cat::put_u64(head, word);
    cat::put_u32(head, it->second.cost);
    cat::put_u64(head, it->second.frontier_index);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw qsyn::IoError("cannot open catalog for writing: " + path);
  }
  out.write(reinterpret_cast<const char*>(head.data()),
            static_cast<std::streamsize>(head.size()));

  // Frontier sections, k = 0..levels. Store rows are big-endian already, so
  // the row bytes go out verbatim (and come back in as an mmap window).
  // Spilled closures hand their frontiers over as mmap'd sealed spill files,
  // so the copy below streams kernel-cached file pages straight into the
  // ofstream in bounded slices — the frontier never takes a round trip
  // through a frontier-sized heap buffer. Without witness tracking the
  // pre-latest frontiers were released and serialize as zero-row sections.
  constexpr std::size_t kCopySliceBytes = std::size_t(8) << 20;
  std::vector<std::uint8_t> prefix;
  for (unsigned k = 0; k <= levels; ++k) {
    const FlatPermStore& frontier = frontiers_[k];
    prefix.clear();
    cat::put_u64(prefix, frontier.size());
    out.write(reinterpret_cast<const char*>(prefix.data()),
              static_cast<std::streamsize>(prefix.size()));
    for (std::size_t off = 0; off < frontier.size_bytes();
         off += kCopySliceBytes) {
      const std::size_t n =
          std::min(kCopySliceBytes, frontier.size_bytes() - off);
      out.write(reinterpret_cast<const char*>(frontier.data() + off),
                static_cast<std::streamsize>(n));
    }
  }
  out.flush();
  if (!out) {
    throw qsyn::IoError("failed writing catalog: " + path);
  }
}

FmcfEnumerator FmcfEnumerator::open_catalog(const std::string& path,
                                            const gates::GateLibrary& library,
                                            ClosureConfig options) {
  namespace cat = catalog;
  const std::shared_ptr<const io::MmapFile> file = io::MmapFile::map(path);
  const std::uint8_t* base = file->data();
  const std::size_t total = file->size();

  const auto need = [&](std::size_t offset, std::size_t bytes,
                        const char* what) {
    if (offset > total || bytes > total - offset) {
      corrupt(path, std::string("truncated (") + what + ")");
    }
  };

  need(0, cat::kHeaderBytes, "header");
  if (std::memcmp(base + cat::kMagicOffset, cat::kMagic,
                  sizeof(cat::kMagic)) != 0) {
    corrupt(path, "bad magic, not a qsyn catalog");
  }
  const std::uint32_t version = cat::get_u32(base + cat::kVersionOffset);
  if (version != cat::kVersion) {
    corrupt(path, "unsupported format version " + std::to_string(version) +
                      " (expected " + std::to_string(cat::kVersion) + ")");
  }
  if (cat::get_u32(base + cat::kEndianOffset) != cat::kEndianTag) {
    corrupt(path, "endianness tag mismatch");
  }

  const std::uint32_t wires = cat::get_u32(base + cat::kWiresOffset);
  const std::uint32_t width = cat::get_u32(base + cat::kWidthOffset);
  const std::uint32_t binary_count =
      cat::get_u32(base + cat::kBinaryCountOffset);
  const std::uint32_t label_bytes = cat::get_u32(base + cat::kLabelBytesOffset);
  const std::uint32_t gate_count = cat::get_u32(base + cat::kGateCountOffset);
  const std::uint32_t levels = cat::get_u32(base + cat::kLevelsOffset);
  const std::uint32_t flags = cat::get_u32(base + cat::kFlagsOffset);
  if (wires != library.domain().wires() || width != library.domain().size() ||
      binary_count != library.domain().binary_count() ||
      gate_count != library.size()) {
    corrupt(path, "built for a different domain/library shape (" +
                      std::to_string(wires) + " wires, width " +
                      std::to_string(width) + ", " +
                      std::to_string(gate_count) + " gates)");
  }
  if (cat::get_u64(base + cat::kDomainFingerprintOffset) !=
      library.domain().fingerprint()) {
    corrupt(path, "domain fingerprint mismatch");
  }
  if (cat::get_u64(base + cat::kLibraryFingerprintOffset) !=
      library.fingerprint()) {
    corrupt(path, "library fingerprint mismatch");
  }

  options.track_witnesses = (flags & cat::kFlagTrackWitnesses) != 0;
  options.use_banned_sets = (flags & cat::kFlagUseBannedSets) != 0;
  FmcfEnumerator out(library, options, CatalogTag{});
  if (label_bytes != out.label_bytes_) {
    corrupt(path, "label width disagrees with the domain size");
  }

  // Level stats.
  std::size_t offset = cat::kHeaderBytes;
  need(offset, std::size_t{levels} * cat::kStatsEntryBytes, "level stats");
  out.stats_.reserve(levels);
  for (std::uint32_t k = 1; k <= levels; ++k) {
    FmcfLevelStats s;
    s.cost = cat::get_u32(base + offset);
    if (s.cost != k) corrupt(path, "level stats out of order");
    s.frontier = cat::get_u64(base + offset + 4);
    s.g_new = cat::get_u64(base + offset + 12);
    s.pre_g = cat::get_u64(base + offset + 20);
    s.seen = cat::get_u64(base + offset + 28);
    s.seconds = bits_to_double(cat::get_u64(base + offset + 36));
    out.stats_.push_back(s);
    offset += cat::kStatsEntryBytes;
  }

  // G index: sorted keys, eagerly rebuilt (a few MB at most, and the hash
  // map makes find() O(1) — mapping it lazily would buy nothing).
  const std::uint64_t g_count = cat::get_u64(base + cat::kGCountOffset);
  if (g_count == 0) corrupt(path, "empty G index (identity entry missing)");
  need(offset, static_cast<std::size_t>(g_count) * cat::kGEntryBytes,
       "G index");
  out.g_seen_keys_.reserve(static_cast<std::size_t>(g_count));
  out.g_index_.reserve(static_cast<std::size_t>(g_count));
  for (std::uint64_t i = 0; i < g_count; ++i) {
    GKey key{};
    for (std::size_t w = 0; w < key.size(); ++w) {
      key[w] = cat::get_u64(base + offset + 8 * w);
    }
    const std::uint32_t cost = cat::get_u32(base + offset + 32);
    const std::uint64_t row = cat::get_u64(base + offset + 36);
    if (!out.g_seen_keys_.empty() && !(out.g_seen_keys_.back() < key)) {
      corrupt(path, "G index keys not strictly ascending");
    }
    if (cost > levels) corrupt(path, "G entry cost beyond the saved levels");
    out.g_seen_keys_.push_back(key);
    out.g_index_.emplace(key,
                         GEntry{cost, static_cast<std::size_t>(row)});
    offset += cat::kGEntryBytes;
  }

  // Frontier sections, mapped zero-copy: each FlatPermStore is a read-only
  // window into the shared mapping, so opening cost is independent of how
  // many millions of rows the closure holds (pages fault in on first query).
  out.frontiers_.reserve(std::size_t{levels} + 1);
  for (std::uint32_t k = 0; k <= levels; ++k) {
    need(offset, 8, "frontier section header");
    const std::uint64_t rows = cat::get_u64(base + offset);
    offset += 8;
    if (rows > total / out.stride_) {
      corrupt(path, "frontier row count overflows the file");
    }
    const std::size_t bytes = static_cast<std::size_t>(rows) * out.stride_;
    need(offset, bytes, "frontier rows");
    out.frontiers_.emplace_back(
        out.width_, std::make_shared<MmapRowStorage>(file, offset, bytes));
    offset += bytes;
  }
  if (offset != total) corrupt(path, "trailing bytes after the last frontier");

  if (out.options_.track_witnesses) {
    if (out.frontiers_[0].size() != 1) {
      corrupt(path, "level-0 frontier must hold exactly the identity");
    }
    for (std::uint32_t k = 1; k <= levels; ++k) {
      if (out.frontiers_[k].size() != out.stats_[k - 1].frontier) {
        corrupt(path, "frontier row count disagrees with the level stats");
      }
    }
    for (const auto& [key, entry] : out.g_index_) {
      if (entry.cost == 0) continue;
      if (entry.frontier_index >= out.frontiers_[entry.cost].size()) {
        corrupt(path, "witness row index outside its frontier");
      }
    }
  }
  return out;
}

}  // namespace qsyn::synth
