// qsyn/synth/sharded_perm_store.h
//
// A FlatPermStore partitioned into disjoint lexicographic key ranges.
//
// Rows hold domain labels in [0, width), so routing scales the leading
// label pair row[0]*width + row[1] over width^2 — labels never approach
// 255, and a raw byte prefix would park every row in the first few shards.
// The shard index is monotone in the rows' lexicographic order: shard 0
// owns the smallest rows, the last shard the largest, and concatenating
// sorted shards in shard order yields a globally sorted store (flatten()).
// Because shards own disjoint ranges, the set algebra of FlatPermStore
// (sort/unique/subtract/merge) decomposes into independent per-shard calls —
// this is what the multi-threaded FMCF closure parallelizes over.
//
// Each shard is an ordinary FlatPermStore, so shards inherit the RowStorage
// backend seam (synth/row_storage.h): a sharded store built for a level
// sweep uses writable in-memory shards, while the monotone partition means
// a flatten()ed store can later be served read-only (e.g. mmap'd from a
// catalog) with shard boundaries recoverable from shard_of() alone — the
// seam the planned out-of-core n >= 5 frontier spills through.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "synth/flat_perm_store.h"

namespace qsyn::synth {

/// `shard_count` sorted FlatPermStores over disjoint key ranges.
class ShardedPermStore {
 public:
  /// `width` as in FlatPermStore; `shard_count` in [1, 65536].
  ShardedPermStore(std::size_t width, std::size_t shard_count);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Index of the shard owning `row_bytes` (monotone in row order; rows are
  /// in the FlatPermStore label encoding for this width). Even spread and
  /// monotonicity assume label rows (labels < width); labels out of that
  /// range are clamped, which stays in bounds but may skew or reorder
  /// routing.
  [[nodiscard]] std::size_t shard_of(const std::uint8_t* row_bytes) const {
    const std::size_t lb = label_bytes_;
    const std::size_t b0 = std::min<std::size_t>(
        FlatPermStore::read_label(row_bytes, 0, lb), width_ - 1);
    const std::size_t b1 =
        width_ > 1 ? std::min<std::size_t>(
                         FlatPermStore::read_label(row_bytes, 1, lb),
                         width_ - 1)
                   : 0;
    return (b0 * width_ + b1) * shards_.size() / (width_ * width_);
  }

  [[nodiscard]] FlatPermStore& shard(std::size_t s) { return shards_[s]; }
  [[nodiscard]] const FlatPermStore& shard(std::size_t s) const {
    return shards_[s];
  }

  /// Total rows across all shards.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Routes one row to its owning shard.
  void push_back(const std::uint8_t* row_bytes);
  void push_back(const perm::Permutation& p);

  /// Per-shard sort_unique (shards are independent; callers may instead
  /// invoke shard(s).sort_unique() from worker threads).
  void sort_unique();

  /// Shard-wise set difference / union; `other` must have the same width
  /// and shard count, and both stores must be shard-sorted.
  void subtract_sorted(const ShardedPermStore& other);
  void merge_sorted(const ShardedPermStore& other);

  /// Binary search in the owning shard (store must be shard-sorted).
  [[nodiscard]] bool contains_sorted(const std::uint8_t* row_bytes) const;

  /// Concatenates the shards in shard order. When every shard is sorted the
  /// result is globally sorted (the partition is monotone).
  [[nodiscard]] FlatPermStore flatten() const;

  /// Like flatten(), but destructive: a lone shard is moved out without a
  /// copy; otherwise each shard is released right after it is copied into
  /// the preallocated result, so resident memory stays near one store's
  /// worth of rows (the result's pages are touched only as shards drain)
  /// instead of holding source and result fully populated at once. Leaves
  /// this store empty.
  [[nodiscard]] FlatPermStore take_flatten();

  /// Releases all memory.
  void clear();

  /// Bytes of heap memory currently held.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  std::size_t width_;
  std::size_t label_bytes_;  // mirrors the shards' FlatPermStore encoding
  std::vector<FlatPermStore> shards_;
};

}  // namespace qsyn::synth
