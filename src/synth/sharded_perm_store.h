// qsyn/synth/sharded_perm_store.h
//
// A FlatPermStore partitioned into disjoint lexicographic key ranges.
//
// Rows hold domain labels in [0, width), so routing scales the leading
// label pair row[0]*width + row[1] over width^2 — labels never approach
// 255, and a raw byte prefix would park every row in the first few shards.
// The shard index is monotone in the rows' lexicographic order: shard 0
// owns the smallest rows, the last shard the largest, and concatenating
// sorted shards in shard order yields a globally sorted store.
// Because shards own disjoint ranges, the set algebra of FlatPermStore
// (sort/unique/subtract/merge) decomposes into independent per-shard calls —
// this is what the multi-threaded FMCF closure parallelizes over.
//
// Spill-to-disk mode (SpillOptions): give the store a heap budget and a
// directory, and each shard seals its sorted in-memory rows into a
// prefix-compressed SealedRun file (synth/spill.h) whenever a merge pushes
// the shard past its slice of the budget. A spilled shard is then the union
// of one writable in-memory "active" store and a list of immutable sorted
// runs — mutually disjoint by construction, because the closure's per-shard
// primitives below subtract incoming rows against the whole shard (active
// plus every run) before merging. Disjointness makes sizes exact, so the
// FMCF per-level stats are byte-identical with and without spilling; the
// monotone partition makes drain_sorted()'s per-shard k-way merges
// concatenate into a globally sorted result, so frontier bytes are
// byte-identical too. With a zero budget (the default) nothing ever spills
// and the store behaves exactly as before.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "synth/flat_perm_store.h"
#include "synth/spill.h"

namespace qsyn::synth {

/// Spill policy for a ShardedPermStore.
struct SpillOptions {
  /// Heap budget in bytes across all shards; each shard seals to disk when
  /// its in-memory rows exceed budget_bytes / shard_count. 0 = never spill.
  std::size_t budget_bytes = 0;

  /// Directory for run files. Must be non-empty when budget_bytes > 0 (the
  /// closure resolves it via resolve_spill_dir); an unusable directory
  /// surfaces as qsyn::IoError at the first seal.
  std::string dir;
};

/// `shard_count` sorted FlatPermStores over disjoint key ranges, each
/// optionally backed by sealed on-disk runs.
class ShardedPermStore {
 public:
  /// `width` as in FlatPermStore; `shard_count` in [1, 65536].
  ShardedPermStore(std::size_t width, std::size_t shard_count);

  /// Same, with a spill policy.
  ShardedPermStore(std::size_t width, std::size_t shard_count,
                   SpillOptions spill);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Index of the shard owning `row_bytes` (monotone in row order; rows are
  /// in the FlatPermStore label encoding for this width). Even spread and
  /// monotonicity assume label rows (labels < width); labels out of that
  /// range are clamped, which stays in bounds but may skew or reorder
  /// routing.
  [[nodiscard]] std::size_t shard_of(const std::uint8_t* row_bytes) const {
    const std::size_t lb = label_bytes_;
    const std::size_t b0 = std::min<std::size_t>(
        FlatPermStore::read_label(row_bytes, 0, lb), width_ - 1);
    const std::size_t b1 =
        width_ > 1 ? std::min<std::size_t>(
                         FlatPermStore::read_label(row_bytes, 1, lb),
                         width_ - 1)
                   : 0;
    return (b0 * width_ + b1) * shards_.size() / (width_ * width_);
  }

  /// The in-memory ("active") rows of shard `s`. On a spilled store this is
  /// only part of the shard — the sealed runs are not visible here; prefer
  /// the per-shard primitives below, which see the whole shard.
  [[nodiscard]] FlatPermStore& shard(std::size_t s) { return shards_[s]; }
  [[nodiscard]] const FlatPermStore& shard(std::size_t s) const {
    return shards_[s];
  }

  /// Total rows across all shards, sealed runs included (exact: the pieces
  /// are disjoint).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// True when any shard currently holds sealed runs.
  [[nodiscard]] bool spilled() const;

  /// Total sealed runs across all shards.
  [[nodiscard]] std::size_t run_count() const;

  /// Routes one row to its owning shard's active store (never seals; bulk
  /// loads go through merge_into_shard for that).
  void push_back(const std::uint8_t* row_bytes);
  void push_back(const perm::Permutation& p);

  /// Per-shard sort_unique (shards are independent; callers may instead
  /// invoke shard(s).sort_unique() from worker threads). Rejected with
  /// qsyn::LogicError once runs exist: sealed rows are already sorted and
  /// must not be re-ordered against unsorted active rows.
  void sort_unique();

  /// Shard-wise set difference / union; `other` must have the same width
  /// and shard count, and both stores must be shard-sorted. These legacy
  /// whole-store forms require both stores spill-free (qsyn::LogicError
  /// otherwise); the closure uses the per-shard primitives below instead.
  void subtract_sorted(const ShardedPermStore& other);
  void merge_sorted(const ShardedPermStore& other);

  /// Removes from `rows` (sorted, writable) every row present in shard `s` —
  /// active store and every sealed run. The closure's membership filter.
  void subtract_shard_from(std::size_t s, FlatPermStore& rows) const;

  /// Merges `rows` (sorted, disjoint from shard `s` — i.e. already passed
  /// through subtract_shard_from) into shard `s`'s active store, then seals
  /// the active store to a new run if it exceeds the shard's budget slice.
  void merge_into_shard(std::size_t s, const FlatPermStore& rows);

  /// Merges shard `s` of `other` — active rows and sealed runs — into shard
  /// `s` of this store. The shard contents must be disjoint (the closure
  /// guarantees this: fresh rows were subtracted against the seen set before
  /// accumulating). Runs are adopted by reference; `other` keeps serving
  /// them until cleared.
  void absorb_shard(std::size_t s, const ShardedPermStore& other);

  /// Binary search in the owning shard — active store and sealed runs (store
  /// must be shard-sorted).
  [[nodiscard]] bool contains_sorted(const std::uint8_t* row_bytes) const;

  /// Non-destructive flatten: merges the shards (and their sealed runs) in
  /// shard order into a fresh writable in-memory store. When every shard is
  /// sorted the result is globally sorted (the partition is monotone). On a
  /// spilled store this materializes every on-disk row in RAM — use
  /// drain_sorted() when the store is no longer needed.
  [[nodiscard]] FlatPermStore flatten() const;

  /// Destructive flatten — the one contract for both in-memory and spilled
  /// stores: returns the globally sorted rows and leaves this store empty.
  /// The backing of the result is an implementation detail and callers must
  /// treat it as read-only:
  ///   - lone in-memory shard: the shard's storage is moved out, no copy;
  ///   - several in-memory shards: shards are copied into a preallocated
  ///     writable store and released one by one, so resident memory stays
  ///     near one store's worth of rows;
  ///   - spilled: each shard's active rows and runs are k-way merged and
  ///     streamed into one sealed spill file, and the result is that file
  ///     mmap'd read-only (heap cost: one I/O buffer). The file lives as
  ///     long as the returned store's backend.
  /// Row bytes and order are identical in every mode.
  [[nodiscard]] FlatPermStore drain_sorted();

  /// Releases all memory and deletes this store's temporary run files (runs
  /// adopted elsewhere via absorb_shard survive until every owner drops
  /// them).
  void clear();

  /// Bytes of heap memory currently held (active stores only).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Bytes held in sealed run files on disk.
  [[nodiscard]] std::size_t disk_bytes() const;

 private:
  void maybe_seal(std::size_t s);
  void merge_shard_append(std::size_t s, FlatPermStore& out) const;

  std::size_t width_;
  std::size_t label_bytes_;  // mirrors the shards' FlatPermStore encoding
  std::vector<FlatPermStore> shards_;
  std::vector<std::vector<std::shared_ptr<const SealedRun>>> runs_;
  SpillOptions spill_;
  std::size_t shard_budget_ = 0;  // bytes; 0 = never seal
};

}  // namespace qsyn::synth
