// qsyn/synth/fmcf.h
//
// The paper's Finding_Minimum_Cost_Circuits (FMCF) algorithm: a breadth-first
// closure of the quantum gate library L under the "reasonable product"
// constraint.
//
//   A[k] = circuits realizable with <= k gates        (as permutations of the
//   B[k] = A[k] - A[k-1]   (frontier: minimal cost k)  reduced pattern domain)
//   pre_G[k] = { Restrictedperm(b, S) : b in B[k], b(S) = S }
//   G[k] = pre_G[k] - G[k-1] - ... - G[1] - G[0]
//
// G[k] is the set of reversible (binary-in/binary-out) circuits whose minimal
// quantum cost is exactly k (Theorem 1). Table 2 of the paper tabulates
// |G[k]| for k = 0..7; with NOT gates, |S8[k]| = 2^n * |G[k]| by Theorem 2.
//
// The enumerator runs level by level (advance()), storing each frontier as a
// sorted flat byte store, so the paper's memory bound cb can be pushed well
// past 7 on a modern machine (see bench_beyond_cb7). Each level is swept in
// parallel: the frontier expansion fans out over a worker pool and the set
// algebra runs per shard of a lexicographically partitioned store
// (ShardedPermStore), with results — including every per-level stat —
// byte-identical to the single-threaded sweep. With a spill budget
// (ClosureConfig::spill_budget_bytes) the seen-set and frontier stores seal
// to prefix-compressed run files when RAM runs out and the set algebra
// continues as streaming merges over the sealed runs — stats and frontier
// bytes stay identical to the all-in-RAM sweep, which is how the 5-wire
// closure reaches k >= 3 on bounded memory. When the library exhausts its
// reachable group below the requested bound the closure saturates:
// saturated() turns true, and advance()/run_to() become no-ops instead of
// crashing on the empty frontier.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "gates/cascade.h"
#include "gates/library.h"
#include "perm/permutation.h"
#include "synth/closure_config.h"
#include "synth/flat_perm_store.h"
#include "synth/sharded_perm_store.h"

namespace qsyn {
class ThreadPool;
}

namespace qsyn::synth {

/// Per-level statistics, one entry per computed cost k >= 1.
struct FmcfLevelStats {
  unsigned cost = 0;          // k
  std::size_t frontier = 0;   // |B[k]|
  std::size_t g_new = 0;      // |G[k]|
  std::size_t pre_g = 0;      // |pre_G[k]| (before subtracting earlier G's)
  std::size_t seen = 0;       // |A[k]|
  double seconds = 0.0;       // wall time for this level
};

/// Handle to one reversible circuit discovered by the closure.
struct GEntry {
  unsigned cost = 0;            // minimal quantum cost
  std::size_t frontier_index = 0;  // row in the B[cost] store (0 for cost 0)
};

/// Key identifying a member of G: the restricted permutation on the binary
/// labels, one byte per point (2^n points, so 256 bits cover up to 5 wires).
using GKey = std::array<std::uint64_t, 4>;

struct GKeyHash {
  std::size_t operator()(const GKey& key) const {
    // splitmix64-style mix of the four words.
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t word : key) {
      std::uint64_t x = word + h;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      h = x ^ (x >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Breadth-first FMCF closure over a gate library.
class FmcfEnumerator {
 public:
  /// The library must be built over a *reduced* domain whose first 2^n
  /// labels are the binary patterns. Supports up to 5 wires (G-set keys
  /// pack one byte per binary label into 256 bits; the 782-label 5-wire
  /// domain uses the stores' two-byte label rows).
  explicit FmcfEnumerator(const gates::GateLibrary& library,
                          ClosureConfig options = {});
  ~FmcfEnumerator();

  FmcfEnumerator(FmcfEnumerator&&) noexcept;
  FmcfEnumerator& operator=(FmcfEnumerator&&) noexcept;

  /// Computes the next level (k = levels_done()+1) and returns its stats.
  /// Once the closure is saturated() this is a no-op returning the last
  /// level's stats. Throws qsyn::LogicError on a read_only() (catalog-
  /// backed) enumerator: reopened catalogs serve, they never re-enumerate.
  const FmcfLevelStats& advance();

  /// Runs advance() until `max_cost` levels are done or the closure
  /// saturates, whichever comes first.
  void run_to(unsigned max_cost);

  /// True when the closure is exhausted: the last computed frontier is
  /// empty, so no deeper level can contain new circuits.
  [[nodiscard]] bool saturated() const {
    return !stats_.empty() && stats_.back().frontier == 0;
  }

  // --- persistent catalog ------------------------------------------------

  /// Serializes the computed closure to a versioned on-disk catalog (see
  /// synth/catalog.h for the format): header with magic/version/endianness
  /// tag and domain+library fingerprints, per-level stats, the sorted G-set
  /// index with witness metadata, and every frontier's raw row table.
  /// Throws qsyn::IoError when the file cannot be written.
  void save_catalog(const std::string& path) const;

  /// Reopens a catalog read-only: the G index is rebuilt eagerly (it is
  /// small), while the frontier row tables are memory-mapped zero-copy, so
  /// opening costs milliseconds regardless of catalog size and no advance()
  /// work is ever redone. `library` must be the library the catalog was
  /// saved from (enforced via the stored fingerprints). Witness tracking and
  /// banned-set flags come from the file; `options` only contributes
  /// threads/shards. Throws qsyn::CatalogError on malformed or incompatible
  /// files and qsyn::IoError on filesystem failures.
  [[nodiscard]] static FmcfEnumerator open_catalog(
      const std::string& path, const gates::GateLibrary& library,
      ClosureConfig options = {});

  /// True for catalog-backed enumerators: every query path (find, g_set,
  /// witness, implementations) works, but advance() throws.
  [[nodiscard]] bool read_only() const { return read_only_; }

  /// Resolved worker-thread count used by the level sweep.
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// The enumerator's worker pool, created lazily on first use. Shared
  /// with the MCE layer (McExpressor::count_sequences fans its DFS out
  /// here) so callers reuse one set of workers instead of spawning a pool
  /// per call.
  [[nodiscard]] ThreadPool& worker_pool();

  [[nodiscard]] unsigned levels_done() const {
    return static_cast<unsigned>(stats_.size());
  }
  [[nodiscard]] const std::vector<FmcfLevelStats>& stats() const {
    return stats_;
  }

  /// Members of G[k] as permutations of the binary labels {1..2^n};
  /// G[0] = { identity }. Requires k <= levels_done().
  [[nodiscard]] std::vector<perm::Permutation> g_set(unsigned k) const;

  /// Looks up a reversible circuit (a permutation of {1..2^n}) among the
  /// levels computed so far.
  [[nodiscard]] std::optional<GEntry> find(
      const perm::Permutation& restricted) const;

  /// Reconstructs one minimal witness cascade for an entry by the paper's
  /// back-walk (find d with b*(d)^{-1} in B[k-1] and the product reasonable).
  /// Each back-step scans the candidate gates across the worker pool when
  /// the sweep ran multi-threaded, always selecting the lowest valid gate
  /// index, so the reconstructed cascade is thread-count invariant. Safe to
  /// call concurrently with other witness reconstructions (the pool admits
  /// one back-walk at a time; contending callers run the serial scan) but
  /// not with advance(). Requires track_witnesses.
  [[nodiscard]] gates::Cascade witness(const GEntry& entry) const;

  /// All rows b in B[k] whose restriction to S equals `restricted` —
  /// the paper's count of distinct "implementations" (2 for Peres, 4 for
  /// Toffoli). Requires track_witnesses and k <= levels_done().
  [[nodiscard]] std::vector<std::size_t> implementations(
      const perm::Permutation& restricted, unsigned k) const;

  /// Witness cascade for an explicit row of B[k].
  [[nodiscard]] gates::Cascade witness_for_row(unsigned k,
                                               std::size_t row) const;

  /// Total number of distinct cascade-permutations reached (|A[k]|).
  /// Catalog-backed enumerators do not reload the seen-set (advance() is
  /// unavailable, so it would be dead weight) and answer from the stats.
  [[nodiscard]] std::size_t seen_count() const {
    if (read_only_) return stats_.empty() ? 1 : stats_.back().seen;
    return seen_.size();
  }

  /// Approximate heap usage of the stored sets.
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Bytes held in spill files (sealed seen-set runs and file-backed
  /// frontiers). 0 unless a spill budget is configured and was exceeded.
  [[nodiscard]] std::size_t disk_bytes() const;

  [[nodiscard]] const gates::GateLibrary& library() const { return *library_; }

 private:
  /// Tag selecting the catalog-reopen construction path: gate tables are
  /// built, but no level-0 seeding happens (state comes from the file).
  struct CatalogTag {};
  FmcfEnumerator(const gates::GateLibrary& library, ClosureConfig options,
                 CatalogTag tag);
  void init_gate_tables();

  [[nodiscard]] std::uint32_t banned_mask_of_row(const std::uint8_t* row) const;
  [[nodiscard]] GKey g_key_of_row(const std::uint8_t* row) const;
  [[nodiscard]] bool row_is_binary_preserving(const std::uint8_t* row) const;
  [[nodiscard]] std::uint32_t row_label(const std::uint8_t* row,
                                        std::size_t s) const {
    return FlatPermStore::read_label(row, s, label_bytes_);
  }

  const gates::GateLibrary* library_;  // outlives the enumerator
  ClosureConfig options_;
  std::size_t width_;          // domain size (38 for 3 wires, 782 for 5)
  std::size_t binary_count_;   // 2^n
  std::size_t label_bytes_;    // bytes per label in store rows (1 or 2)
  std::size_t stride_;         // bytes per row = width_ * label_bytes_
  std::size_t threads_;        // resolved worker count (>= 1)
  std::size_t shards_;         // resolved shard count (>= 1)
  std::size_t spill_budget_;   // resolved bytes per sharded store; 0 = never
  std::string spill_dir_;      // resolved spill directory
  std::unique_ptr<ThreadPool> pool_;  // created lazily by advance()
  // True while a witness back-walk owns the pool (ThreadPool::run is not
  // reentrant); contending const callers degrade to the serial scan.
  // Behind a unique_ptr so the enumerator stays movable.
  std::unique_ptr<std::atomic<bool>> backwalk_pool_busy_;
  std::vector<std::vector<std::uint16_t>> gate_tables_;      // [gate][label0]
  std::vector<std::vector<std::uint16_t>> gate_inv_tables_;  // [gate][label0]
  std::vector<std::uint32_t> gate_class_bits_;               // [gate]
  std::vector<std::uint32_t> label_banned_;                  // [label0]

  ShardedPermStore seen_;                // A[k], shard-sorted
  std::vector<FlatPermStore> frontiers_; // B[0..k]; emptied if !track_witnesses
  std::vector<FmcfLevelStats> stats_;

  std::vector<GKey> g_seen_keys_;                          // sorted
  std::unordered_map<GKey, GEntry, GKeyHash> g_index_;     // key -> entry

  bool read_only_ = false;  // catalog-backed: queries only, advance() throws
};

}  // namespace qsyn::synth
