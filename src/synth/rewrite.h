// qsyn/synth/rewrite.h
//
// Exact peephole simplification of gate cascades.
//
// Rewrites preserve the cascade's action on the *full* 4^n quaternary
// pattern space (every library gate and NOT is a bijection there), so they
// are valid in any context — including probabilistic circuits with mixed
// outputs. Rules:
//
//   R1  g * g^{-1}            -> (drop)     adjacent inverse pairs
//       (V_xy V+_xy, F_xy F_xy, N_x N_x)
//   R2  V_xy V_xy V_xy        -> V+_xy      (V has order 4; V^3 = V+ exactly,
//       V+_xy^3               -> V_xy        also as a don't-care function)
//   R3  canonical reordering of adjacent *commuting* gates (commutation
//       decided semantically on the full pattern space), which exposes more
//       R1/R2 matches across commuting blocks.
//
// simplify() iterates to a fixpoint; the result never has more gates and
// always has exactly the same full-domain permutation.
#pragma once

#include "gates/cascade.h"
#include "gates/gate.h"

namespace qsyn::synth {

/// True iff the two gates commute as functions on the full 4^n pattern
/// space of `wires` wires (the don't-care semantics included).
[[nodiscard]] bool gates_commute(const gates::Gate& a, const gates::Gate& b,
                                 std::size_t wires);

/// True iff the cascades compute the same function on the full 4^n pattern
/// space.
[[nodiscard]] bool same_full_semantics(const gates::Cascade& a,
                                       const gates::Cascade& b);

/// Fixpoint peephole simplification (rules R1-R3 above).
[[nodiscard]] gates::Cascade simplify(const gates::Cascade& cascade);

}  // namespace qsyn::synth
