#include "synth/storage_spec.h"

#include "common/error.h"
#include "common/io/mmap_file.h"

namespace qsyn::synth {

StorageSpec StorageSpec::in_memory() {
  return StorageSpec(Backend::kInMemory, std::string(), true);
}

StorageSpec StorageSpec::mmap_read_only(std::string path) {
  return StorageSpec(Backend::kMmapReadOnly, std::move(path), true);
}

StorageSpec StorageSpec::file_backed(std::string path, bool keep_file) {
  return StorageSpec(Backend::kFileWritable, std::move(path), keep_file);
}

std::shared_ptr<RowStorage> StorageSpec::make_storage() const {
  switch (backend_) {
    case Backend::kInMemory:
      return std::make_shared<VectorRowStorage>();
    case Backend::kMmapReadOnly: {
      const std::shared_ptr<const io::MmapFile> file = io::MmapFile::map(path_);
      const std::size_t bytes = file->size();
      return std::make_shared<MmapRowStorage>(file, 0, bytes);
    }
    case Backend::kFileWritable:
      return std::make_shared<FileRowStorage>(path_, keep_file_);
  }
  QSYN_CHECK(false, "unreachable: unknown StorageSpec backend");
}

FlatPermStore StorageSpec::make_store(std::size_t width) const {
  return FlatPermStore(width, make_storage());
}

}  // namespace qsyn::synth
