#include "synth/rewrite.h"

#include <vector>

#include "common/error.h"
#include "mvl/pattern.h"

namespace qsyn::synth {

namespace {

/// Applies a gate sequence to every full-domain pattern; returns the image
/// table indexed by pattern code.
std::vector<std::uint8_t> action_table(const std::vector<gates::Gate>& seq,
                                       std::size_t wires) {
  const std::uint32_t count = 1u << (2 * wires);
  std::vector<std::uint8_t> table(count);
  for (std::uint32_t code = 0; code < count; ++code) {
    mvl::Pattern p = mvl::Pattern::from_code(wires, code);
    for (const gates::Gate& g : seq) p = g.apply(p);
    table[code] = static_cast<std::uint8_t>(p.code());
  }
  return table;
}

/// True iff g1 then g2 equals g2 then g1 on the full pattern space.
bool commute_impl(const gates::Gate& a, const gates::Gate& b,
                  std::size_t wires) {
  const std::uint32_t count = 1u << (2 * wires);
  for (std::uint32_t code = 0; code < count; ++code) {
    const mvl::Pattern p = mvl::Pattern::from_code(wires, code);
    if (b.apply(a.apply(p)) != a.apply(b.apply(p))) return false;
  }
  return true;
}

/// True iff b undoes a on every full-domain pattern (adjacent cancellation).
bool inverse_pair(const gates::Gate& a, const gates::Gate& b,
                  std::size_t wires) {
  if (b != a.adjoint()) return false;
  const std::uint32_t count = 1u << (2 * wires);
  for (std::uint32_t code = 0; code < count; ++code) {
    const mvl::Pattern p = mvl::Pattern::from_code(wires, code);
    if (b.apply(a.apply(p)) != p) return false;
  }
  return true;
}

bool is_controlled(const gates::Gate& g) {
  return g.kind() == gates::GateKind::kCtrlV ||
         g.kind() == gates::GateKind::kCtrlVdag;
}

/// R1 with lookahead: cancels seq[i] against a later inverse seq[j] when
/// seq[i] commutes with everything in between (so the pair is adjacent in
/// some reordering). True if anything changed.
bool cancel_pass(std::vector<gates::Gate>& seq, std::size_t wires) {
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    for (std::size_t j = i + 1; j < seq.size(); ++j) {
      if (inverse_pair(seq[i], seq[j], wires)) {
        seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(j));
        seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
      if (!commute_impl(seq[i], seq[j], wires)) break;
    }
  }
  return false;
}

/// R2 with lookahead: merges three equal controlled-V (or V+) gates that are
/// mutually reachable through commuting gates into the single adjoint gate.
bool triple_pass(std::vector<gates::Gate>& seq, std::size_t wires) {
  for (std::size_t i = 0; i + 2 < seq.size(); ++i) {
    if (!is_controlled(seq[i])) continue;
    std::vector<std::size_t> occurrences = {i};
    for (std::size_t j = i + 1; j < seq.size(); ++j) {
      if (seq[j] == seq[i]) {
        occurrences.push_back(j);
        if (occurrences.size() == 3) break;
      } else if (!commute_impl(seq[i], seq[j], wires)) {
        break;
      }
    }
    if (occurrences.size() < 3) continue;
    const gates::Gate merged = seq[i].adjoint();
    // Erase back to front so earlier indices stay valid.
    seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(occurrences[2]));
    seq.erase(seq.begin() + static_cast<std::ptrdiff_t>(occurrences[1]));
    seq[i] = merged;
    return true;
  }
  return false;
}

/// R3: one bubble pass moving commuting adjacent gates into name order;
/// true if any swap happened.
bool sort_pass(std::vector<gates::Gate>& seq, std::size_t wires) {
  bool swapped = false;
  for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
    if (seq[i + 1].name() < seq[i].name() &&
        commute_impl(seq[i], seq[i + 1], wires)) {
      std::swap(seq[i], seq[i + 1]);
      swapped = true;
    }
  }
  return swapped;
}

}  // namespace

bool gates_commute(const gates::Gate& a, const gates::Gate& b,
                   std::size_t wires) {
  QSYN_CHECK(wires >= 1 && wires <= 8, "unsupported wire count");
  return commute_impl(a, b, wires);
}

bool same_full_semantics(const gates::Cascade& a, const gates::Cascade& b) {
  if (a.wires() != b.wires()) return false;
  return action_table(a.sequence(), a.wires()) ==
         action_table(b.sequence(), b.wires());
}

gates::Cascade simplify(const gates::Cascade& cascade) {
  const std::size_t wires = cascade.wires();
  std::vector<gates::Gate> seq = cascade.sequence();
  // Shrink (R1/R2, both with commuting lookahead) to a fixpoint, then
  // canonicalize the order (R3), then shrink once more in case the new
  // adjacencies compose (each shrink shortens the sequence, so this halts).
  while (cancel_pass(seq, wires) || triple_pass(seq, wires)) {
  }
  while (sort_pass(seq, wires)) {
  }
  while (cancel_pass(seq, wires) || triple_pass(seq, wires)) {
  }
  gates::Cascade out(wires);
  for (const gates::Gate& g : seq) out.append(g);
  QSYN_CHECK(same_full_semantics(cascade, out),
             "simplify produced a semantically different cascade");
  return out;
}

}  // namespace qsyn::synth
