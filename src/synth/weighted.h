// qsyn/synth/weighted.h
//
// Minimum-cost synthesis under arbitrary per-gate costs — the paper's remark
// that "all our methods can be easily modified to take into account the
// precise NMR costs from [4]" made executable.
//
// When gate costs are non-uniform (e.g. a CNOT needs fewer NMR pulses than a
// controlled-V) the minimal-cost circuit is no longer the minimal-gate-count
// circuit, so the level-by-level FMCF closure is replaced by a Dijkstra
// search. The search state is the *signature* of a cascade: the images of
// the 2^n binary input patterns under the multi-valued semantics, tracked
// over the full 4^n pattern space. This admits NOT gates as ordinary
// weighted moves (they are exact on all four values), generalizing
// Theorem 2's free-NOT coset trick to models where NOT has nonzero cost.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gates/cascade.h"
#include "gates/gate.h"
#include "gates/library.h"
#include "perm/permutation.h"
#include "synth/backend.h"

namespace qsyn::synth {

/// Result of a weighted synthesis.
struct WeightedResult {
  gates::Cascade circuit;
  unsigned cost = 0;  // total model cost, NOT gates included

  WeightedResult() : circuit(2) {}
};

/// Dijkstra-based exact synthesizer over a gate library + NOT gates with an
/// arbitrary cost model.
class WeightedSynthesizer {
 public:
  /// `max_states` bounds the explored signature set (throws
  /// qsyn::SynthesisError when exceeded); `include_not_gates` adds the n
  /// 1-qubit NOT gates as weighted moves.
  WeightedSynthesizer(const gates::GateLibrary& library,
                      gates::CostModel model, bool include_not_gates = true,
                      std::size_t max_states = 1u << 22);

  /// Minimal-cost realization of a reversible circuit (a permutation of
  /// {1..2^n} in binary-value order), or nullopt if unreachable within the
  /// state bound.
  [[nodiscard]] std::optional<WeightedResult> synthesize(
      const perm::Permutation& target) const;

  /// Minimal cost only (same search, no witness reconstruction).
  [[nodiscard]] std::optional<unsigned> minimal_cost(
      const perm::Permutation& target) const;

  /// Seeds every query with an upper bound from a (gate-count-exact) seam
  /// backend: the backend's witness cascade is priced under this model and
  /// Dijkstra then never expands a state costlier than that bound. Exact —
  /// an optimal path's every prefix costs at most the optimum — and it keeps
  /// the explored state set (and so the max_states throw) bounded on targets
  /// whose unpruned reach explodes. The backend must serve the same library
  /// (checked); must outlive the synthesizer; nullptr unplugs.
  void set_bound_backend(SynthesisBackend* backend);

 private:
  struct Move {
    gates::Gate gate;
    unsigned cost;
    std::uint32_t class_bit;  // 0 for NOT gates (always applicable)
    std::vector<std::uint8_t> table;  // action on the 4^n pattern codes
  };

  [[nodiscard]] std::optional<WeightedResult> run(
      const perm::Permutation& target, bool build_witness) const;

  const gates::GateLibrary* library_;
  gates::CostModel model_;
  std::size_t max_states_;
  std::size_t wires_;
  std::vector<Move> moves_;
  std::vector<std::uint32_t> code_banned_;  // banned mask per pattern code
  SynthesisBackend* bound_backend_ = nullptr;  // optional, non-owning
};

}  // namespace qsyn::synth
