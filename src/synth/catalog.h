// qsyn/synth/catalog.h
//
// The on-disk persistent synthesis catalog: format v1.
//
// A catalog is one completed FMCF closure, serialized so later processes can
// serve locate()/witness() queries without redoing the multi-second sweep —
// percy's serialize-then-synthesize shape (write the expensive enumeration
// once, replay it cheaply and concurrently; see SNIPPETS.md).
//
// Every multi-byte integer in the file is big-endian, matching the stores'
// big-endian label rows, so the file is bit-identical across hosts and the
// frontier sections can be memory-mapped directly as FlatPermStore backends.
// Layout:
//
//   header (kHeaderBytes, fixed):
//     [ 0]  magic      "QSYNCAT\0"
//     [ 8]  u32 version            (kVersion)
//     [12]  u32 endianness tag     (kEndianTag; guards against writers that
//                                   dump raw host-order structs)
//     [16]  u32 wires
//     [20]  u32 width              (domain size; 38 for 3 wires)
//     [24]  u32 binary_count       (2^wires)
//     [28]  u32 label_bytes        (1 or 2; derived from width, stored for
//                                   integrity checking)
//     [32]  u32 gate_count
//     [36]  u32 levels             (levels_done at save time)
//     [40]  u32 flags              (kFlagTrackWitnesses | kFlagUseBannedSets)
//     [44]  u64 domain fingerprint  (PatternDomain::fingerprint)
//     [52]  u64 library fingerprint (GateLibrary::fingerprint)
//     [60]  u64 g_count            (total G entries, identity included)
//
//   level stats: levels x kStatsEntryBytes
//     u32 cost, u64 frontier, u64 g_new, u64 pre_g, u64 seen,
//     u64 seconds (IEEE-754 double bits)
//
//   G index: g_count x kGEntryBytes, ascending by key
//     32-byte GKey (four u64 words, each big-endian), u32 cost,
//     u64 frontier row index (the witness metadata)
//
//   frontier sections: (levels + 1) sections, k = 0..levels
//     u64 row_count, then row_count x (width * label_bytes) raw row bytes —
//     exactly the FlatPermStore byte image, mapped read-only on reopen
//
// The file must end exactly after the last frontier section; trailing bytes
// are rejected. Readers throw qsyn::CatalogError for any malformed or
// incompatible input (truncation, bad magic/version/endian tag, fingerprint
// mismatch, unsorted G index, out-of-range witness rows) — never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qsyn::synth::catalog {

inline constexpr std::uint8_t kMagic[8] = {'Q', 'S', 'Y', 'N',
                                           'C', 'A', 'T', '\0'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304;

inline constexpr std::uint32_t kFlagTrackWitnesses = 1u << 0;
inline constexpr std::uint32_t kFlagUseBannedSets = 1u << 1;

// Header field offsets (bytes from the start of the file). Exposed so the
// corruption regression tests can flip exactly the field they target.
inline constexpr std::size_t kMagicOffset = 0;
inline constexpr std::size_t kVersionOffset = 8;
inline constexpr std::size_t kEndianOffset = 12;
inline constexpr std::size_t kWiresOffset = 16;
inline constexpr std::size_t kWidthOffset = 20;
inline constexpr std::size_t kBinaryCountOffset = 24;
inline constexpr std::size_t kLabelBytesOffset = 28;
inline constexpr std::size_t kGateCountOffset = 32;
inline constexpr std::size_t kLevelsOffset = 36;
inline constexpr std::size_t kFlagsOffset = 40;
inline constexpr std::size_t kDomainFingerprintOffset = 44;
inline constexpr std::size_t kLibraryFingerprintOffset = 52;
inline constexpr std::size_t kGCountOffset = 60;
inline constexpr std::size_t kHeaderBytes = 68;

inline constexpr std::size_t kStatsEntryBytes = 4 + 5 * 8;
inline constexpr std::size_t kGEntryBytes = 32 + 4 + 8;

// --- big-endian encode/decode helpers -------------------------------------

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

[[nodiscard]] inline std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 |
         static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

[[nodiscard]] inline std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) << 32 | get_u32(p + 4);
}

}  // namespace qsyn::synth::catalog
