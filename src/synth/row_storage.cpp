#include "synth/row_storage.h"

#include "common/error.h"

namespace qsyn::synth {

RowStorage::~RowStorage() = default;

std::vector<std::uint8_t>* RowStorage::mutable_bytes() { return nullptr; }

std::size_t RowStorage::disk_bytes() const { return 0; }

bool RowStorage::writable() const {
  // const_cast is safe: mutable_bytes() only *locates* the vector.
  return const_cast<RowStorage*>(this)->mutable_bytes() != nullptr;
}

void RowStorage::append_bytes(const std::uint8_t* bytes, std::size_t n) {
  std::vector<std::uint8_t>* vec = mutable_bytes();
  QSYN_CHECK(vec != nullptr,
             "row storage backend is read-only: append rejected");
  vec->insert(vec->end(), bytes, bytes + n);
}

void RowStorage::replace_bytes(std::vector<std::uint8_t> bytes) {
  std::vector<std::uint8_t>* vec = mutable_bytes();
  QSYN_CHECK(vec != nullptr,
             "row storage backend is read-only: replace rejected");
  *vec = std::move(bytes);
}

MmapRowStorage::MmapRowStorage(std::shared_ptr<const io::MmapFile> file,
                               std::size_t offset, std::size_t bytes)
    : file_(std::move(file)), data_(nullptr), bytes_(bytes) {
  QSYN_CHECK(file_ != nullptr, "MmapRowStorage requires a mapped file");
  QSYN_CHECK(offset <= file_->size() && bytes <= file_->size() - offset,
             "MmapRowStorage window exceeds the mapped file");
  data_ = bytes_ > 0 ? file_->data() + offset : nullptr;
}

FileRowStorage::FileRowStorage(const std::string& path, bool keep_file)
    : file_(path, /*unlink_on_destroy=*/!keep_file) {}

void FileRowStorage::append_bytes(const std::uint8_t* bytes, std::size_t n) {
  QSYN_CHECK(!file_.sealed(),
             "FileRowStorage is sealed (read-only): append rejected");
  file_.append(bytes, n);
}

void FileRowStorage::replace_bytes(std::vector<std::uint8_t> bytes) {
  QSYN_CHECK(!file_.sealed(),
             "FileRowStorage is sealed (read-only): replace rejected");
  file_.resize(0);
  file_.append(bytes.data(), bytes.size());
}

}  // namespace qsyn::synth
