#include "synth/row_storage.h"

#include "common/error.h"

namespace qsyn::synth {

RowStorage::~RowStorage() = default;

std::vector<std::uint8_t>* RowStorage::mutable_bytes() { return nullptr; }

MmapRowStorage::MmapRowStorage(std::shared_ptr<const io::MmapFile> file,
                               std::size_t offset, std::size_t bytes)
    : file_(std::move(file)), data_(nullptr), bytes_(bytes) {
  QSYN_CHECK(file_ != nullptr, "MmapRowStorage requires a mapped file");
  QSYN_CHECK(offset <= file_->size() && bytes <= file_->size() - offset,
             "MmapRowStorage window exceeds the mapped file");
  data_ = bytes_ > 0 ? file_->data() + offset : nullptr;
}

}  // namespace qsyn::synth
