#include "synth/spill.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/error.h"
#include "synth/catalog.h"
#include "synth/row_storage.h"

namespace qsyn::synth {

namespace {

[[noreturn]] void malformed(const std::string& path, const std::string& what) {
  throw CatalogError("invalid sealed run '" + path + "': " + what);
}

}  // namespace

std::shared_ptr<const SealedRun> SealedRun::write(const std::string& path,
                                                  const FlatPermStore& rows,
                                                  bool keep_file) {
  QSYN_CHECK(!rows.empty(), "SealedRun::write: refusing to seal an empty run");
  const std::size_t stride = rows.row_stride();
  const std::size_t count = rows.size();

  // The shared prefix of a sorted range is the longest common prefix of its
  // first and last row — every row in between sorts inside that bracket.
  const std::uint8_t* first = rows.row(0);
  const std::uint8_t* last = rows.row(count - 1);
  std::size_t prefix = 0;
  while (prefix < stride && first[prefix] == last[prefix]) ++prefix;

  std::vector<std::uint8_t> header;
  header.reserve(spill::kRunHeaderBytes + prefix);
  header.insert(header.end(), spill::kRunMagic, spill::kRunMagic + 8);
  catalog::put_u32(header, spill::kRunVersion);
  catalog::put_u32(header, static_cast<std::uint32_t>(rows.width()));
  catalog::put_u32(header, static_cast<std::uint32_t>(rows.label_bytes()));
  catalog::put_u32(header, static_cast<std::uint32_t>(prefix));
  catalog::put_u64(header, count);
  header.insert(header.end(), first, first + prefix);

  {
    // Written through the growable-mmap backend so the bytes never take a
    // round trip through a second heap buffer; seal() msync+fsyncs them.
    FileRowStorage out(path, /*keep_file=*/true);
    out.append_bytes(header.data(), header.size());
    const std::size_t suffix = stride - prefix;
    if (suffix > 0) {
      for (std::size_t i = 0; i < count; ++i) {
        out.append_bytes(rows.row(i) + prefix, suffix);
      }
    }
    out.seal();
  }

  return open_internal(path, rows.width(), keep_file);
}

std::shared_ptr<const SealedRun> SealedRun::open(const std::string& path,
                                                 std::size_t width) {
  return open_internal(path, width, /*keep_file=*/true);
}

std::shared_ptr<const SealedRun> SealedRun::open_internal(
    const std::string& path, std::size_t width, bool keep_file) {
  std::shared_ptr<const io::MmapFile> file = io::MmapFile::map(path);
  return std::shared_ptr<const SealedRun>(
      new SealedRun(std::move(file), width, keep_file));
}

SealedRun::SealedRun(std::shared_ptr<const io::MmapFile> file,
                     std::size_t width, bool keep_file)
    : file_(std::move(file)), keep_file_(keep_file) {
  const std::string& path = file_->path();
  const std::uint8_t* bytes = file_->data();
  const std::size_t total = file_->size();

  if (total < spill::kRunHeaderBytes) {
    malformed(path, "truncated sealed run: " + std::to_string(total) +
                        " bytes, header needs " +
                        std::to_string(spill::kRunHeaderBytes));
  }
  if (std::memcmp(bytes, spill::kRunMagic, 8) != 0) {
    malformed(path, "bad magic (not a qsyn sealed run)");
  }
  const std::uint32_t version = catalog::get_u32(bytes + 8);
  if (version != spill::kRunVersion) {
    malformed(path, "unsupported run version " + std::to_string(version) +
                        " (expected " + std::to_string(spill::kRunVersion) +
                        ")");
  }
  width_ = catalog::get_u32(bytes + 12);
  if (width_ != width) {
    malformed(path, "run built for width " + std::to_string(width_) +
                        ", store expects width " + std::to_string(width));
  }
  const std::size_t expect_label_bytes = width_ <= 256 ? 1 : 2;
  const std::uint32_t label_bytes = catalog::get_u32(bytes + 16);
  if (label_bytes != expect_label_bytes) {
    malformed(path, "label_bytes " + std::to_string(label_bytes) +
                        " does not match width " + std::to_string(width_));
  }
  stride_ = width_ * expect_label_bytes;
  prefix_bytes_ = catalog::get_u32(bytes + 20);
  if (prefix_bytes_ > stride_) {
    malformed(path, "prefix_bytes " + std::to_string(prefix_bytes_) +
                        " exceeds row stride " + std::to_string(stride_));
  }
  rows_ = catalog::get_u64(bytes + 24);
  suffix_stride_ = stride_ - prefix_bytes_;

  const std::size_t expected =
      spill::kRunHeaderBytes + prefix_bytes_ + rows_ * suffix_stride_;
  if (total < expected) {
    malformed(path, "truncated sealed run: " + std::to_string(total) +
                        " bytes, layout needs " + std::to_string(expected));
  }
  if (total > expected) {
    malformed(path, std::to_string(total - expected) +
                        " trailing bytes after the last row");
  }

  prefix_ = bytes + spill::kRunHeaderBytes;
  suffix_base_ = prefix_ + prefix_bytes_;
}

SealedRun::~SealedRun() {
  if (!keep_file_) {
    const std::string path = file_->path();
    file_.reset();  // drop the mapping before unlinking
    std::remove(path.c_str());
  }
}

bool SealedRun::contains_sorted(const std::uint8_t* row_bytes) const {
  std::size_t lo = 0;
  std::size_t hi = rows_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int c = compare(row_bytes, mid);
    if (c == 0) return true;
    if (c < 0) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return false;
}

void SealedRun::subtract_from(FlatPermStore& store) const {
  QSYN_CHECK(store.row_stride() == stride_,
             "SealedRun::subtract_from: row stride mismatch");
  if (store.empty() || rows_ == 0) return;

  const std::uint8_t* data = store.data();
  const std::size_t n = store.size();
  std::vector<std::uint8_t> kept;
  kept.reserve(store.size_bytes());

  std::size_t i = 0;  // store cursor
  std::size_t j = 0;  // run cursor
  while (i < n) {
    if (j == rows_) {
      kept.insert(kept.end(), data + i * stride_, data + n * stride_);
      break;
    }
    const int c = compare(data + i * stride_, j);
    if (c < 0) {
      kept.insert(kept.end(), data + i * stride_, data + (i + 1) * stride_);
      ++i;
    } else if (c > 0) {
      ++j;
    } else {
      ++i;  // present in the run: drop
      ++j;
    }
  }
  store.assign_rows(std::move(kept));
}

}  // namespace qsyn::synth
