// qsyn/synth/spill.h
//
// Sealed spill runs — the on-disk unit of the out-of-core closure frontier.
//
// When a ShardedPermStore's heap budget trips, a shard seals its sorted
// in-memory rows into one run file and releases the heap. A run is a sorted,
// duplicate-free row set in the FlatPermStore byte encoding, with one
// storage-level twist: every row in a run shares a common leading byte
// prefix (runs are sealed per shard, and a shard owns one narrow monotone
// range of leading-label-pair values, so sorted rows agree on their first
// bytes by construction). The run stores that prefix once and each row as
// its suffix — at n = 5 the leading-pair prefix alone saves 2–4 bytes of
// 1564 per row, and deeper shared prefixes compress further for free.
//
// Because rows are fixed-width with big-endian labels, memcmp order equals
// label order, so the streaming set algebra over runs (subtract, k-way
// merge in ShardedPermStore::drain_sorted) compares raw bytes — prefix
// first, suffix second — and never decodes a label.
//
// File layout (all integers big-endian, like synth/catalog.h):
//
//   [ 0] magic "QSYNRUN\0"
//   [ 8] u32 version          (kRunVersion)
//   [12] u32 width            (labels per row)
//   [16] u32 label_bytes      (1 or 2; derived from width, stored for
//                              integrity checking)
//   [20] u32 prefix_bytes     (P, shared leading bytes; P <= row stride)
//   [24] u64 rows
//   [32] prefix bytes [P], then rows x (stride - P) row suffixes
//
// The file must end exactly after the last suffix. Error taxonomy: a
// missing/unreadable file throws qsyn::IoError (from io::MmapFile); any
// malformed or mismatched content — bad magic, unsupported version, shape
// mismatch, truncation, trailing bytes — throws qsyn::CatalogError with a
// distinguishing message, mirroring the persistent catalog's hardening.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>

#include "common/io/mmap_file.h"
#include "common/simd/kernels.h"
#include "synth/flat_perm_store.h"

namespace qsyn::synth {

namespace spill {
inline constexpr std::uint8_t kRunMagic[8] = {'Q', 'S', 'Y', 'N',
                                              'R', 'U', 'N', '\0'};
inline constexpr std::uint32_t kRunVersion = 1;
inline constexpr std::size_t kRunHeaderBytes = 32;
}  // namespace spill

/// One immutable, mmap'd, prefix-compressed sorted run on disk.
class SealedRun {
 public:
  /// Writes `rows` (sorted, duplicate-free, non-empty) prefix-compressed to
  /// `path` through a FileRowStorage (growable mmap, fsync on seal), then
  /// reopens it read-only. With `keep_file` false the file is removed when
  /// the run object dies — the spill engine's temporary policy. Throws
  /// qsyn::IoError when the path cannot be created (e.g. missing spill dir).
  [[nodiscard]] static std::shared_ptr<const SealedRun> write(
      const std::string& path, const FlatPermStore& rows,
      bool keep_file = false);

  /// Opens and validates an existing run file of the given row width.
  /// Throws qsyn::IoError when unreadable, qsyn::CatalogError when
  /// malformed.
  [[nodiscard]] static std::shared_ptr<const SealedRun> open(
      const std::string& path, std::size_t width);

  SealedRun(const SealedRun&) = delete;
  SealedRun& operator=(const SealedRun&) = delete;
  ~SealedRun();

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t row_stride() const { return stride_; }
  [[nodiscard]] std::size_t prefix_bytes() const { return prefix_bytes_; }
  [[nodiscard]] std::size_t disk_bytes() const { return file_->size(); }
  [[nodiscard]] const std::string& path() const { return file_->path(); }

  /// memcmp-order comparison of a full row (stride bytes) against run row
  /// `i` — prefix bytes first, suffix second, no label decode, no copy.
  /// Routed through the dispatched simd row compare so streaming merges use
  /// the same engine as the in-memory sweeps.
  [[nodiscard]] int compare(const std::uint8_t* row_bytes,
                            std::size_t i) const {
    const int c = prefix_bytes_ == 0
                      ? 0
                      : simd::compare_rows(row_bytes, prefix_, prefix_bytes_);
    if (c != 0) return c;
    return suffix_stride_ == 0
               ? 0
               : simd::compare_rows(row_bytes + prefix_bytes_,
                                    suffix_base_ + i * suffix_stride_,
                                    suffix_stride_);
  }

  /// Reconstructs run row `i` into `out` (stride bytes).
  void materialize(std::size_t i, std::uint8_t* out) const {
    std::memcpy(out, prefix_, prefix_bytes_);
    std::memcpy(out + prefix_bytes_, suffix_base_ + i * suffix_stride_,
                suffix_stride_);
  }

  /// Binary search for a full row.
  [[nodiscard]] bool contains_sorted(const std::uint8_t* row_bytes) const;

  /// Streaming set difference: removes from `store` (sorted, writable)
  /// every row present in this run.
  void subtract_from(FlatPermStore& store) const;

 private:
  SealedRun(std::shared_ptr<const io::MmapFile> file, std::size_t width,
            bool keep_file);

  [[nodiscard]] static std::shared_ptr<const SealedRun> open_internal(
      const std::string& path, std::size_t width, bool keep_file);

  std::shared_ptr<const io::MmapFile> file_;
  const std::uint8_t* prefix_ = nullptr;
  const std::uint8_t* suffix_base_ = nullptr;
  std::size_t width_ = 0;
  std::size_t stride_ = 0;
  std::size_t prefix_bytes_ = 0;
  std::size_t suffix_stride_ = 0;
  std::size_t rows_ = 0;
  bool keep_file_ = true;
};

}  // namespace qsyn::synth
