// qsyn/synth/catalog_server.h
//
// Concurrent serving front end over one FMCF closure — typically a catalog
// reopened read-only from disk (synth/catalog.h), where every G-set table is
// an mmap'd window and queries touch pages on demand.
//
// The split from McExpressor: the expressor *builds* (it deepens the closure
// on a miss), the server *answers*. A server never mutates its enumerator, so
// single locate()/synthesize() calls are lock-free reads of immutable tables
// and may run from any number of threads; the batch entry points fan a whole
// query vector out over the server's own worker pool. The only shared
// mutable state is the witness cache (reconstructed cascades are the one
// non-trivial per-query cost), a bounded map behind a reader/writer lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gates/gate.h"
#include "perm/permutation.h"
#include "synth/fmcf.h"
#include "synth/mce.h"

namespace qsyn {
class ThreadPool;
}

namespace qsyn::synth {

struct CatalogServerOptions {
  /// Worker threads for the batch entry points (0 = QSYN_THREADS /
  /// hardware_concurrency, like ClosureConfig::threads). Single queries
  /// never touch the pool.
  std::size_t threads = 0;

  /// Maximum cached witness cascades (0 disables caching). The cache stops
  /// admitting new entries at capacity — catalog query mixes are heavily
  /// skewed toward a few popular targets, so keep-first is a good fit and
  /// needs no eviction bookkeeping on the hot path.
  std::size_t witness_cache_capacity = std::size_t(1) << 16;
};

/// A locate() answer: where the target's core lives in the catalog.
struct CatalogAnswer {
  unsigned cost = 0;               // minimal library-gate count of the core
  std::size_t frontier_index = 0;  // witness row in B[cost]
  std::vector<gates::Gate> not_prefix;  // Theorem 2's cost-0 NOT layer
};

/// A weighted locate() answer: the cheapest stored realization under an
/// arbitrary cost model.
struct WeightedCatalogAnswer {
  gates::Cascade circuit;     // NOT prefix + core cascade
  unsigned model_cost = 0;    // total cost under the query's model
  std::size_t gate_count = 0;  // library gates in the core

  WeightedCatalogAnswer() : circuit(2) {}
};

/// Read-only concurrent query server over a (usually catalog-backed) FMCF
/// closure.
class CatalogServer {
 public:
  /// Takes ownership of the enumerator. Works for both catalog-backed and
  /// freshly computed closures; either way the closure is served as-is and
  /// never deepened.
  explicit CatalogServer(FmcfEnumerator enumerator,
                         CatalogServerOptions options = {});
  ~CatalogServer();

  /// Convenience: FmcfEnumerator::open_catalog + construction.
  [[nodiscard]] static CatalogServer open(const std::string& path,
                                          const gates::GateLibrary& library,
                                          CatalogServerOptions options = {});

  [[nodiscard]] const FmcfEnumerator& enumerator() const { return fmcf_; }

  /// Minimal cost + witness location of `target` (a permutation of {1..2^n}
  /// in binary-value order), or nullopt when the target's core is beyond the
  /// stored levels. Lock-free; safe from any thread.
  [[nodiscard]] std::optional<CatalogAnswer> locate(
      const perm::Permutation& target) const;

  /// Full minimal realization (witness back-walk, cached). Thread-safe.
  [[nodiscard]] std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target) const;

  /// The cheapest stored realization of `target` under `model`, searching
  /// every implementation row of the core's minimal level — and, when
  /// `scan_deeper_levels` is set, every deeper stored level too (a deeper
  /// cascade can be cheaper under non-uniform costs, e.g. more CNOTs and
  /// fewer controlled-V). nullopt when the core is beyond the stored levels.
  [[nodiscard]] std::optional<WeightedCatalogAnswer> locate_weighted(
      const perm::Permutation& target, const gates::CostModel& model,
      bool scan_deeper_levels = false) const;

  /// Batched variants: one answer per target, in order, fanned out over the
  /// server's worker pool. Batches from different threads serialize on the
  /// pool (single-query calls keep running concurrently alongside).
  [[nodiscard]] std::vector<std::optional<CatalogAnswer>> locate_batch(
      const std::vector<perm::Permutation>& targets) const;
  [[nodiscard]] std::vector<std::optional<SynthesisResult>> synthesize_batch(
      const std::vector<perm::Permutation>& targets) const;

  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  [[nodiscard]] gates::Cascade cached_witness(unsigned cost,
                                              std::size_t row) const;
  template <typename Answer, typename Fn>
  [[nodiscard]] std::vector<Answer> run_batch(
      const std::vector<perm::Permutation>& targets, const Fn& fn) const;

  FmcfEnumerator fmcf_;
  CatalogServerOptions options_;
  std::size_t wires_;

  // The server owns its pool: the enumerator's lazily created sweep pool is
  // never touched (ThreadPool::run is not reentrant, and a catalog-backed
  // enumerator keeps no pool at all, so its witness back-walks stay serial
  // and safely concurrent). Created lazily by the first batch call.
  mutable std::mutex batch_mutex_;
  mutable std::unique_ptr<ThreadPool> pool_;

  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::uint64_t, gates::Cascade> witness_cache_;
  mutable std::atomic<std::size_t> cache_hits_{0};
  mutable std::atomic<std::size_t> cache_misses_{0};
};

}  // namespace qsyn::synth
