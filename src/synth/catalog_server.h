// qsyn/synth/catalog_server.h
//
// Concurrent serving front end over one FMCF closure — typically a catalog
// reopened read-only from disk (synth/catalog.h), where every G-set table is
// an mmap'd window and queries touch pages on demand.
//
// The split from McExpressor: the expressor *builds* (it deepens the closure
// on a miss), the server *answers*. A server never mutates its enumerator, so
// single locate()/synthesize() calls are lock-free reads of immutable tables
// and may run from any number of threads; the batch entry points fan a whole
// query vector out over the server's own worker pool. The only shared
// mutable state is the witness cache (reconstructed cascades are the one
// non-trivial per-query cost), a bounded map behind a reader/writer lock.
//
// Serving is backend-agnostic at the edges: as_backend() adapts the server
// onto the SynthesisBackend seam, and set_fallback() plugs any other backend
// (typically a TopologySearchBackend) in behind the catalog — targets beyond
// the stored levels are then answered by the fallback instead of a miss.
// Fallback calls serialize on a mutex (backends deepen and keep per-query
// state); catalog hits never touch it, so the lock-free hit path is intact.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "gates/gate.h"
#include "perm/permutation.h"
#include "synth/backend.h"
#include "synth/fmcf.h"
#include "synth/mce.h"

namespace qsyn {
class ThreadPool;
}

namespace qsyn::synth {

struct CatalogServerOptions {
  /// Worker threads for the batch entry points (0 = QSYN_THREADS /
  /// hardware_concurrency, like ClosureConfig::threads). Single queries
  /// never touch the pool.
  std::size_t threads = 0;

  /// Maximum cached witness cascades (0 disables caching). The cache stops
  /// admitting new entries at capacity — catalog query mixes are heavily
  /// skewed toward a few popular targets, so keep-first is a good fit and
  /// needs no eviction bookkeeping on the hot path.
  std::size_t witness_cache_capacity = std::size_t(1) << 16;
};

/// A locate() answer: where the target's core lives in the catalog.
struct CatalogAnswer {
  unsigned cost = 0;               // minimal library-gate count of the core
  std::size_t frontier_index = 0;  // witness row in B[cost]
  std::vector<gates::Gate> not_prefix;  // Theorem 2's cost-0 NOT layer
};

/// Why a weighted scan returned the answer it did — i.e. how strong the
/// "cheapest" claim is. Anything but kExhausted means a cheaper realization
/// could exist outside what was scanned.
enum class WeightedScanStop : std::uint8_t {
  /// Only the core's minimal level was scanned (scan_deeper_levels off);
  /// deeper stored levels might hold a cheaper cascade under this model.
  kMinimalLevelOnly,
  /// Every stored level was scanned, but the closure was cut off by its
  /// enumeration budget (cb) before saturating — cascades beyond the stored
  /// depth exist and were never enumerated.
  kStoredDepthLimit,
  /// Every stored level was scanned and the closure is saturated: no deeper
  /// reasonable cascade exists, the answer is the global optimum.
  kExhausted,
  /// The core was beyond the stored levels; the answer is the fallback
  /// backend's single witness, not a scan over stored implementations.
  kFallbackBackend,
};

/// A weighted locate() answer: the cheapest stored realization under an
/// arbitrary cost model.
struct WeightedCatalogAnswer {
  gates::Cascade circuit;     // NOT prefix + core cascade
  unsigned model_cost = 0;    // total cost under the query's model
  std::size_t gate_count = 0;  // library gates in the core
  /// Why the scan stopped where it did (see WeightedScanStop).
  WeightedScanStop stopped = WeightedScanStop::kMinimalLevelOnly;

  WeightedCatalogAnswer() : circuit(2) {}
};

/// Read-only concurrent query server over a (usually catalog-backed) FMCF
/// closure.
class CatalogServer {
 public:
  /// Takes ownership of the enumerator. Works for both catalog-backed and
  /// freshly computed closures; either way the closure is served as-is and
  /// never deepened.
  explicit CatalogServer(FmcfEnumerator enumerator,
                         CatalogServerOptions options = {});
  ~CatalogServer();

  /// Convenience: FmcfEnumerator::open_catalog + construction.
  [[nodiscard]] static CatalogServer open(const std::string& path,
                                          const gates::GateLibrary& library,
                                          CatalogServerOptions options = {});

  [[nodiscard]] const FmcfEnumerator& enumerator() const { return fmcf_; }

  /// Plugs a backend in behind the catalog: synthesize() and
  /// locate_weighted() answer catalog misses through it instead of returning
  /// nullopt (locate() stays catalog-only — its answer is a storage
  /// location). The backend must serve the same library (enforced via the
  /// seam fingerprints; throws qsyn::LogicError). Fallback queries serialize
  /// on an internal mutex; pass nullptr to unplug.
  void set_fallback(std::shared_ptr<SynthesisBackend> fallback);
  [[nodiscard]] bool has_fallback() const;

  /// Adapts this server onto the SynthesisBackend seam (name: "catalog").
  /// The adapter serves stored answers — plus the fallback, when one is set
  /// — and never deepens the closure. It references the server: the server
  /// must outlive it.
  [[nodiscard]] std::unique_ptr<SynthesisBackend> as_backend();

  /// Minimal cost + witness location of `target` (a permutation of {1..2^n}
  /// in binary-value order), or nullopt when the target's core is beyond the
  /// stored levels. Never consults the fallback (the answer is a catalog
  /// location). Lock-free; safe from any thread.
  [[nodiscard]] std::optional<CatalogAnswer> locate(
      const perm::Permutation& target) const;

  /// Full minimal realization (witness back-walk, cached). On a catalog miss
  /// the fallback backend answers when one is set. Thread-safe; the
  /// catalog-hit path is lock-free.
  [[nodiscard]] std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target) const;

  /// The cheapest stored realization of `target` under `model`, searching
  /// every implementation row of the core's minimal level — and, when
  /// `scan_deeper_levels` is set, every deeper stored level too (a deeper
  /// cascade can be cheaper under non-uniform costs, e.g. more CNOTs and
  /// fewer controlled-V). The answer's `stopped` field says how far the scan
  /// actually got (minimal level only / stored-depth budget / exhausted
  /// saturated closure), i.e. whether "cheapest stored" is "cheapest
  /// possible". When the core is beyond the stored levels the fallback
  /// backend answers if set (stopped = kFallbackBackend), else nullopt.
  [[nodiscard]] std::optional<WeightedCatalogAnswer> locate_weighted(
      const perm::Permutation& target, const gates::CostModel& model,
      bool scan_deeper_levels = false) const;

  /// Batched variants: one answer per target, in order, fanned out over the
  /// server's worker pool. Batches from different threads serialize on the
  /// pool (single-query calls keep running concurrently alongside).
  [[nodiscard]] std::vector<std::optional<CatalogAnswer>> locate_batch(
      const std::vector<perm::Permutation>& targets) const;
  [[nodiscard]] std::vector<std::optional<SynthesisResult>> synthesize_batch(
      const std::vector<perm::Permutation>& targets) const;

  /// One consistent snapshot of the witness cache (taken under the cache
  /// lock): hits + misses equals the lookups completed at the instant of the
  /// snapshot, and entries is the map size at that same instant.
  struct CacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

 private:
  friend class CatalogBackend;

  [[nodiscard]] gates::Cascade cached_witness(unsigned cost,
                                              std::size_t row) const;
  template <typename Answer, typename Fn>
  [[nodiscard]] std::vector<Answer> run_batch(
      const std::vector<perm::Permutation>& targets, const Fn& fn) const;
  /// Serialized fallback call; nullopt when no fallback is set or it misses.
  [[nodiscard]] std::optional<SynthesisResult> fallback_synthesize(
      const perm::Permutation& target) const;

  FmcfEnumerator fmcf_;
  CatalogServerOptions options_;
  std::size_t wires_;

  // Miss-path backend (set_fallback). Mutable + mutex: backends are stateful
  // (a search backend accumulates stats, a closure backend may deepen), so
  // const serving entry points serialize their fallback calls here.
  mutable std::mutex fallback_mutex_;
  std::shared_ptr<SynthesisBackend> fallback_;

  // The server owns its pool: the enumerator's lazily created sweep pool is
  // never touched (ThreadPool::run is not reentrant, and a catalog-backed
  // enumerator keeps no pool at all, so its witness back-walks stay serial
  // and safely concurrent). Created lazily by the first batch call.
  mutable std::mutex batch_mutex_;
  mutable std::unique_ptr<ThreadPool> pool_;

  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::uint64_t, gates::Cascade> witness_cache_;
  mutable std::atomic<std::size_t> cache_hits_{0};
  mutable std::atomic<std::size_t> cache_misses_{0};
};

}  // namespace qsyn::synth
