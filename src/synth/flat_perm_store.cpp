#include "synth/flat_perm_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "common/error.h"

namespace qsyn::synth {

FlatPermStore::FlatPermStore(std::size_t width)
    : width_(width),
      label_bytes_(width <= 256 ? 1 : 2),
      stride_(width * label_bytes_) {
  QSYN_CHECK(width >= 1 && width <= 65536, "unsupported permutation width");
}

const std::uint8_t* FlatPermStore::row(std::size_t i) const {
  QSYN_CHECK(i < size(), "FlatPermStore row out of range");
  return bytes_.data() + i * stride_;
}

void FlatPermStore::push_back(const std::uint8_t* row_bytes) {
  bytes_.insert(bytes_.end(), row_bytes, row_bytes + stride_);
}

void FlatPermStore::push_back(const perm::Permutation& p) {
  QSYN_CHECK(p.degree() == width_, "permutation degree mismatch");
  push_back(encode_row(p).data());
}

std::vector<std::uint8_t> FlatPermStore::encode_row(
    const perm::Permutation& p) const {
  QSYN_CHECK(p.degree() == width_, "permutation degree mismatch");
  std::vector<std::uint8_t> row(stride_);
  for (std::size_t s = 0; s < width_; ++s) {
    write_label(row.data(), s, label_bytes_,
                p.apply(static_cast<std::uint32_t>(s + 1)) - 1);
  }
  return row;
}

perm::Permutation FlatPermStore::permutation(std::size_t i) const {
  const std::uint8_t* r = row(i);
  std::vector<std::uint32_t> images(width_);
  for (std::size_t s = 0; s < width_; ++s) {
    images[s] = read_label(r, s, label_bytes_) + 1u;
  }
  return perm::Permutation::from_images(std::move(images));
}

void FlatPermStore::sort_unique() {
  const std::size_t n = size();
  if (n <= 1) return;
  // Indirect sort: order row indices, then gather into a fresh buffer.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const std::uint8_t* base = bytes_.data();
  const std::size_t w = stride_;
  std::sort(order.begin(), order.end(),
            [base, w](std::uint32_t a, std::uint32_t b) {
              return std::memcmp(base + std::size_t(a) * w,
                                 base + std::size_t(b) * w, w) < 0;
            });
  std::vector<std::uint8_t> sorted;
  sorted.reserve(bytes_.size());
  const std::uint8_t* prev = nullptr;
  for (const std::uint32_t idx : order) {
    const std::uint8_t* r = base + std::size_t(idx) * w;
    if (prev != nullptr && std::memcmp(prev, r, w) == 0) continue;
    sorted.insert(sorted.end(), r, r + w);
    prev = sorted.data() + sorted.size() - w;
  }
  bytes_ = std::move(sorted);
}

void FlatPermStore::subtract_sorted(const FlatPermStore& other) {
  QSYN_CHECK(width_ == other.width_, "width mismatch");
  if (empty() || other.empty()) return;
  std::vector<std::uint8_t> kept;
  kept.reserve(bytes_.size());
  const std::size_t w = stride_;
  std::size_t i = 0;
  std::size_t j = 0;
  const std::size_t n = size();
  const std::size_t m = other.size();
  while (i < n) {
    if (j == m) {
      kept.insert(kept.end(), bytes_.begin() + i * w, bytes_.end());
      break;
    }
    const int cmp = std::memcmp(row(i), other.row(j), w);
    if (cmp < 0) {
      kept.insert(kept.end(), row(i), row(i) + w);
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++i;  // drop: present in other
    }
  }
  bytes_ = std::move(kept);
}

void FlatPermStore::merge_sorted(const FlatPermStore& other) {
  QSYN_CHECK(width_ == other.width_, "width mismatch");
  if (other.empty()) return;
  std::vector<std::uint8_t> merged;
  merged.reserve(bytes_.size() + other.bytes_.size());
  const std::size_t w = stride_;
  std::size_t i = 0;
  std::size_t j = 0;
  const std::size_t n = size();
  const std::size_t m = other.size();
  while (i < n && j < m) {
    const int cmp = std::memcmp(row(i), other.row(j), w);
    if (cmp <= 0) {
      merged.insert(merged.end(), row(i), row(i) + w);
      if (cmp == 0) ++j;  // keep duplicates once
      ++i;
    } else {
      merged.insert(merged.end(), other.row(j), other.row(j) + w);
      ++j;
    }
  }
  if (i < n) merged.insert(merged.end(), bytes_.begin() + i * w, bytes_.end());
  if (j < m) {
    merged.insert(merged.end(), other.bytes_.begin() + j * w,
                  other.bytes_.end());
  }
  bytes_ = std::move(merged);
}

bool FlatPermStore::contains_sorted(const std::uint8_t* row_bytes) const {
  const std::size_t w = stride_;
  std::size_t lo = 0;
  std::size_t hi = size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int cmp = std::memcmp(row(mid), row_bytes, w);
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

void FlatPermStore::append(const FlatPermStore& other) {
  QSYN_CHECK(width_ == other.width_, "width mismatch");
  bytes_.insert(bytes_.end(), other.bytes_.begin(), other.bytes_.end());
}

void FlatPermStore::clear() {
  bytes_.clear();
  bytes_.shrink_to_fit();
}

}  // namespace qsyn::synth
