#include "synth/flat_perm_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/simd/kernels.h"

namespace qsyn::synth {

FlatPermStore::FlatPermStore(std::size_t width)
    : FlatPermStore(width, /*label_range=*/width) {}

FlatPermStore::FlatPermStore(std::size_t width, std::size_t label_range)
    : width_(width),
      label_bytes_(label_range <= 256 ? 1 : 2),
      stride_(width * label_bytes_),
      storage_(std::make_shared<VectorRowStorage>()) {
  QSYN_CHECK(width >= 1 && width <= 65536, "unsupported permutation width");
  QSYN_CHECK(label_range >= width && label_range <= 65536,
             "label range must cover the row width");
  vec_ = storage_->mutable_bytes();
  sync_view();
}

FlatPermStore::FlatPermStore(std::size_t width,
                             std::shared_ptr<RowStorage> storage)
    : width_(width),
      label_bytes_(width <= 256 ? 1 : 2),
      stride_(width * label_bytes_),
      storage_(std::move(storage)) {
  QSYN_CHECK(width >= 1 && width <= 65536, "unsupported permutation width");
  QSYN_CHECK(storage_ != nullptr, "FlatPermStore requires a storage backend");
  QSYN_CHECK(storage_->size_bytes() % stride_ == 0,
             "storage backend holds a fractional row");
  vec_ = storage_->mutable_bytes();
  sync_view();
}

FlatPermStore::FlatPermStore(const FlatPermStore& other)
    : width_(other.width_),
      label_bytes_(other.label_bytes_),
      stride_(other.stride_),
      storage_(std::make_shared<VectorRowStorage>(std::vector<std::uint8_t>(
          other.view_data_, other.view_data_ + other.view_bytes_))) {
  vec_ = storage_->mutable_bytes();
  sync_view();
}

FlatPermStore& FlatPermStore::operator=(const FlatPermStore& other) {
  if (this == &other) return *this;
  width_ = other.width_;
  label_bytes_ = other.label_bytes_;
  stride_ = other.stride_;
  storage_ = std::make_shared<VectorRowStorage>(std::vector<std::uint8_t>(
      other.view_data_, other.view_data_ + other.view_bytes_));
  vec_ = storage_->mutable_bytes();
  sync_view();
  return *this;
}

FlatPermStore::FlatPermStore(FlatPermStore&& other) noexcept
    : width_(other.width_),
      label_bytes_(other.label_bytes_),
      stride_(other.stride_),
      storage_(std::move(other.storage_)),
      vec_(other.vec_),
      view_data_(other.view_data_),
      view_bytes_(other.view_bytes_) {
  other.vec_ = nullptr;
  other.view_data_ = nullptr;
  other.view_bytes_ = 0;
}

FlatPermStore& FlatPermStore::operator=(FlatPermStore&& other) noexcept {
  if (this == &other) return *this;
  width_ = other.width_;
  label_bytes_ = other.label_bytes_;
  stride_ = other.stride_;
  storage_ = std::move(other.storage_);
  vec_ = other.vec_;
  view_data_ = other.view_data_;
  view_bytes_ = other.view_bytes_;
  other.vec_ = nullptr;
  other.view_data_ = nullptr;
  other.view_bytes_ = 0;
  return *this;
}

FlatPermStore::~FlatPermStore() = default;

void FlatPermStore::sync_view() {
  if (vec_ != nullptr) {
    view_data_ = vec_->data();
    view_bytes_ = vec_->size();
  } else if (storage_ != nullptr) {
    view_data_ = storage_->data();
    view_bytes_ = storage_->size_bytes();
  } else {
    view_data_ = nullptr;
    view_bytes_ = 0;
  }
}

void FlatPermStore::ensure_writable() const {
  QSYN_CHECK(!read_only(),
             "FlatPermStore is read-only (catalog-backed, sealed spill file, "
             "or moved-from)");
}

void FlatPermStore::commit_bytes(std::vector<std::uint8_t> bytes) {
  if (vec_ != nullptr) {
    *vec_ = std::move(bytes);
  } else {
    ensure_writable();
    storage_->replace_bytes(std::move(bytes));
  }
  sync_view();
}

const std::uint8_t* FlatPermStore::row(std::size_t i) const {
  QSYN_CHECK(i < size(), "FlatPermStore row out of range");
  return view_data_ + i * stride_;
}

void FlatPermStore::push_back(const std::uint8_t* row_bytes) {
  if (vec_ != nullptr) {
    vec_->insert(vec_->end(), row_bytes, row_bytes + stride_);
  } else {
    ensure_writable();
    storage_->append_bytes(row_bytes, stride_);
  }
  sync_view();
}

void FlatPermStore::push_back(const perm::Permutation& p) {
  QSYN_CHECK(p.degree() == width_, "permutation degree mismatch");
  push_back(encode_row(p).data());
}

std::vector<std::uint8_t> FlatPermStore::encode_row(
    const perm::Permutation& p) const {
  QSYN_CHECK(p.degree() == width_, "permutation degree mismatch");
  std::vector<std::uint8_t> row(stride_);
  for (std::size_t s = 0; s < width_; ++s) {
    write_label(row.data(), s, label_bytes_,
                p.apply(static_cast<std::uint32_t>(s + 1)) - 1);
  }
  return row;
}

perm::Permutation FlatPermStore::permutation(std::size_t i) const {
  const std::uint8_t* r = row(i);
  std::vector<std::uint32_t> images(width_);
  for (std::size_t s = 0; s < width_; ++s) {
    images[s] = read_label(r, s, label_bytes_) + 1u;
  }
  return perm::Permutation::from_images(std::move(images));
}

void FlatPermStore::sort_unique() {
  ensure_writable();
  const std::size_t n = size();
  if (n <= 1) return;
  // Dispatched kernel: LSD radix over the big-endian rows on vector
  // engines, the historical indirect std::sort on scalar. Both produce the
  // canonical sorted-unique byte sequence.
  std::vector<std::uint8_t> sorted;
  simd::sort_unique_rows(view_data_, n, stride_, sorted);
  commit_bytes(std::move(sorted));
}

void FlatPermStore::subtract_sorted(const FlatPermStore& other) {
  QSYN_CHECK(width_ == other.width_, "width mismatch");
  ensure_writable();
  if (empty() || other.empty()) return;
  std::vector<std::uint8_t> kept;
  simd::subtract_sorted_rows(view_data_, size(), other.view_data_,
                             other.size(), stride_, kept);
  commit_bytes(std::move(kept));
}

void FlatPermStore::merge_sorted(const FlatPermStore& other) {
  QSYN_CHECK(width_ == other.width_, "width mismatch");
  ensure_writable();
  if (other.empty()) return;
  std::vector<std::uint8_t> merged;
  simd::merge_sorted_rows(view_data_, size(), other.view_data_, other.size(),
                          stride_, merged);
  commit_bytes(std::move(merged));
}

bool FlatPermStore::contains_sorted(const std::uint8_t* row_bytes) const {
  const std::size_t w = stride_;
  std::size_t lo = 0;
  std::size_t hi = size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const int cmp = simd::compare_rows(row(mid), row_bytes, w);
    if (cmp == 0) return true;
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

void FlatPermStore::append(const FlatPermStore& other) {
  QSYN_CHECK(width_ == other.width_, "width mismatch");
  if (vec_ != nullptr) {
    vec_->insert(vec_->end(), other.view_data_,
                 other.view_data_ + other.view_bytes_);
  } else {
    ensure_writable();
    storage_->append_bytes(other.view_data_, other.view_bytes_);
  }
  sync_view();
}

void FlatPermStore::assign_rows(std::vector<std::uint8_t> bytes) {
  QSYN_CHECK(bytes.size() % stride_ == 0,
             "assign_rows requires a whole number of rows");
  ensure_writable();
  commit_bytes(std::move(bytes));
}

void FlatPermStore::clear_keep_capacity() {
  if (vec_ != nullptr) {
    vec_->clear();
    sync_view();
    return;
  }
  if (storage_ != nullptr && storage_->writable()) {
    storage_->replace_bytes({});
    sync_view();
    return;
  }
  clear();
}

void FlatPermStore::clear() {
  storage_ = std::make_shared<VectorRowStorage>();
  vec_ = storage_->mutable_bytes();
  sync_view();
}

std::size_t FlatPermStore::memory_bytes() const {
  return storage_ != nullptr ? storage_->memory_bytes() : 0;
}

std::size_t FlatPermStore::disk_bytes() const {
  return storage_ != nullptr ? storage_->disk_bytes() : 0;
}

void FlatPermStore::reserve_rows(std::size_t rows) {
  ensure_writable();
  if (vec_ != nullptr) vec_->reserve(rows * stride_);
  // Non-vector writable backends (spill files) grow geometrically on their
  // own; reserving is a no-op there.
  sync_view();
}

}  // namespace qsyn::synth
