// qsyn/synth/search/topology_search.h
//
// TopologySearchBackend — topology-guided exact synthesis by DFS over gate
// cascades, the complementary attack to the FMCF breadth-first closure (in
// the spirit of percy's fence enumeration: walk circuit topologies and test
// whether the target fits, instead of materializing every reachable
// function).
//
// The engine runs iterative deepening on quantum cost: iteration t exhausts
// every reasonable cascade of exactly t library gates, so the first hit is a
// minimal realization and a completed miss at t proves cost > t — the same
// exactness contract as the closure, without storing the levels. Search
// state is the image table of the 2^n binary labels under the cascade prefix
// (the only part of the full domain permutation the banned sets and the
// target test consult), so a node costs O(2^n) and the whole search for a
// 5-wire cost-4 target fits in a few dozen MiB of memo where the in-memory
// closure would need a 2.5 GiB level store.
//
// Pruning (all exactness-preserving):
//   * banned classes (NQubitDomain): a gate whose banned set meets the
//     prefix's binary images is skipped — the paper's "reasonable product";
//   * canonical order: no gate directly follows its adjoint (the pair
//     cancels, so no *minimal* cascade contains it), and of two adjacent
//     commuting gates only the ascending-index order is explored when the
//     swapped order is itself reasonable (the swap reaches the same state at
//     the same depth in an earlier-visited branch);
//   * transposition memo: states revisited at the same or greater depth are
//     pruned (VisitedSet over a budgeted FlatPermStore arena).
//
// Theorem 2's NOT coset is handled exactly as in the closure path: targets
// are stripped to a core fixing the all-zero pattern via strip_not_prefix,
// and only cores are searched. synthesize_batch shares one deepening sweep
// across every pending target — matching a leaf against a hash set of open
// targets costs O(1), so differential sweeps over thousands of targets pay
// for the tree walk once.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "gates/library.h"
#include "perm/permutation.h"
#include "synth/backend.h"
#include "synth/search/visited_set.h"

namespace qsyn::synth {

/// Knobs of the DFS engine.
struct SearchConfig {
  /// Iterative-deepening ceiling (the paper's cb): targets with minimal
  /// cost beyond this return nullopt.
  unsigned max_cost = 7;

  /// Byte budget of the transposition memo (0 = unlimited). A full memo
  /// keeps the search exact but stops deduplicating revisits.
  std::size_t visited_budget_bytes = std::size_t(64) << 20;

  /// Honor the banned sets. Turning this off is an *ablation only*, exactly
  /// as on the closure: the search then walks unphysical cascades.
  bool use_banned_sets = true;

  /// Canonical-order pruning: skip a gate directly following its adjoint.
  bool prune_adjoint_pairs = true;

  /// Canonical-order pruning: of two adjacent commuting gates explore only
  /// the ascending-index order (when the swapped order is also reasonable).
  bool prune_commuting_pairs = true;
};

/// Cumulative search counters (across every query on one backend).
struct SearchStats {
  std::size_t nodes = 0;             // interior nodes expanded
  std::size_t leaves = 0;            // depth-limit states tested
  std::size_t pruned_banned = 0;     // children skipped by banned classes
  std::size_t pruned_adjoint = 0;    // children skipped as canceling pairs
  std::size_t pruned_commuting = 0;  // children skipped by canonical order
  std::size_t pruned_visited = 0;    // subtrees skipped by the memo
  std::size_t peak_memo_rows = 0;    // largest memo across iterations
  unsigned deepest_iteration = 0;    // deepest deepening iteration entered
};

/// DFS-with-pruning exact synthesis backend. Supports the same wire range as
/// the closure (2..5: leaf keys pack 2^n domain labels into 512 bits).
class TopologySearchBackend final : public SynthesisBackend {
 public:
  explicit TopologySearchBackend(const gates::GateLibrary& library,
                                 SearchConfig config = {});

  [[nodiscard]] const gates::GateLibrary& library() const override {
    return *library_;
  }
  [[nodiscard]] unsigned max_cost() const override { return config_.max_cost; }
  [[nodiscard]] BackendInfo info() const override;
  [[nodiscard]] std::optional<BackendAnswer> locate(
      const perm::Permutation& target) override;
  [[nodiscard]] std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target) override;

  /// One deepening sweep answers the whole batch: iteration t runs once and
  /// every still-open target is matched against its leaves.
  [[nodiscard]] std::vector<std::optional<SynthesisResult>> synthesize_batch(
      const std::vector<perm::Permutation>& targets) override;

  [[nodiscard]] const SearchConfig& config() const { return config_; }
  [[nodiscard]] const SearchStats& stats() const { return stats_; }

 private:
  /// A search state's identity: the encoded image row of the binary labels,
  /// zero-padded into eight words (32 labels x 2 bytes at the 5-wire max).
  using StateKey = std::array<std::uint64_t, 8>;
  struct StateKeyHash {
    std::size_t operator()(const StateKey& key) const;
  };

  struct Run;  // per-sweep scratch (stack, memo, pending targets)

  [[nodiscard]] std::uint32_t banned_of(const std::uint16_t* state) const;
  void encode_state(const std::uint16_t* state, std::uint8_t* out) const;
  [[nodiscard]] StateKey key_of(const std::uint8_t* encoded) const;
  /// Returns true once every pending target is resolved (early unwind).
  bool dfs(Run& run, unsigned depth, std::size_t last_gate);

  const gates::GateLibrary* library_;  // outlives the backend
  SearchConfig config_;
  SearchStats stats_;
  std::size_t wires_;
  std::size_t width_;         // domain size
  std::size_t binary_count_;  // 2^n
  std::size_t label_bytes_;   // memo/key row encoding (1 or 2)

  std::vector<std::vector<std::uint16_t>> gate_tables_;  // [gate][label0]
  std::vector<std::uint32_t> gate_class_bits_;           // [gate]
  std::vector<std::size_t> gate_adjoint_;                // [gate]
  std::vector<std::uint8_t> gate_commutes_;  // [a * |L| + b] (symmetric)
  std::vector<std::uint32_t> label_banned_;  // [label0]
};

}  // namespace qsyn::synth
