#include "synth/search/topology_search.h"

#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/error.h"

namespace qsyn::synth {

std::size_t TopologySearchBackend::StateKeyHash::operator()(
    const StateKey& key) const {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (const std::uint64_t word : key) {
    std::uint64_t x = word + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h = x ^ (x >> 31);
  }
  return static_cast<std::size_t>(h);
}

/// Per-sweep scratch. The state stack holds limit+1 image tables in one
/// buffer; banned masks and chosen gates are kept per depth so the commuting
/// canonical-order check can consult the parent without recomputing.
struct TopologySearchBackend::Run {
  unsigned limit = 0;
  std::vector<std::uint16_t> states;   // (limit + 1) x binary_count
  std::vector<std::uint32_t> banned;   // per depth
  std::vector<std::size_t> path;       // gate chosen at each depth
  std::vector<std::uint8_t> encoded;   // one encoded row (scratch)
  std::vector<std::uint16_t> swapped;  // commuting-check scratch state
  VisitedSet memo;
  // Open targets: encoded core state -> slots in the batch. Resolved slots
  // record their witness path in `found` and leave the map.
  std::unordered_map<StateKey, std::vector<std::size_t>, StateKeyHash> pending;
  std::vector<std::vector<std::size_t>>* found = nullptr;  // per batch slot

  Run(std::size_t binary_count, std::size_t label_range,
      std::size_t memo_budget)
      : memo(binary_count, label_range, memo_budget) {}
};

TopologySearchBackend::TopologySearchBackend(const gates::GateLibrary& library,
                                             SearchConfig config)
    : library_(&library),
      config_(config),
      wires_(library.domain().wires()),
      width_(library.domain().size()),
      binary_count_(library.domain().binary_count()),
      label_bytes_(width_ <= 256 ? 1 : 2) {
  QSYN_CHECK(wires_ <= 5,
             "topology search supports up to 5 wires (leaf keys pack 2^n "
             "domain labels into 512 bits)");
  const mvl::PatternDomain& domain = library.domain();
  const std::size_t gates = library.size();

  gate_tables_.resize(gates);
  gate_class_bits_.resize(gates);
  gate_adjoint_.resize(gates);
  for (std::size_t g = 0; g < gates; ++g) {
    const perm::Permutation& p = library.permutation(g);
    auto& table = gate_tables_[g];
    table.resize(width_);
    for (std::size_t l = 0; l < width_; ++l) {
      table[l] = static_cast<std::uint16_t>(
          p.apply(static_cast<std::uint32_t>(l) + 1) - 1);
    }
    gate_class_bits_[g] = 1u << library.banned_class_of(g);
    gate_adjoint_[g] = library.adjoint_index(g);
  }
  gate_commutes_.assign(gates * gates, 0);
  for (std::size_t a = 0; a < gates; ++a) {
    for (std::size_t b = 0; b <= a; ++b) {
      const std::uint8_t c = library.commutes(a, b) ? 1 : 0;
      gate_commutes_[a * gates + b] = c;
      gate_commutes_[b * gates + a] = c;
    }
  }
  label_banned_.resize(width_);
  for (std::size_t l = 0; l < width_; ++l) {
    label_banned_[l] = domain.banned_mask(static_cast<std::uint32_t>(l) + 1);
  }
}

BackendInfo TopologySearchBackend::info() const {
  BackendInfo info;
  info.name = "topology-search";
  info.exact = true;
  info.deepens_on_miss = true;  // every query searches; misses cost the most
  info.enumerates_implementations = false;
  info.max_cost = config_.max_cost;
  info.library_fingerprint = library_->fingerprint();
  info.domain_fingerprint = library_->domain().fingerprint();
  return info;
}

std::uint32_t TopologySearchBackend::banned_of(
    const std::uint16_t* state) const {
  std::uint32_t banned = 0;
  for (std::size_t s = 0; s < binary_count_; ++s) {
    banned |= label_banned_[state[s]];
  }
  return banned;
}

void TopologySearchBackend::encode_state(const std::uint16_t* state,
                                         std::uint8_t* out) const {
  for (std::size_t s = 0; s < binary_count_; ++s) {
    FlatPermStore::write_label(out, s, label_bytes_, state[s]);
  }
}

TopologySearchBackend::StateKey TopologySearchBackend::key_of(
    const std::uint8_t* encoded) const {
  StateKey key{};
  std::memcpy(key.data(), encoded, binary_count_ * label_bytes_);
  return key;
}

bool TopologySearchBackend::dfs(Run& run, unsigned depth,
                                std::size_t last_gate) {
  const std::size_t gates = gate_tables_.size();
  const std::uint16_t* state = run.states.data() + depth * binary_count_;
  const std::uint32_t banned = run.banned[depth];
  ++stats_.nodes;
  for (std::size_t g = 0; g < gates; ++g) {
    if (config_.use_banned_sets && (banned & gate_class_bits_[g]) != 0) {
      ++stats_.pruned_banned;
      continue;
    }
    if (depth > 0) {
      if (config_.prune_adjoint_pairs && g == gate_adjoint_[last_gate]) {
        ++stats_.pruned_adjoint;  // the pair cancels: never minimal
        continue;
      }
      if (config_.prune_commuting_pairs && g < last_gate &&
          gate_commutes_[g * gates + last_gate] != 0) {
        // Keep only the ascending order of the commuting pair — but only
        // when the swap is itself a reasonable product, else this order is
        // the lone representative. The swapped prefix needs g admissible at
        // the parent and last_gate admissible after it.
        const std::uint32_t parent_banned = run.banned[depth - 1];
        if (!config_.use_banned_sets ||
            (parent_banned & gate_class_bits_[g]) == 0) {
          const std::uint16_t* parent =
              run.states.data() + (depth - 1) * binary_count_;
          const auto& table = gate_tables_[g];
          for (std::size_t s = 0; s < binary_count_; ++s) {
            run.swapped[s] = table[parent[s]];
          }
          if (!config_.use_banned_sets ||
              (banned_of(run.swapped.data()) & gate_class_bits_[last_gate]) ==
                  0) {
            ++stats_.pruned_commuting;
            continue;
          }
        }
      }
    }
    std::uint16_t* next = run.states.data() + (depth + 1) * binary_count_;
    const auto& table = gate_tables_[g];
    for (std::size_t s = 0; s < binary_count_; ++s) {
      next[s] = table[state[s]];
    }
    if (depth + 1 == run.limit) {
      ++stats_.leaves;
      encode_state(next, run.encoded.data());
      const auto hit = run.pending.find(key_of(run.encoded.data()));
      if (hit != run.pending.end()) {
        run.path[depth] = g;
        for (const std::size_t slot : hit->second) {
          (*run.found)[slot].assign(run.path.begin(),
                                    run.path.begin() + run.limit);
        }
        run.pending.erase(hit);
        if (run.pending.empty()) return true;
      }
      continue;
    }
    run.banned[depth + 1] = banned_of(next);
    encode_state(next, run.encoded.data());
    if (!run.memo.admit(run.encoded.data(), depth + 1)) {
      ++stats_.pruned_visited;
      continue;
    }
    run.path[depth] = g;
    if (dfs(run, depth + 1, g)) return true;
  }
  return false;
}

std::vector<std::optional<SynthesisResult>>
TopologySearchBackend::synthesize_batch(
    const std::vector<perm::Permutation>& targets) {
  std::vector<std::optional<SynthesisResult>> answers(targets.size());
  std::vector<NotStripped> stripped(targets.size());

  Run run(binary_count_, width_, config_.visited_budget_bytes);
  std::vector<std::vector<std::size_t>> found(targets.size());
  run.found = &found;
  run.encoded.resize(binary_count_ * label_bytes_);
  run.swapped.resize(binary_count_);

  for (std::size_t i = 0; i < targets.size(); ++i) {
    stripped[i] = strip_not_prefix(wires_, targets[i]);
    if (stripped[i].core.is_identity()) {
      answers[i] = assemble_result(wires_, stripped[i], gates::Cascade(wires_));
      continue;
    }
    // Key the core by its 0-based image row over the binary labels — the
    // exact state a matching leaf carries.
    std::vector<std::uint16_t> goal(binary_count_);
    for (std::size_t s = 0; s < binary_count_; ++s) {
      goal[s] = static_cast<std::uint16_t>(
          stripped[i].core.apply(static_cast<std::uint32_t>(s) + 1) - 1);
    }
    encode_state(goal.data(), run.encoded.data());
    run.pending[key_of(run.encoded.data())].push_back(i);
  }

  for (unsigned limit = 1;
       limit <= config_.max_cost && !run.pending.empty(); ++limit) {
    run.limit = limit;
    run.states.assign(static_cast<std::size_t>(limit + 1) * binary_count_, 0);
    run.banned.assign(limit + 1, 0);
    run.path.assign(limit, 0);
    for (std::size_t s = 0; s < binary_count_; ++s) {
      run.states[s] = static_cast<std::uint16_t>(s);
    }
    run.banned[0] = banned_of(run.states.data());
    run.memo.clear();
    encode_state(run.states.data(), run.encoded.data());
    (void)run.memo.admit(run.encoded.data(), 0);  // identity prefixes recur
    if (limit > stats_.deepest_iteration) stats_.deepest_iteration = limit;
    (void)dfs(run, 0, 0);
    if (run.memo.rows() > stats_.peak_memo_rows) {
      stats_.peak_memo_rows = run.memo.rows();
    }
    // Assemble every target resolved in this iteration: its witness path is
    // a minimal cascade (all shallower iterations completed without a hit).
    for (std::size_t i = 0; i < targets.size(); ++i) {
      if (answers[i].has_value() || found[i].empty()) continue;
      gates::Cascade core(wires_);
      for (const std::size_t g : found[i]) core.append(library_->gate(g));
      answers[i] = assemble_result(wires_, stripped[i], std::move(core));
    }
  }
  return answers;
}

std::optional<SynthesisResult> TopologySearchBackend::synthesize(
    const perm::Permutation& target) {
  return synthesize_batch({target}).front();
}

std::optional<BackendAnswer> TopologySearchBackend::locate(
    const perm::Permutation& target) {
  const auto result = synthesize(target);
  if (!result.has_value()) return std::nullopt;
  BackendAnswer answer;
  answer.cost = result->cost;
  answer.not_prefix = result->not_prefix;
  return answer;
}

}  // namespace qsyn::synth
