#include "synth/search/visited_set.h"

#include <cstring>

#include "common/error.h"

namespace qsyn::synth {

namespace {
constexpr std::size_t kInitialSlots = 1u << 10;  // power of two
}  // namespace

VisitedSet::VisitedSet(std::size_t width, std::size_t label_range,
                       std::size_t budget_bytes)
    : store_(width, label_range),
      slots_(kInitialSlots, 0),
      slot_mask_(kInitialSlots - 1),
      budget_bytes_(budget_bytes) {}

std::uint64_t VisitedSet::hash_row(const std::uint8_t* row) const {
  // splitmix64 over the row bytes, eight at a time (same mixing the
  // closure's G-keys use).
  const std::size_t stride = store_.row_stride();
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  std::size_t offset = 0;
  while (offset < stride) {
    std::uint64_t word = 0;
    const std::size_t chunk = stride - offset < 8 ? stride - offset : 8;
    std::memcpy(&word, row + offset, chunk);
    offset += chunk;
    std::uint64_t x = word + h;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h = x ^ (x >> 31);
  }
  return h;
}

bool VisitedSet::admit(const std::uint8_t* row, unsigned depth) {
  QSYN_CHECK(depth <= 0xff, "search depth exceeds the memo's depth field");
  const std::size_t stride = store_.row_stride();
  std::size_t i = static_cast<std::size_t>(hash_row(row)) & slot_mask_;
  while (true) {
    const std::uint32_t slot = slots_[i];
    if (slot == 0) {
      if (budget_bytes_ != 0 && store_.size_bytes() + stride > budget_bytes_) {
        saturated_ = true;  // explore, but stop recording
        return true;
      }
      store_.push_back(row);
      depths_.push_back(static_cast<std::uint8_t>(depth));
      slots_[i] = static_cast<std::uint32_t>(store_.size());
      if (store_.size() * 10 >= slots_.size() * 7) grow_index();
      return true;
    }
    if (std::memcmp(store_.row(slot - 1), row, stride) == 0) {
      if (depth < depths_[slot - 1]) {
        depths_[slot - 1] = static_cast<std::uint8_t>(depth);
        return true;  // strictly more remaining budget: re-explore
      }
      return false;
    }
    i = (i + 1) & slot_mask_;
  }
}

void VisitedSet::grow_index() {
  const std::size_t new_size = slots_.size() * 2;
  slots_.assign(new_size, 0);
  slot_mask_ = new_size - 1;
  for (std::size_t r = 0; r < store_.size(); ++r) {
    std::size_t i = static_cast<std::size_t>(hash_row(store_.row(r))) &
                    slot_mask_;
    while (slots_[i] != 0) i = (i + 1) & slot_mask_;
    slots_[i] = static_cast<std::uint32_t>(r + 1);
  }
}

void VisitedSet::clear() {
  store_.clear_keep_capacity();
  depths_.clear();
  std::memset(slots_.data(), 0, slots_.size() * sizeof(std::uint32_t));
  saturated_ = false;
}

std::size_t VisitedSet::memory_bytes() const {
  return store_.memory_bytes() + depths_.capacity() +
         slots_.capacity() * sizeof(std::uint32_t);
}

}  // namespace qsyn::synth
