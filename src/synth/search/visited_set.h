// qsyn/synth/search/visited_set.h
//
// VisitedSet — the topology search's transposition memo.
//
// The DFS engine's search state is the image table of the 2^n binary labels
// under the cascade prefix built so far; two prefixes reaching the same
// image table at the same depth have identical subtrees, so re-exploring the
// second is pure waste. The memo records each state with the shallowest
// depth it was reached at; a revisit at the same or a greater depth is
// pruned, a revisit at a strictly smaller depth re-explores (more remaining
// budget) and lowers the recorded depth.
//
// Rows live in a FlatPermStore (the closure's flat row arena, here with the
// label-byte width taken from the domain size rather than the row width),
// with an open-addressing index of row slots on top. The arena is bounded by
// a byte budget: once full, new states are still explored but no longer
// recorded — the search stays exact, it just stops deduplicating, which is
// the same stance the closure takes when its spill budget trips except that
// here nothing needs to hit disk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "synth/flat_perm_store.h"

namespace qsyn::synth {

/// Depth-tagged set of search states over a bounded FlatPermStore arena.
class VisitedSet {
 public:
  /// `width` = labels per state row (2^n), `label_range` = domain size the
  /// labels are drawn from (sets the row encoding), `budget_bytes` bounds
  /// the arena (0 = unlimited).
  VisitedSet(std::size_t width, std::size_t label_range,
             std::size_t budget_bytes);

  /// True when the caller should explore this state: it is unseen (recorded,
  /// budget permitting) or was previously seen only at a strictly greater
  /// depth (the record is lowered in place). False = prune.
  [[nodiscard]] bool admit(const std::uint8_t* row, unsigned depth);

  /// Forgets every state but keeps the allocations (the search clears the
  /// memo between deepening iterations: depths are iteration-relative).
  void clear();

  [[nodiscard]] std::size_t rows() const { return store_.size(); }
  [[nodiscard]] std::size_t row_stride() const { return store_.row_stride(); }
  [[nodiscard]] std::size_t memory_bytes() const;

  /// True once the byte budget refused at least one insert.
  [[nodiscard]] bool saturated() const { return saturated_; }

 private:
  [[nodiscard]] std::uint64_t hash_row(const std::uint8_t* row) const;
  void grow_index();

  FlatPermStore store_;               // one row per recorded state
  std::vector<std::uint8_t> depths_;  // shallowest depth per row
  std::vector<std::uint32_t> slots_;  // open addressing: row index + 1
  std::size_t slot_mask_ = 0;
  std::size_t budget_bytes_;
  bool saturated_ = false;
};

}  // namespace qsyn::synth
