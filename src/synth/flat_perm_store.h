// qsyn/synth/flat_perm_store.h
//
// Flat, cache-friendly storage for millions of small permutations.
//
// The FMCF breadth-first closure (Section 3 of the paper) manipulates sets of
// permutations on the 38-label domain. At the paper's bound cb = 7 there are
// ~690k reachable permutations and the frontier grows ~4.5x per level, so the
// enumerator stores each permutation as `width` contiguous bytes (0-based
// images) inside one large buffer, and implements set algebra
// (sort / unique / difference / merge) over that buffer. This keeps the
// per-element overhead at zero and makes the sweeps sequential.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "perm/permutation.h"

namespace qsyn::synth {

/// A dynamically sized array of fixed-width byte rows, each row one
/// permutation image table (0-based). Rows compare lexicographically.
class FlatPermStore {
 public:
  /// `width` = permutation degree (bytes per row); images must fit a byte.
  explicit FlatPermStore(std::size_t width);

  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] std::size_t size() const { return bytes_.size() / width_; }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }

  /// Pointer to row `i` (width() bytes).
  [[nodiscard]] const std::uint8_t* row(std::size_t i) const;

  /// Appends a row (must be width() bytes of 0-based images).
  void push_back(const std::uint8_t* row_bytes);

  /// Appends a Permutation (degree must equal width()).
  void push_back(const perm::Permutation& p);

  /// Row i as a Permutation.
  [[nodiscard]] perm::Permutation permutation(std::size_t i) const;

  /// Sorts rows lexicographically and removes duplicates.
  void sort_unique();

  /// Requires both stores sorted: removes from *this* every row present in
  /// `other` (set difference, in place).
  void subtract_sorted(const FlatPermStore& other);

  /// Requires both stores sorted: merges `other` into *this*, keeping the
  /// result sorted. Duplicate rows across the two stores are kept once
  /// (inputs are assumed disjoint when that matters; see subtract_sorted).
  void merge_sorted(const FlatPermStore& other);

  /// Binary search in a sorted store.
  [[nodiscard]] bool contains_sorted(const std::uint8_t* row_bytes) const;

  /// Encodes `p` as a degree-wide label row (the store's row format).
  [[nodiscard]] static std::vector<std::uint8_t> encode_row(
      const perm::Permutation& p);

  /// Appends every row of `other` as-is (no ordering requirements).
  void append(const FlatPermStore& other);

  /// Removes all rows but keeps the allocation (hot-loop buffer reuse).
  void clear_keep_capacity() { bytes_.clear(); }

  /// Releases all memory.
  void clear();

  /// Bytes of heap memory currently held.
  [[nodiscard]] std::size_t memory_bytes() const { return bytes_.capacity(); }

  void reserve_rows(std::size_t rows) { bytes_.reserve(rows * width_); }

 private:
  std::size_t width_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace qsyn::synth
