// qsyn/synth/flat_perm_store.h
//
// Flat, cache-friendly storage for millions of small permutations.
//
// The FMCF breadth-first closure (Section 3 of the paper) manipulates sets of
// permutations on the reduced pattern domain (38 labels for 3 wires). At the
// paper's bound cb = 7 there are ~690k reachable permutations and the
// frontier grows ~4.5x per level, so the enumerator stores each permutation
// as one fixed-width row of 0-based images inside one large buffer, and
// implements set algebra (sort / unique / difference / merge) over that
// buffer. This keeps the per-element overhead at zero and makes the sweeps
// sequential.
//
// Label width scales with the domain: rows hold one byte per label for
// domains up to 256 labels (every domain through 4 wires) and two
// *big-endian* bytes per label beyond that (the 5-wire reduced domain has
// 782 labels). Big-endian packing keeps the raw-byte memcmp order of rows
// identical to the label-lexicographic order, so the entire set algebra —
// and the ShardedPermStore partition built on top — is label-width agnostic,
// and the raw bytes are a host-endianness-independent serialization format.
//
// Rows live behind a RowStorage backend (synth/row_storage.h; construct
// backends via synth::StorageSpec). The default VectorRowStorage reproduces
// the historical in-memory behavior byte for byte and keeps the set-algebra
// hot loops devirtualized. A store over a writable FileRowStorage keeps its
// rows in a growable mmap'd file (the spill path — mutations cross the
// virtual backend API, which the I/O-bound spill sweeps never notice), and a
// store over a read-only backend (the catalog's MmapRowStorage window, or a
// sealed FileRowStorage) serves every read operation zero-copy and throws
// qsyn::LogicError from every mutation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "perm/permutation.h"
#include "synth/row_storage.h"

namespace qsyn::synth {

/// A dynamically sized array of fixed-width rows, each row one permutation
/// image table (0-based). Rows compare lexicographically by label.
class FlatPermStore {
 public:
  /// `width` = permutation degree (labels per row), at most 65536. Backed by
  /// a fresh writable VectorRowStorage.
  explicit FlatPermStore(std::size_t width);

  /// Same, but rows hold `width` labels drawn from [0, label_range) rather
  /// than a permutation of [0, width): the label-byte width follows
  /// `label_range`. The topology-search backend stores its visited states —
  /// images of the 2^n binary labels under a cascade prefix, which range
  /// over the *whole* reduced domain — in such a store.
  FlatPermStore(std::size_t width, std::size_t label_range);

  /// Wraps an existing backend (shared: several stores may view disjoint
  /// windows of one mapped catalog). The backend must hold a whole number of
  /// rows. A non-writable backend yields a read-only store.
  FlatPermStore(std::size_t width, std::shared_ptr<RowStorage> storage);

  /// Copies deep-copy the rows into a fresh writable in-memory backend (a
  /// copy of a read-only store is therefore writable).
  FlatPermStore(const FlatPermStore& other);
  FlatPermStore& operator=(const FlatPermStore& other);
  FlatPermStore(FlatPermStore&& other) noexcept;
  FlatPermStore& operator=(FlatPermStore&& other) noexcept;
  ~FlatPermStore();

  [[nodiscard]] std::size_t width() const { return width_; }

  /// True when the backend rejects mutation (catalog-backed windows, sealed
  /// spill files, moved-from stores). Every mutating member below throws
  /// qsyn::LogicError on such a store.
  [[nodiscard]] bool read_only() const {
    return vec_ == nullptr && (storage_ == nullptr || !storage_->writable());
  }

  /// The storage backend (never null for a live store).
  [[nodiscard]] const std::shared_ptr<RowStorage>& storage() const {
    return storage_;
  }

  /// Bytes per label: 1 while labels fit a byte, else 2 (big-endian).
  [[nodiscard]] std::size_t label_bytes() const { return label_bytes_; }

  /// Bytes per row = width() * label_bytes().
  [[nodiscard]] std::size_t row_stride() const { return stride_; }

  [[nodiscard]] std::size_t size() const { return view_bytes_ / stride_; }
  [[nodiscard]] bool empty() const { return view_bytes_ == 0; }

  /// The contiguous row bytes (the store's serialization: rows in order,
  /// labels big-endian). Valid until the next mutation.
  [[nodiscard]] const std::uint8_t* data() const { return view_data_; }
  [[nodiscard]] std::size_t size_bytes() const { return view_bytes_; }

  /// Pointer to row `i` (row_stride() bytes).
  [[nodiscard]] const std::uint8_t* row(std::size_t i) const;

  /// Label `s` of row `i`, decoded.
  [[nodiscard]] std::uint32_t label(std::size_t i, std::size_t s) const {
    return read_label(row(i), s, label_bytes_);
  }

  /// Decodes label `s` from a raw row in this store's encoding.
  [[nodiscard]] static std::uint32_t read_label(const std::uint8_t* row_bytes,
                                                std::size_t s,
                                                std::size_t label_bytes) {
    if (label_bytes == 1) return row_bytes[s];
    return static_cast<std::uint32_t>(row_bytes[2 * s]) << 8 |
           row_bytes[2 * s + 1];
  }

  /// Encodes label `s` of a raw row in this store's encoding.
  static void write_label(std::uint8_t* row_bytes, std::size_t s,
                          std::size_t label_bytes, std::uint32_t value) {
    if (label_bytes == 1) {
      row_bytes[s] = static_cast<std::uint8_t>(value);
    } else {
      row_bytes[2 * s] = static_cast<std::uint8_t>(value >> 8);
      row_bytes[2 * s + 1] = static_cast<std::uint8_t>(value);
    }
  }

  /// Appends a row (must be row_stride() bytes in this store's encoding).
  void push_back(const std::uint8_t* row_bytes);

  /// Appends a Permutation (degree must equal width()).
  void push_back(const perm::Permutation& p);

  /// Row i as a Permutation.
  [[nodiscard]] perm::Permutation permutation(std::size_t i) const;

  /// Sorts rows lexicographically and removes duplicates.
  void sort_unique();

  /// Requires both stores sorted: removes from *this* every row present in
  /// `other` (set difference, in place).
  void subtract_sorted(const FlatPermStore& other);

  /// Requires both stores sorted: merges `other` into *this*, keeping the
  /// result sorted. Duplicate rows across the two stores are kept once
  /// (inputs are assumed disjoint when that matters; see subtract_sorted).
  void merge_sorted(const FlatPermStore& other);

  /// Binary search in a sorted store.
  [[nodiscard]] bool contains_sorted(const std::uint8_t* row_bytes) const;

  /// Encodes `p` as a row in this store's format (degree must equal
  /// width()).
  [[nodiscard]] std::vector<std::uint8_t> encode_row(
      const perm::Permutation& p) const;

  /// Appends every row of `other` as-is (widths must match).
  void append(const FlatPermStore& other);

  /// Replaces the rows wholesale with `bytes` (a whole number of rows in
  /// this store's encoding). The bulk-commit primitive the spill engine's
  /// streaming subtract/merge passes use.
  void assign_rows(std::vector<std::uint8_t> bytes);

  /// Removes all rows but keeps the allocation (hot-loop buffer reuse).
  /// On a read-only or moved-from store this degrades to clear().
  void clear_keep_capacity();

  /// Releases all memory by resetting to a fresh empty writable backend
  /// (valid on any store, including read-only and moved-from ones).
  void clear();

  /// Bytes of heap memory currently held (0 for mmap-backed stores: their
  /// pages are kernel file cache, not program heap).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// Bytes the backend keeps on disk (0 for in-memory stores).
  [[nodiscard]] std::size_t disk_bytes() const;

  void reserve_rows(std::size_t rows);

 private:
  void sync_view();
  void ensure_writable() const;
  void commit_bytes(std::vector<std::uint8_t> bytes);

  std::size_t width_;
  std::size_t label_bytes_;
  std::size_t stride_;
  std::shared_ptr<RowStorage> storage_;
  std::vector<std::uint8_t>* vec_ = nullptr;  // cached writable vector
  const std::uint8_t* view_data_ = nullptr;   // cached (data, size) view
  std::size_t view_bytes_ = 0;
};

}  // namespace qsyn::synth
