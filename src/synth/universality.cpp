#include "synth/universality.h"

#include "gates/cascade.h"
#include "gates/gate.h"

namespace qsyn::synth {

namespace {

perm::Permutation binary_perm_of(const gates::Gate& g) {
  gates::Cascade c(3);
  c.append(g);
  return c.to_binary_permutation();
}

}  // namespace

std::vector<perm::Permutation> feynman_binary_perms() {
  std::vector<perm::Permutation> out;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      out.push_back(binary_perm_of(gates::Gate::feynman(a, b)));
    }
  }
  return out;
}

std::vector<perm::Permutation> not_binary_perms() {
  std::vector<perm::Permutation> out;
  for (std::size_t w = 0; w < 3; ++w) {
    out.push_back(binary_perm_of(gates::Gate::not_gate(w)));
  }
  return out;
}

perm::PermGroup group_with_not_and_feynman(const perm::Permutation& g) {
  std::vector<perm::Permutation> gens = feynman_binary_perms();
  const std::vector<perm::Permutation> nots = not_binary_perms();
  gens.insert(gens.end(), nots.begin(), nots.end());
  gens.push_back(g.extended_to(8));
  return perm::PermGroup(gens);
}

bool is_universal_with_not_and_feynman(const perm::Permutation& g) {
  return group_with_not_and_feynman(g).order() == 40320;
}

perm::PermGroup group_with_feynman(
    const std::vector<perm::Permutation>& extras) {
  std::vector<perm::Permutation> gens = feynman_binary_perms();
  for (const auto& e : extras) gens.push_back(e.extended_to(8));
  return perm::PermGroup(gens);
}

}  // namespace qsyn::synth
