#include "synth/backend.h"

#include <utility>

namespace qsyn::synth {

SynthesisBackend::~SynthesisBackend() = default;

std::vector<std::optional<SynthesisResult>> SynthesisBackend::synthesize_batch(
    const std::vector<perm::Permutation>& targets) {
  std::vector<std::optional<SynthesisResult>> answers;
  answers.reserve(targets.size());
  for (const perm::Permutation& target : targets) {
    answers.push_back(synthesize(target));
  }
  return answers;
}

ClosureBackend::ClosureBackend(const gates::GateLibrary& library,
                               unsigned max_cost, ClosureConfig config)
    : mce_(library, max_cost, std::move(config)) {}

ClosureBackend::ClosureBackend(FmcfEnumerator enumerator, unsigned max_cost)
    : mce_(std::move(enumerator), max_cost) {}

ClosureBackend::ClosureBackend(McExpressor expressor)
    : mce_(std::move(expressor)) {}

const gates::GateLibrary& ClosureBackend::library() const {
  return mce_.enumerator().library();
}

unsigned ClosureBackend::max_cost() const { return mce_.max_cost(); }

BackendInfo ClosureBackend::info() const {
  BackendInfo info;
  info.name = "closure";
  info.exact = true;
  // Catalog-backed enumerators are frozen at their saved depth; a live
  // closure deepens level by level on a miss.
  info.deepens_on_miss = !mce_.enumerator().read_only();
  info.enumerates_implementations = true;
  info.max_cost = mce_.max_cost();
  info.library_fingerprint = library().fingerprint();
  info.domain_fingerprint = library().domain().fingerprint();
  return info;
}

std::optional<BackendAnswer> ClosureBackend::locate(
    const perm::Permutation& target) {
  const auto cost = mce_.minimal_cost(target);
  if (!cost.has_value()) return std::nullopt;
  BackendAnswer answer;
  answer.cost = *cost;
  answer.not_prefix = std::move(
      strip_not_prefix(library().domain().wires(), target).not_prefix);
  return answer;
}

std::optional<SynthesisResult> ClosureBackend::synthesize(
    const perm::Permutation& target) {
  return mce_.synthesize(target);
}

}  // namespace qsyn::synth
