// qsyn/synth/specs.h
//
// Named reversible circuits from the paper and the surrounding literature,
// as permutations of the 8 binary labels (1 = |000>, ..., 8 = |111>), plus
// the paper's printed cascade realizations (Figures 4-9).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gates/cascade.h"
#include "perm/permutation.h"

namespace qsyn::synth {

/// Toffoli (controlled-controlled-NOT, target C): (7,8).
[[nodiscard]] perm::Permutation toffoli_perm();

/// Peres gate g1 = (5,7,6,8): P=A, Q=B^A, R=C^AB (Figure 4).
[[nodiscard]] perm::Permutation peres_perm();

/// g2 = (5,8,7,6): P=A, Q=B^AC', R=C^A (Figure 5).
[[nodiscard]] perm::Permutation g2_perm();

/// g3 = (3,4)(5,7)(6,8): P=A, Q=B^A, R=C^A'B (Figure 6).
[[nodiscard]] perm::Permutation g3_perm();

/// g4 = (3,4)(5,8)(6,7): P=A, Q=B^A, R=C'^A'B' (Figure 7).
[[nodiscard]] perm::Permutation g4_perm();

/// Fredkin (controlled swap of B and C): (6,7).
[[nodiscard]] perm::Permutation fredkin_perm();

/// Unconditional swap of wires B and C.
[[nodiscard]] perm::Permutation swap_bc_perm();

/// Builds a permutation of {1..2^wires} from a bitwise truth function
/// mapping input bits to output bits (must be a bijection; checked).
[[nodiscard]] perm::Permutation perm_from_truth(
    std::size_t wires, const std::function<std::uint32_t(std::uint32_t)>& f);

// --- the paper's printed cascades (all on 3 wires) --------------------------

/// Figure 4: Peres = VCB*FBA*VCA*V+CB.
[[nodiscard]] gates::Cascade peres_cascade_fig4();

/// Figure 8: the Hermitian-adjoint Peres implementation V+CB*FBA*V+CA*VCB.
[[nodiscard]] gates::Cascade peres_cascade_fig8();

/// Figure 5: g2 = V+BC*FCA*VBA*VBC.
[[nodiscard]] gates::Cascade g2_cascade_fig5();

/// Figure 6: g3 = VCB*FBA*V+CA*VCB.
[[nodiscard]] gates::Cascade g3_cascade_fig6();

/// Figure 7: g4 = VCB*FBA*VCA*VCB.
[[nodiscard]] gates::Cascade g4_cascade_fig7();

/// Figure 9 (a)-(d): the four cost-5 Toffoli implementations.
[[nodiscard]] std::vector<gates::Cascade> toffoli_cascades_fig9();

/// The six 3-qubit NOT-layer representatives... (all 8 NOT-mask circuits,
/// including the empty one), as cascades of NOT gates.
[[nodiscard]] std::vector<gates::Cascade> not_layer_cascades(std::size_t wires);

}  // namespace qsyn::synth
