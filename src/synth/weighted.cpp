#include "synth/weighted.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "common/error.h"
#include "mvl/pattern.h"

namespace qsyn::synth {

namespace {

/// Packs the 2^n image codes (2n bits each) into a 64-bit signature.
/// n = 3: 8 images x 6 bits = 48 bits. n = 4 would need 16 x 8 = 128, so the
/// synthesizer is limited to n <= 3 (checked in the constructor).
std::uint64_t pack(const std::vector<std::uint8_t>& images, unsigned bits) {
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    key |= static_cast<std::uint64_t>(images[i]) << (bits * i);
  }
  return key;
}

void unpack(std::uint64_t key, unsigned bits, std::vector<std::uint8_t>& out) {
  const std::uint64_t mask = (1u << bits) - 1u;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>((key >> (bits * i)) & mask);
  }
}

}  // namespace

WeightedSynthesizer::WeightedSynthesizer(const gates::GateLibrary& library,
                                         gates::CostModel model,
                                         bool include_not_gates,
                                         std::size_t max_states)
    : library_(&library),
      model_(model),
      max_states_(max_states),
      wires_(library.domain().wires()) {
  QSYN_CHECK(wires_ <= 3, "weighted synthesis supports up to 3 wires");
  const std::size_t code_count = std::size_t(1) << (2 * wires_);

  // Banned mask per full-domain pattern code (mirrors the reduced domain's
  // class numbering; the mask depends only on which wires are mixed).
  const mvl::PatternDomain& domain = library.domain();
  code_banned_.resize(code_count);
  for (std::uint32_t code = 0; code < code_count; ++code) {
    const mvl::Pattern p = mvl::Pattern::from_code(wires_, code);
    std::uint32_t mask = 0;
    for (std::size_t w = 0; w < wires_; ++w) {
      if (mvl::is_mixed(p.get(w))) mask |= 1u << domain.control_class(w);
    }
    for (std::size_t a = 0; a < wires_; ++a) {
      for (std::size_t b = a + 1; b < wires_; ++b) {
        if (mvl::is_mixed(p.get(a)) || mvl::is_mixed(p.get(b))) {
          mask |= 1u << domain.feynman_class(a, b);
        }
      }
    }
    code_banned_[code] = mask;
  }

  auto add_move = [&](const gates::Gate& g, std::uint32_t class_bit) {
    Move move{g, g.cost(model_), class_bit, {}};
    move.table.resize(code_count);
    for (std::uint32_t code = 0; code < code_count; ++code) {
      move.table[code] = static_cast<std::uint8_t>(
          g.apply(mvl::Pattern::from_code(wires_, code)).code());
    }
    moves_.push_back(std::move(move));
  };

  for (std::size_t i = 0; i < library.size(); ++i) {
    add_move(library.gate(i), 1u << library.banned_class_of(i));
  }
  if (include_not_gates) {
    for (std::size_t w = 0; w < wires_; ++w) {
      add_move(gates::Gate::not_gate(w), 0u);
    }
  }
}

void WeightedSynthesizer::set_bound_backend(SynthesisBackend* backend) {
  if (backend != nullptr) {
    const BackendInfo info = backend->info();
    QSYN_CHECK(info.library_fingerprint == library_->fingerprint(),
               "bound backend serves a different library");
  }
  bound_backend_ = backend;
}

std::optional<WeightedResult> WeightedSynthesizer::run(
    const perm::Permutation& target, bool build_witness) const {
  const std::uint32_t binary_count = 1u << wires_;
  const unsigned bits = static_cast<unsigned>(2 * wires_);
  QSYN_CHECK(target.degree() <= binary_count,
             "target permutation degree exceeds 2^wires");

  // Upper bound from the seam: the bound backend's minimal-gate-count
  // witness, priced under this model. Any state costing more than the bound
  // cannot lie on an optimal path (move costs are nonnegative), so Dijkstra
  // skips it — shrinking `best` on targets that would otherwise trip
  // max_states.
  unsigned bound = 0;
  bool have_bound = false;
  if (bound_backend_ != nullptr) {
    if (auto witness = bound_backend_->synthesize(target);
        witness.has_value()) {
      for (const gates::Gate& g : witness->circuit.sequence()) {
        bound += g.cost(model_);
      }
      have_bound = true;
    }
  }

  // Start: binary input i carries the pattern with code of its own bits.
  std::vector<std::uint8_t> images(binary_count);
  for (std::uint32_t i = 0; i < binary_count; ++i) {
    images[i] =
        static_cast<std::uint8_t>(mvl::Pattern::from_binary(wires_, i).code());
  }
  const std::uint64_t start = pack(images, bits);

  // Goal: image of input i is the binary pattern target(i+1)-1.
  for (std::uint32_t i = 0; i < binary_count; ++i) {
    images[i] = static_cast<std::uint8_t>(
        mvl::Pattern::from_binary(wires_, target.apply(i + 1) - 1).code());
  }
  const std::uint64_t goal = pack(images, bits);

  struct QueueEntry {
    unsigned cost;
    std::uint64_t key;
    bool operator>(const QueueEntry& other) const {
      return cost > other.cost;
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  std::unordered_map<std::uint64_t, unsigned> best;
  // Parent tracking for witness reconstruction.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::size_t>>
      parent;

  queue.push({0, start});
  best.emplace(start, 0);
  std::vector<std::uint8_t> current(binary_count);
  std::vector<std::uint8_t> next(binary_count);

  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    const auto it = best.find(top.key);
    if (it != best.end() && it->second < top.cost) continue;  // stale
    if (top.key == goal) {
      WeightedResult result;
      result.cost = top.cost;
      result.circuit = gates::Cascade(wires_);
      if (build_witness) {
        std::vector<std::size_t> chosen;
        std::uint64_t key = goal;
        while (key != start) {
          const auto p = parent.find(key);
          QSYN_CHECK(p != parent.end(), "broken Dijkstra parent chain");
          chosen.push_back(p->second.second);
          key = p->second.first;
        }
        std::reverse(chosen.begin(), chosen.end());
        for (const std::size_t m : chosen) {
          result.circuit.append(moves_[m].gate);
        }
      }
      return result;
    }
    unpack(top.key, bits, current);
    std::uint32_t banned = 0;
    for (const std::uint8_t code : current) banned |= code_banned_[code];
    for (std::size_t m = 0; m < moves_.size(); ++m) {
      const Move& move = moves_[m];
      if ((banned & move.class_bit) != 0) continue;
      for (std::size_t i = 0; i < current.size(); ++i) {
        next[i] = move.table[current[i]];
      }
      const std::uint64_t next_key = pack(next, bits);
      const unsigned next_cost = top.cost + move.cost;
      if (have_bound && next_cost > bound) continue;
      const auto found = best.find(next_key);
      if (found != best.end() && found->second <= next_cost) continue;
      if (found == best.end() && best.size() >= max_states_) {
        throw qsyn::SynthesisError(
            "weighted synthesis exceeded the state bound");
      }
      best[next_key] = next_cost;
      if (build_witness) parent[next_key] = {top.key, m};
      queue.push({next_cost, next_key});
    }
  }
  return std::nullopt;
}

std::optional<WeightedResult> WeightedSynthesizer::synthesize(
    const perm::Permutation& target) const {
  return run(target, /*build_witness=*/true);
}

std::optional<unsigned> WeightedSynthesizer::minimal_cost(
    const perm::Permutation& target) const {
  const auto result = run(target, /*build_witness=*/false);
  if (!result.has_value()) return std::nullopt;
  return result->cost;
}

}  // namespace qsyn::synth
