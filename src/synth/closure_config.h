// qsyn/synth/closure_config.h
//
// ClosureConfig — the one knob surface of the FMCF closure.
//
// Threads, shards, chunking, witness tracking, banned-set pruning, and (new
// in the out-of-core engine) the spill budget and spill directory all live
// here. Earlier PRs scattered these across enumerator option fields,
// constructor parameters, and environment variables read in different
// places; this header is the single home (the transitional alias spelled
// after the enumerator is gone — tests/test_deprecation.cpp and the
// deprecated_names_absent ctest keep it from coming back).
//
// Field resolution follows one rule: an explicit non-default field wins,
// else the matching QSYN_* environment variable, else a hardware- or
// workload-derived default. The resolve_* helpers implement that rule and
// are what FmcfEnumerator calls at construction, so the printed/benched
// configuration is always the resolved one.
#pragma once

#include <cstddef>
#include <string>

namespace qsyn::synth {

/// Configuration of one FMCF closure (enumeration, parallelism, spilling).
struct ClosureConfig {
  /// Keep every level's frontier so witness cascades can be reconstructed
  /// (the paper's MCE back-walk). Costs memory; disable for pure counting.
  bool track_witnesses = true;

  /// Honor the banned sets (the paper's "reasonable product"). Turning this
  /// off is an *ablation only*: the closure then walks unphysical cascades
  /// whose don't-care semantics do not correspond to quantum circuits.
  bool use_banned_sets = true;

  /// Candidate-buffer chunk size (rows) for the level expansion; bounds peak
  /// memory at deep levels.
  std::size_t chunk_rows = std::size_t(1) << 24;

  /// Worker threads for the level sweep. 0 = the QSYN_THREADS environment
  /// variable when set to a positive integer, else
  /// std::thread::hardware_concurrency(). The per-level stats are
  /// thread-count-invariant (byte-identical to the single-threaded sweep).
  std::size_t threads = 0;

  /// Shards of the seen-set and per-level stores. 0 = derived from the
  /// resolved thread count (1 when single-threaded, else ~4x threads rounded
  /// up to a power of two). A perf/memory knob only: results never depend on
  /// the shard count.
  std::size_t shards = 0;

  /// Heap budget (bytes) for the closure's permutation stores. 0 = the
  /// QSYN_SPILL_BUDGET_MB environment variable (in MiB) when set to a
  /// positive integer, else unlimited (the historical all-in-RAM behavior).
  /// When the budget trips, shards seal their sorted rows into
  /// prefix-compressed run files under spill_dir and the level's set algebra
  /// continues as streaming merges over the sealed runs — per-level stats
  /// stay byte-identical to the in-memory sweep.
  std::size_t spill_budget_bytes = 0;

  /// Directory for spill files. Empty = the QSYN_SPILL_DIR environment
  /// variable when set, else the system temporary directory. Files are
  /// created per closure and removed when the closure (or the level that
  /// owns them) dies; an unusable directory surfaces as qsyn::IoError at the
  /// first spill.
  std::string spill_dir;
};

/// Resolved worker-thread count: explicit > QSYN_THREADS > hardware.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// Resolved shard count: explicit > derived from the resolved thread count.
[[nodiscard]] std::size_t resolve_shards(std::size_t requested,
                                         std::size_t threads);

/// Resolved spill budget in bytes: explicit > QSYN_SPILL_BUDGET_MB > 0
/// (0 = never spill).
[[nodiscard]] std::size_t resolve_spill_budget(std::size_t requested_bytes);

/// Resolved spill directory: explicit > QSYN_SPILL_DIR > system temp dir.
/// When the system temp dir itself is unresolvable the result degrades to
/// "." — observably: a one-time stderr warning fires and
/// spill_dir_fallback_count() ticks, so run files appearing in the working
/// directory can be traced instead of silently scattering.
[[nodiscard]] std::string resolve_spill_dir(const std::string& requested);

/// Number of times resolve_spill_dir fell back to "." because the system
/// temporary directory could not be resolved (process lifetime counter).
[[nodiscard]] std::size_t spill_dir_fallback_count();

}  // namespace qsyn::synth
