// qsyn/synth/row_storage.h
//
// Storage backends for the fixed-width row buffers of FlatPermStore (and,
// through it, ShardedPermStore): the seam that lets closure state live on the
// heap, inside a read-only memory-mapped catalog, or in a writable
// memory-mapped spill file on disk.
//
// A backend owns one contiguous byte buffer of whole rows. Three concrete
// backends exist:
//
//  * VectorRowStorage — the in-memory representation the synthesis stack has
//    always used (a std::vector<uint8_t>), byte-for-byte identical to the
//    pre-seam behavior. Writable.
//  * MmapRowStorage — a read-only window into a shared qsyn::io::MmapFile,
//    used by the persistent catalog (synth/catalog.h) to serve frontier row
//    tables without copying them off disk. Rows store labels big-endian, so
//    the on-disk bytes ARE the in-memory representation on every host.
//  * FileRowStorage — a writable, growable mmap'd file
//    (qsyn::io::GrowableMmapFile): the out-of-core closure's spill target.
//    Appended bytes live in kernel file cache instead of program heap;
//    seal() makes them durable (msync + fsync) and turns the backend
//    read-only while its mapping keeps serving zero-copy reads.
//
// Construct backends through synth::StorageSpec (synth/storage_spec.h) — the
// one public surface covering all three — unless you are inside the storage
// layer itself (the catalog carves window backends out of one shared
// mapping, which a path-shaped spec cannot express).
//
// FlatPermStore caches the writable vector (when the backend offers one)
// once per backend swap, so the hot set-algebra loops never pay a virtual
// dispatch per row; the interface is crossed only at backend boundaries.
// Backends without a vector (FileRowStorage) are mutated through the virtual
// append_bytes()/replace_bytes() pair — the spill paths that use them are
// I/O-bound, so the dispatch cost is noise there.
//
// Error taxonomy: mutating a read-only backend (MmapRowStorage always,
// FileRowStorage once sealed) throws qsyn::LogicError; filesystem failures
// underneath FileRowStorage surface as qsyn::IoError.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/io/mmap_file.h"

namespace qsyn::synth {

/// Owner of one contiguous buffer of fixed-width rows.
class RowStorage {
 public:
  virtual ~RowStorage();

  /// First byte of the row buffer (nullptr allowed when empty).
  [[nodiscard]] virtual const std::uint8_t* data() const = 0;

  /// Buffer length in bytes (always a whole number of rows for buffers
  /// managed through FlatPermStore).
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;

  /// Heap bytes held by this backend. Mmap'd backends report 0: their pages
  /// are file cache the kernel reclaims under pressure, not program heap.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// Bytes this backend keeps on disk (0 for pure in-memory backends).
  [[nodiscard]] virtual std::size_t disk_bytes() const;

  /// The mutable byte vector behind a vector-backed writable backend, or
  /// nullptr otherwise. When non-null, FlatPermStore routes every mutation
  /// through it (the devirtualized hot path).
  [[nodiscard]] virtual std::vector<std::uint8_t>* mutable_bytes();

  /// True when the backend accepts mutation — either through mutable_bytes()
  /// or through the virtual append/replace pair below.
  [[nodiscard]] virtual bool writable() const;

  /// Appends raw bytes. Default implementation goes through mutable_bytes();
  /// read-only backends throw qsyn::LogicError.
  virtual void append_bytes(const std::uint8_t* bytes, std::size_t n);

  /// Replaces the whole buffer. Default implementation goes through
  /// mutable_bytes(); read-only backends throw qsyn::LogicError.
  virtual void replace_bytes(std::vector<std::uint8_t> bytes);
};

/// The writable in-memory backend (the historical representation).
class VectorRowStorage final : public RowStorage {
 public:
  VectorRowStorage() = default;
  explicit VectorRowStorage(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::uint8_t* data() const override {
    return bytes_.data();
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return bytes_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return bytes_.capacity();
  }
  [[nodiscard]] std::vector<std::uint8_t>* mutable_bytes() override {
    return &bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// A read-only window into a memory-mapped file. Shares ownership of the
/// mapping, so the window stays valid however long the store outlives the
/// opener.
class MmapRowStorage final : public RowStorage {
 public:
  /// Window [offset, offset + bytes) of `file`; the range must lie inside
  /// the mapping (checked, throws qsyn::LogicError otherwise).
  MmapRowStorage(std::shared_ptr<const io::MmapFile> file, std::size_t offset,
                 std::size_t bytes);

  [[nodiscard]] const std::uint8_t* data() const override { return data_; }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::size_t memory_bytes() const override { return 0; }
  [[nodiscard]] std::size_t disk_bytes() const override { return bytes_; }

 private:
  std::shared_ptr<const io::MmapFile> file_;
  const std::uint8_t* data_;
  std::size_t bytes_;
};

/// A writable mmap'd file backend: rows are appended through the mapping
/// (growable), then seal() freezes the file (fsync) and the backend serves
/// read-only from the same mapping. The spill engine writes sealed runs and
/// drained frontiers through this.
class FileRowStorage final : public RowStorage {
 public:
  /// Creates (or truncates) `path`. With `keep_file` false the file is
  /// deleted when the backend dies — the right policy for spill temporaries.
  /// Throws qsyn::IoError when the file cannot be created.
  explicit FileRowStorage(const std::string& path, bool keep_file = true);

  [[nodiscard]] const std::uint8_t* data() const override {
    return file_.data();
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return file_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const override { return 0; }
  [[nodiscard]] std::size_t disk_bytes() const override {
    return file_.size();
  }
  [[nodiscard]] bool writable() const override { return !file_.sealed(); }
  void append_bytes(const std::uint8_t* bytes, std::size_t n) override;
  void replace_bytes(std::vector<std::uint8_t> bytes) override;

  /// Flushes to stable storage and turns the backend read-only (further
  /// mutations throw qsyn::LogicError). Idempotent.
  void seal() { file_.seal(); }
  [[nodiscard]] bool sealed() const { return file_.sealed(); }
  [[nodiscard]] const std::string& path() const { return file_.path(); }

 private:
  io::GrowableMmapFile file_;
};

}  // namespace qsyn::synth
