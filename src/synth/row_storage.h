// qsyn/synth/row_storage.h
//
// Storage backends for the fixed-width row buffers of FlatPermStore (and,
// through it, ShardedPermStore): the seam that lets closure state live either
// on the heap or inside a read-only memory-mapped catalog.
//
// A backend owns one contiguous byte buffer of whole rows. Two concrete
// backends exist:
//
//  * VectorRowStorage — the in-memory representation the synthesis stack has
//    always used (a std::vector<uint8_t>), byte-for-byte identical to the
//    pre-seam behavior. Writable.
//  * MmapRowStorage — a read-only window into a shared qsyn::io::MmapFile,
//    used by the persistent catalog (synth/catalog.h) to serve frontier row
//    tables without copying them off disk. Rows store labels big-endian, so
//    the on-disk bytes ARE the in-memory representation on every host.
//
// FlatPermStore caches the writable vector (when the backend offers one)
// once per backend swap, so the hot set-algebra loops never pay a virtual
// dispatch per row; the interface is crossed only at backend boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/io/mmap_file.h"

namespace qsyn::synth {

/// Owner of one contiguous buffer of fixed-width rows.
class RowStorage {
 public:
  virtual ~RowStorage();

  /// First byte of the row buffer (nullptr allowed when empty).
  [[nodiscard]] virtual const std::uint8_t* data() const = 0;

  /// Buffer length in bytes (always a whole number of rows for buffers
  /// managed through FlatPermStore).
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;

  /// Heap bytes held by this backend. Mmap'd backends report 0: their pages
  /// are file cache the kernel reclaims under pressure, not program heap.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// The mutable byte vector behind a writable backend, or nullptr for
  /// read-only backends. Every FlatPermStore mutation goes through this;
  /// a null return makes the owning store read-only.
  [[nodiscard]] virtual std::vector<std::uint8_t>* mutable_bytes();
};

/// The writable in-memory backend (the historical representation).
class VectorRowStorage final : public RowStorage {
 public:
  VectorRowStorage() = default;
  explicit VectorRowStorage(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::uint8_t* data() const override {
    return bytes_.data();
  }
  [[nodiscard]] std::size_t size_bytes() const override {
    return bytes_.size();
  }
  [[nodiscard]] std::size_t memory_bytes() const override {
    return bytes_.capacity();
  }
  [[nodiscard]] std::vector<std::uint8_t>* mutable_bytes() override {
    return &bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// A read-only window into a memory-mapped file. Shares ownership of the
/// mapping, so the window stays valid however long the store outlives the
/// opener.
class MmapRowStorage final : public RowStorage {
 public:
  /// Window [offset, offset + bytes) of `file`; the range must lie inside
  /// the mapping (checked, throws qsyn::LogicError otherwise).
  MmapRowStorage(std::shared_ptr<const io::MmapFile> file, std::size_t offset,
                 std::size_t bytes);

  [[nodiscard]] const std::uint8_t* data() const override { return data_; }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::size_t memory_bytes() const override { return 0; }

 private:
  std::shared_ptr<const io::MmapFile> file_;
  const std::uint8_t* data_;
  std::size_t bytes_;
};

}  // namespace qsyn::synth
