#include "synth/specs.h"

#include "common/error.h"

namespace qsyn::synth {

perm::Permutation toffoli_perm() {
  return perm::Permutation::from_cycles("(7,8)", 8);
}

perm::Permutation peres_perm() {
  return perm::Permutation::from_cycles("(5,7,6,8)", 8);
}

perm::Permutation g2_perm() {
  return perm::Permutation::from_cycles("(5,8,7,6)", 8);
}

perm::Permutation g3_perm() {
  return perm::Permutation::from_cycles("(3,4)(5,7)(6,8)", 8);
}

perm::Permutation g4_perm() {
  return perm::Permutation::from_cycles("(3,4)(5,8)(6,7)", 8);
}

perm::Permutation fredkin_perm() {
  return perm::Permutation::from_cycles("(6,7)", 8);
}

perm::Permutation swap_bc_perm() {
  // (A,B,C) -> (A,C,B): 010 <-> 001 and 110 <-> 101.
  return perm::Permutation::from_cycles("(2,3)(6,7)", 8);
}

perm::Permutation perm_from_truth(
    std::size_t wires, const std::function<std::uint32_t(std::uint32_t)>& f) {
  const std::uint32_t count = 1u << wires;
  std::vector<std::uint32_t> images(count);
  for (std::uint32_t bits = 0; bits < count; ++bits) {
    const std::uint32_t out = f(bits);
    QSYN_CHECK(out < count, "truth function output out of range");
    images[bits] = out + 1;
  }
  return perm::Permutation::from_images(std::move(images));
}

gates::Cascade peres_cascade_fig4() {
  return gates::Cascade::parse("VCB*FBA*VCA*V+CB", 3);
}

gates::Cascade peres_cascade_fig8() {
  return gates::Cascade::parse("V+CB*FBA*V+CA*VCB", 3);
}

gates::Cascade g2_cascade_fig5() {
  return gates::Cascade::parse("V+BC*FCA*VBA*VBC", 3);
}

gates::Cascade g3_cascade_fig6() {
  return gates::Cascade::parse("VCB*FBA*V+CA*VCB", 3);
}

gates::Cascade g4_cascade_fig7() {
  return gates::Cascade::parse("VCB*FBA*VCA*VCB", 3);
}

std::vector<gates::Cascade> toffoli_cascades_fig9() {
  return {
      gates::Cascade::parse("FBA*V+CB*FBA*VCA*VCB", 3),   // (a)
      gates::Cascade::parse("FBA*VCB*FBA*V+CA*V+CB", 3),  // (b)
      gates::Cascade::parse("FAB*V+CA*FAB*VCA*VCB", 3),   // (c)
      gates::Cascade::parse("FAB*VCA*FAB*V+CA*V+CB", 3),  // (d)
  };
}

std::vector<gates::Cascade> not_layer_cascades(std::size_t wires) {
  std::vector<gates::Cascade> out;
  const std::uint32_t count = 1u << wires;
  for (std::uint32_t mask = 0; mask < count; ++mask) {
    gates::Cascade c(wires);
    for (std::size_t w = 0; w < wires; ++w) {
      if ((mask >> (wires - 1 - w) & 1u) != 0) {
        c.append(gates::Gate::not_gate(w));
      }
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace qsyn::synth
