// qsyn/synth/mce.h
//
// The paper's Minimum_Cost_Expressing (MCE) algorithm: given a reversible
// circuit g (a permutation of the 2^n binary patterns), produce a minimal
// quantum-cost cascade d[0]*d[1]*...*d[t] with d[0] a NOT-gate layer and
// d[1..t] library gates (Theorem 3).
//
// The NOT layer comes from Theorem 2: H = ∪_{a∈N} a*G decomposes every
// reversible circuit into a (cost-0) NOT prefix a = d[0] and a member of G,
// which the FMCF closure then locates level by level; the witness cascade is
// reconstructed by the paper's back-walk over the B[j] frontiers.
#pragma once

#include <optional>
#include <vector>

#include "gates/cascade.h"
#include "gates/library.h"
#include "perm/permutation.h"
#include "synth/fmcf.h"

namespace qsyn::synth {

/// One synthesized realization of a reversible circuit.
struct SynthesisResult {
  /// The complete circuit: NOT prefix followed by the library cascade.
  gates::Cascade circuit;
  /// d[0]: the NOT gates (possibly empty).
  std::vector<gates::Gate> not_prefix;
  /// d[1..t]: the controlled-V / controlled-V+ / Feynman part.
  gates::Cascade core;
  /// t — the minimal number of 2-qubit library gates (NOTs are free).
  unsigned cost = 0;

  SynthesisResult() : circuit(2), core(2) {}
};

/// Theorem 2's coset decomposition of a target: a cost-0 NOT prefix plus a
/// core permutation fixing the all-zero pattern (a member of the paper's G).
struct NotStripped {
  std::vector<gates::Gate> not_prefix;
  perm::Permutation core;  // fixes label 1
};

/// Strips the NOT coset off `target` (a permutation of {1..2^n} in
/// binary-value order; smaller degrees are padded with fixed points). Shared
/// by the MCE layer and the catalog serving front end, which both reduce
/// lookups to the stored G-set this way.
[[nodiscard]] NotStripped strip_not_prefix(std::size_t wires,
                                           const perm::Permutation& target);

/// Assembles a SynthesisResult from Theorem 2's pieces: the cost-0 NOT
/// prefix and a core cascade of library gates. Shared by every synthesis
/// backend and the catalog serving layer, so assembled circuits are
/// byte-identical across engines given the same pieces.
[[nodiscard]] SynthesisResult assemble_result(std::size_t wires,
                                              const NotStripped& stripped,
                                              gates::Cascade core);

/// Minimum-cost expressing over one gate library. Reuses one FMCF closure
/// across calls, deepening it on demand up to `max_cost` (the paper's cb).
class McExpressor {
 public:
  /// `config` configures the underlying closure (thread count, witness
  /// tracking, chunking, spill budget — see synth/closure_config.h); witness
  /// tracking is always forced on, since MCE exists to reconstruct cascades.
  explicit McExpressor(const gates::GateLibrary& library, unsigned max_cost = 7,
                       ClosureConfig config = {});

  /// Wraps an existing enumerator — typically one reopened from a persistent
  /// catalog — without recomputing anything. `max_cost` 0 means "whatever the
  /// enumerator already holds" (levels_done()); read-only enumerators are
  /// never deepened regardless, so lookups beyond the stored levels simply
  /// return nullopt instead of re-running the sweep.
  explicit McExpressor(FmcfEnumerator enumerator, unsigned max_cost = 0);

  /// Synthesizes a minimal realization, or nullopt when the minimal cost
  /// exceeds max_cost (the paper's flag = 0 case). The target permutation
  /// acts on {1..2^n} in binary-value order (label 1 = |0..0>); smaller
  /// degrees are padded with fixed points.
  [[nodiscard]] std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target);

  /// All distinct minimal implementations, one per closure element of B[t]
  /// restricting to the target (this is the multiplicity the paper reports:
  /// 2 implementations of Peres, 4 of Toffoli). Empty when cost > max_cost.
  [[nodiscard]] std::vector<SynthesisResult> implementations(
      const perm::Permutation& target);

  /// Exhaustively counts the *gate sequences* of length exactly `cost` that
  /// realize the target (reasonable cascades only; NOT prefix excluded).
  /// Exponential in `cost`; guarded to cost <= max_cost(). With more than
  /// one worker (ClosureConfig::threads / QSYN_THREADS) the DFS fans its
  /// depth-2 subtrees out across a thread pool; the subtrees partition the
  /// serial walk, so the count is thread-count invariant.
  [[nodiscard]] std::size_t count_sequences(const perm::Permutation& target,
                                            unsigned cost);

  /// Minimal quantum cost of the target, or nullopt when above max_cost.
  [[nodiscard]] std::optional<unsigned> minimal_cost(
      const perm::Permutation& target);

  [[nodiscard]] const FmcfEnumerator& enumerator() const { return fmcf_; }
  [[nodiscard]] unsigned max_cost() const { return max_cost_; }

 private:
  [[nodiscard]] NotStripped strip_not_coset(
      const perm::Permutation& target) const;
  [[nodiscard]] std::optional<GEntry> locate(const perm::Permutation& core);
  [[nodiscard]] SynthesisResult assemble(const NotStripped& stripped,
                                         const gates::Cascade& core) const;

  const gates::GateLibrary* library_;
  unsigned max_cost_;
  FmcfEnumerator fmcf_;
};

}  // namespace qsyn::synth
