#include "synth/closure_config.h"

#include <cstdlib>
#include <filesystem>

#include "common/error.h"
#include "common/thread_pool.h"

namespace qsyn::synth {

std::size_t resolve_threads(std::size_t requested) {
  return requested != 0 ? requested : ThreadPool::default_thread_count();
}

std::size_t resolve_shards(std::size_t requested, std::size_t threads) {
  if (requested != 0) {
    QSYN_CHECK(requested <= 65536, "shard count must be in [1, 65536]");
    return requested;
  }
  if (threads <= 1) return 1;
  // ~4 shards per worker keeps the per-shard sort/subtract/merge rounds
  // load-balanced; a power of two keeps the prefix routing even.
  std::size_t shards = 1;
  while (shards < 4 * threads && shards < 256) shards <<= 1;
  return shards;
}

std::size_t resolve_spill_budget(std::size_t requested_bytes) {
  if (requested_bytes != 0) return requested_bytes;
  if (const char* env = std::getenv("QSYN_SPILL_BUDGET_MB")) {
    const unsigned long mib = std::strtoul(env, nullptr, 10);
    if (mib > 0) return static_cast<std::size_t>(mib) << 20;
  }
  return 0;  // unlimited: never spill
}

std::string resolve_spill_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* env = std::getenv("QSYN_SPILL_DIR")) {
    if (env[0] != '\0') return env;
  }
  std::error_code ec;
  const std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  // An unresolvable temp dir degrades to the working directory; the first
  // spill write reports qsyn::IoError if that too is unusable.
  return ec ? std::string(".") : tmp.string();
}

}  // namespace qsyn::synth
