#include "synth/closure_config.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "common/env.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace qsyn::synth {

namespace {

std::atomic<std::size_t> g_spill_dir_fallbacks{0};

}  // namespace

std::size_t resolve_threads(std::size_t requested) {
  return requested != 0 ? requested : ThreadPool::default_thread_count();
}

std::size_t resolve_shards(std::size_t requested, std::size_t threads) {
  if (requested != 0) {
    QSYN_CHECK(requested <= 65536, "shard count must be in [1, 65536]");
    return requested;
  }
  if (threads <= 1) return 1;
  // ~4 shards per worker keeps the per-shard sort/subtract/merge rounds
  // load-balanced; a power of two keeps the prefix routing even.
  std::size_t shards = 1;
  while (shards < 4 * threads && shards < 256) shards <<= 1;
  return shards;
}

std::size_t resolve_spill_budget(std::size_t requested_bytes) {
  if (requested_bytes != 0) return requested_bytes;
  // Strict parse: "64abc" used to half-apply as 64 MiB via strtoul; now it
  // warns once and falls through to unlimited.
  if (const auto mib = parse_env_size_t("QSYN_SPILL_BUDGET_MB", 1,
                                        std::size_t(-1) >> 20)) {
    return *mib << 20;
  }
  return 0;  // unlimited: never spill
}

std::string resolve_spill_dir(const std::string& requested) {
  if (!requested.empty()) return requested;
  if (const char* env = std::getenv("QSYN_SPILL_DIR")) {
    if (env[0] != '\0') return env;
  }
  std::error_code ec;
  const std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  if (!ec) return tmp.string();
  // An unresolvable temp dir degrades to the working directory — loudly:
  // warn once and tick the fallback counter so run files appearing in the
  // CWD are attributable. The first spill write still reports
  // qsyn::IoError if "." too is unusable.
  g_spill_dir_fallbacks.fetch_add(1, std::memory_order_relaxed);
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "qsyn: system temp dir unresolvable (%s); spill files will "
                 "land in the working directory — set QSYN_SPILL_DIR or "
                 "ClosureConfig::spill_dir\n",
                 ec.message().c_str());
  }
  return std::string(".");
}

std::size_t spill_dir_fallback_count() {
  return g_spill_dir_fallbacks.load(std::memory_order_relaxed);
}

}  // namespace qsyn::synth
