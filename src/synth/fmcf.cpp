#include "synth/fmcf.h"

#include <algorithm>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace qsyn::synth {

FmcfEnumerator::FmcfEnumerator(const gates::GateLibrary& library,
                               ClosureConfig options)
    : library_(&library),
      options_(options),
      width_(library.domain().size()),
      binary_count_(library.domain().binary_count()),
      label_bytes_(width_ <= 256 ? 1 : 2),
      stride_(width_ * label_bytes_),
      threads_(resolve_threads(options.threads)),
      shards_(resolve_shards(options.shards, threads_)),
      spill_budget_(resolve_spill_budget(options.spill_budget_bytes)),
      spill_dir_(spill_budget_ != 0 ? resolve_spill_dir(options.spill_dir)
                                    : options.spill_dir),
      backwalk_pool_busy_(std::make_unique<std::atomic<bool>>(false)),
      seen_(library.domain().size(), shards_,
            SpillOptions{spill_budget_, spill_dir_}) {
  init_gate_tables();

  // Level 0: the identity.
  const perm::Permutation id =
      perm::Permutation::identity(width_);
  seen_.push_back(id);
  frontiers_.emplace_back(width_);
  frontiers_.back().push_back(id);

  const GKey id_key = g_key_of_row(frontiers_.back().row(0));
  g_seen_keys_.push_back(id_key);
  g_index_.emplace(id_key, GEntry{0, 0});
}

FmcfEnumerator::FmcfEnumerator(const gates::GateLibrary& library,
                               ClosureConfig options, CatalogTag)
    : library_(&library),
      options_(options),
      width_(library.domain().size()),
      binary_count_(library.domain().binary_count()),
      label_bytes_(width_ <= 256 ? 1 : 2),
      stride_(width_ * label_bytes_),
      threads_(resolve_threads(options.threads)),
      shards_(resolve_shards(options.shards, threads_)),
      spill_budget_(0),
      backwalk_pool_busy_(std::make_unique<std::atomic<bool>>(false)),
      // Catalog-backed enumerators never advance(), so the seen-set stays
      // empty; one shard keeps it inert.
      seen_(library.domain().size(), 1),
      read_only_(true) {
  init_gate_tables();
}

void FmcfEnumerator::init_gate_tables() {
  const mvl::PatternDomain& domain = library_->domain();
  QSYN_CHECK(domain.wires() <= 5,
             "FMCF G-set keys support up to 5 wires (32 binary labels)");
  // Sanity: the first 2^n labels must be the binary patterns (reduced-domain
  // ordering), otherwise S != {1..2^n} and the restriction logic is wrong.
  for (std::uint32_t label = 1; label <= binary_count_; ++label) {
    QSYN_CHECK(domain.pattern(label).is_binary(),
               "FMCF requires a domain with binary labels first");
  }

  gate_tables_.reserve(library_->size());
  gate_inv_tables_.reserve(library_->size());
  gate_class_bits_.reserve(library_->size());
  for (std::size_t g = 0; g < library_->size(); ++g) {
    const perm::Permutation& p = library_->permutation(g);
    std::vector<std::uint16_t> table(width_);
    std::vector<std::uint16_t> inv(width_);
    for (std::size_t s = 0; s < width_; ++s) {
      const std::uint32_t image = p.apply(static_cast<std::uint32_t>(s + 1));
      table[s] = static_cast<std::uint16_t>(image - 1);
      inv[image - 1] = static_cast<std::uint16_t>(s);
    }
    gate_tables_.push_back(std::move(table));
    gate_inv_tables_.push_back(std::move(inv));
    gate_class_bits_.push_back(1u << library_->banned_class_of(g));
  }
  label_banned_.resize(width_);
  for (std::uint32_t label = 1; label <= width_; ++label) {
    label_banned_[label - 1] = domain.banned_mask(label);
  }
}

FmcfEnumerator::~FmcfEnumerator() = default;
FmcfEnumerator::FmcfEnumerator(FmcfEnumerator&&) noexcept = default;
FmcfEnumerator& FmcfEnumerator::operator=(FmcfEnumerator&&) noexcept = default;

std::uint32_t FmcfEnumerator::banned_mask_of_row(
    const std::uint8_t* row) const {
  std::uint32_t mask = 0;
  if (label_bytes_ == 1) {
    for (std::size_t s = 0; s < binary_count_; ++s) {
      mask |= label_banned_[row[s]];
    }
  } else {
    for (std::size_t s = 0; s < binary_count_; ++s) {
      mask |= label_banned_[static_cast<std::size_t>(row[2 * s]) << 8 |
                            row[2 * s + 1]];
    }
  }
  return mask;
}

bool FmcfEnumerator::row_is_binary_preserving(const std::uint8_t* row) const {
  for (std::size_t s = 0; s < binary_count_; ++s) {
    if (row_label(row, s) >= binary_count_) return false;
  }
  return true;
}

GKey FmcfEnumerator::g_key_of_row(const std::uint8_t* row) const {
  // One byte per binary point; at most 32 points (5 wires) x 8 bits fill the
  // 256-bit key. Binary images are < 2^n <= 32, so a byte always suffices.
  GKey key{};
  for (std::size_t s = 0; s < binary_count_; ++s) {
    key[s >> 3] |= static_cast<std::uint64_t>(row_label(row, s))
                   << (8 * (s & 7));
  }
  return key;
}

ThreadPool& FmcfEnumerator::worker_pool() {
  // Workers spawn on the first sweep, not at construction, so enumerators
  // that only probe already-computed levels stay thread-free.
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
  return *pool_;
}

const FmcfLevelStats& FmcfEnumerator::advance() {
  QSYN_CHECK(!read_only_,
             "catalog-backed FmcfEnumerator is read-only: reopened catalogs "
             "serve their saved levels, they never re-enumerate");
  if (saturated()) return stats_.back();
  (void)worker_pool();
  Stopwatch timer;
  const unsigned k = levels_done() + 1;
  const FlatPermStore& previous = frontiers_.back();
  QSYN_CHECK(!previous.empty() || k == 1,
             "closure already exhausted (empty frontier)");

  const std::size_t gate_count = gate_tables_.size();
  ShardedPermStore sharded_fresh(width_, shards_,
                                 SpillOptions{spill_budget_, spill_dir_});

  if (gate_count > 0 && !previous.empty()) {
    // Worker-local per-shard buffers: phase 1 routes products into
    // locals[worker][shard] without any synchronization, phase 2 drains
    // every worker's buffer for one shard from a single thread. Appending
    // order across workers is scheduling-dependent, but each shard is
    // sort_unique'd before use, so the resulting *sets* — and hence every
    // stat — are identical to the single-threaded sweep. With one worker
    // the expansion runs inline on the caller, so it writes straight into
    // shard_chunks and skips the local-buffer copy.
    std::vector<std::vector<FlatPermStore>> locals(threads_ > 1 ? threads_ : 0);
    for (auto& per_worker : locals) {
      per_worker.reserve(shards_);
      for (std::size_t s = 0; s < shards_; ++s) per_worker.emplace_back(width_);
    }
    std::vector<FlatPermStore> shard_chunks;
    shard_chunks.reserve(shards_);
    for (std::size_t s = 0; s < shards_; ++s) shard_chunks.emplace_back(width_);
    std::vector<std::vector<std::uint8_t>> outs(
        threads_, std::vector<std::uint8_t>(stride_));

    // A super-chunk expands to at most chunk_rows candidate rows before the
    // per-shard set algebra drains the buffers. Threaded sweeps hold each
    // candidate twice at the drain (worker-local buffer + shard chunk), so
    // they use half-size super-chunks to keep peak memory at the same
    // chunk_rows bound as the single-threaded sweep.
    const std::size_t candidate_budget =
        threads_ > 1 ? options_.chunk_rows / 2 : options_.chunk_rows;
    const std::size_t rows_per_super =
        std::max<std::size_t>(1, candidate_budget / gate_count);

    for (std::size_t super = 0; super < previous.size();
         super += rows_per_super) {
      const std::size_t super_end =
          std::min(previous.size(), super + rows_per_super);
      const std::size_t super_rows = super_end - super;
      // Small blocks load-balance the uneven banned-set pruning; at least
      // 4 blocks per worker, capped so tiny frontiers stay single-block.
      const std::size_t block_rows = std::max<std::size_t>(
          1, std::min<std::size_t>(4096, super_rows / (4 * threads_) + 1));
      const std::size_t blocks = (super_rows + block_rows - 1) / block_rows;
      pool_->run(blocks, [&](std::size_t block, std::size_t worker) {
        std::vector<std::uint8_t>& out = outs[worker];
        std::vector<FlatPermStore>& buffers =
            threads_ > 1 ? locals[worker] : shard_chunks;
        const bool route = shards_ > 1;  // shard_of divides; skip for 1 shard
        const std::size_t begin = super + block * block_rows;
        const std::size_t end = std::min(super_end, begin + block_rows);
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint8_t* row = previous.row(i);
          const std::uint32_t banned =
              options_.use_banned_sets ? banned_mask_of_row(row) : 0u;
          for (std::size_t g = 0; g < gate_count; ++g) {
            if ((banned & gate_class_bits_[g]) != 0) continue;
            const std::uint16_t* table = gate_tables_[g].data();
            if (label_bytes_ == 1) {
              for (std::size_t s = 0; s < width_; ++s) {
                out[s] = static_cast<std::uint8_t>(table[row[s]]);
              }
            } else {
              for (std::size_t s = 0; s < width_; ++s) {
                const std::uint16_t image =
                    table[static_cast<std::size_t>(row[2 * s]) << 8 |
                          row[2 * s + 1]];
                out[2 * s] = static_cast<std::uint8_t>(image >> 8);
                out[2 * s + 1] = static_cast<std::uint8_t>(image);
              }
            }
            buffers[route ? sharded_fresh.shard_of(out.data()) : 0].push_back(
                out.data());
          }
        }
      });
      pool_->run(shards_, [&](std::size_t s, std::size_t) {
        FlatPermStore& chunk = shard_chunks[s];
        for (auto& per_worker : locals) {
          chunk.append(per_worker[s]);
          per_worker[s].clear_keep_capacity();
        }
        if (chunk.empty()) return;
        chunk.sort_unique();
        // Subtract against the *whole* shard — active rows and any sealed
        // spill runs — of both the seen-set and this level's accumulator.
        // Every piece a shard holds therefore stays mutually disjoint, which
        // keeps sizes exact and the per-level stats spill-invariant.
        seen_.subtract_shard_from(s, chunk);
        sharded_fresh.subtract_shard_from(s, chunk);
        sharded_fresh.merge_into_shard(s, chunk);
        chunk.clear_keep_capacity();
      });
    }
  }

  // sharded_fresh is now B[k], shard-sorted. Update A[k] per shard (sealed
  // frontier runs are adopted by reference, not rewritten).
  pool_->run(shards_, [&](std::size_t s, std::size_t) {
    seen_.absorb_shard(s, sharded_fresh);
  });

  // The shard partition is monotone, so draining yields B[k] globally
  // sorted — byte-identical to the single-threaded all-in-RAM frontier,
  // preserving row indices for witnesses and the deterministic G-key
  // extraction below. When the level spilled, the frontier comes back as
  // one sealed spill file mmap'd read-only instead of a heap store.
  FlatPermStore fresh = sharded_fresh.drain_sorted();

  // Extract pre_G[k] and G[k].
  std::vector<GKey> level_keys;
  std::vector<std::pair<GKey, std::size_t>> key_rows;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const std::uint8_t* row = fresh.row(i);
    if (!row_is_binary_preserving(row)) continue;
    const GKey key = g_key_of_row(row);
    level_keys.push_back(key);
    key_rows.emplace_back(key, i);
  }
  std::sort(level_keys.begin(), level_keys.end());
  level_keys.erase(std::unique(level_keys.begin(), level_keys.end()),
                   level_keys.end());
  const std::size_t pre_g = level_keys.size();

  std::vector<GKey> new_keys;
  std::set_difference(level_keys.begin(), level_keys.end(),
                      g_seen_keys_.begin(), g_seen_keys_.end(),
                      std::back_inserter(new_keys));
  // Register the first (lowest-row) witness for every new key.
  std::sort(key_rows.begin(), key_rows.end());
  for (const GKey& key : new_keys) {
    const auto it = std::lower_bound(
        key_rows.begin(), key_rows.end(),
        std::make_pair(key, std::size_t{0}));
    QSYN_CHECK(it != key_rows.end() && it->first == key,
               "witness row must exist for a new G key");
    g_index_.emplace(key, GEntry{k, it->second});
  }
  std::vector<GKey> merged_keys;
  merged_keys.reserve(g_seen_keys_.size() + new_keys.size());
  std::merge(g_seen_keys_.begin(), g_seen_keys_.end(), new_keys.begin(),
             new_keys.end(), std::back_inserter(merged_keys));
  g_seen_keys_ = std::move(merged_keys);

  FmcfLevelStats stats;
  stats.cost = k;
  stats.frontier = fresh.size();
  stats.g_new = new_keys.size();
  stats.pre_g = pre_g;
  stats.seen = seen_.size();

  frontiers_.push_back(std::move(fresh));
  if (!options_.track_witnesses && frontiers_.size() >= 2) {
    frontiers_[frontiers_.size() - 2].clear();
  }
  stats.seconds = timer.seconds();
  stats_.push_back(stats);
  return stats_.back();
}

void FmcfEnumerator::run_to(unsigned max_cost) {
  while (levels_done() < max_cost && !saturated()) advance();
}

std::vector<perm::Permutation> FmcfEnumerator::g_set(unsigned k) const {
  QSYN_CHECK(k <= levels_done(), "level not yet computed");
  std::vector<perm::Permutation> out;
  for (const auto& [key, entry] : g_index_) {
    if (entry.cost != k) continue;
    std::vector<std::uint32_t> images(binary_count_);
    for (std::size_t s = 0; s < binary_count_; ++s) {
      images[s] =
          static_cast<std::uint32_t>(key[s >> 3] >> (8 * (s & 7)) & 0xff) + 1;
    }
    out.push_back(perm::Permutation::from_images(std::move(images)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<GEntry> FmcfEnumerator::find(
    const perm::Permutation& restricted) const {
  QSYN_CHECK(restricted.degree() <= binary_count_,
             "restricted permutation degree exceeds 2^n");
  GKey key{};
  for (std::size_t s = 0; s < binary_count_; ++s) {
    const std::uint64_t image =
        restricted.apply(static_cast<std::uint32_t>(s + 1)) - 1;
    key[s >> 3] |= image << (8 * (s & 7));
  }
  const auto it = g_index_.find(key);
  if (it == g_index_.end()) return std::nullopt;
  return it->second;
}

gates::Cascade FmcfEnumerator::witness(const GEntry& entry) const {
  return witness_for_row(entry.cost, entry.frontier_index);
}

gates::Cascade FmcfEnumerator::witness_for_row(unsigned k,
                                               std::size_t row_index) const {
  QSYN_CHECK(options_.track_witnesses,
             "witness reconstruction requires track_witnesses");
  QSYN_CHECK(k <= levels_done(), "level not yet computed");
  // Back-walk: repeatedly find a gate d and predecessor prev in B[j-1] with
  // prev * d == current and the product reasonable. Both paths pick the
  // lowest valid gate index, so serial and pooled walks reconstruct the
  // same cascade.
  std::vector<gates::Gate> sequence;
  std::vector<std::uint8_t> current(frontiers_[k].row(row_index),
                                    frontiers_[k].row(row_index) + stride_);
  const std::size_t gate_count = gate_inv_tables_.size();
  std::vector<std::uint8_t> cands(gate_count * stride_);
  std::vector<char> valid(gate_count, 0);

  const auto invert_into = [&](std::size_t g, std::uint8_t* prev) {
    const std::uint16_t* inv = gate_inv_tables_[g].data();
    if (label_bytes_ == 1) {
      for (std::size_t s = 0; s < width_; ++s) {
        prev[s] = static_cast<std::uint8_t>(inv[current[s]]);
      }
    } else {
      for (std::size_t s = 0; s < width_; ++s) {
        const std::uint16_t image =
            inv[static_cast<std::size_t>(current[2 * s]) << 8 |
                current[2 * s + 1]];
        prev[2 * s] = static_cast<std::uint8_t>(image >> 8);
        prev[2 * s + 1] = static_cast<std::uint8_t>(image);
      }
    }
  };
  const auto candidate_ok = [&](unsigned j, const std::uint8_t* prev,
                                std::size_t g) {
    if (!frontiers_[j - 1].contains_sorted(prev)) return false;
    return !options_.use_banned_sets ||
           (banned_mask_of_row(prev) & gate_class_bits_[g]) == 0;
  };

  for (unsigned j = k; j >= 1; --j) {
    std::size_t chosen = gate_count;
    // ThreadPool::run is not reentrant, so only one back-walk may own the
    // pool at a time; concurrent witness reconstructions (and calls from
    // inside another pool round) degrade to the serial scan below.
    const bool pooled = pool_ != nullptr && threads_ > 1 && gate_count > 1 &&
                        !backwalk_pool_busy_->exchange(true);
    if (pooled) {
      // Pooled scan: every candidate gate inverts into its own slice, then
      // the lowest valid index wins (matching the serial first-hit order).
      try {
        pool_->run(gate_count, [&](std::size_t g, std::size_t) {
          std::uint8_t* prev = cands.data() + g * stride_;
          invert_into(g, prev);
          valid[g] = candidate_ok(j, prev, g) ? 1 : 0;
        });
      } catch (...) {
        backwalk_pool_busy_->store(false);
        throw;
      }
      backwalk_pool_busy_->store(false);
      for (std::size_t g = 0; g < gate_count; ++g) {
        if (valid[g] != 0) {
          chosen = g;
          break;
        }
      }
    } else {
      for (std::size_t g = 0; g < gate_count; ++g) {
        std::uint8_t* prev = cands.data() + g * stride_;
        invert_into(g, prev);
        if (candidate_ok(j, prev, g)) {
          chosen = g;
          break;
        }
      }
    }
    QSYN_CHECK(chosen < gate_count, "back-walk failed: frontier inconsistency");
    sequence.push_back(library_->gate(chosen));
    std::copy_n(cands.data() + chosen * stride_, stride_, current.data());
  }
  std::reverse(sequence.begin(), sequence.end());
  return gates::Cascade(library_->domain().wires(), std::move(sequence));
}

std::vector<std::size_t> FmcfEnumerator::implementations(
    const perm::Permutation& restricted, unsigned k) const {
  QSYN_CHECK(options_.track_witnesses,
             "implementation scan requires track_witnesses");
  QSYN_CHECK(k <= levels_done(), "level not yet computed");
  std::vector<std::size_t> rows;
  const FlatPermStore& frontier = frontiers_[k];
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const std::uint8_t* row = frontier.row(i);
    if (!row_is_binary_preserving(row)) continue;
    bool match = true;
    for (std::size_t s = 0; s < binary_count_ && match; ++s) {
      match = row_label(row, s) + 1 ==
              restricted.apply(static_cast<std::uint32_t>(s + 1));
    }
    if (match) rows.push_back(i);
  }
  return rows;
}

std::size_t FmcfEnumerator::memory_bytes() const {
  std::size_t total = seen_.memory_bytes();
  for (const FlatPermStore& f : frontiers_) total += f.memory_bytes();
  return total;
}

std::size_t FmcfEnumerator::disk_bytes() const {
  std::size_t total = seen_.disk_bytes();
  for (const FlatPermStore& f : frontiers_) total += f.disk_bytes();
  return total;
}

}  // namespace qsyn::synth
