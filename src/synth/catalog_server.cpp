#include "synth/catalog_server.h"

#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"

namespace qsyn::synth {

namespace {

// Cache key: one word per (level, row). Frontier rows are indices into
// stores of at most a few hundred million rows, so 48 bits are ample.
std::uint64_t witness_key(unsigned cost, std::size_t row) {
  QSYN_CHECK(row < (std::uint64_t(1) << 48), "frontier row exceeds cache key");
  return static_cast<std::uint64_t>(cost) << 48 | row;
}

}  // namespace

CatalogServer::CatalogServer(FmcfEnumerator enumerator,
                             CatalogServerOptions options)
    : fmcf_(std::move(enumerator)),
      options_(options),
      wires_(fmcf_.library().domain().wires()) {}

CatalogServer::~CatalogServer() = default;

CatalogServer CatalogServer::open(const std::string& path,
                                  const gates::GateLibrary& library,
                                  CatalogServerOptions options) {
  return CatalogServer(FmcfEnumerator::open_catalog(path, library), options);
}

std::optional<CatalogAnswer> CatalogServer::locate(
    const perm::Permutation& target) const {
  NotStripped stripped = strip_not_prefix(wires_, target);
  const auto entry = fmcf_.find(stripped.core);
  if (!entry.has_value()) return std::nullopt;
  CatalogAnswer answer;
  answer.cost = entry->cost;
  answer.frontier_index = entry->frontier_index;
  answer.not_prefix = std::move(stripped.not_prefix);
  return answer;
}

gates::Cascade CatalogServer::cached_witness(unsigned cost,
                                             std::size_t row) const {
  if (options_.witness_cache_capacity == 0) {
    return fmcf_.witness_for_row(cost, row);
  }
  const std::uint64_t key = witness_key(cost, row);
  {
    std::shared_lock lock(cache_mutex_);
    const auto it = witness_cache_.find(key);
    if (it != witness_cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  // Back-walk outside any lock: reconstruction only reads immutable frontier
  // tables. Concurrent misses on the same row redo the walk; the first
  // emplace wins and the duplicates are dropped, which is cheaper than
  // holding a lock across the walk.
  gates::Cascade cascade = fmcf_.witness_for_row(cost, row);
  std::unique_lock lock(cache_mutex_);
  if (witness_cache_.size() < options_.witness_cache_capacity) {
    witness_cache_.emplace(key, cascade);
  }
  return cascade;
}

std::optional<SynthesisResult> CatalogServer::synthesize(
    const perm::Permutation& target) const {
  const NotStripped stripped = strip_not_prefix(wires_, target);
  const auto entry = fmcf_.find(stripped.core);
  if (!entry.has_value()) return std::nullopt;

  SynthesisResult result;
  result.not_prefix = stripped.not_prefix;
  result.core = entry->cost == 0
                    ? gates::Cascade(wires_)
                    : cached_witness(entry->cost, entry->frontier_index);
  result.cost = entry->cost;
  std::vector<gates::Gate> all = stripped.not_prefix;
  all.insert(all.end(), result.core.sequence().begin(),
             result.core.sequence().end());
  result.circuit = gates::Cascade(wires_, std::move(all));
  return result;
}

std::optional<WeightedCatalogAnswer> CatalogServer::locate_weighted(
    const perm::Permutation& target, const gates::CostModel& model,
    bool scan_deeper_levels) const {
  const NotStripped stripped = strip_not_prefix(wires_, target);
  const auto entry = fmcf_.find(stripped.core);
  if (!entry.has_value()) return std::nullopt;

  unsigned prefix_cost = 0;
  for (const gates::Gate& g : stripped.not_prefix) prefix_cost += g.cost(model);

  WeightedCatalogAnswer best;
  bool have_best = false;
  const auto consider = [&](const gates::Cascade& core) {
    unsigned cost = prefix_cost;
    for (const gates::Gate& g : core.sequence()) cost += g.cost(model);
    if (have_best && cost >= best.model_cost) return;
    have_best = true;
    best.model_cost = cost;
    best.gate_count = core.size();
    std::vector<gates::Gate> all = stripped.not_prefix;
    all.insert(all.end(), core.sequence().begin(), core.sequence().end());
    best.circuit = gates::Cascade(wires_, std::move(all));
  };

  if (entry->cost == 0) {
    consider(gates::Cascade(wires_));
    return best;
  }
  // Every stored realization of the core is a candidate: under non-uniform
  // costs the cheapest circuit need not be the shortest one, so the scan can
  // optionally continue past the minimal level into the deeper frontiers.
  const unsigned last =
      scan_deeper_levels ? fmcf_.levels_done() : entry->cost;
  for (unsigned k = entry->cost; k <= last; ++k) {
    for (const std::size_t row : fmcf_.implementations(stripped.core, k)) {
      consider(cached_witness(k, row));
    }
  }
  QSYN_CHECK(have_best, "a located core must have at least one witness row");
  return best;
}

template <typename Answer, typename Fn>
std::vector<Answer> CatalogServer::run_batch(
    const std::vector<perm::Permutation>& targets, const Fn& fn) const {
  std::vector<Answer> answers(targets.size());
  std::lock_guard guard(batch_mutex_);  // ThreadPool::run is not reentrant
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  pool_->run(targets.size(), [&](std::size_t i, std::size_t) {
    answers[i] = fn(targets[i]);
  });
  return answers;
}

std::vector<std::optional<CatalogAnswer>> CatalogServer::locate_batch(
    const std::vector<perm::Permutation>& targets) const {
  return run_batch<std::optional<CatalogAnswer>>(
      targets, [this](const perm::Permutation& t) { return locate(t); });
}

std::vector<std::optional<SynthesisResult>> CatalogServer::synthesize_batch(
    const std::vector<perm::Permutation>& targets) const {
  return run_batch<std::optional<SynthesisResult>>(
      targets, [this](const perm::Permutation& t) { return synthesize(t); });
}

CatalogServer::CacheStats CatalogServer::cache_stats() const {
  CacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  std::shared_lock lock(cache_mutex_);
  stats.entries = witness_cache_.size();
  return stats;
}

}  // namespace qsyn::synth
