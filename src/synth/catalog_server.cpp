#include "synth/catalog_server.h"

#include <utility>

#include "common/error.h"
#include "common/thread_pool.h"

namespace qsyn::synth {

namespace {

// Cache key: one word per (level, row). Frontier rows are indices into
// stores of at most a few hundred million rows, so 48 bits are ample.
std::uint64_t witness_key(unsigned cost, std::size_t row) {
  QSYN_CHECK(row < (std::uint64_t(1) << 48), "frontier row exceeds cache key");
  return static_cast<std::uint64_t>(cost) << 48 | row;
}

}  // namespace

/// The seam adapter behind CatalogServer::as_backend(): stored-answer
/// serving (plus the server's fallback) as a SynthesisBackend.
class CatalogBackend final : public SynthesisBackend {
 public:
  explicit CatalogBackend(CatalogServer& server) : server_(&server) {}

  [[nodiscard]] const gates::GateLibrary& library() const override {
    return server_->enumerator().library();
  }

  [[nodiscard]] unsigned max_cost() const override {
    return server_->enumerator().levels_done();
  }

  [[nodiscard]] BackendInfo info() const override {
    BackendInfo info;
    info.name = "catalog";
    info.exact = true;
    // The catalog itself never deepens; a plugged-in fallback does fresh
    // work on a miss on the server's behalf.
    info.deepens_on_miss = server_->has_fallback();
    info.enumerates_implementations = true;
    info.max_cost = max_cost();
    info.library_fingerprint = library().fingerprint();
    info.domain_fingerprint = library().domain().fingerprint();
    return info;
  }

  [[nodiscard]] std::optional<BackendAnswer> locate(
      const perm::Permutation& target) override {
    if (const auto entry = server_->locate(target); entry.has_value()) {
      BackendAnswer answer;
      answer.cost = entry->cost;
      answer.not_prefix = entry->not_prefix;
      return answer;
    }
    const auto result = server_->fallback_synthesize(target);
    if (!result.has_value()) return std::nullopt;
    BackendAnswer answer;
    answer.cost = result->cost;
    answer.not_prefix = result->not_prefix;
    return answer;
  }

  [[nodiscard]] std::optional<SynthesisResult> synthesize(
      const perm::Permutation& target) override {
    return server_->synthesize(target);
  }

  [[nodiscard]] std::vector<std::optional<SynthesisResult>> synthesize_batch(
      const std::vector<perm::Permutation>& targets) override {
    return server_->synthesize_batch(targets);
  }

 private:
  CatalogServer* server_;  // outlives the adapter (documented contract)
};

CatalogServer::CatalogServer(FmcfEnumerator enumerator,
                             CatalogServerOptions options)
    : fmcf_(std::move(enumerator)),
      options_(options),
      wires_(fmcf_.library().domain().wires()) {}

CatalogServer::~CatalogServer() = default;

CatalogServer CatalogServer::open(const std::string& path,
                                  const gates::GateLibrary& library,
                                  CatalogServerOptions options) {
  return CatalogServer(FmcfEnumerator::open_catalog(path, library), options);
}

void CatalogServer::set_fallback(std::shared_ptr<SynthesisBackend> fallback) {
  if (fallback != nullptr) {
    const BackendInfo info = fallback->info();
    QSYN_CHECK(info.library_fingerprint == fmcf_.library().fingerprint() &&
                   info.domain_fingerprint ==
                       fmcf_.library().domain().fingerprint(),
               "fallback backend serves a different library than the catalog");
  }
  std::lock_guard guard(fallback_mutex_);
  fallback_ = std::move(fallback);
}

bool CatalogServer::has_fallback() const {
  std::lock_guard guard(fallback_mutex_);
  return fallback_ != nullptr;
}

std::unique_ptr<SynthesisBackend> CatalogServer::as_backend() {
  return std::make_unique<CatalogBackend>(*this);
}

std::optional<SynthesisResult> CatalogServer::fallback_synthesize(
    const perm::Permutation& target) const {
  std::lock_guard guard(fallback_mutex_);
  if (fallback_ == nullptr) return std::nullopt;
  return fallback_->synthesize(target);
}

std::optional<CatalogAnswer> CatalogServer::locate(
    const perm::Permutation& target) const {
  NotStripped stripped = strip_not_prefix(wires_, target);
  const auto entry = fmcf_.find(stripped.core);
  if (!entry.has_value()) return std::nullopt;
  CatalogAnswer answer;
  answer.cost = entry->cost;
  answer.frontier_index = entry->frontier_index;
  answer.not_prefix = std::move(stripped.not_prefix);
  return answer;
}

gates::Cascade CatalogServer::cached_witness(unsigned cost,
                                             std::size_t row) const {
  if (options_.witness_cache_capacity == 0) {
    return fmcf_.witness_for_row(cost, row);
  }
  const std::uint64_t key = witness_key(cost, row);
  {
    // Both counters tick while the shared lock is held (atomics, since many
    // shared holders run concurrently), so cache_stats() can exclude every
    // in-flight update by taking the lock exclusively and read one
    // consistent snapshot.
    std::shared_lock lock(cache_mutex_);
    const auto it = witness_cache_.find(key);
    if (it != witness_cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // Back-walk outside any lock: reconstruction only reads immutable frontier
  // tables. Concurrent misses on the same row redo the walk; the first
  // emplace wins and the duplicates are dropped, which is cheaper than
  // holding a lock across the walk.
  gates::Cascade cascade = fmcf_.witness_for_row(cost, row);
  std::unique_lock lock(cache_mutex_);
  if (witness_cache_.size() < options_.witness_cache_capacity) {
    witness_cache_.emplace(key, cascade);
  }
  return cascade;
}

std::optional<SynthesisResult> CatalogServer::synthesize(
    const perm::Permutation& target) const {
  const NotStripped stripped = strip_not_prefix(wires_, target);
  const auto entry = fmcf_.find(stripped.core);
  if (!entry.has_value()) return fallback_synthesize(target);

  SynthesisResult result;
  result.not_prefix = stripped.not_prefix;
  result.core = entry->cost == 0
                    ? gates::Cascade(wires_)
                    : cached_witness(entry->cost, entry->frontier_index);
  result.cost = entry->cost;
  std::vector<gates::Gate> all = stripped.not_prefix;
  all.insert(all.end(), result.core.sequence().begin(),
             result.core.sequence().end());
  result.circuit = gates::Cascade(wires_, std::move(all));
  return result;
}

std::optional<WeightedCatalogAnswer> CatalogServer::locate_weighted(
    const perm::Permutation& target, const gates::CostModel& model,
    bool scan_deeper_levels) const {
  const NotStripped stripped = strip_not_prefix(wires_, target);
  const auto entry = fmcf_.find(stripped.core);
  if (!entry.has_value()) {
    // Beyond the stored levels: the fallback backend's witness is the one
    // candidate (one minimal-gate-count cascade, not a scan of alternatives).
    const auto result = fallback_synthesize(target);
    if (!result.has_value()) return std::nullopt;
    WeightedCatalogAnswer answer;
    answer.stopped = WeightedScanStop::kFallbackBackend;
    answer.gate_count = result->core.size();
    for (const gates::Gate& g : result->circuit.sequence()) {
      answer.model_cost += g.cost(model);
    }
    answer.circuit = result->circuit;
    return answer;
  }

  unsigned prefix_cost = 0;
  for (const gates::Gate& g : stripped.not_prefix) prefix_cost += g.cost(model);

  WeightedCatalogAnswer best;
  bool have_best = false;
  const auto consider = [&](const gates::Cascade& core) {
    unsigned cost = prefix_cost;
    for (const gates::Gate& g : core.sequence()) cost += g.cost(model);
    if (have_best && cost >= best.model_cost) return;
    have_best = true;
    best.model_cost = cost;
    best.gate_count = core.size();
    std::vector<gates::Gate> all = stripped.not_prefix;
    all.insert(all.end(), core.sequence().begin(), core.sequence().end());
    best.circuit = gates::Cascade(wires_, std::move(all));
  };

  if (entry->cost == 0) {
    consider(gates::Cascade(wires_));
    // The empty core is the global optimum: every alternative realization
    // adds gates of nonnegative cost to the same NOT prefix.
    best.stopped = WeightedScanStop::kExhausted;
    return best;
  }
  // Every stored realization of the core is a candidate: under non-uniform
  // costs the cheapest circuit need not be the shortest one, so the scan can
  // optionally continue past the minimal level into the deeper frontiers.
  const unsigned last =
      scan_deeper_levels ? fmcf_.levels_done() : entry->cost;
  for (unsigned k = entry->cost; k <= last; ++k) {
    for (const std::size_t row : fmcf_.implementations(stripped.core, k)) {
      consider(cached_witness(k, row));
    }
  }
  QSYN_CHECK(have_best, "a located core must have at least one witness row");
  if (!scan_deeper_levels) {
    best.stopped = WeightedScanStop::kMinimalLevelOnly;
  } else if (fmcf_.saturated()) {
    best.stopped = WeightedScanStop::kExhausted;
  } else {
    best.stopped = WeightedScanStop::kStoredDepthLimit;
  }
  return best;
}

template <typename Answer, typename Fn>
std::vector<Answer> CatalogServer::run_batch(
    const std::vector<perm::Permutation>& targets, const Fn& fn) const {
  std::vector<Answer> answers(targets.size());
  std::lock_guard guard(batch_mutex_);  // ThreadPool::run is not reentrant
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  pool_->run(targets.size(), [&](std::size_t i, std::size_t) {
    answers[i] = fn(targets[i]);
  });
  return answers;
}

std::vector<std::optional<CatalogAnswer>> CatalogServer::locate_batch(
    const std::vector<perm::Permutation>& targets) const {
  return run_batch<std::optional<CatalogAnswer>>(
      targets, [this](const perm::Permutation& t) { return locate(t); });
}

std::vector<std::optional<SynthesisResult>> CatalogServer::synthesize_batch(
    const std::vector<perm::Permutation>& targets) const {
  return run_batch<std::optional<SynthesisResult>>(
      targets, [this](const perm::Permutation& t) { return synthesize(t); });
}

CatalogServer::CacheStats CatalogServer::cache_stats() const {
  // Exclusive lock: counter updates happen under the shared lock, so this
  // snapshot sees hits + misses == completed lookups and an entry count from
  // the same instant — two independently-read counters could disagree with
  // each other and with the map.
  std::unique_lock lock(cache_mutex_);
  CacheStats stats;
  stats.hits = cache_hits_.load(std::memory_order_relaxed);
  stats.misses = cache_misses_.load(std::memory_order_relaxed);
  stats.entries = witness_cache_.size();
  return stats;
}

}  // namespace qsyn::synth
