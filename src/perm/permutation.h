// qsyn/perm/permutation.h
//
// Finite permutations on {1, 2, ..., n} with the composition convention used
// by the paper (and by GAP): the product a*b means "apply a first, then b",
// i.e. (a*b)(s) = b(a(s)).
//
// Points are 1-based in the public API (matching the paper's labels and cycle
// notation) and 0-based in internal storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace qsyn::perm {

/// A permutation of {1, ..., degree()}.
class Permutation {
 public:
  /// The identity on zero points (degree 0). Acts as identity everywhere.
  Permutation() = default;

  /// Identity on {1, ..., n}.
  static Permutation identity(std::size_t n);

  /// From the image table: images[i] is the (1-based) image of point i+1.
  static Permutation from_images(std::vector<std::uint32_t> images);

  /// From 0-based images (convenience for packed/array call sites).
  static Permutation from_images0(const std::vector<std::uint32_t>& images0);

  /// Parses disjoint-cycle notation, e.g. "(3,7,4,8)" or
  /// "(5,17,7,21)(6,18,8,22)"; "()" is the identity. `n` may be 0 to infer the
  /// degree as the largest point mentioned. Throws qsyn::ParseError on
  /// malformed text or repeated points.
  static Permutation from_cycles(const std::string& text, std::size_t n = 0);

  /// Transposition (a b) on {1..n}.
  static Permutation transposition(std::size_t n, std::uint32_t a,
                                   std::uint32_t b);

  [[nodiscard]] std::size_t degree() const { return images_.size(); }

  /// Image of 1-based point `s`; points beyond the degree are fixed.
  [[nodiscard]] std::uint32_t apply(std::uint32_t s) const;
  std::uint32_t operator()(std::uint32_t s) const { return apply(s); }

  /// Image of a set of 1-based points.
  [[nodiscard]] std::vector<std::uint32_t> apply_set(
      const std::vector<std::uint32_t>& points) const;

  /// Paper/GAP convention: (a*b)(s) = b(a(s)) — a first, then b.
  friend Permutation operator*(const Permutation& a, const Permutation& b);

  [[nodiscard]] Permutation inverse() const;

  /// k-fold product of *this* with itself; k >= 0.
  [[nodiscard]] Permutation power(std::size_t k) const;

  /// Multiplicative order (smallest k >= 1 with p^k = identity).
  [[nodiscard]] std::size_t order() const;

  [[nodiscard]] bool is_identity() const;

  /// +1 for even permutations, -1 for odd.
  [[nodiscard]] int sign() const;

  /// 1-based points not fixed by the permutation, ascending.
  [[nodiscard]] std::vector<std::uint32_t> support() const;

  /// 1-based fixed points within {1..degree()}, ascending.
  [[nodiscard]] std::vector<std::uint32_t> fixed_points() const;

  /// True iff p(S) = S as sets (S given as 1-based points).
  [[nodiscard]] bool stabilizes_set(const std::vector<std::uint32_t>& s) const;

  /// The paper's Restrictedperm(b, S) for S = {1..k}: requires b({1..k}) =
  /// {1..k} and returns the induced permutation on {1..k}. Throws
  /// qsyn::LogicError if the prefix is not stabilized.
  [[nodiscard]] Permutation restricted_to_prefix(std::size_t k) const;

  /// Extends (pads) to degree n >= degree() by fixing the new points.
  [[nodiscard]] Permutation extended_to(std::size_t n) const;

  /// Disjoint-cycle rendering, fixed points omitted; identity is "()".
  [[nodiscard]] std::string to_cycle_string() const;

  /// Cycle type as a sorted (descending) list of cycle lengths >= 2.
  [[nodiscard]] std::vector<std::size_t> cycle_type() const;

  /// Raw image table (0-based internally converted to 1-based images).
  [[nodiscard]] const std::vector<std::uint32_t>& images1() const {
    return images_;
  }

  friend bool operator==(const Permutation& a, const Permutation& b);
  friend bool operator!=(const Permutation& a, const Permutation& b) {
    return !(a == b);
  }
  /// Lexicographic order on padded image tables (for use in sorted sets).
  friend bool operator<(const Permutation& a, const Permutation& b);

 private:
  // images_[i] is the 1-based image of 1-based point (i+1).
  std::vector<std::uint32_t> images_;
};

/// Hash functor so Permutation can key unordered containers.
struct PermutationHash {
  std::size_t operator()(const Permutation& p) const;
};

}  // namespace qsyn::perm
