#include "perm/permutation.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace qsyn::perm {

Permutation Permutation::identity(std::size_t n) {
  Permutation p;
  p.images_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.images_[i] = static_cast<std::uint32_t>(i + 1);
  }
  return p;
}

Permutation Permutation::from_images(std::vector<std::uint32_t> images) {
  const std::size_t n = images.size();
  std::vector<bool> hit(n, false);
  for (const std::uint32_t img : images) {
    QSYN_CHECK(img >= 1 && img <= n, "image out of range in from_images");
    QSYN_CHECK(!hit[img - 1], "duplicate image in from_images");
    hit[img - 1] = true;
  }
  Permutation p;
  p.images_ = std::move(images);
  return p;
}

Permutation Permutation::from_images0(
    const std::vector<std::uint32_t>& images0) {
  std::vector<std::uint32_t> images1(images0.size());
  for (std::size_t i = 0; i < images0.size(); ++i) images1[i] = images0[i] + 1;
  return from_images(std::move(images1));
}

Permutation Permutation::from_cycles(const std::string& text, std::size_t n) {
  const std::string_view body = qsyn::trim(text);
  // First pass: parse cycles as integer lists.
  std::vector<std::vector<std::uint32_t>> cycles;
  std::size_t max_point = 0;
  std::size_t pos = 0;
  while (pos < body.size()) {
    if (std::isspace(static_cast<unsigned char>(body[pos])) != 0) {
      ++pos;
      continue;
    }
    if (body[pos] != '(') {
      throw qsyn::ParseError("expected '(' in cycle notation: " + text);
    }
    const std::size_t close = body.find(')', pos);
    if (close == std::string_view::npos) {
      throw qsyn::ParseError("unbalanced '(' in cycle notation: " + text);
    }
    const std::string_view inner = body.substr(pos + 1, close - pos - 1);
    pos = close + 1;
    if (qsyn::trim(inner).empty()) continue;  // "()" = identity cycle
    std::vector<std::uint32_t> cycle;
    for (const std::string& piece : qsyn::split(inner, ',')) {
      if (piece.empty()) {
        throw qsyn::ParseError("empty element in cycle notation: " + text);
      }
      std::size_t parsed = 0;
      unsigned long value = 0;
      try {
        value = std::stoul(piece, &parsed);
      } catch (const std::exception&) {
        throw qsyn::ParseError("bad integer '" + piece + "' in " + text);
      }
      if (parsed != piece.size() || value == 0) {
        throw qsyn::ParseError("bad point '" + piece + "' in " + text);
      }
      cycle.push_back(static_cast<std::uint32_t>(value));
      max_point = std::max<std::size_t>(max_point, value);
    }
    cycles.push_back(std::move(cycle));
  }
  const std::size_t degree = (n == 0) ? max_point : n;
  if (n != 0 && max_point > n) {
    throw qsyn::ParseError("cycle mentions point beyond requested degree");
  }
  Permutation p = identity(degree);
  std::vector<bool> used(degree, false);
  for (const auto& cycle : cycles) {
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const std::uint32_t from = cycle[i];
      const std::uint32_t to = cycle[(i + 1) % cycle.size()];
      if (used[from - 1]) {
        throw qsyn::ParseError("point repeated across cycles in " + text);
      }
      used[from - 1] = true;
      p.images_[from - 1] = to;
    }
  }
  return p;
}

Permutation Permutation::transposition(std::size_t n, std::uint32_t a,
                                       std::uint32_t b) {
  QSYN_CHECK(a >= 1 && a <= n && b >= 1 && b <= n && a != b,
             "bad transposition points");
  Permutation p = identity(n);
  std::swap(p.images_[a - 1], p.images_[b - 1]);
  return p;
}

std::uint32_t Permutation::apply(std::uint32_t s) const {
  QSYN_CHECK(s >= 1, "points are 1-based");
  if (s > images_.size()) return s;  // points beyond the degree are fixed
  return images_[s - 1];
}

std::vector<std::uint32_t> Permutation::apply_set(
    const std::vector<std::uint32_t>& points) const {
  std::vector<std::uint32_t> out;
  out.reserve(points.size());
  for (const std::uint32_t s : points) out.push_back(apply(s));
  std::sort(out.begin(), out.end());
  return out;
}

Permutation operator*(const Permutation& a, const Permutation& b) {
  const std::size_t n = std::max(a.degree(), b.degree());
  Permutation p;
  p.images_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    p.images_[i] = b.apply(a.apply(static_cast<std::uint32_t>(i + 1)));
  }
  return p;
}

Permutation Permutation::inverse() const {
  Permutation p;
  p.images_.resize(images_.size());
  for (std::size_t i = 0; i < images_.size(); ++i) {
    p.images_[images_[i] - 1] = static_cast<std::uint32_t>(i + 1);
  }
  return p;
}

Permutation Permutation::power(std::size_t k) const {
  Permutation result = identity(degree());
  Permutation base = *this;
  while (k > 0) {
    if ((k & 1U) != 0) result = result * base;
    base = base * base;
    k >>= 1U;
  }
  return result;
}

std::size_t Permutation::order() const {
  // lcm of cycle lengths.
  std::size_t result = 1;
  for (const std::size_t len : cycle_type()) {
    const std::size_t g = [](std::size_t a, std::size_t b) {
      while (b != 0) {
        a %= b;
        std::swap(a, b);
      }
      return a;
    }(result, len);
    result = result / g * len;
  }
  return result;
}

bool Permutation::is_identity() const {
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (images_[i] != i + 1) return false;
  }
  return true;
}

int Permutation::sign() const {
  int sign = 1;
  for (const std::size_t len : cycle_type()) {
    if (len % 2 == 0) sign = -sign;
  }
  return sign;
}

std::vector<std::uint32_t> Permutation::support() const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (images_[i] != i + 1) out.push_back(static_cast<std::uint32_t>(i + 1));
  }
  return out;
}

std::vector<std::uint32_t> Permutation::fixed_points() const {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (images_[i] == i + 1) out.push_back(static_cast<std::uint32_t>(i + 1));
  }
  return out;
}

bool Permutation::stabilizes_set(const std::vector<std::uint32_t>& s) const {
  std::vector<std::uint32_t> sorted = s;
  std::sort(sorted.begin(), sorted.end());
  return apply_set(s) == sorted;
}

Permutation Permutation::restricted_to_prefix(std::size_t k) const {
  std::vector<std::uint32_t> images(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t img = apply(static_cast<std::uint32_t>(i + 1));
    QSYN_CHECK(img >= 1 && img <= k,
               "restricted_to_prefix: permutation does not stabilize {1..k}");
    images[i] = img;
  }
  return from_images(std::move(images));
}

Permutation Permutation::extended_to(std::size_t n) const {
  QSYN_CHECK(n >= degree(), "extended_to cannot shrink a permutation");
  Permutation p = *this;
  p.images_.reserve(n);
  for (std::size_t i = degree(); i < n; ++i) {
    p.images_.push_back(static_cast<std::uint32_t>(i + 1));
  }
  return p;
}

std::string Permutation::to_cycle_string() const {
  std::ostringstream os;
  std::vector<bool> seen(images_.size(), false);
  bool any = false;
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (seen[i] || images_[i] == i + 1) continue;
    any = true;
    os << '(';
    std::size_t j = i;
    bool first = true;
    while (!seen[j]) {
      seen[j] = true;
      if (!first) os << ',';
      os << (j + 1);
      first = false;
      j = images_[j] - 1;
    }
    os << ')';
  }
  if (!any) return "()";
  return os.str();
}

std::vector<std::size_t> Permutation::cycle_type() const {
  std::vector<std::size_t> lengths;
  std::vector<bool> seen(images_.size(), false);
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (seen[i] || images_[i] == i + 1) continue;
    std::size_t len = 0;
    std::size_t j = i;
    while (!seen[j]) {
      seen[j] = true;
      ++len;
      j = images_[j] - 1;
    }
    lengths.push_back(len);
  }
  std::sort(lengths.rbegin(), lengths.rend());
  return lengths;
}

bool operator==(const Permutation& a, const Permutation& b) {
  const std::size_t n = std::max(a.degree(), b.degree());
  for (std::size_t s = 1; s <= n; ++s) {
    if (a.apply(static_cast<std::uint32_t>(s)) !=
        b.apply(static_cast<std::uint32_t>(s))) {
      return false;
    }
  }
  return true;
}

bool operator<(const Permutation& a, const Permutation& b) {
  const std::size_t n = std::max(a.degree(), b.degree());
  for (std::size_t s = 1; s <= n; ++s) {
    const std::uint32_t ia = a.apply(static_cast<std::uint32_t>(s));
    const std::uint32_t ib = b.apply(static_cast<std::uint32_t>(s));
    if (ia != ib) return ia < ib;
  }
  return false;
}

std::size_t PermutationHash::operator()(const Permutation& p) const {
  // FNV-1a over the image table, skipping trailing fixed points so equal
  // permutations of different declared degrees hash identically.
  std::size_t n = p.degree();
  while (n > 0 && p.apply(static_cast<std::uint32_t>(n)) == n) --n;
  std::size_t h = 1469598103934665603ULL;
  for (std::size_t s = 1; s <= n; ++s) {
    h ^= p.apply(static_cast<std::uint32_t>(s));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace qsyn::perm
