// qsyn/perm/cosets.h
//
// Left-coset utilities used to verify the paper's Theorem 2:
//   H = ∪_{a∈N} a*G  with pairwise disjoint cosets,
// where N is the group realized by NOT gates (order 2^n) and G the set of
// circuits realized by controlled-V/V+/Feynman gates only.
//
// With the paper's composition convention (a*g = apply a then g), the left
// coset of G by a is a*G = { a*g : g in G }, and b ∈ a*G iff a^{-1}*b ∈ G.
#pragma once

#include <vector>

#include "perm/perm_group.h"
#include "perm/permutation.h"

namespace qsyn::perm {

/// True iff a and b represent the same left coset of `group`.
bool same_left_coset(const Permutation& a, const Permutation& b,
                     const PermGroup& group);

/// True iff element ∈ rep*group.
bool in_left_coset(const Permutation& element, const Permutation& rep,
                   const PermGroup& group);

/// Verifies that {rep*group : rep in reps} partitions `parent`:
///  * cosets are pairwise disjoint,
///  * |reps| * |group| == |parent|,
///  * every rep*generator stays inside parent.
/// Returns false (rather than throwing) when any condition fails.
bool cosets_partition_group(const std::vector<Permutation>& reps,
                            const PermGroup& group, const PermGroup& parent);

/// Distinct left-coset representatives of `group` inside `parent`
/// (parent must be enumerable; intended for small degree-8 groups).
std::vector<Permutation> left_coset_representatives(const PermGroup& group,
                                                    const PermGroup& parent,
                                                    std::size_t limit = 1u
                                                                        << 20);

}  // namespace qsyn::perm
