#include "perm/cosets.h"

#include "common/error.h"

namespace qsyn::perm {

bool same_left_coset(const Permutation& a, const Permutation& b,
                     const PermGroup& group) {
  return group.contains(a.inverse() * b);
}

bool in_left_coset(const Permutation& element, const Permutation& rep,
                   const PermGroup& group) {
  return group.contains(rep.inverse() * element);
}

bool cosets_partition_group(const std::vector<Permutation>& reps,
                            const PermGroup& group, const PermGroup& parent) {
  // Every representative must lie in the parent.
  for (const auto& rep : reps) {
    if (!parent.contains(rep)) return false;
  }
  // Pairwise disjoint: distinct reps must represent distinct cosets.
  for (std::size_t i = 0; i < reps.size(); ++i) {
    for (std::size_t j = i + 1; j < reps.size(); ++j) {
      if (same_left_coset(reps[i], reps[j], group)) return false;
    }
  }
  // The subgroup must sit inside the parent.
  if (!parent.contains_group(group)) return false;
  // Counting: |reps| * |group| must equal |parent| for a partition.
  return reps.size() * group.order() == parent.order();
}

std::vector<Permutation> left_coset_representatives(const PermGroup& group,
                                                    const PermGroup& parent,
                                                    std::size_t limit) {
  QSYN_CHECK(parent.contains_group(group),
             "coset representatives require group <= parent");
  std::vector<Permutation> reps;
  for (const auto& element : parent.elements(limit)) {
    bool found = false;
    for (const auto& rep : reps) {
      if (same_left_coset(rep, element, group)) {
        found = true;
        break;
      }
    }
    if (!found) reps.push_back(element);
  }
  return reps;
}

}  // namespace qsyn::perm
