#include "perm/perm_group.h"

#include <algorithm>

#include "common/error.h"

__extension__ typedef unsigned __int128 qsyn_u128;

namespace qsyn::perm {

// Implementation notes.
//
// We keep a base b_0, b_1, ... and one global strong generating set. The
// generator set of level i is { strong generators fixing b_0 .. b_{i-1} }
// (checked directly, so the sets are correctly nested), and the level-i
// transversal is the orbit of b_i under that set. Construction runs the
// classic Schreier-Sims fixpoint: test every Schreier generator of every
// level, sift it through the deeper levels, and absorb any non-trivial
// residual as a new strong generator until everything sifts to the identity.
// Deterministic and comfortably fast for the degree <= 40 groups used here.

PermGroup::PermGroup(std::size_t degree) : degree_(degree) {}

PermGroup::PermGroup(const std::vector<Permutation>& generators) {
  degree_ = 0;
  for (const auto& g : generators) degree_ = std::max(degree_, g.degree());
  for (const auto& g : generators) {
    if (!g.is_identity()) generators_.push_back(g.extended_to(degree_));
  }
  for (const auto& g : generators_) insert_strong(g);
  if (!levels_.empty()) schreier_sims(0);
}

PermGroup PermGroup::symmetric(std::size_t n) {
  std::vector<Permutation> gens;
  for (std::uint32_t i = 1; i + 1 <= n; ++i) {
    gens.push_back(Permutation::transposition(n, i, i + 1));
  }
  if (gens.empty()) return PermGroup(n);
  return PermGroup(gens);
}

PermGroup PermGroup::alternating(std::size_t n) {
  std::vector<Permutation> gens;
  for (std::uint32_t i = 1; i + 2 <= n; ++i) {
    gens.push_back(
        Permutation::from_cycles("(" + std::to_string(i) + "," +
                                     std::to_string(i + 1) + "," +
                                     std::to_string(i + 2) + ")",
                                 n));
  }
  if (gens.empty()) return PermGroup(n);
  return PermGroup(gens);
}

void PermGroup::rebuild_orbit(std::size_t level_index) {
  Level& level = levels_[level_index];
  // Level generators: every strong generator fixing all earlier base points.
  level.gens.clear();
  for (const Level& other : levels_) {
    for (const Permutation& gen : other.gens_owned) {
      bool fixes_prefix = true;
      for (std::size_t j = 0; j < level_index && fixes_prefix; ++j) {
        fixes_prefix = gen.apply(levels_[j].base_point) ==
                       levels_[j].base_point;
      }
      if (fixes_prefix) level.gens.push_back(gen);
    }
  }
  level.transversal.clear();
  level.transversal.emplace(level.base_point, Permutation::identity(degree_));
  std::vector<std::uint32_t> frontier = {level.base_point};
  while (!frontier.empty()) {
    std::vector<std::uint32_t> next;
    for (const std::uint32_t point : frontier) {
      const Permutation rep = level.transversal.at(point);
      for (const Permutation& gen : level.gens) {
        const std::uint32_t image = gen.apply(point);
        if (level.transversal.find(image) == level.transversal.end()) {
          level.transversal.emplace(image, rep * gen);
          next.push_back(image);
        }
      }
    }
    frontier = std::move(next);
  }
}

std::pair<Permutation, std::size_t> PermGroup::sift(Permutation g,
                                                    std::size_t start) const {
  for (std::size_t i = start; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    const std::uint32_t image = g.apply(level.base_point);
    const auto it = level.transversal.find(image);
    if (it == level.transversal.end()) return {std::move(g), i};
    g = g * it->second.inverse();
    if (g.is_identity()) return {std::move(g), levels_.size()};
  }
  return {std::move(g), levels_.size()};
}

void PermGroup::extend_base_for(const Permutation& g) {
  for (const Level& level : levels_) {
    if (g.apply(level.base_point) != level.base_point) return;
  }
  const auto support = g.support();
  if (support.empty()) return;  // identity needs no base point
  Level level;
  level.base_point = support.front();
  levels_.push_back(std::move(level));
}

void PermGroup::insert_strong(const Permutation& g) {
  if (g.is_identity()) return;
  extend_base_for(g);
  std::size_t home = 0;
  while (home < levels_.size() &&
         g.apply(levels_[home].base_point) == levels_[home].base_point) {
    ++home;
  }
  QSYN_CHECK(home < levels_.size(),
             "non-identity generator must move some base point");
  levels_[home].gens_owned.push_back(g);
}

void PermGroup::schreier_sims(std::size_t /*unused*/) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < levels_.size(); ++i) rebuild_orbit(i);
    for (std::size_t i = levels_.size(); i > 0 && !changed; --i) {
      const std::size_t li = i - 1;
      const Level& level = levels_[li];
      for (const auto& [point, rep] : level.transversal) {
        for (const Permutation& gen : level.gens) {
          const Permutation to_rep =
              level.transversal.at(gen.apply(point)).inverse();
          const Permutation schreier = rep * gen * to_rep;
          if (schreier.is_identity()) continue;
          auto [residual, stop] = sift(schreier, li + 1);
          (void)stop;
          if (residual.is_identity()) continue;
          insert_strong(residual);
          changed = true;
          break;
        }
        if (changed) break;
      }
    }
  }
}

std::uint64_t PermGroup::order() const {
  qsyn_u128 total = 1;
  for (const Level& level : levels_) {
    total *= static_cast<qsyn_u128>(level.transversal.size());
    QSYN_CHECK(total <= static_cast<qsyn_u128>(UINT64_MAX),
               "group order exceeds 64 bits; use order_string()");
  }
  return static_cast<std::uint64_t>(total);
}

std::string PermGroup::order_string() const {
  qsyn_u128 total = 1;
  for (const Level& level : levels_) {
    total *= static_cast<qsyn_u128>(level.transversal.size());
  }
  if (total == 0) return "0";
  std::string out;
  while (total > 0) {
    out.insert(out.begin(),
               static_cast<char>('0' + static_cast<int>(total % 10)));
    total /= 10;
  }
  return out;
}

bool PermGroup::contains(const Permutation& g) const {
  if (g.degree() > degree_) {
    for (std::size_t s = degree_ + 1; s <= g.degree(); ++s) {
      if (g.apply(static_cast<std::uint32_t>(s)) != s) return false;
    }
  }
  auto [residual, level] =
      sift(g.degree() <= degree_ ? g.extended_to(degree_) : g);
  (void)level;
  return residual.is_identity();
}

bool PermGroup::contains_group(const PermGroup& other) const {
  for (const auto& g : other.generators()) {
    if (!contains(g)) return false;
  }
  return true;
}

bool PermGroup::equals(const PermGroup& other) const {
  return contains_group(other) && other.contains_group(*this) &&
         order_string() == other.order_string();
}

std::vector<std::uint32_t> PermGroup::orbit(std::uint32_t s) const {
  std::vector<std::uint32_t> result = {s};
  std::vector<bool> seen(degree_ + 1, false);
  if (s <= degree_) seen[s] = true;
  for (std::size_t i = 0; i < result.size(); ++i) {
    for (const Permutation& gen : generators_) {
      const std::uint32_t image = gen.apply(result[i]);
      if (image <= degree_ && !seen[image]) {
        seen[image] = true;
        result.push_back(image);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool PermGroup::fixes_point(std::uint32_t s) const {
  for (const Permutation& gen : generators_) {
    if (gen.apply(s) != s) return false;
  }
  return true;
}

std::vector<Permutation> PermGroup::elements(std::size_t limit) const {
  QSYN_CHECK(order() <= limit, "group too large to enumerate");
  std::vector<Permutation> out = {Permutation::identity(degree_)};
  // Sifting factors every element uniquely as u_{k-1} * ... * u_0 with u_i
  // in the level-i transversal, so products built level by level from level
  // 0 outward enumerate each element exactly once.
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    std::vector<Permutation> next;
    next.reserve(out.size() * level.transversal.size());
    for (const auto& [point, rep] : level.transversal) {
      for (const auto& tail : out) {
        next.push_back(rep * tail);
      }
    }
    out = std::move(next);
  }
  return out;
}

std::vector<std::uint32_t> PermGroup::base() const {
  std::vector<std::uint32_t> out;
  out.reserve(levels_.size());
  for (const Level& level : levels_) out.push_back(level.base_point);
  return out;
}

}  // namespace qsyn::perm
