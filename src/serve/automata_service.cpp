#include "serve/automata_service.h"

#include <complex>
#include <cstddef>
#include <deque>
#include <utility>

#include "automata/measurement.h"
#include "la/vector.h"
#include "mvl/pattern.h"

namespace qsyn::serve {

namespace {

std::vector<double> probabilities(const la::Vector& amplitudes) {
  std::vector<double> probs(amplitudes.size());
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = std::norm(amplitudes[i]);
  }
  return probs;
}

}  // namespace

AutomataService::AutomataService() : AutomataService(Options{}) {}

AutomataService::AutomataService(Options options)
    : options_(options),
      engine_(std::make_unique<sim::BatchSimulator>(options.sim)),
      root_rng_(options.seed) {}

AutomataService::~AutomataService() = default;

std::uint64_t AutomataService::add_automaton(
    automata::QuantumAutomaton machine) {
  // Tenants are always served through the shared engine, so the machine must
  // not hold a Hilbert engine of its own (its backend setting is replaced by
  // the per-tenant one here).
  machine.set_measurement_backend(automata::MeasurementBackend::kMultiValued);
  std::lock_guard lock(tenants_mutex_);
  const std::uint64_t id = next_tenant_id_++;
  Tenant& tenant = tenants_[id];
  tenant.machine.emplace(std::move(machine));
  tenant.rng = root_rng_.split();
  return id;
}

std::uint64_t AutomataService::add_qrng(automata::ControlledQrng qrng) {
  std::lock_guard lock(tenants_mutex_);
  const std::uint64_t id = next_tenant_id_++;
  Tenant& tenant = tenants_[id];
  tenant.qrng.emplace(std::move(qrng));
  tenant.rng = root_rng_.split();
  return id;
}

bool AutomataService::remove_tenant(std::uint64_t id) {
  std::lock_guard lock(tenants_mutex_);
  return tenants_.erase(id) == 1;
}

std::size_t AutomataService::tenant_count() const {
  std::lock_guard lock(tenants_mutex_);
  return tenants_.size();
}

sim::UnitaryCache::Stats AutomataService::engine_cache_stats() const {
  return engine_->cache().stats();
}

Response AutomataService::submit(const Request& request) {
  Response response;
  Pending pending;
  pending.requests = &request;
  pending.count = 1;
  pending.responses = &response;
  pending.start_ns = metrics::now_ns();
  serve(pending);
  return response;
}

std::vector<Response> AutomataService::submit_batch(
    const std::vector<Request>& requests) {
  std::vector<Response> responses(requests.size());
  if (requests.empty()) return responses;
  Pending pending;
  pending.requests = requests.data();
  pending.count = requests.size();
  pending.responses = responses.data();
  pending.start_ns = metrics::now_ns();
  serve(pending);
  return responses;
}

void AutomataService::serve(Pending& pending) {
  std::unique_lock lock(queue_mutex_);
  queue_.push_back(&pending);
  // Leader/follower combining: while a combiner is active, park; it may
  // drain and answer this Pending, in which case there is nothing left to
  // do. Otherwise become the combiner and drain rounds until the queue is
  // empty (requests that arrive while a round is in flight coalesce into
  // the next round).
  while (combiner_active_ && !pending.done) queue_cv_.wait(lock);
  if (pending.done) return;
  combiner_active_ = true;
  std::vector<Pending*> round;
  while (!queue_.empty()) {
    round.clear();
    round.swap(queue_);
    lock.unlock();
    process_round(round);
    lock.lock();
    // done flips under the queue lock — the flag the followers' wait reads.
    for (Pending* p : round) p->done = true;
    queue_cv_.notify_all();
  }
  combiner_active_ = false;
  queue_cv_.notify_all();
}

std::vector<double> AutomataService::automaton_distribution(
    const Tenant& tenant, std::uint32_t word,
    const la::Vector* amplitudes) const {
  if (amplitudes != nullptr) return probabilities(*amplitudes);
  const gates::Cascade& circuit = tenant.machine->circuit();
  const mvl::Pattern output =
      circuit.apply(mvl::Pattern::from_binary(circuit.wires(), word));
  return automata::outcome_distribution(output);
}

void AutomataService::finish(const Item& item, Response&& response) {
  const std::uint64_t elapsed = metrics::now_ns() - item.start_ns;
  all_latency_.record_ns(elapsed);
  switch (item.request->kind) {
    case RequestKind::kStep:
      step_latency_.record_ns(elapsed);
      break;
    case RequestKind::kSample:
      sample_latency_.record_ns(elapsed);
      break;
    case RequestKind::kDistribution:
      distribution_latency_.record_ns(elapsed);
      break;
    case RequestKind::kSetBackend:
      break;
  }
  if (response.status == ResponseStatus::kOk) {
    requests_.add();
  } else {
    rejected_.add();
  }
  *item.response = std::move(response);
}

void AutomataService::process_round(const std::vector<Pending*>& round) {
  combine_rounds_.add();
  // Tenant state (automaton registers, rng streams, backends) mutates for
  // the whole round under the registry lock; it also pins every circuit the
  // engine reads.
  std::lock_guard tenants_lock(tenants_mutex_);

  // Per-tenant FIFO queues, tenants ordered by first appearance in the
  // round. Unknown tenants answer immediately.
  std::vector<std::uint64_t> order;
  std::unordered_map<std::uint64_t, std::deque<Item>> by_tenant;
  for (Pending* pending : round) {
    for (std::size_t i = 0; i < pending->count; ++i) {
      Item item;
      item.request = pending->requests + i;
      item.response = pending->responses + i;
      item.start_ns = pending->start_ns;
      if (tenants_.find(item.request->tenant) == tenants_.end()) {
        Response response;
        response.status = ResponseStatus::kUnknownTenant;
        finish(item, std::move(response));
        continue;
      }
      auto [it, inserted] = by_tenant.try_emplace(item.request->tenant);
      if (inserted) order.push_back(item.request->tenant);
      it->second.push_back(item);
    }
  }

  // Waves: one request per tenant per wave, so per-tenant order (and hence
  // each tenant's rng draw sequence) is independent of how requests packed
  // into batches, rounds, and waves.
  struct WaveEntry {
    Item item;
    Tenant* tenant = nullptr;
    std::uint32_t word = 0;       // engine/model input word
    std::ptrdiff_t job = -1;      // index into the wave's engine batch
    bool needs_random = false;    // kStep / kSample: one inverse-CDF draw
  };
  std::vector<WaveEntry> wave;
  std::vector<sim::SimJob> jobs;
  std::vector<la::Vector> outputs;
  bool live = !order.empty();
  while (live) {
    live = false;
    wave.clear();
    jobs.clear();
    waves_.add();
    for (const std::uint64_t id : order) {
      auto& queue = by_tenant[id];
      if (queue.empty()) continue;
      Item item = queue.front();
      queue.pop_front();
      if (!queue.empty()) live = true;

      Tenant& tenant = tenants_.at(id);
      const Request& request = *item.request;
      WaveEntry entry;
      entry.item = item;
      entry.tenant = &tenant;

      if (request.kind == RequestKind::kSetBackend) {
        tenant.backend = request.backend;
        Response response;
        response.status = ResponseStatus::kOk;
        finish(item, std::move(response));
        continue;
      }

      const bool is_automaton = tenant.machine.has_value();
      const gates::Cascade& circuit =
          is_automaton ? tenant.machine->circuit() : tenant.qrng->circuit();
      const std::size_t input_wires =
          is_automaton ? tenant.machine->input_wires() : circuit.wires();
      const bool kind_ok =
          request.kind == RequestKind::kDistribution ||
          (request.kind == RequestKind::kStep) == is_automaton;
      if (!kind_ok ||
          request.input_bits >= (std::uint64_t(1) << input_wires)) {
        Response response;
        response.status = ResponseStatus::kBadRequest;
        finish(item, std::move(response));
        continue;
      }

      entry.word = is_automaton
                       ? (tenant.machine->state()
                          << tenant.machine->input_wires()) |
                             request.input_bits
                       : request.input_bits;
      entry.needs_random = request.kind != RequestKind::kDistribution;
      if (tenant.backend == automata::MeasurementBackend::kHilbert) {
        entry.job = static_cast<std::ptrdiff_t>(jobs.size());
        jobs.push_back(sim::SimJob{&circuit, entry.word});
      }
      wave.push_back(entry);
    }

    // One engine call evaluates the whole wave's Hilbert jobs: circuits
    // shared by several tenants fold once (block-unitary cache) and jobs
    // GEMM-group and fan out across the engine pool.
    if (!jobs.empty()) {
      outputs = engine_->run(jobs);
      engine_batches_.add();
      engine_jobs_.add(jobs.size());
    }

    for (WaveEntry& entry : wave) {
      Tenant& tenant = *entry.tenant;
      const la::Vector* amplitudes =
          entry.job >= 0 ? &outputs[static_cast<std::size_t>(entry.job)]
                         : nullptr;
      std::vector<double> dist =
          tenant.machine.has_value()
              ? automaton_distribution(tenant, entry.word, amplitudes)
              : (amplitudes != nullptr
                     ? probabilities(*amplitudes)
                     : tenant.qrng->distribution(entry.word));
      Response response;
      response.status = ResponseStatus::kOk;
      if (entry.needs_random) {
        // One uniform draw per step/sample, from the tenant's own stream,
        // in the tenant's request order — the backend only chose how the
        // (identical, dyadic) distribution was computed.
        const std::uint32_t measured =
            automata::sample_index(dist, tenant.rng);
        response.word = measured;
        if (entry.item.request->kind == RequestKind::kStep) {
          tenant.machine->reset(measured >> tenant.machine->input_wires());
        }
      } else {
        response.distribution = std::move(dist);
      }
      finish(entry.item, std::move(response));
    }
  }
}

ServiceStats AutomataService::stats() const {
  ServiceStats stats;
  stats.requests = requests_.value();
  stats.rejected = rejected_.value();
  stats.combine_rounds = combine_rounds_.value();
  stats.waves = waves_.value();
  stats.engine_batches = engine_batches_.value();
  stats.engine_jobs = engine_jobs_.value();
  stats.all = all_latency_.snapshot();
  stats.step = step_latency_.snapshot();
  stats.sample = sample_latency_.snapshot();
  stats.distribution = distribution_latency_.snapshot();
  return stats;
}

}  // namespace qsyn::serve
