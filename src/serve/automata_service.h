// qsyn/serve/automata_service.h
//
// Multi-tenant serving front end for the automata layer (Figure 3 machines):
// N tenants — each a QuantumAutomaton or a ControlledQrng with its own
// reproducible Rng stream — multiplexed over ONE shared BatchSimulator
// engine and its block-unitary cache. Concurrent step / sample /
// distribution requests coalesce into batched engine calls, and every
// request reports through the common/metrics latency recorders.
//
// Batching model. submit() calls from any number of threads enqueue into a
// combining queue; one caller at a time elects itself the combiner, drains
// everything queued, and serves the whole batch. A batch is processed in
// *waves*: each wave takes the oldest pending request of every tenant, runs
// all of the wave's Hilbert-backend simulations as one BatchSimulator::run
// (folded circuits shared through the engine cache, jobs GEMM-grouped and
// fanned out), then finishes each request in order. Per-tenant request order
// is preserved exactly, which is what makes serving deterministic (below);
// cross-tenant batching is where the engine sharing pays.
//
// Determinism. Tenant streams split() off one root seed in add-order, and a
// step samples its outcome by inverse CDF from the tenant's *exact* joint
// output distribution — one uniform draw per step/sample regardless of
// backend. All amplitudes reachable from the paper's gate set are dyadic, so
// the kMultiValued and kHilbert distributions of a reasonable cascade are
// bit-identical, and therefore: same seed + same per-tenant request trace
// => identical per-tenant outcome streams, regardless of submitter thread
// count, batch boundaries, wave composition, engine thread count, or
// measurement backend (tested in tests/test_serve.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "automata/automaton.h"
#include "automata/qrng.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "sim/batch.h"

namespace qsyn::serve {

/// What a request asks of its tenant.
enum class RequestKind : std::uint8_t {
  /// One automaton cycle: measure, latch the state bits, return the full
  /// measured word. Automaton tenants only.
  kStep,
  /// One measured output word for the given input, no state. QRNG tenants
  /// only.
  kSample,
  /// The exact outcome distribution for the given input (automaton: over
  /// full output words from the tenant's current state; QRNG: over output
  /// words). Consumes no randomness.
  kDistribution,
  /// Switches the tenant's measurement backend mid-traffic (kMultiValued
  /// <-> kHilbert; either tenant type). Takes effect for every later
  /// request of that tenant, including later requests in the same batch.
  kSetBackend,
};

struct Request {
  RequestKind kind = RequestKind::kStep;
  std::uint64_t tenant = 0;
  std::uint32_t input_bits = 0;
  /// kSetBackend payload; ignored otherwise.
  automata::MeasurementBackend backend =
      automata::MeasurementBackend::kMultiValued;
};

enum class ResponseStatus : std::uint8_t {
  kOk,
  /// No tenant with that id (never added, or already removed).
  kUnknownTenant,
  /// Input bits out of range, or a kind the tenant cannot serve (kStep on a
  /// QRNG, kSample on an automaton).
  kBadRequest,
};

struct Response {
  ResponseStatus status = ResponseStatus::kBadRequest;
  /// kStep / kSample outcome word.
  std::uint32_t word = 0;
  /// kDistribution payload (empty otherwise).
  std::vector<double> distribution;
};

/// Service-wide counters plus per-kind latency snapshots (submit-to-response,
/// nanoseconds).
struct ServiceStats {
  std::uint64_t requests = 0;        // completed OK
  std::uint64_t rejected = 0;        // kUnknownTenant / kBadRequest
  std::uint64_t combine_rounds = 0;  // combiner drains of the submit queue
  std::uint64_t waves = 0;           // engine scheduling waves
  std::uint64_t engine_batches = 0;  // BatchSimulator::run calls
  std::uint64_t engine_jobs = 0;     // jobs across those calls
  metrics::LatencySnapshot all;
  metrics::LatencySnapshot step;
  metrics::LatencySnapshot sample;
  metrics::LatencySnapshot distribution;
};

/// The serving front end. Thread-safe throughout: submit()/submit_batch()
/// may be called from any thread concurrently with each other; tenant
/// add/remove serializes against in-flight batches.
class AutomataService {
 public:
  struct Options {
    /// Engine knobs of the one shared BatchSimulator.
    sim::SimOptions sim{};
    /// Root seed: tenant i's Rng is the i-th split() of this seed, in
    /// add-order, so one number reproduces every tenant stream.
    std::uint64_t seed = 0x5eedc0de5eedc0deULL;
  };

  AutomataService();  // = AutomataService(Options{})
  explicit AutomataService(Options options);
  ~AutomataService();

  AutomataService(const AutomataService&) = delete;
  AutomataService& operator=(const AutomataService&) = delete;

  /// Registers a tenant; returns its id (ids are never reused). The machine
  /// is served through the shared engine — its own measurement backend
  /// setting is ignored in favor of the per-tenant backend here.
  std::uint64_t add_automaton(automata::QuantumAutomaton machine);
  std::uint64_t add_qrng(automata::ControlledQrng qrng);

  /// Removes a tenant (false when unknown). In-flight batches complete
  /// first; later requests for the id answer kUnknownTenant.
  bool remove_tenant(std::uint64_t id);

  [[nodiscard]] std::size_t tenant_count() const;

  /// Serves one request, coalescing with concurrently submitted ones.
  [[nodiscard]] Response submit(const Request& request);

  /// Serves a batch (request order is per-tenant execution order),
  /// coalescing with concurrent submitters.
  [[nodiscard]] std::vector<Response> submit_batch(
      const std::vector<Request>& requests);

  /// The shared engine (its cache() carries the fold hit-rates the soak
  /// bench reports).
  [[nodiscard]] sim::BatchSimulator& engine() { return *engine_; }

  /// One consistent snapshot of the engine's block-unitary cache.
  [[nodiscard]] sim::UnitaryCache::Stats engine_cache_stats() const;

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Tenant {
    // Exactly one of machine / qrng is set.
    std::optional<automata::QuantumAutomaton> machine;
    std::optional<automata::ControlledQrng> qrng;
    automata::MeasurementBackend backend =
        automata::MeasurementBackend::kMultiValued;
    Rng rng{0};
  };

  /// One queued request with its response slot and arrival timestamp.
  struct Item {
    const Request* request = nullptr;
    Response* response = nullptr;
    std::uint64_t start_ns = 0;
  };

  /// A submit()/submit_batch() call parked in the combining queue.
  struct Pending {
    const Request* requests = nullptr;
    std::size_t count = 0;
    Response* responses = nullptr;
    std::uint64_t start_ns = 0;
    bool done = false;
  };

  void serve(Pending& pending);
  /// Serves a drained combine round (runs exclusively: one combiner at a
  /// time, under tenants_mutex_ for tenant state).
  void process_round(const std::vector<Pending*>& round);
  /// Exact joint output distribution of an automaton tenant for one input
  /// word, through the tenant's backend (kHilbert amplitudes may be handed
  /// in from the wave's batched engine run).
  [[nodiscard]] std::vector<double> automaton_distribution(
      const Tenant& tenant, std::uint32_t word,
      const la::Vector* amplitudes) const;
  void finish(const Item& item, Response&& response);

  Options options_;
  std::unique_ptr<sim::BatchSimulator> engine_;

  // Tenant registry + root rng; held across a whole combine round, and by
  // add/remove, so circuits stay pinned while the engine reads them.
  mutable std::mutex tenants_mutex_;
  std::unordered_map<std::uint64_t, Tenant> tenants_;
  Rng root_rng_;
  std::uint64_t next_tenant_id_ = 1;

  // Combining queue (leader/follower): submitters park a Pending; whoever
  // finds no active combiner drains the queue and serves, repeating until
  // the queue is empty, then hands off.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::vector<Pending*> queue_;
  bool combiner_active_ = false;

  // Observability (lock-free recorders; counters tick inside the round).
  metrics::LatencyRecorder all_latency_;
  metrics::LatencyRecorder step_latency_;
  metrics::LatencyRecorder sample_latency_;
  metrics::LatencyRecorder distribution_latency_;
  metrics::Counter requests_;
  metrics::Counter rejected_;
  metrics::Counter combine_rounds_;
  metrics::Counter waves_;
  metrics::Counter engine_batches_;
  metrics::Counter engine_jobs_;
};

}  // namespace qsyn::serve
