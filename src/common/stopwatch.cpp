#include "common/stopwatch.h"

namespace qsyn {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace qsyn
