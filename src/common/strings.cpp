#include "common/strings.h"

#include <cctype>

namespace qsyn {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = text.find(sep, pos);
    if (next == std::string_view::npos) {
      out.emplace_back(trim(text.substr(pos)));
      return out;
    }
    out.emplace_back(trim(text.substr(pos, next - pos)));
    pos = next + 1;
  }
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string pad_left(const std::string& value, std::size_t width) {
  if (value.size() >= width) return value;
  return std::string(width - value.size(), ' ') + value;
}

std::string pad_right(const std::string& value, std::size_t width) {
  if (value.size() >= width) return value;
  return value + std::string(width - value.size(), ' ');
}

}  // namespace qsyn
