#include "common/simd/kernels.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>

#include "common/env.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define QSYN_KERNELS_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define QSYN_KERNELS_NEON 1
#include <arm_neon.h>
#endif

namespace qsyn::simd {

namespace {

std::atomic<bool> g_force_scalar{false};

bool env_disables_simd() {
  static const bool disabled = [] {
    const char* env = std::getenv("QSYN_SIMD");
    if (env == nullptr || env[0] == '\0') return false;
    std::string value(env);
    for (char& ch : value) {
      ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    }
    if (value == "off" || value == "0" || value == "scalar" ||
        value == "false") {
      return true;
    }
    if (value == "on" || value == "1" || value == "auto" || value == "true") {
      return false;
    }
    warn_env_once("QSYN_SIMD", env,
                  "expected on/off (off, 0, scalar, false disable the "
                  "vectorized kernels)");
    return false;
  }();
  return disabled;
}

Engine hardware_engine() {
#if defined(QSYN_KERNELS_X86)
  static const Engine engine =
      __builtin_cpu_supports("avx2") ? Engine::kAvx2 : Engine::kScalar;
  return engine;
#elif defined(QSYN_KERNELS_NEON)
  return Engine::kNeon;
#else
  return Engine::kScalar;
#endif
}

}  // namespace

bool scalar_forced() {
  return g_force_scalar.load(std::memory_order_relaxed) || env_disables_simd();
}

void force_scalar(bool on) {
  g_force_scalar.store(on, std::memory_order_relaxed);
}

Engine active_engine() {
  return scalar_forced() ? Engine::kScalar : hardware_engine();
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kAvx2:
      return "avx2";
    case Engine::kNeon:
      return "neon";
    case Engine::kScalar:
      break;
  }
  return "scalar";
}

// --- row compares -----------------------------------------------------------

int compare_rows_scalar(const std::uint8_t* a, const std::uint8_t* b,
                        std::size_t stride) {
  return std::memcmp(a, b, stride);
}

#if defined(QSYN_KERNELS_X86)
namespace {

__attribute__((target("avx2"))) int compare_rows_avx2(const std::uint8_t* a,
                                                      const std::uint8_t* b,
                                                      std::size_t stride) {
  std::size_t i = 0;
  while (i + 32 <= stride) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const unsigned equal = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (equal != 0xFFFFFFFFu) {
      const std::size_t at = i + static_cast<std::size_t>(
                                     __builtin_ctz(~equal));
      return a[at] < b[at] ? -1 : 1;
    }
    i += 32;
  }
  if (i == stride) return 0;
  return std::memcmp(a + i, b + i, stride - i);
}

}  // namespace
#endif  // QSYN_KERNELS_X86

#if defined(QSYN_KERNELS_NEON)
namespace {

int compare_rows_neon(const std::uint8_t* a, const std::uint8_t* b,
                      std::size_t stride) {
  std::size_t i = 0;
  while (i + 16 <= stride) {
    const uint8x16_t va = vld1q_u8(a + i);
    const uint8x16_t vb = vld1q_u8(b + i);
    if (vminvq_u8(vceqq_u8(va, vb)) != 0xFF) {
      for (std::size_t j = i; j < i + 16; ++j) {
        if (a[j] != b[j]) return a[j] < b[j] ? -1 : 1;
      }
    }
    i += 16;
  }
  if (i == stride) return 0;
  return std::memcmp(a + i, b + i, stride - i);
}

}  // namespace
#endif  // QSYN_KERNELS_NEON

namespace {

using CompareFn = int (*)(const std::uint8_t*, const std::uint8_t*,
                          std::size_t);

/// The compare the current engine dispatches to; resolved once per set-
/// algebra call, not once per row.
CompareFn resolve_compare() {
  switch (active_engine()) {
#if defined(QSYN_KERNELS_X86)
    case Engine::kAvx2:
      return &compare_rows_avx2;
#endif
#if defined(QSYN_KERNELS_NEON)
    case Engine::kNeon:
      return &compare_rows_neon;
#endif
    default:
      return &compare_rows_scalar;
  }
}

}  // namespace

int compare_rows(const std::uint8_t* a, const std::uint8_t* b,
                 std::size_t stride) {
  return resolve_compare()(a, b, stride);
}

// --- sort_unique ------------------------------------------------------------

void sort_unique_rows_scalar(const std::uint8_t* rows, std::size_t count,
                             std::size_t stride,
                             std::vector<std::uint8_t>& out) {
  out.clear();
  if (count == 0) return;
  // Indirect sort: order row indices, then gather into the output buffer
  // (the historical FlatPermStore::sort_unique, kept as the reference).
  std::vector<std::uint32_t> order(count);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [rows, stride](std::uint32_t a, std::uint32_t b) {
              return std::memcmp(rows + std::size_t(a) * stride,
                                 rows + std::size_t(b) * stride, stride) < 0;
            });
  out.reserve(count * stride);
  const std::uint8_t* prev = nullptr;
  for (const std::uint32_t idx : order) {
    const std::uint8_t* r = rows + std::size_t(idx) * stride;
    if (prev != nullptr && std::memcmp(prev, r, stride) == 0) continue;
    out.insert(out.end(), r, r + stride);
    prev = out.data() + out.size() - stride;
  }
}

namespace {

/// Length of the common prefix of `a` and `b`, at most `limit` bytes.
std::size_t common_prefix(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t limit) {
  std::size_t p = 0;
  while (p + 8 <= limit) {
    std::uint64_t wa;
    std::uint64_t wb;
    std::memcpy(&wa, a + p, 8);
    std::memcpy(&wb, b + p, 8);
    if (wa != wb) {
      // Little-endian load: the lowest differing *byte* is the first one.
      return p + static_cast<std::size_t>(__builtin_ctzll(wa ^ wb)) / 8;
    }
    p += 8;
  }
  while (p < limit && a[p] == b[p]) ++p;
  return p;
}

struct RadixPair {
  std::uint64_t key;
  std::uint32_t index;
};

}  // namespace

void sort_unique_rows_radix(const std::uint8_t* rows, std::size_t count,
                            std::size_t stride,
                            std::vector<std::uint8_t>& out) {
  out.clear();
  if (count == 0) return;
  if (count == 1) {
    out.assign(rows, rows + stride);
    return;
  }

  // The key window must start at a true common prefix of every row — the
  // radix order below only sees the window, so any byte before it has to be
  // globally constant. One early-exiting scan against row 0 finds it.
  std::size_t lcp = stride;
  for (std::size_t i = 1; i < count && lcp > 0; ++i) {
    lcp = common_prefix(rows, rows + i * stride, lcp);
  }

  // 8-byte big-endian key window at the first discriminating byte: integer
  // key order == memcmp order of bytes [lcp, lcp + 8).
  const std::size_t window = std::min<std::size_t>(8, stride - lcp);
  std::vector<RadixPair> pairs(count);
  std::vector<RadixPair> scratch(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint8_t* at = rows + i * stride + lcp;
    std::uint64_t key = 0;
    for (std::size_t b = 0; b < window; ++b) {
      key = key << 8 | at[b];
    }
    key <<= 8 * (8 - window);
    pairs[i] = RadixPair{key, static_cast<std::uint32_t>(i)};
  }

  // LSD radix over the key: all 8 histograms in one pre-pass, then one
  // stable counting-sort pass per non-degenerate byte (bytes the window
  // does not reach, and high bytes narrowed by the shard prefix, are
  // single-bucket and skipped for free).
  std::uint32_t histogram[8][256] = {};
  for (const RadixPair& pair : pairs) {
    for (std::size_t b = 0; b < 8; ++b) {
      ++histogram[b][(pair.key >> (8 * b)) & 0xFF];
    }
  }
  for (std::size_t b = 0; b < 8; ++b) {
    const std::uint32_t* counts = histogram[b];
    bool degenerate = false;
    for (std::size_t v = 0; v < 256; ++v) {
      if (counts[v] == count) {
        degenerate = true;
        break;
      }
      if (counts[v] != 0) break;
    }
    if (degenerate) continue;
    std::uint32_t offsets[256];
    std::uint32_t total = 0;
    for (std::size_t v = 0; v < 256; ++v) {
      offsets[v] = total;
      total += counts[v];
    }
    for (const RadixPair& pair : pairs) {
      scratch[offsets[(pair.key >> (8 * b)) & 0xFF]++] = pair;
    }
    std::swap(pairs, scratch);
  }

  // Gather in key order. Rows with equal keys agree on bytes [0, lcp + 8);
  // groups are comparison-sorted on the tail and deduplicated (duplicates
  // always share a key, so cross-group duplicates cannot exist).
  out.reserve(count * stride);
  const std::size_t tail_offset = lcp + window;
  const std::size_t tail = stride - tail_offset;
  std::vector<std::uint32_t> group;
  std::size_t i = 0;
  while (i < count) {
    std::size_t j = i + 1;
    while (j < count && pairs[j].key == pairs[i].key) ++j;
    if (j == i + 1) {
      const std::uint8_t* r = rows + std::size_t(pairs[i].index) * stride;
      out.insert(out.end(), r, r + stride);
    } else if (tail == 0) {
      // Fully identical rows: keep one.
      const std::uint8_t* r = rows + std::size_t(pairs[i].index) * stride;
      out.insert(out.end(), r, r + stride);
    } else {
      group.clear();
      for (std::size_t g = i; g < j; ++g) group.push_back(pairs[g].index);
      std::sort(group.begin(), group.end(),
                [rows, stride, tail_offset, tail](std::uint32_t a,
                                                  std::uint32_t b) {
                  return std::memcmp(
                             rows + std::size_t(a) * stride + tail_offset,
                             rows + std::size_t(b) * stride + tail_offset,
                             tail) < 0;
                });
      const std::uint8_t* prev = nullptr;
      for (const std::uint32_t idx : group) {
        const std::uint8_t* r = rows + std::size_t(idx) * stride;
        if (prev != nullptr &&
            std::memcmp(prev + tail_offset, r + tail_offset, tail) == 0) {
          continue;
        }
        out.insert(out.end(), r, r + stride);
        prev = r;
      }
    }
    i = j;
  }
}

void sort_unique_rows(const std::uint8_t* rows, std::size_t count,
                      std::size_t stride, std::vector<std::uint8_t>& out) {
  if (active_engine() == Engine::kScalar) {
    sort_unique_rows_scalar(rows, count, stride, out);
  } else {
    sort_unique_rows_radix(rows, count, stride, out);
  }
}

// --- subtract / merge -------------------------------------------------------

namespace {

void subtract_impl(const std::uint8_t* a, std::size_t a_count,
                   const std::uint8_t* b, std::size_t b_count,
                   std::size_t stride, std::vector<std::uint8_t>& out,
                   CompareFn compare) {
  out.clear();
  if (a_count == 0) return;
  if (b_count == 0) {
    out.assign(a, a + a_count * stride);
    return;
  }
  out.reserve(a_count * stride);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a_count) {
    if (j == b_count) {
      out.insert(out.end(), a + i * stride, a + a_count * stride);
      return;
    }
    const int cmp = compare(a + i * stride, b + j * stride, stride);
    if (cmp < 0) {
      out.insert(out.end(), a + i * stride, a + (i + 1) * stride);
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++i;  // drop: present in b
    }
  }
}

void merge_impl(const std::uint8_t* a, std::size_t a_count,
                const std::uint8_t* b, std::size_t b_count, std::size_t stride,
                std::vector<std::uint8_t>& out, CompareFn compare) {
  out.clear();
  out.reserve((a_count + b_count) * stride);
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a_count && j < b_count) {
    const int cmp = compare(a + i * stride, b + j * stride, stride);
    if (cmp <= 0) {
      out.insert(out.end(), a + i * stride, a + (i + 1) * stride);
      if (cmp == 0) ++j;  // keep duplicates once
      ++i;
    } else {
      out.insert(out.end(), b + j * stride, b + (j + 1) * stride);
      ++j;
    }
  }
  if (i < a_count) {
    out.insert(out.end(), a + i * stride, a + a_count * stride);
  }
  if (j < b_count) {
    out.insert(out.end(), b + j * stride, b + b_count * stride);
  }
}

}  // namespace

void subtract_sorted_rows(const std::uint8_t* a, std::size_t a_count,
                          const std::uint8_t* b, std::size_t b_count,
                          std::size_t stride, std::vector<std::uint8_t>& out) {
  subtract_impl(a, a_count, b, b_count, stride, out, resolve_compare());
}

void subtract_sorted_rows_scalar(const std::uint8_t* a, std::size_t a_count,
                                 const std::uint8_t* b, std::size_t b_count,
                                 std::size_t stride,
                                 std::vector<std::uint8_t>& out) {
  subtract_impl(a, a_count, b, b_count, stride, out, &compare_rows_scalar);
}

void merge_sorted_rows(const std::uint8_t* a, std::size_t a_count,
                       const std::uint8_t* b, std::size_t b_count,
                       std::size_t stride, std::vector<std::uint8_t>& out) {
  merge_impl(a, a_count, b, b_count, stride, out, resolve_compare());
}

void merge_sorted_rows_scalar(const std::uint8_t* a, std::size_t a_count,
                              const std::uint8_t* b, std::size_t b_count,
                              std::size_t stride,
                              std::vector<std::uint8_t>& out) {
  merge_impl(a, a_count, b, b_count, stride, out, &compare_rows_scalar);
}

// --- batched complex GEMM ---------------------------------------------------

#ifdef QSYN_HAVE_BLAS
extern "C" void cblas_zgemm(int layout, int trans_a, int trans_b, int m,
                            int n, int k, const void* alpha, const void* a,
                            int lda, const void* b, int ldb, const void* beta,
                            void* c, int ldc);
#endif

bool blas_compiled_in() {
#ifdef QSYN_HAVE_BLAS
  return true;
#else
  return false;
#endif
}

namespace {

/// Hand-written k-major kernel: C accumulates one scaled row of B per
/// non-zero A entry, with the complex arithmetic spelled out over the
/// interleaved (re, im) doubles so the inner loop is a straight fma chain
/// the compiler vectorizes (std::complex operator* would route through the
/// NaN-checking __muldc3 helper instead). Block unitaries are mostly zeros
/// (permutation-like with small mixing blocks), so the zero skip removes
/// the bulk of the work exactly.
void gemm_hand(const Complex* a, const Complex* b, Complex* c, std::size_t m,
               std::size_t k, std::size_t n) {
  std::fill(c, c + m * n, Complex(0.0, 0.0));
  const double* bd = reinterpret_cast<const double*>(b);
  double* cd = reinterpret_cast<double*>(c);
  for (std::size_t i = 0; i < m; ++i) {
    const Complex* ai = a + i * k;
    double* ci = cd + 2 * i * n;
    for (std::size_t p = 0; p < k; ++p) {
      const double ar = ai[p].real();
      const double aj = ai[p].imag();
      if (ar == 0.0 && aj == 0.0) continue;
      const double* bp = bd + 2 * p * n;
      for (std::size_t j = 0; j < n; ++j) {
        const double br = bp[2 * j];
        const double bi = bp[2 * j + 1];
        ci[2 * j] += ar * br - aj * bi;
        ci[2 * j + 1] += ar * bi + aj * br;
      }
    }
  }
}

}  // namespace

void gemm(const Complex* a, const Complex* b, Complex* c, std::size_t m,
          std::size_t k, std::size_t n, bool prefer_blas) {
#ifdef QSYN_HAVE_BLAS
  if (prefer_blas) {
    constexpr int kRowMajor = 101;  // CblasRowMajor
    constexpr int kNoTrans = 111;   // CblasNoTrans
    const Complex one(1.0, 0.0);
    const Complex zero(0.0, 0.0);
    cblas_zgemm(kRowMajor, kNoTrans, kNoTrans, static_cast<int>(m),
                static_cast<int>(n), static_cast<int>(k), &one, a,
                static_cast<int>(k), b, static_cast<int>(n), &zero, c,
                static_cast<int>(n));
    return;
  }
#else
  (void)prefer_blas;
#endif
  gemm_hand(a, b, c, m, k, n);
}

}  // namespace qsyn::simd
