// qsyn/common/simd/kernels.h
//
// Vectorized data-plane kernels shared by the synthesis stores and the
// simulation engine — the two measured hot loops the rest of qsyn funnels
// into:
//
//  * Fixed-width row set algebra. FlatPermStore (and through it
//    ShardedPermStore and the SealedRun streaming merges) stores
//    permutations as fixed-width big-endian label rows whose raw-byte
//    memcmp order equals label order. The kernels here give that algebra a
//    runtime-dispatched row compare (AVX2 on x86-64, NEON on AArch64,
//    scalar memcmp everywhere else) and replace the index-indirect
//    std::sort in sort_unique with an LSD radix sort over an 8-byte
//    big-endian key window (positioned past the rows' common prefix, with
//    full-row tie-breaking), so the sweep cost scales with row bytes moved
//    instead of comparator calls. Every kernel produces the canonical
//    sorted-unique byte sequence, so scalar and vectorized sweeps are
//    byte-identical by construction — tests/test_kernels.cpp pins that.
//
//  * Batched complex GEMM. The fused simulation path applies each folded
//    block unitary to a dense 2^n x batch column matrix as one hand-blocked
//    matrix-matrix product (sim/fused.h apply_to_basis_columns) instead of
//    one basis column at a time. An optional CBLAS backend sits behind the
//    QSYN_WITH_BLAS CMake option and SimOptions::blas_gemm.
//
// Dispatch: active_engine() picks the widest engine the host supports,
// unless the QSYN_SIMD environment variable says off/0/scalar/false (the
// kill-switch) or a test called force_scalar(true). The scalar fallbacks
// are the pre-kernel reference implementations, kept callable directly
// (the *_scalar entry points) so differential suites can compare engines
// inside one process.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace qsyn::simd {

/// The row-compare engine actually running. kScalar when the host has no
/// supported vector unit, when QSYN_SIMD disables it, or when
/// force_scalar(true) is in effect.
enum class Engine { kScalar, kAvx2, kNeon };

/// The engine the dispatched kernels use right now (hardware capability
/// gated by the QSYN_SIMD kill-switch and force_scalar()).
[[nodiscard]] Engine active_engine();

/// Human-readable engine name ("scalar", "avx2", "neon").
[[nodiscard]] const char* engine_name(Engine engine);
[[nodiscard]] inline const char* active_engine_name() {
  return engine_name(active_engine());
}

/// Runtime override for tests and benches: force_scalar(true) makes every
/// dispatched kernel (and the GEMM-batched simulation path) take the scalar
/// reference route, exactly like QSYN_SIMD=off. Thread-safe toggle.
void force_scalar(bool on);

/// True when the scalar route is forced — by force_scalar(true) or by
/// QSYN_SIMD set to off/0/scalar/false in the environment.
[[nodiscard]] bool scalar_forced();

// --- row compares -----------------------------------------------------------

/// memcmp-semantics comparison of two `stride`-byte rows (sign of the first
/// differing byte as unsigned), through the active engine.
[[nodiscard]] int compare_rows(const std::uint8_t* a, const std::uint8_t* b,
                               std::size_t stride);

/// The scalar reference (plain memcmp).
[[nodiscard]] int compare_rows_scalar(const std::uint8_t* a,
                                      const std::uint8_t* b,
                                      std::size_t stride);

// --- sorted-row set algebra -------------------------------------------------
//
// All functions below treat (rows, count, stride) as `count` contiguous
// fixed-width rows and produce canonical results: output rows are sorted
// ascending in memcmp order and duplicate-free (given sorted inputs for the
// binary operations), appended to `out` (cleared first). The dispatched
// entry points route through the active engine; the *_scalar variants are
// the historical FlatPermStore loops, verbatim.

/// Sorts `count` rows and drops duplicates. Dispatched: LSD radix sort
/// (vector engines) or indirect std::sort + memcmp (scalar).
void sort_unique_rows(const std::uint8_t* rows, std::size_t count,
                      std::size_t stride, std::vector<std::uint8_t>& out);
void sort_unique_rows_scalar(const std::uint8_t* rows, std::size_t count,
                             std::size_t stride,
                             std::vector<std::uint8_t>& out);
/// The radix engine directly (callable under force_scalar for tests).
void sort_unique_rows_radix(const std::uint8_t* rows, std::size_t count,
                            std::size_t stride,
                            std::vector<std::uint8_t>& out);

/// Set difference a \ b over sorted, duplicate-free row ranges.
void subtract_sorted_rows(const std::uint8_t* a, std::size_t a_count,
                          const std::uint8_t* b, std::size_t b_count,
                          std::size_t stride, std::vector<std::uint8_t>& out);
void subtract_sorted_rows_scalar(const std::uint8_t* a, std::size_t a_count,
                                 const std::uint8_t* b, std::size_t b_count,
                                 std::size_t stride,
                                 std::vector<std::uint8_t>& out);

/// Sorted union a ∪ b over sorted, duplicate-free row ranges (rows present
/// in both are kept once).
void merge_sorted_rows(const std::uint8_t* a, std::size_t a_count,
                       const std::uint8_t* b, std::size_t b_count,
                       std::size_t stride, std::vector<std::uint8_t>& out);
void merge_sorted_rows_scalar(const std::uint8_t* a, std::size_t a_count,
                              const std::uint8_t* b, std::size_t b_count,
                              std::size_t stride,
                              std::vector<std::uint8_t>& out);

// --- batched complex GEMM ---------------------------------------------------

using Complex = std::complex<double>;

/// c (m x n, row-major) = a (m x k, row-major) * b (k x n, row-major).
/// Hand-blocked kernel: k-major accumulation with zero-entry skipping (gate
/// block unitaries are sparse), contiguous inner rows so the compiler
/// vectorizes the fma chain. With `prefer_blas` and a CBLAS implementation
/// compiled in (QSYN_WITH_BLAS), delegates to cblas_zgemm instead. All qsyn
/// gate amplitudes are dyadic rationals, so both routes — and any
/// accumulation order — produce bit-identical results.
void gemm(const Complex* a, const Complex* b, Complex* c, std::size_t m,
          std::size_t k, std::size_t n, bool prefer_blas = false);

/// True when a CBLAS backend was compiled in (QSYN_WITH_BLAS).
[[nodiscard]] bool blas_compiled_in();

}  // namespace qsyn::simd
