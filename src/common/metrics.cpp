#include "common/metrics.h"

#include <chrono>

namespace qsyn::metrics {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Index of the highest set bit (value must be nonzero).
int top_bit(std::uint64_t value) {
  int top = 0;
  while (value >>= 1) ++top;
  return top;
}

}  // namespace

LatencyRecorder::LatencyRecorder() { reset(); }

std::size_t LatencyRecorder::bucket_for_value(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  const int top = top_bit(ns);  // >= kSubBucketBits
  const int shift = top - static_cast<int>(kSubBucketBits);
  // The kSubBucketBits bits below the top bit pick the linear sub-bucket.
  const std::size_t sub =
      static_cast<std::size_t>(ns >> shift) - kSubBuckets;  // in [0, 8)
  return kSubBuckets +
         static_cast<std::size_t>(shift) * kSubBuckets + sub;
}

std::uint64_t LatencyRecorder::value_for_bucket(std::size_t index) {
  if (index < kSubBuckets) return index;
  const std::size_t shift = (index - kSubBuckets) / kSubBuckets;
  const std::size_t sub = (index - kSubBuckets) % kSubBuckets;
  // Largest value whose bucket_for_value is `index`.
  return ((static_cast<std::uint64_t>(kSubBuckets + sub) + 1)
          << shift) -
         1;
}

void LatencyRecorder::record_ns(std::uint64_t ns) {
  buckets_[bucket_for_value(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (ns > seen &&
         !max_.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

void LatencyRecorder::record_since(std::uint64_t start_ns) {
  const std::uint64_t now = now_ns();
  record_ns(now > start_ns ? now - start_ns : 0);
}

void LatencyRecorder::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  start_ns_.store(now_ns(), std::memory_order_relaxed);
}

LatencySnapshot LatencyRecorder::snapshot() const {
  // One pass over the buckets into a local copy, so every quantile below is
  // derived from the same view.
  std::array<std::uint64_t, kBucketCount> local;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    local[i] = buckets_[i].load(std::memory_order_relaxed);
    total += local[i];
  }

  LatencySnapshot snap;
  snap.count = total;
  snap.sum_ns = sum_.load(std::memory_order_relaxed);
  snap.max_ns = max_.load(std::memory_order_relaxed);
  const std::uint64_t start = start_ns_.load(std::memory_order_relaxed);
  const std::uint64_t now = now_ns();
  snap.elapsed_seconds = now > start ? (now - start) * 1e-9 : 0.0;
  if (total == 0) return snap;
  snap.mean_ns = static_cast<double>(snap.sum_ns) / static_cast<double>(total);
  if (snap.elapsed_seconds > 0.0) {
    snap.rate_per_sec = static_cast<double>(total) / snap.elapsed_seconds;
  }

  const auto quantile = [&](double q) -> std::uint64_t {
    // Smallest bucket whose cumulative count reaches ceil(q * total).
    std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank < 1) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      cumulative += local[i];
      if (cumulative >= rank) return value_for_bucket(i);
    }
    return snap.max_ns;
  };
  snap.p50_ns = quantile(0.50);
  snap.p90_ns = quantile(0.90);
  snap.p99_ns = quantile(0.99);
  return snap;
}

}  // namespace qsyn::metrics
