// qsyn/common/rng.h
//
// Deterministic, seedable pseudo-random number generator (xoshiro256**).
//
// All stochastic components of qsyn (measurement sampling, randomized
// property tests, Monte-Carlo automaton runs) draw from this generator so
// experiments are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

namespace qsyn {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm),
/// seeded via splitmix64. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  result_type operator()();

  /// Uniform integer in [0, bound). `bound` must be positive.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Advances the state by 2^128 draws (the xoshiro256** jump polynomial)
  /// without generating them. Streams separated by jump() are independent
  /// for any realistic draw count, so one seed can parameterize many
  /// non-overlapping generators.
  void jump();

  /// Splits off an independent child stream: the child continues from the
  /// current state and *this jumps 2^128 draws ahead. Successive split()
  /// calls therefore hand out disjoint, reproducible streams — tenant i of a
  /// serving fleet gets the i-th split of one root seed, and re-seeding the
  /// root replays every tenant stream exactly (see serve/automata_service.h).
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace qsyn
