#include "common/env.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace qsyn {

namespace {

std::mutex warned_mutex;
std::set<std::string>& warned_names() {
  static std::set<std::string> names;
  return names;
}

}  // namespace

void warn_env_once(const char* name, const std::string& value,
                   const std::string& expected) {
  {
    std::lock_guard<std::mutex> lock(warned_mutex);
    if (!warned_names().insert(name).second) return;
  }
  std::fprintf(stderr, "qsyn: ignoring %s='%s' (%s)\n", name, value.c_str(),
               expected.c_str());
}

void reset_env_warnings_for_testing() {
  std::lock_guard<std::mutex> lock(warned_mutex);
  warned_names().clear();
}

std::optional<std::size_t> parse_env_size_t(const char* name,
                                            std::size_t min_value,
                                            std::size_t max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return std::nullopt;

  const std::string expected = "expected an integer in [" +
                               std::to_string(min_value) + ", " +
                               std::to_string(max_value) + "]";
  std::size_t value = 0;
  for (const char* p = env; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      warn_env_once(name, env, expected);
      return std::nullopt;
    }
    const std::size_t digit = static_cast<std::size_t>(*p - '0');
    if (value > max_value / 10 ||
        (value == max_value / 10 && digit > max_value % 10)) {
      warn_env_once(name, env, expected);  // would exceed max_value
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  if (value < min_value || value > max_value) {
    warn_env_once(name, env, expected);
    return std::nullopt;
  }
  return value;
}

}  // namespace qsyn
