// qsyn/common/metrics.h
//
// Lock-cheap observability substrate: a fixed log-bucketed latency histogram
// with atomic counters, snapshotting to p50/p90/p99/max plus throughput
// rates. Built for serving hot paths — record() is a handful of relaxed
// atomic increments with no allocation and no lock, so any subsystem
// (serve/automata_service.h, the catalog server, benches) can report through
// one recorder from many threads.
//
// Resolution: values bucket into octaves subdivided into kSubBuckets linear
// sub-buckets, so a reported quantile overestimates the true one by at most
// 1/kSubBuckets (12.5%) — ample for p50/p99 latency reporting, at a fixed
// ~4 KiB per recorder.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace qsyn::metrics {

/// Monotonic clock reading in nanoseconds — the time base every recorder
/// shares (steady_clock, so differences are wall durations).
[[nodiscard]] std::uint64_t now_ns();

/// A monotonically increasing atomic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// One consistent view of a LatencyRecorder: counts, quantiles (upper bucket
/// bounds, nanoseconds), and rates over the recorder's lifetime.
struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p90_ns = 0;
  std::uint64_t p99_ns = 0;
  double mean_ns = 0.0;
  /// Seconds since the recorder was constructed or reset().
  double elapsed_seconds = 0.0;
  /// count / elapsed_seconds (0 when nothing elapsed).
  double rate_per_sec = 0.0;
};

/// Fixed log-bucketed latency histogram with atomic bucket counters.
///
/// record_ns() is wait-free (relaxed fetch_adds plus one CAS loop for the
/// max); snapshot() copies the buckets in one pass and derives quantiles
/// from the copy. Snapshots taken concurrently with recording are
/// approximate in the usual histogram sense (each bucket is individually
/// exact; cross-bucket skew is bounded by the records in flight). reset() is
/// not synchronized against concurrent recorders — quiesce first.
class LatencyRecorder {
 public:
  /// Sub-buckets per octave (power of two). 8 keeps quantile error <= 12.5%.
  static constexpr std::size_t kSubBuckets = 8;
  static constexpr std::size_t kSubBucketBits = 3;  // log2(kSubBuckets)
  /// Values < kSubBuckets get one exact bucket each; every octave above
  /// contributes kSubBuckets more. 64-bit values top out at octave 63.
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

  LatencyRecorder();

  /// Records one latency observation, in nanoseconds.
  void record_ns(std::uint64_t ns);

  /// Convenience: records now_ns() - start_ns (clamped at 0).
  void record_since(std::uint64_t start_ns);

  [[nodiscard]] LatencySnapshot snapshot() const;

  /// Zeroes every bucket and counter and restarts the rate clock. Callers
  /// must ensure no concurrent record_ns().
  void reset();

  /// The bucket index a value lands in, and the largest value mapping to
  /// bucket `index` (the quantile estimate reported for it). Exposed for
  /// tests: value_for_bucket(bucket_for_value(v)) >= v with bounded error.
  [[nodiscard]] static std::size_t bucket_for_value(std::uint64_t ns);
  [[nodiscard]] static std::uint64_t value_for_bucket(std::size_t index);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> start_ns_{0};
};

/// Records the lifetime of a scope into a recorder on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyRecorder& recorder)
      : recorder_(&recorder), start_ns_(now_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { recorder_->record_since(start_ns_); }

 private:
  LatencyRecorder* recorder_;
  std::uint64_t start_ns_;
};

}  // namespace qsyn::metrics
