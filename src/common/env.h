// qsyn/common/env.h
//
// Strict environment-variable parsing, shared by every QSYN_* knob.
//
// Before this header existed, each getenv site parsed its variable with its
// own ad-hoc strtoul call, and the permissive ones silently accepted
// trailing garbage ("QSYN_THREADS=8abc" read as 8) or silently dropped
// malformed values ("QSYN_THREADS=abc" ignored with no diagnostic) while
// SimOptions::from_env rejected both. parse_env_size_t is the one strict
// parser: the whole value must be a plain base-10 unsigned integer inside
// the caller's range, and anything else is ignored *loudly* — a one-time
// warning on stderr names the variable, the offending value, and the
// accepted range, so a typo in a job script degrades to the default instead
// of half-applying.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace qsyn {

/// Reads the environment variable `name` as a strict base-10 unsigned
/// integer in [min_value, max_value]. Returns nullopt when the variable is
/// unset or empty (silently) and when the value is malformed — non-digit
/// characters anywhere, including trailing garbage — or out of range (with a
/// one-time stderr warning per variable name). Never partially accepts a
/// value.
[[nodiscard]] std::optional<std::size_t> parse_env_size_t(
    const char* name, std::size_t min_value, std::size_t max_value);

/// Emits "qsyn: ignoring <name>='<value>' (<expected>)" on stderr, at most
/// once per variable name for the process lifetime. Exposed for the
/// non-numeric knobs (QSYN_SIMD) that share the warn-once policy.
void warn_env_once(const char* name, const std::string& value,
                   const std::string& expected);

/// Test hook: forgets which variable names have already warned, so suites
/// can assert the warning fires. Not thread-safe against concurrent
/// parse_env_size_t calls; call only from single-threaded test code.
void reset_env_warnings_for_testing();

}  // namespace qsyn
