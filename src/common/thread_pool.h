// qsyn/common/thread_pool.h
//
// Minimal reusable worker pool for data-parallel sweeps.
//
// The pool owns `threads - 1` long-lived workers; the calling thread joins
// every round as worker 0, so a pool of size 1 spawns no threads and runs
// everything inline (identical to not having a pool at all). Rounds are
// dispatched through an atomic task counter, so uneven task costs balance
// dynamically. The first exception thrown by any task is captured and
// rethrown on the calling thread after the round drains; once an error is
// recorded, workers abandon the round's remaining tasks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace qsyn {

/// Fixed-size pool of worker threads executing indexed task batches.
class ThreadPool {
 public:
  /// A round's body: invoked once per task index with the index of the
  /// worker running it (0 = calling thread, 1..size()-1 = pool workers).
  using Task = std::function<void(std::size_t task, std::size_t worker)>;

  /// `threads` = total parallelism including the caller; 0 picks
  /// default_thread_count().
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Total parallelism (callers + workers); always >= 1.
  [[nodiscard]] std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(task, worker) for every task in [0, tasks), blocking until all
  /// complete. Rethrows the first task exception. Not reentrant.
  void run(std::size_t tasks, const Task& fn);

  /// Thread count from the QSYN_THREADS environment variable when set to a
  /// positive integer, otherwise std::thread::hardware_concurrency()
  /// (minimum 1).
  [[nodiscard]] static std::size_t default_thread_count();

 private:
  void worker_loop(std::size_t worker);
  void drain_tasks(std::size_t worker);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  std::uint64_t round_ = 0;  // bumped per run(); workers wake on change
  bool stopping_ = false;
  std::size_t tasks_ = 0;
  const Task* fn_ = nullptr;
  std::atomic<std::size_t> next_task_{0};
  std::size_t workers_active_ = 0;  // workers still draining this round
  std::atomic<bool> has_error_{false};
  std::exception_ptr first_error_;
};

}  // namespace qsyn
