// qsyn/common/stopwatch.h
//
// Minimal monotonic stopwatch used by benchmarks and progress reporting.
#pragma once

#include <chrono>

namespace qsyn {

/// Monotonic wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const;

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace qsyn
