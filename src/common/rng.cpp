#include "common/rng.h"

#include "common/error.h"

namespace qsyn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // A state of all zeros is the one invalid xoshiro state; splitmix64 of any
  // seed cannot produce four zero words, but keep the guard for clarity.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  QSYN_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % bound;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return v % bound;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

void Rng::jump() {
  // The reference xoshiro256** jump polynomial (Blackman & Vigna): equivalent
  // to 2^128 operator() calls.
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if ((word & (std::uint64_t(1) << bit)) != 0) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::split() {
  const Rng child = *this;
  jump();
  return child;
}

}  // namespace qsyn
