#include "common/error.h"

#include <sstream>

namespace qsyn::detail {

void fail_check(const char* expr, const char* file, int line,
                const std::string& message) {
  std::ostringstream os;
  os << message << " [check `" << expr << "` failed at " << file << ":" << line
     << "]";
  throw LogicError(os.str());
}

}  // namespace qsyn::detail
