#include "common/thread_pool.h"

#include <cstdlib>

#include "common/env.h"
#include "common/error.h"

namespace qsyn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  QSYN_CHECK(threads <= 1024, "unreasonable thread count");
  workers_.reserve(threads - 1);
  try {
    for (std::size_t w = 1; w < threads; ++w) {
      workers_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // A failed spawn (resource exhaustion) must not leave joinable threads
    // behind — the destructor does not run for a half-built object.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    round_start_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  round_start_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run(std::size_t tasks, const Task& fn) {
  if (tasks == 0) return;
  if (workers_.empty()) {
    for (std::size_t t = 0; t < tasks; ++t) fn(t, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QSYN_CHECK(fn_ == nullptr, "ThreadPool::run is not reentrant");
    fn_ = &fn;
    tasks_ = tasks;
    next_task_.store(0, std::memory_order_relaxed);
    has_error_.store(false, std::memory_order_relaxed);
    first_error_ = nullptr;
    workers_active_ = workers_.size();
    ++round_;
  }
  round_start_.notify_all();
  drain_tasks(0);
  std::unique_lock<std::mutex> lock(mutex_);
  round_done_.wait(lock, [this] { return workers_active_ == 0; });
  fn_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_start_.wait(lock,
                        [this, seen] { return stopping_ || round_ != seen; });
      if (stopping_) return;
      seen = round_;
    }
    drain_tasks(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--workers_active_ == 0) round_done_.notify_one();
    }
  }
}

void ThreadPool::drain_tasks(std::size_t worker) {
  // fn_ and tasks_ are written under mutex_ before the round starts and read
  // only after the worker synchronizes on that mutex (or, for the caller,
  // on the same thread), so plain reads are safe here.
  const Task& fn = *fn_;
  const std::size_t tasks = tasks_;
  for (;;) {
    if (has_error_.load(std::memory_order_relaxed)) return;
    const std::size_t task = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (task >= tasks) return;
    try {
      fn(task, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
      has_error_.store(true, std::memory_order_relaxed);
    }
  }
}

std::size_t ThreadPool::default_thread_count() {
  // Strict parse: "8abc" used to half-apply as 8 threads via strtoul; now
  // it warns once and falls through to the hardware count.
  if (const auto parsed = parse_env_size_t("QSYN_THREADS", 1, 1024)) {
    return *parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace qsyn
