// qsyn/common/strings.h
//
// Small string utilities shared across modules (parsing cycle notation and
// cascade expressions, rendering tables).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qsyn {

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept (so "a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins `pieces` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Renders `value` right-aligned in a field of `width` characters.
std::string pad_left(const std::string& value, std::size_t width);

/// Renders `value` left-aligned in a field of `width` characters.
std::string pad_right(const std::string& value, std::size_t width);

}  // namespace qsyn
