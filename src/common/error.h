// qsyn/common/error.h
//
// Error handling primitives for the qsyn library.
//
// Policy (see C++ Core Guidelines E.*): programming errors (violated
// preconditions, broken invariants) abort via QSYN_ASSERT in debug builds and
// throw qsyn::LogicError in release builds so library users get a catchable,
// descriptive error instead of UB. Recoverable user-facing errors (bad parse
// input, infeasible synthesis specs) throw the dedicated exception types below.
#pragma once

#include <stdexcept>
#include <string>

namespace qsyn {

/// Base class of all exceptions thrown by qsyn.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A violated precondition or internal invariant (a bug in the caller or in
/// qsyn itself), carrying the failing expression and source location.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Malformed textual input (cycle notation, cascade strings, spec files).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// A well-formed request that has no answer within configured resource bounds
/// (e.g. a circuit whose minimal cost exceeds the enumeration bound cb).
class SynthesisError : public Error {
 public:
  explicit SynthesisError(const std::string& what) : Error(what) {}
};

/// A failed filesystem operation (open, stat, map, read, write). Carries the
/// operation, the path, and the OS-level detail.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A malformed or incompatible on-disk synthesis catalog: truncated file,
/// wrong magic/version/endianness, or a domain/library fingerprint that does
/// not match the library the catalog is being opened against.
class CatalogError : public Error {
 public:
  explicit CatalogError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void fail_check(const char* expr, const char* file, int line,
                             const std::string& message);
}  // namespace detail

}  // namespace qsyn

/// Precondition / invariant check. Always on (the checked domains here are
/// small; correctness beats the nanoseconds).
#define QSYN_CHECK(expr, message)                                     \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::qsyn::detail::fail_check(#expr, __FILE__, __LINE__, message); \
    }                                                                 \
  } while (false)

/// Shorthand for argument validation.
#define QSYN_REQUIRE(expr) QSYN_CHECK(expr, "requirement violated")
