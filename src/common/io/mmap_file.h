// qsyn/common/io/mmap_file.h
//
// Memory-mapped files — the zero-copy substrate of the persistent synthesis
// catalog (synth/catalog.h) and the out-of-core closure spill engine
// (synth/spill.h).
//
// Two classes live here:
//
//  * MmapFile — maps one file read-only for its whole lifetime and hands out
//    a stable (data, size) byte view. Consumers that outlive the opener
//    (e.g. the catalog's MmapRowStorage windows, sealed spill runs) share
//    ownership through the shared_ptr returned by map(), so the mapping is
//    released exactly when the last view dies. Pages are faulted in lazily by
//    the kernel: opening a multi-megabyte catalog costs microseconds, and
//    only the pages a query actually touches ever become resident.
//
//  * GrowableMmapFile — creates one file read-write and maps a growable
//    window over it (capacity grows geometrically via ftruncate + remap).
//    This is the writable half of the spill seam: shard bytes are appended
//    through the mapping (so they are file cache, not program heap), and
//    seal() makes the contents durable (msync + fsync) and freezes the file
//    read-only for the rest of its lifetime. A sealed file keeps serving its
//    mapping, so a spilled frontier can be read back with zero copies.
//
// Error taxonomy (shared with the rest of the storage seam): every failed
// filesystem operation (open, stat, truncate, map, sync) throws qsyn::IoError
// carrying the operation, the path, and the OS detail; mutating a sealed
// GrowableMmapFile is a caller bug and throws qsyn::LogicError. No partial
// state escapes a throwing constructor. On platforms without POSIX mmap both
// classes degrade to private heap buffers — same API, no laziness (and
// GrowableMmapFile writes the buffer out on seal()).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qsyn::io {

/// An immutable byte view of one file, memory-mapped where possible.
class MmapFile {
 public:
  /// Maps `path` read-only. Throws qsyn::IoError when the file cannot be
  /// opened, is a directory, or cannot be mapped. An empty file yields a
  /// valid object with size() == 0 and data() == nullptr.
  [[nodiscard]] static std::shared_ptr<const MmapFile> map(
      const std::string& path);

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  explicit MmapFile(const std::string& path);

  std::string path_;
  std::vector<std::uint8_t> fallback_;  // non-POSIX read-into-heap path
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // true when data_ came from mmap (needs munmap)
};

/// A writable, growable memory-mapped file: the append side of the spill
/// engine. Not thread-safe; one writer owns the file until seal().
class GrowableMmapFile {
 public:
  /// Creates (or truncates) `path` read-write. Throws qsyn::IoError when the
  /// file cannot be created or mapped (e.g. the spill directory does not
  /// exist or is not writable). When `unlink_on_destroy` is set the file is
  /// removed by the destructor — the RAII cleanup the spill engine relies on
  /// for its temporary run files.
  explicit GrowableMmapFile(const std::string& path,
                            bool unlink_on_destroy = false);

  GrowableMmapFile(const GrowableMmapFile&) = delete;
  GrowableMmapFile& operator=(const GrowableMmapFile&) = delete;
  ~GrowableMmapFile();

  /// The mapped bytes, stable until the next growth (append/resize may
  /// remap). nullptr while empty. The mutable view is a mutation like any
  /// other: requesting it on a sealed file throws qsyn::LogicError.
  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::uint8_t* mutable_data();

  /// Logical size in bytes (the file is truncated down to this on seal()).
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends `n` bytes, growing the mapping geometrically as needed.
  /// Throws qsyn::LogicError once sealed, qsyn::IoError on growth failure.
  void append(const std::uint8_t* bytes, std::size_t n);

  /// Sets the logical size (grows zero-filled or shrinks; the backing
  /// capacity never shrinks before seal()). Same error contract as append().
  void resize(std::size_t n);

  /// Flushes the mapping and the file to stable storage (msync + ftruncate
  /// to the logical size + fsync) and freezes the file: every later mutation
  /// throws qsyn::LogicError. The mapping stays valid for reads. Idempotent.
  void seal();

  [[nodiscard]] bool sealed() const { return sealed_; }

 private:
  void ensure_capacity(std::size_t needed);

  std::string path_;
  std::vector<std::uint8_t> fallback_;  // non-POSIX heap path
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;      // logical bytes
  std::size_t capacity_ = 0;  // mapped/truncated bytes
  int fd_ = -1;
  bool sealed_ = false;
  bool unlink_on_destroy_ = false;
};

}  // namespace qsyn::io
