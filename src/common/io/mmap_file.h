// qsyn/common/io/mmap_file.h
//
// Read-only memory-mapped files — the zero-copy substrate of the persistent
// synthesis catalog (synth/catalog.h).
//
// A MmapFile maps one file read-only for its whole lifetime and hands out a
// stable (data, size) byte view. Consumers that outlive the opener (e.g. the
// catalog's MmapRowStorage windows) share ownership through the shared_ptr
// returned by map(), so the mapping is released exactly when the last view
// dies. Pages are faulted in lazily by the kernel: opening a multi-megabyte
// catalog costs microseconds, and only the pages a query actually touches
// ever become resident.
//
// Failures (missing file, directory, stat/map errors) throw qsyn::IoError;
// no partial state escapes. On platforms without POSIX mmap the class
// degrades to reading the whole file into a private heap buffer — same API,
// no laziness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace qsyn::io {

/// An immutable byte view of one file, memory-mapped where possible.
class MmapFile {
 public:
  /// Maps `path` read-only. Throws qsyn::IoError when the file cannot be
  /// opened, is a directory, or cannot be mapped. An empty file yields a
  /// valid object with size() == 0 and data() == nullptr.
  [[nodiscard]] static std::shared_ptr<const MmapFile> map(
      const std::string& path);

  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  ~MmapFile();

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  explicit MmapFile(const std::string& path);

  std::string path_;
  std::vector<std::uint8_t> fallback_;  // non-POSIX read-into-heap path
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // true when data_ came from mmap (needs munmap)
};

}  // namespace qsyn::io
