#include "common/io/mmap_file.h"

#include <cstring>

#include "common/error.h"

#if defined(_WIN32)
#include <fstream>
#include <iterator>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace qsyn::io {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path,
                       const std::string& detail) {
  throw qsyn::IoError(op + " failed for '" + path + "': " + detail);
}

}  // namespace

std::shared_ptr<const MmapFile> MmapFile::map(const std::string& path) {
  return std::shared_ptr<const MmapFile>(new MmapFile(path));
}

#if defined(_WIN32)

MmapFile::MmapFile(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("open", path, "cannot open for reading");
  fallback_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  if (in.bad()) fail("read", path, "stream error");
  data_ = fallback_.empty() ? nullptr : fallback_.data();
  size_ = fallback_.size();
}

MmapFile::~MmapFile() = default;

#else

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("open", path, std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    fail("fstat", path, std::strerror(saved));
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    fail("open", path, "is a directory");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      fail("mmap", path, std::strerror(saved));
    }
    data_ = static_cast<const std::uint8_t*>(addr);
    mapped_ = true;
  }
  ::close(fd);
}

MmapFile::~MmapFile() {
  if (mapped_) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

#endif

}  // namespace qsyn::io
