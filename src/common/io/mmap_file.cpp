#include "common/io/mmap_file.h"

#include <cstdio>
#include <cstring>

#include "common/error.h"

#if defined(_WIN32)
#include <fstream>
#include <iterator>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace qsyn::io {

namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path,
                       const std::string& detail) {
  throw qsyn::IoError(op + " failed for '" + path + "': " + detail);
}

}  // namespace

std::shared_ptr<const MmapFile> MmapFile::map(const std::string& path) {
  return std::shared_ptr<const MmapFile>(new MmapFile(path));
}

#if defined(_WIN32)

MmapFile::MmapFile(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("open", path, "cannot open for reading");
  fallback_.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
  if (in.bad()) fail("read", path, "stream error");
  data_ = fallback_.empty() ? nullptr : fallback_.data();
  size_ = fallback_.size();
}

MmapFile::~MmapFile() = default;

GrowableMmapFile::GrowableMmapFile(const std::string& path,
                                   bool unlink_on_destroy)
    : path_(path), unlink_on_destroy_(unlink_on_destroy) {
  // Probe writability up front so the error surfaces at construction, like
  // the POSIX path.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("open", path, "cannot create for writing");
}

GrowableMmapFile::~GrowableMmapFile() {
  if (unlink_on_destroy_) std::remove(path_.c_str());
}

void GrowableMmapFile::ensure_capacity(std::size_t needed) {
  if (fallback_.capacity() < needed) fallback_.reserve(needed * 2);
}

void GrowableMmapFile::append(const std::uint8_t* bytes, std::size_t n) {
  QSYN_CHECK(!sealed_, "GrowableMmapFile is sealed: no further mutation");
  fallback_.insert(fallback_.end(), bytes, bytes + n);
  data_ = fallback_.data();
  size_ = fallback_.size();
}

void GrowableMmapFile::resize(std::size_t n) {
  QSYN_CHECK(!sealed_, "GrowableMmapFile is sealed: no further mutation");
  fallback_.resize(n);
  data_ = fallback_.empty() ? nullptr : fallback_.data();
  size_ = n;
}

void GrowableMmapFile::seal() {
  if (sealed_) return;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (!out) fail("open", path_, "cannot open for writing");
  out.write(reinterpret_cast<const char*>(fallback_.data()),
            static_cast<std::streamsize>(fallback_.size()));
  out.flush();
  if (!out) fail("write", path_, "stream error");
  sealed_ = true;
}

#else

MmapFile::MmapFile(const std::string& path) : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("open", path, std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    fail("fstat", path, std::strerror(saved));
  }
  if (S_ISDIR(st.st_mode)) {
    ::close(fd);
    fail("open", path, "is a directory");
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* addr = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      fail("mmap", path, std::strerror(saved));
    }
    data_ = static_cast<const std::uint8_t*>(addr);
    mapped_ = true;
  }
  ::close(fd);
}

MmapFile::~MmapFile() {
  if (mapped_) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
}

GrowableMmapFile::GrowableMmapFile(const std::string& path,
                                   bool unlink_on_destroy)
    : path_(path), unlink_on_destroy_(unlink_on_destroy) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) fail("open", path, std::strerror(errno));
}

GrowableMmapFile::~GrowableMmapFile() {
  if (data_ != nullptr) ::munmap(data_, capacity_);
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_destroy_) std::remove(path_.c_str());
}

void GrowableMmapFile::ensure_capacity(std::size_t needed) {
  if (needed <= capacity_) return;
  // Geometric growth bounds the remap count; 1 MiB floor keeps tiny spill
  // budgets from remapping per row.
  std::size_t next = capacity_ < (std::size_t(1) << 20)
                         ? (std::size_t(1) << 20)
                         : capacity_ * 2;
  while (next < needed) next *= 2;
  if (::ftruncate(fd_, static_cast<off_t>(next)) != 0) {
    fail("ftruncate", path_, std::strerror(errno));
  }
  if (data_ != nullptr) ::munmap(data_, capacity_);
  data_ = nullptr;
  void* addr =
      ::mmap(nullptr, next, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (addr == MAP_FAILED) fail("mmap", path_, std::strerror(errno));
  data_ = static_cast<std::uint8_t*>(addr);
  capacity_ = next;
}

void GrowableMmapFile::append(const std::uint8_t* bytes, std::size_t n) {
  QSYN_CHECK(!sealed_, "GrowableMmapFile is sealed: no further mutation");
  if (n == 0) return;
  ensure_capacity(size_ + n);
  std::memcpy(data_ + size_, bytes, n);
  size_ += n;
}

void GrowableMmapFile::resize(std::size_t n) {
  QSYN_CHECK(!sealed_, "GrowableMmapFile is sealed: no further mutation");
  if (n > size_) {
    ensure_capacity(n);
    std::memset(data_ + size_, 0, n - size_);
  }
  size_ = n;
}

void GrowableMmapFile::seal() {
  if (sealed_) return;
  if (data_ != nullptr && size_ > 0 &&
      ::msync(data_, size_, MS_SYNC) != 0) {
    fail("msync", path_, std::strerror(errno));
  }
  // Trim the growth slack so the on-disk file is exactly the logical bytes;
  // the mapping beyond size_ is never read after this point.
  if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
    fail("ftruncate", path_, std::strerror(errno));
  }
  if (::fsync(fd_) != 0) fail("fsync", path_, std::strerror(errno));
  sealed_ = true;
}

#endif

std::uint8_t* GrowableMmapFile::mutable_data() {
  QSYN_CHECK(!sealed_, "GrowableMmapFile is sealed: no further mutation");
  return data_;
}

}  // namespace qsyn::io
