#include "la/lu.h"

#include <cmath>

#include "common/error.h"

namespace qsyn::la {

LuDecomposition::LuDecomposition(const Matrix& m) : lu_(m) {
  QSYN_CHECK(m.is_square(), "LU decomposition requires a square matrix");
  const std::size_t n = m.rows();
  pivots_.resize(n);
  for (std::size_t i = 0; i < n; ++i) pivots_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude entry on/below the diagonal.
    std::size_t pivot_row = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, col));
      if (mag > best) {
        best = mag;
        pivot_row = r;
      }
    }
    if (pivot_row != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(col, c), lu_(pivot_row, c));
      }
      std::swap(pivots_[col], pivots_[pivot_row]);
      pivot_sign_ = -pivot_sign_;
    }
    const Complex pivot = lu_(col, col);
    if (std::abs(pivot) < 1e-300) continue;  // singular column; leave zeros
    for (std::size_t r = col + 1; r < n; ++r) {
      const Complex factor = lu_(r, col) / pivot;
      lu_(r, col) = factor;
      if (factor == Complex(0.0, 0.0)) continue;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

bool LuDecomposition::is_singular(double tol) const {
  for (std::size_t i = 0; i < lu_.rows(); ++i) {
    if (std::abs(lu_(i, i)) < tol) return true;
  }
  return false;
}

Complex LuDecomposition::determinant() const {
  Complex det(static_cast<double>(pivot_sign_), 0.0);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector LuDecomposition::solve(const Vector& b) const {
  QSYN_CHECK(!is_singular(), "LU solve on a singular matrix");
  QSYN_CHECK(b.size() == lu_.rows(), "LU solve size mismatch");
  const std::size_t n = lu_.rows();
  // Apply row permutation, then forward substitution (L, unit diagonal).
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    Complex sum = b[pivots_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * y[j];
    y[i] = sum;
  }
  // Backward substitution (U).
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    Complex sum = y[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  QSYN_CHECK(b.rows() == lu_.rows(), "LU solve size mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector col(b.rows());
    for (std::size_t r = 0; r < b.rows(); ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = sol[r];
  }
  return x;
}

Matrix LuDecomposition::inverse() const {
  return solve(Matrix::identity(lu_.rows()));
}

Complex determinant(const Matrix& m) {
  return LuDecomposition(m).determinant();
}

Matrix inverse(const Matrix& m) { return LuDecomposition(m).inverse(); }

Vector solve(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace qsyn::la
