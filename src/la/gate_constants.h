// qsyn/la/gate_constants.h
//
// The 2x2 unitaries from Figure 1 of the paper and a few standard companions.
//
//   V  = 1/2 [[1+i, 1-i], [1-i, 1+i]]   (controlled-V's data action)
//   V+ = 1/2 [[1-i, 1+i], [1+i, 1-i]]   (Hermitian adjoint of V)
//
// with the defining identities V*V = V+*V+ = NOT and V*V+ = V+*V = I.
#pragma once

#include "la/matrix.h"
#include "la/vector.h"

namespace qsyn::la {

/// 2x2 identity.
const Matrix& mat_i2();

/// Pauli-X / NOT.
const Matrix& mat_x();

/// Square root of NOT, exactly as printed in the paper.
const Matrix& mat_v();

/// Hermitian adjoint of V (the paper's V+).
const Matrix& mat_v_dagger();

/// Hadamard (used by simulator tests, not by the paper's library).
const Matrix& mat_h();

/// Pauli-Z (simulator tests).
const Matrix& mat_z();

/// Single-qubit state |0> evolved through V: the "V0" signal value.
const Vector& state_v0();

/// Single-qubit state |1> evolved through V: the "V1" signal value.
const Vector& state_v1();

/// Computational basis states |0>, |1>.
const Vector& state_0();
const Vector& state_1();

}  // namespace qsyn::la
