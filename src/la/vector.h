// qsyn/la/vector.h
//
// Dense complex vectors — companion to la::Matrix. Used for quantum state
// vectors and for real-valued probability vectors (stored with zero imaginary
// parts) in the automata module.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "la/matrix.h"

namespace qsyn::la {

/// A dense complex column vector with value semantics.
class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n) : data_(n, Complex(0.0, 0.0)) {}
  Vector(std::initializer_list<Complex> values) : data_(values) {}
  explicit Vector(std::vector<Complex> values) : data_(std::move(values)) {}

  /// Computational-basis vector e_index of dimension n.
  static Vector basis(std::size_t n, std::size_t index);

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  Complex& at(std::size_t i);
  [[nodiscard]] const Complex& at(std::size_t i) const;
  Complex& operator[](std::size_t i) { return data_[i]; }
  const Complex& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] const std::vector<Complex>& data() const { return data_; }
  std::vector<Complex>& mutable_data() { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(Complex scalar);
  friend Vector operator+(Vector lhs, const Vector& rhs) { return lhs += rhs; }
  friend Vector operator-(Vector lhs, const Vector& rhs) { return lhs -= rhs; }
  friend Vector operator*(Vector lhs, Complex scalar) { return lhs *= scalar; }
  friend Vector operator*(Complex scalar, Vector rhs) { return rhs *= scalar; }

  /// Hermitian inner product <this|rhs> (conjugate-linear in *this*).
  [[nodiscard]] Complex dot(const Vector& rhs) const;

  /// Euclidean (L2) norm.
  [[nodiscard]] double norm() const;

  /// Sum of |amplitude|^2 — 1.0 for a normalized quantum state.
  [[nodiscard]] double norm_squared() const;

  /// Normalizes in place; throws on (numerically) zero vectors.
  void normalize();

  [[nodiscard]] bool approx_equal(const Vector& other,
                                  double tol = kDefaultTolerance) const;

  /// Equality up to a global unit-modulus phase factor.
  [[nodiscard]] bool equal_up_to_phase(const Vector& other,
                                       double tol = kDefaultTolerance) const;

  /// Kronecker (tensor) product; this (x) rhs.
  [[nodiscard]] Vector kron(const Vector& rhs) const;

  [[nodiscard]] std::string to_string(int precision = 3) const;

  friend bool operator==(const Vector& a, const Vector& b) {
    return a.data_ == b.data_;
  }

 private:
  std::vector<Complex> data_;
};

/// Matrix-vector product (dimensions must agree).
Vector operator*(const Matrix& m, const Vector& v);

}  // namespace qsyn::la
