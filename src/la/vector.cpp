#include "la/vector.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace qsyn::la {

Vector Vector::basis(std::size_t n, std::size_t index) {
  QSYN_CHECK(index < n, "basis index out of range");
  Vector v(n);
  v[index] = Complex(1.0, 0.0);
  return v;
}

Complex& Vector::at(std::size_t i) {
  QSYN_CHECK(i < data_.size(), "Vector::at out of range");
  return data_[i];
}

const Complex& Vector::at(std::size_t i) const {
  QSYN_CHECK(i < data_.size(), "Vector::at out of range");
  return data_[i];
}

Vector& Vector::operator+=(const Vector& rhs) {
  QSYN_CHECK(size() == rhs.size(), "Vector addition requires equal sizes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  QSYN_CHECK(size() == rhs.size(), "Vector subtraction requires equal sizes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(Complex scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Complex Vector::dot(const Vector& rhs) const {
  QSYN_CHECK(size() == rhs.size(), "dot requires equal sizes");
  Complex sum(0.0, 0.0);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += std::conj(data_[i]) * rhs.data_[i];
  }
  return sum;
}

double Vector::norm() const { return std::sqrt(norm_squared()); }

double Vector::norm_squared() const {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return sum;
}

void Vector::normalize() {
  const double n = norm();
  QSYN_CHECK(n > 1e-12, "cannot normalize a zero vector");
  for (auto& v : data_) v /= n;
}

bool Vector::approx_equal(const Vector& other, double tol) const {
  if (size() != other.size()) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool Vector::equal_up_to_phase(const Vector& other, double tol) const {
  if (size() != other.size()) return false;
  std::size_t ref = data_.size();
  double best = tol;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i]) > best) {
      best = std::abs(data_[i]);
      ref = i;
    }
  }
  if (ref == data_.size()) return other.norm() <= tol;
  if (std::abs(other.data_[ref]) <= tol) return false;
  const Complex phase = other.data_[ref] / data_[ref];
  if (std::abs(std::abs(phase) - 1.0) > tol) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] * phase - other.data_[i]) > tol) return false;
  }
  return true;
}

Vector Vector::kron(const Vector& rhs) const {
  Vector out(size() * rhs.size());
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = 0; j < rhs.size(); ++j) {
      out[i * rhs.size() + j] = data_[i] * rhs.data_[j];
    }
  }
  return out;
}

std::string Vector::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << "[";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i != 0) os << ", ";
    os << data_[i].real();
    if (data_[i].imag() >= 0) os << "+";
    os << data_[i].imag() << "i";
  }
  os << "]";
  return os.str();
}

Vector operator*(const Matrix& m, const Vector& v) {
  QSYN_CHECK(m.cols() == v.size(), "matrix-vector size mismatch");
  Vector out(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    Complex sum(0.0, 0.0);
    for (std::size_t c = 0; c < m.cols(); ++c) sum += m(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

}  // namespace qsyn::la
