#include "la/matrix.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace qsyn::la {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex(0.0, 0.0)) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    QSYN_CHECK(row.size() == cols_, "Matrix initializer rows must be equal length");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zero(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

Matrix Matrix::diagonal(const std::vector<Complex>& entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

Matrix Matrix::permutation(const std::vector<std::size_t>& perm) {
  const std::size_t n = perm.size();
  Matrix m(n, n);
  std::vector<bool> hit(n, false);
  for (std::size_t j = 0; j < n; ++j) {
    QSYN_CHECK(perm[j] < n, "permutation image out of range");
    QSYN_CHECK(!hit[perm[j]], "permutation images must be distinct");
    hit[perm[j]] = true;
    m(perm[j], j) = 1.0;
  }
  return m;
}

Complex& Matrix::at(std::size_t r, std::size_t c) {
  QSYN_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
  return data_[r * cols_ + c];
}

const Complex& Matrix::at(std::size_t r, std::size_t c) const {
  QSYN_CHECK(r < rows_ && c < cols_, "Matrix::at out of range");
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  QSYN_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "Matrix addition requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  QSYN_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
             "Matrix subtraction requires equal shapes");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(Complex scalar) {
  for (auto& v : data_) v *= scalar;
  return *this;
}

Matrix operator*(const Matrix& lhs, const Matrix& rhs) {
  QSYN_CHECK(lhs.cols_ == rhs.rows_,
             "Matrix product requires lhs.cols == rhs.rows");
  Matrix out(lhs.rows_, rhs.cols_);
  // i-k-j loop order: streams through rhs rows contiguously.
  for (std::size_t i = 0; i < lhs.rows_; ++i) {
    for (std::size_t k = 0; k < lhs.cols_; ++k) {
      const Complex a = lhs(i, k);
      if (a == Complex(0.0, 0.0)) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

bool Matrix::equal_up_to_phase(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  // Find the largest-magnitude entry of *this to fix the phase.
  std::size_t ref = data_.size();
  double best = tol;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i]) > best) {
      best = std::abs(data_[i]);
      ref = i;
    }
  }
  if (ref == data_.size()) {
    // Effectively the zero matrix; equal up to phase iff other is zero too.
    return other.frobenius_norm() <= tol * static_cast<double>(data_.size());
  }
  if (std::abs(other.data_[ref]) <= tol) return false;
  const Complex phase = other.data_[ref] / data_[ref];
  if (std::abs(std::abs(phase) - 1.0) > tol) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] * phase - other.data_[i]) > tol) return false;
  }
  return true;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

Matrix Matrix::conjugate() const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = std::conj(data_[i]);
  }
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

Complex Matrix::trace() const {
  QSYN_CHECK(is_square(), "trace requires a square matrix");
  Complex t(0.0, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  QSYN_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff requires equal shapes");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

Matrix Matrix::pow(std::size_t exponent) const {
  QSYN_CHECK(is_square(), "pow requires a square matrix");
  Matrix result = identity(rows_);
  Matrix base = *this;
  while (exponent > 0) {
    if ((exponent & 1U) != 0) result = result * base;
    base = base * base;
    exponent >>= 1U;
  }
  return result;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const Complex a = (*this)(r, c);
      if (a == Complex(0.0, 0.0)) continue;
      for (std::size_t rr = 0; rr < rhs.rows_; ++rr) {
        for (std::size_t cc = 0; cc < rhs.cols_; ++cc) {
          out(r * rhs.rows_ + rr, c * rhs.cols_ + cc) = a * rhs(rr, cc);
        }
      }
    }
  }
  return out;
}

Matrix Matrix::direct_sum(const Matrix& rhs) const {
  Matrix out(rows_ + rhs.rows_, cols_ + rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) = (*this)(r, c);
  }
  for (std::size_t r = 0; r < rhs.rows_; ++r) {
    for (std::size_t c = 0; c < rhs.cols_; ++c) {
      out(rows_ + r, cols_ + c) = rhs(r, c);
    }
  }
  return out;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t height,
                     std::size_t width) const {
  QSYN_CHECK(r0 + height <= rows_ && c0 + width <= cols_,
             "block out of range");
  Matrix out(height, width);
  for (std::size_t r = 0; r < height; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      out(r, c) = (*this)(r0 + r, c0 + c);
    }
  }
  return out;
}

bool Matrix::is_identity(double tol) const {
  if (!is_square()) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      const Complex want = (r == c) ? Complex(1.0, 0.0) : Complex(0.0, 0.0);
      if (std::abs((*this)(r, c) - want) > tol) return false;
    }
  }
  return true;
}

bool Matrix::is_unitary(double tol) const {
  if (!is_square()) return false;
  return (*this * adjoint()).is_identity(tol);
}

bool Matrix::is_hermitian(double tol) const {
  if (!is_square()) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - std::conj((*this)(c, r))) > tol) {
        return false;
      }
    }
  }
  return true;
}

bool Matrix::is_permutation(double tol) const {
  if (!is_square()) return false;
  for (std::size_t c = 0; c < cols_; ++c) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double mag = std::abs((*this)(r, c));
      if (mag > tol) {
        if (std::abs((*this)(r, c) - Complex(1.0, 0.0)) > tol) return false;
        ++ones;
      }
    }
    if (ones != 1) return false;
  }
  // Column-wise single ones + squareness implies row-wise too only if the
  // hit rows are distinct; verify.
  std::vector<bool> hit(rows_, false);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (std::abs((*this)(r, c)) > tol) {
        if (hit[r]) return false;
        hit[r] = true;
      }
    }
  }
  return true;
}

bool Matrix::is_permutation_up_to_phases(double tol) const {
  if (!is_square()) return false;
  std::vector<bool> hit(rows_, false);
  for (std::size_t c = 0; c < cols_; ++c) {
    std::size_t found = rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double mag = std::abs((*this)(r, c));
      if (mag > tol) {
        if (found != rows_) return false;          // second nonzero in column
        if (std::abs(mag - 1.0) > tol) return false;  // not unit modulus
        found = r;
      }
    }
    if (found == rows_ || hit[found]) return false;
    hit[found] = true;
  }
  return true;
}

std::vector<std::size_t> Matrix::extract_permutation(bool allow_phases,
                                                     double tol) const {
  QSYN_CHECK(allow_phases ? is_permutation_up_to_phases(tol)
                          : is_permutation(tol),
             "matrix is not a permutation matrix");
  std::vector<std::size_t> perm(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t r = 0; r < rows_; ++r) {
      if (std::abs((*this)(r, c)) > tol) {
        perm[c] = r;
        break;
      }
    }
  }
  return perm;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      const Complex v = (*this)(r, c);
      if (c != 0) os << ", ";
      os << v.real();
      if (v.imag() >= 0) os << "+";
      os << v.imag() << "i";
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

}  // namespace qsyn::la
