#include "la/gate_constants.h"

#include <cmath>

namespace qsyn::la {

namespace {
const Complex kHalfPlus(0.5, 0.5);    // 0.5 + 0.5i
const Complex kHalfMinus(0.5, -0.5);  // 0.5 - 0.5i
}  // namespace

const Matrix& mat_i2() {
  static const Matrix m = Matrix::identity(2);
  return m;
}

const Matrix& mat_x() {
  static const Matrix m{{0.0, 1.0}, {1.0, 0.0}};
  return m;
}

const Matrix& mat_v() {
  static const Matrix m{{kHalfPlus, kHalfMinus}, {kHalfMinus, kHalfPlus}};
  return m;
}

const Matrix& mat_v_dagger() {
  static const Matrix m{{kHalfMinus, kHalfPlus}, {kHalfPlus, kHalfMinus}};
  return m;
}

const Matrix& mat_h() {
  static const double s = 1.0 / std::sqrt(2.0);
  static const Matrix m{{s, s}, {s, -s}};
  return m;
}

const Matrix& mat_z() {
  static const Matrix m{{1.0, 0.0}, {0.0, -1.0}};
  return m;
}

const Vector& state_0() {
  static const Vector v{1.0, 0.0};
  return v;
}

const Vector& state_1() {
  static const Vector v{0.0, 1.0};
  return v;
}

const Vector& state_v0() {
  // V |0> = (0.5+0.5i, 0.5-0.5i)^T, exactly the paper's first column of V.
  static const Vector v{kHalfPlus, kHalfMinus};
  return v;
}

const Vector& state_v1() {
  // V |1> = (0.5-0.5i, 0.5+0.5i)^T.
  static const Vector v{kHalfMinus, kHalfPlus};
  return v;
}

}  // namespace qsyn::la
