// qsyn/la/lu.h
//
// LU decomposition with partial pivoting for complex dense matrices, plus the
// derived operations qsyn needs: determinant, inverse, and linear solves.
// The automata module uses solves to compute exact stationary distributions
// of the Markov chains induced by quantum automata (Figure 3 of the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "la/vector.h"

namespace qsyn::la {

/// PA = LU factorization (partial pivoting). L has an implicit unit diagonal
/// and is stored with U inside a single packed matrix.
class LuDecomposition {
 public:
  /// Factors `m` (must be square). Singular matrices are detected lazily:
  /// is_singular() reports a (numerically) zero pivot.
  explicit LuDecomposition(const Matrix& m);

  [[nodiscard]] bool is_singular(double tol = 1e-12) const;

  /// det(A); 0 if singular.
  [[nodiscard]] Complex determinant() const;

  /// Solves A x = b. Throws qsyn::LogicError when singular.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A X = B column by column. Throws when singular.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// A^{-1}. Throws when singular.
  [[nodiscard]] Matrix inverse() const;

  [[nodiscard]] const std::vector<std::size_t>& pivots() const {
    return pivots_;
  }

 private:
  Matrix lu_;                          // packed L (unit diag) and U
  std::vector<std::size_t> pivots_;    // row i of LU came from row pivots_[i]
  int pivot_sign_ = 1;                 // parity of the row permutation
};

/// Convenience wrappers.
Complex determinant(const Matrix& m);
Matrix inverse(const Matrix& m);
Vector solve(const Matrix& a, const Vector& b);

}  // namespace qsyn::la
