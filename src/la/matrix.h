// qsyn/la/matrix.h
//
// Dense complex matrices, written from scratch as the numerical substrate of
// qsyn (no external dependency such as Eigen is assumed to exist). The sizes
// in this project are tiny (2x2 .. 64x64 unitaries, small stochastic
// matrices), so the design optimizes for clarity and exact semantics rather
// than BLAS-grade throughput: row-major contiguous storage, value semantics,
// and checked indexing.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qsyn::la {

using Complex = std::complex<double>;

/// Default absolute tolerance for floating-point comparisons of matrix
/// entries. All gate algebra in this project is exact over {0, +-1/2, +-i/2,
/// 1/sqrt(2), ...}, so deviations are pure rounding noise.
inline constexpr double kDefaultTolerance = 1e-9;

/// A dense, row-major complex matrix with value semantics.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  /// rows x cols of zeros.
  static Matrix zero(std::size_t rows, std::size_t cols);

  /// Diagonal matrix from the given entries.
  static Matrix diagonal(const std::vector<Complex>& entries);

  /// Permutation matrix P with P[perm[j], j] = 1: maps basis vector e_j to
  /// e_perm[j] (column-convention; P * e_j = e_perm[j]).
  static Matrix permutation(const std::vector<std::size_t>& perm);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool is_square() const { return rows_ == cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  /// Checked element access.
  Complex& at(std::size_t r, std::size_t c);
  [[nodiscard]] const Complex& at(std::size_t r, std::size_t c) const;

  /// Unchecked element access for hot paths.
  Complex& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  const Complex& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<Complex>& data() const { return data_; }

  // --- arithmetic -----------------------------------------------------------
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(Complex scalar);
  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, Complex scalar) { return lhs *= scalar; }
  friend Matrix operator*(Complex scalar, Matrix rhs) { return rhs *= scalar; }

  /// Matrix product (dimensions must agree).
  friend Matrix operator*(const Matrix& lhs, const Matrix& rhs);

  /// Elementwise equality within absolute tolerance `tol`.
  [[nodiscard]] bool approx_equal(const Matrix& other,
                                  double tol = kDefaultTolerance) const;

  /// True iff `other` equals this matrix times a unit-modulus scalar
  /// (quantum circuits are only defined up to global phase).
  [[nodiscard]] bool equal_up_to_phase(const Matrix& other,
                                       double tol = kDefaultTolerance) const;

  // --- structure ------------------------------------------------------------
  [[nodiscard]] Matrix transpose() const;
  [[nodiscard]] Matrix conjugate() const;
  /// Conjugate transpose (Hermitian adjoint, the paper's "+" superscript).
  [[nodiscard]] Matrix adjoint() const;

  [[nodiscard]] Complex trace() const;
  [[nodiscard]] double frobenius_norm() const;
  /// Largest |entry| difference against `other` (matrices of equal shape).
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// Matrix power by repeated squaring; `exponent >= 0`, square matrix only.
  [[nodiscard]] Matrix pow(std::size_t exponent) const;

  /// Kronecker (tensor) product; this (x) rhs.
  [[nodiscard]] Matrix kron(const Matrix& rhs) const;

  /// Block-diagonal direct sum; this (+) rhs.
  [[nodiscard]] Matrix direct_sum(const Matrix& rhs) const;

  /// Contiguous sub-block of shape (height x width) starting at (r0, c0).
  [[nodiscard]] Matrix block(std::size_t r0, std::size_t c0,
                             std::size_t height, std::size_t width) const;

  // --- predicates -----------------------------------------------------------
  [[nodiscard]] bool is_identity(double tol = kDefaultTolerance) const;
  /// U * U^dagger == I within tolerance.
  [[nodiscard]] bool is_unitary(double tol = kDefaultTolerance) const;
  [[nodiscard]] bool is_hermitian(double tol = kDefaultTolerance) const;
  /// Exactly one 1 per row/column, all else 0 (within tolerance).
  [[nodiscard]] bool is_permutation(double tol = kDefaultTolerance) const;
  /// Like is_permutation but entries may be arbitrary unit-modulus phases.
  [[nodiscard]] bool is_permutation_up_to_phases(
      double tol = kDefaultTolerance) const;

  /// If the matrix is a permutation matrix (optionally up to phases),
  /// returns perm with column j mapping to row perm[j]. Throws otherwise.
  [[nodiscard]] std::vector<std::size_t> extract_permutation(
      bool allow_phases = false, double tol = kDefaultTolerance) const;

  /// Multi-line human-readable rendering (fixed precision).
  [[nodiscard]] std::string to_string(int precision = 3) const;

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Complex> data_;
};

}  // namespace qsyn::la
