// qsyn/mvl/domain.h
//
// Pattern domains: the ordered, labeled sets of quaternary patterns on which
// circuits act as permutations.
//
// Two orderings are used by the paper and reproduced exactly here:
//
//  * Full domain (Table 1, used for the 2-qubit illustration): all 4^n
//    patterns, ordered by (set of mixed wires as a bitmask, then pattern
//    code). This puts the 2^n binary patterns first and groups the
//    don't-care rows the way the paper prints them.
//
//  * Reduced domain (the 3-qubit synthesis domain of Section 3): only the
//    "permutable" patterns — those containing at least one value 1, plus the
//    all-zero pattern. Ordering: the 2^n binary patterns ascending, then the
//    remaining mixed patterns ascending by code. For n = 3 this yields the
//    paper's 38 labels, its printed gate cycles, and its banned sets N_A,
//    N_B, N_C, N_AB, N_AC, N_BC verbatim.
//
// Labels are 1-based (as in the paper). The set S of binary labels is
// always {1, ..., 2^n}.
//
// Banned-set classes: class indices 0..n-1 are the "control classes" (class
// of wire w bans labels whose wire w is mixed; used by controlled-V/V+ gates
// with control w), and classes n..n+C(n,2)-1 are the "Feynman classes"
// (class of pair {i,j} bans labels where wire i or j is mixed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mvl/pattern.h"

namespace qsyn::mvl {

/// Identifies one banned-set class; see file comment for the numbering.
using BannedClass = std::uint32_t;

/// An ordered, labeled pattern space for a fixed wire count.
class PatternDomain {
 public:
  /// Full 4^n domain in (mixed-mask, code) order; reproduces Table 1.
  static PatternDomain full(std::size_t wires);

  /// Reduced "permutable" domain; reproduces the 38-label space for n = 3.
  static PatternDomain reduced(std::size_t wires);

  [[nodiscard]] std::size_t wires() const { return wires_; }

  /// Number of labels (= patterns) in the domain.
  [[nodiscard]] std::size_t size() const { return patterns_.size(); }

  /// Number of binary patterns = |S| = 2^wires.
  [[nodiscard]] std::size_t binary_count() const { return 1u << wires_; }

  /// Pattern for a 1-based label.
  [[nodiscard]] const Pattern& pattern(std::uint32_t label) const;

  /// 1-based label of a pattern; throws qsyn::LogicError if the pattern is
  /// not in the domain (possible only for reduced domains).
  [[nodiscard]] std::uint32_t label_of(const Pattern& p) const;

  /// True iff the pattern belongs to the domain.
  [[nodiscard]] bool contains(const Pattern& p) const;

  /// The S set of binary labels {1, ..., 2^wires}.
  [[nodiscard]] std::vector<std::uint32_t> s_set() const;

  // --- banned-set machinery --------------------------------------------------

  /// Class index for controlled gates whose control is `wire`.
  [[nodiscard]] BannedClass control_class(std::size_t wire) const;

  /// Class index for Feynman gates on the unordered pair {a, b}.
  [[nodiscard]] BannedClass feynman_class(std::size_t a, std::size_t b) const;

  /// Total number of banned-set classes (= wires + C(wires,2)).
  [[nodiscard]] std::size_t num_classes() const;

  /// Bitmask over classes: bit c set iff `label` lies in class c's banned set.
  [[nodiscard]] std::uint32_t banned_mask(std::uint32_t label) const;

  /// Alias of banned_mask — the name the n-qubit domain API exposes.
  [[nodiscard]] std::uint32_t class_mask(std::uint32_t label) const {
    return banned_mask(label);
  }

  /// The banned set of a class, as ascending 1-based labels (the paper's
  /// N_A, N_B, N_C, N_AB, N_AC, N_BC for the reduced 3-wire domain).
  [[nodiscard]] std::vector<std::uint32_t> banned_set(BannedClass c) const;

  /// Human-readable class name: "N_A", "N_BC", ... (wires named A, B, C...).
  [[nodiscard]] std::string class_name(BannedClass c) const;

  /// Inverse of class_name: parses "N_A" / "N_BC" back to the class index.
  /// Throws qsyn::ParseError on malformed names or wires beyond the domain.
  [[nodiscard]] BannedClass class_from_name(const std::string& name) const;

  /// Content fingerprint (FNV-1a over wires, label order, and banned
  /// masks): equal iff two domains present the same labels in the same
  /// order with the same class structure. The persistent catalog stores it
  /// to reject catalogs opened against a different domain.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  PatternDomain(std::size_t wires, std::vector<Pattern> patterns);

  std::size_t wires_;
  std::vector<Pattern> patterns_;          // index = label-1
  std::vector<std::uint32_t> label_by_code_;  // code -> label, 0 = absent
  std::vector<std::uint32_t> banned_masks_;   // index = label-1
};

}  // namespace qsyn::mvl
