#include "mvl/domain.h"

#include <algorithm>

#include "common/error.h"

namespace qsyn::mvl {

namespace {

/// Bitmask of wires carrying a mixed value, wire 0 as the most significant
/// bit (so masks order the way the paper prints Table 1's blocks).
std::uint32_t mixed_mask(const Pattern& p) {
  std::uint32_t mask = 0;
  for (std::size_t w = 0; w < p.wires(); ++w) {
    mask = (mask << 1) | (is_mixed(p.get(w)) ? 1u : 0u);
  }
  return mask;
}

}  // namespace

PatternDomain::PatternDomain(std::size_t wires, std::vector<Pattern> patterns)
    : wires_(wires), patterns_(std::move(patterns)) {
  label_by_code_.assign(1u << (2 * wires_), 0);
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    label_by_code_[patterns_[i].code()] = static_cast<std::uint32_t>(i + 1);
  }
  banned_masks_.resize(patterns_.size());
  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    const Pattern& p = patterns_[i];
    std::uint32_t mask = 0;
    for (std::size_t w = 0; w < wires_; ++w) {
      if (is_mixed(p.get(w))) mask |= 1u << control_class(w);
    }
    std::size_t pair_class = wires_;
    for (std::size_t a = 0; a < wires_; ++a) {
      for (std::size_t b = a + 1; b < wires_; ++b, ++pair_class) {
        if (is_mixed(p.get(a)) || is_mixed(p.get(b))) {
          mask |= 1u << pair_class;
        }
      }
    }
    banned_masks_[i] = mask;
  }
}

PatternDomain PatternDomain::full(std::size_t wires) {
  QSYN_CHECK(wires >= 1 && wires <= 8, "full domain supports 1..8 wires");
  std::vector<Pattern> patterns;
  patterns.reserve(1u << (2 * wires));
  for (std::uint32_t code = 0; code < (1u << (2 * wires)); ++code) {
    patterns.push_back(Pattern::from_code(wires, code));
  }
  std::stable_sort(patterns.begin(), patterns.end(),
                   [](const Pattern& a, const Pattern& b) {
                     const std::uint32_t ma = mixed_mask(a);
                     const std::uint32_t mb = mixed_mask(b);
                     if (ma != mb) return ma < mb;
                     return a.code() < b.code();
                   });
  return PatternDomain(wires, std::move(patterns));
}

PatternDomain PatternDomain::reduced(std::size_t wires) {
  QSYN_CHECK(wires >= 1 && wires <= 8, "reduced domain supports 1..8 wires");
  std::vector<Pattern> binary;
  std::vector<Pattern> mixed;
  for (std::uint32_t code = 0; code < (1u << (2 * wires)); ++code) {
    const Pattern p = Pattern::from_code(wires, code);
    if (p.is_binary()) {
      binary.push_back(p);  // includes the all-zero pattern (label 1)
    } else if (p.contains_one()) {
      mixed.push_back(p);
    }
    // Patterns with a mixed value but no 1 are unchangeable by every library
    // gate; the paper drops them from the permutation domain.
  }
  // Codes ascend in the enumeration, so both halves are already sorted.
  std::vector<Pattern> patterns = std::move(binary);
  patterns.insert(patterns.end(), mixed.begin(), mixed.end());
  return PatternDomain(wires, std::move(patterns));
}

const Pattern& PatternDomain::pattern(std::uint32_t label) const {
  QSYN_CHECK(label >= 1 && label <= patterns_.size(),
             "pattern label out of range");
  return patterns_[label - 1];
}

std::uint32_t PatternDomain::label_of(const Pattern& p) const {
  QSYN_CHECK(p.wires() == wires_, "pattern wire count mismatch");
  const std::uint32_t label = label_by_code_[p.code()];
  QSYN_CHECK(label != 0, "pattern not in domain: " + p.to_string());
  return label;
}

bool PatternDomain::contains(const Pattern& p) const {
  return p.wires() == wires_ && label_by_code_[p.code()] != 0;
}

std::vector<std::uint32_t> PatternDomain::s_set() const {
  std::vector<std::uint32_t> s(binary_count());
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] = static_cast<std::uint32_t>(i + 1);
  }
  return s;
}

BannedClass PatternDomain::control_class(std::size_t wire) const {
  QSYN_CHECK(wire < wires_, "control_class wire out of range");
  return static_cast<BannedClass>(wire);
}

BannedClass PatternDomain::feynman_class(std::size_t a, std::size_t b) const {
  QSYN_CHECK(a < wires_ && b < wires_ && a != b,
             "feynman_class requires two distinct wires");
  if (a > b) std::swap(a, b);
  // Pairs are numbered in lexicographic order after the wire classes.
  std::size_t index = wires_;
  for (std::size_t i = 0; i < wires_; ++i) {
    for (std::size_t j = i + 1; j < wires_; ++j, ++index) {
      if (i == a && j == b) return static_cast<BannedClass>(index);
    }
  }
  throw qsyn::LogicError("feynman_class: unreachable");
}

std::size_t PatternDomain::num_classes() const {
  return wires_ + wires_ * (wires_ - 1) / 2;
}

std::uint32_t PatternDomain::banned_mask(std::uint32_t label) const {
  QSYN_CHECK(label >= 1 && label <= banned_masks_.size(),
             "banned_mask label out of range");
  return banned_masks_[label - 1];
}

std::vector<std::uint32_t> PatternDomain::banned_set(BannedClass c) const {
  QSYN_CHECK(c < num_classes(), "banned class out of range");
  std::vector<std::uint32_t> out;
  for (std::uint32_t label = 1; label <= patterns_.size(); ++label) {
    if ((banned_masks_[label - 1] >> c & 1u) != 0) out.push_back(label);
  }
  return out;
}

std::string PatternDomain::class_name(BannedClass c) const {
  QSYN_CHECK(c < num_classes(), "banned class out of range");
  if (c < wires_) {
    return std::string("N_") + static_cast<char>('A' + c);
  }
  std::size_t index = wires_;
  for (std::size_t i = 0; i < wires_; ++i) {
    for (std::size_t j = i + 1; j < wires_; ++j, ++index) {
      if (index == c) {
        return std::string("N_") + static_cast<char>('A' + i) +
               static_cast<char>('A' + j);
      }
    }
  }
  throw qsyn::LogicError("class_name: unreachable");
}

BannedClass PatternDomain::class_from_name(const std::string& name) const {
  if (name.size() < 3 || name.compare(0, 2, "N_") != 0) {
    throw qsyn::ParseError("malformed banned-class name: " + name);
  }
  const auto wire_of = [&](char letter) -> std::size_t {
    if (letter < 'A' || static_cast<std::size_t>(letter - 'A') >= wires_) {
      throw qsyn::ParseError("banned-class wire out of range: " + name);
    }
    return static_cast<std::size_t>(letter - 'A');
  };
  if (name.size() == 3) return control_class(wire_of(name[2]));
  if (name.size() == 4) {
    const std::size_t a = wire_of(name[2]);
    const std::size_t b = wire_of(name[3]);
    if (a >= b) {
      throw qsyn::ParseError("Feynman class wires must ascend: " + name);
    }
    return feynman_class(a, b);
  }
  throw qsyn::ParseError("malformed banned-class name: " + name);
}

std::uint64_t PatternDomain::fingerprint() const {
  // FNV-1a over the domain's defining content. Byte order is fixed (values
  // fed low byte first), so the fingerprint is host-endianness independent —
  // it is stored verbatim in the on-disk catalog header.
  std::uint64_t h = 0xcbf29ce484222325ull;
  const auto mix = [&h](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xffu;
      h *= 0x00000100000001b3ull;
    }
  };
  mix(wires_);
  mix(patterns_.size());
  for (const Pattern& p : patterns_) mix(p.code());
  for (const std::uint32_t mask : banned_masks_) mix(mask);
  return h;
}

}  // namespace qsyn::mvl
