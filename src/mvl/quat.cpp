#include "mvl/quat.h"

#include "common/error.h"
#include "la/gate_constants.h"

namespace qsyn::mvl {

Quat apply_v(Quat q) {
  switch (q) {
    case Quat::kZero:
      return Quat::kV0;
    case Quat::kOne:
      return Quat::kV1;
    case Quat::kV0:
      return Quat::kOne;
    case Quat::kV1:
      return Quat::kZero;
  }
  throw qsyn::LogicError("apply_v: invalid Quat");
}

Quat apply_v_dagger(Quat q) {
  switch (q) {
    case Quat::kZero:
      return Quat::kV1;
    case Quat::kOne:
      return Quat::kV0;
    case Quat::kV0:
      return Quat::kZero;
    case Quat::kV1:
      return Quat::kOne;
  }
  throw qsyn::LogicError("apply_v_dagger: invalid Quat");
}

Quat apply_not(Quat q) {
  switch (q) {
    case Quat::kZero:
      return Quat::kOne;
    case Quat::kOne:
      return Quat::kZero;
    case Quat::kV0:
      return Quat::kV1;
    case Quat::kV1:
      return Quat::kV0;
  }
  throw qsyn::LogicError("apply_not: invalid Quat");
}

Quat binary_xor(Quat a, Quat b) {
  QSYN_CHECK(is_binary(a) && is_binary(b),
             "binary_xor requires pure binary operands");
  return (a == b) ? Quat::kZero : Quat::kOne;
}

std::string to_string(Quat q) {
  switch (q) {
    case Quat::kZero:
      return "0";
    case Quat::kOne:
      return "1";
    case Quat::kV0:
      return "V0";
    case Quat::kV1:
      return "V1";
  }
  throw qsyn::LogicError("to_string: invalid Quat");
}

Quat quat_from_string(const std::string& name) {
  if (name == "0") return Quat::kZero;
  if (name == "1") return Quat::kOne;
  if (name == "V0" || name == "v0") return Quat::kV0;
  if (name == "V1" || name == "v1") return Quat::kV1;
  throw qsyn::ParseError("unknown quaternary value: '" + name + "'");
}

const la::Vector& quat_state(Quat q) {
  switch (q) {
    case Quat::kZero:
      return la::state_0();
    case Quat::kOne:
      return la::state_1();
    case Quat::kV0:
      return la::state_v0();
    case Quat::kV1:
      return la::state_v1();
  }
  throw qsyn::LogicError("quat_state: invalid Quat");
}

double measure_one_probability(Quat q) {
  switch (q) {
    case Quat::kZero:
      return 0.0;
    case Quat::kOne:
      return 1.0;
    case Quat::kV0:
    case Quat::kV1:
      // |V0> = ((1+i)/2, (1-i)/2): |amp_1|^2 = 1/2, likewise for |V1>.
      return 0.5;
  }
  throw qsyn::LogicError("measure_one_probability: invalid Quat");
}

Quat quat_from_index(int digit) {
  QSYN_CHECK(digit >= 0 && digit < kNumQuatValues,
             "quat_from_index digit out of range");
  return static_cast<Quat>(digit);
}

}  // namespace qsyn::mvl
