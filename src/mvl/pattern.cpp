#include "mvl/pattern.h"

#include "common/error.h"
#include "common/strings.h"

namespace qsyn::mvl {

Pattern::Pattern(std::size_t wires) : wires_(wires) {
  QSYN_CHECK(wires >= 1 && wires <= kMaxWires, "unsupported wire count");
}

Pattern::Pattern(const std::vector<Quat>& values) : Pattern(values.size()) {
  for (std::size_t i = 0; i < values.size(); ++i) set(i, values[i]);
}

Pattern Pattern::from_code(std::size_t wires, std::uint32_t code) {
  Pattern p(wires);
  QSYN_CHECK(code < (1u << (2 * wires)), "pattern code out of range");
  p.code_ = code;
  return p;
}

Pattern Pattern::from_binary(std::size_t wires, std::uint32_t bits) {
  Pattern p(wires);
  QSYN_CHECK(bits < (1u << wires), "binary value out of range");
  for (std::size_t i = 0; i < wires; ++i) {
    const bool bit = ((bits >> (wires - 1 - i)) & 1u) != 0;
    p.set(i, bit ? Quat::kOne : Quat::kZero);
  }
  return p;
}

Pattern Pattern::parse(const std::string& text) {
  const char sep = text.find(',') != std::string::npos ? ',' : ' ';
  std::vector<Quat> values;
  for (const std::string& piece : qsyn::split(text, sep)) {
    if (piece.empty()) continue;
    values.push_back(quat_from_string(piece));
  }
  QSYN_CHECK(!values.empty(), "empty pattern text");
  return Pattern(values);
}

int Pattern::shift_for(std::size_t wire) const {
  QSYN_CHECK(wire < wires_, "wire index out of range");
  return static_cast<int>(2 * (wires_ - 1 - wire));
}

Quat Pattern::get(std::size_t wire) const {
  return static_cast<Quat>((code_ >> shift_for(wire)) & 3u);
}

void Pattern::set(std::size_t wire, Quat value) {
  const int shift = shift_for(wire);
  code_ = (code_ & ~(3u << shift)) |
          (static_cast<std::uint32_t>(value) << shift);
}

bool Pattern::is_binary() const {
  for (std::size_t i = 0; i < wires_; ++i) {
    if (!mvl::is_binary(get(i))) return false;
  }
  return true;
}

bool Pattern::contains_one() const {
  for (std::size_t i = 0; i < wires_; ++i) {
    if (get(i) == Quat::kOne) return true;
  }
  return false;
}

bool Pattern::contains_mixed() const {
  for (std::size_t i = 0; i < wires_; ++i) {
    if (mvl::is_mixed(get(i))) return true;
  }
  return false;
}

std::uint32_t Pattern::binary_value() const {
  QSYN_CHECK(is_binary(), "binary_value requires a pure binary pattern");
  std::uint32_t bits = 0;
  for (std::size_t i = 0; i < wires_; ++i) {
    bits = (bits << 1) | (get(i) == Quat::kOne ? 1u : 0u);
  }
  return bits;
}

std::string Pattern::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < wires_; ++i) {
    if (i != 0) out += ',';
    out += mvl::to_string(get(i));
  }
  return out;
}

}  // namespace qsyn::mvl
