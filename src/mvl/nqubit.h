// qsyn/mvl/nqubit.h
//
// NQubitDomain: the single entry point for the paper's construction at an
// arbitrary wire count n. It owns the reduced pattern domain (4^n - 3^n + 1
// labels, binary patterns first), exposes the banned-set class arithmetic,
// and knows the shape of the generalized gate library L(n):
//
//   * n control classes L_A, L_B, ... with 2(n-1) gates each (controlled-V
//     and controlled-V+ for every target wire), and
//   * C(n,2) Feynman classes L_AB, ... with 2 CNOTs each,
//
// for n * 2(n-1) + 2 * C(n,2) = 3n(n-1) gates — the paper's 18 at n = 3.
// gates::GateLibrary::standard(n) builds exactly that library over this
// domain; the construction is locked to the legacy 3-qubit artifacts by the
// golden fixtures in tests/test_domain_nqubit.cpp.
//
// The domain is held behind a shared_ptr, so NQubitDomain values are cheap
// to copy and everything built on top (libraries, enumerators) can share
// ownership instead of requiring callers to keep a PatternDomain alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "mvl/domain.h"

namespace qsyn::mvl {

/// The n-qubit synthesis domain plus the shape of its gate library.
class NQubitDomain {
 public:
  /// Builds the reduced domain for `wires` in [2, 8] (the library needs at
  /// least two wires; patterns pack 2 bits per wire).
  explicit NQubitDomain(std::size_t wires);

  [[nodiscard]] std::size_t wires() const { return wires_; }

  /// The reduced pattern domain (binary labels first). The address is
  /// stable for the lifetime of any copy of this NQubitDomain.
  [[nodiscard]] const PatternDomain& domain() const { return *domain_; }

  /// Shared ownership of the domain, for consumers that outlive the caller.
  [[nodiscard]] std::shared_ptr<const PatternDomain> share() const {
    return domain_;
  }

  /// Number of labels: 4^n - 3^n + 1.
  [[nodiscard]] std::size_t size() const { return domain_->size(); }

  /// |S| = 2^n binary labels.
  [[nodiscard]] std::size_t binary_count() const {
    return domain_->binary_count();
  }

  // --- banned-set class arithmetic ---------------------------------------

  [[nodiscard]] std::size_t num_classes() const {
    return domain_->num_classes();
  }
  [[nodiscard]] std::size_t control_class_count() const { return wires_; }
  [[nodiscard]] std::size_t feynman_class_count() const {
    return wires_ * (wires_ - 1) / 2;
  }
  [[nodiscard]] BannedClass control_class(std::size_t wire) const {
    return domain_->control_class(wire);
  }
  [[nodiscard]] BannedClass feynman_class(std::size_t a, std::size_t b) const {
    return domain_->feynman_class(a, b);
  }
  [[nodiscard]] std::uint32_t class_mask(std::uint32_t label) const {
    return domain_->class_mask(label);
  }
  [[nodiscard]] std::string class_name(BannedClass c) const {
    return domain_->class_name(c);
  }
  [[nodiscard]] BannedClass class_from_name(const std::string& name) const {
    return domain_->class_from_name(name);
  }

  // --- library shape -----------------------------------------------------

  /// Gates per control class: controlled-V and V+ for each other wire.
  [[nodiscard]] std::size_t gates_per_control_class() const {
    return 2 * (wires_ - 1);
  }

  /// Gates per Feynman class: the two CNOT orientations of the pair.
  [[nodiscard]] static constexpr std::size_t gates_per_feynman_class() {
    return 2;
  }

  /// |L(n)| = n * 2(n-1) + 2 * C(n,2) = 3n(n-1).
  [[nodiscard]] std::size_t library_size() const {
    return 3 * wires_ * (wires_ - 1);
  }

  /// 4^n - 3^n + 1 without building the domain (growth-curve arithmetic).
  [[nodiscard]] static std::size_t reduced_size(std::size_t wires);

  /// The domain's content fingerprint (PatternDomain::fingerprint): the
  /// value the persistent catalog header carries so a catalog saved over one
  /// domain is rejected when opened against another.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  std::size_t wires_;
  std::shared_ptr<const PatternDomain> domain_;
};

}  // namespace qsyn::mvl
