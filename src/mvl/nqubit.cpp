#include "mvl/nqubit.h"

#include "common/error.h"

namespace qsyn::mvl {

NQubitDomain::NQubitDomain(std::size_t wires)
    : wires_(wires),
      domain_(std::make_shared<const PatternDomain>(
          PatternDomain::reduced(wires))) {
  QSYN_CHECK(wires >= 2 && wires <= 8,
             "NQubitDomain supports 2..8 wires");
}

std::uint64_t NQubitDomain::fingerprint() const {
  return domain_->fingerprint();
}

std::size_t NQubitDomain::reduced_size(std::size_t wires) {
  QSYN_CHECK(wires >= 1 && wires <= 8, "reduced_size supports 1..8 wires");
  std::size_t pow4 = 1;
  std::size_t pow3 = 1;
  for (std::size_t i = 0; i < wires; ++i) {
    pow4 *= 4;
    pow3 *= 3;
  }
  return pow4 - pow3 + 1;
}

}  // namespace qsyn::mvl
