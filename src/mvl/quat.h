// qsyn/mvl/quat.h
//
// The paper's four-valued signal algebra. Under the constraint that control
// inputs stay pure binary, every wire in a reasonable cascade carries one of
//
//   0   = |0>
//   1   = |1>
//   V0  = V|0>  ( = V+|1> )
//   V1  = V|1>  ( = V+|0> )
//
// and the elementary gates act by the value maps
//
//   V : 0 -> V0, 1 -> V1, V0 -> 1,  V1 -> 0     (so V∘V = NOT)
//   V+: 0 -> V1, 1 -> V0, V0 -> 0,  V1 -> 1     (so V+∘V = id, V+∘V+ = NOT)
//   X : 0 <-> 1, V0 <-> V1                      (NOT; X V = V X identities)
//
// This file defines the value type and its exact algebra; mvl/domain.h builds
// the multi-wire pattern spaces on top of it.
#pragma once

#include <cstdint>
#include <string>

#include "la/vector.h"

namespace qsyn::mvl {

/// One quaternary signal value. The numeric encoding (0,1,2,3) fixes the
/// pattern ordering used throughout, matching the paper's label tables.
enum class Quat : std::uint8_t {
  kZero = 0,
  kOne = 1,
  kV0 = 2,
  kV1 = 3,
};

inline constexpr int kNumQuatValues = 4;

/// True for the pure binary values 0 and 1.
[[nodiscard]] constexpr bool is_binary(Quat q) {
  return q == Quat::kZero || q == Quat::kOne;
}

/// True for the mixed (non-binary) values V0 and V1.
[[nodiscard]] constexpr bool is_mixed(Quat q) { return !is_binary(q); }

/// Applies the square-root-of-NOT value map.
[[nodiscard]] Quat apply_v(Quat q);

/// Applies the Hermitian-adjoint map V+.
[[nodiscard]] Quat apply_v_dagger(Quat q);

/// Applies NOT. Defined on all four values (V anti-commutes consistently:
/// X·V0 is the state V1 up to global phase, so NOT swaps V0 <-> V1).
[[nodiscard]] Quat apply_not(Quat q);

/// XOR of two *binary* values; callers must check is_binary on both first
/// (the banned-set machinery guarantees this in reasonable cascades).
/// Throws qsyn::LogicError otherwise.
[[nodiscard]] Quat binary_xor(Quat a, Quat b);

/// Short name: "0", "1", "V0", "V1".
[[nodiscard]] std::string to_string(Quat q);

/// Inverse of to_string. Throws qsyn::ParseError on unknown names.
[[nodiscard]] Quat quat_from_string(const std::string& name);

/// The single-qubit state vector carried by a wire with this value.
[[nodiscard]] const la::Vector& quat_state(Quat q);

/// Probability that a quantum measurement of this value yields |1>:
/// 0 -> 0, 1 -> 1, V0 -> 1/2, V1 -> 1/2.
[[nodiscard]] double measure_one_probability(Quat q);

/// Integer value 0..3 (the pattern-ordering digit).
[[nodiscard]] constexpr int quat_index(Quat q) {
  return static_cast<int>(q);
}

/// Inverse of quat_index; `digit` must be in 0..3.
[[nodiscard]] Quat quat_from_index(int digit);

}  // namespace qsyn::mvl
