// qsyn/mvl/pattern.h
//
// A Pattern is an assignment of one quaternary value to each of n wires —
// one row of the paper's multi-valued truth tables. Wire 0 is the paper's
// qubit A (the most significant digit in the pattern ordering), wire 1 is B,
// and so on.
//
// Patterns pack 2 bits per wire into a 32-bit code, supporting up to 16
// wires; the code's numeric value is exactly the paper's "small to big"
// ordering key (A*4^{n-1} + B*4^{n-2} + ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mvl/quat.h"

namespace qsyn::mvl {

/// Maximum number of wires a Pattern can hold.
inline constexpr std::size_t kMaxWires = 16;

/// A row of quaternary wire values on a fixed number of wires.
class Pattern {
 public:
  /// All-zero pattern on `wires` wires.
  explicit Pattern(std::size_t wires);

  /// From explicit values; size gives the wire count.
  explicit Pattern(const std::vector<Quat>& values);

  /// From the packed base-4 code (wire 0 most significant).
  static Pattern from_code(std::size_t wires, std::uint32_t code);

  /// From a binary assignment given as a bitmask (bit wires-1-i ... ), i.e.
  /// the integer whose base-2 digits are the wire values, wire 0 most
  /// significant — "000" -> 0, "111" -> 7 for three wires.
  static Pattern from_binary(std::size_t wires, std::uint32_t bits);

  /// Parses a compact string like "1,V0,0" or "1 V0 0".
  static Pattern parse(const std::string& text);

  [[nodiscard]] std::size_t wires() const { return wires_; }

  [[nodiscard]] Quat get(std::size_t wire) const;
  void set(std::size_t wire, Quat value);

  /// The base-4 ordering key; also a perfect hash of the pattern.
  [[nodiscard]] std::uint32_t code() const { return code_; }

  /// True iff every wire is 0 or 1.
  [[nodiscard]] bool is_binary() const;

  /// True iff some wire carries the value 1.
  [[nodiscard]] bool contains_one() const;

  /// True iff some wire carries V0 or V1.
  [[nodiscard]] bool contains_mixed() const;

  /// For an all-binary pattern: the integer with the wire values as base-2
  /// digits (wire 0 most significant). Throws if the pattern is mixed.
  [[nodiscard]] std::uint32_t binary_value() const;

  /// Comma-separated values, e.g. "1,V0,0".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.wires_ == b.wires_ && a.code_ == b.code_;
  }
  friend bool operator!=(const Pattern& a, const Pattern& b) {
    return !(a == b);
  }
  /// Orders by the paper's "small to big" key.
  friend bool operator<(const Pattern& a, const Pattern& b) {
    return a.code_ < b.code_;
  }

 private:
  std::size_t wires_ = 0;
  std::uint32_t code_ = 0;  // 2 bits per wire; wire 0 in the top-most digits
  [[nodiscard]] int shift_for(std::size_t wire) const;
};

}  // namespace qsyn::mvl
