// qsyn/sim/state_vector.h
//
// A small state-vector quantum simulator: the Hilbert-space ground truth
// against which the paper's multi-valued abstraction is validated, and the
// measurement backend for the Section-4 probabilistic machines.
//
// Wire order convention: wire 0 (qubit A) is the most significant bit of the
// basis-state index, matching the pattern ordering of mvl::Pattern.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gates/cascade.h"
#include "la/matrix.h"
#include "la/vector.h"
#include "mvl/pattern.h"

namespace qsyn::sim {

struct SimOptions;
class UnitaryCache;

/// The quantum state of n qubits (2^n complex amplitudes).
class StateVector {
 public:
  /// |0...0> on `wires` qubits.
  explicit StateVector(std::size_t wires);

  /// Computational basis state |bits> (wire 0 = most significant bit).
  static StateVector basis(std::size_t wires, std::uint32_t bits);

  /// Product state carrying the quaternary value of each pattern wire
  /// (0 -> |0>, 1 -> |1>, V0 -> V|0>, V1 -> V|1>).
  static StateVector from_pattern(const mvl::Pattern& pattern);

  /// Adopts an explicit amplitude vector; the dimension must be a power of
  /// two (>= 2). Normalization is the caller's concern — the fused engine
  /// feeds unitary columns through here, which are normalized already.
  static StateVector from_amplitudes(la::Vector amplitudes);

  [[nodiscard]] std::size_t wires() const { return wires_; }
  [[nodiscard]] std::size_t dimension() const { return amps_.size(); }
  [[nodiscard]] const la::Vector& amplitudes() const { return amps_; }

  /// Applies a single-qubit unitary (2x2) to `wire`.
  void apply_1q(const la::Matrix& u, std::size_t wire);

  /// Applies a controlled single-qubit unitary: u on `target` when `control`
  /// is |1>. Throws qsyn::LogicError when `control == target` (a controlled
  /// gate needs two distinct wires; silently accepting the alias would
  /// produce garbage amplitudes).
  void apply_controlled_1q(const la::Matrix& u, std::size_t target,
                           std::size_t control);

  /// Applies a full-dimension (2^wires x 2^wires) unitary to the state.
  void apply_unitary(const la::Matrix& u);

  /// Applies one library gate (controlled-V/V+/Feynman/NOT).
  void apply_gate(const gates::Gate& gate);

  /// Applies a whole cascade, one gate at a time — the reference
  /// implementation the fused/batched engine (sim/fused.h, sim/batch.h) is
  /// differentially tested against.
  void apply_cascade(const gates::Cascade& cascade);

  /// Applies a cascade through the fused engine: gates are folded into
  /// per-block unitaries (options.fuse_block per block; 0 falls back to the
  /// gate-at-a-time reference). Blocks fold through `cache` when given,
  /// sharing folds across calls and cascades. Defined in sim/fused.cpp.
  void apply_cascade(const gates::Cascade& cascade, const SimOptions& options,
                     UnitaryCache* cache = nullptr);

  /// Probability that measuring all qubits yields |bits>.
  [[nodiscard]] double probability_of(std::uint32_t bits) const;

  /// Probability that measuring `wire` yields |1>.
  [[nodiscard]] double probability_one(std::size_t wire) const;

  /// Full measurement distribution over the 2^n basis states.
  [[nodiscard]] std::vector<double> distribution() const;

  /// Samples a full measurement (collapsing is the caller's concern; this
  /// just draws from distribution()).
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  /// Measures all qubits: samples an outcome and collapses to that basis
  /// state. Returns the outcome bits.
  std::uint32_t measure_all(Rng& rng);

  /// L2 distance to another state (for tests).
  [[nodiscard]] double distance_to(const StateVector& other) const;

  /// True iff equal to `other` up to a global phase.
  [[nodiscard]] bool equal_up_to_phase(
      const StateVector& other, double tol = la::kDefaultTolerance) const;

 private:
  std::size_t wires_;
  la::Vector amps_;
};

}  // namespace qsyn::sim
