#include "sim/fused.h"

#include <cstdlib>
#include <utility>

#include "common/env.h"
#include "common/error.h"
#include "common/simd/kernels.h"
#include "common/thread_pool.h"
#include "sim/state_vector.h"

namespace qsyn::sim {

SimOptions SimOptions::from_env() {
  SimOptions options;
  if (const auto parsed = parse_env_size_t("QSYN_SIM_FUSE", 0, 1024)) {
    options.fuse_block = *parsed;
  }
  return options;
}

std::size_t SimOptions::resolved_threads() const {
  return threads >= 1 ? threads : ThreadPool::default_thread_count();
}

std::size_t UnitaryCache::KeyHash::operator()(const Key& key) const {
  // FNV-1a over the wire count and the packed gate words.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t value) {
    h ^= value;
    h *= 1099511628211ULL;
  };
  mix(key.wires);
  for (const std::uint32_t g : key.gates) mix(g);
  return static_cast<std::size_t>(h);
}

namespace {

/// Folds a gate block into its full unitary by simulating every basis
/// column through the block (exact dyadic arithmetic, like gate_unitary).
la::Matrix fold_block(std::size_t wires, const gates::Gate* gates,
                      std::size_t count) {
  const std::size_t dim = std::size_t(1) << wires;
  la::Matrix u(dim, dim);
  for (std::uint32_t j = 0; j < dim; ++j) {
    StateVector s = StateVector::basis(wires, j);
    for (std::size_t g = 0; g < count; ++g) s.apply_gate(gates[g]);
    for (std::size_t i = 0; i < dim; ++i) u(i, j) = s.amplitudes()[i];
  }
  return u;
}

}  // namespace

std::shared_ptr<const la::Matrix> UnitaryCache::fold(std::size_t wires,
                                                     const gates::Gate* gates,
                                                     std::size_t count) {
  QSYN_CHECK(count >= 1, "cannot fold an empty block");
  Key key;
  key.wires = wires;
  key.gates.reserve(count);
  for (std::size_t g = 0; g < count; ++g) {
    key.gates.push_back(gates[g].packed());
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = blocks_.find(key);
    if (it != blocks_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Fold outside the lock: blocks are small but concurrent misses on
  // *different* blocks should not serialize. A racing duplicate fold of the
  // same block is harmless — emplace keeps the first published result.
  auto folded =
      std::make_shared<const la::Matrix>(fold_block(wires, gates, count));
  if (fold_hook_) fold_hook_();
  const std::size_t dim = std::size_t(1) << wires;
  const std::size_t folded_bytes = dim * dim * sizeof(la::Complex);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = blocks_.find(key);
  if (it != blocks_.end()) {
    // Lost a duplicate-fold race: the full fold work was done, so count a
    // miss (plus duplicate_folds), not a hit — otherwise serving hit-rates
    // inflate by exactly the contended folds.
    ++misses_;
    ++duplicate_folds_;
    return it->second;
  }
  ++misses_;
  if (bytes_ + folded_bytes > max_bytes_) {
    return folded;  // full: hand the fold back uncached
  }
  bytes_ += folded_bytes;
  return blocks_.emplace(std::move(key), std::move(folded)).first->second;
}

std::size_t UnitaryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

std::size_t UnitaryCache::bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

UnitaryCache::Stats UnitaryCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.duplicate_folds = duplicate_folds_;
  stats.entries = blocks_.size();
  stats.bytes = bytes_;
  return stats;
}

std::size_t UnitaryCache::hits() const { return stats().hits; }

std::size_t UnitaryCache::misses() const { return stats().misses; }

FusedCascade::FusedCascade(const gates::Cascade& cascade,
                           std::size_t fuse_block, UnitaryCache& cache)
    : wires_(cascade.wires()) {
  QSYN_CHECK(fuse_block >= 1, "fuse_block must be at least 1");
  const std::vector<gates::Gate>& gates = cascade.sequence();
  blocks_.reserve((gates.size() + fuse_block - 1) / fuse_block);
  for (std::size_t start = 0; start < gates.size(); start += fuse_block) {
    const std::size_t count = std::min(fuse_block, gates.size() - start);
    blocks_.push_back(cache.fold(wires_, gates.data() + start, count));
  }
}

const la::Matrix& FusedCascade::block(std::size_t i) const {
  QSYN_CHECK(i < blocks_.size(), "block index out of range");
  return *blocks_[i];
}

std::shared_ptr<const la::Matrix> FusedCascade::block_matrix(
    std::size_t i) const {
  QSYN_CHECK(i < blocks_.size(), "block index out of range");
  return blocks_[i];
}

void FusedCascade::apply(StateVector& state) const {
  QSYN_CHECK(state.wires() == wires_, "cascade wire count mismatch");
  for (const auto& block : blocks_) state.apply_unitary(*block);
}

StateVector FusedCascade::apply_to_basis(std::uint32_t bits) const {
  const std::size_t dim = std::size_t(1) << wires_;
  QSYN_CHECK(bits < dim, "basis state out of range");
  if (blocks_.empty()) return StateVector::basis(wires_, bits);
  // Block 0 acts on a basis state: its output is column `bits`.
  const la::Matrix& first = *blocks_[0];
  la::Vector amps(dim);
  for (std::size_t i = 0; i < dim; ++i) amps[i] = first(i, bits);
  StateVector state = StateVector::from_amplitudes(std::move(amps));
  for (std::size_t b = 1; b < blocks_.size(); ++b) {
    state.apply_unitary(*blocks_[b]);
  }
  return state;
}

std::vector<StateVector> FusedCascade::apply_to_basis_columns(
    const std::vector<std::uint32_t>& bits, bool prefer_blas) const {
  const std::size_t dim = std::size_t(1) << wires_;
  const std::size_t batch = bits.size();
  std::vector<StateVector> out;
  out.reserve(batch);
  if (batch == 0) return out;
  for (const std::uint32_t b : bits) {
    QSYN_CHECK(b < dim, "basis state out of range");
  }
  if (blocks_.empty()) {
    for (const std::uint32_t b : bits) {
      out.push_back(StateVector::basis(wires_, b));
    }
    return out;
  }
  // Column j of the working matrix is job j's state. Block 0 acts on basis
  // columns, so its application is a gather of unitary columns; every
  // further block is one dim x dim x batch product.
  std::vector<la::Complex> cur(dim * batch);
  std::vector<la::Complex> next(dim * batch);
  const la::Matrix& first = *blocks_[0];
  for (std::size_t j = 0; j < batch; ++j) {
    for (std::size_t i = 0; i < dim; ++i) {
      cur[i * batch + j] = first(i, bits[j]);
    }
  }
  for (std::size_t b = 1; b < blocks_.size(); ++b) {
    simd::gemm(blocks_[b]->data().data(), cur.data(), next.data(), dim, dim,
               batch, prefer_blas);
    cur.swap(next);
  }
  for (std::size_t j = 0; j < batch; ++j) {
    la::Vector amps(dim);
    for (std::size_t i = 0; i < dim; ++i) amps[i] = cur[i * batch + j];
    out.push_back(StateVector::from_amplitudes(std::move(amps)));
  }
  return out;
}

la::Matrix FusedCascade::unitary() const {
  la::Matrix u = la::Matrix::identity(std::size_t(1) << wires_);
  for (const auto& block : blocks_) u = *block * u;
  return u;
}

FusedCascade fuse_cascade(const gates::Cascade& cascade,
                          const SimOptions& options, UnitaryCache* cache) {
  if (cache != nullptr) {
    return FusedCascade(cascade, options.fuse_block, *cache);
  }
  // A transient cache is fine: FusedCascade holds shared references to the
  // folded blocks, not to the cache.
  UnitaryCache local;
  return FusedCascade(cascade, options.fuse_block, local);
}

void StateVector::apply_cascade(const gates::Cascade& cascade,
                                const SimOptions& options,
                                UnitaryCache* cache) {
  if (options.fuse_block == 0) {
    apply_cascade(cascade);
    return;
  }
  fuse_cascade(cascade, options, cache).apply(*this);
}

}  // namespace qsyn::sim
