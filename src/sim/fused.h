// qsyn/sim/fused.h
//
// Fused cascade simulation: a Cascade is partitioned into blocks of up to
// `fuse_block` consecutive gates, every block is folded into a single
// 2^n x 2^n unitary, and simulation applies blocks instead of gates. Folded
// blocks are memoized in a content-addressed UnitaryCache (keyed on the wire
// count plus the packed gate sequence), so a block appearing in many
// cascades — common in cross-check sweeps over enumerator output, whose
// cascades share prefixes, and in serving workloads that re-evaluate a fixed
// circuit catalog — folds exactly once per cache.
//
// The gate-at-a-time StateVector::apply_cascade stays the *reference*
// implementation. Every amplitude reachable from the paper's gate set is a
// dyadic complex rational, so folding performs exact binary arithmetic and
// the fused path reproduces the reference bit for bit; the randomized
// differential harness in tests/test_sim_fused.cpp keeps that claim honest.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "gates/cascade.h"
#include "la/matrix.h"

namespace qsyn::sim {

class StateVector;

/// Gates folded per block when QSYN_SIM_FUSE is unset.
inline constexpr std::size_t kDefaultFuseBlock = 4;

/// Tuning knobs of the fused / batched simulation paths.
struct SimOptions {
  /// Gates folded per block; 0 selects the gate-at-a-time reference path.
  std::size_t fuse_block = kDefaultFuseBlock;

  /// Total parallelism of the BatchSimulator fan-out, including the calling
  /// thread. 0 = the QSYN_THREADS environment variable when set to a
  /// positive integer, else std::thread::hardware_concurrency().
  std::size_t threads = 0;

  /// Assemble BatchSimulator jobs that share a cascade into one dense
  /// 2^n x batch column matrix and apply each fused block as a single
  /// matrix-matrix product (common/simd/kernels.h gemm) instead of one
  /// matrix-vector product per job. Exact: all amplitudes are dyadic, so
  /// the reordered accumulation is bit-identical to the per-column path.
  /// QSYN_SIMD=off (or simd::force_scalar) also disables this path.
  bool gemm_batch = true;

  /// Route the batched block products through CBLAS when compiled in
  /// (the QSYN_WITH_BLAS CMake option); ignored otherwise.
  bool blas_gemm = false;

  /// Options from the environment: fuse_block from QSYN_SIM_FUSE (a
  /// non-negative integer; 0 = reference path; unset = kDefaultFuseBlock;
  /// malformed values warn once and are ignored), threads left at 0
  /// (resolved per the rule above).
  [[nodiscard]] static SimOptions from_env();

  /// The effective worker count (resolves threads == 0).
  [[nodiscard]] std::size_t resolved_threads() const;
};

/// Default UnitaryCache capacity (bytes of stored matrix entries). Bounds
/// the memory of long-lived caches — notably the process-wide engine behind
/// sim/cross_check.h, which would otherwise grow for the process lifetime
/// when sweeping many distinct cascades.
inline constexpr std::size_t kDefaultCacheBytes = std::size_t(64) << 20;

/// Content-addressed store of folded block unitaries, shared across cascades
/// and across threads. Lookups and inserts are mutex-guarded; the fold
/// itself runs outside the lock, so a racing duplicate fold is possible but
/// only one result is ever published.
class UnitaryCache {
 public:
  /// `max_bytes` softly caps the stored matrix entries: once reached, new
  /// folds are still computed and returned, just not memoized.
  explicit UnitaryCache(std::size_t max_bytes = kDefaultCacheBytes)
      : max_bytes_(max_bytes) {}

  /// The unitary of the `count`-gate block starting at `gates`, on `wires`
  /// wires, folding and memoizing it on first use. Equal blocks (same wire
  /// count, same gate sequence) return the *same* matrix object while it
  /// stays cached.
  [[nodiscard]] std::shared_ptr<const la::Matrix> fold(
      std::size_t wires, const gates::Gate* gates, std::size_t count);

  /// Number of distinct blocks stored.
  [[nodiscard]] std::size_t size() const;

  /// Bytes of matrix entries currently stored.
  [[nodiscard]] std::size_t bytes() const;

  /// One consistent view of the lookup counters and the store shape, read
  /// under a single lock acquisition — hits + misses always equals the
  /// number of completed fold() calls, which two independent hits()/misses()
  /// reads cannot guarantee while traffic is in flight.
  struct Stats {
    std::size_t hits = 0;
    /// Every fold() that performed the fold work, including duplicate folds
    /// lost to a race — a serving hit-rate derived from hits/misses reflects
    /// work actually done.
    std::size_t misses = 0;
    /// The subset of misses that lost a concurrent duplicate-fold race on
    /// the same block (the computed result was discarded for the published
    /// one).
    std::size_t duplicate_folds = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Lookup counters, for tests and bench reporting (each a single field of
  /// stats(); use stats() when reading more than one).
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

  /// Test hook: invoked after a fold's matrix is computed, before the
  /// publish lock is re-taken — the window where a concurrent fold of the
  /// same block can win the race. Not synchronized: set it before any
  /// concurrent fold() traffic.
  void set_fold_hook(std::function<void()> hook) {
    fold_hook_ = std::move(hook);
  }

 private:
  struct Key {
    std::size_t wires = 0;
    std::vector<std::uint32_t> gates;  // Gate::packed(), in cascade order

    friend bool operator==(const Key& a, const Key& b) {
      return a.wires == b.wires && a.gates == b.gates;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const;
  };

  mutable std::mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const la::Matrix>, KeyHash> blocks_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t duplicate_folds_ = 0;
  std::function<void()> fold_hook_;
};

/// One cascade partitioned into folded blocks: block i covers gates
/// [i*fuse_block, min((i+1)*fuse_block, size)), and the cascade's action is
/// the blocks applied in cascade order. Holds shared references into the
/// cache it was folded through; the cache may be destroyed afterwards.
class FusedCascade {
 public:
  /// Partitions and folds `cascade` with block size `fuse_block` (>= 1)
  /// through `cache`.
  FusedCascade(const gates::Cascade& cascade, std::size_t fuse_block,
               UnitaryCache& cache);

  [[nodiscard]] std::size_t wires() const { return wires_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  /// The folded unitary of block i.
  [[nodiscard]] const la::Matrix& block(std::size_t i) const;

  /// The shared cache entry of block i — pointer-equal across cascades for
  /// equal blocks folded through the same cache.
  [[nodiscard]] std::shared_ptr<const la::Matrix> block_matrix(
      std::size_t i) const;

  /// Applies all blocks in cascade order.
  void apply(StateVector& state) const;

  /// Output state of the basis input |bits>. The first block acts on a
  /// basis state, so its application is a column read instead of a full
  /// matrix-vector product — with whole-cascade fusion and a warm cache a
  /// sweep over all inputs costs O(4^n) total instead of O(gates * 4^n).
  [[nodiscard]] StateVector apply_to_basis(std::uint32_t bits) const;

  /// Batched apply_to_basis: output states of the basis inputs |bits[j]>,
  /// computed jointly. The inputs assemble into a dense 2^n x batch column
  /// matrix (block 0 is a gather of unitary columns) and every further
  /// block applies as one matrix-matrix product through the simd gemm
  /// kernel — `prefer_blas` routes it to CBLAS when compiled in. Amplitudes
  /// are dyadic, so each returned state is bit-identical to
  /// apply_to_basis(bits[j]).
  [[nodiscard]] std::vector<StateVector> apply_to_basis_columns(
      const std::vector<std::uint32_t>& bits, bool prefer_blas = false) const;

  /// The full 2^n x 2^n cascade unitary (product of the blocks; identity
  /// for the empty cascade).
  [[nodiscard]] la::Matrix unitary() const;

 private:
  std::size_t wires_;
  std::vector<std::shared_ptr<const la::Matrix>> blocks_;
};

/// Folds `cascade` with options.fuse_block (>= 1) through `cache` when
/// given, else through a transient cache — the shared null-cache fallback of
/// the fused entry points (cascade_unitary, StateVector::apply_cascade).
[[nodiscard]] FusedCascade fuse_cascade(const gates::Cascade& cascade,
                                        const SimOptions& options,
                                        UnitaryCache* cache);

}  // namespace qsyn::sim
