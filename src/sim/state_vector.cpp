#include "sim/state_vector.h"

#include <cmath>

#include "common/error.h"
#include "la/gate_constants.h"

namespace qsyn::sim {

StateVector::StateVector(std::size_t wires)
    : wires_(wires), amps_(la::Vector(std::size_t(1) << wires)) {
  QSYN_CHECK(wires >= 1 && wires <= 20, "unsupported qubit count");
  amps_[0] = la::Complex(1.0, 0.0);
}

StateVector StateVector::basis(std::size_t wires, std::uint32_t bits) {
  StateVector s(wires);
  QSYN_CHECK(bits < s.dimension(), "basis state out of range");
  s.amps_[0] = la::Complex(0.0, 0.0);
  s.amps_[bits] = la::Complex(1.0, 0.0);
  return s;
}

StateVector StateVector::from_amplitudes(la::Vector amplitudes) {
  std::size_t wires = 0;
  while ((std::size_t(1) << wires) < amplitudes.size()) ++wires;
  QSYN_CHECK(wires >= 1 && (std::size_t(1) << wires) == amplitudes.size(),
             "amplitude count must be a power of two >= 2");
  StateVector s(wires);
  s.amps_ = std::move(amplitudes);
  return s;
}

StateVector StateVector::from_pattern(const mvl::Pattern& pattern) {
  StateVector s(pattern.wires());
  la::Vector product = mvl::quat_state(pattern.get(0));
  for (std::size_t w = 1; w < pattern.wires(); ++w) {
    product = product.kron(mvl::quat_state(pattern.get(w)));
  }
  s.amps_ = std::move(product);
  return s;
}

void StateVector::apply_1q(const la::Matrix& u, std::size_t wire) {
  QSYN_CHECK(u.rows() == 2 && u.cols() == 2, "apply_1q needs a 2x2 matrix");
  QSYN_CHECK(wire < wires_, "wire out of range");
  // Bit position of `wire` inside the basis index (wire 0 = MSB).
  const std::size_t bit = wires_ - 1 - wire;
  const std::size_t stride = std::size_t(1) << bit;
  for (std::size_t base = 0; base < dimension(); ++base) {
    if ((base & stride) != 0) continue;  // visit each amplitude pair once
    const la::Complex a0 = amps_[base];
    const la::Complex a1 = amps_[base | stride];
    amps_[base] = u(0, 0) * a0 + u(0, 1) * a1;
    amps_[base | stride] = u(1, 0) * a0 + u(1, 1) * a1;
  }
}

void StateVector::apply_controlled_1q(const la::Matrix& u, std::size_t target,
                                      std::size_t control) {
  QSYN_CHECK(u.rows() == 2 && u.cols() == 2,
             "apply_controlled_1q needs a 2x2 matrix");
  QSYN_CHECK(target < wires_ && control < wires_,
             "controlled gate wire out of range");
  // A self-controlled gate has no meaning on this dispatch: the pair loop
  // below would pair each amplitude with itself and scribble garbage, so
  // reject the alias explicitly instead of producing a silently wrong state.
  QSYN_CHECK(target != control,
             "controlled gate control and target must be distinct wires");
  const std::size_t tbit = wires_ - 1 - target;
  const std::size_t cbit = wires_ - 1 - control;
  const std::size_t tstride = std::size_t(1) << tbit;
  const std::size_t cstride = std::size_t(1) << cbit;
  for (std::size_t base = 0; base < dimension(); ++base) {
    if ((base & tstride) != 0) continue;
    if ((base & cstride) == 0) continue;  // control must be |1>
    const la::Complex a0 = amps_[base];
    const la::Complex a1 = amps_[base | tstride];
    amps_[base] = u(0, 0) * a0 + u(0, 1) * a1;
    amps_[base | tstride] = u(1, 0) * a0 + u(1, 1) * a1;
  }
}

void StateVector::apply_unitary(const la::Matrix& u) {
  QSYN_CHECK(u.rows() == dimension() && u.cols() == dimension(),
             "unitary dimension mismatch");
  amps_ = u * amps_;
}

void StateVector::apply_gate(const gates::Gate& gate) {
  switch (gate.kind()) {
    case gates::GateKind::kCtrlV:
      apply_controlled_1q(la::mat_v(), gate.target(), gate.control());
      break;
    case gates::GateKind::kCtrlVdag:
      apply_controlled_1q(la::mat_v_dagger(), gate.target(), gate.control());
      break;
    case gates::GateKind::kFeynman:
      apply_controlled_1q(la::mat_x(), gate.target(), gate.control());
      break;
    case gates::GateKind::kNot:
      apply_1q(la::mat_x(), gate.target());
      break;
  }
}

void StateVector::apply_cascade(const gates::Cascade& cascade) {
  QSYN_CHECK(cascade.wires() == wires_, "cascade wire count mismatch");
  for (const gates::Gate& g : cascade.sequence()) apply_gate(g);
}

double StateVector::probability_of(std::uint32_t bits) const {
  QSYN_CHECK(bits < dimension(), "basis state out of range");
  return std::norm(amps_[bits]);
}

double StateVector::probability_one(std::size_t wire) const {
  QSYN_CHECK(wire < wires_, "wire out of range");
  const std::size_t stride = std::size_t(1) << (wires_ - 1 - wire);
  double p = 0.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    if ((i & stride) != 0) p += std::norm(amps_[i]);
  }
  return p;
}

std::vector<double> StateVector::distribution() const {
  std::vector<double> probs(dimension());
  for (std::size_t i = 0; i < dimension(); ++i) probs[i] = std::norm(amps_[i]);
  return probs;
}

std::uint32_t StateVector::sample(Rng& rng) const {
  const double r = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < dimension(); ++i) {
    cumulative += std::norm(amps_[i]);
    if (r < cumulative) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(dimension() - 1);  // rounding tail
}

std::uint32_t StateVector::measure_all(Rng& rng) {
  const std::uint32_t outcome = sample(rng);
  for (std::size_t i = 0; i < dimension(); ++i) {
    amps_[i] = la::Complex(0.0, 0.0);
  }
  amps_[outcome] = la::Complex(1.0, 0.0);
  return outcome;
}

double StateVector::distance_to(const StateVector& other) const {
  QSYN_CHECK(wires_ == other.wires_, "state size mismatch");
  return (amps_ - other.amps_).norm();
}

bool StateVector::equal_up_to_phase(const StateVector& other,
                                    double tol) const {
  return wires_ == other.wires_ && amps_.equal_up_to_phase(other.amps_, tol);
}

}  // namespace qsyn::sim
