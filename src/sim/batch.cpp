#include "sim/batch.h"

#include <optional>
#include <unordered_map>

#include "common/error.h"
#include "common/simd/kernels.h"
#include "common/thread_pool.h"
#include "sim/state_vector.h"

namespace qsyn::sim {

namespace {

/// Gate-at-a-time reference check, shared by the fuse_block == 0 path and
/// the classic sim/cross_check.cpp entry point. The caller has already
/// checked the domain/cascade wire agreement.
bool check_one_reference(const gates::Cascade& cascade, double tol) {
  const std::size_t wires = cascade.wires();
  for (std::uint32_t bits = 0; bits < (1u << wires); ++bits) {
    const mvl::Pattern input = mvl::Pattern::from_binary(wires, bits);
    StateVector state = StateVector::basis(wires, bits);
    state.apply_cascade(cascade);
    const mvl::Pattern predicted = cascade.apply(input);
    const StateVector expected = StateVector::from_pattern(predicted);
    if (state.distance_to(expected) > tol) return false;
  }
  return true;
}

}  // namespace

BatchSimulator::BatchSimulator(SimOptions options)
    : options_(options), threads_(options.resolved_threads()) {}

BatchSimulator::~BatchSimulator() = default;

ThreadPool& BatchSimulator::pool() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
  return *pool_;
}

la::Vector BatchSimulator::simulate(const gates::Cascade& cascade,
                                    std::uint32_t bits) {
  if (options_.fuse_block == 0) {
    StateVector state = StateVector::basis(cascade.wires(), bits);
    state.apply_cascade(cascade);
    return state.amplitudes();
  }
  const FusedCascade fused(cascade, options_.fuse_block, cache_);
  return fused.apply_to_basis(bits).amplitudes();
}

std::vector<la::Vector> BatchSimulator::run(const std::vector<SimJob>& jobs) {
  std::vector<la::Vector> out(jobs.size());
  if (jobs.empty()) return out;
  for (const SimJob& job : jobs) {
    QSYN_CHECK(job.cascade != nullptr, "SimJob without a cascade");
  }
  if (jobs.size() == 1) {  // nothing to fan out; skip the pool round
    out[0] = simulate(*jobs[0].cascade, jobs[0].input_bits);
    return out;
  }
  if (options_.fuse_block == 0) {
    pool().run(jobs.size(), [&](std::size_t task, std::size_t) {
      const SimJob& job = jobs[task];
      StateVector state =
          StateVector::basis(job.cascade->wires(), job.input_bits);
      state.apply_cascade(*job.cascade);
      out[task] = state.amplitudes();
    });
    return out;
  }
  // Fold each distinct cascade exactly once — across the pool, since on a
  // cold cache folding dominates the per-job column reads — then fan the
  // jobs out. The fused forms are read-only during the sweep, so tasks
  // share them freely.
  std::unordered_map<const gates::Cascade*, std::size_t> fused_index;
  std::vector<const gates::Cascade*> unique;
  for (const SimJob& job : jobs) {
    if (fused_index.emplace(job.cascade, unique.size()).second) {
      unique.push_back(job.cascade);
    }
  }
  std::vector<std::optional<FusedCascade>> fused(unique.size());
  pool().run(unique.size(), [&](std::size_t task, std::size_t) {
    fused[task].emplace(*unique[task], options_.fuse_block, cache_);
  });
  if (options_.gemm_batch && !simd::scalar_forced()) {
    // GEMM-batched: jobs sharing a cascade assemble into one dense
    // 2^n x batch column matrix, and each fused block applies as a single
    // matrix-matrix product. One task per distinct cascade; the dyadic
    // amplitudes make the result bit-identical to the per-job path.
    // Single-block cascades never reach a product (block 0 is a column
    // gather either way) and single-job groups degenerate to the same
    // matrix-vector work, so both fall back to the per-job column path
    // instead of paying the assemble/unpack transpose for nothing.
    std::vector<std::vector<std::size_t>> members(unique.size());
    for (std::size_t task = 0; task < jobs.size(); ++task) {
      members[fused_index.at(jobs[task].cascade)].push_back(task);
    }
    const bool prefer_blas = options_.blas_gemm;
    pool().run(unique.size(), [&](std::size_t group, std::size_t) {
      if (fused[group]->block_count() < 2 || members[group].size() < 2) {
        for (const std::size_t task : members[group]) {
          out[task] =
              fused[group]->apply_to_basis(jobs[task].input_bits).amplitudes();
        }
        return;
      }
      std::vector<std::uint32_t> bits;
      bits.reserve(members[group].size());
      for (const std::size_t task : members[group]) {
        bits.push_back(jobs[task].input_bits);
      }
      std::vector<StateVector> states =
          fused[group]->apply_to_basis_columns(bits, prefer_blas);
      for (std::size_t m = 0; m < members[group].size(); ++m) {
        out[members[group][m]] = states[m].amplitudes();
      }
    });
    return out;
  }
  pool().run(jobs.size(), [&](std::size_t task, std::size_t) {
    const FusedCascade& f = *fused[fused_index.at(jobs[task].cascade)];
    out[task] = f.apply_to_basis(jobs[task].input_bits).amplitudes();
  });
  return out;
}

std::vector<la::Vector> BatchSimulator::run_all_inputs(
    const gates::Cascade& cascade) {
  const std::size_t dim = std::size_t(1) << cascade.wires();
  std::vector<SimJob> jobs(dim);
  for (std::uint32_t bits = 0; bits < dim; ++bits) {
    jobs[bits] = SimJob{&cascade, bits};
  }
  return run(jobs);
}

std::vector<char> BatchSimulator::check_mv_model(
    const std::vector<const gates::Cascade*>& cascades,
    const mvl::PatternDomain& domain, double tol) {
  std::vector<char> out(cascades.size(), 0);
  if (cascades.empty()) return out;
  for (const gates::Cascade* cascade : cascades) {
    QSYN_CHECK(cascade != nullptr, "check_mv_model without a cascade");
  }
  if (cascades.size() == 1) {
    out[0] = check_mv_model_one(*cascades[0], domain, tol) ? 1 : 0;
    return out;
  }
  pool().run(cascades.size(), [&](std::size_t task, std::size_t) {
    out[task] = check_mv_model_one(*cascades[task], domain, tol) ? 1 : 0;
  });
  return out;
}

bool BatchSimulator::check_mv_model_one(const gates::Cascade& cascade,
                                        const mvl::PatternDomain& domain,
                                        double tol) {
  if (domain.wires() != cascade.wires()) return false;
  if (options_.fuse_block == 0) {
    return check_one_reference(cascade, tol);
  }
  const std::size_t wires = cascade.wires();
  const FusedCascade fused(cascade, options_.fuse_block, cache_);
  if (options_.gemm_batch && !simd::scalar_forced() &&
      fused.block_count() >= 2) {
    // All 2^n inputs in one batch: the whole soundness sweep becomes a
    // handful of dim x dim x dim products. (Single-block cascades skip
    // this — block 0 is a column gather either way, so batching would
    // only add a transpose round-trip.)
    std::vector<std::uint32_t> all_bits(std::size_t(1) << wires);
    for (std::uint32_t bits = 0; bits < all_bits.size(); ++bits) {
      all_bits[bits] = bits;
    }
    const std::vector<StateVector> states =
        fused.apply_to_basis_columns(all_bits, options_.blas_gemm);
    for (std::uint32_t bits = 0; bits < all_bits.size(); ++bits) {
      const mvl::Pattern predicted =
          cascade.apply(mvl::Pattern::from_binary(wires, bits));
      const StateVector expected = StateVector::from_pattern(predicted);
      if (states[bits].distance_to(expected) > tol) return false;
    }
    return true;
  }
  for (std::uint32_t bits = 0; bits < (1u << wires); ++bits) {
    const StateVector state = fused.apply_to_basis(bits);
    const mvl::Pattern predicted =
        cascade.apply(mvl::Pattern::from_binary(wires, bits));
    const StateVector expected = StateVector::from_pattern(predicted);
    if (state.distance_to(expected) > tol) return false;
  }
  return true;
}

}  // namespace qsyn::sim
