#include "sim/batch.h"

#include <optional>
#include <unordered_map>

#include "common/error.h"
#include "common/thread_pool.h"
#include "sim/state_vector.h"

namespace qsyn::sim {

namespace {

/// Gate-at-a-time reference check, shared by the fuse_block == 0 path and
/// the classic sim/cross_check.cpp entry point. The caller has already
/// checked the domain/cascade wire agreement.
bool check_one_reference(const gates::Cascade& cascade, double tol) {
  const std::size_t wires = cascade.wires();
  for (std::uint32_t bits = 0; bits < (1u << wires); ++bits) {
    const mvl::Pattern input = mvl::Pattern::from_binary(wires, bits);
    StateVector state = StateVector::basis(wires, bits);
    state.apply_cascade(cascade);
    const mvl::Pattern predicted = cascade.apply(input);
    const StateVector expected = StateVector::from_pattern(predicted);
    if (state.distance_to(expected) > tol) return false;
  }
  return true;
}

}  // namespace

BatchSimulator::BatchSimulator(SimOptions options)
    : options_(options), threads_(options.resolved_threads()) {}

BatchSimulator::~BatchSimulator() = default;

ThreadPool& BatchSimulator::pool() {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads_);
  return *pool_;
}

la::Vector BatchSimulator::simulate(const gates::Cascade& cascade,
                                    std::uint32_t bits) {
  if (options_.fuse_block == 0) {
    StateVector state = StateVector::basis(cascade.wires(), bits);
    state.apply_cascade(cascade);
    return state.amplitudes();
  }
  const FusedCascade fused(cascade, options_.fuse_block, cache_);
  return fused.apply_to_basis(bits).amplitudes();
}

std::vector<la::Vector> BatchSimulator::run(const std::vector<SimJob>& jobs) {
  std::vector<la::Vector> out(jobs.size());
  if (jobs.empty()) return out;
  for (const SimJob& job : jobs) {
    QSYN_CHECK(job.cascade != nullptr, "SimJob without a cascade");
  }
  if (jobs.size() == 1) {  // nothing to fan out; skip the pool round
    out[0] = simulate(*jobs[0].cascade, jobs[0].input_bits);
    return out;
  }
  if (options_.fuse_block == 0) {
    pool().run(jobs.size(), [&](std::size_t task, std::size_t) {
      const SimJob& job = jobs[task];
      StateVector state =
          StateVector::basis(job.cascade->wires(), job.input_bits);
      state.apply_cascade(*job.cascade);
      out[task] = state.amplitudes();
    });
    return out;
  }
  // Fold each distinct cascade exactly once — across the pool, since on a
  // cold cache folding dominates the per-job column reads — then fan the
  // jobs out. The fused forms are read-only during the sweep, so tasks
  // share them freely.
  std::unordered_map<const gates::Cascade*, std::size_t> fused_index;
  std::vector<const gates::Cascade*> unique;
  for (const SimJob& job : jobs) {
    if (fused_index.emplace(job.cascade, unique.size()).second) {
      unique.push_back(job.cascade);
    }
  }
  std::vector<std::optional<FusedCascade>> fused(unique.size());
  pool().run(unique.size(), [&](std::size_t task, std::size_t) {
    fused[task].emplace(*unique[task], options_.fuse_block, cache_);
  });
  pool().run(jobs.size(), [&](std::size_t task, std::size_t) {
    const FusedCascade& f = *fused[fused_index.at(jobs[task].cascade)];
    out[task] = f.apply_to_basis(jobs[task].input_bits).amplitudes();
  });
  return out;
}

std::vector<la::Vector> BatchSimulator::run_all_inputs(
    const gates::Cascade& cascade) {
  const std::size_t dim = std::size_t(1) << cascade.wires();
  std::vector<SimJob> jobs(dim);
  for (std::uint32_t bits = 0; bits < dim; ++bits) {
    jobs[bits] = SimJob{&cascade, bits};
  }
  return run(jobs);
}

std::vector<char> BatchSimulator::check_mv_model(
    const std::vector<const gates::Cascade*>& cascades,
    const mvl::PatternDomain& domain, double tol) {
  std::vector<char> out(cascades.size(), 0);
  if (cascades.empty()) return out;
  for (const gates::Cascade* cascade : cascades) {
    QSYN_CHECK(cascade != nullptr, "check_mv_model without a cascade");
  }
  if (cascades.size() == 1) {
    out[0] = check_mv_model_one(*cascades[0], domain, tol) ? 1 : 0;
    return out;
  }
  pool().run(cascades.size(), [&](std::size_t task, std::size_t) {
    out[task] = check_mv_model_one(*cascades[task], domain, tol) ? 1 : 0;
  });
  return out;
}

bool BatchSimulator::check_mv_model_one(const gates::Cascade& cascade,
                                        const mvl::PatternDomain& domain,
                                        double tol) {
  if (domain.wires() != cascade.wires()) return false;
  if (options_.fuse_block == 0) {
    return check_one_reference(cascade, tol);
  }
  const std::size_t wires = cascade.wires();
  const FusedCascade fused(cascade, options_.fuse_block, cache_);
  for (std::uint32_t bits = 0; bits < (1u << wires); ++bits) {
    const StateVector state = fused.apply_to_basis(bits);
    const mvl::Pattern predicted =
        cascade.apply(mvl::Pattern::from_binary(wires, bits));
    const StateVector expected = StateVector::from_pattern(predicted);
    if (state.distance_to(expected) > tol) return false;
  }
  return true;
}

}  // namespace qsyn::sim
