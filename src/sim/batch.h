// qsyn/sim/batch.h
//
// Many-circuits-per-call simulation serving. A BatchSimulator evaluates
// whole batches of (cascade, input-pattern) jobs per call: every distinct
// cascade in the batch is folded once through the fused engine (sim/fused.h,
// block unitaries shared via one content-addressed cache), and the jobs fan
// out across a common/thread_pool worker pool. With fuse_block == 0 the
// batch engine runs the gate-at-a-time reference path instead, which keeps
// the fan-out machinery itself differentially testable in isolation.
//
// This is the serving backend behind sim/cross_check.cpp's soundness sweeps
// and the automata/ measurement unit (automata/automaton.h); the knobs live
// in SimOptions (env: QSYN_SIM_FUSE, QSYN_THREADS).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gates/cascade.h"
#include "la/vector.h"
#include "mvl/domain.h"
#include "sim/fused.h"

namespace qsyn {
class ThreadPool;
}

namespace qsyn::sim {

/// One simulation request: a cascade evaluated on one binary basis input.
/// The cascade must outlive the BatchSimulator call.
struct SimJob {
  const gates::Cascade* cascade = nullptr;
  std::uint32_t input_bits = 0;
};

/// Batched, fused, multi-threaded cascade evaluator.
class BatchSimulator {
 public:
  explicit BatchSimulator(SimOptions options = {});
  ~BatchSimulator();

  BatchSimulator(const BatchSimulator&) = delete;
  BatchSimulator& operator=(const BatchSimulator&) = delete;

  [[nodiscard]] const SimOptions& options() const { return options_; }

  /// Resolved fan-out parallelism (>= 1).
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// The shared block-unitary cache (persists across calls, so repeated
  /// circuits — the serving steady state — skip folding entirely).
  [[nodiscard]] UnitaryCache& cache() { return cache_; }

  /// Evaluates every job; result i holds job i's output amplitudes. Jobs
  /// may mix cascades of different wire counts. Single-job batches run
  /// inline — no pool round — so per-step callers (the automata measurement
  /// unit) pay nothing for the fan-out machinery.
  [[nodiscard]] std::vector<la::Vector> run(const std::vector<SimJob>& jobs);

  /// All 2^wires basis-input outputs of one cascade (entry j = input j),
  /// folding the cascade once and fanning the inputs out.
  [[nodiscard]] std::vector<la::Vector> run_all_inputs(
      const gates::Cascade& cascade);

  /// Batched soundness sweep (the paper's claim behind sim/cross_check.h):
  /// entry i is 1 iff cascade i's Hilbert-space output equals the
  /// multi-valued model's predicted product state on every binary input.
  /// Cascades fan out across the pool; each is folded at most once.
  [[nodiscard]] std::vector<char> check_mv_model(
      const std::vector<const gates::Cascade*>& cascades,
      const mvl::PatternDomain& domain, double tol = 1e-9);

  /// Single-cascade variant of check_mv_model (no fan-out; reuses the
  /// cache, so sweeping a catalog one call at a time still folds once).
  [[nodiscard]] bool check_mv_model_one(const gates::Cascade& cascade,
                                        const mvl::PatternDomain& domain,
                                        double tol = 1e-9);

 private:
  /// Output amplitudes of one (cascade, input) pair under options_.
  [[nodiscard]] la::Vector simulate(const gates::Cascade& cascade,
                                    std::uint32_t bits);
  [[nodiscard]] ThreadPool& pool();

  SimOptions options_;
  std::size_t threads_;
  UnitaryCache cache_;
  // Created lazily on the first multi-job fan-out, under pool_mutex_ (an
  // engine can be shared, e.g. across QuantumAutomaton copies). Note
  // ThreadPool::run itself is not reentrant: concurrent multi-job batches
  // on one shared engine fail loudly rather than race.
  std::mutex pool_mutex_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace qsyn::sim
