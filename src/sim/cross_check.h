// qsyn/sim/cross_check.h
//
// Validation bridge between the paper's multi-valued abstraction (mvl/gates)
// and full Hilbert-space semantics (sim). The soundness claim behind the
// whole reduction is:
//
//   For every *reasonable* cascade and every binary input pattern, the
//   simulator's output state is exactly the product state of the quaternary
//   values predicted by the multi-valued model (no phase defects).
//
// These helpers check that claim instance by instance; the test suite sweeps
// them over the library gates, the paper's circuits, and random cascades.
//
// The checks are served by the fused/batched engine (sim/batch.h): the
// process-wide default engine is configured from the environment
// (QSYN_SIM_FUSE = gates per fused block, 0 = the gate-at-a-time reference
// path), and the overloads taking an explicit BatchSimulator let sweeps
// share one engine — and its block-unitary cache — across many cascades.
#pragma once

#include <vector>

#include "gates/cascade.h"
#include "mvl/domain.h"
#include "perm/permutation.h"

namespace qsyn::sim {

class BatchSimulator;
struct SimOptions;
class UnitaryCache;

/// True iff, for every binary input, simulating `cascade` yields exactly the
/// product state predicted by the multi-valued model. The cascade should be
/// reasonable over `domain` (the guarantee does not hold otherwise). Served
/// by the process-wide env-configured engine (single-threaded, shared
/// block cache; QSYN_SIM_FUSE=0 forces the reference path).
[[nodiscard]] bool mv_model_matches_hilbert(const gates::Cascade& cascade,
                                            const mvl::PatternDomain& domain,
                                            double tol = 1e-9);

/// Same check through an explicit batch engine.
[[nodiscard]] bool mv_model_matches_hilbert(const gates::Cascade& cascade,
                                            const mvl::PatternDomain& domain,
                                            double tol, BatchSimulator& sim);

/// Batched sweep: entry i is 1 iff cascade i passes the check. Cascades fan
/// out across `sim`'s worker pool and share its block-unitary cache.
[[nodiscard]] std::vector<char> mv_model_matches_hilbert_batch(
    const std::vector<const gates::Cascade*>& cascades,
    const mvl::PatternDomain& domain, double tol, BatchSimulator& sim);

/// True iff the cascade's full unitary is exactly the permutation matrix of
/// `target` (a permutation of {1..2^n} in binary-value order).
[[nodiscard]] bool realizes_permutation(const gates::Cascade& cascade,
                                        const perm::Permutation& target,
                                        double tol = 1e-9);

/// Fused-path variant: the cascade folds into per-block unitaries through
/// `cache` when given, so verification sweeps over many cascades (e.g. the
/// per-gate library check at width n) reuse shared folds instead of
/// rebuilding the full product gate by gate.
[[nodiscard]] bool realizes_permutation(const gates::Cascade& cascade,
                                        const perm::Permutation& target,
                                        const SimOptions& options,
                                        double tol = 1e-9,
                                        UnitaryCache* cache = nullptr);

}  // namespace qsyn::sim
