// qsyn/sim/cross_check.h
//
// Validation bridge between the paper's multi-valued abstraction (mvl/gates)
// and full Hilbert-space semantics (sim). The soundness claim behind the
// whole reduction is:
//
//   For every *reasonable* cascade and every binary input pattern, the
//   simulator's output state is exactly the product state of the quaternary
//   values predicted by the multi-valued model (no phase defects).
//
// These helpers check that claim instance by instance; the test suite sweeps
// them over the library gates, the paper's circuits, and random cascades.
#pragma once

#include "gates/cascade.h"
#include "mvl/domain.h"
#include "perm/permutation.h"

namespace qsyn::sim {

/// True iff, for every binary input, simulating `cascade` yields exactly the
/// product state predicted by the multi-valued model. The cascade should be
/// reasonable over `domain` (the guarantee does not hold otherwise).
[[nodiscard]] bool mv_model_matches_hilbert(const gates::Cascade& cascade,
                                            const mvl::PatternDomain& domain,
                                            double tol = 1e-9);

/// True iff the cascade's full unitary is exactly the permutation matrix of
/// `target` (a permutation of {1..2^n} in binary-value order).
[[nodiscard]] bool realizes_permutation(const gates::Cascade& cascade,
                                        const perm::Permutation& target,
                                        double tol = 1e-9);

}  // namespace qsyn::sim
