#include "sim/cross_check.h"

#include "sim/state_vector.h"
#include "sim/unitary.h"

namespace qsyn::sim {

bool mv_model_matches_hilbert(const gates::Cascade& cascade,
                              const mvl::PatternDomain& domain, double tol) {
  const std::size_t wires = cascade.wires();
  if (domain.wires() != wires) return false;
  for (std::uint32_t bits = 0; bits < (1u << wires); ++bits) {
    const mvl::Pattern input = mvl::Pattern::from_binary(wires, bits);
    // Hilbert-space evolution.
    StateVector state = StateVector::basis(wires, bits);
    state.apply_cascade(cascade);
    // Multi-valued prediction, lifted back to a product state.
    const mvl::Pattern predicted = cascade.apply(input);
    const StateVector expected = StateVector::from_pattern(predicted);
    if (state.distance_to(expected) > tol) return false;
  }
  return true;
}

bool realizes_permutation(const gates::Cascade& cascade,
                          const perm::Permutation& target, double tol) {
  const la::Matrix u = cascade_unitary(cascade);
  const la::Matrix expected = permutation_unitary(
      target.extended_to(std::size_t(1) << cascade.wires()), cascade.wires());
  return u.approx_equal(expected, tol);
}

}  // namespace qsyn::sim
