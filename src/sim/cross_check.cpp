#include "sim/cross_check.h"

#include "sim/batch.h"
#include "sim/state_vector.h"
#include "sim/unitary.h"

namespace qsyn::sim {

namespace {

/// Process-wide engine for the classic single-cascade entry points:
/// fuse_block from QSYN_SIM_FUSE, but pinned to one thread — a 2^n-input
/// check has nothing worth fanning out, and a single-threaded engine keeps
/// concurrent callers safe (the block cache itself is mutex-guarded).
BatchSimulator& default_engine() {
  static BatchSimulator engine = [] {
    SimOptions options = SimOptions::from_env();
    options.threads = 1;
    return BatchSimulator(options);
  }();
  return engine;
}

}  // namespace

bool mv_model_matches_hilbert(const gates::Cascade& cascade,
                              const mvl::PatternDomain& domain, double tol) {
  return default_engine().check_mv_model_one(cascade, domain, tol);
}

bool mv_model_matches_hilbert(const gates::Cascade& cascade,
                              const mvl::PatternDomain& domain, double tol,
                              BatchSimulator& sim) {
  return sim.check_mv_model_one(cascade, domain, tol);
}

std::vector<char> mv_model_matches_hilbert_batch(
    const std::vector<const gates::Cascade*>& cascades,
    const mvl::PatternDomain& domain, double tol, BatchSimulator& sim) {
  return sim.check_mv_model(cascades, domain, tol);
}

bool realizes_permutation(const gates::Cascade& cascade,
                          const perm::Permutation& target, double tol) {
  const la::Matrix u = cascade_unitary(cascade);
  const la::Matrix expected = permutation_unitary(
      target.extended_to(std::size_t(1) << cascade.wires()), cascade.wires());
  return u.approx_equal(expected, tol);
}

bool realizes_permutation(const gates::Cascade& cascade,
                          const perm::Permutation& target,
                          const SimOptions& options, double tol,
                          UnitaryCache* cache) {
  const la::Matrix u = cascade_unitary(cascade, options, cache);
  const la::Matrix expected = permutation_unitary(
      target.extended_to(std::size_t(1) << cascade.wires()), cascade.wires());
  return u.approx_equal(expected, tol);
}

}  // namespace qsyn::sim
