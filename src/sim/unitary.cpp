#include "sim/unitary.h"

#include "common/error.h"
#include "sim/fused.h"
#include "sim/state_vector.h"

namespace qsyn::sim {

la::Matrix gate_unitary(const gates::Gate& gate, std::size_t wires) {
  const std::size_t dim = std::size_t(1) << wires;
  la::Matrix u(dim, dim);
  // Column j of U is U|j>: run the simulator on each basis state.
  for (std::uint32_t j = 0; j < dim; ++j) {
    StateVector s = StateVector::basis(wires, j);
    s.apply_gate(gate);
    for (std::size_t i = 0; i < dim; ++i) {
      u(i, j) = s.amplitudes()[i];
    }
  }
  return u;
}

la::Matrix cascade_unitary(const gates::Cascade& cascade) {
  const std::size_t dim = std::size_t(1) << cascade.wires();
  la::Matrix u(dim, dim);
  for (std::uint32_t j = 0; j < dim; ++j) {
    StateVector s = StateVector::basis(cascade.wires(), j);
    s.apply_cascade(cascade);
    for (std::size_t i = 0; i < dim; ++i) {
      u(i, j) = s.amplitudes()[i];
    }
  }
  return u;
}

la::Matrix cascade_unitary(const gates::Cascade& cascade,
                           const SimOptions& options, UnitaryCache* cache) {
  if (options.fuse_block == 0) return cascade_unitary(cascade);
  return fuse_cascade(cascade, options, cache).unitary();
}

la::Matrix permutation_unitary(const perm::Permutation& perm,
                               std::size_t wires) {
  const std::size_t dim = std::size_t(1) << wires;
  QSYN_CHECK(perm.degree() <= dim, "permutation degree exceeds 2^wires");
  std::vector<std::size_t> images(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    images[j] = perm.apply(static_cast<std::uint32_t>(j + 1)) - 1;
  }
  return la::Matrix::permutation(images);
}

bool is_permutative(const gates::Cascade& cascade, double tol) {
  return cascade_unitary(cascade).is_permutation(tol);
}

namespace {

perm::Permutation permutation_of_unitary(const la::Matrix& u, double tol) {
  const std::vector<std::size_t> images0 = u.extract_permutation(false, tol);
  std::vector<std::uint32_t> images(images0.size());
  for (std::size_t i = 0; i < images0.size(); ++i) {
    images[i] = static_cast<std::uint32_t>(images0[i]);
  }
  return perm::Permutation::from_images0(images);
}

}  // namespace

perm::Permutation extract_classical_permutation(const gates::Cascade& cascade,
                                                double tol) {
  return permutation_of_unitary(cascade_unitary(cascade), tol);
}

perm::Permutation extract_classical_permutation(const gates::Cascade& cascade,
                                                const SimOptions& options,
                                                double tol,
                                                UnitaryCache* cache) {
  return permutation_of_unitary(cascade_unitary(cascade, options, cache), tol);
}

}  // namespace qsyn::sim
