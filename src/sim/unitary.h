// qsyn/sim/unitary.h
//
// Full-unitary construction for gates and cascades: the 2^n x 2^n matrices
// the paper's abstraction replaces. Used to verify that synthesized cascades
// implement exactly the requested reversible function (as a 0/1 permutation
// matrix, with no phase defects — the paper's constructions are exact).
#pragma once

#include "gates/cascade.h"
#include "gates/gate.h"
#include "la/matrix.h"
#include "perm/permutation.h"

namespace qsyn::sim {

struct SimOptions;
class UnitaryCache;

/// The 2^wires x 2^wires unitary of one elementary gate.
[[nodiscard]] la::Matrix gate_unitary(const gates::Gate& gate,
                                      std::size_t wires);

/// The unitary of a cascade (gate matrices multiplied in cascade order:
/// U = U_k ... U_2 U_1 so that U acts on column vectors).
[[nodiscard]] la::Matrix cascade_unitary(const gates::Cascade& cascade);

/// Fused-path variant: the cascade is folded into per-block unitaries
/// (options.fuse_block gates each; 0 falls back to the reference above) and
/// the product taken block-wise. Blocks fold through `cache` when given, so
/// sweeps over many cascades share folds.
[[nodiscard]] la::Matrix cascade_unitary(const gates::Cascade& cascade,
                                         const SimOptions& options,
                                         UnitaryCache* cache = nullptr);

/// The permutation matrix of a reversible function given as a permutation of
/// {1..2^n} in binary-value order (label 1 = |0..0>).
[[nodiscard]] la::Matrix permutation_unitary(const perm::Permutation& perm,
                                             std::size_t wires);

/// True iff the cascade's unitary is exactly a 0/1 permutation matrix, i.e.
/// the circuit is a deterministic classical reversible circuit in Hilbert
/// space (not merely up to phases).
[[nodiscard]] bool is_permutative(const gates::Cascade& cascade,
                                  double tol = la::kDefaultTolerance);

/// Extracts the classical permutation (on {1..2^n}) realized by a
/// permutative cascade. Throws qsyn::LogicError if not permutative.
[[nodiscard]] perm::Permutation extract_classical_permutation(
    const gates::Cascade& cascade, double tol = la::kDefaultTolerance);

/// Fused-path variant of extract_classical_permutation; agrees with the
/// reference on every permutative cascade (differentially tested in
/// tests/test_sim_fused.cpp).
[[nodiscard]] perm::Permutation extract_classical_permutation(
    const gates::Cascade& cascade, const SimOptions& options,
    double tol = la::kDefaultTolerance, UnitaryCache* cache = nullptr);

}  // namespace qsyn::sim
