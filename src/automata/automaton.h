// qsyn/automata/automaton.h
//
// Quantum-realized probabilistic state machines (Figure 3 of the paper):
// a synthesized combinational quantum circuit, a measurement unit, and a
// state register closed in a loop. Each cycle the register bits (and
// optional external input bits) enter the circuit as pure binary values, the
// outputs are measured, and designated output wires are latched as the next
// state. Externally the machine is a probabilistic finite state machine.
//
// The induced Markov chain is computed *exactly* from the multi-valued
// model: each (state, input) pair yields a quaternary output pattern whose
// measurement distribution factorizes per wire. The linear-algebra substrate
// solves for the stationary distribution, and Monte-Carlo runs validate it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "gates/cascade.h"
#include "la/matrix.h"

namespace qsyn::sim {
class BatchSimulator;
struct SimOptions;
}  // namespace qsyn::sim

namespace qsyn::automata {

/// How the measurement unit turns the circuit's action on a binary input
/// word into an outcome distribution.
enum class MeasurementBackend : std::uint8_t {
  /// The paper's exact product rule: run the multi-valued semantics and
  /// factorize the measurement per wire. Exact for reasonable cascades —
  /// the reference backend.
  kMultiValued,
  /// Full Hilbert-space simulation through the fused/batched engine
  /// (sim/batch.h): |amplitude|^2 of the simulated output state. Agrees
  /// with kMultiValued on reasonable cascades and stays correct on
  /// arbitrary circuits beyond the paper's reasonability constraint.
  kHilbert,
};

/// A probabilistic FSM realized by a quantum combinational circuit.
///
/// Wire layout: the first `state_wires` wires carry the current state (and
/// their measured values become the next state); the remaining wires are
/// external inputs (re-armed with fresh input bits every cycle) whose
/// measured values are the machine's observable output.
class QuantumAutomaton {
 public:
  QuantumAutomaton(gates::Cascade circuit, std::size_t state_wires);

  [[nodiscard]] std::size_t state_wires() const { return state_wires_; }
  [[nodiscard]] std::size_t input_wires() const {
    return circuit_.wires() - state_wires_;
  }
  [[nodiscard]] std::size_t state_count() const {
    return std::size_t(1) << state_wires_;
  }
  [[nodiscard]] const gates::Cascade& circuit() const { return circuit_; }

  [[nodiscard]] std::uint32_t state() const { return state_; }
  void reset(std::uint32_t state = 0);

  /// Selects the measurement backend. kHilbert builds a batch engine with
  /// env-configured options (QSYN_SIM_FUSE / QSYN_THREADS); the overload
  /// below pins explicit options. kMultiValued releases the engine.
  void set_measurement_backend(MeasurementBackend backend);
  void set_measurement_backend(MeasurementBackend backend,
                               const sim::SimOptions& options);
  [[nodiscard]] MeasurementBackend measurement_backend() const {
    return backend_;
  }

  /// Runs one cycle with the given external input bits; returns the full
  /// measured output word (state bits high, output bits low).
  std::uint32_t step(std::uint32_t input_bits, Rng& rng);

  /// Exact joint distribution over measured output words for one
  /// (state, input) pair.
  [[nodiscard]] std::vector<double> output_distribution(
      std::uint32_t state, std::uint32_t input_bits) const;

  /// Exact state-transition matrix for a fixed input: T(next, current).
  /// Columns sum to 1 (column-stochastic, composable with la::Matrix
  /// products acting on probability column vectors).
  [[nodiscard]] la::Matrix transition_matrix(std::uint32_t input_bits) const;

  /// Stationary distribution of the chain under a fixed input, computed by
  /// solving (T - I) pi = 0 with the normalization row sum(pi) = 1.
  /// Requires the chain to have a unique stationary distribution.
  [[nodiscard]] std::vector<double> stationary_distribution(
      std::uint32_t input_bits) const;

  /// Empirical state-visit frequencies over `cycles` Monte-Carlo steps with
  /// a fixed input (after discarding `burn_in` steps).
  [[nodiscard]] std::vector<double> empirical_distribution(
      std::uint32_t input_bits, std::size_t cycles, Rng& rng,
      std::size_t burn_in = 128);

 private:
  /// Exact outcome distribution over full output words for one input word,
  /// through the selected backend.
  [[nodiscard]] std::vector<double> joint_distribution(
      std::uint32_t word) const;

  gates::Cascade circuit_;
  std::size_t state_wires_;
  std::uint32_t state_ = 0;
  MeasurementBackend backend_ = MeasurementBackend::kMultiValued;
  // Non-null iff backend_ == kHilbert; its block-unitary cache makes
  // repeated cycles of the same circuit fold-free. Shared so automatons
  // stay copyable — copies alias one engine (cache reuse is the point);
  // per-step calls run inline on the calling thread, and concurrent
  // *batched* calls (transition_matrix) on aliased copies fail loudly
  // rather than race (see sim/batch.h). Call set_measurement_backend on a
  // copy to give it an engine of its own.
  std::shared_ptr<sim::BatchSimulator> sim_;
};

}  // namespace qsyn::automata
