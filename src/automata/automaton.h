// qsyn/automata/automaton.h
//
// Quantum-realized probabilistic state machines (Figure 3 of the paper):
// a synthesized combinational quantum circuit, a measurement unit, and a
// state register closed in a loop. Each cycle the register bits (and
// optional external input bits) enter the circuit as pure binary values, the
// outputs are measured, and designated output wires are latched as the next
// state. Externally the machine is a probabilistic finite state machine.
//
// The induced Markov chain is computed *exactly* from the multi-valued
// model: each (state, input) pair yields a quaternary output pattern whose
// measurement distribution factorizes per wire. The linear-algebra substrate
// solves for the stationary distribution, and Monte-Carlo runs validate it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gates/cascade.h"
#include "la/matrix.h"

namespace qsyn::automata {

/// A probabilistic FSM realized by a quantum combinational circuit.
///
/// Wire layout: the first `state_wires` wires carry the current state (and
/// their measured values become the next state); the remaining wires are
/// external inputs (re-armed with fresh input bits every cycle) whose
/// measured values are the machine's observable output.
class QuantumAutomaton {
 public:
  QuantumAutomaton(gates::Cascade circuit, std::size_t state_wires);

  [[nodiscard]] std::size_t state_wires() const { return state_wires_; }
  [[nodiscard]] std::size_t input_wires() const {
    return circuit_.wires() - state_wires_;
  }
  [[nodiscard]] std::size_t state_count() const {
    return std::size_t(1) << state_wires_;
  }
  [[nodiscard]] const gates::Cascade& circuit() const { return circuit_; }

  [[nodiscard]] std::uint32_t state() const { return state_; }
  void reset(std::uint32_t state = 0);

  /// Runs one cycle with the given external input bits; returns the full
  /// measured output word (state bits high, output bits low).
  std::uint32_t step(std::uint32_t input_bits, Rng& rng);

  /// Exact joint distribution over measured output words for one
  /// (state, input) pair.
  [[nodiscard]] std::vector<double> output_distribution(
      std::uint32_t state, std::uint32_t input_bits) const;

  /// Exact state-transition matrix for a fixed input: T(next, current).
  /// Columns sum to 1 (column-stochastic, composable with la::Matrix
  /// products acting on probability column vectors).
  [[nodiscard]] la::Matrix transition_matrix(std::uint32_t input_bits) const;

  /// Stationary distribution of the chain under a fixed input, computed by
  /// solving (T - I) pi = 0 with the normalization row sum(pi) = 1.
  /// Requires the chain to have a unique stationary distribution.
  [[nodiscard]] std::vector<double> stationary_distribution(
      std::uint32_t input_bits) const;

  /// Empirical state-visit frequencies over `cycles` Monte-Carlo steps with
  /// a fixed input (after discarding `burn_in` steps).
  [[nodiscard]] std::vector<double> empirical_distribution(
      std::uint32_t input_bits, std::size_t cycles, Rng& rng,
      std::size_t burn_in = 128);

 private:
  gates::Cascade circuit_;
  std::size_t state_wires_;
  std::uint32_t state_ = 0;
};

}  // namespace qsyn::automata
