// qsyn/automata/prob_synth.h
//
// Minimal-cost synthesis of probabilistic combinational circuits:
// the Section-3 machinery with the binary-output restriction dropped
// ("our approach generates quantum circuits with probabilistic combinational
// functionality ... without any modifications", Section 4).
//
// The synthesizer searches reasonable cascades by iterative deepening, so
// the first depth at which a spec is met is its exact minimal quantum cost.
#pragma once

#include <optional>

#include "automata/prob_spec.h"
#include "gates/cascade.h"
#include "gates/library.h"

namespace qsyn::automata {

/// Iterative-deepening synthesizer over a gate library.
class ProbSynthesizer {
 public:
  explicit ProbSynthesizer(const gates::GateLibrary& library,
                           unsigned max_cost = 7);

  /// Minimal cascade realizing an exact quaternary spec, or nullopt when no
  /// reasonable cascade of cost <= max_cost matches.
  [[nodiscard]] std::optional<gates::Cascade> synthesize(
      const ExactProbSpec& spec) const;

  /// Minimal cascade whose measurement behavior matches a behavioral spec.
  [[nodiscard]] std::optional<gates::Cascade> synthesize(
      const BehavioralProbSpec& spec) const;

  [[nodiscard]] unsigned max_cost() const { return max_cost_; }

 private:
  template <typename AcceptFn>
  [[nodiscard]] std::optional<gates::Cascade> search(AcceptFn accepts) const;

  const gates::GateLibrary* library_;
  unsigned max_cost_;
};

}  // namespace qsyn::automata
