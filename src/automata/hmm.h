// qsyn/automata/hmm.h
//
// Hidden Markov Models realized by quantum automata (Section 4: "This
// approach will enable us to synthesize minimal quantum automata, Hidden
// Markov Models and similar concepts").
//
// The hidden chain is a QuantumAutomaton's state register; the emissions are
// the measured non-state output wires. Because measurement factorizes over
// wires, the joint transition/emission law is exact and the classical
// forward algorithm evaluates observation likelihoods.
#pragma once

#include <cstdint>
#include <vector>

#include "automata/automaton.h"
#include "common/rng.h"

namespace qsyn::automata {

/// An HMM view over a quantum automaton driven with a fixed external input.
class QuantumHmm {
 public:
  /// `input_bits` is the fixed external input applied every cycle.
  QuantumHmm(QuantumAutomaton automaton, std::uint32_t input_bits);

  [[nodiscard]] std::size_t state_count() const {
    return automaton_.state_count();
  }
  [[nodiscard]] std::size_t emission_count() const {
    return std::size_t(1) << automaton_.input_wires();
  }

  /// Exact joint law p(next_state, emission | state).
  [[nodiscard]] double joint_probability(std::uint32_t state,
                                         std::uint32_t next_state,
                                         std::uint32_t emission) const;

  /// Marginal transition probability p(next | state).
  [[nodiscard]] double transition_probability(std::uint32_t state,
                                              std::uint32_t next_state) const;

  /// Samples a (hidden states, emissions) trajectory of the given length
  /// starting from `initial_state`. Hidden states are the states *after*
  /// each step.
  struct Trajectory {
    std::vector<std::uint32_t> states;
    std::vector<std::uint32_t> emissions;
  };
  [[nodiscard]] Trajectory sample(std::uint32_t initial_state,
                                  std::size_t length, Rng& rng) const;

  /// Exact log-likelihood of an emission sequence via the forward algorithm,
  /// starting from a point mass on `initial_state`. Returns -inf for an
  /// impossible sequence.
  [[nodiscard]] double log_likelihood(
      std::uint32_t initial_state,
      const std::vector<std::uint32_t>& emissions) const;

 private:
  QuantumAutomaton automaton_;
  std::uint32_t input_bits_;
  // joint_[state][word] with word = (next_state << input_wires) | emission.
  std::vector<std::vector<double>> joint_;
};

}  // namespace qsyn::automata
