#include "automata/hmm.h"

#include <cmath>
#include <limits>

#include "automata/measurement.h"
#include "common/error.h"

namespace qsyn::automata {

QuantumHmm::QuantumHmm(QuantumAutomaton automaton, std::uint32_t input_bits)
    : automaton_(std::move(automaton)), input_bits_(input_bits) {
  QSYN_CHECK(input_bits_ < (1u << automaton_.input_wires()),
             "input out of range");
  joint_.reserve(automaton_.state_count());
  for (std::uint32_t s = 0; s < automaton_.state_count(); ++s) {
    joint_.push_back(automaton_.output_distribution(s, input_bits_));
  }
}

double QuantumHmm::joint_probability(std::uint32_t state,
                                     std::uint32_t next_state,
                                     std::uint32_t emission) const {
  QSYN_CHECK(state < state_count() && next_state < state_count() &&
                 emission < emission_count(),
             "argument out of range");
  const std::uint32_t word =
      (next_state << automaton_.input_wires()) | emission;
  return joint_[state][word];
}

double QuantumHmm::transition_probability(std::uint32_t state,
                                          std::uint32_t next_state) const {
  double p = 0.0;
  for (std::uint32_t e = 0; e < emission_count(); ++e) {
    p += joint_probability(state, next_state, e);
  }
  return p;
}

QuantumHmm::Trajectory QuantumHmm::sample(std::uint32_t initial_state,
                                          std::size_t length, Rng& rng) const {
  Trajectory out;
  out.states.reserve(length);
  out.emissions.reserve(length);
  std::uint32_t state = initial_state;
  for (std::size_t i = 0; i < length; ++i) {
    // Draw from the joint law of (next state, emission).
    const std::uint32_t word = sample_index(joint_[state], rng);
    const std::uint32_t next = word >> automaton_.input_wires();
    const std::uint32_t emission =
        word & ((1u << automaton_.input_wires()) - 1u);
    out.states.push_back(next);
    out.emissions.push_back(emission);
    state = next;
  }
  return out;
}

double QuantumHmm::log_likelihood(
    std::uint32_t initial_state,
    const std::vector<std::uint32_t>& emissions) const {
  QSYN_CHECK(initial_state < state_count(), "state out of range");
  // Forward algorithm with per-step normalization for numerical stability.
  std::vector<double> alpha(state_count(), 0.0);
  alpha[initial_state] = 1.0;
  double log_like = 0.0;
  for (const std::uint32_t emission : emissions) {
    QSYN_CHECK(emission < emission_count(), "emission out of range");
    std::vector<double> next(state_count(), 0.0);
    for (std::uint32_t s = 0; s < state_count(); ++s) {
      if (alpha[s] == 0.0) continue;
      for (std::uint32_t t = 0; t < state_count(); ++t) {
        next[t] += alpha[s] * joint_probability(s, t, emission);
      }
    }
    double total = 0.0;
    for (const double v : next) total += v;
    if (total <= 0.0) return -std::numeric_limits<double>::infinity();
    for (double& v : next) v /= total;
    log_like += std::log(total);
    alpha = std::move(next);
  }
  return log_like;
}

}  // namespace qsyn::automata
