#include "automata/learn.h"

#include <cmath>

#include "automata/measurement.h"
#include "common/error.h"
#include "mvl/pattern.h"

namespace qsyn::automata {

std::optional<LearnedSpec> infer_spec(
    std::size_t wires, const std::vector<BehaviorSample>& samples,
    std::size_t min_samples, double margin) {
  QSYN_CHECK(wires >= 1 && wires <= 8, "unsupported wire count");
  QSYN_CHECK(margin > 0.0 && margin < 0.25,
             "margin must separate 0, 1/2 and 1");
  const std::uint32_t input_count = 1u << wires;

  std::vector<std::size_t> seen(input_count, 0);
  std::vector<std::vector<std::size_t>> ones(
      input_count, std::vector<std::size_t>(wires, 0));
  for (const BehaviorSample& sample : samples) {
    QSYN_CHECK(sample.input < input_count && sample.output < input_count,
               "sample word out of range");
    ++seen[sample.input];
    for (std::size_t w = 0; w < wires; ++w) {
      if ((sample.output >> (wires - 1 - w) & 1u) != 0) {
        ++ones[sample.input][w];
      }
    }
  }

  std::vector<std::vector<WireBehavior>> rows(input_count);
  std::size_t min_seen = samples.empty() ? 0 : seen[0];
  for (std::uint32_t input = 0; input < input_count; ++input) {
    min_seen = std::min(min_seen, seen[input]);
    if (seen[input] < min_samples) return std::nullopt;  // undersampled
    rows[input].resize(wires);
    for (std::size_t w = 0; w < wires; ++w) {
      const double frequency = static_cast<double>(ones[input][w]) /
                               static_cast<double>(seen[input]);
      if (frequency <= margin) {
        rows[input][w] = WireBehavior::kZero;
      } else if (frequency >= 1.0 - margin) {
        rows[input][w] = WireBehavior::kOne;
      } else if (std::abs(frequency - 0.5) <= margin) {
        rows[input][w] = WireBehavior::kCoin;
      } else {
        return std::nullopt;  // not explainable by {0, 1/2, 1}
      }
    }
  }
  return LearnedSpec{BehavioralProbSpec(wires, std::move(rows)), min_seen};
}

std::optional<gates::Cascade> learn_circuit(
    const gates::GateLibrary& library,
    const std::vector<BehaviorSample>& samples, unsigned max_cost,
    std::size_t min_samples, double margin) {
  const auto learned = infer_spec(library.domain().wires(), samples,
                                  min_samples, margin);
  if (!learned.has_value()) return std::nullopt;
  const ProbSynthesizer synthesizer(library, max_cost);
  return synthesizer.synthesize(learned->spec);
}

std::vector<BehaviorSample> sample_behavior(const gates::Cascade& circuit,
                                            std::size_t per_input, Rng& rng) {
  std::vector<BehaviorSample> samples;
  const std::uint32_t input_count = 1u << circuit.wires();
  samples.reserve(per_input * input_count);
  for (std::uint32_t input = 0; input < input_count; ++input) {
    const mvl::Pattern output =
        circuit.apply(mvl::Pattern::from_binary(circuit.wires(), input));
    for (std::size_t i = 0; i < per_input; ++i) {
      samples.push_back({input, sample_measurement(output, rng)});
    }
  }
  return samples;
}

}  // namespace qsyn::automata
