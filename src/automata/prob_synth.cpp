#include "automata/prob_synth.h"

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace qsyn::automata {

ProbSynthesizer::ProbSynthesizer(const gates::GateLibrary& library,
                                 unsigned max_cost)
    : library_(&library), max_cost_(max_cost) {
  QSYN_CHECK(max_cost <= 9, "iterative deepening bounded to cost 9");
}

namespace {

/// Depth-first search over reasonable cascades of exactly `depth` gates.
/// `state` holds the images of the binary labels (0-based) through the
/// current prefix; acceptance looks only at those images.
template <typename AcceptFn>
bool dfs(const gates::GateLibrary& lib,
         std::vector<std::uint8_t>& images,  // binary_count entries
         std::vector<std::size_t>& chosen, unsigned depth,
         const AcceptFn& accepts) {
  const mvl::PatternDomain& domain = lib.domain();
  if (depth == 0) return accepts(images);
  std::uint32_t banned = 0;
  for (const std::uint8_t label0 : images) {
    banned |= domain.banned_mask(label0 + 1);
  }
  std::vector<std::uint8_t> next(images.size());
  for (std::size_t g = 0; g < lib.size(); ++g) {
    if ((banned & (1u << lib.banned_class_of(g))) != 0) continue;
    const perm::Permutation& p = lib.permutation(g);
    for (std::size_t s = 0; s < images.size(); ++s) {
      next[s] = static_cast<std::uint8_t>(p.apply(images[s] + 1) - 1);
    }
    chosen.push_back(g);
    std::vector<std::uint8_t> saved = images;
    images = next;
    if (dfs(lib, images, chosen, depth - 1, accepts)) return true;
    images = std::move(saved);
    chosen.pop_back();
  }
  return false;
}

}  // namespace

template <typename AcceptFn>
std::optional<gates::Cascade> ProbSynthesizer::search(AcceptFn accepts) const {
  const mvl::PatternDomain& domain = library_->domain();
  const std::size_t binary_count = domain.binary_count();
  for (unsigned depth = 0; depth <= max_cost_; ++depth) {
    std::vector<std::uint8_t> images(binary_count);
    for (std::size_t s = 0; s < binary_count; ++s) {
      images[s] = static_cast<std::uint8_t>(s);
    }
    std::vector<std::size_t> chosen;
    if (dfs(*library_, images, chosen, depth, accepts)) {
      gates::Cascade cascade(domain.wires());
      for (const std::size_t g : chosen) cascade.append(library_->gate(g));
      return cascade;
    }
  }
  return std::nullopt;
}

std::optional<gates::Cascade> ProbSynthesizer::synthesize(
    const ExactProbSpec& spec) const {
  const mvl::PatternDomain& domain = library_->domain();
  QSYN_CHECK(spec.wires() == domain.wires(), "spec wire count mismatch");
  if (!spec.is_realizable_shape(domain)) return std::nullopt;
  std::vector<std::uint8_t> wanted(domain.binary_count());
  for (std::uint32_t i = 0; i < domain.binary_count(); ++i) {
    wanted[i] =
        static_cast<std::uint8_t>(domain.label_of(spec.output_for(i)) - 1);
  }
  return search([&wanted](const std::vector<std::uint8_t>& images) {
    return images == wanted;
  });
}

std::optional<gates::Cascade> ProbSynthesizer::synthesize(
    const BehavioralProbSpec& spec) const {
  const mvl::PatternDomain& domain = library_->domain();
  QSYN_CHECK(spec.wires() == domain.wires(), "spec wire count mismatch");
  return search([&spec, &domain](const std::vector<std::uint8_t>& images) {
    for (std::uint32_t i = 0; i < images.size(); ++i) {
      if (!spec.accepts(i, domain.pattern(images[i] + 1))) return false;
    }
    return true;
  });
}

}  // namespace qsyn::automata
