// qsyn/automata/learn.h
//
// Synthesis from behavioral examples — the paper's stated future work
// ("finding efficient heuristics that would allow us to synthesize
// probabilistic ... machines from examples of their behaviors", Conclusion).
//
// Within the four-valued signal model every measured wire is deterministic
// (probability 0 or 1) or an unbiased coin (probability 1/2), so observed
// input/output samples identify a BehavioralProbSpec as soon as each input
// has been observed often enough: estimate Pr[wire = 1 | input], classify
// each estimate into {0, 1/2, 1} within a confidence margin, and hand the
// resulting spec to the minimal-cost synthesizer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/prob_spec.h"
#include "automata/prob_synth.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"

namespace qsyn::automata {

/// One observed behavior sample: a binary input word and the measured
/// binary output word (wire 0 = most significant bit).
struct BehaviorSample {
  std::uint32_t input = 0;
  std::uint32_t output = 0;
};

/// Outcome of spec recovery from samples.
struct LearnedSpec {
  BehavioralProbSpec spec;
  /// Smallest number of samples seen for any input (coverage indicator).
  std::size_t min_samples_per_input = 0;
};

/// Estimates the behavioral spec underlying `samples`.
///
/// Requirements: every input word in [0, 2^wires) must appear at least
/// `min_samples` times, and every per-wire frequency must fall within
/// `margin` of 0, 1/2 or 1 — otherwise the samples are not explainable by a
/// four-valued circuit and nullopt is returned.
[[nodiscard]] std::optional<LearnedSpec> infer_spec(
    std::size_t wires, const std::vector<BehaviorSample>& samples,
    std::size_t min_samples = 16, double margin = 0.2);

/// End-to-end learning: infer the spec from samples and synthesize a
/// minimal-cost circuit realizing it. nullopt when the spec cannot be
/// inferred or no reasonable cascade of cost <= max_cost matches it.
[[nodiscard]] std::optional<gates::Cascade> learn_circuit(
    const gates::GateLibrary& library,
    const std::vector<BehaviorSample>& samples, unsigned max_cost = 7,
    std::size_t min_samples = 16, double margin = 0.2);

/// Convenience for tests and demos: draws `per_input` measured samples from
/// `circuit` for every binary input.
[[nodiscard]] std::vector<BehaviorSample> sample_behavior(
    const gates::Cascade& circuit, std::size_t per_input, Rng& rng);

}  // namespace qsyn::automata
