#include "automata/automaton.h"

#include "automata/measurement.h"
#include "common/error.h"
#include "la/lu.h"
#include "la/vector.h"
#include "mvl/pattern.h"
#include "sim/batch.h"

namespace qsyn::automata {

QuantumAutomaton::QuantumAutomaton(gates::Cascade circuit,
                                   std::size_t state_wires)
    : circuit_(std::move(circuit)), state_wires_(state_wires) {
  QSYN_CHECK(state_wires_ >= 1 && state_wires_ <= circuit_.wires(),
             "state wires must be within the circuit wires");
}

void QuantumAutomaton::reset(std::uint32_t state) {
  QSYN_CHECK(state < state_count(), "state out of range");
  state_ = state;
}

void QuantumAutomaton::set_measurement_backend(MeasurementBackend backend) {
  set_measurement_backend(backend, sim::SimOptions::from_env());
}

void QuantumAutomaton::set_measurement_backend(
    MeasurementBackend backend, const sim::SimOptions& options) {
  backend_ = backend;
  if (backend_ == MeasurementBackend::kHilbert) {
    sim_ = std::make_shared<sim::BatchSimulator>(options);
  } else {
    sim_.reset();
  }
}

std::vector<double> QuantumAutomaton::joint_distribution(
    std::uint32_t word) const {
  if (backend_ == MeasurementBackend::kHilbert) {
    const std::vector<la::Vector> out =
        sim_->run({sim::SimJob{&circuit_, word}});
    std::vector<double> probs(out[0].size());
    for (std::size_t i = 0; i < probs.size(); ++i) {
      probs[i] = std::norm(out[0][i]);
    }
    return probs;
  }
  const mvl::Pattern output =
      circuit_.apply(mvl::Pattern::from_binary(circuit_.wires(), word));
  return outcome_distribution(output);
}

std::uint32_t QuantumAutomaton::step(std::uint32_t input_bits, Rng& rng) {
  QSYN_CHECK(input_bits < (1u << input_wires()), "input out of range");
  const std::uint32_t word =
      (state_ << input_wires()) | input_bits;  // state high, input low
  std::uint32_t measured = 0;
  if (backend_ == MeasurementBackend::kHilbert) {
    // Sample the joint outcome from the simulated distribution.
    measured = sample_index(joint_distribution(word), rng);
  } else {
    const mvl::Pattern output =
        circuit_.apply(mvl::Pattern::from_binary(circuit_.wires(), word));
    measured = sample_measurement(output, rng);
  }
  state_ = measured >> input_wires();
  return measured;
}

std::vector<double> QuantumAutomaton::output_distribution(
    std::uint32_t state, std::uint32_t input_bits) const {
  QSYN_CHECK(state < state_count(), "state out of range");
  QSYN_CHECK(input_bits < (1u << input_wires()), "input out of range");
  const std::uint32_t word = (state << input_wires()) | input_bits;
  return joint_distribution(word);
}

la::Matrix QuantumAutomaton::transition_matrix(
    std::uint32_t input_bits) const {
  QSYN_CHECK(input_bits < (1u << input_wires()), "input out of range");
  const std::size_t n = state_count();
  la::Matrix t(n, n);
  if (backend_ == MeasurementBackend::kHilbert) {
    // One batched call: every current state's cycle is an independent job,
    // fanned out across the engine's worker pool.
    std::vector<sim::SimJob> jobs(n);
    for (std::uint32_t current = 0; current < n; ++current) {
      jobs[current] = sim::SimJob{
          &circuit_, (current << input_wires()) | input_bits};
    }
    const std::vector<la::Vector> outputs = sim_->run(jobs);
    for (std::uint32_t current = 0; current < n; ++current) {
      for (std::size_t word = 0; word < outputs[current].size(); ++word) {
        const std::uint32_t next =
            static_cast<std::uint32_t>(word) >> input_wires();
        t(next, current) += std::norm(outputs[current][word]);
      }
    }
    return t;
  }
  for (std::uint32_t current = 0; current < n; ++current) {
    const std::vector<double> joint = output_distribution(current, input_bits);
    for (std::uint32_t word = 0; word < joint.size(); ++word) {
      const std::uint32_t next = word >> input_wires();
      t(next, current) += joint[word];
    }
  }
  return t;
}

std::vector<double> QuantumAutomaton::stationary_distribution(
    std::uint32_t input_bits) const {
  const std::size_t n = state_count();
  const la::Matrix t = transition_matrix(input_bits);
  // Solve (T - I) pi = 0 with the last equation replaced by sum(pi) = 1.
  la::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = t(r, c) - (r == c ? 1.0 : 0.0);
    }
  }
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  la::Vector b(n);
  b[n - 1] = 1.0;
  const la::Vector pi = la::solve(a, b);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = pi[i].real();
  return out;
}

std::vector<double> QuantumAutomaton::empirical_distribution(
    std::uint32_t input_bits, std::size_t cycles, Rng& rng,
    std::size_t burn_in) {
  std::vector<std::size_t> visits(state_count(), 0);
  for (std::size_t i = 0; i < burn_in; ++i) step(input_bits, rng);
  for (std::size_t i = 0; i < cycles; ++i) {
    step(input_bits, rng);
    ++visits[state_];
  }
  std::vector<double> out(state_count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<double>(visits[i]) / static_cast<double>(cycles);
  }
  return out;
}

}  // namespace qsyn::automata
