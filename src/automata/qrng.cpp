#include "automata/qrng.h"

#include "automata/measurement.h"
#include "automata/prob_synth.h"
#include "common/error.h"

namespace qsyn::automata {

std::optional<ControlledQrng> ControlledQrng::synthesize(
    const gates::GateLibrary& library, const BehavioralProbSpec& spec,
    unsigned max_cost) {
  ProbSynthesizer synthesizer(library, max_cost);
  auto cascade = synthesizer.synthesize(spec);
  if (!cascade.has_value()) return std::nullopt;
  return ControlledQrng(std::move(*cascade));
}

std::vector<double> ControlledQrng::distribution(std::uint32_t input) const {
  const mvl::Pattern output =
      circuit_.apply(mvl::Pattern::from_binary(circuit_.wires(), input));
  return outcome_distribution(output);
}

std::uint32_t ControlledQrng::generate(std::uint32_t input, Rng& rng) const {
  const mvl::Pattern output =
      circuit_.apply(mvl::Pattern::from_binary(circuit_.wires(), input));
  return sample_measurement(output, rng);
}

std::vector<std::size_t> ControlledQrng::histogram(std::uint32_t input,
                                                   std::size_t count,
                                                   Rng& rng) const {
  std::vector<std::size_t> hist(std::size_t(1) << circuit_.wires(), 0);
  for (std::size_t i = 0; i < count; ++i) {
    ++hist[generate(input, rng)];
  }
  return hist;
}

BehavioralProbSpec controlled_coin_spec(std::size_t wires) {
  QSYN_CHECK(wires >= 2, "controlled coin spec needs at least 2 wires");
  // The spec feeds Pattern-based synthesis (capped at mvl::kMaxWires) and
  // enumerates 2^wires rows below: a 32-bit `1u << wires` would be UB from
  // wires = 32 on, and silently truncated before that ever mattered.
  QSYN_CHECK(wires <= mvl::kMaxWires,
             "controlled coin spec exceeds the pattern wire cap");
  const std::uint32_t count = std::uint32_t(std::uint64_t(1) << wires);
  std::vector<std::vector<WireBehavior>> rows;
  rows.reserve(count);
  for (std::uint32_t input = 0; input < count; ++input) {
    std::vector<WireBehavior> row(wires);
    const bool armed = ((input >> (wires - 1)) & 1u) != 0;  // wire 0 == 1?
    for (std::size_t w = 0; w < wires; ++w) {
      const bool bit = ((input >> (wires - 1 - w)) & 1u) != 0;
      row[w] = bit ? WireBehavior::kOne : WireBehavior::kZero;
    }
    if (armed) row[wires - 1] = WireBehavior::kCoin;
    rows.push_back(std::move(row));
  }
  return BehavioralProbSpec(wires, std::move(rows));
}

}  // namespace qsyn::automata
