#include "automata/measurement.h"

#include "common/error.h"

namespace qsyn::automata {

double outcome_probability(const mvl::Pattern& pattern, std::uint32_t bits) {
  // 64-bit shift: a 32-bit `1u << wires` is UB at wires >= 32 and silently
  // wrong at 32-bit boundary widths. Patterns cap at mvl::kMaxWires, but the
  // guard keeps the contract explicit rather than inherited.
  QSYN_CHECK(pattern.wires() < 32, "outcome space exceeds 32 bits");
  QSYN_CHECK(bits < (std::uint64_t(1) << pattern.wires()),
             "outcome out of range");
  double p = 1.0;
  for (std::size_t w = 0; w < pattern.wires(); ++w) {
    const bool bit = ((bits >> (pattern.wires() - 1 - w)) & 1u) != 0;
    const double p_one = mvl::measure_one_probability(pattern.get(w));
    p *= bit ? p_one : (1.0 - p_one);
    if (p == 0.0) return 0.0;
  }
  return p;
}

std::vector<double> outcome_distribution(const mvl::Pattern& pattern) {
  QSYN_CHECK(pattern.wires() < 32, "outcome space exceeds 32 bits");
  const std::uint64_t count = std::uint64_t(1) << pattern.wires();
  std::vector<double> dist(count);
  for (std::uint32_t bits = 0; bits < count; ++bits) {
    dist[bits] = outcome_probability(pattern, bits);
  }
  return dist;
}

std::uint32_t sample_index(const std::vector<double>& dist, Rng& rng) {
  QSYN_CHECK(!dist.empty(), "cannot sample an empty distribution");
  const double r = rng.uniform();
  double cumulative = 0.0;
  std::size_t last_nonzero = dist.size();  // sentinel: none seen yet
  for (std::size_t i = 0; i < dist.size(); ++i) {
    if (dist[i] > 0.0) last_nonzero = i;
    cumulative += dist[i];
    if (r < cumulative) return static_cast<std::uint32_t>(i);
  }
  // Rounding tail: the accumulated sum fell short of r (floating-point
  // shortfall of a nominally-normalized distribution). Land the residual
  // mass on the last *nonzero* entry — returning the final index
  // unconditionally could emit an outcome of probability exactly 0.
  QSYN_CHECK(last_nonzero < dist.size(),
             "cannot sample a distribution with no positive mass");
  return static_cast<std::uint32_t>(last_nonzero);
}

std::uint32_t sample_measurement(const mvl::Pattern& pattern, Rng& rng) {
  std::uint32_t bits = 0;
  for (std::size_t w = 0; w < pattern.wires(); ++w) {
    const double p_one = mvl::measure_one_probability(pattern.get(w));
    const bool bit = rng.bernoulli(p_one);
    bits = (bits << 1) | (bit ? 1u : 0u);
  }
  return bits;
}

}  // namespace qsyn::automata
