#include "automata/measurement.h"

#include "common/error.h"

namespace qsyn::automata {

double outcome_probability(const mvl::Pattern& pattern, std::uint32_t bits) {
  QSYN_CHECK(bits < (1u << pattern.wires()), "outcome out of range");
  double p = 1.0;
  for (std::size_t w = 0; w < pattern.wires(); ++w) {
    const bool bit = ((bits >> (pattern.wires() - 1 - w)) & 1u) != 0;
    const double p_one = mvl::measure_one_probability(pattern.get(w));
    p *= bit ? p_one : (1.0 - p_one);
    if (p == 0.0) return 0.0;
  }
  return p;
}

std::vector<double> outcome_distribution(const mvl::Pattern& pattern) {
  const std::uint32_t count = 1u << pattern.wires();
  std::vector<double> dist(count);
  for (std::uint32_t bits = 0; bits < count; ++bits) {
    dist[bits] = outcome_probability(pattern, bits);
  }
  return dist;
}

std::uint32_t sample_index(const std::vector<double>& dist, Rng& rng) {
  QSYN_CHECK(!dist.empty(), "cannot sample an empty distribution");
  const double r = rng.uniform();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i) {
    cumulative += dist[i];
    if (r < cumulative) return static_cast<std::uint32_t>(i);
  }
  return static_cast<std::uint32_t>(dist.size() - 1);  // rounding tail
}

std::uint32_t sample_measurement(const mvl::Pattern& pattern, Rng& rng) {
  std::uint32_t bits = 0;
  for (std::size_t w = 0; w < pattern.wires(); ++w) {
    const double p_one = mvl::measure_one_probability(pattern.get(w));
    const bool bit = rng.bernoulli(p_one);
    bits = (bits << 1) | (bit ? 1u : 0u);
  }
  return bits;
}

}  // namespace qsyn::automata
