// qsyn/automata/measurement.h
//
// Quantum measurement semantics for quaternary output patterns (Section 4).
//
// After a reasonable cascade, every wire carries one of {0, 1, V0, V1} and
// the joint state is the product of the corresponding single-qubit states, so
// full measurement factorizes: wire w yields 1 with probability 0, 1, or 1/2
// and wires are independent. These helpers turn an output pattern into the
// exact outcome distribution and sample from it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mvl/pattern.h"

namespace qsyn::automata {

/// Exact probability of measuring outcome `bits` (wire 0 = MSB) from the
/// product state described by `pattern`.
[[nodiscard]] double outcome_probability(const mvl::Pattern& pattern,
                                         std::uint32_t bits);

/// The full outcome distribution over all 2^wires bit vectors.
[[nodiscard]] std::vector<double> outcome_distribution(
    const mvl::Pattern& pattern);

/// Samples one full measurement (each mixed wire is an independent fair
/// coin; binary wires are deterministic).
[[nodiscard]] std::uint32_t sample_measurement(const mvl::Pattern& pattern,
                                               Rng& rng);

/// Draws an index from an explicit distribution by inverse CDF (one
/// rng.uniform() per draw; rounding mass lands on the last index of nonzero
/// probability, so a zero-probability outcome is never emitted). Throws if
/// the distribution has no positive entry. Shared by every automata
/// component that samples a precomputed outcome law.
[[nodiscard]] std::uint32_t sample_index(const std::vector<double>& dist,
                                         Rng& rng);

}  // namespace qsyn::automata
