#include "automata/prob_spec.h"

#include <algorithm>

#include "common/error.h"

namespace qsyn::automata {

std::string to_string(WireBehavior b) {
  switch (b) {
    case WireBehavior::kZero:
      return "0";
    case WireBehavior::kOne:
      return "1";
    case WireBehavior::kCoin:
      return "coin";
  }
  throw qsyn::LogicError("to_string: invalid WireBehavior");
}

ExactProbSpec::ExactProbSpec(std::size_t wires,
                             std::vector<mvl::Pattern> outputs)
    : wires_(wires), outputs_(std::move(outputs)) {
  QSYN_CHECK(outputs_.size() == (std::size_t(1) << wires_),
             "exact spec needs one output per binary input");
  for (const mvl::Pattern& p : outputs_) {
    QSYN_CHECK(p.wires() == wires_, "output pattern wire count mismatch");
  }
}

const mvl::Pattern& ExactProbSpec::output_for(std::uint32_t input) const {
  QSYN_CHECK(input < outputs_.size(), "input out of range");
  return outputs_[input];
}

bool ExactProbSpec::is_realizable_shape(
    const mvl::PatternDomain& domain) const {
  std::vector<std::uint32_t> labels;
  for (const mvl::Pattern& p : outputs_) {
    if (!domain.contains(p)) return false;
    labels.push_back(domain.label_of(p));
  }
  std::sort(labels.begin(), labels.end());
  return std::adjacent_find(labels.begin(), labels.end()) == labels.end();
}

BehavioralProbSpec::BehavioralProbSpec(
    std::size_t wires, std::vector<std::vector<WireBehavior>> behaviors)
    : wires_(wires), behaviors_(std::move(behaviors)) {
  QSYN_CHECK(behaviors_.size() == (std::size_t(1) << wires_),
             "behavioral spec needs one row per binary input");
  for (const auto& row : behaviors_) {
    QSYN_CHECK(row.size() == wires_, "behavior row wire count mismatch");
  }
}

const std::vector<WireBehavior>& BehavioralProbSpec::behavior_for(
    std::uint32_t input) const {
  QSYN_CHECK(input < behaviors_.size(), "input out of range");
  return behaviors_[input];
}

bool BehavioralProbSpec::accepts(std::uint32_t input,
                                 const mvl::Pattern& pattern) const {
  QSYN_CHECK(pattern.wires() == wires_, "pattern wire count mismatch");
  const auto& row = behavior_for(input);
  for (std::size_t w = 0; w < wires_; ++w) {
    const mvl::Quat value = pattern.get(w);
    switch (row[w]) {
      case WireBehavior::kZero:
        if (value != mvl::Quat::kZero) return false;
        break;
      case WireBehavior::kOne:
        if (value != mvl::Quat::kOne) return false;
        break;
      case WireBehavior::kCoin:
        if (!mvl::is_mixed(value)) return false;
        break;
    }
  }
  return true;
}

std::vector<double> BehavioralProbSpec::target_distribution(
    std::uint32_t input) const {
  const auto& row = behavior_for(input);
  const std::uint32_t count = 1u << wires_;
  std::vector<double> dist(count, 0.0);
  for (std::uint32_t bits = 0; bits < count; ++bits) {
    double p = 1.0;
    for (std::size_t w = 0; w < wires_; ++w) {
      const bool bit = ((bits >> (wires_ - 1 - w)) & 1u) != 0;
      switch (row[w]) {
        case WireBehavior::kZero:
          if (bit) p = 0.0;
          break;
        case WireBehavior::kOne:
          if (!bit) p = 0.0;
          break;
        case WireBehavior::kCoin:
          p *= 0.5;
          break;
      }
      if (p == 0.0) break;
    }
    dist[bits] = p;
  }
  return dist;
}

}  // namespace qsyn::automata
