// qsyn/automata/prob_spec.h
//
// Specifications for probabilistic combinational circuits (Section 4): a
// truth table with *binary inputs* and *quaternary outputs*. Removing the
// binary-output constraint of Section 3 turns the same synthesis machinery
// into a design flow for controlled random number generators and the
// combinational cores of probabilistic state machines.
//
// Two specification styles are supported:
//  * exact: each binary input maps to one concrete quaternary pattern;
//  * behavioral: each (input, wire) pair requires Pr[measure 1] to be 0, 1/2
//    or 1 — both V0 and V1 satisfy the 1/2 requirement, and the synthesizer
//    may choose whichever is reachable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mvl/domain.h"
#include "mvl/pattern.h"

namespace qsyn::automata {

/// Per-wire behavioral requirement.
enum class WireBehavior : std::uint8_t {
  kZero,    // must measure 0
  kOne,     // must measure 1
  kCoin,    // must be an unbiased coin (value V0 or V1)
};

[[nodiscard]] std::string to_string(WireBehavior b);

/// An exact quaternary output spec: outputs[i] is the required output
/// pattern for the binary input with value i (wire 0 = MSB).
class ExactProbSpec {
 public:
  ExactProbSpec(std::size_t wires, std::vector<mvl::Pattern> outputs);

  [[nodiscard]] std::size_t wires() const { return wires_; }
  [[nodiscard]] const mvl::Pattern& output_for(std::uint32_t input) const;
  [[nodiscard]] std::size_t input_count() const { return outputs_.size(); }

  /// A realizable spec must be injective on domain labels (a cascade acts as
  /// a permutation of the domain) and every output must live in `domain`.
  [[nodiscard]] bool is_realizable_shape(
      const mvl::PatternDomain& domain) const;

 private:
  std::size_t wires_;
  std::vector<mvl::Pattern> outputs_;
};

/// A behavioral spec: behaviors[i][w] constrains wire w's measurement
/// statistics for binary input i.
class BehavioralProbSpec {
 public:
  BehavioralProbSpec(std::size_t wires,
                     std::vector<std::vector<WireBehavior>> behaviors);

  [[nodiscard]] std::size_t wires() const { return wires_; }
  [[nodiscard]] std::size_t input_count() const { return behaviors_.size(); }
  [[nodiscard]] const std::vector<WireBehavior>& behavior_for(
      std::uint32_t input) const;

  /// True iff `pattern` satisfies input i's requirements.
  [[nodiscard]] bool accepts(std::uint32_t input,
                             const mvl::Pattern& pattern) const;

  /// The exact target measurement distribution for input i (product of the
  /// per-wire behaviors).
  [[nodiscard]] std::vector<double> target_distribution(
      std::uint32_t input) const;

 private:
  std::size_t wires_;
  std::vector<std::vector<WireBehavior>> behaviors_;
};

}  // namespace qsyn::automata
