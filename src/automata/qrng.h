// qsyn/automata/qrng.h
//
// Controlled quantum random number generators (Section 4 and [19]): a
// synthesized quantum circuit whose measured outputs are fair coins on
// selected wires, selectable by binary control inputs. The circuit + a
// measurement unit behaves as a probabilistic combinational circuit with
// deterministic inputs and probabilistic outputs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/prob_spec.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"

namespace qsyn::automata {

/// A synthesized controlled RNG.
class ControlledQrng {
 public:
  /// Builds a QRNG from a behavioral spec (which wires must be coins for
  /// which inputs) by minimal-cost synthesis. Returns nullopt when the spec
  /// is unrealizable within `max_cost` library gates.
  static std::optional<ControlledQrng> synthesize(
      const gates::GateLibrary& library, const BehavioralProbSpec& spec,
      unsigned max_cost = 7);

  /// The underlying circuit.
  [[nodiscard]] const gates::Cascade& circuit() const { return circuit_; }

  /// Exact output distribution for a binary input (over 2^wires outcomes).
  [[nodiscard]] std::vector<double> distribution(std::uint32_t input) const;

  /// Draws one measured output word for the given input.
  [[nodiscard]] std::uint32_t generate(std::uint32_t input, Rng& rng) const;

  /// Draws `count` outputs and returns per-outcome counts (histogram).
  [[nodiscard]] std::vector<std::size_t> histogram(std::uint32_t input,
                                                   std::size_t count,
                                                   Rng& rng) const;

 private:
  explicit ControlledQrng(gates::Cascade circuit)
      : circuit_(std::move(circuit)) {}
  gates::Cascade circuit_;
};

/// Convenience: the canonical 1-coin QRNG spec on n wires — input bits pass
/// through unchanged except the last wire, which becomes a fair coin whenever
/// the first wire is 1 (a "controlled" random bit).
[[nodiscard]] BehavioralProbSpec controlled_coin_spec(std::size_t wires);

}  // namespace qsyn::automata
