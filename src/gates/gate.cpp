#include "gates/gate.h"

#include "common/error.h"
#include "common/strings.h"

namespace qsyn::gates {

std::string to_string(GateKind kind) {
  switch (kind) {
    case GateKind::kCtrlV:
      return "controlled-V";
    case GateKind::kCtrlVdag:
      return "controlled-V+";
    case GateKind::kFeynman:
      return "Feynman";
    case GateKind::kNot:
      return "NOT";
  }
  throw qsyn::LogicError("to_string: invalid GateKind");
}

CostModel CostModel::unit() { return CostModel{}; }

CostModel CostModel::nmr_like() {
  // Representative non-uniform weights: controlled square-root gates need
  // longer pulse sequences than a plain CNOT in NMR realizations.
  CostModel m;
  m.ctrl_v = 3;
  m.ctrl_v_dagger = 3;
  m.feynman = 2;
  m.not_gate = 1;
  return m;
}

unsigned CostModel::cost_of(GateKind kind) const {
  switch (kind) {
    case GateKind::kCtrlV:
      return ctrl_v;
    case GateKind::kCtrlVdag:
      return ctrl_v_dagger;
    case GateKind::kFeynman:
      return feynman;
    case GateKind::kNot:
      return not_gate;
  }
  throw qsyn::LogicError("cost_of: invalid GateKind");
}

Gate Gate::ctrl_v(std::size_t target, std::size_t control) {
  QSYN_CHECK(target != control, "controlled-V needs distinct wires");
  return Gate(GateKind::kCtrlV, target, control);
}

Gate Gate::ctrl_v_dagger(std::size_t target, std::size_t control) {
  QSYN_CHECK(target != control, "controlled-V+ needs distinct wires");
  return Gate(GateKind::kCtrlVdag, target, control);
}

Gate Gate::feynman(std::size_t target, std::size_t control) {
  QSYN_CHECK(target != control, "Feynman needs distinct wires");
  return Gate(GateKind::kFeynman, target, control);
}

Gate Gate::not_gate(std::size_t target) {
  return Gate(GateKind::kNot, target, target);
}

Gate Gate::parse(const std::string& raw) {
  const std::string name{qsyn::trim(raw)};
  if (name.size() < 2) throw qsyn::ParseError("gate name too short: " + raw);
  GateKind kind;
  std::size_t wire_pos = 1;
  switch (name[0]) {
    case 'V':
    case 'v':
      if (name[1] == '+') {
        kind = GateKind::kCtrlVdag;
        wire_pos = 2;
      } else {
        kind = GateKind::kCtrlV;
      }
      break;
    case 'F':
    case 'f':
      kind = GateKind::kFeynman;
      // Accept both "FCA" and the paper's occasional "FeCA" spelling.
      if (name.size() >= 2 && name[1] == 'e') wire_pos = 2;
      break;
    case 'N':
    case 'n':
      kind = GateKind::kNot;
      break;
    default:
      throw qsyn::ParseError("unknown gate kind in name: " + raw);
  }
  if (kind == GateKind::kNot) {
    if (name.size() != 2) throw qsyn::ParseError("bad NOT gate name: " + raw);
    return not_gate(wire_from_letter(name[1]));
  }
  if (name.size() != wire_pos + 2) {
    throw qsyn::ParseError("bad two-qubit gate name: " + raw);
  }
  const std::size_t target = wire_from_letter(name[wire_pos]);
  const std::size_t control = wire_from_letter(name[wire_pos + 1]);
  if (target == control) {
    throw qsyn::ParseError("gate wires must differ: " + raw);
  }
  switch (kind) {
    case GateKind::kCtrlV:
      return ctrl_v(target, control);
    case GateKind::kCtrlVdag:
      return ctrl_v_dagger(target, control);
    default:
      return feynman(target, control);
  }
}

std::size_t Gate::control() const {
  QSYN_CHECK(has_control(), "NOT gates have no control wire");
  return control_;
}

std::string Gate::name() const {
  switch (kind_) {
    case GateKind::kCtrlV:
      return std::string("V") + wire_letter(target_) + wire_letter(control_);
    case GateKind::kCtrlVdag:
      return std::string("V+") + wire_letter(target_) + wire_letter(control_);
    case GateKind::kFeynman:
      return std::string("F") + wire_letter(target_) + wire_letter(control_);
    case GateKind::kNot:
      return std::string("N") + wire_letter(target_);
  }
  throw qsyn::LogicError("name: invalid GateKind");
}

Gate Gate::adjoint() const {
  switch (kind_) {
    case GateKind::kCtrlV:
      return ctrl_v_dagger(target_, control_);
    case GateKind::kCtrlVdag:
      return ctrl_v(target_, control_);
    case GateKind::kFeynman:
    case GateKind::kNot:
      return *this;
  }
  throw qsyn::LogicError("adjoint: invalid GateKind");
}

mvl::Pattern Gate::apply(const mvl::Pattern& input) const {
  QSYN_CHECK(target_ < input.wires() &&
                 (!has_control() || control_ < input.wires()),
             "gate wires exceed pattern wires");
  mvl::Pattern out = input;
  switch (kind_) {
    case GateKind::kCtrlV:
      if (input.get(control_) == mvl::Quat::kOne) {
        out.set(target_, mvl::apply_v(input.get(target_)));
      }
      break;
    case GateKind::kCtrlVdag:
      if (input.get(control_) == mvl::Quat::kOne) {
        out.set(target_, mvl::apply_v_dagger(input.get(target_)));
      }
      break;
    case GateKind::kFeynman:
      if (mvl::is_binary(input.get(target_)) &&
          mvl::is_binary(input.get(control_))) {
        out.set(target_,
                mvl::binary_xor(input.get(target_), input.get(control_)));
      }
      break;
    case GateKind::kNot:
      out.set(target_, mvl::apply_not(input.get(target_)));
      break;
  }
  return out;
}

perm::Permutation Gate::to_permutation(
    const mvl::PatternDomain& domain) const {
  std::vector<std::uint32_t> images(domain.size());
  for (std::uint32_t label = 1; label <= domain.size(); ++label) {
    images[label - 1] = domain.label_of(apply(domain.pattern(label)));
  }
  return perm::Permutation::from_images(std::move(images));
}

std::optional<mvl::BannedClass> Gate::banned_class(
    const mvl::PatternDomain& domain) const {
  switch (kind_) {
    case GateKind::kCtrlV:
    case GateKind::kCtrlVdag:
      return domain.control_class(control_);
    case GateKind::kFeynman:
      return domain.feynman_class(target_, control_);
    case GateKind::kNot:
      return std::nullopt;
  }
  throw qsyn::LogicError("banned_class: invalid GateKind");
}

char wire_letter(std::size_t wire) {
  QSYN_CHECK(wire < 26, "wire index too large for a letter name");
  return static_cast<char>('A' + wire);
}

std::size_t wire_from_letter(char letter) {
  if (letter >= 'A' && letter <= 'Z') {
    return static_cast<std::size_t>(letter - 'A');
  }
  if (letter >= 'a' && letter <= 'z') {
    return static_cast<std::size_t>(letter - 'a');
  }
  throw qsyn::ParseError(std::string("bad wire letter: '") + letter + "'");
}

}  // namespace qsyn::gates
