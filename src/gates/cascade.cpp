#include "gates/cascade.h"

#include <algorithm>

#include "common/error.h"
#include "common/strings.h"

namespace qsyn::gates {

Cascade::Cascade(std::size_t wires) : wires_(wires) {
  QSYN_CHECK(wires >= 1 && wires <= mvl::kMaxWires, "bad wire count");
}

Cascade::Cascade(std::size_t wires, std::vector<Gate> gate_sequence)
    : Cascade(wires) {
  for (const Gate& g : gate_sequence) append(g);
  (void)gates_;  // appended above
}

Cascade Cascade::parse(const std::string& text, std::size_t wires) {
  const std::string_view body = qsyn::trim(text);
  std::vector<Gate> gates;
  std::size_t max_wire = 1;  // at least wires A and B exist
  if (body != "()" && !body.empty()) {
    for (const std::string& piece : qsyn::split(std::string(body), '*')) {
      if (piece.empty()) {
        throw qsyn::ParseError("empty gate in cascade: " + text);
      }
      const Gate g = Gate::parse(piece);
      max_wire = std::max(max_wire, g.target());
      if (g.has_control()) max_wire = std::max(max_wire, g.control());
      gates.push_back(g);
    }
  }
  const std::size_t inferred = max_wire + 1;
  const std::size_t n = wires == 0 ? inferred : wires;
  if (n < inferred) {
    throw qsyn::ParseError("cascade uses more wires than requested: " + text);
  }
  return Cascade(n, std::move(gates));
}

const Gate& Cascade::gate(std::size_t i) const {
  QSYN_CHECK(i < gates_.size(), "cascade gate index out of range");
  return gates_[i];
}

void Cascade::append(const Gate& g) {
  QSYN_CHECK(g.target() < wires_ && (!g.has_control() || g.control() < wires_),
             "gate wires exceed cascade wires");
  gates_.push_back(g);
}

unsigned Cascade::cost(const CostModel& model) const {
  unsigned total = 0;
  for (const Gate& g : gates_) total += g.cost(model);
  return total;
}

mvl::Pattern Cascade::apply(const mvl::Pattern& input) const {
  QSYN_CHECK(input.wires() == wires_, "pattern wire count mismatch");
  mvl::Pattern p = input;
  for (const Gate& g : gates_) p = g.apply(p);
  return p;
}

perm::Permutation Cascade::to_permutation(
    const mvl::PatternDomain& domain) const {
  QSYN_CHECK(domain.wires() == wires_, "domain wire count mismatch");
  std::vector<std::uint32_t> images(domain.size());
  for (std::uint32_t label = 1; label <= domain.size(); ++label) {
    images[label - 1] = domain.label_of(apply(domain.pattern(label)));
  }
  return perm::Permutation::from_images(std::move(images));
}

perm::Permutation Cascade::to_binary_permutation() const {
  const std::uint32_t count = 1u << wires_;
  std::vector<std::uint32_t> images(count);
  for (std::uint32_t bits = 0; bits < count; ++bits) {
    const mvl::Pattern out = apply(mvl::Pattern::from_binary(wires_, bits));
    QSYN_CHECK(out.is_binary(),
               "cascade is not a reversible binary circuit (binary input " +
                   std::to_string(bits) + " gives " + out.to_string() + ")");
    images[bits] = out.binary_value() + 1;
  }
  return perm::Permutation::from_images(std::move(images));
}

bool Cascade::is_binary_preserving() const {
  const std::uint32_t count = 1u << wires_;
  for (std::uint32_t bits = 0; bits < count; ++bits) {
    if (!apply(mvl::Pattern::from_binary(wires_, bits)).is_binary()) {
      return false;
    }
  }
  return true;
}

bool Cascade::is_reasonable(const mvl::PatternDomain& domain) const {
  QSYN_CHECK(domain.wires() == wires_, "domain wire count mismatch");
  // Track the images of the binary inputs through the cascade prefix.
  std::vector<mvl::Pattern> images;
  images.reserve(domain.binary_count());
  for (std::uint32_t bits = 0; bits < domain.binary_count(); ++bits) {
    images.push_back(mvl::Pattern::from_binary(wires_, bits));
  }
  for (const Gate& g : gates_) {
    const auto klass = g.banned_class(domain);
    if (klass.has_value()) {
      for (const mvl::Pattern& p : images) {
        if ((domain.banned_mask(domain.label_of(p)) >> *klass & 1u) != 0) {
          return false;
        }
      }
    }
    for (mvl::Pattern& p : images) p = g.apply(p);
  }
  return true;
}

Cascade Cascade::adjoint() const {
  std::vector<Gate> reversed;
  reversed.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    reversed.push_back(it->adjoint());
  }
  return Cascade(wires_, std::move(reversed));
}

std::string Cascade::to_string() const {
  if (gates_.empty()) return "()";
  std::string out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (i != 0) out += '*';
    out += gates_[i].name();
  }
  return out;
}

std::string Cascade::to_diagram() const {
  // One 6-character column per gate; wires as rows.
  const std::string wire_fill = "------";
  std::vector<std::string> rows(wires_);
  for (std::size_t w = 0; w < wires_; ++w) {
    rows[w] = std::string(1, wire_letter(w)) + " -";
  }
  for (const Gate& g : gates_) {
    const std::size_t lo =
        g.has_control() ? std::min(g.target(), g.control()) : g.target();
    const std::size_t hi =
        g.has_control() ? std::max(g.target(), g.control()) : g.target();
    for (std::size_t w = 0; w < wires_; ++w) {
      std::string cell = wire_fill;
      if (g.has_control() && w == g.control()) {
        cell = "--*---";
      } else if (w == g.target()) {
        switch (g.kind()) {
          case GateKind::kCtrlV:
            cell = "-[V ]-";
            break;
          case GateKind::kCtrlVdag:
            cell = "-[V+]-";
            break;
          case GateKind::kFeynman:
            cell = "-(+)--";
            break;
          case GateKind::kNot:
            cell = "-[X]--";
            break;
        }
      } else if (w > lo && w < hi) {
        cell = "--|---";
      }
      rows[w] += cell;
    }
  }
  std::string out;
  for (std::size_t w = 0; w < wires_; ++w) {
    out += rows[w];
    out += "-- ";
    out += wire_letter(w);
    out += '\'';
    if (w + 1 != wires_) out += '\n';
  }
  return out;
}

}  // namespace qsyn::gates
