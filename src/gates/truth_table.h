// qsyn/gates/truth_table.h
//
// Multi-valued truth tables of gates and cascades over a pattern domain —
// the representation behind the paper's Table 1 (the 16-row table of the
// 2-qubit controlled-V gate) and the 38-row 3-qubit tables of Section 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/cascade.h"
#include "gates/gate.h"
#include "mvl/domain.h"

namespace qsyn::gates {

/// One row: input label/pattern and output label/pattern.
struct TruthTableRow {
  std::uint32_t input_label = 0;   // 1-based
  mvl::Pattern input;
  mvl::Pattern output;
  std::uint32_t output_label = 0;  // 1-based
};

/// A full multi-valued truth table over a domain.
struct TruthTable {
  std::vector<TruthTableRow> rows;

  /// Renders the table in the paper's layout: Label | inputs | outputs |
  /// Label, with one column per wire named A, B, C, ... / P, Q, R, ...
  [[nodiscard]] std::string to_text() const;

  /// The output-label column as a permutation of {1..rows}.
  [[nodiscard]] perm::Permutation to_permutation() const;
};

/// Truth table of a single gate over `domain`.
[[nodiscard]] TruthTable make_truth_table(const Gate& gate,
                                          const mvl::PatternDomain& domain);

/// Truth table of a cascade over `domain`.
[[nodiscard]] TruthTable make_truth_table(const Cascade& cascade,
                                          const mvl::PatternDomain& domain);

}  // namespace qsyn::gates
