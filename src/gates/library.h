// qsyn/gates/library.h
//
// The paper's quantum gate library L for n wires: every controlled-V,
// controlled-V+ and Feynman gate over ordered wire pairs — 3·n·(n-1) gates,
// 18 for the 3-qubit case — grouped into the banned-set classes
// L_A, L_B, L_C (controlled gates by control wire) and L_AB, L_AC, L_BC
// (Feynman gates by wire pair). NOT gates are *not* in L; the paper handles
// them separately through the coset decomposition of Theorem 2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <cstddef>
#include <memory>

#include "gates/gate.h"
#include "mvl/domain.h"
#include "mvl/nqubit.h"
#include "perm/permutation.h"

namespace qsyn::gates {

/// The library L plus cached per-gate permutations for one pattern domain.
class GateLibrary {
 public:
  /// Builds L for `domain.wires()` wires and caches each gate's permutation
  /// of the domain labels and its banned class.
  explicit GateLibrary(const mvl::PatternDomain& domain);

  /// The standard paper library over the reduced n-wire domain, owning its
  /// domain (no external PatternDomain lifetime to manage). Emits
  /// NQubitDomain::library_size() = 3n(n-1) gates in paper order: the
  /// control classes L_A..L_(n-1), then the Feynman classes L_AB, L_AC, ...
  /// For n = 3 this is byte-identical to the legacy hard-coded 18-gate
  /// library (golden-tested in tests/test_domain_nqubit.cpp).
  static GateLibrary standard(std::size_t wires);

  /// Same library sharing `nq`'s domain (cheap when the caller already
  /// built an NQubitDomain).
  static GateLibrary standard(const mvl::NQubitDomain& nq);

  [[nodiscard]] const mvl::PatternDomain& domain() const { return *domain_; }
  [[nodiscard]] std::size_t size() const { return gates_.size(); }

  [[nodiscard]] const Gate& gate(std::size_t index) const;
  [[nodiscard]] const perm::Permutation& permutation(std::size_t index) const;
  [[nodiscard]] mvl::BannedClass banned_class_of(std::size_t index) const;

  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }

  /// Index of the gate with the given paper-style name; throws if absent.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

  /// The controlled-gate class L_w (paper's L_A, L_B, L_C): indices of the
  /// 2(n-1) controlled-V/V+ gates whose control is `wire`.
  [[nodiscard]] std::vector<std::size_t> control_subset(
      std::size_t wire) const;

  /// The Feynman class L_{ab}: indices of the two CNOTs on the pair {a, b}.
  [[nodiscard]] std::vector<std::size_t> feynman_subset(std::size_t a,
                                                        std::size_t b) const;

  /// Indices of all Feynman gates.
  [[nodiscard]] std::vector<std::size_t> feynman_indices() const;

  /// Indices of all controlled-V / controlled-V+ gates.
  [[nodiscard]] std::vector<std::size_t> controlled_indices() const;

  /// Index of the adjoint gate of gate `index` (an involution on L).
  [[nodiscard]] std::size_t adjoint_index(std::size_t index) const;

  /// True iff the two gates' domain permutations commute. The topology-guided
  /// search backend keeps only one canonical order of adjacent commuting
  /// gates; O(domain size) per query, uncached.
  [[nodiscard]] bool commutes(std::size_t a, std::size_t b) const;

  /// A library over the same domain containing only the given gate indices
  /// (in the given order). Used by ablations and by tests that need a tiny
  /// library whose closure saturates early.
  [[nodiscard]] GateLibrary restricted_to(
      const std::vector<std::size_t>& indices) const;

  /// Content fingerprint folding the domain fingerprint with every gate's
  /// packed encoding and banned class, in library order. Witness back-walks
  /// replay gate indices, so a persistent catalog is only valid against the
  /// exact library it was enumerated with; the catalog header stores this
  /// value to enforce that.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  GateLibrary() = default;

  // Non-owning view; set for every construction path. Libraries built via
  // standard() additionally hold the domain alive through owned_domain_;
  // libraries built over a caller's PatternDomain require it to outlive them.
  const mvl::PatternDomain* domain_ = nullptr;
  std::shared_ptr<const mvl::PatternDomain> owned_domain_;
  std::vector<Gate> gates_;
  std::vector<perm::Permutation> perms_;
  std::vector<mvl::BannedClass> classes_;
};

}  // namespace qsyn::gates
