#include "gates/library.h"

#include "common/error.h"

namespace qsyn::gates {

GateLibrary::GateLibrary(const mvl::PatternDomain& domain) : domain_(&domain) {
  const std::size_t n = domain.wires();
  QSYN_CHECK(n >= 2, "the gate library needs at least two wires");
  // Paper order: the controlled classes L_A, L_B, L_C, ... then the Feynman
  // classes L_AB, L_AC, L_BC, ...
  for (std::size_t control = 0; control < n; ++control) {
    for (std::size_t target = 0; target < n; ++target) {
      if (target == control) continue;
      gates_.push_back(Gate::ctrl_v(target, control));
      gates_.push_back(Gate::ctrl_v_dagger(target, control));
    }
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      gates_.push_back(Gate::feynman(a, b));
      gates_.push_back(Gate::feynman(b, a));
    }
  }
  perms_.reserve(gates_.size());
  classes_.reserve(gates_.size());
  for (const Gate& g : gates_) {
    perms_.push_back(g.to_permutation(domain));
    const auto klass = g.banned_class(domain);
    QSYN_CHECK(klass.has_value(), "library gates always have a banned class");
    classes_.push_back(*klass);
  }
}

std::uint64_t GateLibrary::fingerprint() const {
  // FNV-1a continuation of the domain fingerprint (same byte-order-fixed
  // mixing as PatternDomain::fingerprint, so the value is host-independent).
  std::uint64_t h = domain_->fingerprint();
  const auto mix = [&h](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      h ^= (value >> (8 * i)) & 0xffu;
      h *= 0x00000100000001b3ull;
    }
  };
  mix(gates_.size());
  for (std::size_t g = 0; g < gates_.size(); ++g) {
    mix(gates_[g].packed());
    mix(classes_[g]);
  }
  return h;
}

GateLibrary GateLibrary::standard(const mvl::NQubitDomain& nq) {
  GateLibrary out(nq.domain());
  out.owned_domain_ = nq.share();
  QSYN_CHECK(out.size() == nq.library_size(),
             "standard library size must match the domain's library_size()");
  return out;
}

GateLibrary GateLibrary::standard(std::size_t wires) {
  return standard(mvl::NQubitDomain(wires));
}

const Gate& GateLibrary::gate(std::size_t index) const {
  QSYN_CHECK(index < gates_.size(), "gate index out of range");
  return gates_[index];
}

const perm::Permutation& GateLibrary::permutation(std::size_t index) const {
  QSYN_CHECK(index < perms_.size(), "gate index out of range");
  return perms_[index];
}

mvl::BannedClass GateLibrary::banned_class_of(std::size_t index) const {
  QSYN_CHECK(index < classes_.size(), "gate index out of range");
  return classes_[index];
}

std::size_t GateLibrary::index_of(const std::string& name) const {
  const Gate wanted = Gate::parse(name);
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i] == wanted) return i;
  }
  throw qsyn::LogicError("gate not in library: " + name);
}

std::vector<std::size_t> GateLibrary::control_subset(std::size_t wire) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if ((g.kind() == GateKind::kCtrlV || g.kind() == GateKind::kCtrlVdag) &&
        g.control() == wire) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> GateLibrary::feynman_subset(std::size_t a,
                                                     std::size_t b) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    if (g.kind() == GateKind::kFeynman &&
        ((g.target() == a && g.control() == b) ||
         (g.target() == b && g.control() == a))) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::size_t> GateLibrary::feynman_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i].kind() == GateKind::kFeynman) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> GateLibrary::controlled_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i].kind() != GateKind::kFeynman) out.push_back(i);
  }
  return out;
}

GateLibrary GateLibrary::restricted_to(
    const std::vector<std::size_t>& indices) const {
  QSYN_CHECK(!indices.empty(), "a gate library cannot be empty");
  GateLibrary out;
  out.domain_ = domain_;
  out.owned_domain_ = owned_domain_;  // keep a standard() parent's domain alive
  out.gates_.reserve(indices.size());
  out.perms_.reserve(indices.size());
  out.classes_.reserve(indices.size());
  for (const std::size_t index : indices) {
    out.gates_.push_back(gate(index));
    out.perms_.push_back(permutation(index));
    out.classes_.push_back(banned_class_of(index));
  }
  return out;
}

std::size_t GateLibrary::adjoint_index(std::size_t index) const {
  const Gate adj = gate(index).adjoint();
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i] == adj) return i;
  }
  throw qsyn::LogicError("adjoint gate missing from library");
}

bool GateLibrary::commutes(std::size_t a, std::size_t b) const {
  const perm::Permutation& pa = permutation(a);
  const perm::Permutation& pb = permutation(b);
  for (std::uint32_t label = 1; label <= domain_->size(); ++label) {
    if (pb.apply(pa.apply(label)) != pa.apply(pb.apply(label))) return false;
  }
  return true;
}

}  // namespace qsyn::gates
