#include "gates/truth_table.h"

#include <functional>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace qsyn::gates {

namespace {

TruthTable table_from_apply(const mvl::PatternDomain& domain,
                            const std::function<mvl::Pattern(
                                const mvl::Pattern&)>& apply_fn) {
  TruthTable table;
  table.rows.reserve(domain.size());
  for (std::uint32_t label = 1; label <= domain.size(); ++label) {
    TruthTableRow row{label, domain.pattern(label),
                      apply_fn(domain.pattern(label)), 0};
    row.output_label = domain.label_of(row.output);
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace

std::string TruthTable::to_text() const {
  QSYN_CHECK(!rows.empty(), "cannot render an empty truth table");
  const std::size_t wires = rows.front().input.wires();
  std::ostringstream os;
  // Header: input wires named A,B,C..., output wires named P,Q,R...
  os << qsyn::pad_left("#", 4) << " |";
  for (std::size_t w = 0; w < wires; ++w) {
    os << qsyn::pad_left(std::string(1, wire_letter(w)), 4);
  }
  os << " |";
  for (std::size_t w = 0; w < wires; ++w) {
    os << qsyn::pad_left(std::string(1, static_cast<char>('P' + w)), 4);
  }
  os << " | " << qsyn::pad_left("#", 4) << "\n";
  os << std::string(4, '-') << "-+" << std::string(4 * wires, '-') << "-+"
     << std::string(4 * wires, '-') << "-+-" << std::string(4, '-') << "\n";
  for (const TruthTableRow& row : rows) {
    os << qsyn::pad_left(std::to_string(row.input_label), 4) << " |";
    for (std::size_t w = 0; w < wires; ++w) {
      os << qsyn::pad_left(mvl::to_string(row.input.get(w)), 4);
    }
    os << " |";
    for (std::size_t w = 0; w < wires; ++w) {
      os << qsyn::pad_left(mvl::to_string(row.output.get(w)), 4);
    }
    os << " | " << qsyn::pad_left(std::to_string(row.output_label), 4) << "\n";
  }
  return os.str();
}

perm::Permutation TruthTable::to_permutation() const {
  std::vector<std::uint32_t> images(rows.size());
  for (const TruthTableRow& row : rows) {
    QSYN_CHECK(row.input_label >= 1 && row.input_label <= rows.size(),
               "truth table labels out of range");
    images[row.input_label - 1] = row.output_label;
  }
  return perm::Permutation::from_images(std::move(images));
}

TruthTable make_truth_table(const Gate& gate,
                            const mvl::PatternDomain& domain) {
  return table_from_apply(
      domain, [&gate](const mvl::Pattern& p) { return gate.apply(p); });
}

TruthTable make_truth_table(const Cascade& cascade,
                            const mvl::PatternDomain& domain) {
  return table_from_apply(domain, [&cascade](const mvl::Pattern& p) {
    return cascade.apply(p);
  });
}

}  // namespace qsyn::gates
