// qsyn/gates/gate.h
//
// The elementary gate set of the paper (Figure 1) in symbolic form:
//
//   * controlled-V   (2-qubit; applies the square-root-of-NOT to the data
//                     wire when the control wire is 1)
//   * controlled-V+  (2-qubit; Hermitian adjoint of controlled-V)
//   * Feynman / CNOT (2-qubit; data wire ^= control wire)
//   * NOT            (1-qubit inverter; quantum cost 0 in the paper's model)
//
// Naming follows the paper: a two-qubit gate's name is the kind letter
// followed by <data wire><control wire>, wires named A, B, C, ... So V_BA
// ("VBA") applies V to wire B under control A; F_CA xors wire A into wire C.
//
// Multi-valued semantics (the paper's don't-care closure): a controlled gate
// acts only when its control is exactly 1 — a mixed control (V0/V1) leaves
// the pattern unchanged; a Feynman gate acts only when both wires are binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "mvl/domain.h"
#include "mvl/pattern.h"
#include "perm/permutation.h"

namespace qsyn::gates {

enum class GateKind : std::uint8_t {
  kCtrlV,      // controlled square-root-of-NOT
  kCtrlVdag,   // controlled V+ (Hermitian adjoint)
  kFeynman,    // CNOT
  kNot,        // 1-qubit inverter
};

[[nodiscard]] std::string to_string(GateKind kind);

/// Quantum cost assignment. The paper's model charges 1 per 2-qubit gate and
/// 0 per NOT; the NMR-style variant demonstrates the paper's claim that the
/// method "can be adapted to any particular numerical values of costs".
struct CostModel {
  unsigned ctrl_v = 1;
  unsigned ctrl_v_dagger = 1;
  unsigned feynman = 1;
  unsigned not_gate = 0;

  /// The paper's default: every 2-qubit gate costs 1, NOT costs 0.
  static CostModel unit();

  /// A non-uniform illustrative model in the spirit of the NMR pulse costs
  /// of [Lee et al. 2004] (CNOT cheaper than controlled-V).
  static CostModel nmr_like();

  [[nodiscard]] unsigned cost_of(GateKind kind) const;
};

/// One placed elementary gate on an n-wire circuit.
class Gate {
 public:
  /// Two-qubit gates take (kind, data/target wire, control wire); NOT takes
  /// (kNot, wire). Wires are 0-based (wire 0 = qubit A).
  static Gate ctrl_v(std::size_t target, std::size_t control);
  static Gate ctrl_v_dagger(std::size_t target, std::size_t control);
  static Gate feynman(std::size_t target, std::size_t control);
  static Gate not_gate(std::size_t target);

  /// Parses a paper-style name such as "VBA", "V+AB", "FCA", or "NA".
  /// Throws qsyn::ParseError on malformed names.
  static Gate parse(const std::string& name);

  [[nodiscard]] GateKind kind() const { return kind_; }
  [[nodiscard]] std::size_t target() const { return target_; }
  /// Control wire; throws for NOT gates (which have none).
  [[nodiscard]] std::size_t control() const;
  [[nodiscard]] bool has_control() const { return kind_ != GateKind::kNot; }

  /// Paper-style name: "VBA", "V+AB", "FCA", "NA".
  [[nodiscard]] std::string name() const;

  /// Stable 32-bit content encoding of (kind, target, control) — the key
  /// the fused-simulation unitary cache (sim/fused.h) hashes gate blocks
  /// by. NOT gates store their (unused) control as the target, so equal
  /// gates always encode equally.
  [[nodiscard]] std::uint32_t packed() const {
    return static_cast<std::uint32_t>(kind_) |
           static_cast<std::uint32_t>(target_) << 2 |
           static_cast<std::uint32_t>(control_) << 17;
  }

  /// The Hermitian adjoint gate (V <-> V+; Feynman and NOT are self-adjoint).
  [[nodiscard]] Gate adjoint() const;

  /// Multi-valued action on one pattern (see file comment for the don't-care
  /// rules). The pattern must have enough wires.
  [[nodiscard]] mvl::Pattern apply(const mvl::Pattern& input) const;

  /// The gate as a permutation of domain labels (1-based), the paper's
  /// representation (e.g. V_BA = (5,17,7,21)(6,18,8,22)(13,19,15,23)
  /// (14,20,16,24) on the reduced 3-wire domain).
  [[nodiscard]] perm::Permutation to_permutation(
      const mvl::PatternDomain& domain) const;

  /// The banned-set class governing when this gate may be cascaded
  /// (control class of the control wire for V/V+, Feynman class of the wire
  /// pair for CNOT). NOT gates have no constraint -> nullopt.
  [[nodiscard]] std::optional<mvl::BannedClass> banned_class(
      const mvl::PatternDomain& domain) const;

  [[nodiscard]] unsigned cost(const CostModel& model) const {
    return model.cost_of(kind_);
  }

  friend bool operator==(const Gate& a, const Gate& b) {
    return a.kind_ == b.kind_ && a.target_ == b.target_ &&
           a.control_ == b.control_;
  }
  friend bool operator!=(const Gate& a, const Gate& b) { return !(a == b); }

 private:
  Gate(GateKind kind, std::size_t target, std::size_t control)
      : kind_(kind), target_(target), control_(control) {}

  GateKind kind_;
  std::size_t target_;
  std::size_t control_;  // == target_ for NOT (unused)
};

/// Wire name used in gate names and diagrams: 0 -> 'A', 1 -> 'B', ...
[[nodiscard]] char wire_letter(std::size_t wire);

/// Inverse of wire_letter; throws qsyn::ParseError for non-letters.
[[nodiscard]] std::size_t wire_from_letter(char letter);

}  // namespace qsyn::gates
