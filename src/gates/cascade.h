// qsyn/gates/cascade.h
//
// A Cascade is a left-to-right sequence of elementary gates — the circuit
// form the paper synthesizes. Cascade order matches the paper's product
// convention: the cascade {g1, g2, g3} computes g1*g2*g3, i.e. g1 acts on the
// inputs first. Cascades parse from and print to the paper's notation, e.g.
// "VCB*FBA*VCA*V+CB" (the Peres circuit of Figure 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/gate.h"
#include "mvl/domain.h"
#include "mvl/pattern.h"
#include "perm/permutation.h"

namespace qsyn::gates {

/// A gate cascade on a fixed number of wires.
class Cascade {
 public:
  /// Empty cascade (the identity circuit) on `wires` wires.
  explicit Cascade(std::size_t wires);

  /// From an explicit gate sequence.
  Cascade(std::size_t wires, std::vector<Gate> gate_sequence);

  /// Parses "VCB*FBA*VCA*V+CB"; `wires` = 0 infers the wire count from the
  /// highest wire letter used (minimum 2).
  static Cascade parse(const std::string& text, std::size_t wires = 0);

  [[nodiscard]] std::size_t wires() const { return wires_; }
  [[nodiscard]] std::size_t size() const { return gates_.size(); }
  [[nodiscard]] bool empty() const { return gates_.empty(); }
  [[nodiscard]] const std::vector<Gate>& sequence() const { return gates_; }
  [[nodiscard]] const Gate& gate(std::size_t i) const;

  /// Appends a gate at the output end.
  void append(const Gate& g);

  /// Total quantum cost under the given model.
  [[nodiscard]] unsigned cost(const CostModel& model = CostModel::unit()) const;

  /// Runs the multi-valued semantics over the whole cascade.
  [[nodiscard]] mvl::Pattern apply(const mvl::Pattern& input) const;

  /// The cascade as a permutation of domain labels (product of the gate
  /// permutations). Throws if some intermediate pattern leaves the domain
  /// (possible only with NOT gates on reduced domains).
  [[nodiscard]] perm::Permutation to_permutation(
      const mvl::PatternDomain& domain) const;

  /// Action on the 2^wires *binary* input patterns as a permutation of
  /// {1..2^wires} (labels in binary-value order, 1 = all zeros). Throws
  /// qsyn::LogicError if some binary input yields a non-binary output, i.e.
  /// the cascade is not a reversible binary circuit.
  [[nodiscard]] perm::Permutation to_binary_permutation() const;

  /// True iff every binary input produces a binary output.
  [[nodiscard]] bool is_binary_preserving() const;

  /// The paper's "reasonable product" condition: checks, gate by gate, that
  /// each gate's banned set is disjoint from the image of the binary inputs
  /// under the prefix before it. NOT gates are unconstrained.
  [[nodiscard]] bool is_reasonable(const mvl::PatternDomain& domain) const;

  /// Hermitian adjoint circuit: gates reversed, V <-> V+. Satisfies
  /// adjoint().to_permutation(d) == to_permutation(d).inverse().
  [[nodiscard]] Cascade adjoint() const;

  /// "VCB*FBA*VCA*V+CB"; "()" for the empty cascade.
  [[nodiscard]] std::string to_string() const;

  /// Multi-line ASCII circuit diagram (wires as rows, gates as columns):
  ///
  ///   A ----*------*----*---
  ///   B ----*----(+)----|---
  ///   C --[V ]----------[V+]
  [[nodiscard]] std::string to_diagram() const;

  friend bool operator==(const Cascade& a, const Cascade& b) {
    return a.wires_ == b.wires_ && a.gates_ == b.gates_;
  }

 private:
  std::size_t wires_;
  std::vector<Gate> gates_;
};

}  // namespace qsyn::gates
