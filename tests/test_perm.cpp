// Unit tests for qsyn/perm: permutations with the paper's (GAP) composition
// convention a*b = "apply a first, then b".
#include <gtest/gtest.h>

#include "common/error.h"
#include "perm/permutation.h"

namespace qsyn::perm {
namespace {

TEST(Permutation, IdentityBasics) {
  const Permutation id = Permutation::identity(5);
  EXPECT_EQ(id.degree(), 5u);
  EXPECT_TRUE(id.is_identity());
  EXPECT_EQ(id.apply(3), 3u);
  EXPECT_EQ(id.to_cycle_string(), "()");
  EXPECT_EQ(id.order(), 1u);
  EXPECT_EQ(id.sign(), 1);
}

TEST(Permutation, PointsBeyondDegreeAreFixed) {
  const Permutation id = Permutation::identity(3);
  EXPECT_EQ(id.apply(10), 10u);
}

TEST(Permutation, FromImagesValidation) {
  EXPECT_NO_THROW(Permutation::from_images({2, 1, 3}));
  EXPECT_THROW(Permutation::from_images({2, 2, 3}), LogicError);
  EXPECT_THROW(Permutation::from_images({0, 1, 2}), LogicError);
  EXPECT_THROW(Permutation::from_images({1, 2, 4}), LogicError);
}

TEST(Permutation, CycleParseSimple) {
  const Permutation p = Permutation::from_cycles("(3,7,4,8)", 8);
  EXPECT_EQ(p.apply(3), 7u);
  EXPECT_EQ(p.apply(7), 4u);
  EXPECT_EQ(p.apply(4), 8u);
  EXPECT_EQ(p.apply(8), 3u);
  EXPECT_EQ(p.apply(1), 1u);
  EXPECT_EQ(p.to_cycle_string(), "(3,7,4,8)");
}

TEST(Permutation, CycleParseMultipleCycles) {
  const Permutation p = Permutation::from_cycles("(1,2)(3,4,5)");
  EXPECT_EQ(p.degree(), 5u);
  EXPECT_EQ(p.apply(2), 1u);
  EXPECT_EQ(p.apply(5), 3u);
  EXPECT_EQ(p.order(), 6u);
}

TEST(Permutation, CycleParseIdentity) {
  EXPECT_TRUE(Permutation::from_cycles("()", 4).is_identity());
  EXPECT_TRUE(Permutation::from_cycles("", 4).is_identity());
}

TEST(Permutation, CycleParseErrors) {
  EXPECT_THROW(Permutation::from_cycles("(1,2"), qsyn::ParseError);
  EXPECT_THROW(Permutation::from_cycles("1,2)"), qsyn::ParseError);
  EXPECT_THROW(Permutation::from_cycles("(1,1)"), qsyn::ParseError);
  EXPECT_THROW(Permutation::from_cycles("(1,2)(2,3)"), qsyn::ParseError);
  EXPECT_THROW(Permutation::from_cycles("(a,b)"), qsyn::ParseError);
  EXPECT_THROW(Permutation::from_cycles("(0,1)"), qsyn::ParseError);
  EXPECT_THROW(Permutation::from_cycles("(1,9)", 3), qsyn::ParseError);
}

TEST(Permutation, PaperCompositionConvention) {
  // Paper/GAP: (a*b)(s) = b(a(s)).
  const Permutation a = Permutation::from_cycles("(1,2)", 3);
  const Permutation b = Permutation::from_cycles("(2,3)", 3);
  const Permutation ab = a * b;
  EXPECT_EQ(ab.apply(1), 3u);  // a: 1->2, b: 2->3
  EXPECT_EQ(ab.apply(2), 1u);
  EXPECT_EQ(ab.apply(3), 2u);
  const Permutation ba = b * a;
  EXPECT_NE(ab, ba);
  EXPECT_EQ(ba.apply(1), 2u);
}

TEST(Permutation, ProductOfDifferentDegrees) {
  const Permutation a = Permutation::from_cycles("(1,2)", 2);
  const Permutation b = Permutation::from_cycles("(3,4)", 4);
  const Permutation ab = a * b;
  EXPECT_EQ(ab.degree(), 4u);
  EXPECT_EQ(ab.apply(1), 2u);
  EXPECT_EQ(ab.apply(3), 4u);
}

TEST(Permutation, InverseProperty) {
  const Permutation p = Permutation::from_cycles("(1,5,2)(3,4)", 6);
  EXPECT_TRUE((p * p.inverse()).is_identity());
  EXPECT_TRUE((p.inverse() * p).is_identity());
  EXPECT_EQ(p.inverse().apply(5), 1u);
}

TEST(Permutation, PowerAndOrder) {
  const Permutation p = Permutation::from_cycles("(1,2,3,4)", 4);
  EXPECT_EQ(p.order(), 4u);
  EXPECT_TRUE(p.power(4).is_identity());
  EXPECT_EQ(p.power(2).to_cycle_string(), "(1,3)(2,4)");
  EXPECT_TRUE(p.power(0).is_identity());
  const Permutation q = Permutation::from_cycles("(1,2)(3,4,5)", 5);
  EXPECT_EQ(q.order(), 6u);
}

TEST(Permutation, SignMatchesCycleStructure) {
  EXPECT_EQ(Permutation::from_cycles("(1,2)", 2).sign(), -1);
  EXPECT_EQ(Permutation::from_cycles("(1,2,3)", 3).sign(), 1);
  EXPECT_EQ(Permutation::from_cycles("(1,2)(3,4)", 4).sign(), 1);
  EXPECT_EQ(Permutation::from_cycles("(1,2,3,4)", 4).sign(), -1);
}

TEST(Permutation, SupportAndFixedPoints) {
  const Permutation p = Permutation::from_cycles("(2,4)", 5);
  EXPECT_EQ(p.support(), (std::vector<std::uint32_t>{2, 4}));
  EXPECT_EQ(p.fixed_points(), (std::vector<std::uint32_t>{1, 3, 5}));
}

TEST(Permutation, ApplySetSorts) {
  const Permutation p = Permutation::from_cycles("(1,8)(2,5)", 8);
  const auto image = p.apply_set({1, 2, 3});
  EXPECT_EQ(image, (std::vector<std::uint32_t>{3, 5, 8}));
}

TEST(Permutation, StabilizesSet) {
  const Permutation p = Permutation::from_cycles("(1,2)(3,4)", 4);
  EXPECT_TRUE(p.stabilizes_set({1, 2}));
  EXPECT_TRUE(p.stabilizes_set({1, 2, 3, 4}));
  EXPECT_FALSE(p.stabilizes_set({2, 3}));
}

TEST(Permutation, RestrictedToPrefix) {
  // The paper's Restrictedperm(b, S) with S = {1..k}.
  const Permutation b = Permutation::from_cycles("(1,2)(5,6)", 6);
  const Permutation r = b.restricted_to_prefix(4);
  EXPECT_EQ(r.degree(), 4u);
  EXPECT_EQ(r.to_cycle_string(), "(1,2)");
  EXPECT_THROW((void)b.restricted_to_prefix(5), LogicError);
}

TEST(Permutation, ExtendedTo) {
  const Permutation p = Permutation::from_cycles("(1,2)", 2);
  const Permutation e = p.extended_to(5);
  EXPECT_EQ(e.degree(), 5u);
  EXPECT_EQ(e.apply(5), 5u);
  EXPECT_EQ(e.apply(1), 2u);
  EXPECT_THROW((void)e.extended_to(2), LogicError);
}

TEST(Permutation, EqualityAcrossDegrees) {
  const Permutation a = Permutation::from_cycles("(1,2)", 2);
  const Permutation b = Permutation::from_cycles("(1,2)", 7);
  EXPECT_EQ(a, b);
  EXPECT_EQ(Permutation::identity(0), Permutation::identity(9));
}

TEST(Permutation, HashConsistentAcrossDegrees) {
  const Permutation a = Permutation::from_cycles("(1,2)", 2);
  const Permutation b = Permutation::from_cycles("(1,2)", 7);
  PermutationHash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(Permutation, OrderingIsLexicographic) {
  const Permutation id = Permutation::identity(3);
  const Permutation p = Permutation::from_cycles("(2,3)", 3);
  EXPECT_LT(id, p);
  EXPECT_FALSE(p < id);
}

TEST(Permutation, CycleType) {
  const Permutation p = Permutation::from_cycles("(1,2)(3,4,5)(6,7,8,9)", 9);
  EXPECT_EQ(p.cycle_type(), (std::vector<std::size_t>{4, 3, 2}));
  EXPECT_TRUE(Permutation::identity(5).cycle_type().empty());
}

TEST(Permutation, Transposition) {
  const Permutation t = Permutation::transposition(5, 2, 4);
  EXPECT_EQ(t.to_cycle_string(), "(2,4)");
  EXPECT_THROW(Permutation::transposition(5, 2, 2), LogicError);
  EXPECT_THROW(Permutation::transposition(5, 0, 2), LogicError);
}

TEST(Permutation, FromImages0) {
  const Permutation p = Permutation::from_images0({1, 0, 2});
  EXPECT_EQ(p.to_cycle_string(), "(1,2)");
}

TEST(Permutation, PaperGateCycleRoundTrip) {
  // The paper's printed V_BA representation survives a parse/print cycle.
  const std::string text = "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)";
  EXPECT_EQ(Permutation::from_cycles(text, 38).to_cycle_string(), text);
}

}  // namespace
}  // namespace qsyn::perm
