// Randomized property sweeps over the numerical and group-theoretic
// substrates: algebraic identities for matrices, Schreier-Sims order vs
// brute-force closure, and FlatPermStore vs a std::set reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "la/lu.h"
#include "la/matrix.h"
#include "perm/perm_group.h"
#include "perm/permutation.h"
#include "synth/flat_perm_store.h"

namespace qsyn {
namespace {

la::Matrix random_matrix(std::size_t n, Rng& rng) {
  la::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      m(r, c) = la::Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
    }
  }
  return m;
}

perm::Permutation random_perm(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> images(n);
  for (std::size_t i = 0; i < n; ++i) {
    images[i] = static_cast<std::uint32_t>(i + 1);
  }
  for (std::size_t i = n; i > 1; --i) {
    std::swap(images[i - 1], images[rng.below(i)]);
  }
  return perm::Permutation::from_images(std::move(images));
}

class SubstrateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SubstrateProperty, KroneckerMixedProduct) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD).
  Rng rng(GetParam());
  const la::Matrix a = random_matrix(3, rng);
  const la::Matrix b = random_matrix(2, rng);
  const la::Matrix c = random_matrix(3, rng);
  const la::Matrix d = random_matrix(2, rng);
  EXPECT_TRUE((a.kron(b) * c.kron(d)).approx_equal((a * c).kron(b * d), 1e-9));
}

TEST_P(SubstrateProperty, AdjointOfProductReverses) {
  Rng rng(GetParam() + 1000);
  const la::Matrix a = random_matrix(4, rng);
  const la::Matrix b = random_matrix(4, rng);
  EXPECT_TRUE((a * b).adjoint().approx_equal(b.adjoint() * a.adjoint(), 1e-9));
}

TEST_P(SubstrateProperty, LuSolvesRandomSystems) {
  Rng rng(GetParam() + 2000);
  const la::Matrix a = random_matrix(6, rng);
  la::Vector x(6);
  for (std::size_t i = 0; i < 6; ++i) {
    x[i] = la::Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
  }
  const la::Vector b = a * x;
  EXPECT_TRUE(la::solve(a, b).approx_equal(x, 1e-7));
}

TEST_P(SubstrateProperty, DeterminantIsMultiplicative) {
  Rng rng(GetParam() + 3000);
  const la::Matrix a = random_matrix(4, rng);
  const la::Matrix b = random_matrix(4, rng);
  const la::Complex det_ab = la::determinant(a * b);
  const la::Complex product = la::determinant(a) * la::determinant(b);
  EXPECT_LT(std::abs(det_ab - product), 1e-7);
}

TEST_P(SubstrateProperty, SchreierSimsMatchesBruteForceClosure) {
  // Two random permutations of degree 6: compare the Schreier-Sims order
  // against an explicit product closure.
  Rng rng(GetParam() + 4000);
  const auto g1 = random_perm(6, rng);
  const auto g2 = random_perm(6, rng);
  const perm::PermGroup group({g1, g2});

  std::set<perm::Permutation> closure = {perm::Permutation::identity(6)};
  bool grew = true;
  while (grew) {
    grew = false;
    std::vector<perm::Permutation> snapshot(closure.begin(), closure.end());
    for (const auto& element : snapshot) {
      for (const auto& gen : {g1, g2}) {
        if (closure.insert(element * gen).second) grew = true;
      }
    }
  }
  EXPECT_EQ(group.order(), closure.size());
  for (const auto& element : closure) {
    EXPECT_TRUE(group.contains(element));
  }
}

TEST_P(SubstrateProperty, GroupElementsMatchClosure) {
  Rng rng(GetParam() + 5000);
  const auto g1 = random_perm(5, rng);
  const auto g2 = random_perm(5, rng);
  const perm::PermGroup group({g1, g2});
  const auto elements = group.elements(1u << 18);
  const std::set<perm::Permutation> distinct(elements.begin(),
                                             elements.end());
  EXPECT_EQ(distinct.size(), group.order());
}

TEST_P(SubstrateProperty, FlatStoreMatchesSetModel) {
  // Random pushes + sort_unique + subtract + merge against std::set algebra.
  Rng rng(GetParam() + 6000);
  synth::FlatPermStore a(6);
  synth::FlatPermStore b(6);
  std::set<perm::Permutation> ref_a;
  std::set<perm::Permutation> ref_b;
  for (int i = 0; i < 40; ++i) {
    const auto p = random_perm(6, rng);
    if (rng.bernoulli(0.5)) {
      a.push_back(p);
      ref_a.insert(p);
    } else {
      b.push_back(p);
      ref_b.insert(p);
    }
  }
  a.sort_unique();
  b.sort_unique();
  ASSERT_EQ(a.size(), ref_a.size());
  ASSERT_EQ(b.size(), ref_b.size());

  synth::FlatPermStore diff = a;
  diff.subtract_sorted(b);
  std::set<perm::Permutation> ref_diff;
  std::set_difference(ref_a.begin(), ref_a.end(), ref_b.begin(), ref_b.end(),
                      std::inserter(ref_diff, ref_diff.begin()));
  ASSERT_EQ(diff.size(), ref_diff.size());
  for (std::size_t i = 0; i < diff.size(); ++i) {
    EXPECT_TRUE(ref_diff.count(diff.permutation(i)) == 1);
  }

  synth::FlatPermStore merged = diff;
  merged.merge_sorted(b);
  std::set<perm::Permutation> ref_merged = ref_diff;
  ref_merged.insert(ref_b.begin(), ref_b.end());
  ASSERT_EQ(merged.size(), ref_merged.size());
  // Merged store must be sorted: contains_sorted finds every member.
  for (const auto& p : ref_merged) {
    synth::FlatPermStore probe(6);
    probe.push_back(p);
    EXPECT_TRUE(merged.contains_sorted(probe.row(0)));
  }
}

TEST_P(SubstrateProperty, PermutationOrderDividesGroupOrder) {
  Rng rng(GetParam() + 7000);
  const auto g1 = random_perm(6, rng);
  const auto g2 = random_perm(6, rng);
  const perm::PermGroup group({g1, g2});
  EXPECT_EQ(group.order() % g1.order(), 0u);  // Lagrange on <g1>
  EXPECT_EQ(group.order() % g2.order(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubstrateProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace qsyn
