// Unit tests for the persistent closure catalog: the RowStorage backend seam
// (read-only mmap windows behind FlatPermStore), save/reopen round-trips of
// the FMCF closure, corrupt-input hardening of the reader, and the
// concurrent CatalogServer front end.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/io/mmap_file.h"
#include "gates/library.h"
#include "synth/catalog.h"
#include "synth/catalog_server.h"
#include "synth/fmcf.h"
#include "synth/flat_perm_store.h"
#include "synth/mce.h"
#include "synth/row_storage.h"
#include "synth/specs.h"

namespace qsyn::synth {
namespace {

// ctest (via gtest_discover_tests) runs every test case as its own process,
// concurrently under -j: temp files must be per-process or the shared-state
// helpers below race across processes on the same path.
std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "qsyn_" + std::to_string(::getpid()) + "_" +
         name + ".qscat";
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

const gates::GateLibrary& library3() {
  static const gates::GateLibrary lib = gates::GateLibrary::standard(3);
  return lib;
}

/// The shared 3-qubit closure to cb = 5 (deep enough to include Toffoli at
/// cost 5) — computed once for the whole binary.
const FmcfEnumerator& fresh5() {
  static const FmcfEnumerator* enumerator = [] {
    auto* e = new FmcfEnumerator(library3());
    e->run_to(5);
    return e;
  }();
  return *enumerator;
}

/// The cb = 5 closure saved to disk, once.
const std::string& catalog5_path() {
  static const std::string path = [] {
    const std::string p = temp_path("closure3_cb5");
    fresh5().save_catalog(p);
    return p;
  }();
  return path;
}

/// Opens a deliberately damaged copy of the cb = 5 catalog and returns the
/// CatalogError message (failing the test if it does not throw).
std::string corrupt_message(
    const std::string& name,
    const std::function<void(std::vector<std::uint8_t>&)>& mutate) {
  std::vector<std::uint8_t> bytes = read_file(catalog5_path());
  mutate(bytes);
  const std::string path = temp_path("corrupt_" + name);
  write_file(path, bytes);
  std::string message;
  try {
    (void)FmcfEnumerator::open_catalog(path, library3());
    ADD_FAILURE() << "expected CatalogError for " << name;
  } catch (const qsyn::CatalogError& error) {
    message = error.what();
  }
  std::remove(path.c_str());
  return message;
}

// --- mmap helper ----------------------------------------------------------

TEST(MmapFile, MissingFileThrowsIoError) {
  EXPECT_THROW((void)io::MmapFile::map(temp_path("does_not_exist")),
               qsyn::IoError);
}

TEST(MmapFile, DirectoryThrowsIoError) {
  EXPECT_THROW((void)io::MmapFile::map(::testing::TempDir()), qsyn::IoError);
}

TEST(MmapFile, MapsWrittenBytes) {
  const std::string path = temp_path("mmap_bytes");
  const std::vector<std::uint8_t> bytes = {1, 2, 3, 250, 0, 17};
  write_file(path, bytes);
  const auto file = io::MmapFile::map(path);
  ASSERT_EQ(file->size(), bytes.size());
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), file->data()));
  EXPECT_EQ(file->path(), path);
  std::remove(path.c_str());
}

// --- read-only storage backend --------------------------------------------

TEST(RowStorageSeam, MmapBackedStoreServesRowsReadOnly) {
  // Serialize a little store, map it back, and check the window is the
  // store: same rows, but every mutation rejected.
  FlatPermStore original(4);
  original.push_back(perm::Permutation::from_cycles("(1,2)", 4));
  original.push_back(perm::Permutation::from_cycles("(2,4)", 4));
  original.sort_unique();

  const std::string path = temp_path("store_rows");
  write_file(path, std::vector<std::uint8_t>(
                       original.data(), original.data() + original.size_bytes()));
  const auto file = io::MmapFile::map(path);
  FlatPermStore mapped(
      4, std::make_shared<MmapRowStorage>(file, 0, file->size()));

  EXPECT_TRUE(mapped.read_only());
  ASSERT_EQ(mapped.size(), original.size());
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    EXPECT_EQ(mapped.permutation(i), original.permutation(i));
  }
  EXPECT_TRUE(mapped.contains_sorted(original.row(1)));
  EXPECT_EQ(mapped.memory_bytes(), 0u) << "mmap pages are not program heap";

  EXPECT_THROW(mapped.push_back(perm::Permutation::identity(4)),
               qsyn::LogicError);
  EXPECT_THROW(mapped.sort_unique(), qsyn::LogicError);

  // Copies deep-copy into a writable in-memory backend.
  FlatPermStore copy = mapped;
  EXPECT_FALSE(copy.read_only());
  copy.push_back(perm::Permutation::identity(4));
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(mapped.size(), 2u);

  // clear() resets to a fresh writable backend even on a read-only store
  // (and clear_keep_capacity degrades to the same reset: there is no heap
  // allocation to keep on an mmap window).
  mapped.clear();
  EXPECT_FALSE(mapped.read_only());
  EXPECT_TRUE(mapped.empty());
  std::remove(path.c_str());
}

TEST(RowStorageSeam, PartialWindowMustAlignToRows) {
  const std::string path = temp_path("store_window");
  write_file(path, std::vector<std::uint8_t>(16, 7));
  const auto file = io::MmapFile::map(path);
  // 16 bytes = 4 rows of width 4; a 10-byte window is not a whole number of
  // rows and an out-of-file window must be rejected up front.
  EXPECT_NO_THROW(FlatPermStore(4, std::make_shared<MmapRowStorage>(file, 4, 8)));
  EXPECT_THROW(FlatPermStore(4, std::make_shared<MmapRowStorage>(file, 0, 10)),
               qsyn::LogicError);
  EXPECT_THROW(std::make_shared<MmapRowStorage>(file, 8, 12), qsyn::LogicError);
  std::remove(path.c_str());
}

// --- catalog round-trip ----------------------------------------------------

TEST(CatalogRoundTrip, StatsAndGSetsSurvive) {
  const FmcfEnumerator& fresh = fresh5();
  const FmcfEnumerator reopened =
      FmcfEnumerator::open_catalog(catalog5_path(), library3());

  ASSERT_EQ(reopened.levels_done(), fresh.levels_done());
  for (std::size_t i = 0; i < fresh.stats().size(); ++i) {
    const FmcfLevelStats& a = fresh.stats()[i];
    const FmcfLevelStats& b = reopened.stats()[i];
    EXPECT_EQ(b.cost, a.cost);
    EXPECT_EQ(b.frontier, a.frontier);
    EXPECT_EQ(b.g_new, a.g_new);
    EXPECT_EQ(b.pre_g, a.pre_g);
    EXPECT_EQ(b.seen, a.seen);
    EXPECT_EQ(b.seconds, a.seconds) << "double bits round-trip exactly";
  }
  EXPECT_EQ(reopened.seen_count(), fresh.seen_count());
  for (unsigned k = 0; k <= fresh.levels_done(); ++k) {
    EXPECT_EQ(reopened.g_set(k), fresh.g_set(k)) << "G[" << k << "]";
  }
}

TEST(CatalogRoundTrip, FindAndWitnessIdenticalForAllReachablePerms) {
  const FmcfEnumerator& fresh = fresh5();
  const FmcfEnumerator reopened =
      FmcfEnumerator::open_catalog(catalog5_path(), library3());

  // Every closure-reachable 3-qubit reversible circuit, level by level: the
  // reopened catalog must locate it at the same cost and row and reconstruct
  // the same witness cascade, and that cascade must still realize the
  // permutation.
  for (unsigned k = 0; k <= fresh.levels_done(); ++k) {
    for (const perm::Permutation& g : fresh.g_set(k)) {
      const auto a = fresh.find(g);
      const auto b = reopened.find(g);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_EQ(b->cost, a->cost);
      EXPECT_EQ(b->frontier_index, a->frontier_index);
      const gates::Cascade wa = fresh.witness(*a);
      const gates::Cascade wb = reopened.witness(*b);
      EXPECT_EQ(wb.sequence(), wa.sequence());
      EXPECT_EQ(wb.to_binary_permutation(), g.extended_to(8));
    }
  }
}

TEST(CatalogRoundTrip, ImplementationRowsSurvive) {
  const FmcfEnumerator reopened =
      FmcfEnumerator::open_catalog(catalog5_path(), library3());
  // The paper's multiplicities: 2 implementations of Peres at cost 4, 4 of
  // Toffoli at cost 5 — straight out of the mmap'd frontier tables.
  EXPECT_EQ(reopened.implementations(peres_perm(), 4).size(), 2u);
  EXPECT_EQ(
      reopened.implementations(strip_not_prefix(3, toffoli_perm()).core, 5)
          .size(),
      4u);
}

TEST(CatalogRoundTrip, ColdStartDoesZeroAdvanceWork) {
  FmcfEnumerator reopened =
      FmcfEnumerator::open_catalog(catalog5_path(), library3());
  EXPECT_TRUE(reopened.read_only());
  EXPECT_EQ(reopened.levels_done(), 5u);
  // The regression this guards: reopening must never fall back to
  // re-enumerating. advance() is a hard error on a catalog, and run_to()
  // past the stored depth hits the same wall instead of silently sweeping.
  EXPECT_THROW((void)reopened.advance(), qsyn::LogicError);
  EXPECT_THROW(reopened.run_to(7), qsyn::LogicError);
  EXPECT_EQ(reopened.levels_done(), 5u);
  // Queries still work after the rejected advances.
  EXPECT_TRUE(reopened.find(peres_perm()).has_value());
}

TEST(CatalogRoundTrip, FourQubitSpotCheck) {
  const gates::GateLibrary lib4 = gates::GateLibrary::standard(4);
  FmcfEnumerator fresh(lib4);
  fresh.run_to(2);
  const std::string path = temp_path("closure4_cb2");
  fresh.save_catalog(path);
  const FmcfEnumerator reopened = FmcfEnumerator::open_catalog(path, lib4);

  ASSERT_EQ(reopened.levels_done(), 2u);
  // PR 5's pinned 4-qubit closure profile: |G[1]| = 12, |G[2]| = 96.
  EXPECT_EQ(reopened.stats()[0].g_new, 12u);
  EXPECT_EQ(reopened.stats()[1].g_new, 96u);
  for (unsigned k = 0; k <= 2; ++k) {
    EXPECT_EQ(reopened.g_set(k), fresh.g_set(k));
  }
  for (const perm::Permutation& g : fresh.g_set(2)) {
    const auto a = fresh.find(g);
    const auto b = reopened.find(g);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(b->frontier_index, a->frontier_index);
    EXPECT_EQ(reopened.witness(*b).sequence(), fresh.witness(*a).sequence());
  }
  std::remove(path.c_str());
}

TEST(CatalogRoundTrip, CountingClosureReopensWithoutWitnesses) {
  // A pure-counting closure (track_witnesses off) releases old frontiers;
  // its catalog still round-trips the G index, and witness reconstruction
  // fails cleanly rather than reading freed tables.
  ClosureConfig options;
  options.track_witnesses = false;
  FmcfEnumerator fresh(library3(), options);
  fresh.run_to(3);
  const std::string path = temp_path("closure3_counting");
  fresh.save_catalog(path);

  const FmcfEnumerator reopened =
      FmcfEnumerator::open_catalog(path, library3());
  ASSERT_EQ(reopened.levels_done(), 3u);
  for (unsigned k = 0; k <= 3; ++k) {
    EXPECT_EQ(reopened.g_set(k), fresh.g_set(k));
  }
  const auto entry = reopened.find(swap_bc_perm());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->cost, 3u);
  EXPECT_THROW((void)reopened.witness(*entry), qsyn::LogicError);
  std::remove(path.c_str());
}

TEST(CatalogRoundTrip, ExpressorServesFromReopenedCatalog) {
  McExpressor expressor(
      FmcfEnumerator::open_catalog(catalog5_path(), library3()));
  EXPECT_EQ(expressor.max_cost(), 5u);
  const auto peres = expressor.synthesize(peres_perm());
  ASSERT_TRUE(peres.has_value());
  EXPECT_EQ(peres->cost, 4u);
  EXPECT_EQ(peres->circuit.to_binary_permutation(), peres_perm());
  // Beyond the stored depth the expressor reports "not found" instead of
  // trying to deepen a read-only closure.
  McExpressor shallow(FmcfEnumerator::open_catalog(catalog5_path(), library3()),
                      7);
  EXPECT_FALSE(shallow.synthesize(fredkin_perm()).has_value());
}

// --- corrupt-input hardening ------------------------------------------------

TEST(CatalogCorruption, TruncationsAreRejected) {
  EXPECT_NE(corrupt_message("header_cut",
                            [](std::vector<std::uint8_t>& b) { b.resize(10); })
                .find("truncated"),
            std::string::npos);
  EXPECT_NE(corrupt_message("stats_cut",
                            [](std::vector<std::uint8_t>& b) {
                              b.resize(catalog::kHeaderBytes + 3);
                            })
                .find("truncated"),
            std::string::npos);
  EXPECT_NE(corrupt_message("frontier_cut",
                            [](std::vector<std::uint8_t>& b) {
                              b.resize(b.size() - 5);
                            })
                .find("frontier"),
            std::string::npos);
  EXPECT_NE(corrupt_message("empty",
                            [](std::vector<std::uint8_t>& b) { b.clear(); })
                .find("truncated"),
            std::string::npos);
}

TEST(CatalogCorruption, WrongMagicIsRejected) {
  const std::string message = corrupt_message(
      "magic", [](std::vector<std::uint8_t>& b) { b[catalog::kMagicOffset] ^= 0xff; });
  EXPECT_NE(message.find("magic"), std::string::npos);
}

TEST(CatalogCorruption, WrongVersionIsRejected) {
  const std::string message =
      corrupt_message("version", [](std::vector<std::uint8_t>& b) {
        b[catalog::kVersionOffset + 3] = 99;
      });
  EXPECT_NE(message.find("version 99"), std::string::npos);
}

TEST(CatalogCorruption, WrongEndianTagIsRejected) {
  const std::string message =
      corrupt_message("endian", [](std::vector<std::uint8_t>& b) {
        std::swap(b[catalog::kEndianOffset], b[catalog::kEndianOffset + 3]);
      });
  EXPECT_NE(message.find("endian"), std::string::npos);
}

TEST(CatalogCorruption, DomainFingerprintMismatchIsRejected) {
  const std::string message =
      corrupt_message("domain_fp", [](std::vector<std::uint8_t>& b) {
        b[catalog::kDomainFingerprintOffset + 5] ^= 0x40;
      });
  EXPECT_NE(message.find("domain fingerprint"), std::string::npos);
}

TEST(CatalogCorruption, LibraryFingerprintMismatchIsRejected) {
  const std::string message =
      corrupt_message("library_fp", [](std::vector<std::uint8_t>& b) {
        b[catalog::kLibraryFingerprintOffset] ^= 0x01;
      });
  EXPECT_NE(message.find("library fingerprint"), std::string::npos);
}

TEST(CatalogCorruption, DifferentLibraryShapeIsRejected) {
  // Opening against a different-arity library fails on the shape check
  // before any fingerprint math.
  const gates::GateLibrary lib4 = gates::GateLibrary::standard(4);
  EXPECT_THROW((void)FmcfEnumerator::open_catalog(catalog5_path(), lib4),
               qsyn::CatalogError);
  // Same domain, fewer gates (a restricted library) is also a shape change.
  const gates::GateLibrary cnots =
      library3().restricted_to(library3().feynman_indices());
  EXPECT_THROW((void)FmcfEnumerator::open_catalog(catalog5_path(), cnots),
               qsyn::CatalogError);
}

TEST(CatalogCorruption, TrailingBytesAreRejected) {
  const std::string message = corrupt_message(
      "trailing", [](std::vector<std::uint8_t>& b) { b.push_back(0); });
  EXPECT_NE(message.find("trailing"), std::string::npos);
}

TEST(CatalogCorruption, UnsortedGIndexIsRejected) {
  const std::string message =
      corrupt_message("unsorted_g", [](std::vector<std::uint8_t>& b) {
        const std::uint32_t levels = catalog::get_u32(
            b.data() + catalog::kLevelsOffset);
        const std::size_t table =
            catalog::kHeaderBytes + levels * catalog::kStatsEntryBytes;
        std::swap_ranges(b.begin() + table,
                         b.begin() + table + catalog::kGEntryBytes,
                         b.begin() + table + catalog::kGEntryBytes);
      });
  EXPECT_NE(message.find("ascending"), std::string::npos);
}

TEST(CatalogCorruption, NotACatalogFileIsRejectedCleanly) {
  const std::string path = temp_path("not_a_catalog");
  write_file(path, {0x7f, 'E', 'L', 'F', 2, 1, 1, 0, 0, 0});
  EXPECT_THROW((void)FmcfEnumerator::open_catalog(path, library3()),
               qsyn::CatalogError);
  std::remove(path.c_str());
}

// --- CatalogServer ----------------------------------------------------------

std::vector<perm::Permutation> server_targets() {
  return {perm::Permutation::identity(8),
          peres_perm(),
          toffoli_perm(),
          g2_perm(),
          g3_perm(),
          g4_perm(),
          swap_bc_perm(),
          fredkin_perm(),  // cost > 5: a stored-depth miss
          // NOT-only target: core is the identity, prefix is one NOT.
          perm_from_truth(3, [](std::uint32_t bits) { return bits ^ 0b100u; })};
}

TEST(CatalogServer, SingleQueriesMatchTheExpressor) {
  const CatalogServer server = CatalogServer::open(catalog5_path(), library3());
  McExpressor expressor(library3(), 5);
  for (const perm::Permutation& target : server_targets()) {
    const auto expected = expressor.synthesize(target);
    const auto got = server.synthesize(target);
    ASSERT_EQ(got.has_value(), expected.has_value());
    if (!got.has_value()) continue;
    EXPECT_EQ(got->cost, expected->cost);
    EXPECT_EQ(got->circuit.sequence(), expected->circuit.sequence());
    EXPECT_EQ(got->not_prefix, expected->not_prefix);
  }
}

TEST(CatalogServer, LocateReportsPrefixAndCost) {
  const CatalogServer server = CatalogServer::open(catalog5_path(), library3());
  const auto identity = server.locate(perm::Permutation::identity(8));
  ASSERT_TRUE(identity.has_value());
  EXPECT_EQ(identity->cost, 0u);
  EXPECT_TRUE(identity->not_prefix.empty());

  const auto nots = server.locate(
      perm_from_truth(3, [](std::uint32_t bits) { return bits ^ 0b101u; }));
  ASSERT_TRUE(nots.has_value());
  EXPECT_EQ(nots->cost, 0u);
  EXPECT_EQ(nots->not_prefix.size(), 2u);

  const auto toffoli = server.locate(toffoli_perm());
  ASSERT_TRUE(toffoli.has_value());
  EXPECT_EQ(toffoli->cost, 5u);

  EXPECT_FALSE(server.locate(fredkin_perm()).has_value());
}

TEST(CatalogServer, BatchedQueriesMatchSingles) {
  const CatalogServer server = CatalogServer::open(catalog5_path(), library3());
  const std::vector<perm::Permutation> targets = server_targets();

  const auto located = server.locate_batch(targets);
  const auto synthesized = server.synthesize_batch(targets);
  ASSERT_EQ(located.size(), targets.size());
  ASSERT_EQ(synthesized.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto single = server.locate(targets[i]);
    ASSERT_EQ(located[i].has_value(), single.has_value()) << i;
    if (single.has_value()) {
      EXPECT_EQ(located[i]->cost, single->cost);
      EXPECT_EQ(located[i]->frontier_index, single->frontier_index);
      EXPECT_EQ(located[i]->not_prefix, single->not_prefix);
    }
    const auto one = server.synthesize(targets[i]);
    ASSERT_EQ(synthesized[i].has_value(), one.has_value()) << i;
    if (one.has_value()) {
      EXPECT_EQ(synthesized[i]->circuit.sequence(), one->circuit.sequence());
    }
  }
}

TEST(CatalogServer, WitnessCacheCountsHits) {
  const CatalogServer server = CatalogServer::open(catalog5_path(), library3());
  (void)server.synthesize(peres_perm());
  const auto after_first = server.cache_stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.entries, 1u);
  (void)server.synthesize(peres_perm());
  const auto after_second = server.cache_stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.entries, 1u);
}

TEST(CatalogServer, ZeroCapacityDisablesTheCache) {
  CatalogServerOptions options;
  options.witness_cache_capacity = 0;
  const CatalogServer server =
      CatalogServer::open(catalog5_path(), library3(), options);
  (void)server.synthesize(peres_perm());
  (void)server.synthesize(peres_perm());
  const auto stats = server.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(CatalogServer, ConcurrentMixedQueriesAgree) {
  // Race coverage for the lock-free read path + shared witness cache: four
  // reader threads hammer single queries while the main thread runs batches.
  const CatalogServer server = CatalogServer::open(catalog5_path(), library3());
  const std::vector<perm::Permutation> targets = server_targets();

  std::vector<std::vector<unsigned>> seen_costs(4);
  std::vector<std::thread> readers;
  for (std::size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        for (const perm::Permutation& target : targets) {
          const auto result = server.synthesize(target);
          seen_costs[t].push_back(result.has_value() ? result->cost + 1 : 0);
        }
      }
    });
  }
  const auto batch = server.synthesize_batch(targets);
  for (std::thread& reader : readers) reader.join();

  for (std::size_t t = 1; t < 4; ++t) {
    EXPECT_EQ(seen_costs[t], seen_costs[0]);
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const auto single = server.synthesize(targets[i]);
    ASSERT_EQ(batch[i].has_value(), single.has_value());
    if (single.has_value()) {
      EXPECT_EQ(batch[i]->circuit.sequence(), single->circuit.sequence());
    }
  }
}

TEST(CatalogServer, CacheStatsSnapshotIsConsistentUnderTraffic) {
  // cache_stats() takes the cache lock exclusively while the counters tick
  // under the shared lock, so every snapshot obeys the accounting invariants
  // even mid-traffic: hits + misses never exceeds the lookups issued, never
  // decreases between snapshots, and entries never exceeds the misses that
  // created them. After quiescing, hits + misses equals lookups exactly.
  const CatalogServer server = CatalogServer::open(catalog5_path(), library3());
  // Cached-witness targets only (cost >= 1 hits the witness cache).
  const std::vector<perm::Permutation> targets = {
      peres_perm(), toffoli_perm(), g2_perm(), g3_perm(), g4_perm()};
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kRounds = 16;

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (const perm::Permutation& target : targets) {
          (void)server.synthesize(target);
        }
      }
    });
  }
  const std::size_t total = kThreads * kRounds * targets.size();
  CatalogServer::CacheStats last{};
  for (int i = 0; i < 200; ++i) {
    const auto stats = server.cache_stats();
    EXPECT_LE(stats.hits + stats.misses, total);
    EXPECT_GE(stats.hits, last.hits);
    EXPECT_GE(stats.misses, last.misses);
    EXPECT_LE(stats.entries, stats.misses);
    last = stats;
  }
  for (std::thread& worker : workers) worker.join();

  const auto final_stats = server.cache_stats();
  EXPECT_EQ(final_stats.hits + final_stats.misses, total);
  EXPECT_GE(final_stats.entries, 1u);
  EXPECT_LE(final_stats.entries, targets.size());
}

TEST(CatalogServer, ServesFreshClosuresToo) {
  // The server is storage-agnostic: a just-computed (writable) closure
  // serves identically to its catalog-backed reopen.
  FmcfEnumerator fresh(library3());
  fresh.run_to(4);
  const CatalogServer in_memory{std::move(fresh)};
  const CatalogServer mapped = CatalogServer::open(catalog5_path(), library3());
  const auto a = in_memory.synthesize(peres_perm());
  const auto b = mapped.synthesize(peres_perm());
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->circuit.sequence(), b->circuit.sequence());
}

}  // namespace
}  // namespace qsyn::synth
