// Property-based / parameterized sweeps (TEST_P) over the gate library,
// random reasonable cascades, and the paper's named circuits. These pin the
// structural invariants the whole reduction rests on.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/permutation.h"
#include "sim/cross_check.h"
#include "sim/unitary.h"
#include "synth/mce.h"
#include "synth/specs.h"

namespace qsyn {
namespace {

const mvl::PatternDomain& domain3() {
  static const mvl::PatternDomain d = mvl::PatternDomain::reduced(3);
  return d;
}

const gates::GateLibrary& library3() {
  static const gates::GateLibrary lib(domain3());
  return lib;
}

// --- sweep over all 18 library gates ---------------------------------------------

class EveryGate : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EveryGate, PermutationMatchesPatternAction) {
  const gates::Gate& g = library3().gate(GetParam());
  const perm::Permutation& p = library3().permutation(GetParam());
  for (std::uint32_t label = 1; label <= domain3().size(); ++label) {
    EXPECT_EQ(domain3().label_of(g.apply(domain3().pattern(label))),
              p.apply(label));
  }
}

TEST_P(EveryGate, UnitaryIsUnitaryAndAdjointInverts) {
  const gates::Gate& g = library3().gate(GetParam());
  const la::Matrix u = sim::gate_unitary(g, 3);
  EXPECT_TRUE(u.is_unitary());
  const la::Matrix ua = sim::gate_unitary(g.adjoint(), 3);
  EXPECT_TRUE((u * ua).is_identity(1e-9));
  EXPECT_TRUE(ua.approx_equal(u.adjoint(), 1e-9));
}

TEST_P(EveryGate, MvMatchesHilbertAsSingleGateCascade) {
  gates::Cascade c(3);
  c.append(library3().gate(GetParam()));
  EXPECT_TRUE(sim::mv_model_matches_hilbert(c, domain3()));
}

TEST_P(EveryGate, BannedSetExactlyDescribesDontCares) {
  // For labels outside the gate's banned set, the don't-care rule never
  // fires: the permutation matches genuine quantum action. Inside the
  // banned set for controls, the gate fixes the pattern iff control != 1.
  const gates::Gate& g = library3().gate(GetParam());
  const auto klass = g.banned_class(domain3());
  ASSERT_TRUE(klass.has_value());
  for (std::uint32_t label = 1; label <= domain3().size(); ++label) {
    const mvl::Pattern& p = domain3().pattern(label);
    const bool banned = (domain3().banned_mask(label) >> *klass & 1u) != 0;
    if (banned && g.kind() != gates::GateKind::kFeynman) {
      // Controls carrying V0/V1 leave the pattern unchanged by fiat.
      if (mvl::is_mixed(p.get(g.control()))) {
        EXPECT_EQ(g.apply(p), p);
      }
    }
  }
}

TEST_P(EveryGate, NameParsesBack) {
  const gates::Gate& g = library3().gate(GetParam());
  EXPECT_EQ(gates::Gate::parse(g.name()), g);
}

INSTANTIATE_TEST_SUITE_P(AllLibraryGates, EveryGate,
                         ::testing::Range<std::size_t>(0, 18),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return library3().gate(i.param).name() == ""
                                      ? std::string("g")
                                      : [&] {
                                          std::string n =
                                              library3().gate(i.param).name();
                                          for (auto& ch : n) {
                                            if (ch == '+') ch = 'd';
                                          }
                                          return n;
                                        }();
                         });

// --- random reasonable cascades ---------------------------------------------------

class RandomCascade : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// Builds a random reasonable cascade of up to 6 gates by rejection.
  static gates::Cascade make(std::uint64_t seed) {
    Rng rng(seed);
    gates::Cascade c(3);
    const std::size_t length = 1 + rng.below(6);
    while (c.size() < length) {
      const std::size_t g = rng.below(library3().size());
      gates::Cascade candidate = c;
      candidate.append(library3().gate(g));
      if (candidate.is_reasonable(domain3())) c = std::move(candidate);
    }
    return c;
  }
};

TEST_P(RandomCascade, PermutationEqualsGatePermProduct) {
  const gates::Cascade c = make(GetParam());
  perm::Permutation product = perm::Permutation::identity(domain3().size());
  for (const gates::Gate& g : c.sequence()) {
    product = product * g.to_permutation(domain3());
  }
  EXPECT_EQ(c.to_permutation(domain3()), product);
}

TEST_P(RandomCascade, MvModelMatchesHilbert) {
  EXPECT_TRUE(sim::mv_model_matches_hilbert(make(GetParam()), domain3()));
}

TEST_P(RandomCascade, AdjointInvertsPermutationAndUnitary) {
  const gates::Cascade c = make(GetParam());
  const gates::Cascade adj = c.adjoint();
  EXPECT_TRUE(
      (c.to_permutation(domain3()) * adj.to_permutation(domain3()))
          .is_identity());
  const la::Matrix u = sim::cascade_unitary(c) * sim::cascade_unitary(adj);
  EXPECT_TRUE(u.is_identity(1e-9));
}

TEST_P(RandomCascade, BinaryPreservingIffPermStabilizesS) {
  const gates::Cascade c = make(GetParam());
  const auto p = c.to_permutation(domain3());
  EXPECT_EQ(c.is_binary_preserving(),
            p.stabilizes_set({1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST_P(RandomCascade, BinaryPreservingCascadesResynthesizeAtOrBelowCost) {
  const gates::Cascade c = make(GetParam());
  if (!c.is_binary_preserving()) return;
  static synth::McExpressor mce(library3(), 7);
  const auto result = mce.synthesize(c.to_binary_permutation());
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->cost, c.size());
  EXPECT_EQ(result->circuit.to_binary_permutation(),
            c.to_binary_permutation());
}

TEST_P(RandomCascade, ParsePrintRoundTrip) {
  const gates::Cascade c = make(GetParam());
  EXPECT_EQ(gates::Cascade::parse(c.to_string(), 3).to_string(),
            c.to_string());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCascade,
                         ::testing::Range<std::uint64_t>(1, 41));

// --- sweep over the paper's named circuits ----------------------------------------

struct NamedCircuit {
  const char* name;
  const char* cascade;
  const char* perm_cycles;
};

class PaperCircuit : public ::testing::TestWithParam<NamedCircuit> {};

TEST_P(PaperCircuit, CascadeRealizesPrintedPermutation) {
  const auto& param = GetParam();
  const gates::Cascade c = gates::Cascade::parse(param.cascade, 3);
  const auto expected = perm::Permutation::from_cycles(param.perm_cycles, 8);
  EXPECT_EQ(c.to_binary_permutation(), expected);
  EXPECT_TRUE(sim::realizes_permutation(c, expected));
  EXPECT_TRUE(c.is_reasonable(domain3()));
}

TEST_P(PaperCircuit, MinimalCostEqualsPrintedLength) {
  const auto& param = GetParam();
  const gates::Cascade c = gates::Cascade::parse(param.cascade, 3);
  static synth::McExpressor mce(library3(), 7);
  const auto cost = mce.minimal_cost(c.to_binary_permutation());
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(*cost, c.size());
}

INSTANTIATE_TEST_SUITE_P(
    Figures, PaperCircuit,
    ::testing::Values(
        NamedCircuit{"peres_fig4", "VCB*FBA*VCA*V+CB", "(5,7,6,8)"},
        NamedCircuit{"peres_fig8", "V+CB*FBA*V+CA*VCB", "(5,7,6,8)"},
        NamedCircuit{"g2_fig5", "V+BC*FCA*VBA*VBC", "(5,8,7,6)"},
        NamedCircuit{"g3_fig6", "VCB*FBA*V+CA*VCB", "(3,4)(5,7)(6,8)"},
        NamedCircuit{"g4_fig7", "VCB*FBA*VCA*VCB", "(3,4)(5,8)(6,7)"},
        NamedCircuit{"toffoli_a", "FBA*V+CB*FBA*VCA*VCB", "(7,8)"},
        NamedCircuit{"toffoli_b", "FBA*VCB*FBA*V+CA*V+CB", "(7,8)"},
        NamedCircuit{"toffoli_c", "FAB*V+CA*FAB*VCA*VCB", "(7,8)"},
        NamedCircuit{"toffoli_d", "FAB*VCA*FAB*V+CA*V+CB", "(7,8)"}),
    [](const ::testing::TestParamInfo<NamedCircuit>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace qsyn
