// Differential suites for the vectorized kernels layer
// (common/simd/kernels.h): the radix sort and the vector row compares
// against the scalar references across the real row shapes (widths
// 8/38/176/782, one- and two-byte labels), the spilled ShardedPermStore
// merge under both engines, the GEMM-batched fused path against the
// per-column path, and the strict env parser behind the QSYN_* knobs.
//
// These run under the `kernels` ctest label in the sanitizer presets (asan
// whole-binary, tsan via the label filter) on top of the per-TEST `unit`
// registration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/simd/kernels.h"
#include "common/thread_pool.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "la/matrix.h"
#include "mvl/domain.h"
#include "sim/batch.h"
#include "sim/fused.h"
#include "sim/state_vector.h"
#include "synth/flat_perm_store.h"
#include "synth/sharded_perm_store.h"

namespace qsyn {
namespace {

using synth::FlatPermStore;
using synth::ShardedPermStore;
using synth::SpillOptions;

using Row = std::vector<std::uint8_t>;
using Bytes = std::vector<std::uint8_t>;

/// Forces the scalar engine for the guard's lifetime.
class ScopedScalar {
 public:
  ScopedScalar() { simd::force_scalar(true); }
  ~ScopedScalar() { simd::force_scalar(false); }
};

int sign_of(int v) { return (v > 0) - (v < 0); }

/// The FMCF row shapes: label widths 8/38/176 pack one byte per label,
/// width 782 packs two (stride 1564) — see FlatPermStore.
const std::size_t kStrides[] = {8, 38, 176, 782, 1564};

/// `count` rows whose first `shared` bytes are a fixed prefix and whose
/// remaining bytes draw from a small alphabet — dials duplicate density and
/// the radix key window position at once.
Bytes rows_with_prefix(Rng& rng, std::size_t count, std::size_t stride,
                       std::size_t shared, std::uint32_t alphabet) {
  Bytes rows(count * stride);
  for (std::size_t i = 0; i < count; ++i) {
    for (std::size_t b = 0; b < stride; ++b) {
      rows[i * stride + b] =
          b < shared ? static_cast<std::uint8_t>(0xA0 + b % 8)
                     : static_cast<std::uint8_t>(rng.below(alphabet));
    }
  }
  return rows;
}

std::set<Row> row_set(const Bytes& rows, std::size_t stride) {
  std::set<Row> out;
  for (std::size_t at = 0; at < rows.size(); at += stride) {
    out.insert(Row(rows.begin() + at, rows.begin() + at + stride));
  }
  return out;
}

Bytes canonical_bytes(const std::set<Row>& model) {
  Bytes out;
  for (const Row& row : model) out.insert(out.end(), row.begin(), row.end());
  return out;
}

// --- row compares -----------------------------------------------------------

TEST(KernelCompare, MatchesMemcmpAcrossWidthsAndEngines) {
  Rng rng(901);
  for (const std::size_t stride :
       {std::size_t(1), std::size_t(7), std::size_t(8), std::size_t(31),
        std::size_t(32), std::size_t(33), std::size_t(38), std::size_t(176),
        std::size_t(782), std::size_t(1564)}) {
    for (int trial = 0; trial < 64; ++trial) {
      Row a(stride);
      for (auto& byte : a) byte = static_cast<std::uint8_t>(rng.below(256));
      Row b = a;
      if (trial % 4 != 0) {
        // Flip one byte; every position (including the last) is exercised.
        const std::size_t at = rng.below(static_cast<std::uint32_t>(stride));
        b[at] = static_cast<std::uint8_t>(b[at] ^ (1 + rng.below(255)));
      }
      const int reference = sign_of(std::memcmp(a.data(), b.data(), stride));
      EXPECT_EQ(sign_of(simd::compare_rows(a.data(), b.data(), stride)),
                reference);
      EXPECT_EQ(
          sign_of(simd::compare_rows_scalar(a.data(), b.data(), stride)),
          reference);
      ScopedScalar scalar;
      EXPECT_EQ(sign_of(simd::compare_rows(a.data(), b.data(), stride)),
                reference);
    }
  }
}

TEST(KernelDispatch, ForceScalarAndKillSwitchReporting) {
  EXPECT_STREQ(simd::engine_name(simd::Engine::kScalar), "scalar");
  EXPECT_STREQ(simd::engine_name(simd::Engine::kAvx2), "avx2");
  EXPECT_STREQ(simd::engine_name(simd::Engine::kNeon), "neon");
  {
    ScopedScalar scalar;
    EXPECT_TRUE(simd::scalar_forced());
    EXPECT_EQ(simd::active_engine(), simd::Engine::kScalar);
    EXPECT_STREQ(simd::active_engine_name(), "scalar");
  }
  EXPECT_FALSE(simd::scalar_forced() &&
               simd::active_engine() != simd::Engine::kScalar);
}

// --- sort_unique ------------------------------------------------------------

TEST(KernelSortUnique, RadixMatchesScalarAndModelRandomized) {
  Rng rng(902);
  for (const std::size_t stride : kStrides) {
    for (int trial = 0; trial < 8; ++trial) {
      const std::size_t count = 1 + rng.below(300);
      // Shared prefixes up to and past the 8-byte key window, alphabets down
      // to 2 so duplicate and tie groups are dense.
      const std::size_t shared =
          std::min<std::size_t>(stride - 1, rng.below(20));
      const std::uint32_t alphabet = 2 + rng.below(250);
      const Bytes rows = rows_with_prefix(rng, count, stride, shared, alphabet);

      Bytes scalar;
      Bytes radix;
      simd::sort_unique_rows_scalar(rows.data(), count, stride, scalar);
      simd::sort_unique_rows_radix(rows.data(), count, stride, radix);
      EXPECT_EQ(radix, scalar);
      EXPECT_EQ(scalar, canonical_bytes(row_set(rows, stride)));

      Bytes dispatched;
      simd::sort_unique_rows(rows.data(), count, stride, dispatched);
      EXPECT_EQ(dispatched, scalar);
    }
  }
}

TEST(KernelSortUnique, AdversarialTieShapes) {
  // All-identical rows, rows identical through the key window, and
  // single-row inputs — the tie-break and dedup corner cases.
  for (const std::size_t stride : {std::size_t(8), std::size_t(38)}) {
    Bytes all_same(20 * stride, 0x5A);
    Bytes out;
    simd::sort_unique_rows_radix(all_same.data(), 20, stride, out);
    EXPECT_EQ(out, Bytes(all_same.begin(), all_same.begin() + stride));

    Rng rng(903);
    // Identical first min(stride-1, 12) bytes, differing only in the tail —
    // the key window alone cannot discriminate these.
    const std::size_t shared = std::min<std::size_t>(stride - 1, 12);
    const Bytes rows = rows_with_prefix(rng, 64, stride, shared, 2);
    Bytes scalar;
    simd::sort_unique_rows_scalar(rows.data(), 64, stride, scalar);
    simd::sort_unique_rows_radix(rows.data(), 64, stride, out);
    EXPECT_EQ(out, scalar);

    simd::sort_unique_rows_radix(rows.data(), 1, stride, out);
    EXPECT_EQ(out, Bytes(rows.begin(), rows.begin() + stride));
    simd::sort_unique_rows_radix(rows.data(), 0, stride, out);
    EXPECT_TRUE(out.empty());
  }
}

// --- subtract / merge -------------------------------------------------------

TEST(KernelSetAlgebra, SubtractAndMergeMatchModelAndScalar) {
  Rng rng(904);
  for (const std::size_t stride : kStrides) {
    for (int trial = 0; trial < 6; ++trial) {
      const std::uint32_t alphabet = 2 + rng.below(30);
      const Bytes raw_a =
          rows_with_prefix(rng, 1 + rng.below(200), stride, 2, alphabet);
      const Bytes raw_b =
          rows_with_prefix(rng, 1 + rng.below(200), stride, 2, alphabet);
      Bytes a;
      Bytes b;
      simd::sort_unique_rows_scalar(raw_a.data(), raw_a.size() / stride,
                                    stride, a);
      simd::sort_unique_rows_scalar(raw_b.data(), raw_b.size() / stride,
                                    stride, b);
      const std::set<Row> model_a = row_set(a, stride);
      const std::set<Row> model_b = row_set(b, stride);

      std::set<Row> difference;
      std::set<Row> united = model_b;
      for (const Row& row : model_a) {
        if (model_b.count(row) == 0) difference.insert(row);
        united.insert(row);
      }

      Bytes out;
      simd::subtract_sorted_rows(a.data(), a.size() / stride, b.data(),
                                 b.size() / stride, stride, out);
      EXPECT_EQ(out, canonical_bytes(difference));
      simd::subtract_sorted_rows_scalar(a.data(), a.size() / stride, b.data(),
                                        b.size() / stride, stride, out);
      EXPECT_EQ(out, canonical_bytes(difference));

      simd::merge_sorted_rows(a.data(), a.size() / stride, b.data(),
                              b.size() / stride, stride, out);
      EXPECT_EQ(out, canonical_bytes(united));
      simd::merge_sorted_rows_scalar(a.data(), a.size() / stride, b.data(),
                                     b.size() / stride, stride, out);
      EXPECT_EQ(out, canonical_bytes(united));
    }
  }
}

// --- FlatPermStore / spilled merges across engines --------------------------

Row random_label_row(Rng& rng, std::size_t width) {
  Row row(width);
  for (std::size_t i = 0; i < width; ++i) {
    row[i] = static_cast<std::uint8_t>(
        rng.below(static_cast<std::uint32_t>(width)));
  }
  return row;
}

/// Runs a closure-shaped op sequence (sort chunks, subtract against the
/// store, merge survivors) through a spilled ShardedPermStore and returns
/// the drained bytes. Deterministic for a seed, so a vector-engine run and
/// a forced-scalar run must agree byte for byte.
Bytes spilled_drain_bytes(std::uint32_t seed, bool scalar) {
  std::optional<ScopedScalar> guard;
  if (scalar) guard.emplace();
  Rng rng(seed);
  const std::size_t width = 4 + rng.below(8);
  const std::size_t shards = 1 + rng.below(4);
  ShardedPermStore store(
      width, shards,
      SpillOptions{shards * (128 + rng.below(512)), ::testing::TempDir()});
  for (int round = 0; round < 6; ++round) {
    std::vector<FlatPermStore> chunks(shards, FlatPermStore(width));
    const std::size_t count = 1 + rng.below(400);
    for (std::size_t i = 0; i < count; ++i) {
      const Row row = random_label_row(rng, width);
      chunks[store.shard_of(row.data())].push_back(row.data());
    }
    for (std::size_t s = 0; s < shards; ++s) {
      if (chunks[s].empty()) continue;
      chunks[s].sort_unique();
      store.subtract_shard_from(s, chunks[s]);
      store.merge_into_shard(s, chunks[s]);
    }
  }
  EXPECT_TRUE(store.spilled());
  const FlatPermStore drained = store.drain_sorted();
  return Bytes(drained.data(), drained.data() + drained.size_bytes());
}

TEST(KernelSpillMerge, SpilledDrainByteIdenticalAcrossEngines) {
  for (std::uint32_t seed = 9050; seed < 9056; ++seed) {
    EXPECT_EQ(spilled_drain_bytes(seed, /*scalar=*/false),
              spilled_drain_bytes(seed, /*scalar=*/true))
        << "seed " << seed;
  }
}

TEST(KernelStoreAlgebra, FlatStoreByteIdenticalAcrossEngines) {
  for (std::uint32_t seed = 9060; seed < 9066; ++seed) {
    Bytes outputs[2];
    for (const bool scalar : {false, true}) {
      std::optional<ScopedScalar> guard;
      if (scalar) guard.emplace();
      Rng rng(seed);
      const std::size_t width = 4 + rng.below(8);
      FlatPermStore seen(width);
      for (int round = 0; round < 5; ++round) {
        FlatPermStore chunk(width);
        for (int i = 0; i < 200; ++i) {
          chunk.push_back(random_label_row(rng, width).data());
        }
        chunk.sort_unique();
        chunk.subtract_sorted(seen);
        seen.merge_sorted(chunk);
      }
      outputs[scalar ? 1 : 0] =
          Bytes(seen.data(), seen.data() + seen.size_bytes());
    }
    EXPECT_EQ(outputs[0], outputs[1]) << "seed " << seed;
  }
}

// --- batched GEMM -----------------------------------------------------------

TEST(KernelGemm, MatchesPerColumnReference) {
  Rng rng(905);
  for (const std::size_t dim : {std::size_t(2), std::size_t(8),
                                std::size_t(16)}) {
    for (const std::size_t batch :
         {std::size_t(1), std::size_t(3), std::size_t(17)}) {
      std::vector<simd::Complex> a(dim * dim);
      std::vector<simd::Complex> b(dim * batch);
      for (auto& entry : a) {
        // Sparse like block unitaries: most entries exactly zero.
        entry = rng.below(4) == 0
                    ? simd::Complex(rng.uniform() - 0.5, rng.uniform() - 0.5)
                    : simd::Complex(0.0, 0.0);
      }
      for (auto& entry : b) {
        entry = simd::Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
      }
      std::vector<simd::Complex> c(dim * batch);
      simd::gemm(a.data(), b.data(), c.data(), dim, dim, batch);
      for (std::size_t j = 0; j < batch; ++j) {
        for (std::size_t i = 0; i < dim; ++i) {
          simd::Complex expected(0.0, 0.0);
          for (std::size_t p = 0; p < dim; ++p) {
            expected += a[i * dim + p] * b[p * batch + j];
          }
          EXPECT_NEAR(std::abs(c[i * batch + j] - expected), 0.0, 1e-12)
              << "dim " << dim << " batch " << batch;
        }
      }
    }
  }
}

gates::Cascade random_reasonable_cascade(Rng& rng,
                                         const gates::GateLibrary& library,
                                         std::size_t length) {
  gates::Cascade c(library.domain().wires());
  for (std::size_t i = 0; i < length; ++i) {
    for (int tries = 0; tries < 64; ++tries) {
      gates::Cascade extended = c;
      extended.append(library.gate(rng.below(
          static_cast<std::uint32_t>(library.size()))));
      if (extended.is_reasonable(library.domain())) {
        c = std::move(extended);
        break;
      }
    }
  }
  return c;
}

TEST(GemmBatch, ColumnsMatchPerBasisApplication) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  Rng rng(906);
  sim::UnitaryCache cache;
  for (int trial = 0; trial < 12; ++trial) {
    const gates::Cascade cascade =
        random_reasonable_cascade(rng, library, 2 + rng.below(14));
    const sim::FusedCascade fused(cascade, 1 + rng.below(6), cache);
    const std::size_t dim = std::size_t(1) << cascade.wires();
    std::vector<std::uint32_t> bits;
    for (std::uint32_t b = 0; b < dim; ++b) bits.push_back(b);
    bits.push_back(0);  // duplicated inputs are legal batch members
    const std::vector<sim::StateVector> batched =
        fused.apply_to_basis_columns(bits);
    ASSERT_EQ(batched.size(), bits.size());
    for (std::size_t j = 0; j < bits.size(); ++j) {
      const sim::StateVector expected = fused.apply_to_basis(bits[j]);
      // Dyadic amplitudes: the GEMM reorder is exact, not just close.
      EXPECT_EQ(batched[j].distance_to(expected), 0.0)
          << "trial " << trial << " input " << bits[j];
    }
  }
}

TEST(GemmBatch, BatchSimulatorBitIdenticalWithAndWithoutGemm) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  Rng rng(907);
  std::vector<gates::Cascade> cascades;
  for (int i = 0; i < 10; ++i) {
    cascades.push_back(
        random_reasonable_cascade(rng, library, 3 + rng.below(12)));
  }
  std::vector<sim::SimJob> jobs;
  for (const gates::Cascade& c : cascades) {
    for (std::uint32_t bits = 0; bits < (1u << c.wires()); ++bits) {
      jobs.push_back(sim::SimJob{&c, bits});
    }
  }

  sim::SimOptions gemm_options;
  gemm_options.fuse_block = 4;
  gemm_options.threads = 2;
  gemm_options.gemm_batch = true;
  sim::SimOptions column_options = gemm_options;
  column_options.gemm_batch = false;
  sim::BatchSimulator gemm_sim(gemm_options);
  sim::BatchSimulator column_sim(column_options);
  const std::vector<la::Vector> with_gemm = gemm_sim.run(jobs);
  const std::vector<la::Vector> without = column_sim.run(jobs);
  ASSERT_EQ(with_gemm.size(), without.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(with_gemm[i].size(), without[i].size());
    for (std::size_t k = 0; k < with_gemm[i].size(); ++k) {
      EXPECT_EQ(with_gemm[i][k], without[i][k]) << "job " << i;
    }
  }

  // The soundness sweep agrees verdict for verdict, and force_scalar sends
  // the batch path back to per-column without changing results.
  std::vector<const gates::Cascade*> pointers;
  for (const gates::Cascade& c : cascades) pointers.push_back(&c);
  const std::vector<char> gemm_verdicts =
      gemm_sim.check_mv_model(pointers, domain, 1e-9);
  const std::vector<char> column_verdicts =
      column_sim.check_mv_model(pointers, domain, 1e-9);
  EXPECT_EQ(gemm_verdicts, column_verdicts);
  {
    ScopedScalar scalar;
    EXPECT_EQ(gemm_sim.check_mv_model(pointers, domain, 1e-9),
              column_verdicts);
  }
}

// --- strict env parsing -----------------------------------------------------

#ifndef _WIN32
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ParseEnvSizeT, StrictWholeValueParsing) {
  EnvGuard guard("QSYN_TEST_PARSE");
  reset_env_warnings_for_testing();

  ::unsetenv("QSYN_TEST_PARSE");
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  ::setenv("QSYN_TEST_PARSE", "", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);

  ::setenv("QSYN_TEST_PARSE", "42", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), 42u);
  ::setenv("QSYN_TEST_PARSE", "1", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), 1u);
  ::setenv("QSYN_TEST_PARSE", "100", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), 100u);

  // The strtoul bug class: trailing garbage must not half-apply.
  ::setenv("QSYN_TEST_PARSE", "8abc", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  ::setenv("QSYN_TEST_PARSE", " 8", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  ::setenv("QSYN_TEST_PARSE", "-3", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  ::setenv("QSYN_TEST_PARSE", "0x10", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);

  // Out of range, including values that would overflow size_t.
  ::setenv("QSYN_TEST_PARSE", "0", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  ::setenv("QSYN_TEST_PARSE", "101", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  ::setenv("QSYN_TEST_PARSE", "99999999999999999999999999", 1);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 1, 100), std::nullopt);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_PARSE", 0, std::size_t(-1)),
            std::nullopt);
}

TEST(ParseEnvSizeT, MalformedValueWarnsOnce) {
  EnvGuard guard("QSYN_TEST_WARN");
  reset_env_warnings_for_testing();
  ::setenv("QSYN_TEST_WARN", "12junk", 1);

  ::testing::internal::CaptureStderr();
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_WARN", 1, 100), std::nullopt);
  EXPECT_EQ(parse_env_size_t("QSYN_TEST_WARN", 1, 100), std::nullopt);
  const std::string warnings = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(warnings.find("QSYN_TEST_WARN"), std::string::npos);
  EXPECT_NE(warnings.find("12junk"), std::string::npos);
  // Once per name, no matter how many reads.
  EXPECT_EQ(warnings.find("QSYN_TEST_WARN"),
            warnings.rfind("QSYN_TEST_WARN"));
  reset_env_warnings_for_testing();
}

TEST(ParseEnvSizeT, ThreadAndFuseKnobsRejectTrailingGarbage) {
  // The two user-facing regressions: QSYN_THREADS=8abc must not run 8
  // workers, and QSYN_SIM_FUSE keeps its strictness through the shared
  // parser.
  EnvGuard threads_guard("QSYN_THREADS");
  EnvGuard fuse_guard("QSYN_SIM_FUSE");
  reset_env_warnings_for_testing();

  ::setenv("QSYN_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ::setenv("QSYN_THREADS", "8abc", 1);
  EXPECT_NE(ThreadPool::default_thread_count(), 8u);

  ::setenv("QSYN_SIM_FUSE", "7", 1);
  EXPECT_EQ(sim::SimOptions::from_env().fuse_block, 7u);
  ::setenv("QSYN_SIM_FUSE", "7junk", 1);
  EXPECT_EQ(sim::SimOptions::from_env().fuse_block, sim::kDefaultFuseBlock);
  ::setenv("QSYN_SIM_FUSE", "0", 1);
  EXPECT_EQ(sim::SimOptions::from_env().fuse_block, 0u);
  reset_env_warnings_for_testing();
}
#endif  // !_WIN32

}  // namespace
}  // namespace qsyn
