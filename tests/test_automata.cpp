// Unit tests for qsyn/automata: measurement semantics, probabilistic specs,
// minimal-cost probabilistic synthesis, and the controlled QRNG (Section 4).
#include <gtest/gtest.h>

#include <cmath>

#include "automata/measurement.h"
#include "common/error.h"
#include "automata/prob_spec.h"
#include "automata/prob_synth.h"
#include "automata/qrng.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/state_vector.h"

namespace qsyn::automata {
namespace {

using mvl::Pattern;

// --- measurement ----------------------------------------------------------------

TEST(Measurement, BinaryPatternIsDeterministic) {
  const Pattern p = Pattern::parse("1,0,1");
  EXPECT_DOUBLE_EQ(outcome_probability(p, 0b101), 1.0);
  EXPECT_DOUBLE_EQ(outcome_probability(p, 0b100), 0.0);
}

TEST(Measurement, MixedWiresAreFairCoins) {
  const Pattern p = Pattern::parse("1,V0,0");
  EXPECT_DOUBLE_EQ(outcome_probability(p, 0b100), 0.5);
  EXPECT_DOUBLE_EQ(outcome_probability(p, 0b110), 0.5);
  EXPECT_DOUBLE_EQ(outcome_probability(p, 0b000), 0.0);
}

TEST(Measurement, DistributionSumsToOne) {
  for (const char* text : {"1,V0,V1", "V0,V0,V0", "0,1,0", "V1,1,V0"}) {
    double total = 0.0;
    for (const double p : outcome_distribution(Pattern::parse(text))) {
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << text;
  }
}

TEST(Measurement, MatchesHilbertSpaceProbabilities) {
  // The factorized MV distribution equals the simulator's state distribution.
  for (const char* text : {"1,V0,0", "V1,V0,1", "0,V1,V1"}) {
    const Pattern p = Pattern::parse(text);
    const auto mv = outcome_distribution(p);
    const auto hilbert = sim::StateVector::from_pattern(p).distribution();
    ASSERT_EQ(mv.size(), hilbert.size());
    for (std::size_t i = 0; i < mv.size(); ++i) {
      EXPECT_NEAR(mv[i], hilbert[i], 1e-12) << text << " outcome " << i;
    }
  }
}

TEST(Measurement, SamplingMatchesDistribution) {
  const Pattern p = Pattern::parse("1,V0,V1");
  Rng rng(42);
  std::vector<int> hist(8, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hist[sample_measurement(p, rng)];
  const auto dist = outcome_distribution(p);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(hist[i] / static_cast<double>(n), dist[i], 0.02);
  }
}

TEST(Measurement, OutcomeRangeChecked) {
  EXPECT_THROW((void)outcome_probability(Pattern::parse("0,0"), 4),
               qsyn::LogicError);
}

TEST(Measurement, SampleIndexRoundingTailLandsOnNonzeroOutcome) {
  // Regression: with trailing zero-probability outcomes, a uniform draw
  // above the accumulated mass (tiny masses underflow the running sum) used
  // to fall through to the *last* index — an outcome with probability zero.
  // The fallback must land on the last nonzero-probability index instead.
  const std::vector<double> dist = {0.0, 1e-30, 0.0};
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(sample_index(dist, rng), 1u);
  }
}

TEST(Measurement, SampleIndexRejectsMasslessDistributions) {
  Rng rng(2);
  EXPECT_THROW((void)sample_index({}, rng), qsyn::LogicError);
  EXPECT_THROW((void)sample_index({0.0, 0.0}, rng), qsyn::LogicError);
}

// --- specs ----------------------------------------------------------------------

TEST(ExactProbSpec, ValidatesShape) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(2);
  // Identity on binary patterns: realizable.
  std::vector<Pattern> outputs;
  for (std::uint32_t i = 0; i < 4; ++i) {
    outputs.push_back(Pattern::from_binary(2, i));
  }
  EXPECT_TRUE(ExactProbSpec(2, outputs).is_realizable_shape(domain));
  // Two inputs mapping to one output: not injective.
  outputs[1] = outputs[0];
  EXPECT_FALSE(ExactProbSpec(2, outputs).is_realizable_shape(domain));
}

TEST(ExactProbSpec, RejectsOutOfDomainOutputs) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(2);
  std::vector<Pattern> outputs;
  for (std::uint32_t i = 0; i < 4; ++i) {
    outputs.push_back(Pattern::from_binary(2, i));
  }
  outputs[0] = Pattern::parse("V0,0");  // contains no 1: outside the domain
  EXPECT_FALSE(ExactProbSpec(2, outputs).is_realizable_shape(domain));
}

TEST(ExactProbSpec, SizeValidation) {
  EXPECT_THROW(ExactProbSpec(2, {Pattern(2)}), qsyn::LogicError);
}

TEST(BehavioralProbSpec, AcceptRules) {
  const BehavioralProbSpec spec(
      2, {{WireBehavior::kZero, WireBehavior::kZero},
          {WireBehavior::kZero, WireBehavior::kOne},
          {WireBehavior::kOne, WireBehavior::kCoin},
          {WireBehavior::kOne, WireBehavior::kCoin}});
  EXPECT_TRUE(spec.accepts(2, Pattern::parse("1,V0")));
  EXPECT_TRUE(spec.accepts(2, Pattern::parse("1,V1")));
  EXPECT_FALSE(spec.accepts(2, Pattern::parse("1,0")));
  EXPECT_FALSE(spec.accepts(0, Pattern::parse("0,1")));
  EXPECT_TRUE(spec.accepts(0, Pattern::parse("0,0")));
}

TEST(BehavioralProbSpec, TargetDistribution) {
  const BehavioralProbSpec spec(
      2, {{WireBehavior::kZero, WireBehavior::kCoin},
          {WireBehavior::kZero, WireBehavior::kOne},
          {WireBehavior::kCoin, WireBehavior::kCoin},
          {WireBehavior::kOne, WireBehavior::kOne}});
  const auto d0 = spec.target_distribution(0);
  EXPECT_DOUBLE_EQ(d0[0b00], 0.5);
  EXPECT_DOUBLE_EQ(d0[0b01], 0.5);
  EXPECT_DOUBLE_EQ(d0[0b10], 0.0);
  const auto d2 = spec.target_distribution(2);
  for (const double p : d2) EXPECT_DOUBLE_EQ(p, 0.25);
}

// --- synthesis ------------------------------------------------------------------

class ProbSynth3 : public ::testing::Test {
 protected:
  static const gates::GateLibrary& library() {
    static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
    static const gates::GateLibrary lib(domain);
    return lib;
  }
};

TEST_F(ProbSynth3, IdentitySpecCostsZero) {
  std::vector<Pattern> outputs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    outputs.push_back(Pattern::from_binary(3, i));
  }
  const ProbSynthesizer synthesizer(library());
  const auto c = synthesizer.synthesize(ExactProbSpec(3, outputs));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 0u);
}

TEST_F(ProbSynth3, SingleVGateSpec) {
  // The truth table of VBA itself must synthesize at cost 1.
  std::vector<Pattern> outputs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    outputs.push_back(
        gates::Gate::ctrl_v(1, 0).apply(Pattern::from_binary(3, i)));
  }
  const ProbSynthesizer synthesizer(library());
  const auto c = synthesizer.synthesize(ExactProbSpec(3, outputs));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 1u);
  EXPECT_EQ(c->gate(0), gates::Gate::ctrl_v(1, 0));
}

TEST_F(ProbSynth3, ExactSynthesisMatchesSpecOnAllInputs) {
  // A deterministic-but-nonclassical spec: Feynman then V.
  const gates::Cascade reference = gates::Cascade::parse("FBA*VCB", 3);
  std::vector<Pattern> outputs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    outputs.push_back(reference.apply(Pattern::from_binary(3, i)));
  }
  const ProbSynthesizer synthesizer(library());
  const auto c = synthesizer.synthesize(ExactProbSpec(3, outputs));
  ASSERT_TRUE(c.has_value());
  EXPECT_LE(c->size(), 2u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(c->apply(Pattern::from_binary(3, i)), outputs[i]);
  }
}

TEST_F(ProbSynth3, UnrealizableSpecReturnsNullopt) {
  // Map every input to itself except two inputs swapped into the same
  // output pattern — not injective, hence unrealizable.
  std::vector<Pattern> outputs;
  for (std::uint32_t i = 0; i < 8; ++i) {
    outputs.push_back(Pattern::from_binary(3, 0));
  }
  const ProbSynthesizer synthesizer(library());
  EXPECT_FALSE(synthesizer.synthesize(ExactProbSpec(3, outputs)).has_value());
}

TEST_F(ProbSynth3, BehavioralSpecFindsMinimalCoin) {
  // One coin on wire C when A = 1: a single controlled-V away.
  const auto spec = controlled_coin_spec(3);
  const ProbSynthesizer synthesizer(library());
  const auto c = synthesizer.synthesize(spec);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 1u);
  for (std::uint32_t input = 0; input < 8; ++input) {
    EXPECT_TRUE(spec.accepts(input, c->apply(Pattern::from_binary(3, input))));
  }
}

TEST_F(ProbSynth3, MaxCostGuard) {
  EXPECT_THROW(ProbSynthesizer(library(), 10), qsyn::LogicError);
}

// --- controlled QRNG --------------------------------------------------------------

TEST_F(ProbSynth3, QrngDistributionIsControlled) {
  const auto qrng =
      ControlledQrng::synthesize(library(), controlled_coin_spec(3));
  ASSERT_TRUE(qrng.has_value());
  // Input 000: deterministic passthrough.
  const auto d0 = qrng->distribution(0b000);
  EXPECT_DOUBLE_EQ(d0[0b000], 1.0);
  // Input 100: wire C is a fair coin, A stays 1, B stays 0.
  const auto d4 = qrng->distribution(0b100);
  EXPECT_DOUBLE_EQ(d4[0b100], 0.5);
  EXPECT_DOUBLE_EQ(d4[0b101], 0.5);
  EXPECT_DOUBLE_EQ(d4[0b000], 0.0);
}

TEST_F(ProbSynth3, QrngHistogramMatchesDistribution) {
  const auto qrng =
      ControlledQrng::synthesize(library(), controlled_coin_spec(3));
  ASSERT_TRUE(qrng.has_value());
  Rng rng(7);
  const std::size_t n = 20000;
  const auto hist = qrng->histogram(0b110, n, rng);
  const auto dist = qrng->distribution(0b110);
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_NEAR(hist[i] / static_cast<double>(n), dist[i], 0.02);
  }
}

TEST(Qrng, TwoWireCoin) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(2);
  const gates::GateLibrary library(domain);
  const auto qrng = ControlledQrng::synthesize(library,
                                               controlled_coin_spec(2));
  ASSERT_TRUE(qrng.has_value());
  EXPECT_EQ(qrng->circuit().size(), 1u);
  const auto d = qrng->distribution(0b10);
  EXPECT_DOUBLE_EQ(d[0b10], 0.5);
  EXPECT_DOUBLE_EQ(d[0b11], 0.5);
}

TEST(Qrng, SpecGuards) {
  EXPECT_THROW(controlled_coin_spec(1), qsyn::LogicError);
}

TEST(Qrng, SpecGuardsAgainstShiftOverflow) {
  // Regression: `1u << wires` at wires >= 32 is undefined behavior; the
  // wire count must be rejected (patterns cap at mvl::kMaxWires anyway)
  // before any outcome-space shift is evaluated.
  EXPECT_THROW(controlled_coin_spec(17), qsyn::LogicError);
  EXPECT_THROW(controlled_coin_spec(32), qsyn::LogicError);
  EXPECT_THROW(controlled_coin_spec(33), qsyn::LogicError);
  EXPECT_THROW(controlled_coin_spec(64), qsyn::LogicError);
}

}  // namespace
}  // namespace qsyn::automata
