// Unit tests for qsyn/sim: the state-vector simulator, unitary construction,
// and the MV-model / Hilbert-space cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "la/gate_constants.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "sim/state_vector.h"
#include "sim/unitary.h"
#include "synth/specs.h"

namespace qsyn::sim {
namespace {

using gates::Cascade;
using gates::Gate;

TEST(StateVector, StartsInAllZeros) {
  const StateVector s(3);
  EXPECT_EQ(s.dimension(), 8u);
  EXPECT_NEAR(s.probability_of(0), 1.0, 1e-12);
}

TEST(StateVector, BasisState) {
  const StateVector s = StateVector::basis(3, 5);
  EXPECT_NEAR(s.probability_of(5), 1.0, 1e-12);
  EXPECT_NEAR(s.probability_of(0), 0.0, 1e-12);
}

TEST(StateVector, NotOnWireZeroFlipsMsb) {
  StateVector s(3);
  s.apply_gate(Gate::not_gate(0));
  EXPECT_NEAR(s.probability_of(0b100), 1.0, 1e-12);
}

TEST(StateVector, CnotActsOnlyWhenControlSet) {
  StateVector s = StateVector::basis(2, 0b01);  // A=0, B=1
  s.apply_gate(Gate::feynman(0, 1));            // FAB: A ^= B
  EXPECT_NEAR(s.probability_of(0b11), 1.0, 1e-12);
  StateVector t = StateVector::basis(2, 0b10);  // A=1, B=0
  t.apply_gate(Gate::feynman(0, 1));
  EXPECT_NEAR(t.probability_of(0b10), 1.0, 1e-12);
}

TEST(StateVector, ControlledVCreatesMixedState) {
  StateVector s = StateVector::basis(2, 0b10);  // A=1, B=0
  s.apply_gate(Gate::ctrl_v(1, 0));             // VBA
  // B now carries V|0>: both outcomes equal probability 1/2.
  EXPECT_NEAR(s.probability_of(0b10), 0.5, 1e-12);
  EXPECT_NEAR(s.probability_of(0b11), 0.5, 1e-12);
  EXPECT_NEAR(s.probability_one(1), 0.5, 1e-12);
  EXPECT_NEAR(s.probability_one(0), 1.0, 1e-12);
}

TEST(StateVector, TwoControlledVEqualsCnot) {
  StateVector s = StateVector::basis(2, 0b10);
  s.apply_gate(Gate::ctrl_v(1, 0));
  s.apply_gate(Gate::ctrl_v(1, 0));
  EXPECT_NEAR(s.probability_of(0b11), 1.0, 1e-12);
}

TEST(StateVector, FromPatternMatchesGateAction) {
  StateVector direct = StateVector::basis(2, 0b10);
  direct.apply_gate(Gate::ctrl_v(1, 0));
  const StateVector lifted =
      StateVector::from_pattern(mvl::Pattern::parse("1,V0"));
  EXPECT_LT(direct.distance_to(lifted), 1e-12);
}

TEST(StateVector, DistributionSumsToOne) {
  StateVector s(3);
  s.apply_1q(la::mat_h(), 0);
  s.apply_1q(la::mat_h(), 2);
  double total = 0.0;
  for (const double p : s.distribution()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StateVector, SampleFollowsDistribution) {
  StateVector s = StateVector::basis(2, 0b10);
  s.apply_gate(Gate::ctrl_v(1, 0));
  Rng rng(17);
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (s.sample(rng) & 1u);
  EXPECT_NEAR(ones / static_cast<double>(n), 0.5, 0.02);
}

TEST(StateVector, MeasureAllCollapses) {
  StateVector s = StateVector::basis(2, 0b10);
  s.apply_gate(Gate::ctrl_v(1, 0));
  Rng rng(3);
  const std::uint32_t outcome = s.measure_all(rng);
  EXPECT_NEAR(s.probability_of(outcome), 1.0, 1e-12);
}

TEST(StateVector, SelfControlledGateThrowsInsteadOfGarbage) {
  // Regression: control == target must be rejected loudly. The pair loop in
  // apply_controlled_1q would otherwise pair amplitudes with themselves and
  // silently corrupt the state.
  StateVector s = StateVector::basis(3, 0b101);
  EXPECT_THROW(s.apply_controlled_1q(la::mat_v(), 1, 1), qsyn::LogicError);
  EXPECT_THROW(s.apply_controlled_1q(la::mat_x(), 0, 0), qsyn::LogicError);
  // The failed call must not have touched the state.
  EXPECT_NEAR(s.probability_of(0b101), 1.0, 1e-12);
}

TEST(StateVector, ApplyUnitaryChecksDimensions) {
  StateVector s(2);
  EXPECT_THROW(s.apply_unitary(la::mat_x()), qsyn::LogicError);  // 2x2 vs dim 4
  s.apply_unitary(la::Matrix::identity(4));
  EXPECT_NEAR(s.probability_of(0), 1.0, 1e-12);
}

TEST(StateVector, EqualUpToPhase) {
  StateVector a = StateVector::basis(2, 1);
  StateVector b = StateVector::basis(2, 1);
  b.apply_1q(la::mat_z(), 1);  // |01> picks up a -1 phase
  EXPECT_TRUE(a.equal_up_to_phase(b));
}

// --- unitaries -----------------------------------------------------------------

TEST(Unitary, GateUnitaryIsUnitary) {
  for (const Gate& g : {Gate::ctrl_v(1, 0), Gate::ctrl_v_dagger(0, 2),
                        Gate::feynman(2, 1), Gate::not_gate(1)}) {
    EXPECT_TRUE(gate_unitary(g, 3).is_unitary()) << g.name();
  }
}

TEST(Unitary, CnotMatrixIsPermutation) {
  const la::Matrix u = gate_unitary(Gate::feynman(1, 0), 2);
  EXPECT_TRUE(u.is_permutation());
  // FBA on 2 wires: |10> <-> |11>.
  EXPECT_EQ(u.extract_permutation(), (std::vector<std::size_t>{0, 1, 3, 2}));
}

TEST(Unitary, ControlledVMatrixBlocks) {
  const la::Matrix u = gate_unitary(Gate::ctrl_v(1, 0), 2);
  // Upper-left block: identity (control = 0); lower-right: V.
  EXPECT_TRUE(u.block(0, 0, 2, 2).is_identity());
  EXPECT_TRUE(u.block(2, 2, 2, 2).approx_equal(la::mat_v()));
  EXPECT_NEAR(u.block(0, 2, 2, 2).frobenius_norm(), 0.0, 1e-12);
}

TEST(Unitary, CascadeUnitaryEqualsProductOfGateUnitaries) {
  const Cascade c = synth::peres_cascade_fig4();
  la::Matrix product = la::Matrix::identity(8);
  for (const Gate& g : c.sequence()) {
    product = gate_unitary(g, 3) * product;  // later gates multiply on left
  }
  EXPECT_TRUE(cascade_unitary(c).approx_equal(product));
}

TEST(Unitary, PeresCascadeIsExactPermutationMatrix) {
  const Cascade c = synth::peres_cascade_fig4();
  EXPECT_TRUE(is_permutative(c));
  EXPECT_EQ(extract_classical_permutation(c), synth::peres_perm());
}

TEST(Unitary, AllToffoliFig9CascadesAreExactlyToffoli) {
  for (const Cascade& c : synth::toffoli_cascades_fig9()) {
    EXPECT_TRUE(realizes_permutation(c, synth::toffoli_perm()))
        << c.to_string();
  }
}

TEST(Unitary, TruncatedVCascadeIsNotPermutative) {
  EXPECT_FALSE(is_permutative(Cascade::parse("VBA", 3)));
  EXPECT_THROW((void)extract_classical_permutation(Cascade::parse("VBA", 3)),
               qsyn::LogicError);
}

TEST(Unitary, PermutationUnitaryRoundTrip) {
  const auto p = synth::peres_perm();
  const la::Matrix u = permutation_unitary(p, 3);
  EXPECT_TRUE(u.is_permutation());
  // Column j maps to row p(j+1)-1.
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(
        std::abs(u(p.apply(static_cast<std::uint32_t>(j + 1)) - 1, j) -
                 la::Complex(1.0, 0.0)),
        0.0, 1e-12);
  }
}

// --- cross-validation -----------------------------------------------------------

TEST(CrossCheck, PaperCircuitsMatchMvModel) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  EXPECT_TRUE(mv_model_matches_hilbert(synth::peres_cascade_fig4(), domain));
  EXPECT_TRUE(mv_model_matches_hilbert(synth::peres_cascade_fig8(), domain));
  EXPECT_TRUE(mv_model_matches_hilbert(synth::g2_cascade_fig5(), domain));
  EXPECT_TRUE(mv_model_matches_hilbert(synth::g3_cascade_fig6(), domain));
  EXPECT_TRUE(mv_model_matches_hilbert(synth::g4_cascade_fig7(), domain));
  for (const Cascade& c : synth::toffoli_cascades_fig9()) {
    EXPECT_TRUE(mv_model_matches_hilbert(c, domain)) << c.to_string();
  }
}

TEST(CrossCheck, SingleGatesMatchMvModel) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  for (std::size_t i = 0; i < library.size(); ++i) {
    Cascade c(3);
    c.append(library.gate(i));
    EXPECT_TRUE(mv_model_matches_hilbert(c, domain))
        << library.gate(i).name();
  }
}

TEST(CrossCheck, UnreasonableCascadeCanViolateMvModel) {
  // VBA then VAB uses a mixed control: the don't-care MV semantics no longer
  // agree with Hilbert space — exactly why the banned sets exist.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const Cascade c = Cascade::parse("VBA*VAB", 3);
  ASSERT_FALSE(c.is_reasonable(domain));
  EXPECT_FALSE(mv_model_matches_hilbert(c, domain));
}

}  // namespace
}  // namespace qsyn::sim
