// Unit tests for qsyn/perm: Schreier-Sims groups and coset utilities (the
// in-repo replacement for the GAP computations of the paper).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "perm/cosets.h"
#include "perm/perm_group.h"

namespace qsyn::perm {
namespace {

TEST(PermGroup, TrivialGroup) {
  const PermGroup g(5);
  EXPECT_EQ(g.order(), 1u);
  EXPECT_TRUE(g.contains(Permutation::identity(5)));
  EXPECT_FALSE(g.contains(Permutation::from_cycles("(1,2)", 5)));
}

TEST(PermGroup, SymmetricGroupOrders) {
  EXPECT_EQ(PermGroup::symmetric(3).order(), 6u);
  EXPECT_EQ(PermGroup::symmetric(4).order(), 24u);
  EXPECT_EQ(PermGroup::symmetric(5).order(), 120u);
  EXPECT_EQ(PermGroup::symmetric(8).order(), 40320u);
}

TEST(PermGroup, AlternatingGroupOrders) {
  EXPECT_EQ(PermGroup::alternating(4).order(), 12u);
  EXPECT_EQ(PermGroup::alternating(5).order(), 60u);
  EXPECT_EQ(PermGroup::alternating(8).order(), 20160u);
}

TEST(PermGroup, AlternatingContainsOnlyEvens) {
  const PermGroup a4 = PermGroup::alternating(4);
  EXPECT_TRUE(a4.contains(Permutation::from_cycles("(1,2,3)", 4)));
  EXPECT_FALSE(a4.contains(Permutation::from_cycles("(1,2)", 4)));
  EXPECT_TRUE(a4.contains(Permutation::from_cycles("(1,2)(3,4)", 4)));
}

TEST(PermGroup, CyclicGroup) {
  const PermGroup c6(std::vector<Permutation>{
      Permutation::from_cycles("(1,2,3,4,5,6)", 6)});
  EXPECT_EQ(c6.order(), 6u);
  EXPECT_TRUE(c6.contains(Permutation::from_cycles("(1,3,5)(2,4,6)", 6)));
  EXPECT_FALSE(c6.contains(Permutation::from_cycles("(1,2)", 6)));
}

TEST(PermGroup, KleinFourGroup) {
  const PermGroup v4(std::vector<Permutation>{
      Permutation::from_cycles("(1,2)(3,4)", 4),
      Permutation::from_cycles("(1,3)(2,4)", 4)});
  EXPECT_EQ(v4.order(), 4u);
}

TEST(PermGroup, DihedralGroup) {
  // D4 = symmetries of a square: rotation + reflection.
  const PermGroup d4(std::vector<Permutation>{
      Permutation::from_cycles("(1,2,3,4)", 4),
      Permutation::from_cycles("(1,3)", 4)});
  EXPECT_EQ(d4.order(), 8u);
}

TEST(PermGroup, Psl27ViaTwoGenerators) {
  // <(1,2,3,4,5,6,7), (2,3)(4,7)> is PSL(2,7) of order 168 — the group of
  // 3-bit CNOT circuits GL(3,2) in disguise.
  const PermGroup g(std::vector<Permutation>{
      Permutation::from_cycles("(1,2,3,4,5,6,7)", 7),
      Permutation::from_cycles("(2,3)(4,7)", 7)});
  EXPECT_EQ(g.order(), 168u);
}

TEST(PermGroup, MembershipMatchesEnumeration) {
  const PermGroup g(std::vector<Permutation>{
      Permutation::from_cycles("(1,2,3)", 5),
      Permutation::from_cycles("(3,4,5)", 5)});
  const auto elements = g.elements();
  EXPECT_EQ(elements.size(), g.order());
  for (const auto& e : elements) EXPECT_TRUE(g.contains(e));
}

TEST(PermGroup, ElementsAreDistinct) {
  const PermGroup s4 = PermGroup::symmetric(4);
  const auto elements = s4.elements();
  std::set<Permutation> distinct(elements.begin(), elements.end());
  EXPECT_EQ(distinct.size(), 24u);
}

TEST(PermGroup, ElementsLimitGuard) {
  EXPECT_THROW((void)PermGroup::symmetric(8).elements(100), qsyn::LogicError);
}

TEST(PermGroup, OrbitOfTransitiveGroup) {
  const PermGroup s5 = PermGroup::symmetric(5);
  EXPECT_EQ(s5.orbit(1).size(), 5u);
}

TEST(PermGroup, OrbitOfIntransitiveGroup) {
  const PermGroup g(std::vector<Permutation>{
      Permutation::from_cycles("(1,2)", 5),
      Permutation::from_cycles("(3,4,5)", 5)});
  EXPECT_EQ(g.orbit(1), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(g.orbit(3), (std::vector<std::uint32_t>{3, 4, 5}));
}

TEST(PermGroup, FixesPoint) {
  const PermGroup g(std::vector<Permutation>{
      Permutation::from_cycles("(2,3,4)", 4)});
  EXPECT_TRUE(g.fixes_point(1));
  EXPECT_FALSE(g.fixes_point(2));
}

TEST(PermGroup, ContainsGroupAndEquals) {
  const PermGroup s4 = PermGroup::symmetric(4);
  const PermGroup a4 = PermGroup::alternating(4);
  EXPECT_TRUE(s4.contains_group(a4));
  EXPECT_FALSE(a4.contains_group(s4));
  EXPECT_FALSE(s4.equals(a4));
  const PermGroup s4_again(std::vector<Permutation>{
      Permutation::from_cycles("(1,2)", 4),
      Permutation::from_cycles("(1,2,3,4)", 4)});
  EXPECT_TRUE(s4.equals(s4_again));
}

TEST(PermGroup, OrderStringMatchesOrder) {
  EXPECT_EQ(PermGroup::symmetric(8).order_string(), "40320");
  EXPECT_EQ(PermGroup(3).order_string(), "1");
}

TEST(PermGroup, LargeDegreeOrderString) {
  // S12 via adjacent transpositions: 479001600.
  EXPECT_EQ(PermGroup::symmetric(12).order_string(), "479001600");
}

TEST(PermGroup, StabilizerSubgroupOfS8HasOrder5040) {
  // Permutations of 8 points fixing point 1 = S7. Generate with 1-fixing
  // transpositions.
  std::vector<Permutation> gens;
  for (std::uint32_t i = 2; i < 8; ++i) {
    gens.push_back(Permutation::transposition(8, i, i + 1));
  }
  const PermGroup stab(gens);
  EXPECT_EQ(stab.order(), 5040u);
  EXPECT_TRUE(stab.fixes_point(1));
}

TEST(PermGroup, GeneratorsWithIdentityIgnored) {
  const PermGroup g(std::vector<Permutation>{
      Permutation::identity(4), Permutation::from_cycles("(1,2)", 4)});
  EXPECT_EQ(g.order(), 2u);
}

// --- cosets -------------------------------------------------------------------

TEST(Cosets, SameLeftCoset) {
  const PermGroup a4 = PermGroup::alternating(4);
  const Permutation t = Permutation::from_cycles("(1,2)", 4);
  const Permutation u = Permutation::from_cycles("(3,4)", 4);
  // Both odd: t*A4 == u*A4 because t^{-1}*u is even.
  EXPECT_TRUE(same_left_coset(t, u, a4));
  EXPECT_FALSE(same_left_coset(t, Permutation::identity(4), a4));
}

TEST(Cosets, InLeftCoset) {
  const PermGroup a4 = PermGroup::alternating(4);
  const Permutation t = Permutation::from_cycles("(1,2)", 4);
  EXPECT_TRUE(in_left_coset(Permutation::from_cycles("(1,3)", 4), t, a4));
  EXPECT_FALSE(in_left_coset(Permutation::from_cycles("(1,2,3)", 4), t, a4));
}

TEST(Cosets, PartitionOfS4ByA4) {
  const PermGroup s4 = PermGroup::symmetric(4);
  const PermGroup a4 = PermGroup::alternating(4);
  const std::vector<Permutation> reps = {
      Permutation::identity(4), Permutation::from_cycles("(1,2)", 4)};
  EXPECT_TRUE(cosets_partition_group(reps, a4, s4));
}

TEST(Cosets, PartitionRejectsDuplicateCosets) {
  const PermGroup s4 = PermGroup::symmetric(4);
  const PermGroup a4 = PermGroup::alternating(4);
  const std::vector<Permutation> reps = {
      Permutation::from_cycles("(1,2)", 4),
      Permutation::from_cycles("(3,4)", 4)};  // same coset twice
  EXPECT_FALSE(cosets_partition_group(reps, a4, s4));
}

TEST(Cosets, PartitionRejectsWrongCount) {
  const PermGroup s4 = PermGroup::symmetric(4);
  const PermGroup a4 = PermGroup::alternating(4);
  EXPECT_FALSE(
      cosets_partition_group({Permutation::identity(4)}, a4, s4));
}

TEST(Cosets, RepresentativesEnumerate) {
  const PermGroup s4 = PermGroup::symmetric(4);
  const PermGroup v4(std::vector<Permutation>{
      Permutation::from_cycles("(1,2)(3,4)", 4),
      Permutation::from_cycles("(1,3)(2,4)", 4)});
  const auto reps = left_coset_representatives(v4, s4);
  EXPECT_EQ(reps.size(), 6u);  // |S4| / |V4| = 24 / 4
  EXPECT_TRUE(cosets_partition_group(reps, v4, s4));
}

}  // namespace
}  // namespace qsyn::perm
