// Unit tests for the Section-5 group-theory claims: |G| = 5040, |S8| = 40320,
// and the universality of the 24 cost-4 Peres-like gates.
#include <gtest/gtest.h>

#include <set>

#include "gates/library.h"
#include "mvl/domain.h"
#include "synth/fmcf.h"
#include "synth/specs.h"
#include "synth/universality.h"

namespace qsyn::synth {
namespace {

TEST(Universality, SixFeynmanPermsAreDistinctInvolutions) {
  const auto perms = feynman_binary_perms();
  ASSERT_EQ(perms.size(), 6u);
  std::set<perm::Permutation> distinct(perms.begin(), perms.end());
  EXPECT_EQ(distinct.size(), 6u);
  for (const auto& p : perms) {
    EXPECT_TRUE((p * p).is_identity());
    EXPECT_EQ(p.apply(1), 1u);  // CNOTs fix the all-zero pattern
  }
}

TEST(Universality, FeynmanGatesAloneGenerateGl32) {
  // CNOT circuits on 3 wires = invertible linear maps = GL(3,2), order 168.
  const perm::PermGroup g = group_with_feynman({});
  EXPECT_EQ(g.order(), 168u);
}

TEST(Universality, PaperClaimFeynmanPlusPeresGenerate5040) {
  // Section 5: G = <FAB, FBA, FBC, FCB, Peres>, |G| = 5040.
  const perm::PermGroup g = group_with_feynman({peres_perm()});
  EXPECT_EQ(g.order(), 5040u);
  // 5040 = |S7| = the full stabilizer of label 1 inside S8.
  EXPECT_TRUE(g.fixes_point(1));
}

TEST(Universality, PaperClaimExactGeneratingSet) {
  // The paper lists only four Feynman gates; verify that smaller generating
  // set too: <FAB, FBA, FBC, FCB, Peres> without FCA/FAC.
  std::vector<perm::Permutation> gens;
  for (const char* name : {"FAB", "FBA", "FBC", "FCB"}) {
    gates::Cascade c(3);
    c.append(gates::Gate::parse(name));
    gens.push_back(c.to_binary_permutation());
  }
  gens.push_back(peres_perm());
  EXPECT_EQ(perm::PermGroup(gens).order(), 5040u);
}

TEST(Universality, AddingNotGatesReaches40320) {
  const perm::PermGroup m = group_with_not_and_feynman(peres_perm());
  EXPECT_EQ(m.order(), 40320u);
  EXPECT_EQ(m.order_string(), "40320");
}

TEST(Universality, NotAndFeynmanAloneAreNotUniversal) {
  // Affine circuits only: 8 * 168 = 1344 < 40320.
  std::vector<perm::Permutation> gens = feynman_binary_perms();
  const auto nots = not_binary_perms();
  gens.insert(gens.end(), nots.begin(), nots.end());
  EXPECT_EQ(perm::PermGroup(gens).order(), 1344u);
}

TEST(Universality, RepresentativeGatesG1ToG4AreUniversal) {
  EXPECT_TRUE(is_universal_with_not_and_feynman(peres_perm()));
  EXPECT_TRUE(is_universal_with_not_and_feynman(g2_perm()));
  EXPECT_TRUE(is_universal_with_not_and_feynman(g3_perm()));
  EXPECT_TRUE(is_universal_with_not_and_feynman(g4_perm()));
}

TEST(Universality, ToffoliIsUniversalButSwapIsNot) {
  EXPECT_TRUE(is_universal_with_not_and_feynman(toffoli_perm()));
  // Swap is linear — adds nothing beyond the affine group.
  EXPECT_FALSE(is_universal_with_not_and_feynman(swap_bc_perm()));
}

TEST(Universality, All24PeresLikeCostFourGatesAreUniversal) {
  // Section 5: the 24 non-linear members of G[4] each generate S8 together
  // with NOT and Feynman gates.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  FmcfEnumerator enumerator(library);
  enumerator.run_to(4);
  std::size_t universal = 0;
  std::size_t linear = 0;
  for (const auto& g : enumerator.g_set(4)) {
    if (is_universal_with_not_and_feynman(g)) {
      ++universal;
    } else {
      ++linear;
    }
  }
  EXPECT_EQ(universal, 24u);
  EXPECT_EQ(linear, 60u);  // the four-CNOT (linear) members
}

TEST(Universality, The24FormFourWirePermutationFamilies) {
  // "There are four representative circuits from these 24 circuits. Each of
  // these four circuits has other five similar circuits with different
  // permutations of the three bits."
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  FmcfEnumerator enumerator(library);
  enumerator.run_to(4);

  // The six wire permutations of {A,B,C} act on binary labels by bit
  // shuffling; conjugation partitions the 24 into orbits.
  std::vector<perm::Permutation> wire_actions;
  const int orders[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                            {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& order : orders) {
    std::vector<std::uint32_t> images(8);
    for (std::uint32_t bits = 0; bits < 8; ++bits) {
      std::uint32_t shuffled = 0;
      for (int w = 0; w < 3; ++w) {
        const std::uint32_t bit = (bits >> (2 - order[w])) & 1u;
        shuffled |= bit << (2 - w);
      }
      images[bits] = shuffled + 1;
    }
    wire_actions.push_back(perm::Permutation::from_images(images));
  }

  std::vector<perm::Permutation> nonlinear;
  for (const auto& g : enumerator.g_set(4)) {
    if (is_universal_with_not_and_feynman(g)) nonlinear.push_back(g);
  }
  ASSERT_EQ(nonlinear.size(), 24u);

  std::set<perm::Permutation> remaining(nonlinear.begin(), nonlinear.end());
  std::size_t orbits = 0;
  while (!remaining.empty()) {
    ++orbits;
    const perm::Permutation rep = *remaining.begin();
    for (const auto& w : wire_actions) {
      remaining.erase(w.inverse() * rep * w);  // conjugate by wire shuffle
    }
  }
  EXPECT_EQ(orbits, 4u);
}

}  // namespace
}  // namespace qsyn::synth
