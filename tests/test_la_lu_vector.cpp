// Unit tests for qsyn/la: vectors, LU decomposition, and the V0/V1 states.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "la/gate_constants.h"
#include "la/lu.h"
#include "la/matrix.h"
#include "la/vector.h"

namespace qsyn::la {
namespace {

const Complex kI(0.0, 1.0);

// --- Vector -------------------------------------------------------------------

TEST(Vector, BasisConstruction) {
  const Vector e2 = Vector::basis(4, 2);
  EXPECT_EQ(e2.size(), 4u);
  EXPECT_EQ(e2[2], Complex(1.0, 0.0));
  EXPECT_EQ(e2[0], Complex(0.0, 0.0));
  EXPECT_THROW((void)Vector::basis(4, 4), LogicError);
}

TEST(Vector, Arithmetic) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, 4.0};
  const Vector s = a + b;
  EXPECT_EQ(s[0], Complex(4.0, 0.0));
  EXPECT_EQ((s - b)[1], Complex(2.0, 0.0));
  EXPECT_EQ((a * kI)[0], kI);
}

TEST(Vector, DotIsConjugateLinear) {
  const Vector a{kI, 0.0};
  const Vector b{1.0, 0.0};
  // <a|b> = conj(i)*1 = -i.
  EXPECT_EQ(a.dot(b), Complex(0.0, -1.0));
  EXPECT_EQ(b.dot(a), kI);
}

TEST(Vector, NormAndNormalize) {
  Vector v{3.0, 4.0};
  EXPECT_NEAR(v.norm(), 5.0, 1e-12);
  EXPECT_NEAR(v.norm_squared(), 25.0, 1e-12);
  v.normalize();
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  Vector zero(3);
  EXPECT_THROW(zero.normalize(), LogicError);
}

TEST(Vector, KroneckerProduct) {
  const Vector a{1.0, 2.0};
  const Vector b{0.0, 1.0};
  const Vector k = a.kron(b);
  ASSERT_EQ(k.size(), 4u);
  EXPECT_EQ(k[1], Complex(1.0, 0.0));
  EXPECT_EQ(k[3], Complex(2.0, 0.0));
}

TEST(Vector, EqualUpToPhase) {
  const Vector v = state_v0();
  Vector w = v;
  w *= std::exp(kI * 1.2);
  EXPECT_TRUE(v.equal_up_to_phase(w));
  EXPECT_FALSE(v.approx_equal(w));
  EXPECT_FALSE(v.equal_up_to_phase(state_v1()));
}

TEST(Vector, MatrixVectorProduct) {
  const Vector x = mat_x() * Vector{1.0, 0.0};
  EXPECT_EQ(x[0], Complex(0.0, 0.0));
  EXPECT_EQ(x[1], Complex(1.0, 0.0));
  EXPECT_THROW((void)(Matrix::identity(3) * Vector{1.0, 0.0}), LogicError);
}

// --- V0/V1 states (paper Section 2) -------------------------------------------

TEST(States, V0IsVAppliedToZero) {
  EXPECT_TRUE((mat_v() * state_0()).approx_equal(state_v0()));
}

TEST(States, V1IsVAppliedToOne) {
  EXPECT_TRUE((mat_v() * state_1()).approx_equal(state_v1()));
}

TEST(States, PaperIdentityV0EqualsVdagOne) {
  // The paper's reduction from six to four values: V0 = V+1 and V1 = V+0.
  EXPECT_TRUE((mat_v_dagger() * state_1()).approx_equal(state_v0()));
  EXPECT_TRUE((mat_v_dagger() * state_0()).approx_equal(state_v1()));
}

TEST(States, VOnV0GivesOneExactly) {
  EXPECT_TRUE((mat_v() * state_v0()).approx_equal(state_1()));
  EXPECT_TRUE((mat_v() * state_v1()).approx_equal(state_0()));
  EXPECT_TRUE((mat_v_dagger() * state_v0()).approx_equal(state_0()));
  EXPECT_TRUE((mat_v_dagger() * state_v1()).approx_equal(state_1()));
}

TEST(States, NotSwapsV0V1Exactly) {
  EXPECT_TRUE((mat_x() * state_v0()).approx_equal(state_v1()));
  EXPECT_TRUE((mat_x() * state_v1()).approx_equal(state_v0()));
}

TEST(States, MixedStatesMeasureHalf) {
  EXPECT_NEAR(std::norm(state_v0()[1]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(state_v1()[1]), 0.5, 1e-12);
  EXPECT_NEAR(state_v0().norm(), 1.0, 1e-12);
}

// --- LU -----------------------------------------------------------------------

TEST(Lu, DeterminantOfKnownMatrix) {
  const Matrix m{{4.0, 3.0}, {6.0, 3.0}};
  EXPECT_NEAR(std::abs(determinant(m) - Complex(-6.0, 0.0)), 0.0, 1e-9);
}

TEST(Lu, DeterminantOfIdentity) {
  EXPECT_NEAR(std::abs(determinant(Matrix::identity(5)) - Complex(1.0, 0.0)),
              0.0, 1e-12);
}

TEST(Lu, DeterminantOfPermutationIsSign) {
  // A single transposition has determinant -1.
  const Matrix p = Matrix::permutation({1, 0, 2});
  EXPECT_NEAR(std::abs(determinant(p) - Complex(-1.0, 0.0)), 0.0, 1e-12);
}

TEST(Lu, SingularDetection) {
  const Matrix m{{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(m);
  EXPECT_TRUE(lu.is_singular());
  EXPECT_NEAR(std::abs(lu.determinant()), 0.0, 1e-9);
  EXPECT_THROW((void)lu.solve(Vector{1.0, 0.0}), LogicError);
}

TEST(Lu, SolveRoundTrip) {
  const Matrix a{{2.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 4.0}};
  const Vector x_true{1.0, -2.0, 3.0};
  const Vector b = a * x_true;
  const Vector x = solve(a, b);
  EXPECT_TRUE(x.approx_equal(x_true, 1e-9));
}

TEST(Lu, ComplexSolve) {
  const Matrix a{{kI, 1.0}, {1.0, kI}};
  const Vector x_true{Complex(0.5, 0.25), Complex(-1.0, 2.0)};
  const Vector b = a * x_true;
  EXPECT_TRUE(solve(a, b).approx_equal(x_true, 1e-9));
}

TEST(Lu, InverseOfUnitaryIsAdjoint) {
  const Matrix v = mat_v();
  EXPECT_TRUE(inverse(v).approx_equal(v.adjoint(), 1e-9));
}

TEST(Lu, InverseRoundTrip) {
  Rng rng(99);
  Matrix m(4, 4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m(r, c) = Complex(rng.uniform() - 0.5, rng.uniform() - 0.5);
    }
  }
  EXPECT_TRUE((m * inverse(m)).is_identity(1e-8));
  EXPECT_TRUE((inverse(m) * m).is_identity(1e-8));
}

TEST(Lu, MatrixSolveMultipleRhs) {
  const Matrix a{{3.0, 1.0}, {1.0, 2.0}};
  const Matrix b{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_TRUE((a * x).is_identity(1e-9));
}

TEST(Lu, RequiresSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), LogicError);
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = solve(a, Vector{5.0, 7.0});
  EXPECT_TRUE(x.approx_equal(Vector{7.0, 5.0}, 1e-12));
}

}  // namespace
}  // namespace qsyn::la
