// Unit tests for qsyn/la: the dense complex matrix substrate.
#include <gtest/gtest.h>

#include "common/error.h"
#include "la/gate_constants.h"
#include "la/matrix.h"

namespace qsyn::la {
namespace {

const Complex kI(0.0, 1.0);

TEST(Matrix, ZeroConstruction) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m(r, c), Complex(0.0, 0.0));
    }
  }
}

TEST(Matrix, InitializerList) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), Complex(2.0, 0.0));
  EXPECT_EQ(m(1, 0), Complex(3.0, 0.0));
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), LogicError);
}

TEST(Matrix, IdentityAndPredicates) {
  const Matrix id = Matrix::identity(4);
  EXPECT_TRUE(id.is_identity());
  EXPECT_TRUE(id.is_unitary());
  EXPECT_TRUE(id.is_hermitian());
  EXPECT_TRUE(id.is_permutation());
}

TEST(Matrix, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), LogicError);
  EXPECT_THROW(m.at(0, 2), LogicError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, AdditionSubtraction) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  const Matrix sum = a + b;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(sum(r, c), Complex(5.0, 0.0));
    }
  }
  EXPECT_TRUE((sum - b).approx_equal(a));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, LogicError);
  EXPECT_THROW((void)(Matrix(2, 3) * Matrix(2, 3)), LogicError);
}

TEST(Matrix, ScalarMultiplication) {
  const Matrix a{{1.0, 0.0}, {0.0, 1.0}};
  const Matrix b = a * kI;
  EXPECT_EQ(b(0, 0), kI);
  const Matrix c = kI * a;
  EXPECT_TRUE(b.approx_equal(c));
}

TEST(Matrix, ProductAgainstHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix ab = a * b;
  EXPECT_EQ(ab(0, 0), Complex(19.0, 0.0));
  EXPECT_EQ(ab(0, 1), Complex(22.0, 0.0));
  EXPECT_EQ(ab(1, 0), Complex(43.0, 0.0));
  EXPECT_EQ(ab(1, 1), Complex(50.0, 0.0));
}

TEST(Matrix, RectangularProductShapes) {
  const Matrix a(2, 3);
  const Matrix b(3, 5);
  const Matrix ab = a * b;
  EXPECT_EQ(ab.rows(), 2u);
  EXPECT_EQ(ab.cols(), 5u);
}

TEST(Matrix, TransposeAdjointConjugate) {
  const Matrix m{{Complex(1.0, 1.0), Complex(2.0, 0.0)},
                 {Complex(0.0, 3.0), Complex(4.0, -1.0)}};
  EXPECT_EQ(m.transpose()(0, 1), Complex(0.0, 3.0));
  EXPECT_EQ(m.conjugate()(0, 0), Complex(1.0, -1.0));
  EXPECT_EQ(m.adjoint()(1, 0), Complex(2.0, 0.0));
  EXPECT_EQ(m.adjoint()(0, 1), Complex(0.0, -3.0));
  EXPECT_TRUE(m.adjoint().approx_equal(m.conjugate().transpose()));
}

TEST(Matrix, TraceAndNorm) {
  const Matrix m{{1.0, 7.0}, {9.0, 2.0}};
  EXPECT_EQ(m.trace(), Complex(3.0, 0.0));
  EXPECT_NEAR(Matrix::identity(4).frobenius_norm(), 2.0, 1e-12);
  EXPECT_THROW((void)Matrix(2, 3).trace(), LogicError);
}

TEST(Matrix, PowBySquaring) {
  const Matrix x = mat_x();
  EXPECT_TRUE(x.pow(0).is_identity());
  EXPECT_TRUE(x.pow(1).approx_equal(x));
  EXPECT_TRUE(x.pow(2).is_identity());
  EXPECT_TRUE(x.pow(5).approx_equal(x));
}

TEST(Matrix, KroneckerProductShapeAndValues) {
  const Matrix a{{1.0, 2.0}};           // 1x2
  const Matrix b{{0.0, 1.0}, {1.0, 0.0}};  // 2x2
  const Matrix k = a.kron(b);
  EXPECT_EQ(k.rows(), 2u);
  EXPECT_EQ(k.cols(), 4u);
  EXPECT_EQ(k(0, 1), Complex(1.0, 0.0));
  EXPECT_EQ(k(0, 3), Complex(2.0, 0.0));
  EXPECT_EQ(k(1, 0), Complex(1.0, 0.0));
  EXPECT_EQ(k(1, 2), Complex(2.0, 0.0));
}

TEST(Matrix, KroneckerOfUnitariesIsUnitary) {
  const Matrix k = mat_v().kron(mat_h());
  EXPECT_TRUE(k.is_unitary());
  EXPECT_EQ(k.rows(), 4u);
}

TEST(Matrix, DirectSum) {
  const Matrix d = mat_x().direct_sum(Matrix::identity(2));
  EXPECT_EQ(d.rows(), 4u);
  EXPECT_EQ(d(0, 1), Complex(1.0, 0.0));
  EXPECT_EQ(d(2, 2), Complex(1.0, 0.0));
  EXPECT_EQ(d(0, 2), Complex(0.0, 0.0));
  EXPECT_TRUE(d.is_unitary());
}

TEST(Matrix, Block) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b(0, 0), Complex(5.0, 0.0));
  EXPECT_EQ(b(1, 1), Complex(9.0, 0.0));
  EXPECT_THROW((void)m.block(2, 2, 2, 2), LogicError);
}

TEST(Matrix, PermutationMatrixRoundTrip) {
  const std::vector<std::size_t> perm = {2, 0, 3, 1};
  const Matrix p = Matrix::permutation(perm);
  EXPECT_TRUE(p.is_permutation());
  EXPECT_TRUE(p.is_unitary());
  EXPECT_EQ(p.extract_permutation(), perm);
}

TEST(Matrix, PermutationValidation) {
  EXPECT_THROW(Matrix::permutation({0, 0}), LogicError);
  EXPECT_THROW(Matrix::permutation({0, 5}), LogicError);
}

TEST(Matrix, IsPermutationRejectsPhases) {
  Matrix m = Matrix::identity(2);
  m(0, 0) = kI;
  EXPECT_FALSE(m.is_permutation());
  EXPECT_TRUE(m.is_permutation_up_to_phases());
}

TEST(Matrix, IsPermutationRejectsDoubleEntries) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 0) = 1.0;  // two entries in one column
  m(0, 1) = 1.0;
  EXPECT_FALSE(m.is_permutation());
  EXPECT_FALSE(m.is_permutation_up_to_phases());
}

TEST(Matrix, EqualUpToPhase) {
  const Matrix v = mat_v();
  const Matrix phased = v * std::exp(kI * 0.7);
  EXPECT_TRUE(v.equal_up_to_phase(phased));
  EXPECT_FALSE(v.equal_up_to_phase(mat_v_dagger()));
  EXPECT_FALSE(v.approx_equal(phased));
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = Matrix::identity(2);
  Matrix b = a;
  b(1, 1) = Complex(1.0, 0.25);
  EXPECT_NEAR(a.max_abs_diff(b), 0.25, 1e-12);
}

TEST(Matrix, DiagonalBuilder) {
  const Matrix d = Matrix::diagonal({1.0, kI, -1.0});
  EXPECT_TRUE(d.is_unitary());
  EXPECT_EQ(d(1, 1), kI);
  EXPECT_EQ(d(0, 1), Complex(0.0, 0.0));
}

TEST(Matrix, ToStringContainsEntries) {
  const std::string s = Matrix::identity(2).to_string();
  EXPECT_NE(s.find("1.000"), std::string::npos);
  EXPECT_NE(s.find("0.000"), std::string::npos);
}

// --- the paper's Figure 1 gate constants -------------------------------------

TEST(GateConstants, VMatchesPaperEntries) {
  const Matrix& v = mat_v();
  EXPECT_EQ(v(0, 0), Complex(0.5, 0.5));
  EXPECT_EQ(v(0, 1), Complex(0.5, -0.5));
  EXPECT_EQ(v(1, 0), Complex(0.5, -0.5));
  EXPECT_EQ(v(1, 1), Complex(0.5, 0.5));
}

TEST(GateConstants, VDaggerIsAdjointOfV) {
  EXPECT_TRUE(mat_v_dagger().approx_equal(mat_v().adjoint()));
}

TEST(GateConstants, VSquaredIsNot) {
  EXPECT_TRUE((mat_v() * mat_v()).approx_equal(mat_x()));
  EXPECT_TRUE((mat_v_dagger() * mat_v_dagger()).approx_equal(mat_x()));
}

TEST(GateConstants, VTimesVDaggerIsIdentity) {
  EXPECT_TRUE((mat_v() * mat_v_dagger()).is_identity());
  EXPECT_TRUE((mat_v_dagger() * mat_v()).is_identity());
}

TEST(GateConstants, AllGatesAreUnitary) {
  EXPECT_TRUE(mat_v().is_unitary());
  EXPECT_TRUE(mat_v_dagger().is_unitary());
  EXPECT_TRUE(mat_x().is_unitary());
  EXPECT_TRUE(mat_h().is_unitary());
  EXPECT_TRUE(mat_z().is_unitary());
}

TEST(GateConstants, VIsNotHermitianButXIs) {
  EXPECT_FALSE(mat_v().is_hermitian());
  EXPECT_TRUE(mat_x().is_hermitian());
  EXPECT_TRUE(mat_h().is_hermitian());
}

}  // namespace
}  // namespace qsyn::la
