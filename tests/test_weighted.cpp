// Unit tests for the weighted (arbitrary cost model) Dijkstra synthesizer —
// the executable form of the paper's claim that the method adapts to
// "any particular numerical values of costs" (e.g. NMR pulse costs [4]).
#include <gtest/gtest.h>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/mce.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace qsyn::synth {
namespace {

const gates::GateLibrary& library3() {
  static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  static const gates::GateLibrary lib(domain);
  return lib;
}

TEST(Weighted, UnitModelMatchesMceOnNamedCircuits) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  McExpressor mce(library3(), 7);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    const auto weighted = dijkstra.minimal_cost(target);
    const auto bfs = mce.minimal_cost(target);
    ASSERT_TRUE(weighted.has_value());
    ASSERT_TRUE(bfs.has_value());
    EXPECT_EQ(*weighted, *bfs) << target.to_cycle_string();
  }
}

TEST(Weighted, IdentityCostsZero) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  const auto result = dijkstra.synthesize(perm::Permutation::identity(8));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_TRUE(result->circuit.empty());
}

TEST(Weighted, WitnessRealizesTarget) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  for (const auto& target : {peres_perm(), toffoli_perm()}) {
    const auto result = dijkstra.synthesize(target);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->circuit.to_binary_permutation(), target);
    EXPECT_TRUE(sim::realizes_permutation(result->circuit, target));
  }
}

TEST(Weighted, FreeNotGatesAreUsedForCosets) {
  // Unit model: NOT costs 0, so a pure NOT layer synthesizes at cost 0.
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = dijkstra.synthesize(not_c);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_EQ(result->circuit.to_binary_permutation(), not_c);
}

TEST(Weighted, NmrModelChargesNotGates) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::nmr_like());
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = dijkstra.synthesize(not_c);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, gates::CostModel::nmr_like().not_gate);
}

TEST(Weighted, NmrCostsAreModelConsistent) {
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  const WeightedSynthesizer dijkstra(library3(), nmr);
  const auto result = dijkstra.synthesize(toffoli_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, result->circuit.cost(nmr));
  EXPECT_EQ(result->circuit.to_binary_permutation(), toffoli_perm());
  // No realization can beat it: the unit-optimal witness costs >= this.
  McExpressor mce(library3(), 7);
  const auto unit_result = mce.synthesize(toffoli_perm());
  ASSERT_TRUE(unit_result.has_value());
  EXPECT_LE(result->cost, unit_result->circuit.cost(nmr));
}

TEST(Weighted, SwapIsThreeCnotsInBothModels) {
  const WeightedSynthesizer unit(library3(), gates::CostModel::unit());
  const WeightedSynthesizer nmr(library3(), gates::CostModel::nmr_like());
  EXPECT_EQ(unit.minimal_cost(swap_bc_perm()), 3u);
  EXPECT_EQ(nmr.minimal_cost(swap_bc_perm()),
            3u * gates::CostModel::nmr_like().feynman);
}

TEST(Weighted, WithoutNotGatesCosetTargetsCostMore) {
  const WeightedSynthesizer with_not(library3(), gates::CostModel::unit(),
                                     /*include_not_gates=*/true);
  const WeightedSynthesizer without_not(library3(), gates::CostModel::unit(),
                                        /*include_not_gates=*/false);
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  EXPECT_EQ(with_not.minimal_cost(not_c), 0u);
  // Without NOT gates every library gate fixes the all-zero pattern, so a
  // target moving label 1 is unreachable: the search exhausts the (finite)
  // reachable signature space and reports failure.
  EXPECT_FALSE(without_not.minimal_cost(not_c).has_value());
}

TEST(Weighted, StateBoundThrows) {
  const WeightedSynthesizer tiny(library3(), gates::CostModel::unit(), true,
                                 32);
  EXPECT_THROW((void)tiny.minimal_cost(toffoli_perm()), qsyn::SynthesisError);
}

TEST(Weighted, DegreeGuard) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  EXPECT_THROW(
      (void)dijkstra.minimal_cost(perm::Permutation::from_cycles("(1,9)", 9)),
      qsyn::LogicError);
}

}  // namespace
}  // namespace qsyn::synth
