// Unit tests for the weighted (arbitrary cost model) Dijkstra synthesizer —
// the executable form of the paper's claim that the method adapts to
// "any particular numerical values of costs" (e.g. NMR pulse costs [4]) —
// and for the weighted query path over the persistent catalog
// (CatalogServer::locate_weighted: "cheapest stored realization under
// cost model X").
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/catalog_server.h"
#include "synth/fmcf.h"
#include "synth/mce.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace qsyn::synth {
namespace {

const gates::GateLibrary& library3() {
  static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  static const gates::GateLibrary lib(domain);
  return lib;
}

TEST(Weighted, UnitModelMatchesMceOnNamedCircuits) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  McExpressor mce(library3(), 7);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    const auto weighted = dijkstra.minimal_cost(target);
    const auto bfs = mce.minimal_cost(target);
    ASSERT_TRUE(weighted.has_value());
    ASSERT_TRUE(bfs.has_value());
    EXPECT_EQ(*weighted, *bfs) << target.to_cycle_string();
  }
}

TEST(Weighted, IdentityCostsZero) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  const auto result = dijkstra.synthesize(perm::Permutation::identity(8));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_TRUE(result->circuit.empty());
}

TEST(Weighted, WitnessRealizesTarget) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  for (const auto& target : {peres_perm(), toffoli_perm()}) {
    const auto result = dijkstra.synthesize(target);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->circuit.to_binary_permutation(), target);
    EXPECT_TRUE(sim::realizes_permutation(result->circuit, target));
  }
}

TEST(Weighted, FreeNotGatesAreUsedForCosets) {
  // Unit model: NOT costs 0, so a pure NOT layer synthesizes at cost 0.
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = dijkstra.synthesize(not_c);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_EQ(result->circuit.to_binary_permutation(), not_c);
}

TEST(Weighted, NmrModelChargesNotGates) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::nmr_like());
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = dijkstra.synthesize(not_c);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, gates::CostModel::nmr_like().not_gate);
}

TEST(Weighted, NmrCostsAreModelConsistent) {
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  const WeightedSynthesizer dijkstra(library3(), nmr);
  const auto result = dijkstra.synthesize(toffoli_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, result->circuit.cost(nmr));
  EXPECT_EQ(result->circuit.to_binary_permutation(), toffoli_perm());
  // No realization can beat it: the unit-optimal witness costs >= this.
  McExpressor mce(library3(), 7);
  const auto unit_result = mce.synthesize(toffoli_perm());
  ASSERT_TRUE(unit_result.has_value());
  EXPECT_LE(result->cost, unit_result->circuit.cost(nmr));
}

TEST(Weighted, SwapIsThreeCnotsInBothModels) {
  const WeightedSynthesizer unit(library3(), gates::CostModel::unit());
  const WeightedSynthesizer nmr(library3(), gates::CostModel::nmr_like());
  EXPECT_EQ(unit.minimal_cost(swap_bc_perm()), 3u);
  EXPECT_EQ(nmr.minimal_cost(swap_bc_perm()),
            3u * gates::CostModel::nmr_like().feynman);
}

TEST(Weighted, WithoutNotGatesCosetTargetsCostMore) {
  const WeightedSynthesizer with_not(library3(), gates::CostModel::unit(),
                                     /*include_not_gates=*/true);
  const WeightedSynthesizer without_not(library3(), gates::CostModel::unit(),
                                        /*include_not_gates=*/false);
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  EXPECT_EQ(with_not.minimal_cost(not_c), 0u);
  // Without NOT gates every library gate fixes the all-zero pattern, so a
  // target moving label 1 is unreachable: the search exhausts the (finite)
  // reachable signature space and reports failure.
  EXPECT_FALSE(without_not.minimal_cost(not_c).has_value());
}

TEST(Weighted, StateBoundThrows) {
  const WeightedSynthesizer tiny(library3(), gates::CostModel::unit(), true,
                                 32);
  EXPECT_THROW((void)tiny.minimal_cost(toffoli_perm()), qsyn::SynthesisError);
}

TEST(Weighted, DegreeGuard) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  EXPECT_THROW(
      (void)dijkstra.minimal_cost(perm::Permutation::from_cycles("(1,9)", 9)),
      qsyn::LogicError);
}

// --- the weighted query path over the persistent catalog --------------------

/// One shared cb = 5 serving layer for the weighted-catalog tests.
const CatalogServer& server5() {
  static const CatalogServer* server = [] {
    // The enumerator stores a pointer to its library, so serve over the
    // static library3() rather than a temporary.
    FmcfEnumerator closure(library3());
    closure.run_to(5);
    return new CatalogServer(std::move(closure));
  }();
  return *server;
}

TEST(CatalogWeighted, UnitModelReproducesMinimalCost) {
  // Under the paper's unit model the cheapest stored realization is exactly
  // the minimal-gate-count one, so the catalog's weighted answer must agree
  // with plain MCE on every named circuit.
  McExpressor mce(library3(), 5);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    const auto answer =
        server5().locate_weighted(target, gates::CostModel::unit());
    const auto bfs = mce.minimal_cost(target);
    ASSERT_TRUE(answer.has_value()) << target.to_cycle_string();
    ASSERT_TRUE(bfs.has_value());
    EXPECT_EQ(answer->model_cost, *bfs);
    EXPECT_EQ(answer->gate_count, *bfs);
    EXPECT_EQ(answer->circuit.to_binary_permutation(), target);
  }
}

TEST(CatalogWeighted, NmrModelPicksTheCheapestImplementation) {
  // Non-uniform costs: the server must return the min over every stored
  // implementation row, which we cross-check against a hand scan of the
  // expressor's implementations (2 for Peres, 4 for Toffoli).
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  McExpressor mce(library3(), 5);
  for (const auto& target : {peres_perm(), toffoli_perm(), g3_perm()}) {
    const auto implementations = mce.implementations(target);
    ASSERT_FALSE(implementations.empty());
    unsigned cheapest = implementations.front().circuit.cost(nmr);
    for (const SynthesisResult& impl : implementations) {
      cheapest = std::min(cheapest, impl.circuit.cost(nmr));
    }
    const auto answer = server5().locate_weighted(target, nmr);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(answer->model_cost, cheapest) << target.to_cycle_string();
    EXPECT_EQ(answer->circuit.cost(nmr), answer->model_cost);
    EXPECT_EQ(answer->circuit.to_binary_permutation(), target);
  }
}

TEST(CatalogWeighted, DeeperScanNeverCostsMore) {
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  for (const auto& target : {peres_perm(), swap_bc_perm(), g2_perm()}) {
    const auto minimal_level = server5().locate_weighted(target, nmr, false);
    const auto all_levels = server5().locate_weighted(target, nmr, true);
    ASSERT_TRUE(minimal_level.has_value());
    ASSERT_TRUE(all_levels.has_value());
    EXPECT_LE(all_levels->model_cost, minimal_level->model_cost);
    EXPECT_EQ(all_levels->circuit.to_binary_permutation(), target);
  }
}

TEST(CatalogWeighted, DijkstraLowerBoundsTheCatalogAnswer) {
  // The Dijkstra search optimizes over *all* cascades (NOT gates as weighted
  // moves included); the catalog only ranks its stored realizations, so the
  // global optimum can never exceed the catalog's answer.
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  const WeightedSynthesizer dijkstra(library3(), nmr);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm()}) {
    const auto exact = dijkstra.minimal_cost(target);
    const auto stored = server5().locate_weighted(target, nmr, true);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(stored.has_value());
    EXPECT_LE(*exact, stored->model_cost) << target.to_cycle_string();
  }
}

TEST(CatalogWeighted, MissBeyondStoredDepth) {
  // Fredkin first appears in G[7]; a cb = 5 catalog reports it unreachable
  // under every model instead of guessing.
  EXPECT_FALSE(
      server5().locate_weighted(fredkin_perm(), gates::CostModel::unit())
          .has_value());
  EXPECT_FALSE(
      server5().locate_weighted(fredkin_perm(), gates::CostModel::nmr_like())
          .has_value());
}

TEST(CatalogWeighted, DiskRoundTripServesTheSameWeightedAnswers) {
  const std::string path =
      ::testing::TempDir() + "qsyn_weighted_catalog.qscat";
  server5().enumerator().save_catalog(path);
  const CatalogServer reopened =
      CatalogServer::open(path, server5().enumerator().library());
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  for (const auto& target : {peres_perm(), toffoli_perm(), g4_perm()}) {
    const auto a = server5().locate_weighted(target, nmr);
    const auto b = reopened.locate_weighted(target, nmr);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(b->model_cost, a->model_cost);
    EXPECT_EQ(b->gate_count, a->gate_count);
    EXPECT_EQ(b->circuit.sequence(), a->circuit.sequence());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qsyn::synth
