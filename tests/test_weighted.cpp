// Unit tests for the weighted (arbitrary cost model) Dijkstra synthesizer —
// the executable form of the paper's claim that the method adapts to
// "any particular numerical values of costs" (e.g. NMR pulse costs [4]) —
// and for the weighted query path over the persistent catalog
// (CatalogServer::locate_weighted: "cheapest stored realization under
// cost model X").
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/backend.h"
#include "synth/catalog_server.h"
#include "synth/fmcf.h"
#include "synth/mce.h"
#include "synth/search/topology_search.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace qsyn::synth {
namespace {

const gates::GateLibrary& library3() {
  static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  static const gates::GateLibrary lib(domain);
  return lib;
}

TEST(Weighted, UnitModelMatchesMceOnNamedCircuits) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  McExpressor mce(library3(), 7);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    const auto weighted = dijkstra.minimal_cost(target);
    const auto bfs = mce.minimal_cost(target);
    ASSERT_TRUE(weighted.has_value());
    ASSERT_TRUE(bfs.has_value());
    EXPECT_EQ(*weighted, *bfs) << target.to_cycle_string();
  }
}

TEST(Weighted, IdentityCostsZero) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  const auto result = dijkstra.synthesize(perm::Permutation::identity(8));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_TRUE(result->circuit.empty());
}

TEST(Weighted, WitnessRealizesTarget) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  for (const auto& target : {peres_perm(), toffoli_perm()}) {
    const auto result = dijkstra.synthesize(target);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->circuit.to_binary_permutation(), target);
    EXPECT_TRUE(sim::realizes_permutation(result->circuit, target));
  }
}

TEST(Weighted, FreeNotGatesAreUsedForCosets) {
  // Unit model: NOT costs 0, so a pure NOT layer synthesizes at cost 0.
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = dijkstra.synthesize(not_c);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_EQ(result->circuit.to_binary_permutation(), not_c);
}

TEST(Weighted, NmrModelChargesNotGates) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::nmr_like());
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = dijkstra.synthesize(not_c);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, gates::CostModel::nmr_like().not_gate);
}

TEST(Weighted, NmrCostsAreModelConsistent) {
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  const WeightedSynthesizer dijkstra(library3(), nmr);
  const auto result = dijkstra.synthesize(toffoli_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, result->circuit.cost(nmr));
  EXPECT_EQ(result->circuit.to_binary_permutation(), toffoli_perm());
  // No realization can beat it: the unit-optimal witness costs >= this.
  McExpressor mce(library3(), 7);
  const auto unit_result = mce.synthesize(toffoli_perm());
  ASSERT_TRUE(unit_result.has_value());
  EXPECT_LE(result->cost, unit_result->circuit.cost(nmr));
}

TEST(Weighted, SwapIsThreeCnotsInBothModels) {
  const WeightedSynthesizer unit(library3(), gates::CostModel::unit());
  const WeightedSynthesizer nmr(library3(), gates::CostModel::nmr_like());
  EXPECT_EQ(unit.minimal_cost(swap_bc_perm()), 3u);
  EXPECT_EQ(nmr.minimal_cost(swap_bc_perm()),
            3u * gates::CostModel::nmr_like().feynman);
}

TEST(Weighted, WithoutNotGatesCosetTargetsCostMore) {
  const WeightedSynthesizer with_not(library3(), gates::CostModel::unit(),
                                     /*include_not_gates=*/true);
  const WeightedSynthesizer without_not(library3(), gates::CostModel::unit(),
                                        /*include_not_gates=*/false);
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  EXPECT_EQ(with_not.minimal_cost(not_c), 0u);
  // Without NOT gates every library gate fixes the all-zero pattern, so a
  // target moving label 1 is unreachable: the search exhausts the (finite)
  // reachable signature space and reports failure.
  EXPECT_FALSE(without_not.minimal_cost(not_c).has_value());
}

TEST(Weighted, StateBoundThrows) {
  const WeightedSynthesizer tiny(library3(), gates::CostModel::unit(), true,
                                 32);
  EXPECT_THROW((void)tiny.minimal_cost(toffoli_perm()), qsyn::SynthesisError);
}

TEST(Weighted, BoundBackendKeepsAnswersExact) {
  // The upper-bound prune is exactness-preserving: every prefix of an
  // optimal path costs at most the optimum, which the backend's witness
  // bounds from above.
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  ClosureBackend closure(library3(), 7);
  const WeightedSynthesizer plain(library3(), nmr);
  WeightedSynthesizer bounded(library3(), nmr);
  bounded.set_bound_backend(&closure);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    EXPECT_EQ(bounded.minimal_cost(target), plain.minimal_cost(target))
        << target.to_cycle_string();
  }
}

TEST(Weighted, BoundBackendShrinksTheExploredStateSet) {
  // Toffoli under the NMR model needs ~196k explored signatures unpruned
  // but fits in ~89k with the closure witness as an upper bound, so at a
  // 120k state cap only the bounded synthesizer survives.
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  const WeightedSynthesizer plain(library3(), nmr, true, 120000);
  EXPECT_THROW((void)plain.minimal_cost(toffoli_perm()), qsyn::SynthesisError);

  ClosureBackend closure(library3(), 7);
  WeightedSynthesizer bounded(library3(), nmr, true, 120000);
  bounded.set_bound_backend(&closure);
  const auto cost = bounded.minimal_cost(toffoli_perm());
  const WeightedSynthesizer reference(library3(), nmr);
  EXPECT_EQ(cost, reference.minimal_cost(toffoli_perm()));
}

TEST(Weighted, BoundBackendForDifferentLibraryThrows) {
  static const gates::GateLibrary lib2 = gates::GateLibrary::standard(2);
  ClosureBackend other(lib2, 5);
  WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  EXPECT_THROW(dijkstra.set_bound_backend(&other), qsyn::LogicError);
  // nullptr unplugs without complaint.
  dijkstra.set_bound_backend(nullptr);
}

TEST(Weighted, DegreeGuard) {
  const WeightedSynthesizer dijkstra(library3(), gates::CostModel::unit());
  EXPECT_THROW(
      (void)dijkstra.minimal_cost(perm::Permutation::from_cycles("(1,9)", 9)),
      qsyn::LogicError);
}

// --- the weighted query path over the persistent catalog --------------------

/// One shared cb = 5 serving layer for the weighted-catalog tests.
const CatalogServer& server5() {
  static const CatalogServer* server = [] {
    // The enumerator stores a pointer to its library, so serve over the
    // static library3() rather than a temporary.
    FmcfEnumerator closure(library3());
    closure.run_to(5);
    return new CatalogServer(std::move(closure));
  }();
  return *server;
}

TEST(CatalogWeighted, UnitModelReproducesMinimalCost) {
  // Under the paper's unit model the cheapest stored realization is exactly
  // the minimal-gate-count one, so the catalog's weighted answer must agree
  // with plain MCE on every named circuit.
  McExpressor mce(library3(), 5);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    const auto answer =
        server5().locate_weighted(target, gates::CostModel::unit());
    const auto bfs = mce.minimal_cost(target);
    ASSERT_TRUE(answer.has_value()) << target.to_cycle_string();
    ASSERT_TRUE(bfs.has_value());
    EXPECT_EQ(answer->model_cost, *bfs);
    EXPECT_EQ(answer->gate_count, *bfs);
    EXPECT_EQ(answer->circuit.to_binary_permutation(), target);
  }
}

TEST(CatalogWeighted, NmrModelPicksTheCheapestImplementation) {
  // Non-uniform costs: the server must return the min over every stored
  // implementation row, which we cross-check against a hand scan of the
  // expressor's implementations (2 for Peres, 4 for Toffoli).
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  McExpressor mce(library3(), 5);
  for (const auto& target : {peres_perm(), toffoli_perm(), g3_perm()}) {
    const auto implementations = mce.implementations(target);
    ASSERT_FALSE(implementations.empty());
    unsigned cheapest = implementations.front().circuit.cost(nmr);
    for (const SynthesisResult& impl : implementations) {
      cheapest = std::min(cheapest, impl.circuit.cost(nmr));
    }
    const auto answer = server5().locate_weighted(target, nmr);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(answer->model_cost, cheapest) << target.to_cycle_string();
    EXPECT_EQ(answer->circuit.cost(nmr), answer->model_cost);
    EXPECT_EQ(answer->circuit.to_binary_permutation(), target);
  }
}

TEST(CatalogWeighted, DeeperScanNeverCostsMore) {
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  for (const auto& target : {peres_perm(), swap_bc_perm(), g2_perm()}) {
    const auto minimal_level = server5().locate_weighted(target, nmr, false);
    const auto all_levels = server5().locate_weighted(target, nmr, true);
    ASSERT_TRUE(minimal_level.has_value());
    ASSERT_TRUE(all_levels.has_value());
    EXPECT_LE(all_levels->model_cost, minimal_level->model_cost);
    EXPECT_EQ(all_levels->circuit.to_binary_permutation(), target);
  }
}

TEST(CatalogWeighted, DijkstraLowerBoundsTheCatalogAnswer) {
  // The Dijkstra search optimizes over *all* cascades (NOT gates as weighted
  // moves included); the catalog only ranks its stored realizations, so the
  // global optimum can never exceed the catalog's answer.
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  const WeightedSynthesizer dijkstra(library3(), nmr);
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm()}) {
    const auto exact = dijkstra.minimal_cost(target);
    const auto stored = server5().locate_weighted(target, nmr, true);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(stored.has_value());
    EXPECT_LE(*exact, stored->model_cost) << target.to_cycle_string();
  }
}

TEST(CatalogWeighted, MissBeyondStoredDepth) {
  // Fredkin first appears in G[7]; a cb = 5 catalog reports it unreachable
  // under every model instead of guessing.
  EXPECT_FALSE(
      server5().locate_weighted(fredkin_perm(), gates::CostModel::unit())
          .has_value());
  EXPECT_FALSE(
      server5().locate_weighted(fredkin_perm(), gates::CostModel::nmr_like())
          .has_value());
}

TEST(CatalogWeighted, StopReasonSaysHowFarTheScanGot) {
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  // Minimal level only: deeper stored levels were never ranked.
  const auto minimal = server5().locate_weighted(peres_perm(), nmr, false);
  ASSERT_TRUE(minimal.has_value());
  EXPECT_EQ(minimal->stopped, WeightedScanStop::kMinimalLevelOnly);
  // Deeper scan over a cb = 5 closure: every stored level was ranked, but
  // the closure was budget-cut before saturating, so cheaper realizations
  // could exist beyond the stored depth.
  const auto deeper = server5().locate_weighted(peres_perm(), nmr, true);
  ASSERT_TRUE(deeper.has_value());
  EXPECT_EQ(deeper->stopped, WeightedScanStop::kStoredDepthLimit);
  // An identity core is the global optimum under any model: nothing to scan.
  const auto identity =
      server5().locate_weighted(perm::Permutation::identity(8), nmr, false);
  ASSERT_TRUE(identity.has_value());
  EXPECT_EQ(identity->stopped, WeightedScanStop::kExhausted);
}

TEST(CatalogWeighted, SaturatedClosureReportsExhausted) {
  // Over a saturated closure a full scan *is* the global optimum: the tiny
  // Feynman-pair library exhausts its reachable group within a few levels.
  static const gates::GateLibrary tiny =
      library3().restricted_to(library3().feynman_subset(0, 1));
  FmcfEnumerator closure(tiny);
  closure.run_to(64);
  ASSERT_TRUE(closure.saturated());
  const CatalogServer server(std::move(closure));
  gates::Cascade fab(3);
  fab.append(gates::Gate::feynman(0, 1));
  const auto answer = server.locate_weighted(fab.to_binary_permutation(),
                                             gates::CostModel::unit(), true);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->stopped, WeightedScanStop::kExhausted);
}

TEST(CatalogWeighted, FallbackBackendAnswersBeyondStoredDepth) {
  // A cb = 4 catalog misses Toffoli (cost 5); with a search backend plugged
  // in the weighted query returns its single witness, flagged as such (one
  // minimal-gate-count cascade, not a ranked scan of alternatives).
  FmcfEnumerator closure(library3());
  closure.run_to(4);
  CatalogServer server(std::move(closure));
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  EXPECT_FALSE(server.locate_weighted(toffoli_perm(), nmr, true).has_value());

  SearchConfig config;
  config.max_cost = 5;
  server.set_fallback(
      std::make_shared<TopologySearchBackend>(library3(), config));
  const auto answer = server.locate_weighted(toffoli_perm(), nmr, true);
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->stopped, WeightedScanStop::kFallbackBackend);
  EXPECT_EQ(answer->gate_count, 5u);
  EXPECT_EQ(answer->model_cost, answer->circuit.cost(nmr));
  EXPECT_EQ(answer->circuit.to_binary_permutation(), toffoli_perm());
}

TEST(CatalogWeighted, DiskRoundTripServesTheSameWeightedAnswers) {
  const std::string path =
      ::testing::TempDir() + "qsyn_weighted_catalog.qscat";
  server5().enumerator().save_catalog(path);
  const CatalogServer reopened =
      CatalogServer::open(path, server5().enumerator().library());
  const gates::CostModel nmr = gates::CostModel::nmr_like();
  for (const auto& target : {peres_perm(), toffoli_perm(), g4_perm()}) {
    const auto a = server5().locate_weighted(target, nmr);
    const auto b = reopened.locate_weighted(target, nmr);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(b->model_cost, a->model_cost);
    EXPECT_EQ(b->gate_count, a->gate_count);
    EXPECT_EQ(b->circuit.sequence(), a->circuit.sequence());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qsyn::synth
