// Tests for the out-of-core closure machinery: the growable mmap backend,
// the writable FileRowStorage, the StorageSpec construction seam, sealed
// prefix-compressed spill runs (including corrupt-input hardening), the
// spilled ShardedPermStore differential against its in-memory twin, and the
// spill-invariance of the FMCF per-level stats.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <string>
#include <system_error>
#include <type_traits>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "common/error.h"
#include "common/io/mmap_file.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "synth/closure_config.h"
#include "synth/flat_perm_store.h"
#include "synth/fmcf.h"
#include "synth/row_storage.h"
#include "synth/sharded_perm_store.h"
#include "synth/spill.h"
#include "synth/storage_spec.h"

namespace qsyn::synth {
namespace {

using Row = std::vector<std::uint8_t>;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "qsyn_spill_" + std::to_string(::getpid()) +
         "_" + name;
}

Row random_label_row(Rng& rng, std::size_t width) {
  Row row(width);
  for (std::size_t i = 0; i < width; ++i) {
    row[i] = static_cast<std::uint8_t>(rng.below(
        static_cast<std::uint32_t>(width)));
  }
  return row;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

void expect_same_rows(const FlatPermStore& a, const FlatPermStore& b) {
  ASSERT_EQ(a.row_stride(), b.row_stride());
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size_bytes(), b.size_bytes());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0);
}

// --- GrowableMmapFile ------------------------------------------------------

TEST(GrowableMmapFile, AppendGrowSealReopen) {
  const std::string path = temp_path("growable_basic");
  {
    io::GrowableMmapFile file(path);
    std::vector<std::uint8_t> chunk(300000);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = static_cast<std::uint8_t>(i * 7);
    }
    // Several appends crossing the initial mapping's capacity.
    for (int rep = 0; rep < 8; ++rep) {
      file.append(chunk.data(), chunk.size());
    }
    ASSERT_EQ(file.size(), 8 * chunk.size());
    EXPECT_EQ(file.data()[0], chunk[0]);
    EXPECT_EQ(file.data()[7 * chunk.size() + 5], chunk[5]);
    file.seal();
    EXPECT_TRUE(file.sealed());
    file.seal();  // idempotent
  }
  // The sealed file is exactly the logical bytes (capacity truncated away).
  const auto mapped = io::MmapFile::map(path);
  ASSERT_EQ(mapped->size(), 8u * 300000u);
  EXPECT_EQ(mapped->data()[42], static_cast<std::uint8_t>(42 * 7));
  std::remove(path.c_str());
}

TEST(GrowableMmapFile, SealRejectsFurtherMutation) {
  const std::string path = temp_path("growable_sealed");
  io::GrowableMmapFile file(path, /*unlink_on_destroy=*/true);
  const std::uint8_t byte = 0xab;
  file.append(&byte, 1);
  file.seal();
  EXPECT_THROW(file.append(&byte, 1), qsyn::LogicError);
  EXPECT_THROW(file.resize(16), qsyn::LogicError);
  EXPECT_THROW((void)file.mutable_data(), qsyn::LogicError);
}

TEST(GrowableMmapFile, UnusableDirectoryIsIoError) {
  EXPECT_THROW(io::GrowableMmapFile(temp_path("no_such_dir") + "/x/y/z"),
               qsyn::IoError);
}

TEST(GrowableMmapFile, UnlinkOnDestroyRemovesFile) {
  const std::string path = temp_path("growable_unlink");
  {
    io::GrowableMmapFile file(path, /*unlink_on_destroy=*/true);
    const std::uint8_t byte = 1;
    file.append(&byte, 1);
    file.seal();
  }
  EXPECT_THROW((void)io::MmapFile::map(path), qsyn::IoError);
}

// --- FileRowStorage behind a FlatPermStore ---------------------------------

TEST(FileRowStorage, StoreRoundTripAndSealFlipsReadOnly) {
  const std::string path = temp_path("file_rows");
  auto storage = std::make_shared<FileRowStorage>(path);
  {
    FlatPermStore store(4, storage);
    EXPECT_FALSE(store.read_only());
    store.push_back(perm::Permutation::from_cycles("(1,2)", 4));
    store.push_back(perm::Permutation::from_cycles("(3,4)", 4));
    store.sort_unique();
    ASSERT_EQ(store.size(), 2u);
    EXPECT_EQ(store.memory_bytes(), 0u);
    EXPECT_EQ(store.disk_bytes(), 8u);

    storage->seal();
    EXPECT_TRUE(store.read_only());
    EXPECT_THROW(store.push_back(perm::Permutation::identity(4)),
                 qsyn::LogicError);
    EXPECT_THROW(store.sort_unique(), qsyn::LogicError);
    // Reads still serve from the sealed mapping.
    EXPECT_EQ(store.permutation(1).to_cycle_string(), "(1,2)");
  }
  // keep_file defaults to true: the sealed bytes persist and re-wrap.
  storage.reset();
  FlatPermStore reopened(4, StorageSpec::mmap_read_only(path).make_storage());
  ASSERT_EQ(reopened.size(), 2u);
  EXPECT_TRUE(reopened.read_only());
  std::remove(path.c_str());
}

TEST(FileRowStorage, TemporaryPolicyDeletesFile) {
  const std::string path = temp_path("file_rows_tmp");
  {
    FileRowStorage storage(path, /*keep_file=*/false);
    const std::uint8_t byte = 9;
    storage.append_bytes(&byte, 1);
  }
  EXPECT_THROW((void)io::MmapFile::map(path), qsyn::IoError);
}

// --- StorageSpec -----------------------------------------------------------

TEST(StorageSpec, BackendsRoundTrip) {
  const std::string path = temp_path("spec_file");
  {
    FlatPermStore store = StorageSpec::file_backed(path).make_store(3);
    store.push_back(perm::Permutation::from_cycles("(1,3)", 3));
    dynamic_cast<FileRowStorage&>(*store.storage()).seal();
  }
  FlatPermStore mem = StorageSpec::in_memory().make_store(3);
  EXPECT_FALSE(mem.read_only());
  FlatPermStore mapped = StorageSpec::mmap_read_only(path).make_store(3);
  EXPECT_TRUE(mapped.read_only());
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped.permutation(0).to_cycle_string(), "(1,3)");
  EXPECT_EQ(StorageSpec::mmap_read_only(path),
            StorageSpec::mmap_read_only(path));
  EXPECT_NE(StorageSpec::in_memory(), StorageSpec::mmap_read_only(path));
  std::remove(path.c_str());
}

TEST(StorageSpec, MissingFileIsIoErrorFractionalRowIsLogicError) {
  EXPECT_THROW(
      (void)StorageSpec::mmap_read_only(temp_path("spec_missing")).make_store(3),
      qsyn::IoError);
  const std::string path = temp_path("spec_fraction");
  write_file(path, {1, 2, 3, 4, 5});  // not a multiple of width 3
  EXPECT_THROW((void)StorageSpec::mmap_read_only(path).make_store(3),
               qsyn::LogicError);
  std::remove(path.c_str());
}

// --- SealedRun -------------------------------------------------------------

FlatPermStore sorted_store(Rng& rng, std::size_t width, std::size_t count,
                           std::uint8_t first_label) {
  // Rows sharing a fixed first label, so the run has a real common prefix.
  FlatPermStore store(width);
  for (std::size_t i = 0; i < count; ++i) {
    Row row = random_label_row(rng, width);
    row[0] = first_label;
    store.push_back(row.data());
  }
  store.sort_unique();
  return store;
}

TEST(SealedRun, RoundTripCompressesAndServes) {
  Rng rng(4101);
  const std::size_t width = 16;
  FlatPermStore rows = sorted_store(rng, width, 400, 3);
  const std::string path = temp_path("run_roundtrip");
  const auto run = SealedRun::write(path, rows, /*keep_file=*/true);

  ASSERT_EQ(run->rows(), rows.size());
  EXPECT_GE(run->prefix_bytes(), 1u);  // the shared first label, at least
  EXPECT_LT(run->disk_bytes(),
            spill::kRunHeaderBytes + rows.size_bytes());  // compressed

  Row buf(width);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    run->materialize(i, buf.data());
    EXPECT_EQ(std::memcmp(buf.data(), rows.row(i), width), 0) << "row " << i;
    EXPECT_EQ(run->compare(rows.row(i), i), 0);
    EXPECT_TRUE(run->contains_sorted(rows.row(i)));
  }
  Row absent = random_label_row(rng, width);
  absent[0] = 7;  // outside the run's first-label bracket
  EXPECT_FALSE(run->contains_sorted(absent.data()));

  // open() agrees with the writer's view.
  const auto reopened = SealedRun::open(path, width);
  EXPECT_EQ(reopened->rows(), run->rows());
  EXPECT_EQ(reopened->prefix_bytes(), run->prefix_bytes());
  std::remove(path.c_str());
}

TEST(SealedRun, SubtractFromMatchesReference) {
  Rng rng(4102);
  const std::size_t width = 9;
  for (int trial = 0; trial < 20; ++trial) {
    FlatPermStore run_rows = sorted_store(rng, width, 1 + rng.below(120), 2);
    FlatPermStore victim = sorted_store(rng, width, 1 + rng.below(120), 2);
    // Random disjoint sets would make the subtraction a no-op; plant real
    // overlap by copying a slice of the run into the victim.
    for (std::size_t i = 0; i < run_rows.size(); i += 3) {
      victim.push_back(run_rows.row(i));
    }
    victim.sort_unique();

    std::set<Row> model;
    for (std::size_t i = 0; i < victim.size(); ++i) {
      model.emplace(victim.row(i), victim.row(i) + width);
    }
    for (std::size_t i = 0; i < run_rows.size(); ++i) {
      model.erase(Row(run_rows.row(i), run_rows.row(i) + width));
    }

    const auto run = SealedRun::write(temp_path("run_subtract"), run_rows,
                                      /*keep_file=*/false);
    run->subtract_from(victim);
    ASSERT_EQ(victim.size(), model.size());
    std::size_t i = 0;
    for (const Row& row : model) {
      EXPECT_EQ(std::memcmp(victim.row(i), row.data(), width), 0);
      ++i;
    }
  }
}

TEST(SealedRun, TemporaryRunFileIsRemovedWithLastOwner) {
  Rng rng(4103);
  FlatPermStore rows = sorted_store(rng, 5, 10, 1);
  const std::string path = temp_path("run_temp");
  {
    auto run = SealedRun::write(path, rows, /*keep_file=*/false);
    auto second_owner = run;  // shared: survives the first reset
    run.reset();
    EXPECT_EQ(second_owner->rows(), 10u);  // file still mapped and valid
  }
  EXPECT_THROW((void)SealedRun::open(path, 5), qsyn::IoError);
}

class SealedRunCorruption : public ::testing::Test {
 protected:
  std::string fresh_run(const std::string& name) {
    Rng rng(4104);
    FlatPermStore rows = sorted_store(rng, 6, 50, 4);
    const std::string path = temp_path("corrupt_" + name);
    (void)SealedRun::write(path, rows, /*keep_file=*/true);
    return path;
  }
};

TEST_F(SealedRunCorruption, TruncatedHeader) {
  const std::string path = fresh_run("header");
  auto bytes = read_file(path);
  bytes.resize(spill::kRunHeaderBytes - 5);
  write_file(path, bytes);
  EXPECT_THROW((void)SealedRun::open(path, 6), qsyn::CatalogError);
  std::remove(path.c_str());
}

TEST_F(SealedRunCorruption, TruncatedRows) {
  const std::string path = fresh_run("rows");
  auto bytes = read_file(path);
  bytes.resize(bytes.size() - 3);
  write_file(path, bytes);
  EXPECT_THROW((void)SealedRun::open(path, 6), qsyn::CatalogError);
  std::remove(path.c_str());
}

TEST_F(SealedRunCorruption, TrailingBytes) {
  const std::string path = fresh_run("trailing");
  auto bytes = read_file(path);
  bytes.push_back(0);
  write_file(path, bytes);
  EXPECT_THROW((void)SealedRun::open(path, 6), qsyn::CatalogError);
  std::remove(path.c_str());
}

TEST_F(SealedRunCorruption, BadMagicBadVersionWidthMismatch) {
  const std::string path = fresh_run("fields");
  const auto pristine = read_file(path);

  auto bytes = pristine;
  bytes[0] ^= 0xff;
  write_file(path, bytes);
  EXPECT_THROW((void)SealedRun::open(path, 6), qsyn::CatalogError);

  bytes = pristine;
  bytes[11] = 99;  // version u32 at offset 8, low byte
  write_file(path, bytes);
  EXPECT_THROW((void)SealedRun::open(path, 6), qsyn::CatalogError);

  write_file(path, pristine);
  EXPECT_THROW((void)SealedRun::open(path, 7), qsyn::CatalogError);
  EXPECT_NO_THROW((void)SealedRun::open(path, 6));
  std::remove(path.c_str());
}

TEST(SealedRun, MissingFileIsIoError) {
  EXPECT_THROW((void)SealedRun::open(temp_path("run_missing"), 6),
               qsyn::IoError);
}

// --- spilled ShardedPermStore differential ---------------------------------

// Drives a spilled store and its unbounded in-memory twin through the same
// closure-shaped op sequence (sort chunks, subtract against the store, merge
// in what survives) and demands byte-identical observable state throughout.
TEST(ShardedSpillDifferential, RandomizedAgainstInMemoryTwin) {
  Rng rng(5201);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t width = 4 + rng.below(8);
    const std::size_t shards = 1 + rng.below(5);
    // A few hundred bytes per shard: every trial seals multiple runs.
    ShardedPermStore spilled(
        width, shards,
        SpillOptions{shards * (128 + rng.below(512)), ::testing::TempDir()});
    ShardedPermStore plain(width, shards);

    for (int round = 0; round < 8; ++round) {
      // One "chunk" of candidate rows, routed per shard like the sweep does.
      std::vector<FlatPermStore> chunks(
          shards, FlatPermStore(width));
      const std::size_t count = 1 + rng.below(400);
      for (std::size_t i = 0; i < count; ++i) {
        const Row row = random_label_row(rng, width);
        chunks[spilled.shard_of(row.data())].push_back(row.data());
      }
      for (std::size_t s = 0; s < shards; ++s) {
        FlatPermStore& chunk = chunks[s];
        if (chunk.empty()) continue;
        chunk.sort_unique();
        FlatPermStore twin_chunk = chunk;

        spilled.subtract_shard_from(s, chunk);
        spilled.merge_into_shard(s, chunk);

        plain.subtract_shard_from(s, twin_chunk);
        plain.merge_into_shard(s, twin_chunk);
      }
      ASSERT_EQ(spilled.size(), plain.size());
    }
    EXPECT_TRUE(spilled.spilled());
    EXPECT_GT(spilled.run_count(), 0u);
    EXPECT_GT(spilled.disk_bytes(), 0u);
    EXPECT_EQ(plain.disk_bytes(), 0u);

    // Membership agrees on hits and misses.
    for (int probe = 0; probe < 200; ++probe) {
      const Row row = random_label_row(rng, width);
      EXPECT_EQ(spilled.contains_sorted(row.data()),
                plain.contains_sorted(row.data()));
    }

    // flatten() (non-destructive) and drain_sorted() (destructive, possibly
    // file-backed) both equal the in-memory drain byte for byte.
    const FlatPermStore flat = spilled.flatten();
    const FlatPermStore spilled_drain = spilled.drain_sorted();
    const FlatPermStore plain_drain = plain.drain_sorted();
    expect_same_rows(flat, plain_drain);
    expect_same_rows(spilled_drain, plain_drain);
    EXPECT_TRUE(spilled.empty());
    EXPECT_FALSE(spilled.spilled());
  }
}

TEST(ShardedSpill, AbsorbShardAdoptsRuns) {
  Rng rng(5202);
  const std::size_t width = 6;
  ShardedPermStore fresh(width, 1, SpillOptions{64, ::testing::TempDir()});
  ShardedPermStore seen(width, 1, SpillOptions{1 << 20, ::testing::TempDir()});
  ShardedPermStore reference(width, 1);

  for (int round = 0; round < 6; ++round) {
    FlatPermStore chunk(width);
    for (int i = 0; i < 64; ++i) {
      const Row row = random_label_row(rng, width);
      chunk.push_back(row.data());
    }
    chunk.sort_unique();
    FlatPermStore twin = chunk;
    fresh.subtract_shard_from(0, chunk);
    fresh.merge_into_shard(0, chunk);
    reference.subtract_shard_from(0, twin);
    reference.merge_into_shard(0, twin);
  }
  ASSERT_TRUE(fresh.spilled());
  seen.absorb_shard(0, fresh);
  EXPECT_EQ(seen.size(), reference.size());
  EXPECT_GT(seen.run_count(), 0u);

  // The adopted runs outlive the donor.
  fresh.clear();
  FlatPermStore drained = seen.drain_sorted();
  FlatPermStore expected = reference.drain_sorted();
  expect_same_rows(drained, expected);
}

TEST(ShardedSpill, LegacyWholeStoreOpsRejectSpilledStores) {
  Rng rng(5203);
  const std::size_t width = 5;
  ShardedPermStore spilled(width, 1, SpillOptions{32, ::testing::TempDir()});
  FlatPermStore chunk(width);
  for (int i = 0; i < 64; ++i) {
    chunk.push_back(random_label_row(rng, width).data());
  }
  chunk.sort_unique();
  spilled.merge_into_shard(0, chunk);
  ASSERT_TRUE(spilled.spilled());

  ShardedPermStore other(width, 1);
  EXPECT_THROW(spilled.sort_unique(), qsyn::LogicError);
  EXPECT_THROW(spilled.subtract_sorted(other), qsyn::LogicError);
  EXPECT_THROW(spilled.merge_sorted(other), qsyn::LogicError);
  EXPECT_THROW(other.subtract_sorted(spilled), qsyn::LogicError);
  EXPECT_THROW(other.merge_sorted(spilled), qsyn::LogicError);
}

TEST(ShardedSpill, DrainSortedMatchesFlattenInMemoryToo) {
  // drain_sorted() honors the unified contract on plain in-memory stores:
  // same rows as a flatten(), then the store is empty.
  Rng rng(5204);
  const std::size_t width = 7;
  for (const std::size_t shards : {std::size_t(1), std::size_t(4)}) {
    ShardedPermStore a(width, shards);
    for (int i = 0; i < 300; ++i) {
      const Row row = random_label_row(rng, width);
      a.push_back(row.data());
    }
    a.sort_unique();
    const FlatPermStore flat = a.flatten();
    const FlatPermStore drained = a.drain_sorted();
    expect_same_rows(drained, flat);
    EXPECT_TRUE(a.empty());
  }
}

// --- spill-invariance of the FMCF closure ----------------------------------

class SpilledClosure3 : public ::testing::Test {
 protected:
  static const FmcfEnumerator& in_memory() {
    static const FmcfEnumerator enumerator = [] {
      FmcfEnumerator e(library(), ClosureConfig{});
      e.run_to(7);
      return e;
    }();
    return enumerator;
  }

  static const gates::GateLibrary& library() {
    static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
    static const gates::GateLibrary lib(domain);
    return lib;
  }

  static ClosureConfig spill_config(std::size_t threads) {
    ClosureConfig config;
    config.threads = threads;
    // ~64 KiB per store: the 3-wire closure holds ~26 MB of rows by cb = 7,
    // so every level past the first few seals multiple runs per shard.
    config.spill_budget_bytes = std::size_t(64) << 10;
    config.spill_dir = ::testing::TempDir();
    return config;
  }

  static void expect_stats_identical(const FmcfEnumerator& spilled) {
    const auto& expected = in_memory().stats();
    const auto& actual = spilled.stats();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      EXPECT_EQ(actual[k].cost, expected[k].cost) << "level " << k;
      EXPECT_EQ(actual[k].frontier, expected[k].frontier) << "level " << k;
      EXPECT_EQ(actual[k].g_new, expected[k].g_new) << "level " << k;
      EXPECT_EQ(actual[k].pre_g, expected[k].pre_g) << "level " << k;
      EXPECT_EQ(actual[k].seen, expected[k].seen) << "level " << k;
    }
  }
};

TEST_F(SpilledClosure3, StatsIdenticalSingleThread) {
  FmcfEnumerator spilled(library(), [] {
    ClosureConfig config = spill_config(1);
    return config;
  }());
  spilled.run_to(7);
  EXPECT_GT(spilled.disk_bytes(), 0u);
  expect_stats_identical(spilled);

  // Spot-check query parity: same G entry, same witness cost, same row.
  const auto toffoli = perm::Permutation::from_cycles("(7,8)", 8);
  const auto mem_entry = in_memory().find(toffoli);
  const auto spill_entry = spilled.find(toffoli);
  ASSERT_TRUE(mem_entry.has_value());
  ASSERT_TRUE(spill_entry.has_value());
  EXPECT_EQ(spill_entry->cost, mem_entry->cost);
  EXPECT_EQ(spill_entry->frontier_index, mem_entry->frontier_index);
  const gates::Cascade cascade = spilled.witness(*spill_entry);
  EXPECT_EQ(cascade.size(), spill_entry->cost);
}

TEST_F(SpilledClosure3, StatsIdenticalMultiThread) {
  FmcfEnumerator spilled(library(), spill_config(4));
  spilled.run_to(7);
  EXPECT_GT(spilled.disk_bytes(), 0u);
  expect_stats_identical(spilled);
}

TEST_F(SpilledClosure3, SpilledCatalogRoundTrips) {
  FmcfEnumerator spilled(library(), spill_config(2));
  spilled.run_to(5);
  const std::string path = temp_path("spilled_catalog");
  spilled.save_catalog(path);

  FmcfEnumerator reopened =
      FmcfEnumerator::open_catalog(path, library(), ClosureConfig{});
  ASSERT_EQ(reopened.stats().size(), 5u);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(reopened.stats()[k].frontier, spilled.stats()[k].frontier);
    EXPECT_EQ(reopened.stats()[k].g_new, spilled.stats()[k].g_new);
  }
  const auto cnot = perm::Permutation::from_cycles("(3,4)(7,8)", 8);
  const auto entry = reopened.find(cnot);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->cost, spilled.find(cnot)->cost);
  std::remove(path.c_str());
}

// --- configuration resolution ----------------------------------------------

#ifndef _WIN32
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ClosureConfigResolution, SpillBudgetEnvFallback) {
  EnvGuard guard("QSYN_SPILL_BUDGET_MB");
  ::unsetenv("QSYN_SPILL_BUDGET_MB");
  EXPECT_EQ(resolve_spill_budget(0), 0u);  // unset: never spill
  ::setenv("QSYN_SPILL_BUDGET_MB", "3", 1);
  EXPECT_EQ(resolve_spill_budget(0), std::size_t(3) << 20);
  // An explicit budget beats the environment.
  EXPECT_EQ(resolve_spill_budget(12345), 12345u);
  ::setenv("QSYN_SPILL_BUDGET_MB", "nonsense", 1);
  EXPECT_EQ(resolve_spill_budget(0), 0u);
}

TEST(ClosureConfigResolution, SpillDirEnvFallback) {
  EnvGuard guard("QSYN_SPILL_DIR");
  ::setenv("QSYN_SPILL_DIR", "/some/spill/dir", 1);
  EXPECT_EQ(resolve_spill_dir(""), "/some/spill/dir");
  EXPECT_EQ(resolve_spill_dir("/explicit/wins"), "/explicit/wins");
  ::unsetenv("QSYN_SPILL_DIR");
  EXPECT_FALSE(resolve_spill_dir("").empty());  // system temp dir
}

TEST(ClosureConfigResolution, SpillBudgetRejectsTrailingGarbage) {
  // The strtoul regression: "64abc" must not half-apply as a 64 MiB budget.
  EnvGuard guard("QSYN_SPILL_BUDGET_MB");
  ::setenv("QSYN_SPILL_BUDGET_MB", "64abc", 1);
  EXPECT_EQ(resolve_spill_budget(0), 0u);
  ::setenv("QSYN_SPILL_BUDGET_MB", "0", 1);
  EXPECT_EQ(resolve_spill_budget(0), 0u);  // below the [1, ...] floor
  ::setenv("QSYN_SPILL_BUDGET_MB", "64", 1);
  EXPECT_EQ(resolve_spill_budget(0), std::size_t(64) << 20);
}

TEST(ClosureConfigResolution, BogusSpillDirIsIoErrorAtFirstSpill) {
  // A bogus QSYN_SPILL_DIR must surface as qsyn::IoError at the first seal
  // — not scatter run files into the working directory.
  EnvGuard guard("QSYN_SPILL_DIR");
  ::setenv("QSYN_SPILL_DIR", "/nonexistent/qsyn/spill/dir", 1);
  const std::string dir = resolve_spill_dir("");
  EXPECT_EQ(dir, "/nonexistent/qsyn/spill/dir");
  Rng rng(5301);
  const std::size_t width = 6;
  ShardedPermStore store(width, 1, SpillOptions{32, dir});
  FlatPermStore chunk(width);
  for (int i = 0; i < 64; ++i) {
    chunk.push_back(random_label_row(rng, width).data());
  }
  chunk.sort_unique();
  EXPECT_THROW(store.merge_into_shard(0, chunk), qsyn::IoError);
}

TEST(ClosureConfigResolution, TempDirFallbackIsObservable) {
  // With QSYN_SPILL_DIR unset and the system temp dir unresolvable
  // (libstdc++ consults TMPDIR first), the "." degradation must be
  // observable: the fallback counter ticks and a warning lands on stderr
  // (once per process; a prior test may already have consumed it, so only
  // the counter is asserted strictly).
  EnvGuard spill_guard("QSYN_SPILL_DIR");
  EnvGuard tmp_guard("TMPDIR");
  ::unsetenv("QSYN_SPILL_DIR");
  ::setenv("TMPDIR", "/nonexistent/qsyn/tmp", 1);
  std::error_code ec;
  std::filesystem::temp_directory_path(ec);
  if (!ec) {
    GTEST_SKIP() << "this libstdc++ resolves a temp dir despite bogus TMPDIR";
  }
  const std::size_t before = spill_dir_fallback_count();
  EXPECT_EQ(resolve_spill_dir(""), ".");
  EXPECT_EQ(spill_dir_fallback_count(), before + 1);
  EXPECT_EQ(resolve_spill_dir(""), ".");
  EXPECT_EQ(spill_dir_fallback_count(), before + 2);
}
#endif  // !_WIN32

}  // namespace
}  // namespace qsyn::synth
