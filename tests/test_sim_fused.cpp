// Randomized differential harness for the fused/batched simulation engine
// (sim/fused.h, sim/batch.h) against the gate-at-a-time reference
// (StateVector::apply_cascade), plus property tests for the block-fusion
// algebra and the content-addressed unitary cache.
//
// The fast path is only trusted because this suite hammers it: random
// cascades across wire counts, lengths, fuse blocks and thread counts must
// reproduce the reference amplitudes exactly (every reachable amplitude is
// a dyadic complex rational, so 1e-12 is loose — agreement is bit-for-bit).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/gate.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/batch.h"
#include "sim/cross_check.h"
#include "sim/fused.h"
#include "sim/state_vector.h"
#include "sim/unitary.h"
#include "synth/specs.h"

namespace qsyn::sim {
namespace {

using gates::Cascade;
using gates::Gate;

Gate random_gate(Rng& rng, std::size_t wires, bool permutative_only) {
  const std::uint64_t kind = rng.below(permutative_only ? 2 : 4);
  const std::size_t target = rng.below(wires);
  if (kind == 0) return Gate::not_gate(target);
  std::size_t control = rng.below(wires - 1);
  if (control >= target) ++control;
  switch (kind) {
    case 1:
      return Gate::feynman(target, control);
    case 2:
      return Gate::ctrl_v(target, control);
    default:
      return Gate::ctrl_v_dagger(target, control);
  }
}

Cascade random_cascade(Rng& rng, std::size_t wires, std::size_t length,
                       bool permutative_only = false) {
  Cascade c(wires);
  for (std::size_t i = 0; i < length; ++i) {
    c.append(random_gate(rng, wires, permutative_only));
  }
  return c;
}

/// A random cascade over the library that stays reasonable gate by gate
/// (rejection per appended gate, so long cascades still generate quickly).
Cascade random_reasonable_cascade(Rng& rng, const gates::GateLibrary& library,
                                  std::size_t length) {
  Cascade c(library.domain().wires());
  for (std::size_t i = 0; i < length; ++i) {
    for (int tries = 0; tries < 64; ++tries) {
      Cascade extended = c;
      extended.append(library.gate(rng.below(library.size())));
      if (extended.is_reasonable(library.domain())) {
        c = std::move(extended);
        break;
      }
    }
  }
  return c;
}

double max_abs_diff(const la::Vector& a, const la::Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double max = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max = std::max(max, std::abs(a[i] - b[i]));
  }
  return max;
}

la::Vector reference_amplitudes(const Cascade& cascade, std::uint32_t bits) {
  StateVector state = StateVector::basis(cascade.wires(), bits);
  state.apply_cascade(cascade);
  return state.amplitudes();
}

// --- the randomized differential suite --------------------------------------

TEST(FusedDifferential, RandomCascadesMatchReferenceExactly) {
  // ~200 random cascades spanning wire counts and lengths, each evaluated
  // on a random basis input, swept across the full fuse-block / thread-count
  // matrix. Every configuration must reproduce the reference amplitudes.
  Rng rng(20260729);
  constexpr std::size_t kCascades = 200;
  std::vector<Cascade> cascades;
  std::vector<SimJob> jobs;
  std::vector<la::Vector> expected;
  cascades.reserve(kCascades);
  for (std::size_t i = 0; i < kCascades; ++i) {
    const std::size_t wires = 2 + rng.below(4);  // 2..5
    const std::size_t length = rng.below(25);    // 0..24
    cascades.push_back(random_cascade(rng, wires, length));
  }
  for (const Cascade& c : cascades) {
    const auto bits = static_cast<std::uint32_t>(
        rng.below(std::uint64_t(1) << c.wires()));
    jobs.push_back(SimJob{&c, bits});
    expected.push_back(reference_amplitudes(c, bits));
  }

  for (const std::size_t threads : {1u, 2u, 4u}) {
    for (const std::size_t fuse : {0u, 1u, 2u, 3u, 5u, 8u, 64u}) {
      SimOptions options;
      options.fuse_block = fuse;
      options.threads = threads;
      BatchSimulator sim(options);
      EXPECT_EQ(sim.threads(), threads);
      const std::vector<la::Vector> got = sim.run(jobs);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_LE(max_abs_diff(got[i], expected[i]), 1e-12)
            << "cascade " << cascades[i].to_string() << " fuse " << fuse
            << " threads " << threads;
      }
    }
  }
}

TEST(FusedDifferential, StateVectorFusedOverloadMatchesReference) {
  Rng rng(7);
  UnitaryCache cache;
  for (int i = 0; i < 50; ++i) {
    const std::size_t wires = 2 + rng.below(3);
    const Cascade c = random_cascade(rng, wires, rng.below(16));
    const auto bits =
        static_cast<std::uint32_t>(rng.below(std::uint64_t(1) << wires));
    SimOptions options;
    options.fuse_block = 1 + rng.below(8);
    StateVector fused = StateVector::basis(wires, bits);
    fused.apply_cascade(c, options, &cache);
    EXPECT_LE(max_abs_diff(fused.amplitudes(), reference_amplitudes(c, bits)),
              1e-12);
  }
}

TEST(FusedDifferential, FusedUnitaryMatchesReferenceUnitary) {
  Rng rng(11);
  UnitaryCache cache;
  for (int i = 0; i < 40; ++i) {
    const std::size_t wires = 2 + rng.below(3);
    const Cascade c = random_cascade(rng, wires, rng.below(12));
    SimOptions options;
    options.fuse_block = 1 + rng.below(6);
    const la::Matrix reference = cascade_unitary(c);
    const la::Matrix fused = cascade_unitary(c, options, &cache);
    EXPECT_LE(reference.max_abs_diff(fused), 1e-12) << c.to_string();
  }
}

TEST(FusedDifferential, ClassicalPermutationExtractionAgrees) {
  // Feynman/NOT-only cascades are always permutative; the fused extraction
  // must recover exactly the reference permutation.
  Rng rng(13);
  UnitaryCache cache;
  for (int i = 0; i < 50; ++i) {
    const std::size_t wires = 2 + rng.below(3);
    const Cascade c =
        random_cascade(rng, wires, rng.below(16), /*permutative_only=*/true);
    ASSERT_TRUE(is_permutative(c));
    SimOptions options;
    options.fuse_block = 1 + rng.below(6);
    EXPECT_EQ(extract_classical_permutation(c),
              extract_classical_permutation(c, options, la::kDefaultTolerance,
                                            &cache))
        << c.to_string();
  }
  // Paper circuits for good measure.
  for (const Cascade& c : synth::toffoli_cascades_fig9()) {
    SimOptions options;
    EXPECT_EQ(extract_classical_permutation(c),
              extract_classical_permutation(c, options));
  }
}

TEST(FusedDifferential, BatchedCrossCheckMatchesReferenceVerdicts) {
  // Reasonable random cascades must pass the soundness check on every
  // engine configuration, and per-cascade verdicts of the batched sweep
  // must equal the reference verdicts — including on *unreasonable*
  // cascades, where the check is expected to say false.
  Rng rng(17);
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  std::vector<Cascade> cascades;
  for (int i = 0; i < 30; ++i) {
    cascades.push_back(
        random_reasonable_cascade(rng, library, 1 + rng.below(10)));
  }
  cascades.push_back(Cascade::parse("VBA*VAB", 3));  // unreasonable
  cascades.push_back(Cascade(3));                    // empty
  std::vector<const Cascade*> pointers;
  for (const Cascade& c : cascades) pointers.push_back(&c);

  SimOptions reference_options;
  reference_options.fuse_block = 0;
  reference_options.threads = 1;
  BatchSimulator reference(reference_options);
  std::vector<char> expected;
  for (const Cascade* c : pointers) {
    expected.push_back(
        mv_model_matches_hilbert(*c, domain, 1e-9, reference) ? 1 : 0);
  }
  for (std::size_t i = 0; i + 2 < cascades.size(); ++i) {
    EXPECT_EQ(expected[i], 1)
        << "reasonable cascade failed the reference check: "
        << cascades[i].to_string();
  }
  EXPECT_EQ(expected[cascades.size() - 2], 0);

  for (const std::size_t threads : {1u, 4u}) {
    for (const std::size_t fuse : {1u, 4u, 32u}) {
      SimOptions options;
      options.fuse_block = fuse;
      options.threads = threads;
      BatchSimulator sim(options);
      EXPECT_EQ(mv_model_matches_hilbert_batch(pointers, domain, 1e-9, sim),
                expected)
          << "fuse " << fuse << " threads " << threads;
    }
  }
}

TEST(FusedDifferential, RunAllInputsEqualsUnitaryColumns) {
  const Cascade c = synth::peres_cascade_fig4();
  BatchSimulator sim;
  const std::vector<la::Vector> outputs = sim.run_all_inputs(c);
  const la::Matrix u = cascade_unitary(c);
  ASSERT_EQ(outputs.size(), 8u);
  for (std::uint32_t j = 0; j < 8; ++j) {
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_LE(std::abs(outputs[j][i] - u(i, j)), 1e-12);
    }
  }
}

// --- block-fusion algebra ----------------------------------------------------

TEST(FusionAlgebra, TrivialFusionsAreIdentityEquivalent) {
  Rng rng(23);
  UnitaryCache cache;
  const Cascade c = random_cascade(rng, 3, 9);
  const la::Matrix reference = cascade_unitary(c);

  // Block size 1: one block per gate.
  const FusedCascade per_gate(c, 1, cache);
  EXPECT_EQ(per_gate.block_count(), c.size());
  EXPECT_LE(reference.max_abs_diff(per_gate.unitary()), 1e-12);

  // Block size >= cascade length: a single block.
  const FusedCascade whole(c, c.size(), cache);
  EXPECT_EQ(whole.block_count(), 1u);
  EXPECT_LE(reference.max_abs_diff(whole.unitary()), 1e-12);
  const FusedCascade beyond(c, c.size() * 10, cache);
  EXPECT_EQ(beyond.block_count(), 1u);
  EXPECT_LE(reference.max_abs_diff(beyond.unitary()), 1e-12);
}

TEST(FusionAlgebra, EmptyCascadeFusesToIdentity) {
  UnitaryCache cache;
  const Cascade empty(3);
  const FusedCascade fused(empty, 4, cache);
  EXPECT_EQ(fused.block_count(), 0u);
  EXPECT_TRUE(fused.unitary().is_identity());
  StateVector state = StateVector::basis(3, 5);
  fused.apply(state);
  EXPECT_NEAR(state.probability_of(5), 1.0, 1e-12);
  EXPECT_EQ(cache.size(), 0u);  // nothing to fold

  // The batch engine handles empty cascades too.
  BatchSimulator sim;
  const std::vector<la::Vector> out = sim.run({SimJob{&empty, 6}});
  EXPECT_NEAR(std::abs(out[0][6]), 1.0, 1e-12);
}

TEST(FusionAlgebra, FuseBlockZeroIsRejectedByFusedCascade) {
  UnitaryCache cache;
  const Cascade c = Cascade::parse("VBA*FCA", 3);
  EXPECT_THROW((void)FusedCascade(c, 0, cache), qsyn::LogicError);
}

TEST(FusionAlgebra, CacheSharesEqualBlocksAcrossCascades) {
  // The same two-gate block opens two otherwise different cascades: the
  // cache must hand both the *same* matrix object.
  UnitaryCache cache;
  const Cascade a = Cascade::parse("VBA*FCA*VCB*V+BA", 3);
  const Cascade b = Cascade::parse("VBA*FCA*FAB*FBA", 3);
  const FusedCascade fused_a(a, 2, cache);
  const FusedCascade fused_b(b, 2, cache);
  ASSERT_EQ(fused_a.block_count(), 2u);
  ASSERT_EQ(fused_b.block_count(), 2u);
  EXPECT_EQ(fused_a.block_matrix(0).get(), fused_b.block_matrix(0).get());
  EXPECT_NE(fused_a.block_matrix(1).get(), fused_b.block_matrix(1).get());
  EXPECT_EQ(cache.size(), 3u);  // shared prefix + two distinct tails
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_EQ(cache.hits(), 1u);

  // Re-folding is pure cache traffic.
  const FusedCascade again(a, 2, cache);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(again.block_matrix(0).get(), fused_a.block_matrix(0).get());
}

TEST(FusionAlgebra, DuplicateFoldRaceCountsAsMissNotHit) {
  // Regression: a fold() that loses the publish race (another fold of the
  // same block completed while this one was folding outside the lock) used
  // to count as a *hit*, inflating serving hit-rates by exactly the
  // contended folds — even though the full fold work was done and thrown
  // away. The fold hook reproduces the race deterministically: it fires
  // after the matrix is computed but before the publish lock is re-taken,
  // and folds the same block to completion from inside that window.
  UnitaryCache cache;
  const Cascade c = Cascade::parse("VBA*FCA", 3);
  bool raced = false;
  cache.set_fold_hook([&] {
    if (raced) return;  // only the outer fold loses; the inner one publishes
    raced = true;
    const FusedCascade inner(c, 2, cache);
  });
  const FusedCascade outer(c, 2, cache);
  ASSERT_TRUE(raced);

  const UnitaryCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);  // both fold() calls did the fold work
  EXPECT_EQ(stats.duplicate_folds, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // hits + misses == completed fold() calls: the snapshot invariant.
  EXPECT_EQ(stats.hits + stats.misses, 2u);
  // The loser is handed the published matrix, not its own discarded fold.
  const FusedCascade again(c, 2, cache);
  EXPECT_EQ(again.block_matrix(0).get(), outer.block_matrix(0).get());
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(FusionAlgebra, EqualBlocksOnDifferentWireCountsAreDistinct) {
  // Same gates, different wire count: different unitaries, so the content
  // key must include the wire count.
  UnitaryCache cache;
  const Cascade narrow = Cascade::parse("VBA*FBA", 2);
  const Cascade wide = Cascade::parse("VBA*FBA", 3);
  const FusedCascade fused_narrow(narrow, 2, cache);
  const FusedCascade fused_wide(wide, 2, cache);
  EXPECT_NE(fused_narrow.block_matrix(0).get(),
            fused_wide.block_matrix(0).get());
  EXPECT_EQ(fused_narrow.block(0).rows(), 4u);
  EXPECT_EQ(fused_wide.block(0).rows(), 8u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FusionAlgebra, FullCacheStillFoldsCorrectlyWithoutStoring) {
  // The capacity bound degrades the cache to a pass-through, never to a
  // wrong answer.
  UnitaryCache tiny(/*max_bytes=*/1);
  const Cascade c = Cascade::parse("VBA*FCA*VCB", 3);
  const FusedCascade first(c, 2, tiny);
  const FusedCascade second(c, 2, tiny);
  EXPECT_EQ(tiny.size(), 0u);
  EXPECT_EQ(tiny.bytes(), 0u);
  EXPECT_EQ(tiny.hits(), 0u);
  EXPECT_EQ(tiny.misses(), 4u);  // every fold recomputed, none stored
  EXPECT_NE(first.block_matrix(0).get(), second.block_matrix(0).get());
  EXPECT_LE(cascade_unitary(c).max_abs_diff(first.unitary()), 1e-12);
  EXPECT_LE(cascade_unitary(c).max_abs_diff(second.unitary()), 1e-12);

  // A default-capacity cache stores those same blocks (8x8 complex = 1 KiB
  // each) and reports its footprint.
  UnitaryCache cache;
  const FusedCascade fused(c, 2, cache);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.bytes(), 2u * 8 * 8 * sizeof(la::Complex));
}

TEST(FusionAlgebra, BlocksAreUnitary) {
  Rng rng(29);
  UnitaryCache cache;
  for (int i = 0; i < 10; ++i) {
    const Cascade c = random_cascade(rng, 3, 3 + rng.below(10));
    const FusedCascade fused(c, 3, cache);
    for (std::size_t b = 0; b < fused.block_count(); ++b) {
      EXPECT_TRUE(fused.block(b).is_unitary());
    }
  }
}

// --- engine plumbing ---------------------------------------------------------

TEST(BatchEngine, MixedWireCountJobsInOneBatch) {
  const Cascade two = Cascade::parse("VBA*FAB", 2);
  const Cascade three = synth::peres_cascade_fig4();
  BatchSimulator sim;
  const std::vector<la::Vector> out =
      sim.run({SimJob{&two, 3}, SimJob{&three, 7}, SimJob{&two, 0}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].size(), 4u);
  EXPECT_EQ(out[1].size(), 8u);
  EXPECT_LE(max_abs_diff(out[0], reference_amplitudes(two, 3)), 1e-12);
  EXPECT_LE(max_abs_diff(out[1], reference_amplitudes(three, 7)), 1e-12);
  EXPECT_LE(max_abs_diff(out[2], reference_amplitudes(two, 0)), 1e-12);
}

TEST(BatchEngine, RepeatedCascadeFoldsOncePerBatchAndOncePerCache) {
  const Cascade c = synth::peres_cascade_fig4();
  SimOptions options;
  options.fuse_block = 2;
  options.threads = 1;
  BatchSimulator sim(options);
  std::vector<SimJob> jobs;
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    jobs.push_back(SimJob{&c, bits});
  }
  (void)sim.run(jobs);
  const std::size_t misses_after_first = sim.cache().misses();
  EXPECT_EQ(misses_after_first, 2u);  // 4 gates, blocks of 2
  (void)sim.run(jobs);
  EXPECT_EQ(sim.cache().misses(), misses_after_first);  // warm: zero folds
}

TEST(BatchEngine, RejectsNullCascadeJobs) {
  BatchSimulator sim;
  EXPECT_THROW((void)sim.run({SimJob{}}), qsyn::LogicError);
}

TEST(BatchEngine, EmptyBatchIsFine) {
  BatchSimulator sim;
  EXPECT_TRUE(sim.run({}).empty());
  EXPECT_TRUE(
      sim.check_mv_model({}, mvl::PatternDomain::reduced(3)).empty());
}

TEST(BatchEngine, FromAmplitudesValidatesDimension) {
  EXPECT_THROW((void)StateVector::from_amplitudes(la::Vector(3)),
               qsyn::LogicError);
  EXPECT_THROW((void)StateVector::from_amplitudes(la::Vector(1)),
               qsyn::LogicError);
  const StateVector s = StateVector::from_amplitudes(la::Vector::basis(8, 2));
  EXPECT_EQ(s.wires(), 3u);
  EXPECT_NEAR(s.probability_of(2), 1.0, 1e-12);
}

TEST(BatchEngine, WireMismatchedDomainFailsCheck) {
  BatchSimulator sim;
  const Cascade c = Cascade::parse("VBA", 2);
  EXPECT_FALSE(
      sim.check_mv_model_one(c, mvl::PatternDomain::reduced(3)));
}

}  // namespace
}  // namespace qsyn::sim
