// Unit tests for the serving layer: the common/metrics observability
// substrate and the multi-tenant AutomataService front end — request
// routing, validation, per-tenant backend switching, engine sharing, and
// above all serving *determinism*: the same seed and the same per-tenant
// request trace must yield identical per-tenant outcome streams no matter
// how requests pack into batches, which threads submit them, how wide the
// engine pool is, or which measurement backend computes the distributions.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "automata/automaton.h"
#include "automata/qrng.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "serve/automata_service.h"

namespace qsyn::serve {
namespace {

using automata::ControlledQrng;
using automata::MeasurementBackend;
using automata::QuantumAutomaton;

// --- metrics -----------------------------------------------------------------

TEST(Metrics, CounterAddsAndResets) {
  metrics::Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(5);
  EXPECT_EQ(counter.value(), 6u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, SmallValuesGetExactBuckets) {
  for (std::uint64_t v = 0; v < metrics::LatencyRecorder::kSubBuckets; ++v) {
    EXPECT_EQ(metrics::LatencyRecorder::bucket_for_value(v), v);
    EXPECT_EQ(metrics::LatencyRecorder::value_for_bucket(v), v);
  }
}

TEST(Metrics, BucketRoundTripBoundsTheError) {
  // value_for_bucket(bucket_for_value(v)) is the quantile the recorder
  // reports for v: an overestimate by at most one sub-bucket (12.5%).
  std::vector<std::uint64_t> values = {8,   9,    15,   16,   17, 100,
                                       103, 1000, 4096, 4097, 65535};
  for (int p = 3; p < 63; ++p) {
    values.push_back(std::uint64_t(1) << p);
    values.push_back((std::uint64_t(1) << p) + 1);
    values.push_back((std::uint64_t(1) << p) - 1);
  }
  for (const std::uint64_t v : values) {
    const std::size_t bucket = metrics::LatencyRecorder::bucket_for_value(v);
    ASSERT_LT(bucket, metrics::LatencyRecorder::kBucketCount) << v;
    const std::uint64_t upper =
        metrics::LatencyRecorder::value_for_bucket(bucket);
    EXPECT_GE(upper, v) << v;
    EXPECT_LE(upper - v, v / 8 + 1) << v;
    // Buckets are intervals: the reported upper bound maps back to the
    // same bucket.
    EXPECT_EQ(metrics::LatencyRecorder::bucket_for_value(upper), bucket) << v;
  }
}

TEST(Metrics, SnapshotReportsCountsQuantilesAndMax) {
  metrics::LatencyRecorder recorder;
  // 90 fast observations at 1ns, 10 slow at 1000ns.
  for (int i = 0; i < 90; ++i) recorder.record_ns(1);
  for (int i = 0; i < 10; ++i) recorder.record_ns(1000);
  const metrics::LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum_ns, 90u + 10u * 1000u);
  EXPECT_EQ(snap.max_ns, 1000u);
  EXPECT_DOUBLE_EQ(snap.mean_ns, (90.0 + 10.0 * 1000.0) / 100.0);
  // p50 and p90 land in the exact 1ns bucket; p99 in 1000's bucket, whose
  // upper bound overestimates by <= 12.5%.
  EXPECT_EQ(snap.p50_ns, 1u);
  EXPECT_EQ(snap.p90_ns, 1u);
  EXPECT_GE(snap.p99_ns, 1000u);
  EXPECT_LE(snap.p99_ns, 1126u);
  EXPECT_GT(snap.elapsed_seconds, 0.0);
  EXPECT_GT(snap.rate_per_sec, 0.0);
}

TEST(Metrics, EmptyRecorderSnapshotsToZeros) {
  metrics::LatencyRecorder recorder;
  const metrics::LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_ns, 0u);
  EXPECT_EQ(snap.max_ns, 0u);
  EXPECT_EQ(snap.p50_ns, 0u);
  EXPECT_EQ(snap.p99_ns, 0u);
  EXPECT_DOUBLE_EQ(snap.mean_ns, 0.0);
}

TEST(Metrics, ResetZeroesEverything) {
  metrics::LatencyRecorder recorder;
  recorder.record_ns(123);
  recorder.reset();
  const metrics::LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum_ns, 0u);
  EXPECT_EQ(snap.max_ns, 0u);
}

TEST(Metrics, ScopedTimerRecordsOnDestruction) {
  metrics::LatencyRecorder recorder;
  {
    metrics::ScopedTimer timer(recorder);
  }
  EXPECT_EQ(recorder.snapshot().count, 1u);
}

TEST(Metrics, ConcurrentRecordersLoseNothing) {
  metrics::LatencyRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.record_ns(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const metrics::LatencySnapshot snap = recorder.snapshot();
  EXPECT_EQ(snap.count, std::uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(snap.max_ns, 3001u);
}

// --- service fixtures --------------------------------------------------------

// A 3-wire automaton: wire A is the state bit; VAC makes the next state a
// fair coin whenever input bit C is 1 (same machine as the Figure-3 tests).
gates::Cascade coin_circuit() { return gates::Cascade::parse("VAC", 3); }
// Deterministic state toggle on input B (V_AB * V_AB == CNOT on binary).
gates::Cascade flip_circuit() { return gates::Cascade::parse("VAB*VAB", 3); }

ControlledQrng two_wire_qrng() {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(2);
  const gates::GateLibrary library(domain);
  auto qrng =
      ControlledQrng::synthesize(library, automata::controlled_coin_spec(2));
  EXPECT_TRUE(qrng.has_value());
  return *qrng;
}

Request step_request(std::uint64_t tenant, std::uint32_t input) {
  Request request;
  request.kind = RequestKind::kStep;
  request.tenant = tenant;
  request.input_bits = input;
  return request;
}

Request sample_request(std::uint64_t tenant, std::uint32_t input) {
  Request request;
  request.kind = RequestKind::kSample;
  request.tenant = tenant;
  request.input_bits = input;
  return request;
}

Request distribution_request(std::uint64_t tenant, std::uint32_t input) {
  Request request;
  request.kind = RequestKind::kDistribution;
  request.tenant = tenant;
  request.input_bits = input;
  return request;
}

Request backend_request(std::uint64_t tenant, MeasurementBackend backend) {
  Request request;
  request.kind = RequestKind::kSetBackend;
  request.tenant = tenant;
  request.backend = backend;
  return request;
}

// --- service basics ----------------------------------------------------------

TEST(AutomataService, RoutesStepsAndTracksState) {
  AutomataService service;
  const std::uint64_t id =
      service.add_automaton(QuantumAutomaton(flip_circuit(), 1));
  EXPECT_EQ(service.tenant_count(), 1u);

  // Input B=1 (word 0b10) toggles the state deterministically each step.
  Response first = service.submit(step_request(id, 0b10));
  ASSERT_EQ(first.status, ResponseStatus::kOk);
  EXPECT_EQ(first.word >> 2, 1u);  // next state = 1
  Response second = service.submit(step_request(id, 0b10));
  ASSERT_EQ(second.status, ResponseStatus::kOk);
  EXPECT_EQ(second.word >> 2, 0u);  // toggled back

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.step.count, 2u);
  EXPECT_EQ(stats.all.count, 2u);
}

TEST(AutomataService, DistributionMatchesTheMachine) {
  AutomataService service;
  QuantumAutomaton machine(coin_circuit(), 1);
  const std::uint64_t id = service.add_automaton(machine);

  const Response response = service.submit(distribution_request(id, 0b01));
  ASSERT_EQ(response.status, ResponseStatus::kOk);
  EXPECT_EQ(response.distribution, machine.output_distribution(0, 0b01));
}

TEST(AutomataService, QrngSamplesAndDistributions) {
  AutomataService service;
  const std::uint64_t id = service.add_qrng(two_wire_qrng());

  const Response dist = service.submit(distribution_request(id, 0b10));
  ASSERT_EQ(dist.status, ResponseStatus::kOk);
  ASSERT_EQ(dist.distribution.size(), 4u);
  EXPECT_DOUBLE_EQ(dist.distribution[0b10], 0.5);
  EXPECT_DOUBLE_EQ(dist.distribution[0b11], 0.5);

  // Samples only ever land on positive-probability outcomes.
  for (int i = 0; i < 64; ++i) {
    const Response sample = service.submit(sample_request(id, 0b10));
    ASSERT_EQ(sample.status, ResponseStatus::kOk);
    EXPECT_TRUE(sample.word == 0b10 || sample.word == 0b11) << sample.word;
  }
}

TEST(AutomataService, ValidatesTenantsKindsAndInputs) {
  AutomataService service;
  const std::uint64_t automaton =
      service.add_automaton(QuantumAutomaton(coin_circuit(), 1));
  const std::uint64_t qrng = service.add_qrng(two_wire_qrng());

  EXPECT_EQ(service.submit(step_request(automaton + qrng + 1, 0)).status,
            ResponseStatus::kUnknownTenant);
  EXPECT_EQ(service.submit(sample_request(automaton, 0)).status,
            ResponseStatus::kBadRequest);  // kSample needs a QRNG tenant
  EXPECT_EQ(service.submit(step_request(qrng, 0)).status,
            ResponseStatus::kBadRequest);  // kStep needs an automaton
  EXPECT_EQ(service.submit(step_request(automaton, 0b100)).status,
            ResponseStatus::kBadRequest);  // 2 input wires: inputs < 4
  EXPECT_EQ(service.submit(sample_request(qrng, 0b100)).status,
            ResponseStatus::kBadRequest);  // 2 wires: inputs < 4

  EXPECT_TRUE(service.remove_tenant(qrng));
  EXPECT_FALSE(service.remove_tenant(qrng));
  EXPECT_EQ(service.submit(sample_request(qrng, 0)).status,
            ResponseStatus::kUnknownTenant);
  EXPECT_EQ(service.tenant_count(), 1u);
  EXPECT_EQ(service.stats().rejected, 6u);
}

TEST(AutomataService, HilbertBackendSharesTheServiceEngine) {
  AutomataService service;
  const std::uint64_t id =
      service.add_automaton(QuantumAutomaton(coin_circuit(), 1));

  // MV traffic never touches the Hilbert engine.
  (void)service.submit(step_request(id, 0b01));
  EXPECT_EQ(service.engine_cache_stats().misses, 0u);
  EXPECT_EQ(service.stats().engine_batches, 0u);

  // After the flip, steps fold the circuit through the shared cache once
  // and serve from it thereafter.
  ASSERT_EQ(service.submit(backend_request(id, MeasurementBackend::kHilbert))
                .status,
            ResponseStatus::kOk);
  (void)service.submit(step_request(id, 0b01));
  (void)service.submit(step_request(id, 0b01));
  const sim::UnitaryCache::Stats cache = service.engine_cache_stats();
  EXPECT_GT(cache.misses, 0u);
  EXPECT_GT(cache.entries, 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.engine_batches, 2u);
  EXPECT_EQ(stats.engine_jobs, 2u);
  // Second Hilbert step found every block folded.
  EXPECT_GT(cache.hits, 0u);
}

TEST(AutomataService, BackendsYieldIdenticalDistributions) {
  // Reasonable cascades have bit-identical MV and Hilbert distributions
  // (all amplitudes dyadic) — the property the serving determinism
  // guarantee rests on.
  AutomataService service;
  const std::uint64_t id =
      service.add_automaton(QuantumAutomaton(coin_circuit(), 1));
  for (std::uint32_t input = 0; input < 4; ++input) {
    const Response mv = service.submit(distribution_request(id, input));
    ASSERT_EQ(service.submit(backend_request(id, MeasurementBackend::kHilbert))
                  .status,
              ResponseStatus::kOk);
    const Response hilbert = service.submit(distribution_request(id, input));
    EXPECT_EQ(mv.distribution, hilbert.distribution) << input;
    ASSERT_EQ(
        service.submit(backend_request(id, MeasurementBackend::kMultiValued))
            .status,
        ResponseStatus::kOk);
  }
}

TEST(AutomataService, BatchSubmissionMatchesSequential) {
  const auto run = [](bool batched) {
    AutomataService::Options options;
    options.seed = 99;
    AutomataService service(options);
    const std::uint64_t a =
        service.add_automaton(QuantumAutomaton(coin_circuit(), 1));
    const std::uint64_t q = service.add_qrng(two_wire_qrng());
    std::vector<Request> trace;
    for (int i = 0; i < 32; ++i) {
      trace.push_back(step_request(a, 0b01));
      trace.push_back(sample_request(q, 0b10));
    }
    std::vector<std::uint32_t> words;
    if (batched) {
      for (const Response& response : service.submit_batch(trace)) {
        words.push_back(response.word);
      }
    } else {
      for (const Request& request : trace) {
        words.push_back(service.submit(request).word);
      }
    }
    return words;
  };
  EXPECT_EQ(run(true), run(false));
}

// --- serving determinism -----------------------------------------------------

// One tenant's scripted traffic: requests issued in order, outcome words
// collected in order.
struct TenantScript {
  enum class Type { kAutomaton, kFlipAutomaton, kQrng };
  Type type = Type::kAutomaton;
  std::vector<Request> requests;  // tenant ids patched in at run time
};

// Three tenants with interleaved backend flips baked into their traces.
std::vector<TenantScript> determinism_scripts() {
  std::vector<TenantScript> scripts(3);
  scripts[0].type = TenantScript::Type::kAutomaton;
  scripts[1].type = TenantScript::Type::kFlipAutomaton;
  scripts[2].type = TenantScript::Type::kQrng;
  for (int i = 0; i < 48; ++i) {
    // Tenant 0: coin automaton, input C=1; Hilbert for the middle third.
    if (i == 16) {
      scripts[0].requests.push_back(
          backend_request(0, MeasurementBackend::kHilbert));
    }
    if (i == 32) {
      scripts[0].requests.push_back(
          backend_request(0, MeasurementBackend::kMultiValued));
    }
    scripts[0].requests.push_back(step_request(0, 0b01));
    // Tenant 1: flip automaton, alternating inputs; one flip to Hilbert.
    if (i == 24) {
      scripts[1].requests.push_back(
          backend_request(0, MeasurementBackend::kHilbert));
    }
    scripts[1].requests.push_back(step_request(0, i % 2 == 0 ? 0b10 : 0b00));
    // Tenant 2: QRNG, armed and unarmed inputs; flip at the start.
    if (i == 0) {
      scripts[2].requests.push_back(
          backend_request(0, MeasurementBackend::kHilbert));
    }
    scripts[2].requests.push_back(sample_request(0, i % 4 == 0 ? 0b01 : 0b10));
  }
  return scripts;
}

// Builds the service, registers the scripted tenants (in script order, so
// rng streams reproduce), and patches tenant ids into the requests.
std::vector<std::uint64_t> register_tenants(AutomataService& service,
                                            std::vector<TenantScript>& scripts) {
  std::vector<std::uint64_t> ids;
  for (TenantScript& script : scripts) {
    std::uint64_t id = 0;
    switch (script.type) {
      case TenantScript::Type::kAutomaton:
        id = service.add_automaton(QuantumAutomaton(coin_circuit(), 1));
        break;
      case TenantScript::Type::kFlipAutomaton:
        id = service.add_automaton(QuantumAutomaton(flip_circuit(), 1));
        break;
      case TenantScript::Type::kQrng:
        id = service.add_qrng(two_wire_qrng());
        break;
    }
    for (Request& request : script.requests) request.tenant = id;
    ids.push_back(id);
  }
  return ids;
}

// Per-tenant outcome streams (kStep/kSample words, in request order).
using Streams = std::vector<std::vector<std::uint32_t>>;

Streams run_sequential(std::size_t engine_threads) {
  AutomataService::Options options;
  options.seed = 4242;
  options.sim.threads = engine_threads;
  AutomataService service(options);
  std::vector<TenantScript> scripts = determinism_scripts();
  register_tenants(service, scripts);
  Streams streams(scripts.size());
  // Round-robin across tenants, one request each per turn.
  for (std::size_t turn = 0;; ++turn) {
    bool any = false;
    for (std::size_t t = 0; t < scripts.size(); ++t) {
      if (turn >= scripts[t].requests.size()) continue;
      any = true;
      const Response response = service.submit(scripts[t].requests[turn]);
      EXPECT_EQ(response.status, ResponseStatus::kOk);
      if (scripts[t].requests[turn].kind != RequestKind::kSetBackend) {
        streams[t].push_back(response.word);
      }
    }
    if (!any) break;
  }
  return streams;
}

Streams run_one_batch() {
  AutomataService::Options options;
  options.seed = 4242;
  AutomataService service(options);
  std::vector<TenantScript> scripts = determinism_scripts();
  register_tenants(service, scripts);
  // All tenants' traffic in one submit_batch, tenant-major order (per-tenant
  // order is what matters; the cross-tenant packing must not).
  std::vector<Request> flat;
  std::vector<std::size_t> owner;
  for (std::size_t t = 0; t < scripts.size(); ++t) {
    for (const Request& request : scripts[t].requests) {
      flat.push_back(request);
      owner.push_back(t);
    }
  }
  const std::vector<Response> responses = service.submit_batch(flat);
  Streams streams(scripts.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].status, ResponseStatus::kOk);
    if (flat[i].kind != RequestKind::kSetBackend) {
      streams[owner[i]].push_back(responses[i].word);
    }
  }
  return streams;
}

Streams run_threaded() {
  AutomataService::Options options;
  options.seed = 4242;
  AutomataService service(options);
  std::vector<TenantScript> scripts = determinism_scripts();
  register_tenants(service, scripts);
  Streams streams(scripts.size());
  // One submitter thread per tenant: per-tenant order is preserved by the
  // thread, cross-tenant interleaving is whatever the scheduler does, and
  // concurrent submits coalesce through the combining queue.
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < scripts.size(); ++t) {
    submitters.emplace_back([&service, &scripts, &streams, t] {
      for (const Request& request : scripts[t].requests) {
        const Response response = service.submit(request);
        EXPECT_EQ(response.status, ResponseStatus::kOk);
        if (request.kind != RequestKind::kSetBackend) {
          streams[t].push_back(response.word);
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  return streams;
}

TEST(ServingDeterminism, StreamsSurviveBatchingThreadsAndBackends) {
  const Streams reference = run_sequential(1);
  ASSERT_EQ(reference.size(), 3u);
  for (const auto& stream : reference) EXPECT_EQ(stream.size(), 48u);

  // Same trace, different packing: one giant batch.
  EXPECT_EQ(run_one_batch(), reference);
  // Same trace, concurrent per-tenant submitter threads.
  EXPECT_EQ(run_threaded(), reference);
  EXPECT_EQ(run_threaded(), reference);
  // Same trace, wider engine pool.
  EXPECT_EQ(run_sequential(4), reference);
}

TEST(ServingDeterminism, BackendChoiceNeverChangesTheStream) {
  // The same scripted traffic with every tenant pinned kMultiValued vs
  // pinned kHilbert: one uniform draw per step/sample over bit-identical
  // distributions, so the outcome streams match word for word.
  const auto run_pinned = [](MeasurementBackend backend) {
    AutomataService::Options options;
    options.seed = 7;
    AutomataService service(options);
    const std::uint64_t a =
        service.add_automaton(QuantumAutomaton(coin_circuit(), 1));
    const std::uint64_t f =
        service.add_automaton(QuantumAutomaton(flip_circuit(), 1));
    const std::uint64_t q = service.add_qrng(two_wire_qrng());
    for (const std::uint64_t id : {a, f, q}) {
      EXPECT_EQ(service.submit(backend_request(id, backend)).status,
                ResponseStatus::kOk);
    }
    Streams streams(3);
    for (int i = 0; i < 40; ++i) {
      streams[0].push_back(service.submit(step_request(a, 0b01)).word);
      streams[1].push_back(
          service.submit(step_request(f, i % 2 == 0 ? 0b10 : 0b01)).word);
      streams[2].push_back(
          service.submit(sample_request(q, i % 4 == 0 ? 0b01 : 0b11)).word);
    }
    return streams;
  };
  EXPECT_EQ(run_pinned(MeasurementBackend::kMultiValued),
            run_pinned(MeasurementBackend::kHilbert));
}

TEST(AutomataService, ConcurrentMixedTenantsServeConsistently) {
  // Race coverage (tsan runs this suite whole-binary): many submitter
  // threads with distinct tenants, mixed kinds, churn, and stats readers.
  AutomataService service;
  constexpr std::size_t kThreads = 4;
  std::vector<std::uint64_t> ids;
  for (std::size_t t = 0; t < kThreads; ++t) {
    ids.push_back(service.add_automaton(QuantumAutomaton(coin_circuit(), 1)));
  }
  const std::uint64_t shared_qrng = service.add_qrng(two_wire_qrng());

  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&service, &ids, shared_qrng, t] {
      for (int i = 0; i < 64; ++i) {
        if (i == 20 || i == 40) {
          (void)service.submit(backend_request(
              ids[t], i == 20 ? MeasurementBackend::kHilbert
                              : MeasurementBackend::kMultiValued));
        }
        const Response step = service.submit(step_request(ids[t], 0b01));
        EXPECT_EQ(step.status, ResponseStatus::kOk);
        const Response sample =
            service.submit(sample_request(shared_qrng, 0b10));
        EXPECT_EQ(sample.status, ResponseStatus::kOk);
        if (i % 16 == 0) {
          (void)service.stats();
          (void)service.engine_cache_stats();
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests, kThreads * (64 * 2 + 2));
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.all.count, stats.requests);
  EXPECT_EQ(stats.step.count, kThreads * 64u);
  EXPECT_EQ(stats.sample.count, kThreads * 64u);
}

}  // namespace
}  // namespace qsyn::serve
