// Tests for behavior-example learning (the paper's future-work feature):
// sample a known quantum circuit's measured behavior, recover the spec, and
// resynthesize an equivalent circuit.
#include <gtest/gtest.h>

#include "automata/learn.h"
#include "automata/measurement.h"
#include "common/error.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"

namespace qsyn::automata {
namespace {

const gates::GateLibrary& library3() {
  static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  static const gates::GateLibrary lib(domain);
  return lib;
}

TEST(Learn, InferSpecOfDeterministicCircuit) {
  // A CNOT's behavior is deterministic; 16 samples per input suffice.
  Rng rng(1);
  const gates::Cascade circuit = gates::Cascade::parse("FCA", 3);
  const auto samples = sample_behavior(circuit, 16, rng);
  const auto learned = infer_spec(3, samples);
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(learned->min_samples_per_input, 16u);
  for (std::uint32_t input = 0; input < 8; ++input) {
    const mvl::Pattern output =
        circuit.apply(mvl::Pattern::from_binary(3, input));
    EXPECT_TRUE(learned->spec.accepts(input, output));
  }
}

TEST(Learn, InferSpecOfCoinCircuit) {
  Rng rng(2);
  const gates::Cascade circuit = gates::Cascade::parse("VCA", 3);
  const auto samples = sample_behavior(circuit, 64, rng);
  const auto learned = infer_spec(3, samples);
  ASSERT_TRUE(learned.has_value());
  // Inputs with A = 1 must have wire C classified as a coin.
  const auto& row = learned->spec.behavior_for(0b100);
  EXPECT_EQ(row[0], WireBehavior::kOne);
  EXPECT_EQ(row[1], WireBehavior::kZero);
  EXPECT_EQ(row[2], WireBehavior::kCoin);
}

TEST(Learn, UndersampledInputsRejected) {
  Rng rng(3);
  const auto samples =
      sample_behavior(gates::Cascade::parse("FCA", 3), 4, rng);
  EXPECT_FALSE(infer_spec(3, samples, /*min_samples=*/16).has_value());
  EXPECT_TRUE(infer_spec(3, samples, /*min_samples=*/4).has_value());
}

TEST(Learn, MissingInputRejected) {
  Rng rng(4);
  auto samples = sample_behavior(gates::Cascade::parse("FCA", 3), 16, rng);
  // Drop every sample of input 5.
  std::vector<BehaviorSample> filtered;
  for (const auto& s : samples) {
    if (s.input != 5) filtered.push_back(s);
  }
  EXPECT_FALSE(infer_spec(3, filtered).has_value());
}

TEST(Learn, NonQuaternaryBehaviorRejected) {
  // A 3/4-biased wire cannot come from the four-valued model.
  Rng rng(5);
  std::vector<BehaviorSample> samples;
  for (std::uint32_t input = 0; input < 8; ++input) {
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t biased_bit = rng.bernoulli(0.75) ? 1u : 0u;
      samples.push_back({input, (input & 0b110u) | biased_bit});
    }
  }
  EXPECT_FALSE(infer_spec(3, samples, 16, 0.15).has_value());
}

TEST(Learn, MalformedSamplesThrow) {
  EXPECT_THROW((void)infer_spec(3, {{8, 0}}), qsyn::LogicError);
  EXPECT_THROW((void)infer_spec(3, {{0, 9}}), qsyn::LogicError);
  EXPECT_THROW((void)infer_spec(3, {}, 16, 0.4), qsyn::LogicError);
}

TEST(Learn, EndToEndRecoversEquivalentCircuit) {
  // Sample a 2-gate probabilistic circuit, learn a circuit from samples
  // only, and verify the learned circuit's exact distribution matches the
  // source on every input.
  Rng rng(6);
  const gates::Cascade source = gates::Cascade::parse("FAC*VAB", 3);
  const auto samples = sample_behavior(source, 128, rng);
  const auto learned = learn_circuit(library3(), samples);
  ASSERT_TRUE(learned.has_value());
  EXPECT_LE(learned->size(), source.size());
  for (std::uint32_t input = 0; input < 8; ++input) {
    const auto want = outcome_distribution(
        source.apply(mvl::Pattern::from_binary(3, input)));
    const auto got = outcome_distribution(
        learned->apply(mvl::Pattern::from_binary(3, input)));
    for (std::size_t o = 0; o < want.size(); ++o) {
      EXPECT_NEAR(want[o], got[o], 1e-12) << "input " << input;
    }
  }
}

TEST(Learn, EndToEndOnDeterministicToffoliBehavior) {
  Rng rng(7);
  const gates::Cascade toffoli =
      gates::Cascade::parse("FBA*V+CB*FBA*VCA*VCB", 3);
  const auto samples = sample_behavior(toffoli, 16, rng);
  const auto learned = learn_circuit(library3(), samples, 7);
  ASSERT_TRUE(learned.has_value());
  // The learned circuit must compute the same reversible function (it may
  // be any of the minimal realizations).
  EXPECT_EQ(learned->to_binary_permutation(),
            toffoli.to_binary_permutation());
  EXPECT_EQ(learned->size(), 5u);
}

}  // namespace
}  // namespace qsyn::automata
