// Unit tests for qsyn/gates: cascades, the reasonable-product predicate,
// truth tables (the paper's Table 1), and the Figures 4-9 circuit formulas.
#include <gtest/gtest.h>

#include "common/error.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "gates/truth_table.h"
#include "mvl/domain.h"
#include "synth/specs.h"

namespace qsyn::gates {
namespace {

using mvl::Pattern;
using mvl::PatternDomain;

TEST(Cascade, EmptyIsIdentity) {
  const Cascade c(3);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.to_string(), "()");
  EXPECT_EQ(c.apply(Pattern::parse("1,V0,0")), Pattern::parse("1,V0,0"));
  EXPECT_TRUE(c.to_binary_permutation().is_identity());
  EXPECT_EQ(c.cost(), 0u);
}

TEST(Cascade, ParsePrintRoundTrip) {
  const std::string text = "VCB*FBA*VCA*V+CB";
  EXPECT_EQ(Cascade::parse(text).to_string(), text);
  EXPECT_EQ(Cascade::parse(text).size(), 4u);
  EXPECT_EQ(Cascade::parse(text).wires(), 3u);
}

TEST(Cascade, ParseInfersWireCount) {
  EXPECT_EQ(Cascade::parse("FBA").wires(), 2u);
  EXPECT_EQ(Cascade::parse("FBA*VCA").wires(), 3u);
  EXPECT_EQ(Cascade::parse("FBA", 4).wires(), 4u);
  EXPECT_THROW(Cascade::parse("VCA", 2), qsyn::ParseError);
  EXPECT_THROW(Cascade::parse("VBA**FBA"), qsyn::ParseError);
}

TEST(Cascade, AppendChecksWires) {
  Cascade c(2);
  EXPECT_NO_THROW(c.append(Gate::feynman(0, 1)));
  EXPECT_THROW(c.append(Gate::feynman(2, 0)), qsyn::LogicError);
}

TEST(Cascade, CostModels) {
  const Cascade c = Cascade::parse("VCB*FBA*VCA*V+CB");
  EXPECT_EQ(c.cost(), 4u);
  const CostModel nmr = CostModel::nmr_like();
  EXPECT_EQ(c.cost(nmr), 3u + 2u + 3u + 3u);
}

TEST(Cascade, PeresFormulaOnAllBinaryInputs) {
  // Figure 4: P = A, Q = B^A, R = C^AB.
  const Cascade peres = synth::peres_cascade_fig4();
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    const std::uint32_t a = bits >> 2 & 1, b = bits >> 1 & 1, c = bits & 1;
    const Pattern out = peres.apply(Pattern::from_binary(3, bits));
    ASSERT_TRUE(out.is_binary());
    EXPECT_EQ(out.binary_value(),
              (a << 2 | (b ^ a) << 1 | (c ^ (a & b))));
  }
}

TEST(Cascade, G2FormulaOnAllBinaryInputs) {
  // Figure 5: P = A, Q = B^AC', R = C^A.
  const Cascade g2 = synth::g2_cascade_fig5();
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    const std::uint32_t a = bits >> 2 & 1, b = bits >> 1 & 1, c = bits & 1;
    const Pattern out = g2.apply(Pattern::from_binary(3, bits));
    ASSERT_TRUE(out.is_binary());
    EXPECT_EQ(out.binary_value(),
              (a << 2 | (b ^ (a & (c ^ 1u))) << 1 | (c ^ a)));
  }
}

TEST(Cascade, G3FormulaOnAllBinaryInputs) {
  // Figure 6: P = A, Q = B^A, R = C^A'B.
  const Cascade g3 = synth::g3_cascade_fig6();
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    const std::uint32_t a = bits >> 2 & 1, b = bits >> 1 & 1, c = bits & 1;
    const Pattern out = g3.apply(Pattern::from_binary(3, bits));
    ASSERT_TRUE(out.is_binary());
    EXPECT_EQ(out.binary_value(),
              (a << 2 | (b ^ a) << 1 | (c ^ ((a ^ 1u) & b))));
  }
}

TEST(Cascade, G4FormulaOnAllBinaryInputs) {
  // Figure 7: P = A, Q = B^A, R = C'^A'B'.
  const Cascade g4 = synth::g4_cascade_fig7();
  for (std::uint32_t bits = 0; bits < 8; ++bits) {
    const std::uint32_t a = bits >> 2 & 1, b = bits >> 1 & 1, c = bits & 1;
    const Pattern out = g4.apply(Pattern::from_binary(3, bits));
    ASSERT_TRUE(out.is_binary());
    EXPECT_EQ(out.binary_value(),
              (a << 2 | (b ^ a) << 1 | ((c ^ 1u) ^ ((a ^ 1u) & (b ^ 1u)))));
  }
}

TEST(Cascade, PaperPermutationsOfFigures) {
  // The binary permutations printed in Section 5.
  EXPECT_EQ(synth::peres_cascade_fig4().to_binary_permutation(),
            synth::peres_perm());
  EXPECT_EQ(synth::peres_cascade_fig8().to_binary_permutation(),
            synth::peres_perm());
  EXPECT_EQ(synth::g2_cascade_fig5().to_binary_permutation(),
            synth::g2_perm());
  EXPECT_EQ(synth::g3_cascade_fig6().to_binary_permutation(),
            synth::g3_perm());
  EXPECT_EQ(synth::g4_cascade_fig7().to_binary_permutation(),
            synth::g4_perm());
}

TEST(Cascade, AllFourToffoliImplementationsRealizeToffoli) {
  for (const Cascade& c : synth::toffoli_cascades_fig9()) {
    EXPECT_EQ(c.to_binary_permutation(), synth::toffoli_perm())
        << c.to_string();
    EXPECT_EQ(c.cost(), 5u);
  }
}

TEST(Cascade, Fig9PairsAreHermitianAdjoints) {
  const auto figs = synth::toffoli_cascades_fig9();
  EXPECT_EQ(figs[0].adjoint().to_string(),
            "V+CB*V+CA*FBA*VCB*FBA");  // reversal of (b)'s gates
  // More structurally: adjoint of each realizes Toffoli too (self-inverse).
  for (const Cascade& c : figs) {
    EXPECT_EQ(c.adjoint().to_binary_permutation(), synth::toffoli_perm());
  }
}

TEST(Cascade, ToBinaryPermutationRejectsMixedOutputs) {
  const Cascade c = Cascade::parse("VBA", 3);
  EXPECT_FALSE(c.is_binary_preserving());
  EXPECT_THROW((void)c.to_binary_permutation(), qsyn::LogicError);
}

TEST(Cascade, AdjointInvertsDomainPermutation) {
  const PatternDomain domain = PatternDomain::reduced(3);
  const Cascade c = synth::peres_cascade_fig4();
  const auto p = c.to_permutation(domain);
  const auto q = c.adjoint().to_permutation(domain);
  EXPECT_TRUE((p * q).is_identity());
}

TEST(Cascade, ReasonablePredicateAcceptsPaperCircuits) {
  const PatternDomain domain = PatternDomain::reduced(3);
  EXPECT_TRUE(synth::peres_cascade_fig4().is_reasonable(domain));
  EXPECT_TRUE(synth::g2_cascade_fig5().is_reasonable(domain));
  for (const Cascade& c : synth::toffoli_cascades_fig9()) {
    EXPECT_TRUE(c.is_reasonable(domain));
  }
}

TEST(Cascade, ReasonableRejectsMixedControl) {
  const PatternDomain domain = PatternDomain::reduced(3);
  // VBA makes B mixed on inputs with A=1; a gate controlled by B must not
  // follow ("VAB" has control B), nor may a Feynman touching B.
  EXPECT_FALSE(Cascade::parse("VBA*VAB", 3).is_reasonable(domain));
  EXPECT_FALSE(Cascade::parse("VBA*FBA", 3).is_reasonable(domain));
  EXPECT_FALSE(Cascade::parse("VBA*FCB", 3).is_reasonable(domain));
  // Gates avoiding B are fine.
  EXPECT_TRUE(Cascade::parse("VBA*VCA", 3).is_reasonable(domain));
  EXPECT_TRUE(Cascade::parse("VBA*FCA", 3).is_reasonable(domain));
}

TEST(Cascade, VSquaredActsAsCnotOnBinaryInputs) {
  const Cascade c = Cascade::parse("VBA*VBA", 3);
  EXPECT_TRUE(c.is_binary_preserving());
  Cascade f(3);
  f.append(Gate::feynman(1, 0));
  EXPECT_EQ(c.to_binary_permutation(), f.to_binary_permutation());
}

TEST(Cascade, DiagramHasOneRowPerWireAndGateBoxes) {
  const std::string d = synth::peres_cascade_fig4().to_diagram();
  EXPECT_NE(d.find("A -"), std::string::npos);
  EXPECT_NE(d.find("C -"), std::string::npos);
  EXPECT_NE(d.find("[V ]"), std::string::npos);
  EXPECT_NE(d.find("[V+]"), std::string::npos);
  EXPECT_NE(d.find("(+)"), std::string::npos);
  EXPECT_EQ(std::count(d.begin(), d.end(), '\n'), 2);
}

// --- Table 1 -------------------------------------------------------------------

TEST(TruthTable, Table1PermutationIs3748) {
  // The 2-qubit controlled-V gate's truth table: permutation (3,7,4,8).
  const PatternDomain full2 = PatternDomain::full(2);
  const TruthTable t = make_truth_table(Gate::ctrl_v(1, 0), full2);
  EXPECT_EQ(t.to_permutation().to_cycle_string(), "(3,7,4,8)");
}

TEST(TruthTable, Table1RowSpotChecks) {
  const PatternDomain full2 = PatternDomain::full(2);
  const TruthTable t = make_truth_table(Gate::ctrl_v(1, 0), full2);
  ASSERT_EQ(t.rows.size(), 16u);
  // Row 3: input (1,0) -> output (1,V0) = label 7.
  EXPECT_EQ(t.rows[2].input, Pattern::parse("1,0"));
  EXPECT_EQ(t.rows[2].output, Pattern::parse("1,V0"));
  EXPECT_EQ(t.rows[2].output_label, 7u);
  // Row 7: input (1,V0) -> output (1,1) = label 4.
  EXPECT_EQ(t.rows[6].input, Pattern::parse("1,V0"));
  EXPECT_EQ(t.rows[6].output_label, 4u);
  // Row 8: input (1,V1) -> output (1,0) = label 3.
  EXPECT_EQ(t.rows[7].output_label, 3u);
  // Don't-care rows keep their inputs.
  for (std::size_t i = 8; i < 16; ++i) {
    EXPECT_EQ(t.rows[i].input, t.rows[i].output);
  }
}

TEST(TruthTable, RendersAllLabels) {
  const PatternDomain full2 = PatternDomain::full(2);
  const TruthTable t = make_truth_table(Gate::ctrl_v(1, 0), full2);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("V0"), std::string::npos);
  EXPECT_NE(text.find("16"), std::string::npos);
  EXPECT_NE(text.find(" A"), std::string::npos);
  EXPECT_NE(text.find(" Q"), std::string::npos);
}

TEST(TruthTable, CascadeTableMatchesPermProduct) {
  const PatternDomain domain = PatternDomain::reduced(3);
  const Cascade c = synth::peres_cascade_fig4();
  const TruthTable t = make_truth_table(c, domain);
  EXPECT_EQ(t.to_permutation(), c.to_permutation(domain));
}

}  // namespace
}  // namespace qsyn::gates
