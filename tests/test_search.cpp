// Tests for the SynthesisBackend seam and the topology-guided DFS engine:
// ClosureBackend answers must be byte-identical to the bare McExpressor,
// and TopologySearchBackend must agree with the closure on cost for every
// closure-reachable target (the cross-backend differential), while reaching
// widths/costs the in-memory closure cannot hold (the 5-wire acceptance
// case).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/permutation.h"
#include "sim/cross_check.h"
#include "synth/backend.h"
#include "synth/catalog_server.h"
#include "synth/mce.h"
#include "synth/search/topology_search.h"
#include "synth/search/visited_set.h"
#include "synth/specs.h"

namespace qsyn::synth {
namespace {

// ---------------------------------------------------------------------------
// VisitedSet (the DFS transposition memo)

TEST(VisitedSet, AdmitsUnseenAndPrunesRevisits) {
  VisitedSet memo(8, 38, /*budget_bytes=*/0);
  const std::uint8_t a[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::uint8_t b[8] = {1, 0, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(memo.admit(a, 3));
  EXPECT_TRUE(memo.admit(b, 3));   // different state
  EXPECT_FALSE(memo.admit(a, 3));  // same depth: prune
  EXPECT_FALSE(memo.admit(a, 5));  // deeper: prune
  EXPECT_TRUE(memo.admit(a, 1));   // strictly shallower: re-explore
  EXPECT_FALSE(memo.admit(a, 2));  // record was lowered to 1
  EXPECT_EQ(memo.rows(), 2u);
}

TEST(VisitedSet, GrowsPastInitialIndexCapacity) {
  VisitedSet memo(8, 782, /*budget_bytes=*/0);
  EXPECT_EQ(memo.row_stride(), 16u);  // 2-byte labels past 256
  std::uint8_t row[16] = {0};
  for (std::uint32_t i = 0; i < 5000; ++i) {
    row[0] = static_cast<std::uint8_t>(i >> 8);
    row[1] = static_cast<std::uint8_t>(i);
    EXPECT_TRUE(memo.admit(row, 2));
  }
  EXPECT_EQ(memo.rows(), 5000u);
  row[0] = 0;
  row[1] = 42;
  EXPECT_FALSE(memo.admit(row, 2));  // still found after index growth
}

TEST(VisitedSet, BudgetStopsRecordingButKeepsExploring) {
  VisitedSet memo(8, 38, /*budget_bytes=*/4 * 8);
  std::uint8_t row[8] = {0};
  for (std::uint8_t i = 0; i < 4; ++i) {
    row[0] = i;
    EXPECT_TRUE(memo.admit(row, 1));
  }
  EXPECT_FALSE(memo.saturated());
  row[0] = 4;
  EXPECT_TRUE(memo.admit(row, 1));  // over budget: explored, not recorded
  EXPECT_TRUE(memo.saturated());
  EXPECT_EQ(memo.rows(), 4u);
  EXPECT_TRUE(memo.admit(row, 1));  // and again (no dedup once saturated)
  row[0] = 0;
  EXPECT_FALSE(memo.admit(row, 1));  // recorded states still prune
}

TEST(VisitedSet, ClearForgetsStatesAndSaturation) {
  VisitedSet memo(8, 38, /*budget_bytes=*/8);
  std::uint8_t row[8] = {0};
  EXPECT_TRUE(memo.admit(row, 0));
  row[0] = 1;
  EXPECT_TRUE(memo.admit(row, 0));
  EXPECT_TRUE(memo.saturated());
  memo.clear();
  EXPECT_FALSE(memo.saturated());
  EXPECT_EQ(memo.rows(), 0u);
  EXPECT_TRUE(memo.admit(row, 4));  // unseen again after clear
}

// ---------------------------------------------------------------------------
// ClosureBackend: a transparent adapter over McExpressor

class Backend3 : public ::testing::Test {
 protected:
  static const gates::GateLibrary& lib() {
    static const gates::GateLibrary library = gates::GateLibrary::standard(3);
    return library;
  }
};

TEST_F(Backend3, ClosureBackendMatchesBareExpressorByteForByte) {
  ClosureBackend backend(lib(), 7);
  McExpressor bare(lib(), 7);
  const std::vector<perm::Permutation> targets = {
      perm::Permutation::identity(8),
      perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8),
      peres_perm(),
      toffoli_perm(),
      fredkin_perm(),
      g2_perm(),
      g3_perm(),
      g4_perm(),
      swap_bc_perm()};
  for (const auto& target : targets) {
    const auto via_seam = backend.synthesize(target);
    const auto direct = bare.synthesize(target);
    ASSERT_EQ(via_seam.has_value(), direct.has_value());
    ASSERT_TRUE(via_seam.has_value());
    EXPECT_EQ(via_seam->cost, direct->cost);
    EXPECT_EQ(via_seam->circuit, direct->circuit);
    EXPECT_EQ(via_seam->core, direct->core);
    EXPECT_EQ(via_seam->not_prefix, direct->not_prefix);
    const auto answer = backend.locate(target);
    ASSERT_TRUE(answer.has_value());
    EXPECT_EQ(answer->cost, direct->cost);
    EXPECT_EQ(answer->not_prefix, direct->not_prefix);
  }
}

TEST_F(Backend3, ClosureBackendInfo) {
  ClosureBackend backend(lib(), 6);
  const BackendInfo info = backend.info();
  EXPECT_EQ(info.name, "closure");
  EXPECT_TRUE(info.exact);
  EXPECT_TRUE(info.deepens_on_miss);
  EXPECT_TRUE(info.enumerates_implementations);
  EXPECT_EQ(info.max_cost, 6u);
  EXPECT_EQ(info.library_fingerprint, lib().fingerprint());
  EXPECT_EQ(info.domain_fingerprint, lib().domain().fingerprint());
  EXPECT_EQ(backend.max_cost(), 6u);
  EXPECT_EQ(&backend.library(), &lib());
}

TEST_F(Backend3, DefaultBatchLoopsOverSynthesize) {
  ClosureBackend backend(lib(), 7);
  const std::vector<perm::Permutation> targets = {peres_perm(),
                                                  toffoli_perm()};
  const auto batch = backend.synthesize_batch(targets);
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].has_value());
  ASSERT_TRUE(batch[1].has_value());
  EXPECT_EQ(batch[0]->cost, 4u);
  EXPECT_EQ(batch[1]->cost, 5u);
}

// ---------------------------------------------------------------------------
// TopologySearchBackend: basics

TEST_F(Backend3, SearchInfo) {
  SearchConfig config;
  config.max_cost = 5;
  TopologySearchBackend search(lib(), config);
  const BackendInfo info = search.info();
  EXPECT_EQ(info.name, "topology-search");
  EXPECT_TRUE(info.exact);
  EXPECT_TRUE(info.deepens_on_miss);
  EXPECT_FALSE(info.enumerates_implementations);
  EXPECT_EQ(info.max_cost, 5u);
  EXPECT_EQ(info.library_fingerprint, lib().fingerprint());
  EXPECT_EQ(info.domain_fingerprint, lib().domain().fingerprint());
}

TEST_F(Backend3, SearchIdentityCostsZero) {
  TopologySearchBackend search(lib());
  const auto result = search.synthesize(perm::Permutation::identity(8));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_TRUE(result->circuit.empty());
}

TEST_F(Backend3, SearchPureNotCircuitCostsZero) {
  const auto target = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  TopologySearchBackend search(lib());
  const auto result = search.synthesize(target);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  ASSERT_EQ(result->not_prefix.size(), 1u);
  EXPECT_EQ(result->not_prefix[0], gates::Gate::not_gate(2));
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, target));
}

TEST_F(Backend3, SearchPeresCostsFourAndVerifies) {
  TopologySearchBackend search(lib());
  const auto result = search.synthesize(peres_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 4u);
  EXPECT_TRUE(result->not_prefix.empty());
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, peres_perm()));
  EXPECT_GE(search.stats().deepest_iteration, 4u);
}

TEST_F(Backend3, SearchToffoliWithNotPrefixVerifies) {
  // Toffoli conjugated into a different coset: NOT on wire A times Toffoli.
  const auto not_a =
      perm::Permutation::from_cycles("(1,5)(2,6)(3,7)(4,8)", 8);
  const auto target = not_a * toffoli_perm();
  TopologySearchBackend search(lib());
  McExpressor closure(lib(), 7);
  const auto via_search = search.synthesize(target);
  const auto via_closure = closure.synthesize(target);
  ASSERT_TRUE(via_search.has_value());
  ASSERT_TRUE(via_closure.has_value());
  EXPECT_EQ(via_search->cost, via_closure->cost);
  EXPECT_FALSE(via_search->not_prefix.empty());
  EXPECT_TRUE(sim::realizes_permutation(via_search->circuit, target));
}

TEST_F(Backend3, SearchMissBeyondMaxCost) {
  SearchConfig config;
  config.max_cost = 3;
  TopologySearchBackend search(lib(), config);
  EXPECT_FALSE(search.synthesize(peres_perm()).has_value());  // cost 4
  EXPECT_FALSE(search.locate(toffoli_perm()).has_value());    // cost 5
}

TEST_F(Backend3, SearchLocateReturnsCostAndPrefix) {
  TopologySearchBackend search(lib());
  const auto answer = search.locate(peres_perm());
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->cost, 4u);
  EXPECT_TRUE(answer->not_prefix.empty());
}

// ---------------------------------------------------------------------------
// Cross-backend differential: the DFS engine must agree with the closure on
// every closure-reachable 3-qubit circuit at cb = 5, and each cascade it
// returns must simulate to its target exactly.

TEST_F(Backend3, DifferentialEveryClosureTargetAtCb5) {
  McExpressor closure(lib(), 5);
  // Deepen the closure to level 5 (Toffoli's minimal cost is 5).
  const auto toffoli_cost = closure.minimal_cost(toffoli_perm());
  ASSERT_TRUE(toffoli_cost.has_value());
  ASSERT_EQ(*toffoli_cost, 5u);
  const FmcfEnumerator& fmcf = closure.enumerator();
  ASSERT_GE(fmcf.levels_done(), 5u);

  std::vector<perm::Permutation> targets;
  std::vector<unsigned> expected_cost;
  for (unsigned k = 1; k <= 5; ++k) {
    for (auto& g : fmcf.g_set(k)) {
      targets.push_back(std::move(g));
      expected_cost.push_back(k);
    }
  }
  ASSERT_FALSE(targets.empty());

  SearchConfig config;
  config.max_cost = 5;
  TopologySearchBackend search(lib(), config);
  const auto answers = search.synthesize_batch(targets);
  ASSERT_EQ(answers.size(), targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ASSERT_TRUE(answers[i].has_value()) << "target " << i << " unanswered";
    EXPECT_EQ(answers[i]->cost, expected_cost[i]) << "target " << i;
    EXPECT_TRUE(sim::realizes_permutation(answers[i]->circuit, targets[i]))
        << "target " << i;
  }
}

TEST_F(Backend3, PruningAblationsAgreeOnCosts) {
  // The canonical-order prunes and the memo are exactness-preserving: with
  // everything disabled the (much slower) plain banned-set DFS must report
  // the same costs.
  const std::vector<perm::Permutation> targets = {
      peres_perm(), g2_perm(), g3_perm(), g4_perm(), swap_bc_perm()};
  SearchConfig pruned;
  pruned.max_cost = 4;
  SearchConfig plain;
  plain.max_cost = 4;
  plain.prune_adjoint_pairs = false;
  plain.prune_commuting_pairs = false;
  plain.visited_budget_bytes = 1;  // memo saturates immediately
  TopologySearchBackend fast(lib(), pruned);
  TopologySearchBackend slow(lib(), plain);
  for (const auto& target : targets) {
    const auto a = fast.locate(target);
    const auto b = slow.locate(target);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a.has_value()) {
      EXPECT_EQ(a->cost, b->cost);
    }
  }
  // The prunes must actually fire (and the ablation must not).
  EXPECT_GT(fast.stats().pruned_adjoint, 0u);
  EXPECT_GT(fast.stats().pruned_commuting, 0u);
  EXPECT_EQ(slow.stats().pruned_adjoint, 0u);
  EXPECT_EQ(slow.stats().pruned_commuting, 0u);
}

TEST_F(Backend3, BatchMixesCosetsAndDuplicates) {
  const auto not_c = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const std::vector<perm::Permutation> targets = {
      peres_perm(), perm::Permutation::identity(8), peres_perm(),
      not_c * peres_perm(), not_c};
  TopologySearchBackend search(lib());
  const auto answers = search.synthesize_batch(targets);
  ASSERT_EQ(answers.size(), 5u);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    ASSERT_TRUE(answers[i].has_value());
    EXPECT_TRUE(sim::realizes_permutation(answers[i]->circuit, targets[i]));
  }
  EXPECT_EQ(answers[0]->cost, 4u);
  EXPECT_EQ(answers[1]->cost, 0u);
  EXPECT_EQ(answers[2]->cost, 4u);
  EXPECT_EQ(answers[0]->circuit, answers[2]->circuit);  // same sweep, same hit
  EXPECT_EQ(answers[3]->cost, 4u);
  EXPECT_EQ(answers[4]->cost, 0u);
}

// ---------------------------------------------------------------------------
// CatalogServer behind the seam: the search backend as the miss-path
// fallback, and the server itself adapted onto SynthesisBackend.

/// A cb = 4 serving layer over the shared static library (the enumerator
/// keeps a pointer to it): Toffoli (cost 5) is a guaranteed catalog miss.
CatalogServer make_server4(const gates::GateLibrary& library) {
  FmcfEnumerator closure(library);
  closure.run_to(4);
  return CatalogServer(std::move(closure));
}

std::shared_ptr<TopologySearchBackend> make_search_fallback(
    const gates::GateLibrary& library, unsigned max_cost = 5) {
  SearchConfig config;
  config.max_cost = max_cost;
  return std::make_shared<TopologySearchBackend>(library, config);
}

TEST_F(Backend3, CatalogMissAnswersThroughSearchFallback) {
  CatalogServer server = make_server4(lib());
  // Beyond the stored levels: a plain miss without a fallback...
  EXPECT_FALSE(server.has_fallback());
  EXPECT_FALSE(server.synthesize(toffoli_perm()).has_value());
  // ...and the search backend's witness with one.
  server.set_fallback(make_search_fallback(lib()));
  EXPECT_TRUE(server.has_fallback());
  const auto result = server.synthesize(toffoli_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 5u);
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, toffoli_perm()));
  // Catalog hits never touch the fallback and stay byte-identical.
  const auto hit = server.synthesize(peres_perm());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->cost, 4u);
  // locate() is catalog-only: its answer is a storage location.
  EXPECT_FALSE(server.locate(toffoli_perm()).has_value());
  // Unplugging restores the plain miss.
  server.set_fallback(nullptr);
  EXPECT_FALSE(server.has_fallback());
  EXPECT_FALSE(server.synthesize(toffoli_perm()).has_value());
}

TEST_F(Backend3, FallbackForDifferentLibraryThrows) {
  CatalogServer server = make_server4(lib());
  const gates::GateLibrary other = gates::GateLibrary::standard(2);
  EXPECT_THROW(server.set_fallback(make_search_fallback(other)),
               qsyn::LogicError);
  EXPECT_FALSE(server.has_fallback());
}

TEST_F(Backend3, AsBackendServesStoredAnswersAndFallback) {
  CatalogServer server = make_server4(lib());
  const auto backend = server.as_backend();
  const BackendInfo info = backend->info();
  EXPECT_EQ(info.name, "catalog");
  EXPECT_TRUE(info.exact);
  EXPECT_FALSE(info.deepens_on_miss);  // no fallback plugged in yet
  EXPECT_TRUE(info.enumerates_implementations);
  EXPECT_EQ(info.max_cost, 4u);
  EXPECT_EQ(info.library_fingerprint, lib().fingerprint());
  EXPECT_EQ(backend->max_cost(), 4u);

  // A stored answer through the seam matches the server byte for byte.
  const auto via_seam = backend->synthesize(peres_perm());
  const auto direct = server.synthesize(peres_perm());
  ASSERT_TRUE(via_seam.has_value() && direct.has_value());
  EXPECT_EQ(via_seam->circuit, direct->circuit);
  const auto answer = backend->locate(peres_perm());
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->cost, 4u);

  // With a fallback the adapter answers misses too (locate included: the
  // seam's locate() is a cost query, not a storage location).
  EXPECT_FALSE(backend->locate(toffoli_perm()).has_value());
  server.set_fallback(make_search_fallback(lib()));
  EXPECT_TRUE(backend->info().deepens_on_miss);
  const auto miss = backend->locate(toffoli_perm());
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->cost, 5u);
  const auto batch = backend->synthesize_batch({peres_perm(), toffoli_perm()});
  ASSERT_EQ(batch.size(), 2u);
  ASSERT_TRUE(batch[0].has_value() && batch[1].has_value());
  EXPECT_EQ(batch[0]->cost, 4u);
  EXPECT_EQ(batch[1]->cost, 5u);
}

TEST_F(Backend3, ConcurrentMissesSerializeOnTheFallback) {
  CatalogServer server = make_server4(lib());
  server.set_fallback(make_search_fallback(lib()));
  const auto not_a = perm::Permutation::from_cycles("(1,5)(2,6)(3,7)(4,8)", 8);
  const std::vector<perm::Permutation> targets = {
      toffoli_perm(), peres_perm(), not_a * toffoli_perm(), g3_perm()};
  const std::vector<unsigned> expected = {5, 4, 5, 4};
  std::vector<std::thread> threads;
  std::vector<int> failures(4, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 4; ++round) {
        const auto result = server.synthesize(targets[t]);
        if (!result.has_value() || result->cost != expected[t] ||
            !sim::realizes_permutation(result->circuit, targets[t])) {
          failures[t] = 1;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures, std::vector<int>(4, 0));
}

// ---------------------------------------------------------------------------
// 4 wires: spot check against the closure.

TEST(Backend4, SpotCheckCnotChainAgainstClosure) {
  const gates::GateLibrary library = gates::GateLibrary::standard(4);
  gates::Cascade chain(4);
  chain.append(gates::Gate::feynman(0, 1));
  chain.append(gates::Gate::feynman(1, 2));
  chain.append(gates::Gate::feynman(2, 3));
  const auto target = chain.to_binary_permutation();

  SearchConfig config;
  config.max_cost = 3;
  TopologySearchBackend search(library, config);
  const auto result = search.synthesize(target);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 3u);
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, target));

  McExpressor closure(library, 3);
  const auto expected = closure.minimal_cost(target);
  ASSERT_TRUE(expected.has_value());
  EXPECT_EQ(result->cost, *expected);

  SearchConfig shallow;
  shallow.max_cost = 2;
  TopologySearchBackend miss(library, shallow);
  EXPECT_FALSE(miss.synthesize(target).has_value());  // proves cost == 3
}

// ---------------------------------------------------------------------------
// 5 wires: the acceptance case — a target the in-memory closure cannot
// reach. Deepening the 5-wire closure to k = 4 takes a ~2.5 GiB spill (PR 7
// measurements in BENCH_pr7.json); the DFS engine answers the same question
// in tens of MiB by searching instead of storing.

TEST(Backend5, PeresEmbeddedBeyondInMemoryClosureReach) {
  const gates::GateLibrary library = gates::GateLibrary::standard(5);

  // Peres on wires {A, B, C}, identity on {D, E}.
  const auto peres = peres_perm();
  std::vector<std::uint32_t> images(32);
  for (std::uint32_t l = 0; l < 32; ++l) {
    const std::uint32_t abc = l >> 2;
    const std::uint32_t de = l & 3u;
    images[l] = ((peres.apply(abc + 1) - 1) << 2 | de) + 1;
  }
  const auto target = perm::Permutation::from_images(std::move(images));

  // Exhausting every reasonable cascade of <= 3 gates proves cost >= 4.
  SearchConfig shallow;
  shallow.max_cost = 3;
  TopologySearchBackend lower_bound(library, shallow);
  EXPECT_FALSE(lower_bound.synthesize(target).has_value());

  SearchConfig config;
  config.max_cost = 4;
  TopologySearchBackend search(library, config);
  const auto result = search.synthesize(target);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 4u);
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, target));
  // The whole search fits in the memo budget where the closure would spill.
  EXPECT_LT(search.stats().peak_memo_rows * 64u, std::size_t(1) << 28);
}

}  // namespace
}  // namespace qsyn::synth
