// Unit tests for qsyn/common: error handling, RNG, strings, stopwatch.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/strings.h"

namespace qsyn {
namespace {

// --- error -------------------------------------------------------------------

TEST(Error, CheckThrowsLogicErrorWithMessage) {
  try {
    QSYN_CHECK(1 == 2, "one is not two");
    FAIL() << "QSYN_CHECK should have thrown";
  } catch (const LogicError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(QSYN_CHECK(2 + 2 == 4, "math works"));
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw ParseError("p"), Error);
  EXPECT_THROW(throw SynthesisError("s"), Error);
  EXPECT_THROW(throw LogicError("l"), Error);
}

TEST(Error, RequireMacro) { EXPECT_THROW(QSYN_REQUIRE(false), LogicError); }

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), LogicError);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, JumpIsDeterministicAndMovesTheStream) {
  Rng jumped(42);
  jumped.jump();
  Rng same(42);
  same.jump();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(jumped(), same());

  // The jumped stream differs from the unjumped one (2^128 draws apart).
  Rng base(42);
  Rng far(42);
  far.jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (base() == far()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitChildContinuesParentStreamParentJumps) {
  // split(): the child picks up the parent's current position; the parent
  // jumps past it. Children of successive splits are thus reproducible,
  // pairwise far apart, and independent of how many draws each consumes.
  Rng parent(7);
  Rng reference(7);
  Rng child_a = parent.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child_a(), reference());

  Rng replay(7);
  Rng child_b = parent.split();
  // Same root seed => the same sequence of split children, regardless of
  // draws made from earlier children in between.
  Rng replay_a = replay.split();
  Rng replay_b = replay.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child_b(), replay_b());
  int equal = 0;
  Rng fresh_a(7);  // == child_a before it was drawn from
  for (int i = 0; i < 64; ++i) equal += (fresh_a() == replay_b()) ? 1 : 0;
  EXPECT_LT(equal, 4);
  (void)replay_a;
}

// --- strings -----------------------------------------------------------------

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitBasic) {
  const auto parts = split("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitSingle) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("V+AB", "V+"));
  EXPECT_FALSE(starts_with("VAB", "V+"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "*"), "a*b*c");
  EXPECT_EQ(join({}, "*"), "");
  EXPECT_EQ(join({"solo"}, "*"), "solo");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("7", 3), "7  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

// --- stopwatch ---------------------------------------------------------------

TEST(Stopwatch, MonotoneNonNegative) {
  Stopwatch w;
  const double a = w.seconds();
  const double b = w.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Stopwatch, ResetGoesBackToZero) {
  Stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  (void)sink;
  w.reset();
  EXPECT_LT(w.seconds(), 0.5);
}

TEST(Stopwatch, MillisMatchesSeconds) {
  Stopwatch w;
  const double s = w.seconds();
  const double ms = w.millis();
  EXPECT_GE(ms, s * 1e3 - 1.0);
}

}  // namespace
}  // namespace qsyn
