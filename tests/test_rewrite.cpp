// Unit and property tests for the peephole cascade simplifier.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "synth/rewrite.h"
#include "synth/specs.h"

namespace qsyn::synth {
namespace {

using gates::Cascade;
using gates::Gate;

TEST(Rewrite, EmptyAndSingleAreFixed) {
  EXPECT_EQ(simplify(Cascade(3)).size(), 0u);
  const Cascade single = Cascade::parse("VBA", 3);
  EXPECT_EQ(simplify(single), single);
}

TEST(Rewrite, InversePairsCancel) {
  EXPECT_EQ(simplify(Cascade::parse("VBA*V+BA", 3)).size(), 0u);
  EXPECT_EQ(simplify(Cascade::parse("V+CA*VCA", 3)).size(), 0u);
  EXPECT_EQ(simplify(Cascade::parse("FAB*FAB", 3)).size(), 0u);
}

TEST(Rewrite, NotPairsCancel) {
  Cascade c(3);
  c.append(Gate::not_gate(1));
  c.append(Gate::not_gate(1));
  EXPECT_EQ(simplify(c).size(), 0u);
}

TEST(Rewrite, TripleVMergesToAdjoint) {
  const Cascade merged = simplify(Cascade::parse("VBA*VBA*VBA", 3));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.gate(0), Gate::ctrl_v_dagger(1, 0));
  const Cascade merged_dag = simplify(Cascade::parse("V+CB*V+CB*V+CB", 3));
  ASSERT_EQ(merged_dag.size(), 1u);
  EXPECT_EQ(merged_dag.gate(0), Gate::ctrl_v(2, 1));
}

TEST(Rewrite, FourthPowerVanishes) {
  EXPECT_EQ(simplify(Cascade::parse("VBA*VBA*VBA*VBA", 3)).size(), 0u);
}

TEST(Rewrite, CommutingBlockExposesCancellation) {
  // VCA commutes with VBA (shared control); sorting brings the V+CA next to
  // VCA and both pairs vanish.
  EXPECT_EQ(simplify(Cascade::parse("VCA*VBA*V+CA*V+BA", 3)).size(), 0u);
  // One survivor.
  const Cascade one = simplify(Cascade::parse("VCA*VBA*V+CA", 3));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.gate(0), Gate::ctrl_v(1, 0));
}

TEST(Rewrite, NonCommutingPairsAreKept) {
  // VBA then VAB do not commute and nothing cancels.
  const Cascade kept = simplify(Cascade::parse("VBA*VAB", 3));
  EXPECT_EQ(kept.size(), 2u);
}

TEST(Rewrite, PaperCircuitsAreAlreadyMinimalLength) {
  for (const Cascade& c :
       {peres_cascade_fig4(), g2_cascade_fig5(), g3_cascade_fig6(),
        g4_cascade_fig7()}) {
    EXPECT_EQ(simplify(c).size(), c.size()) << c.to_string();
  }
  for (const Cascade& c : toffoli_cascades_fig9()) {
    EXPECT_EQ(simplify(c).size(), c.size()) << c.to_string();
  }
}

TEST(Rewrite, CommutationFacts) {
  // Shared control: commute. Shared data: commute. Control of one is data
  // of the other: do not commute.
  EXPECT_TRUE(gates_commute(Gate::ctrl_v(1, 0), Gate::ctrl_v(2, 0), 3));
  EXPECT_TRUE(gates_commute(Gate::ctrl_v(1, 0), Gate::ctrl_v_dagger(1, 2), 3));
  EXPECT_FALSE(gates_commute(Gate::ctrl_v(1, 0), Gate::ctrl_v(0, 1), 3));
  EXPECT_TRUE(gates_commute(Gate::feynman(0, 1), Gate::feynman(0, 2), 3));
  EXPECT_TRUE(gates_commute(Gate::feynman(0, 1), Gate::feynman(2, 1), 3));
  EXPECT_FALSE(gates_commute(Gate::feynman(0, 1), Gate::feynman(1, 2), 3));
  // NOT commutes with a controlled gate acting elsewhere, not with one it
  // controls.
  EXPECT_TRUE(gates_commute(Gate::not_gate(2), Gate::ctrl_v(1, 0), 3));
  EXPECT_FALSE(gates_commute(Gate::not_gate(0), Gate::ctrl_v(1, 0), 3));
}

TEST(Rewrite, SameFullSemanticsDetectsDifference) {
  EXPECT_TRUE(same_full_semantics(Cascade::parse("VBA*VCA", 3),
                                  Cascade::parse("VCA*VBA", 3)));
  EXPECT_FALSE(same_full_semantics(Cascade::parse("VBA", 3),
                                   Cascade::parse("V+BA", 3)));
  EXPECT_FALSE(same_full_semantics(Cascade::parse("VBA", 3),
                                   Cascade::parse("VBA", 2)));
}

class RewriteProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RewriteProperty, PreservesSemanticsAndNeverGrows) {
  // Random cascades over the library plus NOT gates.
  Rng rng(GetParam());
  static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  static const gates::GateLibrary library(domain);
  Cascade c(3);
  const std::size_t length = rng.below(10);
  for (std::size_t i = 0; i < length; ++i) {
    if (rng.below(5) == 0) {
      c.append(Gate::not_gate(rng.below(3)));
    } else {
      c.append(library.gate(rng.below(library.size())));
    }
  }
  const Cascade s = simplify(c);
  EXPECT_LE(s.size(), c.size());
  EXPECT_TRUE(same_full_semantics(c, s));
  // Idempotence.
  EXPECT_EQ(simplify(s), s);
}

TEST_P(RewriteProperty, CascadeTimesAdjointSimplifiesTowardEmpty) {
  Rng rng(GetParam() * 7919);
  static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  static const gates::GateLibrary library(domain);
  Cascade c(3);
  for (std::size_t i = 0; i < 4; ++i) {
    c.append(library.gate(rng.below(library.size())));
  }
  Cascade round_trip = c;
  const Cascade adjoint = c.adjoint();
  for (const Gate& g : adjoint.sequence()) round_trip.append(g);
  // The adjoint cancels gate by gate from the middle outward.
  EXPECT_EQ(simplify(round_trip).size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteProperty,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace qsyn::synth
