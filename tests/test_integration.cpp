// Cross-module integration tests: the full pipeline from pattern domains
// through enumeration, synthesis, simplification, and Hilbert-space
// verification, including the 4-qubit generalization.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/perm_group.h"
#include "sim/cross_check.h"
#include "synth/fmcf.h"
#include "synth/mce.h"
#include "synth/rewrite.h"
#include "synth/specs.h"
#include "synth/weighted.h"

namespace qsyn {
namespace {

TEST(Integration, FourQubitClosureLevels) {
  // Extension X4: first levels of the 4-wire closure (values pinned from
  // bench_4qubit; |G4[1]| = 12 is forced — the twelve 4-wire CNOTs).
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(4);
  ASSERT_EQ(domain.size(), 176u);
  const gates::GateLibrary library(domain);
  ASSERT_EQ(library.size(), 36u);
  synth::ClosureConfig options;
  options.track_witnesses = false;
  synth::FmcfEnumerator enumerator(library, options);
  enumerator.run_to(3);
  EXPECT_EQ(enumerator.stats()[0].g_new, 12u);
  EXPECT_EQ(enumerator.stats()[1].g_new, 96u);
  EXPECT_EQ(enumerator.stats()[2].g_new, 542u);
  EXPECT_EQ(enumerator.stats()[0].frontier, 36u);
  EXPECT_EQ(enumerator.stats()[1].frontier, 684u);
}

TEST(Integration, FourQubitPaperStyleGateCycles) {
  // The 4-wire V_BA must restrict to the 3-wire V_BA on patterns where the
  // fourth wire is 0 (embedding consistency).
  const mvl::PatternDomain d3 = mvl::PatternDomain::reduced(3);
  const mvl::PatternDomain d4 = mvl::PatternDomain::reduced(4);
  const gates::Gate vba = gates::Gate::ctrl_v(1, 0);
  for (std::uint32_t label = 1; label <= d3.size(); ++label) {
    const mvl::Pattern p3 = d3.pattern(label);
    mvl::Pattern p4(4);
    for (std::size_t w = 0; w < 3; ++w) p4.set(w, p3.get(w));
    const mvl::Pattern out4 = vba.apply(p4);
    const mvl::Pattern out3 = vba.apply(p3);
    for (std::size_t w = 0; w < 3; ++w) {
      EXPECT_EQ(out4.get(w), out3.get(w));
    }
    EXPECT_EQ(out4.get(3), mvl::Quat::kZero);
  }
}

TEST(Integration, CatalogCountsAreConsistent) {
  // Sum over G[0..7] = 1260 circuits; every member synthesizes back at its
  // own cost and its simplified witness has the same length (witnesses are
  // already irredundant).
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::FmcfEnumerator enumerator(library);
  enumerator.run_to(7);
  std::size_t total = 0;
  for (unsigned k = 0; k <= 7; ++k) total += enumerator.g_set(k).size();
  EXPECT_EQ(total, 1260u);

  Rng rng(5);
  for (unsigned k = 1; k <= 6; ++k) {
    const auto g = enumerator.g_set(k);
    // Sample a handful per level (full sweep is covered elsewhere).
    for (int trial = 0; trial < 5; ++trial) {
      const auto& target = g[rng.below(g.size())];
      const auto entry = enumerator.find(target);
      ASSERT_TRUE(entry.has_value());
      const gates::Cascade witness = enumerator.witness(*entry);
      const gates::Cascade simplified = synth::simplify(witness);
      EXPECT_EQ(simplified.size(), witness.size())
          << "minimal witness should be irredundant: " << witness.to_string();
      EXPECT_TRUE(sim::realizes_permutation(witness, target));
    }
  }
}

TEST(Integration, SimplifierNeverBeatsExactSynthesis) {
  // For random reasonable cascades, simplify() cannot go below the exact
  // minimal cost (it is a peephole pass, not a synthesizer) and the exact
  // synthesizer matches or beats it.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::McExpressor mce(library, 7);
  Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    gates::Cascade c(3);
    while (c.size() < 6) {
      gates::Cascade candidate = c;
      candidate.append(library.gate(rng.below(library.size())));
      if (candidate.is_reasonable(domain)) c = std::move(candidate);
    }
    if (!c.is_binary_preserving()) continue;
    const gates::Cascade simplified = synth::simplify(c);
    const auto exact = mce.minimal_cost(c.to_binary_permutation());
    ASSERT_TRUE(exact.has_value());
    EXPECT_LE(*exact, simplified.size());
    EXPECT_TRUE(synth::same_full_semantics(c, simplified));
  }
}

TEST(Integration, WeightedAndMceAgreeOnEveryCostFourCircuit) {
  // Exhaustive agreement check on a whole level: all 84 cost-4 circuits.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::FmcfEnumerator enumerator(library);
  enumerator.run_to(4);
  const synth::WeightedSynthesizer dijkstra(library,
                                            gates::CostModel::unit());
  for (const auto& g : enumerator.g_set(4)) {
    EXPECT_EQ(dijkstra.minimal_cost(g), 4u) << g.to_cycle_string();
  }
}

TEST(Integration, GroupGeneratedByAllWitnessesAtCostSeven) {
  // All G[<=7] members live in the stabilizer of label 1 (order 5040), and
  // together they already generate the whole stabilizer.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  synth::FmcfEnumerator enumerator(library);
  enumerator.run_to(5);
  std::vector<perm::Permutation> members;
  for (unsigned k = 1; k <= 5; ++k) {
    for (const auto& g : enumerator.g_set(k)) members.push_back(g);
  }
  const perm::PermGroup generated(members);
  EXPECT_EQ(generated.order(), 5040u);
  EXPECT_TRUE(generated.fixes_point(1));
}

TEST(Integration, EndToEndProbabilisticPipeline) {
  // Synthesize a probabilistic circuit, verify the MV distribution against
  // the simulator, simplify it, and re-verify.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  // Redundant circuit with a coin: V, cancelling CNOT pair, another V.
  const gates::Cascade noisy =
      gates::Cascade::parse("VCA*FBC*FBC*VCA*VCA", 3);
  const gates::Cascade lean = synth::simplify(noisy);
  EXPECT_LT(lean.size(), noisy.size());
  EXPECT_TRUE(synth::same_full_semantics(noisy, lean));
  EXPECT_TRUE(sim::mv_model_matches_hilbert(lean, domain));
}

}  // namespace
}  // namespace qsyn
