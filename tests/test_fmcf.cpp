// Unit tests for the FMCF breadth-first closure (Section 3 / Table 2),
// including the exact reproduction of the paper's circuit counts and the
// structural claims about G[4].
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "sim/cross_check.h"
#include "synth/flat_perm_store.h"
#include "synth/fmcf.h"
#include "synth/mce.h"
#include "synth/specs.h"

namespace qsyn::synth {
namespace {

// --- FlatPermStore --------------------------------------------------------------

TEST(FlatPermStore, PushAndRead) {
  FlatPermStore store(4);
  store.push_back(perm::Permutation::from_cycles("(1,2)", 4));
  ASSERT_EQ(store.size(), 1u);
  EXPECT_EQ(store.permutation(0).to_cycle_string(), "(1,2)");
  EXPECT_EQ(store.width(), 4u);
}

TEST(FlatPermStore, SortUnique) {
  FlatPermStore store(3);
  const auto a = perm::Permutation::from_cycles("(1,2)", 3);
  const auto b = perm::Permutation::from_cycles("(2,3)", 3);
  store.push_back(b);
  store.push_back(a);
  store.push_back(b);
  store.sort_unique();
  ASSERT_EQ(store.size(), 2u);
  // Byte rows are 0-based image tables: (2,3) = [0,2,1] < (1,2) = [1,0,2].
  EXPECT_EQ(store.permutation(0), b);
  EXPECT_EQ(store.permutation(1), a);
}

TEST(FlatPermStore, SubtractAndMerge) {
  FlatPermStore a(3);
  FlatPermStore b(3);
  const auto p1 = perm::Permutation::identity(3);
  const auto p2 = perm::Permutation::from_cycles("(1,2)", 3);
  const auto p3 = perm::Permutation::from_cycles("(1,3)", 3);
  a.push_back(p1);
  a.push_back(p2);
  a.sort_unique();
  b.push_back(p2);
  b.push_back(p3);
  b.sort_unique();
  a.subtract_sorted(b);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.permutation(0), p1);
  a.merge_sorted(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.contains_sorted(b.row(0)));
}

TEST(FlatPermStore, ContainsSorted) {
  FlatPermStore store(3);
  for (const char* cycles : {"()", "(1,2)", "(1,2,3)", "(1,3)"}) {
    store.push_back(perm::Permutation::from_cycles(cycles, 3));
  }
  store.sort_unique();
  FlatPermStore probe(3);
  probe.push_back(perm::Permutation::from_cycles("(1,3)", 3));
  probe.push_back(perm::Permutation::from_cycles("(2,3)", 3));
  EXPECT_TRUE(store.contains_sorted(probe.row(0)));
  EXPECT_FALSE(store.contains_sorted(probe.row(1)));
}

// --- the enumeration -------------------------------------------------------------

class Fmcf3 : public ::testing::Test {
 protected:
  static const FmcfEnumerator& shared() {
    // One closure to cb = 7, shared across tests (about half a second).
    static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
    static const gates::GateLibrary library(domain);
    static FmcfEnumerator enumerator = [] {
      FmcfEnumerator e(library, ClosureConfig{});
      e.run_to(7);
      return e;
    }();
    return enumerator;
  }
};

TEST_F(Fmcf3, Table2CircuitCounts) {
  // |G[k]| for k = 1..7. The paper prints 6, 30, 52, 84, 156, 398, 540;
  // exhaustive enumeration corrects k = 2 to 24 and k = 3 to 51 (see
  // EXPERIMENTS.md) and matches the paper everywhere else.
  const auto& stats = shared().stats();
  ASSERT_EQ(stats.size(), 7u);
  const std::size_t expected_g[7] = {6, 24, 51, 84, 156, 398, 540};
  for (std::size_t k = 0; k < 7; ++k) {
    EXPECT_EQ(stats[k].g_new, expected_g[k]) << "cost " << (k + 1);
  }
}

TEST_F(Fmcf3, PreG2IsThirty) {
  // |pre_G[2]| = 30 = the paper's printed |G[2]|: the six V*V = CNOT
  // duplicates are exactly the gap between pre_G[2] and G[2].
  const auto& stats = shared().stats();
  EXPECT_EQ(stats[1].pre_g, 30u);
  EXPECT_EQ(stats[1].g_new, 24u);
}

TEST_F(Fmcf3, FrontierSizesGrow) {
  const auto& stats = shared().stats();
  EXPECT_EQ(stats[0].frontier, 18u);  // |B[1]| = |L|
  for (std::size_t k = 1; k < stats.size(); ++k) {
    EXPECT_GT(stats[k].frontier, stats[k - 1].frontier);
  }
  EXPECT_EQ(stats[6].seen, shared().seen_count());
}

TEST_F(Fmcf3, GZeroIsIdentity) {
  const auto g0 = shared().g_set(0);
  ASSERT_EQ(g0.size(), 1u);
  EXPECT_TRUE(g0[0].is_identity());
}

TEST_F(Fmcf3, G1IsTheSixFeynmanGates) {
  const auto g1 = shared().g_set(1);
  ASSERT_EQ(g1.size(), 6u);
  std::set<perm::Permutation> expected;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      gates::Cascade c(3);
      c.append(gates::Gate::feynman(a, b));
      expected.insert(c.to_binary_permutation());
    }
  }
  EXPECT_EQ(std::set<perm::Permutation>(g1.begin(), g1.end()), expected);
}

TEST_F(Fmcf3, AllGSetMembersFixLabelOne) {
  // Members of G fix the all-zero pattern (no NOT gates in L) — the fact
  // behind Theorem 2's coset decomposition.
  for (unsigned k = 0; k <= 7; ++k) {
    for (const auto& g : shared().g_set(k)) {
      EXPECT_EQ(g.apply(1), 1u);
    }
  }
}

TEST_F(Fmcf3, G4SplitsInto60FeynmanAnd24PeresLike) {
  // Paper Section 5: 60 circuits of four Feynman gates and 24 circuits of
  // three controlled gates plus one Feynman gate.
  const auto g4 = shared().g_set(4);
  ASSERT_EQ(g4.size(), 84u);
  std::size_t feynman_only = 0;
  std::size_t peres_like = 0;
  for (const auto& g : g4) {
    const auto entry = shared().find(g);
    ASSERT_TRUE(entry.has_value());
    ASSERT_EQ(entry->cost, 4u);
    const gates::Cascade witness = shared().witness(*entry);
    std::size_t v_gates = 0;
    for (const auto& gate : witness.sequence()) {
      if (gate.kind() != gates::GateKind::kFeynman) ++v_gates;
    }
    if (v_gates == 0) {
      ++feynman_only;
    } else if (v_gates == 3) {
      ++peres_like;
    } else {
      ADD_FAILURE() << "unexpected witness composition: "
                    << witness.to_string();
    }
  }
  EXPECT_EQ(feynman_only, 60u);
  EXPECT_EQ(peres_like, 24u);
}

TEST_F(Fmcf3, PeresAndCompanionsHaveCostFour) {
  for (const auto& target : {peres_perm(), g2_perm(), g3_perm(), g4_perm()}) {
    const auto entry = shared().find(target);
    ASSERT_TRUE(entry.has_value()) << target.to_cycle_string();
    EXPECT_EQ(entry->cost, 4u);
  }
}

TEST_F(Fmcf3, ToffoliHasCostFive) {
  const auto toffoli = shared().find(toffoli_perm());
  ASSERT_TRUE(toffoli.has_value());
  EXPECT_EQ(toffoli->cost, 5u);
}

TEST_F(Fmcf3, FredkinCostsSevenOverThePaperLibrary) {
  // A notable exact result of the framework: the closure is complete over
  // reasonable cascades, and Fredkin first appears in G[7]. The well-known
  // 5-gate Fredkin of Smolin & DiVincenzo [15] uses 2-qubit gates beyond
  // the paper's {CV, CV+, CNOT} library: a meet-in-the-middle search over
  // exact unitaries (bench_ablations, A3) shows the minimum over this
  // library is 7 even without the binary-control constraint.
  const auto fredkin = shared().find(fredkin_perm());
  ASSERT_TRUE(fredkin.has_value());
  EXPECT_EQ(fredkin->cost, 7u);
}

TEST_F(Fmcf3, SwapHasCostThree) {
  const auto entry = shared().find(swap_bc_perm());
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->cost, 3u);
}

TEST_F(Fmcf3, WitnessesAreReasonableMinimalAndCorrect) {
  // Every G[k] member's witness must be a reasonable cascade of exactly k
  // gates realizing that permutation (Theorem 1 in executable form).
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  for (unsigned k = 1; k <= 5; ++k) {
    for (const auto& g : shared().g_set(k)) {
      const auto entry = shared().find(g);
      ASSERT_TRUE(entry.has_value());
      const gates::Cascade witness = shared().witness(*entry);
      EXPECT_EQ(witness.size(), k);
      EXPECT_TRUE(witness.is_reasonable(domain));
      EXPECT_EQ(witness.to_binary_permutation(), g);
    }
  }
}

TEST_F(Fmcf3, WitnessesAreExactInHilbertSpace) {
  // Spot-check cost-4 and cost-5 witnesses against full unitaries.
  for (unsigned k = 4; k <= 5; ++k) {
    std::size_t checked = 0;
    for (const auto& g : shared().g_set(k)) {
      if (++checked > 10) break;
      const auto entry = shared().find(g);
      const gates::Cascade witness = shared().witness(*entry);
      EXPECT_TRUE(sim::realizes_permutation(witness, g))
          << witness.to_string();
    }
  }
}

TEST_F(Fmcf3, PeresHasTwoImplementationsToffoliFour) {
  // Section 5: "our synthesis algorithm found two implementations for
  // Peres" and four for Toffoli (Figures 4/8 and 9).
  EXPECT_EQ(shared().implementations(peres_perm(), 4).size(), 2u);
  EXPECT_EQ(shared().implementations(toffoli_perm(), 5).size(), 4u);
}

TEST_F(Fmcf3, FindRejectsUnreachedCircuits) {
  // A 3-cycle on binary patterns needing more than 7 gates... pick one not
  // in any computed G set: a random odd permutation moving label 1 is not in
  // G at all (G fixes label 1).
  const auto moved = perm::Permutation::from_cycles("(1,2)", 8);
  EXPECT_FALSE(shared().find(moved).has_value());
}

TEST(ClosureConfig, CountingModeMatchesWitnessMode) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig lean;
  lean.track_witnesses = false;
  FmcfEnumerator counting(library, lean);
  counting.run_to(5);
  const std::size_t expected_g[5] = {6, 24, 51, 84, 156};
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(counting.stats()[k].g_new, expected_g[k]);
  }
  EXPECT_THROW((void)counting.witness(GEntry{1, 0}), qsyn::LogicError);
}

TEST(ClosureConfig, SmallChunksGiveSameCounts) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig tiny;
  tiny.chunk_rows = 64;  // force many flushes
  FmcfEnumerator e(library, tiny);
  e.run_to(4);
  EXPECT_EQ(e.stats()[3].g_new, 84u);
  EXPECT_EQ(e.stats()[3].frontier, 5364u);
}

TEST(FmcfAblation, NoBannedSetsInflatesClosure) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig unpruned;
  unpruned.use_banned_sets = false;
  FmcfEnumerator free_walk(library, unpruned);
  free_walk.run_to(3);
  FmcfEnumerator pruned(library);
  pruned.run_to(3);
  EXPECT_GT(free_walk.stats()[2].frontier, pruned.stats()[2].frontier);
}

TEST(FmcfSaturation, TinyLibrarySaturatesWithoutCrashing) {
  // Regression: advance() used to fire QSYN_CHECK(!previous.empty()) once
  // the closure exhausted the reachable group, so run_to() past saturation
  // crashed instead of reporting the group as exhausted. A two-gate library
  // (just the Feynman pair on wires A, B) saturates within a handful of
  // levels.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary full(domain);
  const gates::GateLibrary tiny = full.restricted_to(full.feynman_subset(0, 1));
  FmcfEnumerator e(tiny);
  e.run_to(64);  // must stop at saturation, not throw
  EXPECT_TRUE(e.saturated());
  EXPECT_LT(e.levels_done(), 64u);
  ASSERT_FALSE(e.stats().empty());
  EXPECT_EQ(e.stats().back().frontier, 0u);

  // Past saturation, advance() is a no-op returning the last level.
  const std::size_t levels = e.levels_done();
  const auto& repeated = e.advance();
  EXPECT_EQ(e.levels_done(), levels);
  EXPECT_EQ(repeated.frontier, 0u);
  EXPECT_EQ(repeated.cost, e.stats().back().cost);
}

TEST(FmcfSaturation, SeenCountStopsGrowingAtSaturation) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary full(domain);
  const gates::GateLibrary tiny = full.restricted_to(full.feynman_subset(0, 1));
  FmcfEnumerator e(tiny);
  e.run_to(64);
  const std::size_t saturated_seen = e.seen_count();
  e.run_to(100);  // further runs are no-ops
  EXPECT_EQ(e.seen_count(), saturated_seen);
  // The closure of {FAB, FBA} is a permutation group on the domain; every
  // reachable element was enumerated, so the seen set is its full order.
  EXPECT_GT(saturated_seen, 1u);
}

TEST(FmcfThreads, MultiThreadedStatsMatchSingleThreaded) {
  // The acceptance bar for the parallel sweep: identical per-level stats
  // (frontier / pre_G / G_new / seen) at cb = 7, regardless of thread or
  // shard count.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  ClosureConfig single;
  single.threads = 1;
  single.track_witnesses = false;
  FmcfEnumerator reference(library, single);
  reference.run_to(7);

  for (const std::size_t threads : {2u, 4u}) {
    ClosureConfig parallel;
    parallel.threads = threads;
    parallel.shards = 16;
    parallel.track_witnesses = false;
    FmcfEnumerator e(library, parallel);
    EXPECT_EQ(e.threads(), threads);
    e.run_to(7);
    ASSERT_EQ(e.stats().size(), reference.stats().size());
    for (std::size_t k = 0; k < reference.stats().size(); ++k) {
      const FmcfLevelStats& expected = reference.stats()[k];
      const FmcfLevelStats& got = e.stats()[k];
      EXPECT_EQ(got.cost, expected.cost);
      EXPECT_EQ(got.frontier, expected.frontier) << "cost " << expected.cost;
      EXPECT_EQ(got.pre_g, expected.pre_g) << "cost " << expected.cost;
      EXPECT_EQ(got.g_new, expected.g_new) << "cost " << expected.cost;
      EXPECT_EQ(got.seen, expected.seen) << "cost " << expected.cost;
    }
    EXPECT_EQ(e.seen_count(), reference.seen_count());
  }
}

TEST(FmcfThreads, WitnessesSurviveThreadedSweep) {
  // The flattened frontiers must stay globally sorted so the back-walk's
  // binary searches and row indices keep working under threading.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig options;
  options.threads = 4;
  options.shards = 8;
  FmcfEnumerator e(library, options);
  e.run_to(5);
  const auto toffoli = e.find(toffoli_perm());
  ASSERT_TRUE(toffoli.has_value());
  EXPECT_EQ(toffoli->cost, 5u);
  const gates::Cascade witness = e.witness(*toffoli);
  EXPECT_EQ(witness.size(), 5u);
  EXPECT_EQ(witness.to_binary_permutation(), toffoli_perm());
  EXPECT_EQ(e.implementations(toffoli_perm(), 5).size(), 4u);
}

TEST(FmcfThreads, ShardingAloneIsInvariant) {
  // Shards without threads: the sharded store must not change any count.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig sharded;
  sharded.threads = 1;
  sharded.shards = 32;
  sharded.track_witnesses = false;
  FmcfEnumerator e(library, sharded);
  e.run_to(5);
  const std::size_t expected_g[5] = {6, 24, 51, 84, 156};
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_EQ(e.stats()[k].g_new, expected_g[k]);
  }
}

TEST(FmcfThreads, WitnessBackWalkIsThreadCountInvariant) {
  // The MCE back-walk scans candidate gates across the worker pool; both
  // the pooled and the serial scan select the lowest valid gate index, so
  // every thread count must reconstruct identical witness cascades (the
  // back-walk analogue of the count_sequences assertion below).
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  const auto witnesses_with = [&](std::size_t threads) {
    ClosureConfig options;
    options.threads = threads;
    if (threads > 1) options.shards = 8;
    FmcfEnumerator e(library, options);
    e.run_to(4);
    std::vector<std::string> out;
    for (unsigned k = 1; k <= 4; ++k) {
      for (const auto& g : e.g_set(k)) {  // g_set is sorted: stable order
        const auto entry = e.find(g);
        EXPECT_TRUE(entry.has_value());
        out.push_back(e.witness(*entry).to_string());
      }
    }
    return out;
  };

  const std::vector<std::string> reference = witnesses_with(1);
  ASSERT_EQ(reference.size(), 6u + 24u + 51u + 84u);
  for (const std::size_t threads : {2u, 4u}) {
    EXPECT_EQ(witnesses_with(threads), reference) << "threads " << threads;
  }
}

TEST(FmcfThreads, ConcurrentWitnessReconstructionIsSafe) {
  // witness() drives the shared pool, which is not reentrant: concurrent
  // reconstructions must degrade gracefully (one owns the pool, the rest
  // run the serial scan) instead of throwing, and all must agree with the
  // single-threaded result.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig options;
  options.threads = 4;
  options.shards = 8;
  FmcfEnumerator e(library, options);
  e.run_to(4);
  const auto g4 = e.g_set(4);
  std::vector<std::string> reference;
  for (const auto& g : g4) reference.push_back(e.witness(*e.find(g)).to_string());

  std::vector<std::vector<std::string>> results(4);
  std::vector<std::thread> callers;
  callers.reserve(results.size());
  for (std::size_t t = 0; t < results.size(); ++t) {
    callers.emplace_back([&, t] {
      for (const auto& g : g4) {
        results[t].push_back(e.witness(*e.find(g)).to_string());
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (const auto& got : results) EXPECT_EQ(got, reference);
}

TEST(FmcfThreads, CountSequencesIsThreadCountInvariant) {
  // The DFS fans its depth-2 subtrees out across the pool; the subtrees
  // partition the serial walk, so every thread count must report the same
  // sequence counts (the MCE layer is where count_sequences lives, but the
  // invariance contract belongs to the parallel synth sweep checked here).
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);

  auto count_with = [&](std::size_t threads, const perm::Permutation& target,
                        unsigned cost) {
    ClosureConfig options;
    options.threads = threads;
    McExpressor mce(library, 7, options);
    return mce.count_sequences(target, cost);
  };

  for (const auto& [target, cost] :
       {std::pair{toffoli_perm(), 5u}, std::pair{peres_perm(), 4u},
        std::pair{swap_bc_perm(), 3u}, std::pair{peres_perm(), 3u}}) {
    const std::size_t reference = count_with(1, target, cost);
    for (const std::size_t threads : {2u, 4u}) {
      EXPECT_EQ(count_with(threads, target, cost), reference)
          << target.to_cycle_string() << " cost " << cost << " threads "
          << threads;
    }
  }
  // Known multiplicities stay pinned (cost-5 Toffoli sequences include the
  // four Figure-9 cascades).
  EXPECT_GE(count_with(4, toffoli_perm(), 5), 4u);
  EXPECT_EQ(count_with(4, toffoli_perm(), 4), 0u);
}

TEST(Fmcf2Wire, TwoQubitClosureRuns) {
  // The 2-wire reduced domain (8 labels, 6 gates): CNOT circuits on 2 wires
  // reach exactly the 6 invertible linear maps of GL(2,2) at costs 0..3.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(2);
  const gates::GateLibrary library(domain);
  FmcfEnumerator e(library);
  e.run_to(4);
  std::size_t total_g = 1;  // identity
  for (unsigned k = 1; k <= 4; ++k) total_g += e.stats()[k - 1].g_new;
  EXPECT_EQ(total_g, 6u);  // |GL(2,2)| = 6
  EXPECT_EQ(e.stats()[0].g_new, 2u);  // FAB, FBA
}

}  // namespace
}  // namespace qsyn::synth
