// The n-qubit generalization suite: property tests for the NQubitDomain /
// GateLibrary::standard(n) construction at n = 2..5, golden fixtures pinning
// standard(3) to the paper's hard-coded 3-qubit artifacts (gate order,
// packed words, class numbering, label codes, banned sets), a randomized
// differential check that every library gate's fused-engine unitary realizes
// the multi-valued permutation model, and wide-domain regressions for the
// closure layers (two-byte label stores, 256-bit G-keys, restricted
// libraries at n != 3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "mvl/nqubit.h"
#include "perm/permutation.h"
#include "sim/batch.h"
#include "sim/cross_check.h"
#include "sim/fused.h"
#include "sim/unitary.h"
#include "synth/fmcf.h"
#include "synth/mce.h"

namespace qsyn {
namespace {

// --- library shape properties (n = 2..5) -----------------------------------

TEST(NQubitDomain, SizesMatchClosedForms) {
  const std::size_t expected_labels[4] = {8, 38, 176, 782};
  const std::size_t expected_gates[4] = {6, 18, 36, 60};
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    EXPECT_EQ(nq.wires(), n);
    EXPECT_EQ(nq.size(), expected_labels[n - 2]);
    EXPECT_EQ(nq.size(), mvl::NQubitDomain::reduced_size(n));
    EXPECT_EQ(nq.binary_count(), std::size_t(1) << n);
    EXPECT_EQ(nq.library_size(), expected_gates[n - 2]);
    EXPECT_EQ(nq.library_size(),
              n * nq.gates_per_control_class() +
                  nq.feynman_class_count() *
                      mvl::NQubitDomain::gates_per_feynman_class());
    EXPECT_EQ(nq.num_classes(),
              nq.control_class_count() + nq.feynman_class_count());
  }
}

TEST(NQubitLibrary, StandardEmitsTheFormulaGateCount) {
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    const gates::GateLibrary library = gates::GateLibrary::standard(nq);
    EXPECT_EQ(library.size(), nq.library_size());
    EXPECT_EQ(library.size(), 3 * n * (n - 1));
    // Each control class carries 2(n-1) gates, each Feynman class 2.
    for (std::size_t w = 0; w < n; ++w) {
      EXPECT_EQ(library.control_subset(w).size(),
                nq.gates_per_control_class());
    }
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        EXPECT_EQ(library.feynman_subset(a, b).size(), 2u);
      }
    }
    EXPECT_EQ(library.controlled_indices().size(), 2 * n * (n - 1));
    EXPECT_EQ(library.feynman_indices().size(), n * (n - 1));
    // The adjoint involution stays inside the library at every width.
    for (std::size_t i = 0; i < library.size(); ++i) {
      EXPECT_EQ(library.adjoint_index(library.adjoint_index(i)), i);
    }
  }
}

TEST(NQubitLibrary, StandardOwnsItsDomain) {
  // The factory's library must stay valid with no external domain alive.
  const gates::GateLibrary library = gates::GateLibrary::standard(4);
  EXPECT_EQ(library.domain().wires(), 4u);
  EXPECT_EQ(library.domain().size(), 176u);
  EXPECT_EQ(library.permutation(0).degree(), 176u);
  // restricted_to keeps the parent's domain alive too.
  const gates::GateLibrary tiny =
      library.restricted_to(library.feynman_subset(0, 1));
  EXPECT_EQ(tiny.domain().size(), 176u);
  EXPECT_EQ(tiny.size(), 2u);
}

TEST(NQubitLibrary, BannedClassesAreConsistentWithClassMask) {
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    const gates::GateLibrary library = gates::GateLibrary::standard(nq);
    const mvl::PatternDomain& domain = nq.domain();
    for (std::size_t i = 0; i < library.size(); ++i) {
      const gates::Gate& gate = library.gate(i);
      const mvl::BannedClass expected =
          gate.kind() == gates::GateKind::kFeynman
              ? nq.feynman_class(std::min(gate.target(), gate.control()),
                                 std::max(gate.target(), gate.control()))
              : nq.control_class(gate.control());
      EXPECT_EQ(library.banned_class_of(i), expected) << gate.name();
      ASSERT_TRUE(gate.banned_class(domain).has_value());
      EXPECT_EQ(*gate.banned_class(domain), expected);
      // Banned labels are exactly the gate's blind spot: a mixed control
      // (or mixed Feynman wire) leaves the pattern unchanged, so every
      // label carrying the gate's class bit must be a fixed point of the
      // gate's permutation.
      const perm::Permutation& p = library.permutation(i);
      for (std::uint32_t label = 1; label <= domain.size(); ++label) {
        if ((nq.class_mask(label) >> expected & 1u) != 0) {
          EXPECT_EQ(p.apply(label), label)
              << gate.name() << " moves banned label " << label;
        }
      }
    }
  }
}

TEST(NQubitDomain, ClassMaskMatchesBannedSets) {
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    const mvl::PatternDomain& domain = nq.domain();
    for (mvl::BannedClass c = 0; c < domain.num_classes(); ++c) {
      std::vector<std::uint32_t> from_mask;
      for (std::uint32_t label = 1; label <= domain.size(); ++label) {
        EXPECT_EQ(nq.class_mask(label), domain.banned_mask(label));
        if ((nq.class_mask(label) >> c & 1u) != 0) from_mask.push_back(label);
      }
      EXPECT_EQ(from_mask, domain.banned_set(c));
    }
  }
}

TEST(NQubitDomain, ClassNamesRoundTrip) {
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    for (mvl::BannedClass c = 0; c < nq.num_classes(); ++c) {
      EXPECT_EQ(nq.class_from_name(nq.class_name(c)), c) << nq.class_name(c);
    }
  }
  const mvl::NQubitDomain nq(3);
  EXPECT_EQ(nq.class_name(nq.control_class(0)), "N_A");
  EXPECT_EQ(nq.class_name(nq.feynman_class(1, 2)), "N_BC");
  EXPECT_THROW((void)nq.class_from_name("N_"), qsyn::ParseError);
  EXPECT_THROW((void)nq.class_from_name("M_A"), qsyn::ParseError);
  EXPECT_THROW((void)nq.class_from_name("N_D"), qsyn::ParseError);   // no wire D
  EXPECT_THROW((void)nq.class_from_name("N_BA"), qsyn::ParseError);  // order
  EXPECT_THROW((void)nq.class_from_name("N_ABC"), qsyn::ParseError);
}

TEST(NQubitDomain, LabelsRoundTripThroughPatterns) {
  for (std::size_t n = 2; n <= 5; ++n) {
    const mvl::NQubitDomain nq(n);
    const mvl::PatternDomain& domain = nq.domain();
    for (std::uint32_t label = 1; label <= domain.size(); ++label) {
      EXPECT_EQ(domain.label_of(domain.pattern(label)), label);
    }
    // Binary labels come first, in binary-value order.
    for (std::uint32_t label = 1; label <= nq.binary_count(); ++label) {
      EXPECT_TRUE(domain.pattern(label).is_binary());
      EXPECT_EQ(domain.pattern(label).binary_value(), label - 1);
    }
  }
}

// --- golden fixtures: standard(3) == the legacy 3-qubit library ------------

TEST(Golden3Qubit, FactoryMatchesLegacyConstructionExactly) {
  const mvl::PatternDomain legacy_domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary legacy(legacy_domain);
  const gates::GateLibrary standard = gates::GateLibrary::standard(3);
  ASSERT_EQ(standard.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(standard.gate(i), legacy.gate(i));
    EXPECT_EQ(standard.permutation(i), legacy.permutation(i));
    EXPECT_EQ(standard.banned_class_of(i), legacy.banned_class_of(i));
  }
  ASSERT_EQ(standard.domain().size(), legacy_domain.size());
  for (std::uint32_t label = 1; label <= legacy_domain.size(); ++label) {
    EXPECT_EQ(standard.domain().pattern(label), legacy_domain.pattern(label));
    EXPECT_EQ(standard.domain().banned_mask(label),
              legacy_domain.banned_mask(label));
  }
}

TEST(Golden3Qubit, GateOrderNamesAndPackedWords) {
  const gates::GateLibrary library = gates::GateLibrary::standard(3);
  const char* const kNames[18] = {
      "VBA", "V+BA", "VCA", "V+CA", "VAB", "V+AB", "VCB", "V+CB", "VAC",
      "V+AC", "VBC", "V+BC", "FAB", "FBA", "FAC", "FCA", "FBC", "FCB"};
  const std::uint32_t kPacked[18] = {
      0x00000004u, 0x00000005u, 0x00000008u, 0x00000009u, 0x00020000u,
      0x00020001u, 0x00020008u, 0x00020009u, 0x00040000u, 0x00040001u,
      0x00040004u, 0x00040005u, 0x00020002u, 0x00000006u, 0x00040002u,
      0x0000000au, 0x00040006u, 0x0002000au};
  const mvl::BannedClass kClasses[18] = {0, 0, 0, 0, 1, 1, 1, 1, 2,
                                         2, 2, 2, 3, 3, 4, 4, 5, 5};
  ASSERT_EQ(library.size(), 18u);
  for (std::size_t i = 0; i < 18; ++i) {
    EXPECT_EQ(library.gate(i).name(), kNames[i]) << "index " << i;
    EXPECT_EQ(library.gate(i).packed(), kPacked[i]) << "index " << i;
    EXPECT_EQ(library.banned_class_of(i), kClasses[i]) << "index " << i;
    EXPECT_EQ(library.index_of(kNames[i]), i);
  }
  // The paper's printed cycle form of V_BA (gate 0).
  EXPECT_EQ(library.permutation(0).to_cycle_string(),
            "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)");
}

TEST(Golden3Qubit, DomainLabelCodesAndBannedSets) {
  const mvl::NQubitDomain nq(3);
  const mvl::PatternDomain& domain = nq.domain();
  // Base-4 codes of labels 1..38 — the paper's label ordering verbatim.
  const std::uint32_t kCodes[38] = {
      0,  1,  4,  5,  16, 17, 20, 21, 6,  7,  9,  13, 18, 19, 22, 23, 24, 25,
      26, 27, 28, 29, 30, 31, 33, 36, 37, 38, 39, 41, 45, 49, 52, 53, 54, 55,
      57, 61};
  ASSERT_EQ(domain.size(), 38u);
  for (std::size_t i = 0; i < 38; ++i) {
    EXPECT_EQ(domain.pattern(static_cast<std::uint32_t>(i + 1)).code(),
              kCodes[i])
        << "label " << (i + 1);
  }
  EXPECT_EQ(domain.pattern(1).to_string(), "0,0,0");
  EXPECT_EQ(domain.pattern(9).to_string(), "0,1,V0");
  EXPECT_EQ(domain.pattern(38).to_string(), "V1,V1,1");
  // The paper's banned sets N_A .. N_BC.
  const std::vector<std::uint32_t> kNA = {25, 26, 27, 28, 29, 30, 31,
                                          32, 33, 34, 35, 36, 37, 38};
  const std::vector<std::uint32_t> kNB = {11, 12, 17, 18, 19, 20, 21,
                                          22, 23, 24, 30, 31, 37, 38};
  const std::vector<std::uint32_t> kNC = {9,  10, 13, 14, 15, 16, 19,
                                          20, 23, 24, 28, 29, 35, 36};
  EXPECT_EQ(domain.banned_set(nq.class_from_name("N_A")), kNA);
  EXPECT_EQ(domain.banned_set(nq.class_from_name("N_B")), kNB);
  EXPECT_EQ(domain.banned_set(nq.class_from_name("N_C")), kNC);
  const auto union_of = [](const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
    std::vector<std::uint32_t> out;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
  };
  EXPECT_EQ(domain.banned_set(nq.class_from_name("N_AB")), union_of(kNA, kNB));
  EXPECT_EQ(domain.banned_set(nq.class_from_name("N_AC")), union_of(kNA, kNC));
  EXPECT_EQ(domain.banned_set(nq.class_from_name("N_BC")), union_of(kNB, kNC));
}

// --- randomized differential: fused engine vs the perm-level model ---------

/// A random reasonable cascade over the library: each step appends a gate
/// whose banned set misses the current image of the binary inputs (the same
/// pruning rule the FMCF closure applies).
gates::Cascade random_reasonable_cascade(Rng& rng,
                                         const gates::GateLibrary& library,
                                         std::size_t length) {
  const mvl::PatternDomain& domain = library.domain();
  gates::Cascade cascade(domain.wires());
  std::vector<std::uint32_t> image = domain.s_set();
  for (std::size_t step = 0; step < length; ++step) {
    std::uint32_t banned = 0;
    for (const std::uint32_t label : image) banned |= domain.class_mask(label);
    std::vector<std::size_t> candidates;
    for (std::size_t g = 0; g < library.size(); ++g) {
      if ((banned >> library.banned_class_of(g) & 1u) == 0) {
        candidates.push_back(g);
      }
    }
    if (candidates.empty()) break;
    const std::size_t g = candidates[rng.below(candidates.size())];
    cascade.append(library.gate(g));
    for (std::uint32_t& label : image) {
      label = library.permutation(g).apply(label);
    }
  }
  return cascade;
}

TEST(NQubitDifferential, LibraryPermutationsMatchMultiValuedGateAction) {
  // The perm/ model of each gate is exactly its multi-valued action on the
  // domain labels — at every width, including 5 wires.
  for (std::size_t n = 2; n <= 5; ++n) {
    const gates::GateLibrary library = gates::GateLibrary::standard(n);
    const mvl::PatternDomain& domain = library.domain();
    for (std::size_t g = 0; g < library.size(); ++g) {
      const perm::Permutation& p = library.permutation(g);
      for (std::uint32_t label = 1; label <= domain.size(); ++label) {
        EXPECT_EQ(p.apply(label),
                  domain.label_of(library.gate(g).apply(domain.pattern(label))))
            << library.gate(g).name() << " at n=" << n;
      }
    }
  }
}

TEST(NQubitDifferential, EveryLibraryGateRealizesItsPermModelFused) {
  // Fused engine vs the perm/ model, gate by gate: the Hilbert-space output
  // of every binary input must be the product state the multi-valued model
  // (= the cached library permutation) predicts.
  for (std::size_t n = 2; n <= 4; ++n) {
    sim::SimOptions options;
    options.fuse_block = 2;
    options.threads = 1;
    sim::BatchSimulator engine(options);
    const gates::GateLibrary library = gates::GateLibrary::standard(n);
    for (std::size_t g = 0; g < library.size(); ++g) {
      gates::Cascade cascade(n);
      cascade.append(library.gate(g));
      EXPECT_TRUE(
          sim::mv_model_matches_hilbert(cascade, library.domain(), 1e-12,
                                        engine))
          << library.gate(g).name() << " at n=" << n;
    }
  }
}

TEST(NQubitDifferential, RandomReasonableCascadesFusedVsPermModel) {
  Rng rng(20260730);
  for (std::size_t n = 2; n <= 4; ++n) {
    const gates::GateLibrary library = gates::GateLibrary::standard(n);
    const mvl::PatternDomain& domain = library.domain();
    sim::SimOptions options;
    options.fuse_block = 3;
    options.threads = 1;
    sim::BatchSimulator engine(options);
    sim::UnitaryCache cache;
    const std::size_t trials = n == 4 ? 12 : 25;
    const std::size_t max_len = n == 4 ? 6 : 10;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const gates::Cascade cascade = random_reasonable_cascade(
          rng, library, 1 + rng.below(max_len));
      ASSERT_TRUE(cascade.is_reasonable(domain));
      EXPECT_TRUE(
          sim::mv_model_matches_hilbert(cascade, domain, 1e-12, engine))
          << cascade.to_string();
      if (!cascade.is_binary_preserving()) continue;
      // Binary-preserving cascades additionally pin the classical
      // permutation: fused extraction == the perm-level restriction, and
      // the fused unitary is exactly that permutation matrix.
      const perm::Permutation restricted = cascade.to_binary_permutation();
      EXPECT_EQ(sim::extract_classical_permutation(cascade, options, 1e-12,
                                                   &cache),
                restricted)
          << cascade.to_string();
      EXPECT_TRUE(
          sim::realizes_permutation(cascade, restricted, options, 1e-12,
                                    &cache))
          << cascade.to_string();
    }
  }
}

// --- wide-domain closure regressions ---------------------------------------

TEST(NQubitClosure, FourWireLevelCountsArePinned) {
  const gates::GateLibrary library = gates::GateLibrary::standard(4);
  synth::ClosureConfig options;
  options.track_witnesses = false;
  synth::FmcfEnumerator e(library, options);
  e.run_to(2);
  EXPECT_EQ(e.stats()[0].frontier, 36u);
  EXPECT_EQ(e.stats()[0].g_new, 12u);  // the 12 four-wire CNOTs
  EXPECT_EQ(e.stats()[1].frontier, 684u);
  EXPECT_EQ(e.stats()[1].g_new, 96u);
}

TEST(NQubitClosure, FiveWireClosureRunsOnTwoByteStores) {
  // 782 labels force the two-byte label rows and the 256-bit G-keys.
  const gates::GateLibrary library = gates::GateLibrary::standard(5);
  synth::ClosureConfig options;
  options.track_witnesses = false;
  synth::FmcfEnumerator e(library, options);
  e.run_to(2);
  EXPECT_EQ(e.stats()[0].frontier, 60u);
  EXPECT_EQ(e.stats()[0].g_new, 20u);  // the 20 five-wire CNOTs
  EXPECT_EQ(e.stats()[1].frontier, 1920u);
  EXPECT_EQ(e.stats()[1].g_new, 260u);
  // G[1] really is the CNOT set, decoded back out of the wide keys.
  const auto g1 = e.g_set(1);
  ASSERT_EQ(g1.size(), 20u);
  std::vector<perm::Permutation> expected;
  for (const std::size_t g : library.feynman_indices()) {
    gates::Cascade c(5);
    c.append(library.gate(g));
    expected.push_back(c.to_binary_permutation());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(g1, expected);
}

TEST(NQubitClosure, FiveWireWitnessBackWalkWorks) {
  const gates::GateLibrary library = gates::GateLibrary::standard(5);
  synth::FmcfEnumerator e(library);  // witnesses on
  e.run_to(2);
  for (unsigned k = 1; k <= 2; ++k) {
    std::size_t checked = 0;
    for (const auto& g : e.g_set(k)) {
      if (++checked > 8) break;
      const auto entry = e.find(g);
      ASSERT_TRUE(entry.has_value());
      const gates::Cascade witness = e.witness(*entry);
      EXPECT_EQ(witness.size(), k);
      EXPECT_TRUE(witness.is_reasonable(library.domain()));
      EXPECT_EQ(witness.to_binary_permutation(), g);
    }
  }
}

TEST(NQubitClosure, RestrictedLibrariesSaturateAtTwoAndFourWires) {
  // Regression for the 3-wire-literal audit: restricted libraries over
  // non-3-wire domains must derive every bound (class counts, widths, key
  // sizes) from the domain.
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}}) {
    const gates::GateLibrary full = gates::GateLibrary::standard(n);
    const gates::GateLibrary tiny =
        full.restricted_to(full.feynman_subset(0, 1));
    EXPECT_EQ(tiny.domain().wires(), n);
    synth::FmcfEnumerator e(tiny);
    e.run_to(64);  // must saturate, not crash
    EXPECT_TRUE(e.saturated());
    EXPECT_LT(e.levels_done(), 64u);
    // The closure of one Feynman pair is GL(2,2) on the pair's wires:
    // 6 reachable permutations at every width.
    EXPECT_EQ(e.seen_count(), 6u);
  }
}

TEST(NQubitClosure, McExpressorSynthesizesAcrossWidths) {
  // n = 2: SWAP needs the classic three CNOTs.
  {
    const gates::GateLibrary library = gates::GateLibrary::standard(2);
    synth::McExpressor mce(library, 7);
    const auto swap2 = perm::Permutation::from_cycles("(2,3)", 4);
    const auto result = mce.synthesize(swap2);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->cost, 3u);
    EXPECT_EQ(result->circuit.to_binary_permutation(), swap2);
    EXPECT_EQ(mce.count_sequences(swap2, 3), 2u);  // FAB*FBA*FAB, FBA*FAB*FBA
  }
  // n = 4: a single CNOT synthesizes at cost 1 over the 176-label domain.
  {
    const gates::GateLibrary library = gates::GateLibrary::standard(4);
    synth::McExpressor mce(library, 2);
    gates::Cascade cnot(4);
    cnot.append(gates::Gate::feynman(2, 0));
    const auto target = cnot.to_binary_permutation();
    const auto result = mce.synthesize(target);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->cost, 1u);
    EXPECT_EQ(result->circuit.to_binary_permutation(), target);
  }
}

}  // namespace
}  // namespace qsyn
