// Unit tests for the Figure-3 quantum automaton loop and the HMM view:
// exact Markov-chain analysis vs Monte-Carlo simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "automata/automaton.h"
#include "common/error.h"
#include "automata/hmm.h"
#include "common/rng.h"
#include "gates/cascade.h"
#include "la/matrix.h"

namespace qsyn::automata {
namespace {

// A 3-wire automaton: wire A is the state bit, wires B and C are inputs/
// outputs. The circuit V_AB * V_AB (= CNOT A<-B on binary) deterministically
// flips the state when input bit B is 1; VAC makes A a coin when C is 1.
gates::Cascade flip_circuit() { return gates::Cascade::parse("VAB*VAB", 3); }
gates::Cascade coin_circuit() { return gates::Cascade::parse("VAC", 3); }

TEST(Automaton, ConstructionAndReset) {
  QuantumAutomaton m(flip_circuit(), 1);
  EXPECT_EQ(m.state_wires(), 1u);
  EXPECT_EQ(m.input_wires(), 2u);
  EXPECT_EQ(m.state_count(), 2u);
  EXPECT_EQ(m.state(), 0u);
  m.reset(1);
  EXPECT_EQ(m.state(), 1u);
  EXPECT_THROW(m.reset(2), qsyn::LogicError);
}

TEST(Automaton, DeterministicFlipSteps) {
  QuantumAutomaton m(flip_circuit(), 1);
  Rng rng(1);
  // Input B=1, C=0 (input word 0b10): state toggles every cycle.
  EXPECT_EQ(m.step(0b10, rng) >> 2, 1u);
  EXPECT_EQ(m.state(), 1u);
  m.step(0b10, rng);
  EXPECT_EQ(m.state(), 0u);
  // Input 00: state holds.
  m.step(0b00, rng);
  EXPECT_EQ(m.state(), 0u);
}

TEST(Automaton, OutputDistributionDeterministicCase) {
  QuantumAutomaton m(flip_circuit(), 1);
  const auto dist = m.output_distribution(0, 0b10);
  // Output word = (state=1, B=1, C=0) = 0b110 with probability 1.
  EXPECT_DOUBLE_EQ(dist[0b110], 1.0);
}

TEST(Automaton, CoinTransitionMatrix) {
  QuantumAutomaton m(coin_circuit(), 1);
  // Input C=1 (input word 0b01): state becomes a fair coin regardless.
  const la::Matrix t = m.transition_matrix(0b01);
  EXPECT_NEAR(t(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(t(1, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(t(0, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(t(1, 1).real(), 0.5, 1e-12);
  // Input C=0: identity chain.
  const la::Matrix hold = m.transition_matrix(0b00);
  EXPECT_NEAR(hold(0, 0).real(), 1.0, 1e-12);
  EXPECT_NEAR(hold(1, 1).real(), 1.0, 1e-12);
}

TEST(Automaton, TransitionMatrixColumnsAreStochastic) {
  QuantumAutomaton m(coin_circuit(), 1);
  for (std::uint32_t input = 0; input < 4; ++input) {
    const la::Matrix t = m.transition_matrix(input);
    for (std::size_t c = 0; c < t.cols(); ++c) {
      double total = 0.0;
      for (std::size_t r = 0; r < t.rows(); ++r) total += t(r, c).real();
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(Automaton, StationaryDistributionOfCoinChain) {
  QuantumAutomaton m(coin_circuit(), 1);
  const auto pi = m.stationary_distribution(0b01);
  ASSERT_EQ(pi.size(), 2u);
  EXPECT_NEAR(pi[0], 0.5, 1e-9);
  EXPECT_NEAR(pi[1], 0.5, 1e-9);
}

TEST(Automaton, EmpiricalMatchesStationary) {
  QuantumAutomaton m(coin_circuit(), 1);
  Rng rng(31);
  const auto empirical = m.empirical_distribution(0b01, 40000, rng);
  const auto exact = m.stationary_distribution(0b01);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(empirical[s], exact[s], 0.02);
  }
}

TEST(Automaton, TwoStateBiasedChain) {
  // State wires A,B; input wire C. V_AC arms a coin on A when C = 1, and
  // FBA copies-ish... use VAC*VBC: both state bits become coins when C=1.
  QuantumAutomaton m(gates::Cascade::parse("VAC*VBC", 3), 2);
  const auto pi = m.stationary_distribution(0b1);
  ASSERT_EQ(pi.size(), 4u);
  for (const double p : pi) EXPECT_NEAR(p, 0.25, 1e-9);
}

// --- HMM ------------------------------------------------------------------------

TEST(Automaton, HilbertBackendMatchesMultiValuedBackend) {
  // Differential check of the measurement rewire: on reasonable circuits
  // the full Hilbert-space backend (sim/batch.h) must reproduce the exact
  // multi-valued product rule — distributions, transition matrices and
  // stationary laws alike.
  for (const auto& circuit : {flip_circuit(), coin_circuit()}) {
    QuantumAutomaton reference(circuit, 1);
    QuantumAutomaton hilbert(circuit, 1);
    hilbert.set_measurement_backend(MeasurementBackend::kHilbert);
    EXPECT_EQ(hilbert.measurement_backend(), MeasurementBackend::kHilbert);
    for (std::uint32_t state = 0; state < 2; ++state) {
      for (std::uint32_t input = 0; input < 4; ++input) {
        const auto expected = reference.output_distribution(state, input);
        const auto got = hilbert.output_distribution(state, input);
        ASSERT_EQ(got.size(), expected.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i], expected[i], 1e-12)
              << "state " << state << " input " << input << " word " << i;
        }
      }
    }
    for (std::uint32_t input = 0; input < 4; ++input) {
      const la::Matrix expected = reference.transition_matrix(input);
      EXPECT_LE(hilbert.transition_matrix(input).max_abs_diff(expected),
                1e-12);
    }
  }
  // Switching back releases the engine and restores the product rule.
  QuantumAutomaton m(coin_circuit(), 1);
  m.set_measurement_backend(MeasurementBackend::kHilbert);
  m.set_measurement_backend(MeasurementBackend::kMultiValued);
  EXPECT_EQ(m.measurement_backend(), MeasurementBackend::kMultiValued);
}

TEST(Automaton, HilbertBackendStepsAndConverges) {
  // Monte-Carlo runs through the Hilbert backend still converge to the
  // exact stationary distribution of the induced Markov chain.
  QuantumAutomaton m(coin_circuit(), 1);
  m.set_measurement_backend(MeasurementBackend::kHilbert);
  Rng rng(99);
  const auto exact = m.stationary_distribution(0b01);
  const auto empirical = m.empirical_distribution(0b01, 20000, rng);
  for (std::size_t s = 0; s < exact.size(); ++s) {
    EXPECT_NEAR(empirical[s], exact[s], 0.02) << "state " << s;
  }
}

TEST(Hmm, JointLawSumsToOne) {
  const QuantumHmm hmm(QuantumAutomaton(coin_circuit(), 1), 0b01);
  for (std::uint32_t s = 0; s < hmm.state_count(); ++s) {
    double total = 0.0;
    for (std::uint32_t t = 0; t < hmm.state_count(); ++t) {
      for (std::uint32_t e = 0; e < hmm.emission_count(); ++e) {
        total += hmm.joint_probability(s, t, e);
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Hmm, TransitionMarginalsMatchAutomaton) {
  QuantumAutomaton automaton(coin_circuit(), 1);
  const la::Matrix t = automaton.transition_matrix(0b01);
  const QuantumHmm hmm(std::move(automaton), 0b01);
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t n = 0; n < 2; ++n) {
      EXPECT_NEAR(hmm.transition_probability(s, n), t(n, s).real(), 1e-12);
    }
  }
}

TEST(Hmm, SampleTrajectoryShapes) {
  const QuantumHmm hmm(QuantumAutomaton(coin_circuit(), 1), 0b01);
  Rng rng(5);
  const auto traj = hmm.sample(0, 64, rng);
  EXPECT_EQ(traj.states.size(), 64u);
  EXPECT_EQ(traj.emissions.size(), 64u);
  for (const auto s : traj.states) EXPECT_LT(s, 2u);
  for (const auto e : traj.emissions) EXPECT_LT(e, 4u);
}

TEST(Hmm, LogLikelihoodOfDeterministicSequence) {
  // flip_circuit with fixed input B=1,C=0 emits (B=1,C=0) every step with
  // probability 1, so any sequence of emission 0b10 has log-likelihood 0.
  const QuantumHmm hmm(QuantumAutomaton(flip_circuit(), 1), 0b10);
  const std::vector<std::uint32_t> emissions(8, 0b10);
  EXPECT_NEAR(hmm.log_likelihood(0, emissions), 0.0, 1e-12);
}

TEST(Hmm, LogLikelihoodOfImpossibleSequence) {
  const QuantumHmm hmm(QuantumAutomaton(flip_circuit(), 1), 0b10);
  // Emission 0b00 never occurs under input 0b10.
  EXPECT_TRUE(std::isinf(hmm.log_likelihood(0, {0b00})));
}

TEST(Hmm, LogLikelihoodMatchesExactProbability) {
  // Coin chain: every emission (B,C)=(0,1) occurs with probability 1, state
  // splits 50/50 — emissions carry no information, likelihood of k steps of
  // emission 0b01 is exactly 1.
  const QuantumHmm hmm(QuantumAutomaton(coin_circuit(), 1), 0b01);
  EXPECT_NEAR(hmm.log_likelihood(0, std::vector<std::uint32_t>(5, 0b01)), 0.0,
              1e-12);
}

TEST(Hmm, EmpiricalTrajectoriesMatchJointLaw) {
  const QuantumHmm hmm(QuantumAutomaton(coin_circuit(), 1), 0b01);
  Rng rng(77);
  int next_one = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto traj = hmm.sample(0, 1, rng);
    next_one += traj.states[0];
  }
  EXPECT_NEAR(next_one / static_cast<double>(n),
              hmm.transition_probability(0, 1), 0.02);
}

TEST(Hmm, ArgumentChecks) {
  const QuantumHmm hmm(QuantumAutomaton(coin_circuit(), 1), 0b01);
  EXPECT_THROW((void)hmm.joint_probability(5, 0, 0), qsyn::LogicError);
  EXPECT_THROW((void)hmm.log_likelihood(9, {0}), qsyn::LogicError);
  EXPECT_THROW((void)hmm.log_likelihood(0, {9}), qsyn::LogicError);
}

}  // namespace
}  // namespace qsyn::automata
