// Unit tests for the MCE algorithm (Minimum_Cost_Expressing, Theorem 3) and
// the Theorem 2 NOT-coset decomposition.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "gates/library.h"
#include "mvl/domain.h"
#include "perm/cosets.h"
#include "perm/perm_group.h"
#include "sim/cross_check.h"
#include "synth/mce.h"
#include "synth/specs.h"
#include "synth/universality.h"

namespace qsyn::synth {
namespace {

class Mce3 : public ::testing::Test {
 protected:
  static McExpressor& shared() {
    static const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
    static const gates::GateLibrary library(domain);
    static McExpressor mce(library, 7);
    return mce;
  }
};

TEST_F(Mce3, IdentityCostsZero) {
  const auto result = shared().synthesize(perm::Permutation::identity(8));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  EXPECT_TRUE(result->not_prefix.empty());
  EXPECT_TRUE(result->circuit.empty());
}

TEST_F(Mce3, PureNotCircuitCostsZero) {
  // (1,2) on binary labels = NOT on wire C: cost 0 (NOT gates are free).
  const auto target = perm::Permutation::from_cycles("(1,2)(3,4)(5,6)(7,8)", 8);
  const auto result = shared().synthesize(target);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 0u);
  ASSERT_EQ(result->not_prefix.size(), 1u);
  EXPECT_EQ(result->not_prefix[0], gates::Gate::not_gate(2));
  EXPECT_EQ(result->circuit.to_binary_permutation(), target);
}

TEST_F(Mce3, SingleFeynmanCostsOne) {
  gates::Cascade c(3);
  c.append(gates::Gate::feynman(2, 0));
  const auto result = shared().synthesize(c.to_binary_permutation());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 1u);
}

TEST_F(Mce3, PeresCostsFourAndVerifies) {
  const auto result = shared().synthesize(peres_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 4u);
  EXPECT_TRUE(result->not_prefix.empty());
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, peres_perm()));
}

TEST_F(Mce3, ToffoliCostsFiveAndVerifies) {
  const auto result = shared().synthesize(toffoli_perm());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 5u);
  EXPECT_TRUE(sim::realizes_permutation(result->circuit, toffoli_perm()));
}

TEST_F(Mce3, PeresImplementationsAreHermitianTwins) {
  // The paper found exactly two implementations: Figure 4 and its Hermitian
  // adjoint (Figure 8).
  auto impls = shared().implementations(peres_perm());
  ASSERT_EQ(impls.size(), 2u);
  for (const auto& impl : impls) {
    EXPECT_EQ(impl.cost, 4u);
    EXPECT_TRUE(sim::realizes_permutation(impl.circuit, peres_perm()))
        << impl.circuit.to_string();
  }
  // The paper's twin relation: "swapping all control-V and control-V+
  // gates" (same order, V <-> V+) maps one implementation onto the other's
  // closure element. Verify on the first witness.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  gates::Cascade swapped(3);
  for (const auto& g : impls[0].core.sequence()) {
    swapped.append(g.kind() == gates::GateKind::kFeynman ? g : g.adjoint());
  }
  EXPECT_TRUE(swapped.is_reasonable(domain));
  EXPECT_EQ(swapped.to_binary_permutation(), peres_perm());
  EXPECT_EQ(swapped.to_permutation(domain),
            impls[1].core.to_permutation(domain));
}

TEST_F(Mce3, ToffoliHasFourImplementations) {
  auto impls = shared().implementations(toffoli_perm());
  ASSERT_EQ(impls.size(), 4u);
  for (const auto& impl : impls) {
    EXPECT_EQ(impl.cost, 5u);
    EXPECT_TRUE(sim::realizes_permutation(impl.circuit, toffoli_perm()));
  }
}

TEST_F(Mce3, TargetsMovingLabelOneGetNotPrefix) {
  // Toffoli conjugated into a coset: x -> NOT_A ∘ Toffoli. Its minimal cost
  // is still 5 (Theorem 2: cost is a coset invariant).
  const auto not_a =
      perm::Permutation::from_cycles("(1,5)(2,6)(3,7)(4,8)", 8);
  const auto target = not_a * toffoli_perm();
  const auto result = shared().synthesize(target);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 5u);
  EXPECT_FALSE(result->not_prefix.empty());
  EXPECT_EQ(result->circuit.to_binary_permutation(), target);
}

TEST_F(Mce3, AllEightCosetRepresentativesSynthesize) {
  // Theorem 2: H = ∪ a*G over the 8 NOT-layer circuits a.
  for (const auto& layer : not_layer_cascades(3)) {
    const auto target = layer.to_binary_permutation() * peres_perm();
    const auto result = shared().synthesize(target);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->cost, 4u);  // coset-invariant cost
    EXPECT_EQ(result->circuit.to_binary_permutation(), target);
  }
}

TEST_F(Mce3, MinimalCostAgreesWithSynthesize) {
  for (const auto& target : {peres_perm(), toffoli_perm(), swap_bc_perm(),
                             g2_perm(), g3_perm(), g4_perm()}) {
    const auto cost = shared().minimal_cost(target);
    const auto result = shared().synthesize(target);
    ASSERT_TRUE(cost.has_value());
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(*cost, result->cost);
  }
}

TEST_F(Mce3, RandomTargetsRoundTrip) {
  // Draw random members of S8, synthesize, verify, and resynthesize the
  // witness's own permutation at the same cost (Theorem 1/3 consistency).
  Rng rng(2024);
  const perm::PermGroup s8 = perm::PermGroup::symmetric(8);
  const auto elements = s8.elements();
  int synthesized = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto& target = elements[rng.below(elements.size())];
    const auto result = shared().synthesize(target);
    if (!result.has_value()) continue;  // cost exceeds cb = 7
    ++synthesized;
    EXPECT_EQ(result->circuit.to_binary_permutation(), target);
    EXPECT_LE(result->cost, 7u);
  }
  // About a quarter of S8 lies within cost 7 (10136/40320).
  EXPECT_GT(synthesized, 5);
}

TEST_F(Mce3, CountSequencesFindsPaperToffolis) {
  // All length-5 reasonable gate sequences realizing Toffoli. The paper
  // depicts 4 closure elements; each admits several commuting reorderings.
  const std::size_t sequences = shared().count_sequences(toffoli_perm(), 5);
  EXPECT_GE(sequences, 4u);
  // And none shorter.
  EXPECT_EQ(shared().count_sequences(toffoli_perm(), 4), 0u);
}

TEST_F(Mce3, CountSequencesPeres) {
  EXPECT_GE(shared().count_sequences(peres_perm(), 4), 2u);
  EXPECT_EQ(shared().count_sequences(peres_perm(), 3), 0u);
}

TEST_F(Mce3, CountSequencesGuards) {
  EXPECT_THROW((void)shared().count_sequences(peres_perm(), 0),
               qsyn::LogicError);
  EXPECT_THROW((void)shared().count_sequences(peres_perm(), 8),
               qsyn::LogicError);
}

TEST(McExpressorBounds, CountSequencesHonorsMaxCost) {
  // Regression: the guard was hard-coded to cost <= 7 instead of the
  // constructor's max_cost. An expressor bounded at 3 must accept exactly
  // cost 1..3; one bounded at 8 must accept cost 8.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  McExpressor bounded(library, 3);
  EXPECT_EQ(bounded.max_cost(), 3u);
  // SWAP(b,c) is realizable with exactly three Feynman gates.
  EXPECT_GE(bounded.count_sequences(swap_bc_perm(), 3), 1u);
  EXPECT_THROW((void)bounded.count_sequences(swap_bc_perm(), 4),
               qsyn::LogicError);

  McExpressor wide(library, 8);
  EXPECT_EQ(wide.count_sequences(swap_bc_perm(), 1), 0u);
  // Boundary: cost == max_cost is in range and must not throw.
  EXPECT_GE(wide.count_sequences(swap_bc_perm(), 3), 1u);
  EXPECT_THROW((void)wide.count_sequences(swap_bc_perm(), 9),
               qsyn::LogicError);
}

TEST(McExpressorSaturation, UnrealizableTargetReturnsNulloptNotCrash) {
  // Regression: over a tiny library whose closure saturates below max_cost,
  // locate() kept calling advance() on the exhausted enumerator and crashed
  // (and, once advance() became a saturation no-op, would have spun
  // forever). It must report "not realizable" via nullopt.
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary full(domain);
  const gates::GateLibrary tiny = full.restricted_to(full.feynman_subset(0, 1));
  McExpressor mce(tiny, 64);
  // Toffoli is nonlinear, the {FAB, FBA} closure is not: never realizable.
  EXPECT_FALSE(mce.synthesize(toffoli_perm()).has_value());
  EXPECT_FALSE(mce.minimal_cost(toffoli_perm()).has_value());
  EXPECT_TRUE(mce.implementations(toffoli_perm()).empty());
  EXPECT_TRUE(mce.enumerator().saturated());
  // Targets inside the tiny closure still synthesize after saturation.
  gates::Cascade fab(3);
  fab.append(gates::Gate::feynman(0, 1));
  const auto result = mce.synthesize(fab.to_binary_permutation());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 1u);
}

TEST(McExpressorThreads, ThreadedClosureSynthesizesIdentically) {
  const mvl::PatternDomain domain = mvl::PatternDomain::reduced(3);
  const gates::GateLibrary library(domain);
  ClosureConfig options;
  options.threads = 4;
  McExpressor mce(library, 7, options);
  const auto peres = mce.synthesize(peres_perm());
  ASSERT_TRUE(peres.has_value());
  EXPECT_EQ(peres->cost, 4u);
  EXPECT_TRUE(sim::realizes_permutation(peres->circuit, peres_perm()));
  EXPECT_EQ(mce.implementations(toffoli_perm()).size(), 4u);
}

TEST_F(Mce3, DegreePadding) {
  // A degree-2 permutation (1,2) pads to the 8 binary labels.
  const auto result =
      shared().synthesize(perm::Permutation::from_cycles("(7,8)"));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->cost, 5u);  // it is Toffoli
}

TEST_F(Mce3, OverlyLargeDegreeRejected) {
  EXPECT_THROW(
      (void)shared().synthesize(perm::Permutation::from_cycles("(1,9)", 9)),
      qsyn::LogicError);
}

// --- Theorem 2 as a statement about groups --------------------------------------

TEST(Theorem2, NotLayerCosetsPartitionS8) {
  // G = all circuits from L (binary restricted) = stabilizer of label 1 in
  // the reachable group; the paper proves H = S8 decomposes into the 8
  // cosets a*G for NOT layers a. Verify with G = <Feynman, Peres> (order
  // 5040, = full stabilizer of 1).
  const perm::PermGroup g = group_with_feynman({peres_perm()});
  ASSERT_EQ(g.order(), 5040u);
  std::vector<perm::Permutation> reps;
  for (const auto& layer : not_layer_cascades(3)) {
    reps.push_back(layer.to_binary_permutation());
  }
  ASSERT_EQ(reps.size(), 8u);
  const perm::PermGroup s8 = perm::PermGroup::symmetric(8);
  EXPECT_TRUE(perm::cosets_partition_group(reps, g, s8));
}

TEST(Theorem2, NotLayersAreInvolutionsAndDistinct) {
  const auto layers = not_layer_cascades(3);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto a = layers[i].to_binary_permutation();
    EXPECT_TRUE((a * a).is_identity());
    for (std::size_t j = i + 1; j < layers.size(); ++j) {
      EXPECT_NE(a, layers[j].to_binary_permutation());
    }
  }
}

}  // namespace
}  // namespace qsyn::synth
