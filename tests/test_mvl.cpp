// Unit tests for qsyn/mvl: the quaternary value algebra, packed patterns, and
// the pattern domains — including exact reproductions of the paper's label
// ordering and banned sets N_A .. N_BC.
#include <gtest/gtest.h>

#include "common/error.h"
#include "mvl/domain.h"
#include "mvl/pattern.h"
#include "mvl/quat.h"

namespace qsyn::mvl {
namespace {

// --- Quat algebra --------------------------------------------------------------

TEST(Quat, VValueMap) {
  EXPECT_EQ(apply_v(Quat::kZero), Quat::kV0);
  EXPECT_EQ(apply_v(Quat::kOne), Quat::kV1);
  EXPECT_EQ(apply_v(Quat::kV0), Quat::kOne);
  EXPECT_EQ(apply_v(Quat::kV1), Quat::kZero);
}

TEST(Quat, VDaggerValueMap) {
  EXPECT_EQ(apply_v_dagger(Quat::kZero), Quat::kV1);
  EXPECT_EQ(apply_v_dagger(Quat::kOne), Quat::kV0);
  EXPECT_EQ(apply_v_dagger(Quat::kV0), Quat::kZero);
  EXPECT_EQ(apply_v_dagger(Quat::kV1), Quat::kOne);
}

TEST(Quat, VVIsNot) {
  for (int d = 0; d < 4; ++d) {
    const Quat q = quat_from_index(d);
    EXPECT_EQ(apply_v(apply_v(q)), apply_not(q));
    EXPECT_EQ(apply_v_dagger(apply_v_dagger(q)), apply_not(q));
  }
}

TEST(Quat, VDaggerInvertsV) {
  for (int d = 0; d < 4; ++d) {
    const Quat q = quat_from_index(d);
    EXPECT_EQ(apply_v_dagger(apply_v(q)), q);
    EXPECT_EQ(apply_v(apply_v_dagger(q)), q);
  }
}

TEST(Quat, NotIsInvolution) {
  for (int d = 0; d < 4; ++d) {
    const Quat q = quat_from_index(d);
    EXPECT_EQ(apply_not(apply_not(q)), q);
  }
}

TEST(Quat, BinaryPredicates) {
  EXPECT_TRUE(is_binary(Quat::kZero));
  EXPECT_TRUE(is_binary(Quat::kOne));
  EXPECT_FALSE(is_binary(Quat::kV0));
  EXPECT_TRUE(is_mixed(Quat::kV1));
}

TEST(Quat, BinaryXor) {
  EXPECT_EQ(binary_xor(Quat::kZero, Quat::kOne), Quat::kOne);
  EXPECT_EQ(binary_xor(Quat::kOne, Quat::kOne), Quat::kZero);
  EXPECT_THROW((void)binary_xor(Quat::kV0, Quat::kOne), qsyn::LogicError);
}

TEST(Quat, StringRoundTrip) {
  for (int d = 0; d < 4; ++d) {
    const Quat q = quat_from_index(d);
    EXPECT_EQ(quat_from_string(to_string(q)), q);
  }
  EXPECT_THROW((void)quat_from_string("2"), qsyn::ParseError);
}

TEST(Quat, MeasurementProbabilities) {
  EXPECT_DOUBLE_EQ(measure_one_probability(Quat::kZero), 0.0);
  EXPECT_DOUBLE_EQ(measure_one_probability(Quat::kOne), 1.0);
  EXPECT_DOUBLE_EQ(measure_one_probability(Quat::kV0), 0.5);
  EXPECT_DOUBLE_EQ(measure_one_probability(Quat::kV1), 0.5);
}

TEST(Quat, IndexRoundTripAndRange) {
  for (int d = 0; d < 4; ++d) EXPECT_EQ(quat_index(quat_from_index(d)), d);
  EXPECT_THROW((void)quat_from_index(4), qsyn::LogicError);
  EXPECT_THROW((void)quat_from_index(-1), qsyn::LogicError);
}

// --- Pattern --------------------------------------------------------------------

TEST(Pattern, GetSetRoundTrip) {
  Pattern p(3);
  p.set(0, Quat::kOne);
  p.set(1, Quat::kV0);
  p.set(2, Quat::kV1);
  EXPECT_EQ(p.get(0), Quat::kOne);
  EXPECT_EQ(p.get(1), Quat::kV0);
  EXPECT_EQ(p.get(2), Quat::kV1);
}

TEST(Pattern, CodeIsBase4WithWire0MostSignificant) {
  Pattern p(3);
  p.set(0, Quat::kOne);   // 1 * 16
  p.set(1, Quat::kV0);    // 2 * 4
  p.set(2, Quat::kZero);  // 0
  EXPECT_EQ(p.code(), 24u);
  EXPECT_EQ(Pattern::from_code(3, 24), p);
}

TEST(Pattern, FromBinary) {
  const Pattern p = Pattern::from_binary(3, 0b101);
  EXPECT_EQ(p.get(0), Quat::kOne);
  EXPECT_EQ(p.get(1), Quat::kZero);
  EXPECT_EQ(p.get(2), Quat::kOne);
  EXPECT_EQ(p.binary_value(), 5u);
  EXPECT_THROW(Pattern::from_binary(3, 8), qsyn::LogicError);
}

TEST(Pattern, BinaryValueRejectsMixed) {
  Pattern p(2);
  p.set(0, Quat::kV0);
  EXPECT_THROW((void)p.binary_value(), qsyn::LogicError);
}

TEST(Pattern, Predicates) {
  const Pattern binary = Pattern::from_binary(3, 0b010);
  EXPECT_TRUE(binary.is_binary());
  EXPECT_TRUE(binary.contains_one());
  EXPECT_FALSE(binary.contains_mixed());

  Pattern mixed_no_one(3);
  mixed_no_one.set(1, Quat::kV1);
  EXPECT_FALSE(mixed_no_one.is_binary());
  EXPECT_FALSE(mixed_no_one.contains_one());
  EXPECT_TRUE(mixed_no_one.contains_mixed());

  const Pattern zero(3);
  EXPECT_TRUE(zero.is_binary());
  EXPECT_FALSE(zero.contains_one());
}

TEST(Pattern, ParseAndToString) {
  const Pattern p = Pattern::parse("1,V0,0");
  EXPECT_EQ(p.wires(), 3u);
  EXPECT_EQ(p.get(1), Quat::kV0);
  EXPECT_EQ(p.to_string(), "1,V0,0");
  EXPECT_EQ(Pattern::parse("1 V0 0"), p);
  EXPECT_THROW(Pattern::parse(""), qsyn::LogicError);
}

TEST(Pattern, OrderingByCode) {
  EXPECT_LT(Pattern::from_binary(3, 0), Pattern::from_binary(3, 1));
  EXPECT_LT(Pattern::from_binary(3, 7), Pattern::parse("1,V0,0"));
}

TEST(Pattern, WireCountLimits) {
  EXPECT_THROW(Pattern(0), qsyn::LogicError);
  EXPECT_THROW(Pattern(17), qsyn::LogicError);
  EXPECT_NO_THROW(Pattern(16));
}

// --- Reduced 3-wire domain: the paper's 38 labels -------------------------------

class ReducedDomain3 : public ::testing::Test {
 protected:
  const PatternDomain domain_ = PatternDomain::reduced(3);
};

TEST_F(ReducedDomain3, SizeIs38) {
  // 64 - 27 (no value 1 anywhere) + 1 (all-zero kept) = 38.
  EXPECT_EQ(domain_.size(), 38u);
  EXPECT_EQ(domain_.binary_count(), 8u);
}

TEST_F(ReducedDomain3, BinaryLabelsComeFirstAscending) {
  for (std::uint32_t label = 1; label <= 8; ++label) {
    EXPECT_EQ(domain_.pattern(label), Pattern::from_binary(3, label - 1));
  }
}

TEST_F(ReducedDomain3, PaperLabelSpotChecks) {
  // Labels verified against the paper's printed cycles (Section 3).
  EXPECT_EQ(domain_.label_of(Pattern::parse("1,V0,0")), 17u);
  EXPECT_EQ(domain_.label_of(Pattern::parse("1,V1,0")), 21u);
  EXPECT_EQ(domain_.label_of(Pattern::parse("V1,1,0")), 33u);
  EXPECT_EQ(domain_.label_of(Pattern::parse("V0,1,0")), 26u);
  EXPECT_EQ(domain_.label_of(Pattern::parse("0,1,V0")), 9u);
  EXPECT_EQ(domain_.label_of(Pattern::parse("V1,V1,1")), 38u);
}

TEST_F(ReducedDomain3, MixedLabelsAscendByCode) {
  for (std::uint32_t label = 9; label < 38; ++label) {
    EXPECT_LT(domain_.pattern(label).code(), domain_.pattern(label + 1).code());
  }
}

TEST_F(ReducedDomain3, ExcludesPatternsWithoutOne) {
  Pattern no_one(3);
  no_one.set(0, Quat::kV0);
  EXPECT_FALSE(domain_.contains(no_one));
  EXPECT_THROW((void)domain_.label_of(no_one), qsyn::LogicError);
  // But the all-zero pattern is label 1.
  EXPECT_EQ(domain_.label_of(Pattern(3)), 1u);
}

TEST_F(ReducedDomain3, LabelPatternRoundTrip) {
  for (std::uint32_t label = 1; label <= domain_.size(); ++label) {
    EXPECT_EQ(domain_.label_of(domain_.pattern(label)), label);
  }
}

TEST_F(ReducedDomain3, SSetIsFirstEight) {
  const auto s = domain_.s_set();
  ASSERT_EQ(s.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(s[i], i + 1);
}

TEST_F(ReducedDomain3, PaperBannedSetNA) {
  const auto na = domain_.banned_set(domain_.control_class(0));
  const std::vector<std::uint32_t> expected = {25, 26, 27, 28, 29, 30, 31,
                                               32, 33, 34, 35, 36, 37, 38};
  EXPECT_EQ(na, expected);
}

TEST_F(ReducedDomain3, PaperBannedSetNB) {
  const auto nb = domain_.banned_set(domain_.control_class(1));
  const std::vector<std::uint32_t> expected = {11, 12, 17, 18, 19, 20, 21,
                                               22, 23, 24, 30, 31, 37, 38};
  EXPECT_EQ(nb, expected);
}

TEST_F(ReducedDomain3, PaperBannedSetNC) {
  const auto nc = domain_.banned_set(domain_.control_class(2));
  const std::vector<std::uint32_t> expected = {9,  10, 13, 14, 15, 16, 19,
                                               20, 23, 24, 28, 29, 35, 36};
  EXPECT_EQ(nc, expected);
}

TEST_F(ReducedDomain3, PaperBannedSetNAB) {
  const auto nab = domain_.banned_set(domain_.feynman_class(0, 1));
  const std::vector<std::uint32_t> expected = {
      11, 12, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26,
      27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38};
  EXPECT_EQ(nab, expected);
}

TEST_F(ReducedDomain3, PaperBannedSetNAC) {
  const auto nac = domain_.banned_set(domain_.feynman_class(0, 2));
  const std::vector<std::uint32_t> expected = {
      9,  10, 13, 14, 15, 16, 19, 20, 23, 24, 25, 26,
      27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37, 38};
  EXPECT_EQ(nac, expected);
}

TEST_F(ReducedDomain3, PaperBannedSetNBC) {
  const auto nbc = domain_.banned_set(domain_.feynman_class(1, 2));
  const std::vector<std::uint32_t> expected = {
      9,  10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20,
      21, 22, 23, 24, 28, 29, 30, 31, 35, 36, 37, 38};
  EXPECT_EQ(nbc, expected);
}

TEST_F(ReducedDomain3, BannedMaskConsistentWithSets) {
  for (BannedClass c = 0; c < domain_.num_classes(); ++c) {
    for (const std::uint32_t label : domain_.banned_set(c)) {
      EXPECT_NE(domain_.banned_mask(label) & (1u << c), 0u);
    }
  }
}

TEST_F(ReducedDomain3, ClassNames) {
  EXPECT_EQ(domain_.class_name(domain_.control_class(0)), "N_A");
  EXPECT_EQ(domain_.class_name(domain_.control_class(2)), "N_C");
  EXPECT_EQ(domain_.class_name(domain_.feynman_class(0, 1)), "N_AB");
  EXPECT_EQ(domain_.class_name(domain_.feynman_class(2, 1)), "N_BC");
  EXPECT_EQ(domain_.num_classes(), 6u);
}

TEST_F(ReducedDomain3, FeynmanClassIsSymmetric) {
  EXPECT_EQ(domain_.feynman_class(0, 2), domain_.feynman_class(2, 0));
  EXPECT_THROW((void)domain_.feynman_class(1, 1), qsyn::LogicError);
}

// --- Full domains ---------------------------------------------------------------

TEST(FullDomain2, Table1Ordering) {
  // The paper's Table 1 layout: 4 binary rows, then B-mixed, A-mixed, both.
  const PatternDomain d = PatternDomain::full(2);
  EXPECT_EQ(d.size(), 16u);
  EXPECT_EQ(d.pattern(1), Pattern::parse("0,0"));
  EXPECT_EQ(d.pattern(4), Pattern::parse("1,1"));
  EXPECT_EQ(d.pattern(5), Pattern::parse("0,V0"));
  EXPECT_EQ(d.pattern(6), Pattern::parse("0,V1"));
  EXPECT_EQ(d.pattern(7), Pattern::parse("1,V0"));
  EXPECT_EQ(d.pattern(8), Pattern::parse("1,V1"));
  EXPECT_EQ(d.pattern(9), Pattern::parse("V0,0"));
  EXPECT_EQ(d.pattern(12), Pattern::parse("V1,1"));
  EXPECT_EQ(d.pattern(13), Pattern::parse("V0,V0"));
  EXPECT_EQ(d.pattern(16), Pattern::parse("V1,V1"));
}

TEST(FullDomain2, ContainsEverything) {
  const PatternDomain d = PatternDomain::full(2);
  for (std::uint32_t code = 0; code < 16; ++code) {
    EXPECT_TRUE(d.contains(Pattern::from_code(2, code)));
  }
}

TEST(ReducedDomain2, SizeIsEight) {
  // 16 - 9 + 1 = 8 permutable patterns on two wires.
  const PatternDomain d = PatternDomain::reduced(2);
  EXPECT_EQ(d.size(), 8u);
  EXPECT_EQ(d.binary_count(), 4u);
}

TEST(ReducedDomain4, SizeMatchesFormula) {
  // 4^4 - 3^4 + 1 = 256 - 81 + 1 = 176.
  EXPECT_EQ(PatternDomain::reduced(4).size(), 176u);
}

TEST(Domain, WireCountGuards) {
  EXPECT_THROW(PatternDomain::reduced(0), qsyn::LogicError);
  EXPECT_THROW(PatternDomain::full(9), qsyn::LogicError);
}

}  // namespace
}  // namespace qsyn::mvl
